package core

import (
	"container/heap"
	"context"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// renewItem is one scheduled renewal check for a zone's cached IRRs.
type renewItem struct {
	due  time.Time
	zone dnswire.Name
	seq  uint64
}

// renewQueue is a min-heap of renewal checks ordered by (due, seq).
type renewQueue struct {
	items []*renewItem
	seq   uint64
}

func (q *renewQueue) Len() int { return len(q.items) }

func (q *renewQueue) Less(i, j int) bool {
	if !q.items[i].due.Equal(q.items[j].due) {
		return q.items[i].due.Before(q.items[j].due)
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *renewQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *renewQueue) Push(x any) { q.items = append(q.items, x.(*renewItem)) }

func (q *renewQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// scheduleRenewal enqueues a renewal check for zone shortly before
// expires. At most one queue entry exists per zone; later expiries are
// handled by re-queuing on pop.
func (cs *CachingServer) scheduleRenewal(zone dnswire.Name, expires time.Time) {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	if cs.scheduled[zone] {
		return
	}
	cs.scheduled[zone] = true
	cs.renew.seq++
	heap.Push(&cs.renew, &renewItem{due: expires.Add(-renewLead), zone: zone, seq: cs.renew.seq})
}

// NextRenewalDue returns the earliest pending renewal check time. The
// trace-driven simulator uses it to advance the virtual clock precisely to
// each renewal instant.
func (cs *CachingServer) NextRenewalDue() (time.Time, bool) {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	if cs.renew.Len() == 0 {
		return time.Time{}, false
	}
	return cs.renew.items[0].due, true
}

// ProcessDueRenewals runs every renewal check due at or before now and
// returns how many refetches were issued. The scheduler lock is released
// across each zone's refetch, so renewal traffic never blocks concurrent
// query traffic (and vice versa). Items a renewal re-queues are always
// due in the future, so the drain loop terminates.
func (cs *CachingServer) ProcessDueRenewals(ctx context.Context, now time.Time) int {
	issued := 0
	for {
		cs.renewMu.Lock()
		if cs.renew.Len() == 0 || cs.renew.items[0].due.After(now) {
			cs.renewMu.Unlock()
			return issued
		}
		it := heap.Pop(&cs.renew).(*renewItem)
		delete(cs.scheduled, it.zone)
		cs.renewMu.Unlock()
		if cs.renewZone(ctx, it.zone, now) {
			issued++
		}
	}
}

// renewZone decides whether the zone's IRRs should be refetched and, if
// so, spends one credit doing it. Reports whether a refetch was issued.
// Called without renewMu held.
func (cs *CachingServer) renewZone(ctx context.Context, zone dnswire.Name, now time.Time) bool {
	if cs.cfg.Renewal == nil {
		return false
	}
	e := cs.cache.Peek(zone, dnswire.TypeNS)
	if e == nil || !e.Infra {
		return false // expired or evicted; nothing to renew
	}
	if e.Expires.Add(-renewLead).After(now) {
		// The entry was refreshed since this check was scheduled; requeue
		// for the new expiry.
		cs.scheduleRenewal(zone, e.Expires)
		return false
	}
	cs.renewMu.Lock()
	if cs.credits[zone] < 1 {
		cs.renewMu.Unlock()
		return false // out of credit: let the IRRs expire normally
	}
	cs.credits[zone]--
	cs.renewMu.Unlock()
	cs.stats.renewalQueries.Add(1)
	// One renewal cycle gets one retry budget, like one resolution does.
	ctx = withRetryBudget(ctx, cs.cfg.Upstream.RetryBudget)

	// Refetch the zone's own NS RRset from its servers. The response's
	// answer carries the NS set and its glue, which ingest re-caches with
	// answer credibility, resetting the TTL.
	addrs := cs.zoneAddrs(e.RRs)
	resp, err := cs.refetch(ctx, zone, addrs)
	if err != nil {
		cs.stats.renewalFailed.Add(1)
		return true
	}
	cs.ingest(resp, zone, zone)
	// Guarantee the renewal outcome even if credibility rules would have
	// ignored the copies: renewal explicitly extends the zone's IRRs (NS
	// and server addresses).
	cs.cache.Extend(zone, dnswire.TypeNS)
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		cs.cache.Extend(host, dnswire.TypeA)
		cs.cache.Extend(host, dnswire.TypeAAAA)
	}
	cs.stats.renewals.Add(1)
	if ne := cs.cache.Peek(zone, dnswire.TypeNS); ne != nil {
		cs.scheduleRenewal(zone, ne.Expires)
	}
	return true
}

// zoneAddrs collects the cached addresses of the NS hosts in set. Hosts
// with no A record fall back to cached AAAA glue (renewal extends both
// families, so either may be the one still alive).
func (cs *CachingServer) zoneAddrs(set []dnswire.RR) []transport.Addr {
	var addrs []transport.Addr
	for _, rr := range set {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		if ae := cs.cache.Peek(ns.Host, dnswire.TypeA); ae != nil {
			for _, arr := range ae.RRs {
				addrs = append(addrs, cs.cfg.AddrMapper(arr.Data.(dnswire.A).Addr))
			}
			continue
		}
		if ae := cs.cache.Peek(ns.Host, dnswire.TypeAAAA); ae != nil {
			for _, arr := range ae.RRs {
				addrs = append(addrs, cs.cfg.AddrMapper(arr.Data.(dnswire.AAAA).Addr))
			}
		}
	}
	return addrs
}

// refetch sends a NS query for zone to its own servers through the same
// upstream failover loop the query path uses, sharing its RTT estimates
// and quarantine state. Unlike resolution queries, refetches do not
// update renewal credit: only genuine demand keeps a zone alive,
// otherwise renewal would sustain itself forever. No lock is held here;
// the transport round-trips run concurrently with query traffic.
func (cs *CachingServer) refetch(ctx context.Context, zone dnswire.Name, addrs []transport.Addr) (*dnswire.Message, error) {
	if len(addrs) == 0 {
		return nil, transport.ErrServerUnreachable
	}
	q := dnswire.NewQuery(cs.nextQID(), zone, dnswire.TypeNS)
	if cs.cfg.AdvertiseEDNS0 {
		q.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
	}
	return cs.exchangeFailover(ctx, addrs, q)
}

// RunRenewalLoop services renewals in real time until ctx is cancelled.
// Use it with the wall clock when running as a live caching server; the
// trace-driven simulator calls ProcessDueRenewals directly instead.
func (cs *CachingServer) RunRenewalLoop(ctx context.Context) {
	const idlePoll = time.Second
	for {
		due, ok := cs.NextRenewalDue()
		var wait time.Duration
		if !ok {
			wait = idlePoll
		} else {
			wait = time.Until(due)
			if wait < 0 {
				wait = 0
			}
			if wait > idlePoll {
				wait = idlePoll
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
		cs.ProcessDueRenewals(ctx, cs.cfg.Clock.Now())
	}
}
