package dnswire

import "fmt"

// Type is a DNS resource record type code (RFC 1035 §3.2.2 and successors).
type Type uint16

// Record types implemented by this package.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41
	// TypeAXFR is the query-only whole-zone-transfer type (RFC 5936).
	TypeAXFR Type = 252
	TypeANY  Type = 255
)

var typeNames = map[Type]string{
	TypeNone:   "NONE",
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeSRV:    "SRV",
	TypeOPT:    "OPT",
	TypeANY:    "ANY",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeDNSKEY: "DNSKEY",
	TypeAXFR:   "AXFR",
}

// String returns the mnemonic for t, or "TYPEn" for unknown codes.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a mnemonic such as "A" or "NS" to a Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// Opcode is a DNS message opcode.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("OPCODE%d", uint8(o))
	}
}

// RCode is a DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic for r.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Question is a DNS question section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}
