package resolve

// Micro-benchmarks for the cache-hit pipeline stages — the code a serving
// frontend runs for the overwhelming majority of queries, and the path
// whose headroom decides how much attack load a caching server absorbs.

import (
	"testing"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// BenchmarkLookupCacheHit measures the lock-free cache-hit stage on a
// warm direct answer.
func BenchmarkLookupCacheHit(b *testing.B) {
	r := newTestResolver(b, Config{})
	r.cache.Put([]dnswire.RR{rrA("www.bench.test.", 3600, "192.0.2.10")}, cache.CredAuthority, true)
	name := dnswire.MustName("www.bench.test.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Lookup(nil, name, dnswire.TypeA)
		if err != nil || res == nil {
			b.Fatalf("Lookup = %v, %v", res, err)
		}
	}
}

// BenchmarkLookupCNAMEChain measures a cached two-hop CNAME chain.
func BenchmarkLookupCNAMEChain(b *testing.B) {
	r := newTestResolver(b, Config{})
	r.cache.Put([]dnswire.RR{rrCNAME("alias.bench.test.", "www.bench.test.")}, cache.CredAuthority, true)
	r.cache.Put([]dnswire.RR{rrA("www.bench.test.", 3600, "192.0.2.10")}, cache.CredAuthority, true)
	name := dnswire.MustName("alias.bench.test.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Lookup(nil, name, dnswire.TypeA)
		if err != nil || res == nil {
			b.Fatalf("Lookup = %v, %v", res, err)
		}
	}
}

// BenchmarkLookupMiss measures the cost of deciding a query needs the
// slow path — pure overhead added to every cold query.
func BenchmarkLookupMiss(b *testing.B) {
	r := newTestResolver(b, Config{})
	name := dnswire.MustName("cold.bench.test.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Lookup(nil, name, dnswire.TypeA)
		if err != nil || res != nil {
			b.Fatalf("Lookup = %v, %v (want miss)", res, err)
		}
	}
}
