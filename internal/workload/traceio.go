package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"resilientdns/internal/dnswire"
)

// The trace text format is line-oriented:
//
//	# trace <label>
//	# start <RFC3339>
//	# duration <Go duration>
//	# clients <n>
//	<offset-ms> <client> <name> <type>
//	...
//
// Offsets are milliseconds since the start time. Lines beginning with '#'
// outside the header prefix are comments.

// WriteTo serialises the trace in the text format.
func (tr Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "# trace %s\n# start %s\n# duration %s\n# clients %d\n",
		tr.Label, tr.Start.UTC().Format(time.RFC3339), tr.Duration, tr.Clients)); err != nil {
		return n, err
	}
	for _, q := range tr.Queries {
		off := q.At.Sub(tr.Start).Milliseconds()
		if err := count(fmt.Fprintf(bw, "%d %d %s %s\n", off, q.Client, q.Name, q.Type)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses a trace in the text format.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := tr.parseHeader(text); err != nil {
				return tr, fmt.Errorf("trace line %d: %w", line, err)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return tr, fmt.Errorf("trace line %d: want 4 fields, got %d", line, len(fields))
		}
		offMS, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return tr, fmt.Errorf("trace line %d: bad offset: %w", line, err)
		}
		client, err := strconv.Atoi(fields[1])
		if err != nil {
			return tr, fmt.Errorf("trace line %d: bad client: %w", line, err)
		}
		name, err := dnswire.CanonicalName(fields[2])
		if err != nil {
			return tr, fmt.Errorf("trace line %d: %w", line, err)
		}
		qtype, err := dnswire.ParseType(fields[3])
		if err != nil {
			return tr, fmt.Errorf("trace line %d: %w", line, err)
		}
		tr.Queries = append(tr.Queries, Query{
			At:     tr.Start.Add(time.Duration(offMS) * time.Millisecond),
			Client: client,
			Name:   name,
			Type:   qtype,
		})
	}
	if err := sc.Err(); err != nil {
		return tr, err
	}
	return tr, nil
}

func (tr *Trace) parseHeader(text string) error {
	fields := strings.Fields(strings.TrimPrefix(text, "#"))
	if len(fields) < 2 {
		return nil // plain comment
	}
	switch fields[0] {
	case "trace":
		tr.Label = fields[1]
	case "start":
		t, err := time.Parse(time.RFC3339, fields[1])
		if err != nil {
			return fmt.Errorf("bad start time: %w", err)
		}
		tr.Start = t
	case "duration":
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return fmt.Errorf("bad duration: %w", err)
		}
		tr.Duration = d
	case "clients":
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad clients: %w", err)
		}
		tr.Clients = n
	}
	return nil
}
