// Package wallclock_ok is a passing fixture: time arithmetic and an
// injected clock are fine; only reading the wall clock is not.
package wallclock_ok

import "time"

// Clock is the simclock.Clock shape: time is injected, not read.
type Clock interface {
	Now() time.Time
}

// Deadline derives a deadline from the injected clock.
func Deadline(c Clock, d time.Duration) time.Time {
	return c.Now().Add(d)
}

// Epoch is pure time arithmetic, no wall-clock read.
func Epoch() time.Time {
	return time.Unix(0, 0).Add(42 * time.Hour)
}

// Parse uses the time package without observing the clock.
func Parse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}
