package simnet

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func answering() transport.Handler {
	return transport.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Answer = []dnswire.RR{{
			Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
		}}
		return r
	})
}

func newNet(t *testing.T) (*Network, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual(epoch)
	n := New(clk, 1)
	n.Register(&Host{Addr: "10.0.0.1", Zone: dnswire.MustName("edu."), Handler: answering()})
	return n, clk
}

func query() *dnswire.Message {
	return dnswire.NewQuery(9, dnswire.MustName("www.edu."), dnswire.TypeA)
}

func TestExchangeDeliversAndChargesRTT(t *testing.T) {
	n, clk := newNet(t)
	resp, err := n.Exchange(context.Background(), "10.0.0.1", query())
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if len(resp.Answer) != 1 {
		t.Errorf("answer = %v", resp.Answer)
	}
	if got, want := clk.Now(), epoch.Add(n.RTT); !got.Equal(want) {
		t.Errorf("clock = %v, want %v", got, want)
	}
	st := n.Stats()
	if st.Exchanges != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExchangeUnknownHost(t *testing.T) {
	n, clk := newNet(t)
	_, err := n.Exchange(context.Background(), "10.9.9.9", query())
	if !errors.Is(err, transport.ErrServerUnreachable) {
		t.Fatalf("err = %v, want unreachable", err)
	}
	if got, want := clk.Now(), epoch.Add(n.Timeout); !got.Equal(want) {
		t.Errorf("clock = %v, want timeout charge %v", got, want)
	}
}

func TestExchangeDuringAttackTimesOut(t *testing.T) {
	n, clk := newNet(t)
	n.SetAttack(attack.Schedule{attack.NewWindow(epoch, time.Hour, dnswire.MustName("edu."))})
	_, err := n.Exchange(context.Background(), "10.0.0.1", query())
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if n.Stats().TimedOut != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
	// After the attack window, the host answers again.
	clk.AdvanceTo(epoch.Add(2 * time.Hour))
	if _, err := n.Exchange(context.Background(), "10.0.0.1", query()); err != nil {
		t.Fatalf("post-attack Exchange: %v", err)
	}
}

func TestAttackOnOtherZoneDoesNotAffectHost(t *testing.T) {
	n, _ := newNet(t)
	n.SetAttack(attack.Schedule{attack.NewWindow(epoch, time.Hour, dnswire.MustName("com."))})
	if _, err := n.Exchange(context.Background(), "10.0.0.1", query()); err != nil {
		t.Fatalf("Exchange: %v", err)
	}
}

func TestPacketLossIsDeterministic(t *testing.T) {
	run := func() (lost int) {
		clk := simclock.NewVirtual(epoch)
		n := New(clk, 42)
		n.Timeout = 0
		n.LossRate = 0.5
		n.Register(&Host{Addr: "10.0.0.1", Zone: dnswire.MustName("edu."), Handler: answering()})
		for i := 0; i < 100; i++ {
			if _, err := n.Exchange(context.Background(), "10.0.0.1", query()); err != nil {
				lost++
			}
		}
		return lost
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("loss not deterministic: %d vs %d", a, b)
	}
	if a < 20 || a > 80 {
		t.Errorf("loss count %d implausible for rate 0.5", a)
	}
}

func TestExchangeRoundTripsWireFormat(t *testing.T) {
	// A handler returning an unpackable message must surface an error,
	// proving the simulated network exercises real encoding.
	clk := simclock.NewVirtual(epoch)
	n := New(clk, 1)
	n.Register(&Host{Addr: "10.0.0.1", Zone: dnswire.MustName("edu."), Handler: transport.HandlerFunc(
		func(q *dnswire.Message) *dnswire.Message {
			r := q.Reply()
			r.Answer = []dnswire.RR{{Name: "x.", Class: dnswire.ClassIN}} // nil Data
			return r
		})})
	if _, err := n.Exchange(context.Background(), "10.0.0.1", query()); err == nil {
		t.Error("unpackable response delivered without error")
	}
}

func TestHostsCount(t *testing.T) {
	n, _ := newNet(t)
	if n.Hosts() != 1 {
		t.Errorf("Hosts = %d", n.Hosts())
	}
}
