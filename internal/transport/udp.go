package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
)

// UDP is a Transport over real UDP sockets. The zero value is ready to
// use; Timeout defaults to 3 seconds when unset.
type UDP struct {
	// Timeout caps each exchange; a context deadline tightens it further
	// (the earlier of the two wins) but never extends it.
	Timeout time.Duration
	// LocalAddr binds outgoing sockets to a specific local address (e.g.
	// "127.0.0.99:0"), letting load generators present distinct client
	// addresses to a server under test. Empty means kernel-chosen.
	LocalAddr string
}

// Exchange implements Transport: it sends the query over a fresh UDP
// socket and waits for a response with a matching ID that echoes the
// question. Datagrams that fail either check are discarded and the read
// continues until the deadline — an off-path spoofer must land both the
// 16-bit ID and the exact question before the genuine reply arrives.
func (u *UDP) Exchange(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error) {
	timeout := u.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	var dialer net.Dialer
	if u.LocalAddr != "" {
		laddr, err := net.ResolveUDPAddr("udp", u.LocalAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: bad LocalAddr %q: %v", u.LocalAddr, err)
		}
		dialer.LocalAddr = laddr
	}
	conn, err := dialer.DialContext(ctx, "udp", string(server))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrServerUnreachable, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}

	// One pooled buffer serves the whole exchange: the query is packed
	// into it, and once Write returns the kernel owns those bytes, so
	// the same buffer is reused for reads. Unpack copies the wire, so
	// returning the buffer on exit never races a live Message.
	bp := getBuf()
	defer putBuf(bp)
	wire, err := query.AppendPack((*bp)[:0])
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrServerUnreachable, err)
	}

	buf := (*bp)[:readBufSize]
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return nil, fmt.Errorf("%w: %s", ErrTimeout, server)
			}
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbled datagram; keep waiting until the deadline
		}
		if resp.ID != query.ID {
			continue // stale response to an earlier query
		}
		if !dnswire.EchoesQuestion(query, resp) {
			continue // ID collision or off-path spoof; keep waiting
		}
		return resp, nil
	}
}

// DefaultMaxInflight bounds concurrently handled queries when a server's
// MaxInflight is zero.
const DefaultMaxInflight = 1024

// UDPServer serves DNS queries over a UDP socket using a Handler. Each
// query is handled on its own goroutine, bounded by MaxInflight, so one
// slow recursive resolution never blocks the socket read loop. When the
// Handler also implements AddrHandler, queries are dispatched with their
// source address so per-client policy (the guard layer) can apply.
type UDPServer struct {
	Handler Handler
	// MaxPayload truncates responses larger than this many bytes (TC bit
	// set, sections dropped); defaults to the classic 512.
	MaxPayload int
	// MaxInflight bounds the number of queries being handled at once.
	// Defaults to DefaultMaxInflight.
	MaxInflight int
	// Overload, when set, is consulted — synchronously, on the read loop
	// — for queries arriving while all MaxInflight slots are busy,
	// instead of blocking the read loop behind the slowest resolution
	// (head-of-line blocking). It returns the degraded-mode response to
	// send, or nil to drop the query. It must not block. When nil,
	// saturated-arrival queries are dropped and counted.
	Overload func(q *dnswire.Message, from net.Addr) *dnswire.Message
	// Counters receives drop/FORMERR accounting; optional. When Overload
	// is set it owns the shed accounting and Counters.Shed is not bumped
	// here (a single source for each count).
	Counters *metrics.GuardCounters
	// Readers is the number of goroutines reading from the socket. The
	// default 1 preserves the classic single-read-loop behavior; under
	// heavy client load a single reader becomes the ceiling (one
	// unpack-and-dispatch per arriving packet), so sharding onto N
	// readers lets packet intake scale with cores. Each reader has its
	// own pooled buffer; they share the MaxInflight handler bound.
	Readers int

	mu   sync.Mutex
	conn net.PacketConn
	wg   sync.WaitGroup
	sem  chan struct{}
}

// Listen binds the server to addr (e.g. "127.0.0.1:5300") and starts
// serving in background goroutines. It returns the bound address, which is
// useful when addr requests an ephemeral port.
func (s *UDPServer) Listen(addr string) (string, error) {
	if s.Handler == nil {
		return "", errors.New("transport: UDPServer without Handler")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return "", err
	}
	inflight := s.MaxInflight
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}
	readers := s.Readers
	if readers <= 0 {
		readers = 1
	}
	s.mu.Lock()
	s.conn = conn
	s.sem = make(chan struct{}, inflight)
	s.mu.Unlock()

	// net.PacketConn is safe for concurrent use, so N read loops share
	// the one socket; the kernel hands each datagram to exactly one.
	s.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go s.serve(conn)
	}
	return conn.LocalAddr().String(), nil
}

func (s *UDPServer) serve(conn net.PacketConn) {
	defer s.wg.Done()
	sem := s.sem
	// Per-read-loop buffer, leased for the loop's lifetime and reused
	// for every packet (returned when the listener closes).
	bp := getBuf()
	defer putBuf(bp)
	buf := (*bp)[:readBufSize]
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		// Unpack before dispatching: the Message owns all its data
		// (dnswire.Unpack copies the wire once and never aliases the
		// read buffer), so buf can be reused for the next packet.
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			s.replyFormErr(conn, buf[:n], from)
			continue
		}
		if query.Flags.Response {
			continue // a response is never a query; never answer one
		}
		select {
		case sem <- struct{}{}:
			s.wg.Add(1)
			go func(query *dnswire.Message, from net.Addr) {
				defer s.wg.Done()
				defer func() { <-sem }()
				s.respond(conn, query, from)
			}(query, from)
		default:
			// Every inflight slot is busy. Blocking here would stall the
			// read loop behind the slowest resolution; instead shed —
			// or hand the query to the overload hook for a degraded
			// (cache-only) answer.
			if s.Overload != nil {
				if resp := s.Overload(query, from); resp != nil {
					s.writeResponse(conn, query, resp, from)
				}
			} else if s.Counters != nil {
				s.Counters.Shed.Add(1)
			}
		}
	}
}

// replyFormErr answers a packet that failed to parse. If even the fixed
// header is unreadable there is nothing to echo, and a packet claiming to
// be a response must never be answered (a reply loop between two servers
// otherwise ping-pongs forever) — both stay silently dropped. Otherwise
// the client gets FORMERR so it can tell a broken query from a dead
// server, and the counter keeps garbage floods visible.
func (s *UDPServer) replyFormErr(conn net.PacketConn, pkt []byte, from net.Addr) {
	h, err := dnswire.UnpackHeader(pkt)
	if err != nil || h.Flags.Response {
		return
	}
	if s.Counters != nil {
		s.Counters.FormErr.Add(1)
	}
	resp := &dnswire.Message{
		ID:     h.ID,
		Opcode: h.Opcode,
		Flags:  dnswire.Flags{Response: true},
		RCode:  dnswire.RCodeFormErr,
	}
	bp := getBuf()
	defer putBuf(bp)
	wire, err := resp.AppendPack((*bp)[:0])
	if err != nil {
		return
	}
	conn.WriteTo(wire, from)
}

// respond handles one query and writes the response. PacketConn.WriteTo
// is safe for concurrent use, so responders never coordinate.
func (s *UDPServer) respond(conn net.PacketConn, query *dnswire.Message, from net.Addr) {
	var resp *dnswire.Message
	if ah, ok := s.Handler.(AddrHandler); ok {
		resp = ah.HandleQueryFrom(query, from)
	} else {
		resp = s.Handler.HandleQuery(query)
	}
	if resp == nil {
		return
	}
	s.writeResponse(conn, query, resp, from)
}

// writeResponse packs resp (into pooled scratch, returned once the
// socket write is done), applies the UDP payload limit, and sends.
//
// The limit is min(serverMax, max(adv, 512)) per RFC 6891 §6.2.5: a
// datagram must never exceed what the client advertised — a client
// saying 1232 gets truncation at 1232 even when the server could emit
// 4096 — while an advertisement below 512 is raised to the classic
// floor. serverMax is MaxPayload, defaulting for EDNS0 clients to
// DefaultEDNS0PayloadSize (the server's own advertisement) and for
// plain clients to the classic MaxUDPPayload.
func (s *UDPServer) writeResponse(conn net.PacketConn, query, resp *dnswire.Message, from net.Addr) {
	bp := getBuf()
	defer putBuf(bp)
	wire, err := resp.AppendPack((*bp)[:0])
	if err != nil {
		return
	}
	limit := dnswire.MaxUDPPayload
	if adv, ok := query.EDNS0PayloadSize(); ok {
		client := int(adv)
		if client < dnswire.MaxUDPPayload {
			client = dnswire.MaxUDPPayload
		}
		serverMax := s.MaxPayload
		if serverMax == 0 {
			serverMax = dnswire.DefaultEDNS0PayloadSize
		}
		limit = client
		if serverMax < limit {
			limit = serverMax
		}
	} else if s.MaxPayload != 0 && s.MaxPayload < limit {
		limit = s.MaxPayload
	}
	if len(wire) > limit {
		wire, err = resp.TruncatedCopy().AppendPack(wire[:0])
		if err != nil {
			return
		}
	}
	conn.WriteTo(wire, from)
}

// Close stops the server and waits for its goroutines to exit.
func (s *UDPServer) Close() error {
	s.mu.Lock()
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Close()
	s.wg.Wait()
	return err
}
