package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Message is a complete DNS message: header flags plus the four sections.
type Message struct {
	ID     uint16
	Flags  Flags
	RCode  RCode
	Opcode Opcode

	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// Flags holds the single-bit header flags of a DNS message.
type Flags struct {
	Response           bool // QR
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticData      bool // AD
	CheckingDisabled   bool // CD
}

// MaxUDPPayload is the classic maximum DNS-over-UDP message size.
const MaxUDPPayload = 512

// headerLen is the fixed size of a DNS message header.
const headerLen = 12

var (
	// ErrTruncatedMessage reports a message shorter than its header claims.
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	// ErrCompressionLoop reports a compression-pointer cycle.
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")
	// ErrTrailingBytes reports unconsumed bytes after the last section.
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
)

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name Name, qtype Type) *Message {
	return &Message{
		ID:       id,
		Question: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// EchoesQuestion reports whether resp echoes query's question section:
// the response's first question must match the query's (qname, qtype,
// qclass) exactly. A matching 16-bit ID alone leaves a 1-in-65536
// off-path spoofing window per guess; requiring the question echo forces
// an attacker to also know which name is being resolved. Responses that
// carry no question section at all are rejected. Names are canonical
// (lower-case) on both sides, so comparison is exact. A query with no
// question trivially matches.
func EchoesQuestion(query, resp *Message) bool {
	if len(query.Question) == 0 {
		return true
	}
	if len(resp.Question) == 0 {
		return false
	}
	q, r := query.Question[0], resp.Question[0]
	return q.Name == r.Name && q.Type == r.Type && q.Class == r.Class
}

// Reply builds a skeleton response to q, echoing its ID and question and
// setting the QR bit.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:     m.ID,
		Opcode: m.Opcode,
		Flags: Flags{
			Response:         true,
			RecursionDesired: m.Flags.RecursionDesired,
		},
	}
	r.Question = append(r.Question, m.Question...)
	return r
}

// String renders the message in a dig-like textual form, for logs and
// examples.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; id=%d opcode=%s rcode=%s", m.ID, m.Opcode, m.RCode)
	if m.Flags.Response {
		b.WriteString(" qr")
	}
	if m.Flags.Authoritative {
		b.WriteString(" aa")
	}
	if m.Flags.Truncated {
		b.WriteString(" tc")
	}
	if m.Flags.RecursionDesired {
		b.WriteString(" rd")
	}
	if m.Flags.RecursionAvailable {
		b.WriteString(" ra")
	}
	b.WriteString("\n")
	for _, q := range m.Question {
		fmt.Fprintf(&b, ";%s\n", q)
	}
	writeSection := func(label string, rrs []RR) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s:\n", label)
		for _, rr := range rrs {
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	writeSection("ANSWER", m.Answer)
	writeSection("AUTHORITY", m.Authority)
	writeSection("ADDITIONAL", m.Additional)
	return b.String()
}

// TruncatedCopy returns a copy of the message with the record sections
// dropped and the TC bit set, for serving over size-limited UDP (the
// client retries over TCP). OPT pseudo-records survive the truncation:
// RFC 6891 §7 requires a response to an EDNS0 query to remain an EDNS0
// response even when truncated.
func (m *Message) TruncatedCopy() *Message {
	t := &Message{
		ID:     m.ID,
		Flags:  m.Flags,
		RCode:  m.RCode,
		Opcode: m.Opcode,
	}
	t.Flags.Truncated = true
	t.Question = append(t.Question, m.Question...)
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			t.Additional = append(t.Additional, rr)
		}
	}
	return t
}

// packer accumulates the wire encoding of a message and tracks name
// compression targets.
type packer struct {
	buf []byte
	// ptr maps a canonical name to the offset of its first occurrence.
	ptr map[Name]int
	// noCompress disables pointer emission entirely (DNSSEC canonical
	// form, RFC 4034 §6.2).
	noCompress bool
}

func (p *packer) appendUint16(v uint16) {
	p.buf = append(p.buf, byte(v>>8), byte(v))
}

func (p *packer) appendUint32(v uint32) {
	p.buf = append(p.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendCompressedName appends n, using a compression pointer when a
// suffix of n has already been written, and recording new suffixes.
func (p *packer) appendCompressedName(n Name) error {
	if n == "" {
		return errors.New("dnswire: empty name")
	}
	if p.noCompress {
		var err error
		p.buf, err = appendName(p.buf, n)
		return err
	}
	labels := n.Labels()
	for i := range labels {
		suffix := Name(strings.Join(labels[i:], ".") + ".")
		if off, ok := p.ptr[suffix]; ok && off <= 0x3FFF {
			// Emit the labels before the matched suffix, then the pointer.
			for _, label := range labels[:i] {
				if len(label) > MaxLabelLen {
					return ErrLabelTooLong
				}
				p.buf = append(p.buf, byte(len(label)))
				p.buf = append(p.buf, label...)
			}
			p.appendUint16(0xC000 | uint16(off))
			return nil
		}
		// Record this suffix's offset for future pointers.
		off := len(p.buf)
		for _, label := range labels[:i] {
			off += 1 + len(label)
		}
		if p.ptr == nil {
			p.ptr = make(map[Name]int)
		}
		if _, ok := p.ptr[suffix]; !ok {
			p.ptr[suffix] = off
		}
	}
	var err error
	p.buf, err = appendName(p.buf, n)
	return err
}

// appendUncompressedName appends n without using or creating pointers
// (required for RDATA of types not covered by RFC 1035 compression rules).
func (p *packer) appendUncompressedName(n Name) error {
	var err error
	p.buf, err = appendName(p.buf, n)
	return err
}

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	p := &packer{buf: make([]byte, 0, 512)}
	p.appendUint16(m.ID)

	var flags uint16
	if m.Flags.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Flags.Authoritative {
		flags |= 1 << 10
	}
	if m.Flags.Truncated {
		flags |= 1 << 9
	}
	if m.Flags.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Flags.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.Flags.AuthenticData {
		flags |= 1 << 5
	}
	if m.Flags.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.RCode & 0xF)
	p.appendUint16(flags)

	for _, n := range []int{len(m.Question), len(m.Answer), len(m.Authority), len(m.Additional)} {
		if n > 0xFFFF {
			return nil, errors.New("dnswire: section too large")
		}
		p.appendUint16(uint16(n))
	}

	for _, q := range m.Question {
		if err := p.appendCompressedName(q.Name); err != nil {
			return nil, fmt.Errorf("packing question %s: %w", q.Name, err)
		}
		p.appendUint16(uint16(q.Type))
		p.appendUint16(uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := p.appendRR(rr); err != nil {
				return nil, fmt.Errorf("packing %s %s: %w", rr.Name, rr.Type(), err)
			}
		}
	}
	return p.buf, nil
}

func (p *packer) appendRR(rr RR) error {
	if rr.Data == nil {
		return errors.New("dnswire: RR with nil data")
	}
	if err := p.appendCompressedName(rr.Name); err != nil {
		return err
	}
	p.appendUint16(uint16(rr.Type()))
	p.appendUint16(uint16(rr.Class))
	p.appendUint32(rr.TTL)
	// Reserve RDLENGTH, fill after encoding RDATA.
	lenOff := len(p.buf)
	p.appendUint16(0)
	if err := rr.Data.appendTo(p); err != nil {
		return err
	}
	rdlen := len(p.buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return errors.New("dnswire: RDATA too long")
	}
	p.buf[lenOff] = byte(rdlen >> 8)
	p.buf[lenOff+1] = byte(rdlen)
	return nil
}

// unpacker walks a wire-format message.
type unpacker struct {
	msg []byte
	off int
}

func (u *unpacker) uint16() (uint16, error) {
	if u.off+2 > len(u.msg) {
		return 0, ErrTruncatedMessage
	}
	v := uint16(u.msg[u.off])<<8 | uint16(u.msg[u.off+1])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if u.off+4 > len(u.msg) {
		return 0, ErrTruncatedMessage
	}
	v := uint32(u.msg[u.off])<<24 | uint32(u.msg[u.off+1])<<16 |
		uint32(u.msg[u.off+2])<<8 | uint32(u.msg[u.off+3])
	u.off += 4
	return v, nil
}

// name decodes a possibly-compressed name starting at the current offset.
func (u *unpacker) name() (Name, error) {
	n, newOff, err := decodeName(u.msg, u.off)
	if err != nil {
		return "", err
	}
	u.off = newOff
	return n, nil
}

// decodeName decodes a name at off in msg, following compression pointers.
// It returns the name and the offset just past the name's first encoding.
func decodeName(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	ptrBudget := len(msg) // any longer chain must contain a loop
	end := -1             // offset after the name at the original position
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if sb.Len() == 0 {
				return Root, end, nil
			}
			n, err := CanonicalName(sb.String())
			if err != nil {
				return "", 0, err
			}
			return n, end, nil
		case b&0xC0 == 0xC0:
			if off+2 > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if end < 0 {
				end = off + 2
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if target >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrCompressionLoop)
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrCompressionLoop
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			sb.Write(msg[off+1 : off+1+l])
			sb.WriteByte('.')
			off += 1 + l
			if sb.Len() > MaxNameWireLen*4 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

// Header is a decoded DNS message header, the 12 fixed bytes every
// message starts with. It lets a server classify a packet (query vs
// response, opcode, ID to echo) even when the rest fails to parse.
type Header struct {
	ID     uint16
	Flags  Flags
	Opcode Opcode
	RCode  RCode
}

// UnpackHeader decodes just the fixed header of a wire-format message.
// It fails only when b is shorter than the 12-byte header.
func UnpackHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, fmt.Errorf("%w: %d-byte header", ErrTruncatedMessage, len(b))
	}
	var h Header
	h.ID = uint16(b[0])<<8 | uint16(b[1])
	flags := uint16(b[2])<<8 | uint16(b[3])
	h.Flags, h.Opcode, h.RCode = decodeFlags(flags)
	return h, nil
}

// decodeFlags splits the header's second 16-bit word into its flag bits,
// opcode, and rcode.
func decodeFlags(flags uint16) (Flags, Opcode, RCode) {
	var f Flags
	f.Response = flags&(1<<15) != 0
	f.Authoritative = flags&(1<<10) != 0
	f.Truncated = flags&(1<<9) != 0
	f.RecursionDesired = flags&(1<<8) != 0
	f.RecursionAvailable = flags&(1<<7) != 0
	f.AuthenticData = flags&(1<<5) != 0
	f.CheckingDisabled = flags&(1<<4) != 0
	return f, Opcode(flags >> 11 & 0xF), RCode(flags & 0xF)
}

// Unpack decodes a wire-format DNS message.
func Unpack(b []byte) (*Message, error) {
	u := &unpacker{msg: b}
	m := &Message{}

	var err error
	if m.ID, err = u.uint16(); err != nil {
		return nil, err
	}
	flags, err := u.uint16()
	if err != nil {
		return nil, err
	}
	m.Flags, m.Opcode, m.RCode = decodeFlags(flags)

	var counts [4]uint16
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = u.name(); err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		t, err := u.uint16()
		if err != nil {
			return nil, err
		}
		c, err := u.uint16()
		if err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Question = append(m.Question, q)
	}

	sections := []*[]RR{&m.Answer, &m.Authority, &m.Additional}
	for si, dst := range sections {
		for i := 0; i < int(counts[si+1]); i++ {
			rr, err := u.rr()
			if err != nil {
				return nil, fmt.Errorf("section %d record %d: %w", si+1, i, err)
			}
			*dst = append(*dst, rr)
		}
	}
	if u.off != len(b) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(b)-u.off)
	}
	return m, nil
}

func (u *unpacker) rr() (RR, error) {
	var rr RR
	name, err := u.name()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, err := u.uint16()
	if err != nil {
		return rr, err
	}
	c, err := u.uint16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(c)
	ttl, err := u.uint32()
	if err != nil {
		return rr, err
	}
	rr.TTL = ttl
	rdlen, err := u.uint16()
	if err != nil {
		return rr, err
	}
	if u.off+int(rdlen) > len(u.msg) {
		return rr, ErrTruncatedMessage
	}
	rdEnd := u.off + int(rdlen)
	rr.Data, err = u.rdata(Type(t), rdEnd)
	if err != nil {
		return rr, err
	}
	if u.off != rdEnd {
		return rr, fmt.Errorf("dnswire: RDATA length mismatch for %s", Type(t))
	}
	return rr, nil
}

func (u *unpacker) rdata(t Type, rdEnd int) (RData, error) {
	switch t {
	case TypeA:
		if rdEnd-u.off != 4 {
			return nil, fmt.Errorf("dnswire: A RDATA of length %d", rdEnd-u.off)
		}
		var v4 [4]byte
		copy(v4[:], u.msg[u.off:rdEnd])
		u.off = rdEnd
		return A{Addr: netip.AddrFrom4(v4)}, nil
	case TypeAAAA:
		if rdEnd-u.off != 16 {
			return nil, fmt.Errorf("dnswire: AAAA RDATA of length %d", rdEnd-u.off)
		}
		var v6 [16]byte
		copy(v6[:], u.msg[u.off:rdEnd])
		u.off = rdEnd
		return AAAA{Addr: netip.AddrFrom16(v6)}, nil
	case TypeNS:
		n, err := u.name()
		return NS{Host: n}, err
	case TypeCNAME:
		n, err := u.name()
		return CNAME{Target: n}, err
	case TypePTR:
		n, err := u.name()
		return PTR{Target: n}, err
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = u.name(); err != nil {
			return nil, err
		}
		if s.RName, err = u.name(); err != nil {
			return nil, err
		}
		for _, dst := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *dst, err = u.uint32(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case TypeMX:
		pref, err := u.uint16()
		if err != nil {
			return nil, err
		}
		host, err := u.name()
		if err != nil {
			return nil, err
		}
		return MX{Preference: pref, Host: host}, nil
	case TypeTXT:
		var t TXT
		for u.off < rdEnd {
			l := int(u.msg[u.off])
			if u.off+1+l > rdEnd {
				return nil, ErrTruncatedMessage
			}
			t.Strings = append(t.Strings, string(u.msg[u.off+1:u.off+1+l]))
			u.off += 1 + l
		}
		if len(t.Strings) == 0 {
			return nil, errors.New("dnswire: empty TXT RDATA")
		}
		return t, nil
	case TypeSRV:
		var s SRV
		var err error
		if s.Priority, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Weight, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Port, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Target, err = u.name(); err != nil {
			return nil, err
		}
		return s, nil
	case TypeOPT:
		o := OPT{Options: append([]byte(nil), u.msg[u.off:rdEnd]...)}
		u.off = rdEnd
		return o, nil
	case TypeDNSKEY:
		var k DNSKEY
		var err error
		if k.Flags, err = u.uint16(); err != nil {
			return nil, err
		}
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		k.Protocol = u.msg[u.off]
		k.Algorithm = u.msg[u.off+1]
		u.off += 2
		k.PublicKey = append([]byte(nil), u.msg[u.off:rdEnd]...)
		u.off = rdEnd
		return k, nil
	case TypeDS:
		var d DS
		var err error
		if d.KeyTag, err = u.uint16(); err != nil {
			return nil, err
		}
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		d.Algorithm = u.msg[u.off]
		d.DigestType = u.msg[u.off+1]
		u.off += 2
		d.Digest = append([]byte(nil), u.msg[u.off:rdEnd]...)
		u.off = rdEnd
		return d, nil
	case TypeRRSIG:
		var s RRSIG
		tc, err := u.uint16()
		if err != nil {
			return nil, err
		}
		s.TypeCovered = Type(tc)
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		s.Algorithm = u.msg[u.off]
		s.Labels = u.msg[u.off+1]
		u.off += 2
		for _, dst := range []*uint32{&s.OrigTTL, &s.Expiration, &s.Inception} {
			if *dst, err = u.uint32(); err != nil {
				return nil, err
			}
		}
		if s.KeyTag, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.SignerName, err = u.name(); err != nil {
			return nil, err
		}
		if u.off > rdEnd {
			return nil, ErrTruncatedMessage
		}
		s.Signature = append([]byte(nil), u.msg[u.off:rdEnd]...)
		u.off = rdEnd
		return s, nil
	default:
		raw := Unknown{TypeCode: t, Raw: append([]byte(nil), u.msg[u.off:rdEnd]...)}
		u.off = rdEnd
		return raw, nil
	}
}
