package dnssec_test

import (
	"fmt"
	"time"

	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

// Example signs a zone and verifies one of its RRsets.
func Example() {
	z, err := zone.ParseString(`
@	3600	IN	NS	ns1.example.
ns1	3600	IN	A	192.0.2.1
www	300	IN	A	192.0.2.80
`, dnswire.MustName("example."))
	if err != nil {
		panic(err)
	}

	signer, err := dnssec.GenerateSigner(dnswire.MustName("example."), 3600, nil)
	if err != nil {
		panic(err)
	}
	now := time.Now()
	ds, err := dnssec.SignZone(z, signer, now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		panic(err)
	}
	fmt.Println("DS type for the parent:", ds.Type())

	set := z.RRSet(dnswire.MustName("www.example."), dnswire.TypeA)
	sigs := z.RRSet(dnswire.MustName("www.example."), dnswire.TypeRRSIG)
	err = dnssec.VerifyRRSet(signer.Key, sigs[0], set, now)
	fmt.Println("signature valid:", err == nil)
	// Output:
	// DS type for the parent: DS
	// signature valid: true
}
