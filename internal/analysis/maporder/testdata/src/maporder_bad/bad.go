// Package maporder_bad is a failing fixture: map iteration order
// leaking into emitted output.
package maporder_bad

import (
	"fmt"
	"io"
	"strings"
)

// PrintStats emits one line per key straight out of the map.
func PrintStats(w io.Writer, counts map[string]int) {
	for name, n := range counts { // want "map iteration order feeds output via fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", name, n)
	}
}

// BuildReport appends rows to a builder in map order.
func BuildReport(rows map[string]string) string {
	var b strings.Builder
	for k, v := range rows { // want "map iteration order feeds output via WriteString"
		b.WriteString(k)
		b.WriteString(v)
	}
	return b.String()
}

// Sink is a stats sink in the metrics/persist shape.
type Sink struct{}

// Observe records one sample.
func (s *Sink) Observe(name string, v int) {}

// RecordAll journals entries in map order.
func RecordAll(s *Sink, m map[string]int) {
	for k, v := range m { // want "map iteration order feeds output via Observe"
		s.Observe(k, v)
	}
}
