package debughttp

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"resilientdns/internal/metrics"
	"resilientdns/internal/resolve"
)

func TestStatsEndpoint(t *testing.T) {
	var h metrics.Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var empty metrics.Histogram

	mux := New(Options{
		Stats: func() any { return map[string]int{"queries_in": 7} },
		Latency: func() map[string]metrics.HistogramSnapshot {
			return map[string]metrics.HistogramSnapshot{
				"stage/iterate":    h.Snapshot(),
				"stage/chain_walk": empty.Snapshot(),
			}
		},
	})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p struct {
		Server  map[string]int            `json:"server"`
		Latency map[string]LatencySummary `json:"latency"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Server["queries_in"] != 7 {
		t.Errorf("server stats = %v", p.Server)
	}
	it, ok := p.Latency["stage/iterate"]
	if !ok || it.Count != 2 || it.MeanUS != 2000 {
		t.Errorf("stage/iterate = %+v, want count 2 mean 2000µs", it)
	}
	if _, ok := p.Latency["stage/chain_walk"]; ok {
		t.Error("empty histogram was not omitted")
	}
}

func TestQueriesEndpoint(t *testing.T) {
	ring := resolve.NewRing(8)
	for i := uint64(1); i <= 5; i++ {
		ring.Observe(resolve.TraceSummary{ID: i, Kind: "query"})
	}
	mux := New(Options{Ring: ring})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?n=2", nil))
	var got []resolve.TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(got) != 2 || got[0].ID != 5 || got[1].ID != 4 {
		t.Fatalf("queries = %+v, want the 2 newest (5, 4)", got)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status = %d, want 400", rec.Code)
	}

	// No ring configured: an empty list, not a null or a panic.
	rec = httptest.NewRecorder()
	New(Options{}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if body := rec.Body.String(); body != "[]\n" {
		t.Errorf("no-ring body = %q, want []", body)
	}
}

// TestMeshAndBuildSections: the stats payload carries the mesh counters
// and build section when configured, and the /debug/peers route exists
// exactly when a membership source is wired in.
func TestMeshAndBuildSections(t *testing.T) {
	mux := New(Options{
		Stats: func() any { return map[string]int{} },
		Mesh:  func() any { return map[string]uint64{"frames_in": 42} },
		Peers: func() any {
			return map[string]any{"self": "10.9.0.1:7946", "peers": []string{"10.9.0.2:7946"}}
		},
		Build: func() any { return map[string]any{"go": "go1.x", "uptime_s": 3} },
	})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stats", nil))
	var p struct {
		Build map[string]any    `json:"build"`
		Mesh  map[string]uint64 `json:"mesh"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Mesh["frames_in"] != 42 {
		t.Errorf("mesh section = %v, want frames_in 42", p.Mesh)
	}
	if p.Build["go"] != "go1.x" {
		t.Errorf("build section = %v", p.Build)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/peers", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/peers status = %d", rec.Code)
	}
	var peers struct {
		Self  string   `json:"self"`
		Peers []string `json:"peers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &peers); err != nil {
		t.Fatalf("bad peers JSON: %v\n%s", err, rec.Body.String())
	}
	if peers.Self != "10.9.0.1:7946" || len(peers.Peers) != 1 {
		t.Errorf("peers payload = %+v", peers)
	}
}

// TestPeersRouteAbsentWithoutMesh: a non-mesh server must 404 the peers
// route and omit the mesh section rather than serve empty placeholders.
func TestPeersRouteAbsentWithoutMesh(t *testing.T) {
	mux := New(Options{Stats: func() any { return map[string]int{} }})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/peers", nil))
	if rec.Code != 404 {
		t.Errorf("/debug/peers on a meshless server = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stats", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["mesh"]; ok {
		t.Error("meshless stats payload still carries a mesh section")
	}
}
