// Package onepath_bad is a failing fixture: direct Transport.Exchange
// calls outside the fetch engine.
package onepath_bad

import "context"

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// conn is a concrete implementation: calls through it are just as
// forbidden as calls through the interface.
type conn struct{}

func (conn) Exchange(ctx context.Context, server string, query []byte) ([]byte, error) {
	return nil, nil
}

// Refetch bypasses the fetch engine through the interface.
func Refetch(ctx context.Context, tr Transport, server string, q []byte) ([]byte, error) {
	return tr.Exchange(ctx, server, q) // want "direct Transport.Exchange call"
}

// Probe bypasses it through a concrete transport.
func Probe(ctx context.Context) {
	var c conn
	c.Exchange(ctx, "10.0.0.1", nil) // want "direct Transport.Exchange call"
}

// exchangeLike does NOT match the shape (no context first parameter)
// and must not be flagged.
type currency struct{}

func (currency) Exchange(from, to string, amount int) int { return amount }

func Convert() int {
	var c currency
	return c.Exchange("USD", "EUR", 100)
}
