package lockexchange_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/lockexchange"
)

func TestLockExchange(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, lockexchange.Analyzer,
		"lockexchange_bad", "lockexchange_ok", "lockexchange_ignored")
}
