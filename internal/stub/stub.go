// Package stub implements the stub-resolver (SR) side of the paper's
// Figure 1: a small client that sends recursion-desired queries to one or
// more caching servers. Configuring stubs with several caching servers is
// the paper's §6 answer to attacks on the caching servers themselves —
// the client fails over to the next server.
package stub

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// Client is a stub resolver. The zero value is not usable; set Servers.
type Client struct {
	// Servers are the caching servers, tried in order on failure.
	Servers []transport.Addr
	// Transport defaults to UDP with TCP fallback on truncation.
	Transport transport.Transport
	// Retries is the number of attempts per server (default 2).
	Retries int
	// Timeout bounds each attempt (default 3s).
	Timeout time.Duration

	// qid is the outgoing query-ID counter, seeded from crypto/rand on
	// first use (the same scheme as the caching server's). It used to be
	// a math/rand stream seeded from time.Now().UnixNano(), which made
	// two stubs started in the same nanosecond emit identical —
	// guessable — QID sequences.
	qidOnce sync.Once
	qid     atomic.Uint32
}

// ErrNoServers reports a client with no configured servers.
var ErrNoServers = errors.New("stub: no servers configured")

// ErrAllServersFailed reports that every server and retry failed.
var ErrAllServersFailed = errors.New("stub: all servers failed")

// NXDomainError reports an authoritative "name does not exist" answer.
type NXDomainError struct {
	Name dnswire.Name
}

// Error implements error.
func (e *NXDomainError) Error() string { return fmt.Sprintf("stub: no such domain %s", e.Name) }

func (c *Client) transportOrDefault() transport.Transport {
	if c.Transport != nil {
		return c.Transport
	}
	return &transport.UDPWithTCPFallback{
		UDP: transport.UDP{Timeout: c.timeout()},
		TCP: transport.TCP{Timeout: c.timeout()},
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 3 * time.Second
}

func (c *Client) nextID() uint16 {
	c.qidOnce.Do(func() {
		var seed [4]byte
		// crypto/rand.Read never fails on supported platforms (it
		// aborts the program rather than degrade); the error branch
		// keeps the counter at zero, still unique per client.
		if _, err := crand.Read(seed[:]); err == nil {
			c.qid.Store(binary.LittleEndian.Uint32(seed[:]))
		}
	})
	return uint16(c.qid.Add(1))
}

// Exchange sends one recursion-desired query, failing over across servers
// and retries, and returns the raw response message.
func (c *Client) Exchange(ctx context.Context, name dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(c.Servers) == 0 {
		return nil, ErrNoServers
	}
	tr := c.transportOrDefault()
	retries := c.Retries
	if retries <= 0 {
		retries = 2
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		for _, server := range c.Servers {
			q := dnswire.NewQuery(c.nextID(), name, qtype)
			q.Flags.RecursionDesired = true
			resp, err := tr.Exchange(ctx, server, q)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.RCode == dnswire.RCodeServFail {
				lastErr = fmt.Errorf("stub: SERVFAIL from %s", server)
				continue
			}
			return resp, nil
		}
	}
	if lastErr == nil {
		lastErr = ErrAllServersFailed
	}
	return nil, fmt.Errorf("%w: %v", ErrAllServersFailed, lastErr)
}

// Lookup resolves (name, qtype) and returns the answer records.
// NXDOMAIN is reported as *NXDomainError.
func (c *Client) Lookup(ctx context.Context, name dnswire.Name, qtype dnswire.Type) ([]dnswire.RR, error) {
	resp, err := c.Exchange(ctx, name, qtype)
	if err != nil {
		return nil, err
	}
	switch resp.RCode {
	case dnswire.RCodeNoError:
		return resp.Answer, nil
	case dnswire.RCodeNXDomain:
		return nil, &NXDomainError{Name: name}
	default:
		return nil, fmt.Errorf("stub: %s for %s %s", resp.RCode, name, qtype)
	}
}

// LookupHost resolves a host name to its IPv4 and IPv6 addresses,
// following CNAME chains in the answer.
func (c *Client) LookupHost(ctx context.Context, host string) ([]netip.Addr, error) {
	name, err := dnswire.CanonicalName(host)
	if err != nil {
		return nil, err
	}
	var addrs []netip.Addr
	rrs, err := c.Lookup(ctx, name, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case dnswire.A:
			addrs = append(addrs, d.Addr)
		case dnswire.AAAA:
			addrs = append(addrs, d.Addr)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("stub: no addresses for %s", host)
	}
	return addrs, nil
}

// LookupTXT resolves TXT strings for a name.
func (c *Client) LookupTXT(ctx context.Context, host string) ([]string, error) {
	name, err := dnswire.CanonicalName(host)
	if err != nil {
		return nil, err
	}
	rrs, err := c.Lookup(ctx, name, dnswire.TypeTXT)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range rrs {
		if txt, ok := rr.Data.(dnswire.TXT); ok {
			out = append(out, txt.Strings...)
		}
	}
	return out, nil
}

// LookupMX resolves mail exchangers, sorted by preference.
func (c *Client) LookupMX(ctx context.Context, domain string) ([]dnswire.MX, error) {
	name, err := dnswire.CanonicalName(domain)
	if err != nil {
		return nil, err
	}
	rrs, err := c.Lookup(ctx, name, dnswire.TypeMX)
	if err != nil {
		return nil, err
	}
	var out []dnswire.MX
	for _, rr := range rrs {
		if mx, ok := rr.Data.(dnswire.MX); ok {
			out = append(out, mx)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Preference < out[j-1].Preference; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
