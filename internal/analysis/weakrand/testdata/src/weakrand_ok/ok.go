// Package weakrand_ok is a passing fixture: deterministic,
// fixed-seed math/rand in a simulation-style package (not in the
// banned list) is exactly what reproducible workloads want, and
// crypto/rand is always fine.
package weakrand_ok

import (
	crand "crypto/rand"
	"math/rand"
)

// Workload builds a deterministic generator from a caller-chosen seed.
func Workload(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Nonce uses crypto/rand, as security-sensitive code should.
func Nonce() ([8]byte, error) {
	var b [8]byte
	_, err := crand.Read(b[:])
	return b, err
}
