module resilientdns

go 1.22
