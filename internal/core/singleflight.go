package core

import (
	"context"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/resolve"
)

// flightTimeout is the hard ceiling on one detached flight. A flight
// deliberately outlives any single caller (a cancelled leader hands off
// to the remaining waiters), so no caller's deadline bounds it — without
// its own ceiling a black-holed upstream chain would pin the flight
// goroutine and its table slot indefinitely. Generous compared to the
// frontend's per-query budget: the flight only needs to die eventually,
// waiters give up on their own schedule.
const flightTimeout = 30 * time.Second

// flightCall is one in-flight resolution of a (name, type) pair shared by
// every concurrent Resolve call asking the same question.
type flightCall struct {
	// done closes when res/err are final; they are written before the
	// close and only read after it.
	done chan struct{}
	// cancel aborts the flight's resolution context. Called only when
	// the last waiter leaves (see abandonFlight): a cancelled leader
	// hands the flight off to the remaining waiters rather than failing
	// them.
	cancel context.CancelFunc
	// waiters counts callers blocked on done; guarded by cs.flightMu so
	// joining and abandoning serialize (a joiner can never slip in after
	// the "last" waiter left and latch onto a cancelled flight).
	waiters int

	res *Result
	err error
}

// resolveCoalesced resolves qname/qtype through the in-flight table: the
// first caller for a key starts the resolution on its own goroutine, and
// later callers for the same key wait on the existing flight. The
// resolution runs under a context detached from any single caller, so a
// cancelled caller only aborts the upstream work when no other caller is
// still waiting on it.
func (cs *CachingServer) resolveCoalesced(ctx context.Context, tr *resolve.Trace, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	key := cache.Key{Name: qname, Type: qtype}

	cs.flightMu.Lock()
	c, joined := cs.flight[key]
	if !joined {
		fctx, fcancel := context.WithTimeout(context.Background(), flightTimeout)
		c = &flightCall{done: make(chan struct{}), cancel: fcancel}
		cs.flight[key] = c
		go cs.runFlight(fctx, key, c, qname, qtype)
	}
	c.waiters++
	cs.flightMu.Unlock()
	if joined {
		cs.stats.coalesced.Add(1)
		tr.MarkCoalesced()
	}

	select {
	case <-c.done:
		// The result is shared across waiters; Result and its Answer
		// slice are treated as immutable by all callers.
		return c.res, c.err
	case <-ctx.Done():
		cs.abandonFlight(key, c)
		return nil, ctx.Err()
	}
}

// runFlight performs the actual resolution for one flight and publishes
// the outcome. It always detaches the flight from the table before
// closing done, so no waiter can observe a completed flight in the map.
// The flight serves every coalesced waiter, so it carries its own trace
// (KindResolve) rather than borrowing any single caller's: a trace
// belongs to one goroutine, and the callers' traces live on theirs.
func (cs *CachingServer) runFlight(fctx context.Context, key cache.Key, c *flightCall, qname dnswire.Name, qtype dnswire.Type) {
	// The whole flight — every referral step, nested glue fetch, and
	// failover attempt — draws from one upstream retry budget.
	fctx = resolve.WithRetryBudget(fctx, cs.cfg.Upstream.RetryBudget)
	ftr := cs.resolver.NewTrace(resolve.KindResolve, qname, qtype)
	res, err := cs.resolver.ResolveChain(fctx, ftr, qname, qtype)
	cs.resolver.FinishTrace(ftr, res, err)

	cs.flightMu.Lock()
	if cs.flight[key] == c {
		delete(cs.flight, key)
	}
	cs.flightMu.Unlock()

	c.res, c.err = res, err
	close(c.done)
	c.cancel()
}

// abandonFlight removes a departing waiter from c and, when it was the
// last one, cancels the flight's resolution and retires the flight from
// the table so the next caller starts fresh.
func (cs *CachingServer) abandonFlight(key cache.Key, c *flightCall) {
	cs.flightMu.Lock()
	c.waiters--
	if c.waiters > 0 {
		cs.flightMu.Unlock()
		return
	}
	// Guard against racing a newer flight under the same key: only
	// retire c itself. runFlight may already have detached it.
	if cs.flight[key] == c {
		delete(cs.flight, key)
	}
	cs.flightMu.Unlock()
	c.cancel()
}
