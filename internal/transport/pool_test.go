package transport

// Hammer tests for the pooled-buffer ownership rule: a wire buffer goes
// back to the pool the moment the socket op is done, which is only sound
// because dnswire.Unpack copies the wire and the resulting Message never
// aliases it. Run under -race these would flag any recycled buffer still
// feeding a live Message; the content checks below catch silent
// corruption even without the race detector.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

// txtEchoHandler answers each query with a TXT record carrying the query
// name — response contents depend on the query, so any cross-query buffer
// reuse corrupting a live Message shows up as the wrong payload.
func txtEchoHandler() Handler {
	return HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Answer = []dnswire.RR{{
			Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.TXT{Strings: []string{string(q.Question[0].Name)}},
		}}
		return r
	})
}

func checkEchoed(resp *dnswire.Message, wantID uint16, wantName dnswire.Name) error {
	if resp.ID != wantID {
		return fmt.Errorf("ID = %d, want %d", resp.ID, wantID)
	}
	if len(resp.Answer) != 1 {
		return fmt.Errorf("got %d answers, want 1", len(resp.Answer))
	}
	txt, ok := resp.Answer[0].Data.(dnswire.TXT)
	if !ok || len(txt.Strings) != 1 || txt.Strings[0] != string(wantName) {
		return fmt.Errorf("answer = %+v, want TXT %q", resp.Answer[0].Data, wantName)
	}
	return nil
}

// TestUDPPooledBuffersDoNotAliasMessages hammers the UDP client and
// server pooled paths concurrently, retains every response, and verifies
// all of them afterwards — long after their buffers have been recycled
// through many other exchanges.
func TestUDPPooledBuffersDoNotAliasMessages(t *testing.T) {
	srv := &UDPServer{Handler: txtEchoHandler(), Readers: 2, MaxPayload: 4096}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	const goroutines = 8
	const perG = 30
	type held struct {
		id   uint16
		name dnswire.Name
		resp *dnswire.Message
	}
	results := make([][]held, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := &UDP{Timeout: 2 * time.Second}
			for i := 0; i < perG; i++ {
				id := uint16(g*1000 + i)
				name := dnswire.MustName(fmt.Sprintf("q%d-%d.%s.example.", g, i, strings.Repeat("pad", 5)))
				q := dnswire.NewQuery(id, name, dnswire.TypeTXT)
				q.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
				resp, err := u.Exchange(context.Background(), Addr(addr), q)
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				// Retain the Message; do NOT check yet. Its source buffer
				// is recycled by later iterations before we look at it.
				results[g] = append(results[g], held{id, name, resp})
			}
		}(g)
	}
	wg.Wait()

	for g, rs := range results {
		for i, h := range rs {
			if err := checkEchoed(h.resp, h.id, h.name); err != nil {
				t.Errorf("g%d i%d: retained response corrupted after buffer recycling: %v", g, i, err)
			}
		}
	}
}

// TestTCPPooledFramingDoesNotAliasMessages does the same over the TCP
// framing helpers: ReadTCPMessage's pooled body buffer is returned before
// the Message is, so retained responses must survive later reads.
func TestTCPPooledFramingDoesNotAliasMessages(t *testing.T) {
	srv := &TCPServer{Handler: txtEchoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	conn, err := dialTCP(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	const n = 50
	type held struct {
		id   uint16
		name dnswire.Name
		resp *dnswire.Message
	}
	var kept []held
	for i := 0; i < n; i++ {
		id := uint16(500 + i)
		name := dnswire.MustName(fmt.Sprintf("tcp-%d.example.", i))
		q := dnswire.NewQuery(id, name, dnswire.TypeTXT)
		if err := WriteTCPMessage(conn, q); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		kept = append(kept, held{id, name, resp})
	}
	for i, h := range kept {
		if err := checkEchoed(h.resp, h.id, h.name); err != nil {
			t.Errorf("query %d: retained response corrupted after buffer recycling: %v", i, err)
		}
	}
}
