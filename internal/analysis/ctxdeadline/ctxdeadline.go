// Package ctxdeadline proves that every call path reaching an upstream
// network exchange carries a context with a real deadline.
//
// "Does Your DNS Recursion Really Time Out as Intended?" (Wang, 2016)
// measured recursive resolvers that hang, retry forever, or serialize
// behind one black-holed authoritative server because some fetch path
// lost its deadline. This repo bounds fetches in several layers —
// per-attempt RTT-derived timeouts, retry budgets, frontend timeouts —
// but each of those is conditional (the upstream selection layer can be
// disabled with -no-selection, and then Transport.Exchange runs with
// exactly the deadline its context carries). The invariant that must
// hold is therefore a dataflow property: a context on which neither
// context.WithTimeout nor context.WithDeadline was ever applied must
// not reach Transport.Exchange, an engine fetch, a zone transfer, or a
// mesh peer call.
//
// The analysis is a may-unbounded taint over context values, built on
// the shared dataflow index (no go/ssa in the vendored toolchain; see
// internal/analysis/dataflow):
//
//   - context.Background() and context.TODO() are unbounded origins;
//   - context.WithTimeout/WithDeadline results are bounded;
//   - context.WithCancel/WithValue (and any other function returning a
//     context) pass their context argument's origins through, unless
//     the callee is known to add a deadline on every return path (the
//     AddsDeadline fact);
//   - a variable's origins are the union over all of its definitions
//     (flow-insensitive: after `ctx, cancel = context.WithTimeout(ctx, t)`
//     inside an `if`, the variable is both bounded and whatever it was
//     before — which is exactly the conditional-timeout hole this
//     analyzer exists to see through; rebind to a fresh variable to
//     declare a context bounded);
//   - any method named Exchange whose first parameter is a
//     context.Context (the transport.Transport shape) is a sink, and a
//     function that lets one of its own context parameters reach a sink
//     unbounded exports a NeedsDeadline fact, turning its callers into
//     sinks across package boundaries — this is how engine fetches,
//     xfer transfers, and mesh peer-fetch become sinks without being
//     named here.
//
// An unbounded origin reaching a sink is reported at the sink call.
// Reporting is scoped to the production fetch chain (-pkgs); fact
// computation runs everywhere so chains propagate through unscoped
// packages. Deliberately out of scope, by design rather than Makefile
// wiring: the trace-driven simulator and experiments (single-threaded
// under a virtual clock, where a wall-clock deadline would break
// determinism — the wallclock analyzer owns that territory), and
// _test.go files (the go test runner bounds every test). Closure
// parameters of context type are assumed bounded by the closure's
// caller.
package ctxdeadline

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"

	"resilientdns/internal/analysis/dataflow"
	"resilientdns/internal/analysis/lintutil"
)

const name = "ctxdeadline"

// defaultPkgs is the production fetch chain: every package from which
// an upstream exchange, zone transfer, or mesh peer call is reachable
// in a live process. cmd/ daemons and probes are included — losing a
// deadline in main() is how the Wang 2016 resolvers hung.
const defaultPkgs = "resilientdns/internal/core," +
	"resilientdns/internal/resolve," +
	"resilientdns/internal/transport," +
	"resilientdns/internal/xfer," +
	"resilientdns/internal/mesh," +
	"resilientdns/internal/stub," +
	"resilientdns/cmd/dnscache," +
	"resilientdns/cmd/dnsserver," +
	"resilientdns/cmd/dnsquery," +
	"resilientdns/cmd/dnsperf"

// NeedsDeadline is exported for a function that lets the listed context
// parameters reach a network sink without applying a deadline: callers
// must hand it bounded contexts.
type NeedsDeadline struct {
	// Params lists the indices (into the signature's parameter tuple)
	// of context parameters that must carry a deadline.
	Params []int
}

func (*NeedsDeadline) AFact() {}

func (f *NeedsDeadline) String() string { return fmt.Sprintf("NeedsDeadline%v", f.Params) }

// AddsDeadline is exported for a function that returns a context which
// is bounded on every return path (a WithTimeout wrapper): its result
// is bounded regardless of its arguments.
type AddsDeadline struct{}

func (*AddsDeadline) AFact() {}

func (*AddsDeadline) String() string { return "AddsDeadline" }

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "prove every path into Transport.Exchange (and the engine/xfer/mesh fetch chains above it) " +
		"carries a context bounded by WithTimeout/WithDeadline; flag context.Background/TODO flows " +
		"that arrive unbounded",
	Requires:  []*analysis.Analyzer{dataflow.Builder},
	FactTypes: []analysis.Fact{(*NeedsDeadline)(nil), (*AddsDeadline)(nil)},
	Run:       run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) where unbounded contexts reaching a fetch are reported")
}

// origin is one possible provenance of a context value.
type origin struct {
	// kind is one of the origin kinds below.
	kind int
	// param is the context parameter index for originParam.
	param int
}

const (
	originBounded = iota
	originUnbounded
	originParam
)

type checker struct {
	pass *analysis.Pass
	df   *dataflow.Info
	supp *lintutil.Suppressor

	// needs maps same-package functions to the set of context parameter
	// indices that must be bounded; grown to a fixpoint.
	needs map[*types.Func]map[int]bool
	// adds marks same-package functions that bound their returned
	// context on every path.
	adds map[*types.Func]bool
	// report enables diagnostics (fact computation runs regardless).
	report bool
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	c := &checker{
		pass:   pass,
		df:     pass.ResultOf[dataflow.Builder].(*dataflow.Info),
		supp:   lintutil.NewSuppressor(pass),
		needs:  make(map[*types.Func]map[int]bool),
		adds:   make(map[*types.Func]bool),
		report: lintutil.PkgMatches(pass.Pkg.Path(), pkgs),
	}

	// AddsDeadline pass: wrapper detection is not recursive, so one
	// sweep suffices.
	for _, fi := range c.df.Funcs {
		if fi.Obj != nil && c.addsDeadline(fi) {
			c.adds[fi.Obj] = true
		}
	}

	// NeedsDeadline fixpoint over same-package call edges (imported
	// facts are stable inputs).
	for changed := true; changed; {
		changed = false
		for _, fi := range c.df.Funcs {
			if fi.Obj == nil || fi.Parent != nil {
				continue
			}
			before := len(c.needs[fi.Obj])
			c.analyze(fi, false)
			if len(c.needs[fi.Obj]) != before {
				changed = true
			}
		}
	}

	// Export facts, then the reporting pass.
	for fn, params := range c.needs {
		if len(params) == 0 {
			continue
		}
		idx := make([]int, 0, len(params))
		for i := range params {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		c.pass.ExportObjectFact(fn, &NeedsDeadline{Params: idx})
	}
	for fn := range c.adds {
		c.pass.ExportObjectFact(fn, &AddsDeadline{})
	}
	if c.report {
		for _, fi := range c.df.Funcs {
			if fi.Parent != nil {
				continue
			}
			c.analyze(fi, true)
		}
	}
	c.supp.ReportStale(pass, name)
	return nil, nil
}

// addsDeadline reports whether fi returns a context that is bounded on
// every return path (and returns a context at all).
func (c *checker) addsDeadline(fi *dataflow.FuncInfo) bool {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	ctxResult := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if dataflow.IsContextType(sig.Results().At(i).Type()) {
			ctxResult = i
		}
	}
	if ctxResult < 0 {
		return false
	}
	hasReturn, allBounded := false, true
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ctxResult >= len(ret.Results) {
			// Naked or call-forwarding return; not provably bounding.
			allBounded = false
			return true
		}
		hasReturn = true
		for _, o := range c.origins(ret.Results[ctxResult], -1, nil, make(map[*types.Var]bool)) {
			if o.kind != originBounded {
				allBounded = false
			}
		}
		return true
	})
	return hasReturn && allBounded
}

// analyze walks fi's body (nested closures included — their sinks are
// charged to the enclosing declaration), either growing the
// NeedsDeadline set (report=false) or emitting diagnostics for
// unbounded origins (report=true).
func (c *checker) analyze(fi *dataflow.FuncInfo, report bool) {
	params := c.ctxParams(fi)
	ast.Inspect(fi.Node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := c.df.Callee(call)
		if callee == nil {
			return true
		}
		for _, argIdx := range c.sinkParams(callee) {
			if argIdx >= len(call.Args) {
				continue
			}
			arg := call.Args[argIdx]
			unbounded := false
			for _, o := range c.origins(arg, -1, params, make(map[*types.Var]bool)) {
				switch o.kind {
				case originUnbounded:
					unbounded = true
				case originParam:
					if !report && fi.Obj != nil {
						set := c.needs[fi.Obj]
						if set == nil {
							set = make(map[int]bool)
							c.needs[fi.Obj] = set
						}
						set[o.param] = true
					}
				}
			}
			if unbounded && report && !lintutil.InTestFile(c.pass, call.Pos()) {
				c.supp.Report(c.pass, name, call.Pos(),
					"context without a deadline (from context.Background/TODO) reaches %s: "+
						"wrap it with context.WithTimeout/WithDeadline so a black-holed upstream cannot hang this path",
					callee.Name())
			}
		}
		return true
	})
}

// ctxParams maps fi's own context parameters to their signature indices.
func (c *checker) ctxParams(fi *dataflow.FuncInfo) map[*types.Var]int {
	if fi.Obj == nil {
		return nil
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[*types.Var]int)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if dataflow.IsContextType(p.Type()) {
			out[p] = i
		}
	}
	return out
}

// sinkParams returns the context argument indices that must be bounded
// when calling fn, or nil if fn is not a sink. Exchange-shaped methods
// are sinks by shape; other functions are sinks per their NeedsDeadline
// fact (imported cross-package, or the same-package fixpoint state).
func (c *checker) sinkParams(fn *types.Func) []int {
	if dataflow.ExchangeShaped(fn) {
		return []int{0}
	}
	if set, ok := c.needs[fn]; ok && len(set) > 0 {
		idx := make([]int, 0, len(set))
		for i := range set {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		return idx
	}
	var fact NeedsDeadline
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// origins computes the provenance set of a context-valued expression.
// index selects a result from a multi-result call (-1 = single value);
// params maps the enclosing function's context parameters to indices;
// seen breaks definition cycles.
func (c *checker) origins(e ast.Expr, index int, params map[*types.Var]int, seen map[*types.Var]bool) []origin {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		v := c.df.VarOf(e)
		if v == nil {
			return []origin{{kind: originBounded}}
		}
		if i, ok := params[v]; ok {
			return []origin{{kind: originParam, param: i}}
		}
		if seen[v] {
			return nil
		}
		seen[v] = true
		defs := c.df.Defs(v)
		if len(defs) == 0 {
			// No visible definition: another function's parameter (a
			// closure's own context parameter, or a captured variable
			// from a scope this walk did not pair with a param map).
			// Assume the provider bounded it.
			return []origin{{kind: originBounded}}
		}
		var out []origin
		for _, d := range defs {
			out = append(out, c.origins(d.RHS, d.Index, params, seen)...)
		}
		return out
	case *ast.CallExpr:
		return c.callOrigins(e, params, seen)
	case *ast.SelectorExpr:
		// A context stored in a struct field: provenance is invisible
		// here; assume the writer bounded it (the write site is where
		// the flow is checked).
		return []origin{{kind: originBounded}}
	default:
		return []origin{{kind: originBounded}}
	}
}

// callOrigins resolves the provenance of a call's context result.
func (c *checker) callOrigins(call *ast.CallExpr, params map[*types.Var]int, seen map[*types.Var]bool) []origin {
	fn := c.df.Callee(call)
	if fn == nil {
		return []origin{{kind: originBounded}}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		switch fn.Name() {
		case "Background", "TODO":
			return []origin{{kind: originUnbounded}}
		case "WithTimeout", "WithDeadline", "WithTimeoutCause", "WithDeadlineCause":
			return []origin{{kind: originBounded}}
		case "WithCancel", "WithCancelCause", "WithValue", "WithoutCancel":
			// Pass-through: the child is exactly as bounded as the
			// parent. (WithoutCancel also drops the deadline, so it
			// conservatively inherits rather than clearing.)
			if len(call.Args) > 0 {
				return c.origins(call.Args[0], -1, params, seen)
			}
		}
		return []origin{{kind: originBounded}}
	}
	if c.adds[fn] {
		return []origin{{kind: originBounded}}
	}
	var fact AddsDeadline
	if c.pass.ImportObjectFact(fn, &fact) {
		return []origin{{kind: originBounded}}
	}
	// Unknown context-returning function: assume it passes its context
	// arguments through (the WithRetryBudget shape). With no context
	// arguments its result's provenance is invisible; assume bounded.
	var out []origin
	for _, arg := range call.Args {
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && dataflow.IsContextType(tv.Type) {
			out = append(out, c.origins(arg, -1, params, seen)...)
		}
	}
	if len(out) == 0 {
		return []origin{{kind: originBounded}}
	}
	return out
}
