// Package weakrand_seed is a failing fixture: math/rand seeded from
// the wall clock. This package is NOT in the banned list — wall-clock
// seeding is flagged everywhere.
package weakrand_seed

import (
	"math/rand"
	"time"
)

// NewRNG seeds from time.Now, so two callers in the same nanosecond
// get identical streams.
func NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "math/rand seeded from time.Now is predictable"
}

// SeedGlobal seeds the global source from the wall clock.
func SeedGlobal() {
	rand.Seed(time.Now().Unix()) // want "math/rand seeded from time.Now is predictable"
}

// SeedIndirect hides the clock one call deeper; still caught.
func SeedIndirect(epoch time.Time) *rand.Source {
	s := rand.NewSource(int64(time.Since(epoch))) // want "math/rand seeded from time.Since is predictable"
	return &s
}
