GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: the race detector gates every PR.
check: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x .
