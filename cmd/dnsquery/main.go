// Command dnsquery is a minimal dig-like client for this repository's DNS
// stack.
//
// Usage:
//
//	dnsquery -server 127.0.0.1:5301 www.example.com A
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsquery:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "127.0.0.1:5301", "DNS server address (host:port)")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	rd := flag.Bool("rd", true, "set the recursion-desired flag")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: dnsquery [-server host:port] <name> [type]")
	}
	name, err := dnswire.CanonicalName(flag.Arg(0))
	if err != nil {
		return err
	}
	qtype := dnswire.TypeA
	if flag.NArg() > 1 {
		qtype, err = dnswire.ParseType(flag.Arg(1))
		if err != nil {
			return err
		}
	}

	var qidBytes [2]byte
	if _, err := crand.Read(qidBytes[:]); err != nil {
		return fmt.Errorf("drawing query ID: %w", err)
	}
	q := dnswire.NewQuery(binary.LittleEndian.Uint16(qidBytes[:]), name, qtype)
	q.Flags.RecursionDesired = *rd
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	u := &transport.UDP{Timeout: *timeout}
	start := time.Now()
	resp, err := u.Exchange(ctx, transport.Addr(*server), q)
	if err != nil {
		return err
	}
	fmt.Print(resp.String())
	fmt.Printf(";; query time: %v, server: %s\n", time.Since(start).Round(time.Microsecond), *server)
	return nil
}
