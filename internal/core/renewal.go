package core

import (
	"container/heap"
	"context"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/resolve"
)

// renewItem is one scheduled renewal check for a zone's cached IRRs.
type renewItem struct {
	due  time.Time
	zone dnswire.Name
	seq  uint64
}

// renewQueue is a min-heap of renewal checks ordered by (due, seq).
type renewQueue struct {
	items []*renewItem
	seq   uint64
}

func (q *renewQueue) Len() int { return len(q.items) }

func (q *renewQueue) Less(i, j int) bool {
	if !q.items[i].due.Equal(q.items[j].due) {
		return q.items[i].due.Before(q.items[j].due)
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *renewQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *renewQueue) Push(x any) { q.items = append(q.items, x.(*renewItem)) }

func (q *renewQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// scheduleRenewal enqueues a renewal check for zone shortly before
// expires. At most one queue entry exists per zone; later expiries are
// handled by re-queuing on pop. Fleet members check a whole takeover
// window early: the owner renews at the window's edge so its gossip
// reaches non-owners with time to spare, and a non-owner whose owner
// never delivers still has room for a last-chance local renewal.
func (cs *CachingServer) scheduleRenewal(zone dnswire.Name, expires time.Time) {
	lead := renewLead
	if cs.cfg.RenewalOwner != nil {
		lead = takeoverLead
	}
	cs.scheduleRenewalAt(zone, expires.Add(-lead))
}

// scheduleRenewalAt enqueues a renewal check for zone at exactly due.
func (cs *CachingServer) scheduleRenewalAt(zone dnswire.Name, due time.Time) {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	if cs.scheduled[zone] {
		return
	}
	cs.scheduled[zone] = true
	cs.renew.seq++
	heap.Push(&cs.renew, &renewItem{due: due, zone: zone, seq: cs.renew.seq})
}

// Owner-renewal deferral timing. Fleet members consider each zone a full
// takeoverLead before expiry. The owner renews right away at the window's
// edge (a few seconds of TTL traded for slack), so in the healthy case
// its gossip extends every non-owner's copy at the first or second poll
// and deferral costs only a couple of checks per TTL cycle. A non-owner
// re-polls every ownerRecheck — long enough for mesh failure detection
// (DeadAfter×ProbeInterval, ~4 s at defaults) to re-derive ownership away
// from a dead owner mid-window — and if the entry is still not extended
// lastChance before expiry, it renews locally anyway: the owner is dead,
// partitioned, or never had the zone (its client shard never queried it),
// and starving the zone would turn the dedup win into blackout failures.
// All three are strictly positive, so a deferral always re-queues in the
// future and the ProcessDueRenewals drain loop terminates.
const (
	takeoverLead = 10 * time.Second
	ownerRecheck = 2 * time.Second
	lastChance   = 2 * time.Second
)

// NextRenewalDue returns the earliest pending renewal check time. The
// trace-driven simulator uses it to advance the virtual clock precisely to
// each renewal instant.
func (cs *CachingServer) NextRenewalDue() (time.Time, bool) {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	if cs.renew.Len() == 0 {
		return time.Time{}, false
	}
	return cs.renew.items[0].due, true
}

// ProcessDueRenewals runs every renewal check due at or before now and
// returns how many refetches were issued. The scheduler lock is released
// across each zone's refetch, so renewal traffic never blocks concurrent
// query traffic (and vice versa). Items a renewal re-queues are always
// due in the future, so the drain loop terminates.
func (cs *CachingServer) ProcessDueRenewals(ctx context.Context, now time.Time) int {
	issued := 0
	for {
		cs.renewMu.Lock()
		if cs.renew.Len() == 0 || cs.renew.items[0].due.After(now) {
			cs.renewMu.Unlock()
			return issued
		}
		it := heap.Pop(&cs.renew).(*renewItem)
		delete(cs.scheduled, it.zone)
		cs.renewMu.Unlock()
		if cs.renewZone(ctx, it.zone, now) {
			issued++
		}
	}
}

// renewZone decides whether the zone's IRRs should be refetched and, if
// so, spends one credit doing it. Reports whether a refetch was issued.
// Called without renewMu held.
func (cs *CachingServer) renewZone(ctx context.Context, zone dnswire.Name, now time.Time) bool {
	if cs.cfg.Renewal == nil {
		return false
	}
	e := cs.cache.Peek(zone, dnswire.TypeNS)
	if e == nil || !e.Infra {
		return false // expired or evicted; nothing to renew
	}
	lead := renewLead
	if own := cs.cfg.RenewalOwner; own != nil {
		// Fleet members act inside the takeover window, not at the
		// solo renewLead instant: the owner renews at the window's
		// edge so gossip lands with time to spare.
		lead = takeoverLead
		if !own(zone) && e.Expires.Sub(now) > lastChance {
			// Another fleet member owns this zone's renewal duty:
			// don't spend a credit — its gossiped refresh will extend
			// our copy. Poll through the takeover window so a dead
			// owner's zones are reclaimed once membership re-derives;
			// when the gossip arrives first, the next check sees the
			// new expiry and re-queues far out. If the window runs
			// down to lastChance with no refresh, fall through and
			// renew locally: the owner is unreachable or never had
			// the zone, and letting the entry expire would trade the
			// dedup win for resolution failures.
			cs.stats.renewalDeferred.Add(1)
			next := e.Expires.Add(-takeoverLead)
			if !next.After(now) {
				next = now.Add(ownerRecheck)
			}
			cs.scheduleRenewalAt(zone, next)
			return false
		}
	}
	if e.Expires.Add(-lead).After(now) {
		// The entry was refreshed since this check was scheduled;
		// requeue for the real due time.
		cs.scheduleRenewal(zone, e.Expires)
		return false
	}
	cs.renewMu.Lock()
	if cs.credits[zone] < 1 {
		cs.renewMu.Unlock()
		return false // out of credit: let the IRRs expire normally
	}
	cs.credits[zone]--
	cs.renewMu.Unlock()
	cs.stats.renewalQueries.Add(1)
	// One renewal cycle gets one retry budget, like one resolution does.
	ctx = resolve.WithRetryBudget(ctx, cs.cfg.Upstream.RetryBudget)
	tr := cs.resolver.NewTrace(resolve.KindRenewal, zone, dnswire.TypeNS)

	// Refetch the zone's own NS RRset from its servers through the shared
	// fetch engine. The response's answer carries the NS set and its glue,
	// which ingest re-caches with answer credibility, resetting the TTL.
	addrs := cs.resolver.ZoneAddrs(e.RRs)
	resp, err := cs.resolver.Refetch(ctx, tr, zone, addrs)
	if err != nil {
		cs.stats.renewalFailed.Add(1)
		cs.resolver.FinishTrace(tr, nil, err)
		return true
	}
	cs.resolver.Ingest(resp, zone, zone)
	// Guarantee the renewal outcome even if credibility rules would have
	// ignored the copies: renewal explicitly extends the zone's IRRs (NS
	// and server addresses).
	cs.cache.Extend(zone, dnswire.TypeNS)
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		cs.cache.Extend(host, dnswire.TypeA)
		cs.cache.Extend(host, dnswire.TypeAAAA)
	}
	cs.stats.renewals.Add(1)
	cs.resolver.FinishTrace(tr, &Result{RCode: dnswire.RCodeNoError}, nil)
	if ne := cs.cache.Peek(zone, dnswire.TypeNS); ne != nil {
		cs.scheduleRenewal(zone, ne.Expires)
	}
	if h := cs.cfg.OnRenewed; h != nil {
		// Let the mesh gossip the refreshed IRR set: one owner refetch
		// warms the whole fleet.
		h(zone)
	}
	return true
}

// renewalCycleTimeout bounds one live renewal sweep. A sweep refetches
// every due zone sequentially, so it inherits the slowest upstream on
// the list; 30s is enough for a handful of full referral walks and
// small enough that a wedged sweep clears before renewals pile up.
const renewalCycleTimeout = 30 * time.Second

// RunRenewalLoop services renewals in real time until ctx is cancelled.
// Use it with the wall clock when running as a live caching server; the
// trace-driven simulator calls ProcessDueRenewals directly instead.
func (cs *CachingServer) RunRenewalLoop(ctx context.Context) {
	const idlePoll = time.Second
	for {
		due, ok := cs.NextRenewalDue()
		var wait time.Duration
		if !ok {
			wait = idlePoll
		} else {
			wait = time.Until(due)
			if wait < 0 {
				wait = 0
			}
			if wait > idlePoll {
				wait = idlePoll
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
		// Each sweep gets its own deadline: a renewal refetch against a
		// black-holed authoritative must not hang the loop (and with it
		// every later renewal) past the next polling rounds. The
		// simulator path (ProcessDueRenewals called directly) stays
		// unbounded — the virtual clock cannot hang.
		cctx, cancel := context.WithTimeout(ctx, renewalCycleTimeout)
		cs.ProcessDueRenewals(cctx, cs.cfg.Clock.Now())
		cancel()
	}
}
