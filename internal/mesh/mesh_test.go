package mesh

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
)

// fakeBackend is a canned caching-server surface for node tests. It is
// mutex-guarded because the real-UDP tests touch it from the read-loop
// goroutine while the test goroutine asserts on it.
type fakeBackend struct {
	mu       sync.Mutex
	irr      map[dnswire.Name]*dnswire.Message
	ingested map[dnswire.Name]*dnswire.Message
	answers  map[dnswire.Name]*dnswire.Message
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		irr:      make(map[dnswire.Name]*dnswire.Message),
		ingested: make(map[dnswire.Name]*dnswire.Message),
		answers:  make(map[dnswire.Name]*dnswire.Message),
	}
}

func (b *fakeBackend) setIRR(zone dnswire.Name, msg *dnswire.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.irr[zone] = msg
}

func (b *fakeBackend) setAnswer(name dnswire.Name, msg *dnswire.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.answers[name] = msg
}

func (b *fakeBackend) getIngested(zone dnswire.Name) *dnswire.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ingested[zone]
}

func (b *fakeBackend) ZoneIRRMessage(zone dnswire.Name) *dnswire.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.irr[zone]
}

func (b *fakeBackend) IngestPeerIRRs(zone dnswire.Name, msg *dnswire.Message) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ingested[zone] = msg
	return true
}

func (b *fakeBackend) PeerAnswer(q *dnswire.Message) *dnswire.Message {
	b.mu.Lock()
	a, ok := b.answers[q.Question[0].Name]
	b.mu.Unlock()
	if !ok {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	resp := q.Reply()
	resp.RCode = a.RCode
	resp.Answer = a.Answer
	resp.Authority = a.Authority
	return resp
}

// testFleet wires n nodes over a deterministic MeshNet, everyone seeded
// with everyone.
type testFleet struct {
	clk      *simclock.Virtual
	net      *simnet.MeshNet
	nodes    []*Node
	backends []*fakeBackend
	counters []*metrics.MeshCounters
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	clk := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	f := &testFleet{clk: clk, net: simnet.NewMeshNet(clk)}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:7946", i+1)
	}
	for _, self := range addrs {
		var peers []string
		for _, a := range addrs {
			if a != self {
				peers = append(peers, a)
			}
		}
		backend := newFakeBackend()
		counters := &metrics.MeshCounters{}
		node, err := NewNode(Config{
			Self:         self,
			Key:          testKey,
			Peers:        peers,
			Transport:    f.net.Bind(self),
			Clock:        clk,
			Backend:      backend,
			OwnerRenewal: true,
			Counters:     counters,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.net.Register(self, node.HandleFrame)
		f.nodes = append(f.nodes, node)
		f.backends = append(f.backends, backend)
		f.counters = append(f.counters, counters)
	}
	return f
}

// tick runs one failure-detector round on every node at the current
// virtual time, then advances the clock past the probe interval.
func (f *testFleet) tick() {
	now := f.clk.Now()
	for _, n := range f.nodes {
		n.Tick(now)
	}
	f.clk.Advance(DefaultProbeInterval)
}

func TestHandshakeConfirmsPeers(t *testing.T) {
	f := newTestFleet(t, 2)
	f.tick() // first probes: challenge + retry confirm both directions
	for i, n := range f.nodes {
		snap := n.Snapshot()
		if len(snap.Peers) != 1 {
			t.Fatalf("node %d has %d peers, want 1", i, len(snap.Peers))
		}
		p := snap.Peers[0]
		if p.State != "alive" || !p.Confirmed {
			t.Errorf("node %d peer = %+v, want alive and confirmed", i, p)
		}
	}
	if got := f.counters[0].Snapshot().ChallengesSent; got == 0 {
		t.Error("no challenge issued on first contact; handshake not exercised")
	}
}

// TestUnconfirmedSourceNotActedOn pins the anti-reflection contract: a
// frame that authenticates under the fleet key but does not echo the
// source's cookie must not be acted on — the only reply is a challenge
// no larger than the request, and the backend is never invoked.
func TestUnconfirmedSourceNotActedOn(t *testing.T) {
	f := newTestFleet(t, 1)
	node, backend := f.nodes[0], f.backends[0]

	zone := dnswire.MustName("victim.example.")
	push, err := EncodeIRRPush(zone, &dnswire.Message{
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.NS{Host: dnswire.MustName("ns.victim.example.")},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cookie := range []uint64{0, 0xabcdef} { // absent and wrong
		raw, err := EncodeFrame(testKey, Frame{Type: TIRRPush, Seq: 5, Cookie: cookie, Payload: push})
		if err != nil {
			t.Fatal(err)
		}
		reply := node.HandleFrame(raw, "198.51.100.7:7946")
		if reply == nil {
			t.Fatal("expected a challenge reply")
		}
		rf, err := DecodeFrame(testKey, reply)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Type != TChallenge {
			t.Errorf("cookie %#x: reply type = %d, want TChallenge", cookie, rf.Type)
		}
		if len(reply) > len(raw) {
			t.Errorf("cookie %#x: challenge (%d bytes) larger than request (%d bytes): amplification",
				cookie, len(reply), len(raw))
		}
		if backend.getIngested(zone) != nil {
			t.Fatalf("cookie %#x: unconfirmed push was ingested", cookie)
		}
	}
	if got := f.counters[0].Snapshot().FramesUnconfirmed; got != 2 {
		t.Errorf("FramesUnconfirmed = %d, want 2", got)
	}

	// Echoing the issued cookie must then be accepted.
	chal := node.HandleFrame(mustFrame(t, Frame{Type: TIRRPush, Seq: 6, Payload: push}), "198.51.100.7:7946")
	cf, err := DecodeFrame(testKey, chal)
	if err != nil {
		t.Fatal(err)
	}
	ack := node.HandleFrame(mustFrame(t, Frame{Type: TIRRPush, Seq: 7, Cookie: cf.Cookie, Payload: push}), "198.51.100.7:7946")
	af, err := DecodeFrame(testKey, ack)
	if err != nil || af.Type != TIRRAck {
		t.Fatalf("confirmed push not acked: frame=%+v err=%v", af, err)
	}
	if backend.getIngested(zone) == nil {
		t.Error("confirmed push was not ingested")
	}
}

func mustFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	raw, err := EncodeFrame(testKey, f)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestUnauthenticatedFrameDropped(t *testing.T) {
	f := newTestFleet(t, 1)
	node := f.nodes[0]
	wrongKey, err := EncodeFrame([]byte("not-the-fleet-key"), Frame{Type: TPing, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range [][]byte{nil, []byte("junk"), wrongKey} {
		if reply := node.HandleFrame(raw, "203.0.113.9:7946"); reply != nil {
			t.Errorf("unauthenticated frame %q got a %d-byte reply, want silence", raw, len(reply))
		}
	}
	if got := f.counters[0].Snapshot().FramesBadMAC; got != 3 {
		t.Errorf("FramesBadMAC = %d, want 3", got)
	}
	if len(f.nodes[0].Snapshot().Peers) != 0 {
		t.Error("unauthenticated source was admitted to the member list")
	}
}

func TestOwnershipAgreesAcrossFleet(t *testing.T) {
	f := newTestFleet(t, 3)
	f.tick()
	ownerCount := make(map[string]int)
	for i := 0; i < 50; i++ {
		zone := dnswire.MustName(fmt.Sprintf("zone%d.example.", i))
		owner := f.nodes[0].Owner(zone)
		ownerCount[owner]++
		for j, n := range f.nodes[1:] {
			if got := n.Owner(zone); got != owner {
				t.Fatalf("node %d says %s owns %s; node 0 says %s", j+1, got, zone, owner)
			}
		}
		owns := 0
		for _, n := range f.nodes {
			if n.OwnsRenewal(zone) {
				owns++
			}
		}
		if owns != 1 {
			t.Errorf("%d nodes claim renewal duty for %s, want exactly 1", owns, zone)
		}
	}
	// HRW should spread zones across the fleet, not pile them on one node.
	if len(ownerCount) != 3 {
		t.Errorf("ownership distribution %v does not use all 3 nodes", ownerCount)
	}
}

func TestOwnerRenewalDisabledOwnsEverything(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	net := simnet.NewMeshNet(clk)
	n, err := NewNode(Config{
		Self: "10.0.0.1:7946", Key: testKey, Peers: []string{"10.0.0.2:7946"},
		Transport: net.Bind("10.0.0.1:7946"), Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		zone := dnswire.MustName(fmt.Sprintf("z%d.example.", i))
		if !n.OwnsRenewal(zone) {
			t.Fatalf("OwnerRenewal off but OwnsRenewal(%s) = false", zone)
		}
	}
}

func TestFailureDetectionAndOwnershipTakeover(t *testing.T) {
	f := newTestFleet(t, 3)
	f.tick() // confirm everyone

	// Find a zone owned by node 2, then kill node 2.
	var zone dnswire.Name
	victim := f.nodes[2].Self()
	for i := 0; ; i++ {
		z := dnswire.MustName(fmt.Sprintf("takeover%d.example.", i))
		if f.nodes[0].Owner(z) == victim {
			zone = z
			break
		}
	}
	f.net.Isolate(victim)
	for i := 0; i < DefaultDeadAfter; i++ {
		f.tick()
	}
	for i, n := range f.nodes[:2] {
		snap := n.Snapshot()
		var st string
		for _, p := range snap.Peers {
			if p.Addr == victim {
				st = p.State
			}
		}
		if st != "dead" {
			t.Fatalf("node %d sees %s as %q after %d failed probes, want dead", i, victim, st, DefaultDeadAfter)
		}
	}
	newOwner := f.nodes[0].Owner(zone)
	if newOwner == victim {
		t.Fatalf("dead node still owns %s", zone)
	}
	if got := f.nodes[1].Owner(zone); got != newOwner {
		t.Errorf("survivors disagree on new owner: %s vs %s", got, newOwner)
	}
	owns := 0
	for _, n := range f.nodes[:2] {
		if n.OwnsRenewal(zone) {
			owns++
		}
	}
	if owns != 1 {
		t.Errorf("%d survivors claim %s after takeover, want exactly 1", owns, zone)
	}
}

func TestSuspectPeerKeepsOwnership(t *testing.T) {
	f := newTestFleet(t, 3)
	f.tick()
	zone := dnswire.MustName("steady.example.")
	before := f.nodes[0].Owner(zone)

	// One lost probe round: the peer may go suspect but must keep its
	// zones — a transient drop must not reshuffle renewal duty.
	victim := f.nodes[2].Self()
	f.net.Isolate(victim)
	f.tick()
	f.net.Rejoin(victim)
	if got := f.nodes[0].Owner(zone); got != before {
		t.Errorf("one lost probe moved ownership of %s: %s -> %s", zone, before, got)
	}
}

func TestGossipZonePushesToPeers(t *testing.T) {
	f := newTestFleet(t, 3)
	f.tick()
	zone := dnswire.MustName("gossip.example.")
	f.backends[0].setIRR(zone, &dnswire.Message{
		Question: []dnswire.Question{{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassIN}},
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 120,
			Data: dnswire.NS{Host: dnswire.MustName("ns.gossip.example.")},
		}},
	})
	f.nodes[0].GossipZone(zone)
	for i, b := range f.backends[1:] {
		msg := b.getIngested(zone)
		if msg == nil {
			t.Fatalf("peer %d never ingested the push", i+1)
		}
		if len(msg.Answer) != 1 || msg.Answer[0].Name != zone {
			t.Errorf("peer %d ingested %+v", i+1, msg.Answer)
		}
	}
	if got := f.counters[0].Snapshot().IRRPushesSent; got != 2 {
		t.Errorf("IRRPushesSent = %d, want 2", got)
	}
}

func TestPeerFetch(t *testing.T) {
	f := newTestFleet(t, 2)
	f.tick()
	qname := dnswire.MustName("www.fetch.example.")

	// Peer has it cached: the fetch must return the answer.
	f.backends[1].setAnswer(qname, &dnswire.Message{
		Answer: []dnswire.RR{{
			Name: qname, Class: dnswire.ClassIN, TTL: 30,
			Data: dnswire.A{Addr: mustAddr(t, "192.0.2.10")},
		}},
	})
	msg := f.nodes[0].PeerFetch(context.Background(), qname, dnswire.TypeA)
	if msg == nil || len(msg.Answer) != 1 {
		t.Fatalf("PeerFetch = %+v, want the peer's cached answer", msg)
	}
	c := f.counters[0].Snapshot()
	if c.FetchesSent != 1 || c.FetchHits != 1 {
		t.Errorf("fetch counters = sent %d hits %d, want 1/1", c.FetchesSent, c.FetchHits)
	}

	// Peer has nothing: SERVFAIL maps to a nil miss.
	if msg := f.nodes[0].PeerFetch(context.Background(), dnswire.MustName("cold.example."), dnswire.TypeA); msg != nil {
		t.Errorf("PeerFetch of uncached name = %+v, want nil", msg)
	}
	if c := f.counters[0].Snapshot(); c.FetchHits != 1 {
		t.Errorf("miss counted as hit: FetchHits = %d", c.FetchHits)
	}
}

func TestPeerFetchNoLivePeers(t *testing.T) {
	f := newTestFleet(t, 2)
	f.net.Isolate(f.nodes[1].Self())
	for i := 0; i < DefaultDeadAfter; i++ {
		f.tick()
	}
	if msg := f.nodes[0].PeerFetch(context.Background(), dnswire.MustName("x.example."), dnswire.TypeA); msg != nil {
		t.Errorf("PeerFetch with all peers dead = %+v, want nil", msg)
	}
}

func TestIsPeerIP(t *testing.T) {
	f := newTestFleet(t, 2)
	if f.nodes[0].IsPeerIP(mustAddr(t, "10.0.0.2")) {
		t.Error("unconfirmed peer IP already exempt")
	}
	f.tick()
	if !f.nodes[0].IsPeerIP(mustAddr(t, "10.0.0.2")) {
		t.Error("confirmed peer IP not recognised")
	}
	if f.nodes[0].IsPeerIP(mustAddr(t, "203.0.113.50")) {
		t.Error("stranger IP recognised as peer")
	}
}

// TestIncarnationRefutesStaleSuspicion: a node hearing itself rumoured
// suspect must bump its incarnation so the refutation overrides the
// rumour fleet-wide.
func TestIncarnationRefutesStaleSuspicion(t *testing.T) {
	f := newTestFleet(t, 2)
	f.tick()
	self := f.nodes[1].Self()
	f.nodes[1].mergeDigest(PingPayload{
		From:   f.nodes[0].Self(),
		Digest: []DigestEntry{{Addr: self, State: StateSuspect, Incarnation: 0}},
	}, f.clk.Now())
	if got := f.nodes[1].Snapshot().Incarnation; got == 0 {
		t.Error("rumoured-suspect node did not bump its incarnation")
	}
	// The bumped incarnation must now win the merge on the rumour holder.
	f.tick()
	for _, p := range f.nodes[0].Snapshot().Peers {
		if p.Addr == self && p.State != "alive" {
			t.Errorf("refutation did not propagate: %s is %s on node 0", self, p.State)
		}
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
