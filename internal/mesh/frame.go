// Package mesh lets multiple caching-server instances cooperate as one
// resilient fleet: SWIM-lite membership gossip, rendezvous-hashed
// renewal ownership, IRR push gossip, and a peer-fetch fallback for
// zones whose authoritative servers are unreachable mid-attack.
//
// Every frame on the mesh port is authenticated with a truncated
// HMAC-SHA256 under the fleet's shared key and, beyond that, gated by a
// DNS-cookies-style source-address confirmation handshake: a request
// from a source that has not echoed the cookie we issued to it is
// answered only with a fixed-size challenge (never larger than the
// request), so the mesh port cannot be used as a reflection or
// amplification vector even by an attacker replaying captured frames.
package mesh

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"resilientdns/internal/dnswire"
)

// Frame types. Requests (Ping, IRRPush, FetchReq) are initiated by a
// peer and answered; responses (Ack, IRRAck, FetchResp) ride back on
// the same socket matched by sequence number. Challenge is the one
// frame sent to unconfirmed sources.
const (
	TPing      = 1 // membership probe, carries a peer digest
	TAck       = 2 // probe response, carries the responder's digest
	TChallenge = 3 // cookie handout for an unconfirmed source
	TIRRPush   = 4 // owner pushing a refreshed IRR set for one zone
	TIRRAck    = 5 // push acknowledged (payload empty)
	TFetchReq  = 6 // cache/stale answer request for a blacked-out zone
	TFetchResp = 7 // cache/stale answer (or SERVFAIL on miss)
)

// Frame flags.
const (
	// FlagRelayed marks a FetchReq that was itself triggered by a
	// peer fetch. A node never forwards a relayed fetch to another
	// peer, bounding peer-fetch to a single hop (no forwarding loops
	// when ownership views disagree during a membership change).
	FlagRelayed = 0x1
)

const (
	frameMagic0 = 'R'
	frameMagic1 = 'M'
	// frameVersion is bumped on any wire-incompatible change; mixed
	// fleets with different versions simply fail the decode and drop.
	frameVersion = 1

	headerLen = 19 // magic(2) + ver(1) + type(1) + flags(1) + seq(4) + cookie(8) + paylen(2)
	macLen    = 16 // HMAC-SHA256 truncated; 128-bit tags are ample for an online forgery setting

	// MaxPayload bounds the payload so every frame fits comfortably in
	// one unfragmented UDP datagram alongside header and MAC.
	MaxPayload = 4096

	// MaxFrame is the largest encoded frame.
	MaxFrame = headerLen + MaxPayload + macLen
)

// Frame is one decoded mesh datagram.
type Frame struct {
	Type    byte
	Flags   byte
	Seq     uint32
	Cookie  uint64
	Payload []byte
}

// ErrBadFrame covers every decode failure: short datagram, bad magic,
// wrong version, length mismatch, or MAC verification failure. Callers
// drop the datagram silently either way, so the causes share one error.
var ErrBadFrame = errors.New("mesh: bad frame")

// EncodeFrame serialises and authenticates a frame under key.
func EncodeFrame(key []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("mesh: payload %d exceeds max %d", len(f.Payload), MaxPayload)
	}
	b := make([]byte, 0, headerLen+len(f.Payload)+macLen)
	b = append(b, frameMagic0, frameMagic1, frameVersion, f.Type, f.Flags)
	b = binary.BigEndian.AppendUint32(b, f.Seq)
	b = binary.BigEndian.AppendUint64(b, f.Cookie)
	b = binary.BigEndian.AppendUint16(b, uint16(len(f.Payload)))
	b = append(b, f.Payload...)
	mac := hmac.New(sha256.New, key)
	mac.Write(b)
	b = append(b, mac.Sum(nil)[:macLen]...)
	return b, nil
}

// DecodeFrame parses and authenticates a datagram. The returned payload
// aliases b.
func DecodeFrame(key, b []byte) (Frame, error) {
	if len(b) < headerLen+macLen {
		return Frame{}, ErrBadFrame
	}
	if b[0] != frameMagic0 || b[1] != frameMagic1 || b[2] != frameVersion {
		return Frame{}, ErrBadFrame
	}
	payLen := int(binary.BigEndian.Uint16(b[17:19]))
	if payLen > MaxPayload || len(b) != headerLen+payLen+macLen {
		return Frame{}, ErrBadFrame
	}
	body, tag := b[:headerLen+payLen], b[headerLen+payLen:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)[:macLen]) {
		return Frame{}, ErrBadFrame
	}
	return Frame{
		Type:    b[3],
		Flags:   b[4],
		Seq:     binary.BigEndian.Uint32(b[5:9]),
		Cookie:  binary.BigEndian.Uint64(b[9:17]),
		Payload: b[headerLen : headerLen+payLen],
	}, nil
}

// PeekTypeSeq reads a frame's type and sequence number without
// verifying the MAC. Transports use it to route datagrams between the
// response-matching path and the request handler; authentication still
// happens in DecodeFrame before any frame is acted on.
func PeekTypeSeq(b []byte) (typ byte, seq uint32, ok bool) {
	if len(b) < headerLen || b[0] != frameMagic0 || b[1] != frameMagic1 {
		return 0, 0, false
	}
	return b[3], binary.BigEndian.Uint32(b[5:9]), true
}

// IsResponseType reports whether typ is a frame type that answers a
// request (and is therefore matched to a pending call by sequence
// number rather than dispatched to the request handler).
func IsResponseType(typ byte) bool {
	switch typ {
	case TAck, TChallenge, TIRRAck, TFetchResp:
		return true
	}
	return false
}

// --- payload codecs ---
//
// Payloads use the same style as the persist store: length-prefixed
// strings, fixed-width big-endian integers, and dnswire-packed messages
// for anything DNS-shaped.

// PeerState is a member's health as seen by one node.
type PeerState uint8

const (
	StateAlive PeerState = iota
	StateSuspect
	StateDead
)

// String renders the state for /debug/peers.
func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// DigestEntry is one member's row in a gossiped membership digest.
type DigestEntry struct {
	Addr        string
	State       PeerState
	Incarnation uint64
}

// PingPayload is carried by both Ping and Ack: the sender's identity
// plus its current view of the membership.
type PingPayload struct {
	From        string // sender's canonical mesh address (host:port)
	Incarnation uint64 // sender's own incarnation
	Digest      []DigestEntry
}

func appendString8(b []byte, s string) ([]byte, error) {
	if len(s) > 255 {
		return nil, fmt.Errorf("mesh: string %q too long", s)
	}
	b = append(b, byte(len(s)))
	return append(b, s...), nil
}

func readString8(b []byte) (string, []byte, error) {
	if len(b) < 1 || len(b) < 1+int(b[0]) {
		return "", nil, ErrBadFrame
	}
	n := int(b[0])
	return string(b[1 : 1+n]), b[1+n:], nil
}

// EncodePing serialises a PingPayload.
func EncodePing(p PingPayload) ([]byte, error) {
	if len(p.Digest) > 0xffff {
		return nil, fmt.Errorf("mesh: digest too large (%d entries)", len(p.Digest))
	}
	b, err := appendString8(nil, p.From)
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint64(b, p.Incarnation)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Digest)))
	for _, d := range p.Digest {
		if b, err = appendString8(b, d.Addr); err != nil {
			return nil, err
		}
		b = append(b, byte(d.State))
		b = binary.BigEndian.AppendUint64(b, d.Incarnation)
	}
	if len(b) > MaxPayload {
		return nil, fmt.Errorf("mesh: ping payload %d exceeds max %d", len(b), MaxPayload)
	}
	return b, nil
}

// DecodePing parses a Ping/Ack payload.
func DecodePing(b []byte) (PingPayload, error) {
	var p PingPayload
	var err error
	if p.From, b, err = readString8(b); err != nil {
		return PingPayload{}, err
	}
	if len(b) < 10 {
		return PingPayload{}, ErrBadFrame
	}
	p.Incarnation = binary.BigEndian.Uint64(b)
	n := int(binary.BigEndian.Uint16(b[8:]))
	b = b[10:]
	for i := 0; i < n; i++ {
		var d DigestEntry
		if d.Addr, b, err = readString8(b); err != nil {
			return PingPayload{}, err
		}
		if len(b) < 9 {
			return PingPayload{}, ErrBadFrame
		}
		d.State = PeerState(b[0])
		if d.State > StateDead {
			return PingPayload{}, ErrBadFrame
		}
		d.Incarnation = binary.BigEndian.Uint64(b[1:])
		b = b[9:]
		p.Digest = append(p.Digest, d)
	}
	if len(b) != 0 {
		return PingPayload{}, ErrBadFrame
	}
	return p, nil
}

// EncodeIRRPush serialises a zone name plus its dnswire-packed IRR set.
func EncodeIRRPush(zone dnswire.Name, msg *dnswire.Message) ([]byte, error) {
	wire, err := msg.Pack()
	if err != nil {
		return nil, err
	}
	if len(wire) > 0xffff {
		return nil, fmt.Errorf("mesh: IRR message too large (%d bytes)", len(wire))
	}
	b, err := appendString8(nil, zone.String())
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(wire)))
	b = append(b, wire...)
	if len(b) > MaxPayload {
		return nil, fmt.Errorf("mesh: IRR push payload %d exceeds max %d", len(b), MaxPayload)
	}
	return b, nil
}

// DecodeIRRPush parses an IRRPush payload.
func DecodeIRRPush(b []byte) (dnswire.Name, *dnswire.Message, error) {
	s, b, err := readString8(b)
	if err != nil {
		return "", nil, err
	}
	zone, err := dnswire.CanonicalName(s)
	if err != nil {
		return "", nil, ErrBadFrame
	}
	if len(b) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) != 2+n {
		return "", nil, ErrBadFrame
	}
	msg, err := dnswire.Unpack(b[2 : 2+n])
	if err != nil {
		return "", nil, ErrBadFrame
	}
	return zone, msg, nil
}

// EncodeMsg serialises a dnswire message for FetchReq/FetchResp.
func EncodeMsg(msg *dnswire.Message) ([]byte, error) {
	wire, err := msg.Pack()
	if err != nil {
		return nil, err
	}
	if len(wire) > MaxPayload-2 {
		return nil, fmt.Errorf("mesh: message too large (%d bytes)", len(wire))
	}
	b := binary.BigEndian.AppendUint16(nil, uint16(len(wire)))
	return append(b, wire...), nil
}

// DecodeMsg parses a FetchReq/FetchResp payload.
func DecodeMsg(b []byte) (*dnswire.Message, error) {
	if len(b) < 2 {
		return nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) != 2+n {
		return nil, ErrBadFrame
	}
	msg, err := dnswire.Unpack(b[2 : 2+n])
	if err != nil {
		return nil, ErrBadFrame
	}
	return msg, nil
}
