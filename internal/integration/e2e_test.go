// Package integration exercises the full stack end to end over real
// sockets: authoritative servers serving master-file zones over UDP and
// TCP, the resilient caching server resolving iteratively across them,
// and a stub client talking to the caching server — the complete Figure 1
// deployment from the paper, on localhost.
package integration

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/stub"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// stack is a localhost DNS deployment: root, TLD, and leaf zone servers,
// a caching server, and a stub client.
type stack struct {
	cs     *core.CachingServer
	csAddr string
	stub   *stub.Client
	close  []func()
}

func (s *stack) Close() {
	for i := len(s.close) - 1; i >= 0; i-- {
		s.close[i]()
	}
}

// placeholder IPs inside zone data; AddrMapper routes them to real ports.
const (
	rootIP = "10.1.0.1"
	tldIP  = "10.1.0.2"
	leafIP = "10.1.0.3"
)

func startStack(t *testing.T, csConfig core.Config) *stack {
	t.Helper()
	st := &stack{}

	mustZone := func(text string, origin dnswire.Name) *zone.Zone {
		z, err := zone.ParseString(text, origin)
		if err != nil {
			t.Fatalf("zone %s: %v", origin, err)
		}
		return z
	}

	rootZone := mustZone(`
@	518400	IN	NS	a.root-servers.net.
a.root-servers.net.	518400	IN	A	`+rootIP+`
test.	172800	IN	NS	ns1.test.
ns1.test.	172800	IN	A	`+tldIP+`
`, dnswire.Root)
	tldZone := mustZone(`
@	172800	IN	NS	ns1.test.
ns1.test.	172800	IN	A	`+tldIP+`
corp.test.	3600	IN	NS	ns1.corp.test.
ns1.corp.test.	3600	IN	A	`+leafIP+`
`, dnswire.MustName("test."))
	// The leaf zone includes a TXT RRset large enough to force UDP
	// truncation, exercising the TCP fallback path.
	var big strings.Builder
	big.WriteString(`
@	3600	IN	NS	ns1.corp.test.
ns1	3600	IN	A	` + leafIP + `
www	300	IN	A	192.0.2.80
alias	300	IN	CNAME	www
mail	300	IN	MX	10 www.corp.test.
`)
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&big, "big\t300\tIN\tTXT\t\"%02d-%s\"\n", i, strings.Repeat("x", 60))
	}
	leafZone := mustZone(big.String(), dnswire.MustName("corp.test."))

	serveBoth := func(z *zone.Zone) string {
		srv := authserver.New(z)
		udp := &transport.UDPServer{Handler: srv}
		addr, err := udp.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("udp listen: %v", err)
		}
		st.close = append(st.close, func() { udp.Close() })
		tcp := &transport.TCPServer{Handler: srv}
		if _, err := tcp.Listen(addr); err != nil {
			t.Fatalf("tcp listen on %s: %v", addr, err)
		}
		st.close = append(st.close, func() { tcp.Close() })
		return addr
	}

	rootAddr := serveBoth(rootZone)
	tldAddr := serveBoth(tldZone)
	leafAddr := serveBoth(leafZone)
	portOf := map[string]string{rootIP: rootAddr, tldIP: tldAddr, leafIP: leafAddr}

	csConfig.Transport = &transport.UDPWithTCPFallback{
		UDP: transport.UDP{Timeout: time.Second},
		TCP: transport.TCP{Timeout: time.Second},
	}
	csConfig.RootHints = []core.ServerRef{{
		Host: dnswire.MustName("a.root-servers.net."),
		Addr: transport.Addr(rootAddr),
	}}
	csConfig.AddrMapper = func(a netip.Addr) transport.Addr {
		if real, ok := portOf[a.String()]; ok {
			return transport.Addr(real)
		}
		return transport.Addr(a.String() + ":53")
	}
	cs, err := core.NewCachingServer(csConfig)
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	st.cs = cs

	csSrv := &transport.UDPServer{Handler: cs}
	csAddr, err := csSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cs listen: %v", err)
	}
	st.close = append(st.close, func() { csSrv.Close() })
	csTCP := &transport.TCPServer{Handler: cs}
	if _, err := csTCP.Listen(csAddr); err != nil {
		t.Fatalf("cs tcp listen: %v", err)
	}
	st.close = append(st.close, func() { csTCP.Close() })
	st.csAddr = csAddr
	st.stub = &stub.Client{
		Servers: []transport.Addr{transport.Addr(csAddr)},
		Timeout: 2 * time.Second,
	}
	return st
}

func TestEndToEndResolution(t *testing.T) {
	st := startStack(t, core.Config{RefreshTTL: true})
	defer st.Close()

	addrs, err := st.stub.LookupHost(context.Background(), "www.corp.test")
	if err != nil {
		t.Fatalf("LookupHost: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.80") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestEndToEndCNAME(t *testing.T) {
	st := startStack(t, core.Config{})
	defer st.Close()

	addrs, err := st.stub.LookupHost(context.Background(), "alias.corp.test")
	if err != nil {
		t.Fatalf("LookupHost via CNAME: %v", err)
	}
	if len(addrs) != 1 {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestEndToEndMX(t *testing.T) {
	st := startStack(t, core.Config{})
	defer st.Close()

	mx, err := st.stub.LookupMX(context.Background(), "mail.corp.test")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if len(mx) != 1 || mx[0].Host != "www.corp.test." {
		t.Errorf("mx = %v", mx)
	}
}

func TestEndToEndNXDomain(t *testing.T) {
	st := startStack(t, core.Config{})
	defer st.Close()

	_, err := st.stub.LookupHost(context.Background(), "missing.corp.test")
	if err == nil {
		t.Fatal("lookup of missing name succeeded")
	}
}

func TestEndToEndTCPFallbackOnTruncation(t *testing.T) {
	st := startStack(t, core.Config{})
	defer st.Close()

	// The big TXT RRset exceeds 512 bytes; the caching server must fall
	// back to TCP toward the authoritative server and still answer.
	txts, err := st.stub.LookupTXT(context.Background(), "big.corp.test")
	if err != nil {
		t.Fatalf("LookupTXT: %v", err)
	}
	if len(txts) != 20 {
		t.Errorf("got %d TXT strings, want 20", len(txts))
	}
}

func TestEndToEndCachingReducesUpstreamQueries(t *testing.T) {
	st := startStack(t, core.Config{RefreshTTL: true})
	defer st.Close()

	ctx := context.Background()
	if _, err := st.stub.LookupHost(ctx, "www.corp.test"); err != nil {
		t.Fatalf("first lookup: %v", err)
	}
	before := st.cs.Stats().QueriesOut
	for i := 0; i < 5; i++ {
		if _, err := st.stub.LookupHost(ctx, "www.corp.test"); err != nil {
			t.Fatalf("repeat lookup: %v", err)
		}
	}
	if after := st.cs.Stats().QueriesOut; after != before {
		t.Errorf("cached lookups sent %d upstream queries", after-before)
	}
}

func TestEndToEndRenewalLoopLive(t *testing.T) {
	// Run the real-time renewal loop against real sockets with a
	// super-short renewal lead: resolve once, then wait for the IRR of
	// corp.test (TTL 3600, so no natural expiry) — instead verify the
	// loop runs without deadlock while queries continue.
	st := startStack(t, core.Config{
		RefreshTTL: true,
		Renewal:    core.LRU{C: 2},
	})
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.cs.RunRenewalLoop(ctx)

	for i := 0; i < 3; i++ {
		if _, err := st.stub.LookupHost(ctx, "www.corp.test"); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEndToEndEDNS0AvoidsTCP(t *testing.T) {
	// With EDNS0 advertised, the big TXT answer fits in one UDP datagram
	// and no truncation occurs.
	st := startStack(t, core.Config{AdvertiseEDNS0: true})
	defer st.Close()

	txts, err := st.stub.LookupTXT(context.Background(), "big.corp.test")
	if err != nil {
		t.Fatalf("LookupTXT: %v", err)
	}
	if len(txts) != 20 {
		t.Errorf("got %d TXT strings, want 20", len(txts))
	}
}
