package resolve

import (
	"context"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/transport"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestUpstreamOrderPrefersFastServers(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	now := epoch
	u.observeSuccess("slow", 100*time.Millisecond)
	u.observeSuccess("fast", 5*time.Millisecond)
	// "unknown" has no history and must sort after measured servers.
	ordered, skipped := u.order([]transport.Addr{"unknown", "slow", "fast"}, now)
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	want := []transport.Addr{"fast", "slow", "unknown"}
	for i, addr := range want {
		if ordered[i] != addr {
			t.Fatalf("order = %v, want %v", ordered, want)
		}
	}
}

func TestUpstreamOrderTiesKeepInputOrder(t *testing.T) {
	// Determinism: servers with identical state must come out in input
	// order (the simulator depends on this).
	u := newUpstream(UpstreamConfig{})
	ordered, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	want := []transport.Addr{"a", "b", "c"}
	for i, addr := range want {
		if ordered[i] != addr {
			t.Fatalf("order = %v, want input order %v", ordered, want)
		}
	}
}

func TestUpstreamQuarantineSkipAndRecover(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second})
	now := epoch
	u.observeFailure("bad", now)
	if !u.quarantined("bad", now) {
		t.Fatal("server not quarantined after failure")
	}
	ordered, skipped := u.order([]transport.Addr{"bad", "good"}, now)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if ordered[0] != "good" || ordered[1] != "bad" {
		t.Errorf("order = %v, want [good bad]", ordered)
	}
	// The quarantine lapses with time...
	later := now.Add(6 * time.Second)
	if u.quarantined("bad", later) {
		t.Error("server still quarantined after the window lapsed")
	}
	// ...and one success clears the failure streak entirely.
	u.observeFailure("bad", later) // second consecutive failure: 10s window
	if !u.quarantined("bad", later.Add(9*time.Second)) {
		t.Error("backoff did not double the quarantine window")
	}
	u.observeSuccess("bad", time.Millisecond)
	if u.quarantined("bad", later) {
		t.Error("success did not clear quarantine")
	}
}

func TestUpstreamAllQuarantinedFallsBack(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second})
	now := epoch
	u.observeFailure("a", now)
	u.observeFailure("b", now.Add(time.Second))
	ordered, skipped := u.order([]transport.Addr{"b", "a"}, now.Add(2*time.Second))
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0 when no healthy server exists", skipped)
	}
	if len(ordered) != 2 {
		t.Fatalf("ordered = %v, want both servers still tried", ordered)
	}
	// Earliest release first: a's window ends before b's.
	if ordered[0] != "a" || ordered[1] != "b" {
		t.Errorf("order = %v, want [a b] (by release time)", ordered)
	}
}

func TestUpstreamBackoffCapped(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second, MaxQuarantine: 20 * time.Second})
	now := epoch
	for i := 0; i < 10; i++ {
		u.observeFailure("bad", now)
	}
	if u.quarantined("bad", now.Add(21*time.Second)) {
		t.Error("quarantine exceeded MaxQuarantine")
	}
	if !u.quarantined("bad", now.Add(19*time.Second)) {
		t.Error("quarantine shorter than MaxQuarantine after many failures")
	}
}

func TestAttemptTimeoutFromSRTT(t *testing.T) {
	u := newUpstream(UpstreamConfig{MinTimeout: 200 * time.Millisecond, MaxTimeout: 3 * time.Second})
	// No history: first contact gets the full MaxTimeout.
	if got := u.attemptTimeout("new"); got != 3*time.Second {
		t.Errorf("first-contact timeout = %v, want 3s", got)
	}
	// One 100ms sample: SRTT=100ms, RTTVAR=50ms, RTO=SRTT+4·RTTVAR=300ms.
	u.observeSuccess("mid", 100*time.Millisecond)
	if got := u.attemptTimeout("mid"); got != 300*time.Millisecond {
		t.Errorf("timeout = %v, want 300ms (SRTT+4·RTTVAR)", got)
	}
	// Tiny RTT clamps up to MinTimeout, huge RTT clamps down to MaxTimeout.
	u.observeSuccess("fast", time.Millisecond)
	if got := u.attemptTimeout("fast"); got != 200*time.Millisecond {
		t.Errorf("timeout = %v, want MinTimeout clamp", got)
	}
	u.observeSuccess("slow", 10*time.Second)
	if got := u.attemptTimeout("slow"); got != 3*time.Second {
		t.Errorf("timeout = %v, want MaxTimeout clamp", got)
	}
	// Disabled layer imposes no per-attempt deadline at all.
	d := newUpstream(UpstreamConfig{Disable: true})
	d.observeSuccess("x", time.Millisecond)
	if got := d.attemptTimeout("x"); got != 0 {
		t.Errorf("disabled timeout = %v, want 0", got)
	}
}

func TestUpstreamDisableRoundRobins(t *testing.T) {
	u := newUpstream(UpstreamConfig{Disable: true})
	first, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	second, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	if first[0] == second[0] {
		t.Errorf("disabled selection did not rotate: %v then %v", first, second)
	}
}

func TestRetryBudgetContext(t *testing.T) {
	ctx := context.Background()
	if !takeAttempt(ctx) {
		t.Fatal("budget-less context denied an attempt")
	}
	b := WithRetryBudget(ctx, 2)
	if !takeAttempt(b) || !takeAttempt(b) {
		t.Fatal("budget denied attempts within its allowance")
	}
	if takeAttempt(b) {
		t.Fatal("budget allowed a third attempt out of 2")
	}
	if WithRetryBudget(ctx, 0) != ctx {
		t.Error("zero budget should leave the context unbounded")
	}
}

func TestUpstreamStatesRoundTrip(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	now := epoch
	u.observeSuccess("10.0.0.1:53", 20*time.Millisecond)
	u.observeSuccess("10.0.0.1:53", 30*time.Millisecond)
	u.observeFailure("10.0.0.2:53", now)
	u.observeFailure("10.0.0.2:53", now)

	states := u.export()
	if len(states) != 2 {
		t.Fatalf("exported %d states, want 2", len(states))
	}
	if states[0].Addr != "10.0.0.1:53" || states[1].Addr != "10.0.0.2:53" {
		t.Fatalf("export not sorted by address: %+v", states)
	}

	u2 := newUpstream(UpstreamConfig{})
	u2.restore(states)
	again := u2.export()
	if len(again) != len(states) {
		t.Fatalf("restored %d states, want %d", len(again), len(states))
	}
	for i := range states {
		if again[i] != states[i] {
			t.Errorf("state[%d] = %+v, want %+v", i, again[i], states[i])
		}
	}
	// Behavioural check: the restored failure state still quarantines.
	if !u2.quarantined("10.0.0.2:53", now) {
		t.Error("restored server lost its quarantine")
	}
}

func TestRestoreUpstreamStatesSkipsInvalid(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	u.restore([]ServerState{
		{Addr: "", Samples: 3},
		{Addr: "10.0.0.9:53", Fails: -5},
	})
	states := u.export()
	if len(states) != 1 {
		t.Fatalf("restored %d states, want 1", len(states))
	}
	if states[0].Fails != 0 {
		t.Errorf("negative fails not clamped: %+v", states[0])
	}
}

// TestUpstreamConcurrentAccess hammers the selection state from many
// goroutines so the -race pass covers concurrent observe/order/timeout
// updates (queries, renewals, and prefetches share one upstream).
func TestUpstreamConcurrentAccess(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	servers := []transport.Addr{"10.0.0.1:53", "10.0.0.2:53", "10.0.0.3:53"}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				addr := servers[(g+i)%len(servers)]
				now := epoch.Add(time.Duration(i) * time.Millisecond)
				switch i % 4 {
				case 0:
					u.observeSuccess(addr, time.Duration(10+i%40)*time.Millisecond)
				case 1:
					u.observeFailure(addr, now)
				case 2:
					if ordered, _ := u.order(servers, now); len(ordered) != len(servers) {
						t.Errorf("order returned %d servers, want %d", len(ordered), len(servers))
					}
				case 3:
					u.attemptTimeout(addr)
					u.quarantined(addr, now)
				}
			}
		}(g)
	}
	wg.Wait()
}
