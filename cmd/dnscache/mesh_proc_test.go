package main

// Multi-process mesh integration test: real dnscache binaries on real
// sockets, joined by -mesh-listen/-mesh-peers, with a real dnsserver
// upstream. Gated behind DNSCACHE_MESH_PROC=1 (run via `make mesh-test`)
// because it builds binaries and binds localhost ports.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

const meshProcZone = `$ORIGIN test.
$TTL 300
@	IN	SOA	ns1.test. hostmaster.test. (
	1 7200 900 1209600 300 )
@	300	IN	NS	ns1
ns1	300	IN	A	127.0.0.1
www	300	IN	A	192.0.2.80
`

// freePort reserves an ephemeral localhost port and returns it. The
// listener is closed before use, which is racy in principle, but these
// tests run alone under `make mesh-test`.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// buildBinary compiles a command into dir and returns the binary path.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-race", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches a binary and guarantees cleanup.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// udpQuery sends one DNS query to addr and returns the reply.
func udpQuery(t *testing.T, addr string, name dnswire.Name, timeout time.Duration) (*dnswire.Message, error) {
	t.Helper()
	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, dnswire.TypeA)
	q.Flags.RecursionDesired = true
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return dnswire.Unpack(buf[:n])
}

func TestMeshMultiProcess(t *testing.T) {
	if os.Getenv("DNSCACHE_MESH_PROC") == "" {
		t.Skip("set DNSCACHE_MESH_PROC=1 (or run `make mesh-test`) to run the multi-process mesh test")
	}

	dir := t.TempDir()
	zonePath := filepath.Join(dir, "test.zone")
	if err := os.WriteFile(zonePath, []byte(meshProcZone), 0o644); err != nil {
		t.Fatal(err)
	}
	dnscacheBin := buildBinary(t, dir, ".", "dnscache")
	dnsserverBin := buildBinary(t, dir, "../dnsserver", "dnsserver")

	upPort := freePort(t)
	upAddr := fmt.Sprintf("127.0.0.1:%d", upPort)
	upstream := startProc(t, dnsserverBin, "-listen", upAddr, "-zone", "test.="+zonePath)

	type inst struct {
		dns, meshAddr, debug string
	}
	var insts [2]inst
	for i := range insts {
		insts[i] = inst{
			dns:      fmt.Sprintf("127.0.0.1:%d", freePort(t)),
			meshAddr: fmt.Sprintf("127.0.0.1:%d", freePort(t)),
			debug:    fmt.Sprintf("127.0.0.1:%d", freePort(t)),
		}
	}
	for i := range insts {
		peer := insts[1-i].meshAddr
		startProc(t, dnscacheBin,
			"-listen", insts[i].dns,
			"-root", upAddr,
			"-upstream-port", fmt.Sprint(upPort),
			"-refresh", "-renewal", "a-lfu",
			"-min-timeout", "50ms", "-max-timeout", "150ms", "-retry-budget", "2",
			"-stats", "0",
			"-mesh-listen", insts[i].meshAddr,
			"-mesh-peers", peer,
			"-mesh-key", "proc-test-key",
			"-mesh-owner-renewal",
			"-debug-addr", insts[i].debug,
		)
	}

	// Both instances must cookie-confirm each other within a few probe
	// intervals.
	for i := range insts {
		waitForConfirmedPeer(t, insts[i].debug, insts[1-i].meshAddr)
	}

	// Instance 0 resolves a name through the live upstream and caches it.
	name := dnswire.MustName("www.test.")
	var warm *dnswire.Message
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		warm, err = udpQuery(t, insts[0].dns, name, time.Second)
		if err == nil && warm.RCode == dnswire.RCodeNoError && len(warm.Answer) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance 0 never resolved %s: %v / %+v", name, err, warm)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The upstream dies; instance 1 is cold for the name, so its only
	// path to an answer is a mesh peer fetch from instance 0's cache.
	_ = upstream.Process.Kill()
	_, _ = upstream.Process.Wait()

	resp, err := udpQuery(t, insts[1].dns, name, 5*time.Second)
	if err != nil {
		t.Fatalf("cold instance query during upstream outage: %v", err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) == 0 {
		t.Fatalf("cold instance answered %v with %d answers, want peer-fetched NoError", resp.RCode, len(resp.Answer))
	}

	// The fetch shows up in the server's mesh counters.
	stats := fetchDebugStats(t, insts[1].debug)
	if stats.Mesh.FetchHits == 0 {
		t.Errorf("instance 1 mesh counters = %+v, want fetch_hits > 0", stats.Mesh)
	}
	if stats.Build == nil {
		t.Error("debug stats carry no build section")
	}
}

func waitForConfirmedPeer(t *testing.T, debugAddr, peerAddr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap struct {
			Peers []struct {
				Addr      string `json:"addr"`
				State     string `json:"state"`
				Confirmed bool   `json:"confirmed"`
			} `json:"peers"`
		}
		if getJSON("http://"+debugAddr+"/debug/peers", &snap) == nil {
			for _, p := range snap.Peers {
				if p.Addr == peerAddr && p.Confirmed && p.State == "alive" {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never confirmed mesh peer %s: %+v", debugAddr, peerAddr, snap.Peers)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

type debugStatsPayload struct {
	Build map[string]any `json:"build"`
	Mesh  struct {
		FramesIn  uint64 `json:"frames_in"`
		FetchHits uint64 `json:"fetch_hits"`
	} `json:"mesh"`
}

func fetchDebugStats(t *testing.T, debugAddr string) debugStatsPayload {
	t.Helper()
	var p debugStatsPayload
	if err := getJSON("http://"+debugAddr+"/debug/stats", &p); err != nil {
		t.Fatalf("fetch debug stats: %v", err)
	}
	return p
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
