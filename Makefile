GO ?= go

.PHONY: build vet lint test race check bench fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the dnslint analyzer suite (internal/analysis/...) over the
# repo via the vet -vettool protocol. Zero unannotated findings is the
# bar; suppress with `//dnslint:ignore <analyzer> <reason>`.
lint:
	$(GO) build -o bin/dnslint ./cmd/dnslint
	$(GO) vet -vettool=$(abspath bin/dnslint) ./...

test:
	$(GO) test ./...

# check is what CI runs: the race detector and dnslint gate every PR.
check: build vet lint race

bench:
	$(GO) test -bench=. -benchtime=1x .

# fuzz is the CI smoke pass over the wire-format and persist-format parsers.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalName -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzParseStore -fuzztime=30s ./internal/persist
