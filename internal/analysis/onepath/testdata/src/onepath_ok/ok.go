// Package onepath_ok is a passing fixture: code that talks to the
// upstream only through the fetch engine's exported surface.
package onepath_ok

import "context"

// Engine caricatures resolve.Engine: Fetch is the sanctioned entry.
type Engine struct{}

func (Engine) Fetch(ctx context.Context, server string, name string) ([]byte, error) {
	return nil, nil
}

// Resolve goes through the engine; nothing to flag.
func Resolve(ctx context.Context, e Engine, server, name string) ([]byte, error) {
	return e.Fetch(ctx, server, name)
}

// ExchangeFree is a function (not a method) named Exchange: the
// transport shape requires a receiver, so this is fine.
func Exchange(ctx context.Context, pair string) string { return pair }

func Swap(ctx context.Context) string {
	return Exchange(ctx, "a/b")
}
