package xfer

import (
	"context"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// blockingTransport parks every Exchange until released, standing in
// for a blackholed primary.
type blockingTransport struct {
	inner   transport.Transport
	entered chan struct{}
	release chan struct{}
}

func (b *blockingTransport) Exchange(ctx context.Context, server transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.inner.Exchange(ctx, server, q)
}

// TestRefreshDoesNotHoldLockAcrossTransfer is the regression test for
// the lockexchange finding in Refresh: s.mu used to be held across
// FetchSOASerial/AXFR, so a slow primary froze Serial() (and any other
// state reader) for the full network timeout. Now the lock is only
// held around the state snapshot and the install.
func TestRefreshDoesNotHoldLockAcrossTransfer(t *testing.T) {
	src := buildZone(t, 100)
	addr := startPrimary(t, authserver.New(src))
	bt := &blockingTransport{
		inner:   &transport.TCP{Timeout: 2 * time.Second},
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	sec := &Secondary{
		Zone:      dnswire.MustName("example."),
		Primary:   transport.Addr(addr),
		Transport: bt,
	}

	refreshDone := make(chan error, 1)
	go func() {
		_, err := sec.Refresh(context.Background())
		refreshDone <- err
	}()
	<-bt.entered // the transfer is now parked mid-Exchange

	// Serial must answer while the transfer is stuck on the wire.
	serialDone := make(chan uint32, 1)
	go func() { serialDone <- sec.Serial() }()
	select {
	case s := <-serialDone:
		if s != 0 {
			t.Errorf("Serial() = %d before first transfer, want 0", s)
		}
	case <-time.After(time.Second):
		t.Fatal("Serial() blocked while a transfer was in flight: lock held across Exchange")
	}

	close(bt.release)
	if err := <-refreshDone; err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := sec.Serial(); got != 100 {
		t.Errorf("Serial() = %d after transfer, want 100", got)
	}
}

// TestRefreshRaceInstallsNewestSerial checks the install-side
// arbitration: when two refreshes race, the stale transfer must not
// overwrite a newer installed copy, and the transfer counter only
// counts installs.
func TestRefreshRaceInstallsNewestSerial(t *testing.T) {
	oldZone := buildZone(t, 100)
	newZone := buildZone(t, 101)
	h := &swappableHandler{}
	h.cur.Store(authserver.New(oldZone))
	addr := startPrimary(t, h)

	sec := &Secondary{
		Zone:      dnswire.MustName("example."),
		Primary:   transport.Addr(addr),
		Transport: &transport.TCP{Timeout: 2 * time.Second},
	}
	// First transfer installs serial 100.
	if did, err := sec.Refresh(context.Background()); err != nil || !did {
		t.Fatalf("Refresh #1 = (%v, %v), want (true, nil)", did, err)
	}
	// The primary moves to serial 101 and the secondary picks it up.
	h.cur.Store(authserver.New(newZone))
	if did, err := sec.Refresh(context.Background()); err != nil || !did {
		t.Fatalf("Refresh #2 = (%v, %v), want (true, nil)", did, err)
	}
	if got := sec.Serial(); got != 101 {
		t.Fatalf("Serial() = %d, want 101", got)
	}

	// A racing transfer that fetched the *old* zone must not roll back:
	// serialNewer is the install gate.
	if serialNewer(100, 101) {
		t.Error("serialNewer(100, 101) = true, want false")
	}
	if !serialNewer(101, 100) {
		t.Error("serialNewer(101, 100) = false, want true")
	}
	// RFC 1982 wrap-around: 1 is newer than 0xFFFFFFFF.
	if !serialNewer(1, 0xFFFFFFFF) {
		t.Error("serialNewer(1, 0xFFFFFFFF) = false, want true across wrap")
	}
}
