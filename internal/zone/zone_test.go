package zone

import (
	"net/netip"
	"strings"
	"testing"

	"resilientdns/internal/dnswire"
)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func rrSOA(name string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   3600,
		Data: dnswire.SOA{
			MName: dnswire.MustName("ns1." + name), RName: dnswire.MustName("admin." + name),
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
	}
}

// testZone builds the edu-like zone used across the lookup tests:
// apex edu. with a delegation to ucla.edu. (with glue) and a host record.
func testZone(t *testing.T) *Zone {
	t.Helper()
	z := New(dnswire.MustName("edu"))
	for _, rr := range []dnswire.RR{
		rrSOA("edu."),
		rrNS("edu.", 172800, "ns1.edu."),
		rrNS("edu.", 172800, "ns2.edu."),
		rrA("ns1.edu.", 172800, "192.0.2.1"),
		rrA("ns2.edu.", 172800, "192.0.2.2"),
		rrA("www.edu.", 300, "192.0.2.80"),
		rrNS("ucla.edu.", 86400, "ns1.ucla.edu."),
		rrNS("ucla.edu.", 86400, "ns2.ucla.edu."),
		rrA("ns1.ucla.edu.", 86400, "198.51.100.1"),
		rrA("ns2.ucla.edu.", 86400, "198.51.100.2"),
	} {
		if err := z.Add(rr); err != nil {
			t.Fatalf("Add(%v): %v", rr, err)
		}
	}
	return z
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New(dnswire.MustName("edu"))
	err := z.Add(rrA("www.example.com.", 300, "192.0.2.1"))
	if err == nil {
		t.Fatal("Add out-of-zone record succeeded, want error")
	}
}

func TestAddDeduplicates(t *testing.T) {
	z := New(dnswire.MustName("edu"))
	z.MustAdd(rrA("www.edu.", 300, "192.0.2.1"))
	z.MustAdd(rrA("www.edu.", 300, "192.0.2.1"))
	if n := z.RecordCount(); n != 1 {
		t.Errorf("RecordCount = %d, want 1", n)
	}
}

func TestLookupAnswer(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("www.edu."), dnswire.TypeA)
	if res.Type != Answer {
		t.Fatalf("Lookup type = %v, want Answer", res.Type)
	}
	if len(res.Records) != 1 || res.Records[0].Data.String() != "192.0.2.80" {
		t.Errorf("Records = %v", res.Records)
	}
}

func TestLookupApexNS(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("edu."), dnswire.TypeNS)
	if res.Type != Answer {
		t.Fatalf("Lookup type = %v, want Answer", res.Type)
	}
	if len(res.Records) != 2 {
		t.Errorf("got %d NS records, want 2", len(res.Records))
	}
}

func TestLookupReferral(t *testing.T) {
	z := testZone(t)
	for _, qname := range []string{"ucla.edu.", "www.ucla.edu.", "a.b.cs.ucla.edu."} {
		res := z.Lookup(dnswire.MustName(qname), dnswire.TypeA)
		if res.Type != Referral {
			t.Fatalf("Lookup(%s) type = %v, want Referral", qname, res.Type)
		}
		if len(res.Records) != 2 {
			t.Errorf("Lookup(%s): %d NS records, want 2", qname, len(res.Records))
		}
		if len(res.Glue) != 2 {
			t.Errorf("Lookup(%s): %d glue records, want 2", qname, len(res.Glue))
		}
	}
}

func TestLookupNSQueryAtCutIsReferral(t *testing.T) {
	// The parent is not authoritative for the child's NS RRset; even a
	// direct NS query at the cut gets a referral.
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if res.Type != Referral {
		t.Fatalf("Lookup type = %v, want Referral", res.Type)
	}
}

func TestLookupGlueQueryIsReferral(t *testing.T) {
	// Glue lives below the cut; queries for it must be referred, not
	// answered authoritatively.
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("ns1.ucla.edu."), dnswire.TypeA)
	if res.Type != Referral {
		t.Fatalf("Lookup type = %v, want Referral", res.Type)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("missing.edu."), dnswire.TypeA)
	if res.Type != NXDomain {
		t.Fatalf("Lookup type = %v, want NXDOMAIN", res.Type)
	}
	if len(res.SOA) != 1 {
		t.Errorf("NXDOMAIN without SOA in authority")
	}
}

func TestLookupNoData(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("www.edu."), dnswire.TypeAAAA)
	if res.Type != NoData {
		t.Fatalf("Lookup type = %v, want NODATA", res.Type)
	}
	if len(res.SOA) != 1 {
		t.Errorf("NODATA without SOA in authority")
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := New(dnswire.MustName("example."))
	z.MustAdd(rrSOA("example."))
	z.MustAdd(rrNS("example.", 3600, "ns.example."))
	z.MustAdd(rrA("ns.example.", 3600, "192.0.2.1"))
	z.MustAdd(rrA("a.b.example.", 300, "192.0.2.9"))
	// "b.example." exists only as an empty non-terminal: NODATA, not NXDOMAIN.
	res := z.Lookup(dnswire.MustName("b.example."), dnswire.TypeA)
	if res.Type != NoData {
		t.Errorf("Lookup(b.example.) = %v, want NODATA", res.Type)
	}
}

func TestLookupNotInZone(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("example.com."), dnswire.TypeA)
	if res.Type != NotInZone {
		t.Errorf("Lookup type = %v, want NotInZone", res.Type)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := New(dnswire.MustName("example."))
	z.MustAdd(rrSOA("example."))
	z.MustAdd(rrNS("example.", 3600, "ns.example."))
	z.MustAdd(rrA("ns.example.", 3600, "192.0.2.1"))
	z.MustAdd(dnswire.RR{
		Name: dnswire.MustName("alias.example."), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.CNAME{Target: dnswire.MustName("real.example.")},
	})
	z.MustAdd(rrA("real.example.", 300, "192.0.2.7"))

	res := z.Lookup(dnswire.MustName("alias.example."), dnswire.TypeA)
	if res.Type != CNAMEIndirection {
		t.Fatalf("Lookup type = %v, want CNAME", res.Type)
	}
	// Asking for the CNAME itself gets an Answer.
	res = z.Lookup(dnswire.MustName("alias.example."), dnswire.TypeCNAME)
	if res.Type != Answer {
		t.Errorf("Lookup(CNAME) type = %v, want Answer", res.Type)
	}
}

func TestLookupANY(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustName("edu."), dnswire.TypeANY)
	if res.Type != Answer {
		t.Fatalf("Lookup type = %v, want Answer", res.Type)
	}
	// SOA + 2 NS at the apex.
	if len(res.Records) != 3 {
		t.Errorf("ANY returned %d records, want 3", len(res.Records))
	}
}

func TestHighestCutWins(t *testing.T) {
	// With nested delegations, the referral must come from the highest cut.
	z := New(dnswire.MustName("edu"))
	z.MustAdd(rrSOA("edu."))
	z.MustAdd(rrNS("edu.", 3600, "ns.edu."))
	z.MustAdd(rrA("ns.edu.", 3600, "192.0.2.1"))
	z.MustAdd(rrNS("ucla.edu.", 3600, "ns.ucla.edu."))
	z.MustAdd(rrA("ns.ucla.edu.", 3600, "192.0.2.2"))
	z.MustAdd(rrNS("cs.ucla.edu.", 3600, "ns.cs.ucla.edu."))
	z.MustAdd(rrA("ns.cs.ucla.edu.", 3600, "192.0.2.3"))

	res := z.Lookup(dnswire.MustName("www.cs.ucla.edu."), dnswire.TypeA)
	if res.Type != Referral {
		t.Fatalf("Lookup type = %v, want Referral", res.Type)
	}
	if res.Records[0].Name != dnswire.MustName("ucla.edu.") {
		t.Errorf("referral from %s, want ucla.edu.", res.Records[0].Name)
	}
}

func TestValidate(t *testing.T) {
	z := testZone(t)
	if err := z.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}

	noNS := New(dnswire.MustName("x."))
	noNS.MustAdd(rrA("a.x.", 1, "192.0.2.1"))
	if err := noNS.Validate(); err == nil {
		t.Error("Validate passed for zone without apex NS")
	}

	noGlue := New(dnswire.MustName("x."))
	noGlue.MustAdd(rrNS("x.", 1, "ns.x."))
	noGlue.MustAdd(rrA("ns.x.", 1, "192.0.2.1"))
	noGlue.MustAdd(rrNS("child.x.", 1, "ns.child.x."))
	if err := noGlue.Validate(); err == nil {
		t.Error("Validate passed for delegation without glue")
	}
}

func TestDelegationsSorted(t *testing.T) {
	z := testZone(t)
	z.MustAdd(rrNS("mit.edu.", 3600, "ns.mit.edu."))
	z.MustAdd(rrA("ns.mit.edu.", 3600, "192.0.2.9"))
	got := z.Delegations()
	if len(got) != 2 || got[0] != "mit.edu." || got[1] != "ucla.edu." {
		t.Errorf("Delegations = %v", got)
	}
}

func TestRecordsDeterministic(t *testing.T) {
	z := testZone(t)
	a := z.Records()
	b := z.Records()
	if len(a) != len(b) || len(a) != z.RecordCount() {
		t.Fatalf("Records lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("Records not deterministic at %d", i)
		}
	}
}

func TestZoneStringRoundTrip(t *testing.T) {
	z := testZone(t)
	text := z.String()
	z2, err := ParseString(text, z.Origin())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if z2.RecordCount() != z.RecordCount() {
		t.Errorf("round trip record count %d, want %d", z2.RecordCount(), z.RecordCount())
	}
	if !strings.Contains(text, "$ORIGIN edu.") {
		t.Errorf("String() missing $ORIGIN: %q", text)
	}
}
