package debughttp

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"resilientdns/internal/metrics"
	"resilientdns/internal/resolve"
)

func TestStatsEndpoint(t *testing.T) {
	var h metrics.Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var empty metrics.Histogram

	mux := New(Options{
		Stats: func() any { return map[string]int{"queries_in": 7} },
		Latency: func() map[string]metrics.HistogramSnapshot {
			return map[string]metrics.HistogramSnapshot{
				"stage/iterate":    h.Snapshot(),
				"stage/chain_walk": empty.Snapshot(),
			}
		},
	})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p struct {
		Server  map[string]int            `json:"server"`
		Latency map[string]LatencySummary `json:"latency"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Server["queries_in"] != 7 {
		t.Errorf("server stats = %v", p.Server)
	}
	it, ok := p.Latency["stage/iterate"]
	if !ok || it.Count != 2 || it.MeanUS != 2000 {
		t.Errorf("stage/iterate = %+v, want count 2 mean 2000µs", it)
	}
	if _, ok := p.Latency["stage/chain_walk"]; ok {
		t.Error("empty histogram was not omitted")
	}
}

func TestQueriesEndpoint(t *testing.T) {
	ring := resolve.NewRing(8)
	for i := uint64(1); i <= 5; i++ {
		ring.Observe(resolve.TraceSummary{ID: i, Kind: "query"})
	}
	mux := New(Options{Ring: ring})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?n=2", nil))
	var got []resolve.TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(got) != 2 || got[0].ID != 5 || got[1].ID != 4 {
		t.Fatalf("queries = %+v, want the 2 newest (5, 4)", got)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status = %d, want 400", rec.Code)
	}

	// No ring configured: an empty list, not a null or a panic.
	rec = httptest.NewRecorder()
	New(Options{}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if body := rec.Body.String(); body != "[]\n" {
		t.Errorf("no-ring body = %q, want []", body)
	}
}
