// Package dataflow is the shared dataflow substrate for the dnslint
// suite's flow-aware analyzers (ctxdeadline, taintwire, goroleak,
// lockorder). The toolchain vendors golang.org/x/tools/go/analysis and
// go/cfg but not go/ssa, so this package plays the role buildssa plays
// for SSA-based vet tools: a single Requires-able pass that enumerates
// every function and closure in the package, indexes variable
// definitions for def-use chasing, and builds control-flow graphs on
// demand. The analyzers layer their own transfer functions (context
// boundedness, taint, held-lock sets, loop escape) on top.
//
// The model is deliberately simpler than SSA: values are tracked per
// *types.Var with a flow-insensitive union over that variable's
// definitions (a use sees every definition the variable has anywhere in
// the function). That is conservative in the may-analysis direction the
// analyzers need — "may this context be unbounded", "may this value be
// network-origin" — and it means rebinding a sanitized value to a fresh
// variable is how code states that the old value is gone. The CFG is
// used where statement order matters (lockorder's held-set
// propagation).
package dataflow

import (
	"go/ast"
	"go/types"
	"reflect"
	"sync"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// Builder is the shared pass. Analyzers list it in Requires and read
// the *Info result.
var Builder = &analysis.Analyzer{
	Name:       "dnslintdataflow",
	Doc:        "builds the function/CFG/def-use index shared by the dataflow dnslint analyzers",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*Info)(nil)),
	Run:        run,
}

// FuncInfo is one function body in the package: a declared function or
// method, or a function literal (Parent links a literal to its
// innermost enclosing function).
type FuncInfo struct {
	// Obj is the declared function's object; nil for function literals.
	Obj *types.Func
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Body is the function body; never nil (bodyless declarations are
	// not enumerated).
	Body *ast.BlockStmt
	// Parent is the innermost enclosing FuncInfo for literals, nil for
	// declarations.
	Parent *FuncInfo

	cfgOnce sync.Once
	cfg     *cfg.CFG
}

// CFG builds (once) and returns the function's control-flow graph.
func (fi *FuncInfo) CFG() *cfg.CFG {
	fi.cfgOnce.Do(func() {
		fi.cfg = cfg.New(fi.Body, func(*ast.CallExpr) bool { return true })
	})
	return fi.cfg
}

// Def is one definition of a variable.
type Def struct {
	// RHS is the defining expression: the assigned expression, the
	// call whose result tuple is destructured, or the ranged-over
	// operand when Range is set.
	RHS ast.Expr
	// Index selects the result in RHS's tuple for destructuring
	// assignments (a, b := f()); -1 for a direct assignment.
	Index int
	// Range marks a definition by a range clause: the variable is
	// bound to successive elements of RHS.
	Range bool
}

// Info is the Builder's per-package result.
type Info struct {
	// Funcs enumerates every function, method, and literal with a body,
	// in source order.
	Funcs []*FuncInfo
	// ByObj maps a declared function's object to its FuncInfo.
	ByObj map[*types.Func]*FuncInfo
	// byLit maps literals to their FuncInfo.
	byLit map[*ast.FuncLit]*FuncInfo
	// defs maps every variable to its definitions anywhere in the
	// package (variables are function-scoped, so lookups never cross
	// function boundaries in practice).
	defs map[*types.Var][]Def

	pass *analysis.Pass
}

// LitInfo returns the FuncInfo for a function literal.
func (in *Info) LitInfo(lit *ast.FuncLit) *FuncInfo { return in.byLit[lit] }

// Defs returns every definition of v in the package.
func (in *Info) Defs(v *types.Var) []Def { return in.defs[v] }

// Callee resolves the static callee of call, or nil for dynamic calls
// (function values, interface methods resolve to the interface method).
func (in *Info) Callee(call *ast.CallExpr) *types.Func {
	fn, _ := typeutil.Callee(in.pass.TypesInfo, call).(*types.Func)
	return fn
}

// VarOf resolves an expression to the variable it reads, unwrapping
// parens: an identifier naming a *types.Var, or nil.
func (in *Info) VarOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := in.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = in.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	in := &Info{
		ByObj: make(map[*types.Func]*FuncInfo),
		byLit: make(map[*ast.FuncLit]*FuncInfo),
		defs:  make(map[*types.Var][]Def),
		pass:  pass,
	}

	// Enumerate functions with the inspector's stack walk so literals
	// get Parent links.
	var stack []*FuncInfo
	ins.Nodes([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node, push bool) bool {
		if !push {
			if len(stack) > 0 && stack[len(stack)-1].Node == n {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		var fi *FuncInfo
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			obj, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
			fi = &FuncInfo{Obj: obj, Node: n, Body: n.Body}
			if obj != nil {
				in.ByObj[obj] = fi
			}
		case *ast.FuncLit:
			fi = &FuncInfo{Node: n, Body: n.Body}
			if len(stack) > 0 {
				fi.Parent = stack[len(stack)-1]
			}
			in.byLit[n] = fi
		}
		in.Funcs = append(in.Funcs, fi)
		stack = append(stack, fi)
		return true
	})

	// Index variable definitions.
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			in.indexAssign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			in.indexAssign(lhs, n.Values)
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if v := in.lhsVar(e); v != nil {
					in.defs[v] = append(in.defs[v], Def{RHS: n.X, Range: true})
				}
			}
		}
	})
	return in, nil
}

// lhsVar resolves an assignment target to its variable (defined or
// reassigned).
func (in *Info) lhsVar(e ast.Expr) *types.Var {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := in.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := in.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

func (in *Info) indexAssign(lhs, rhs []ast.Expr) {
	switch {
	case len(rhs) == 0:
		return
	case len(lhs) == len(rhs):
		for i := range lhs {
			if v := in.lhsVar(lhs[i]); v != nil {
				in.defs[v] = append(in.defs[v], Def{RHS: rhs[i], Index: -1})
			}
		}
	case len(rhs) == 1:
		for i := range lhs {
			if v := in.lhsVar(lhs[i]); v != nil {
				in.defs[v] = append(in.defs[v], Def{RHS: rhs[0], Index: i})
			}
		}
	}
}

// FuncString renders a function object the way the analyzer flag lists
// spell it: "pkgpath.Func" for package functions, "pkgpath.(*Type).Method"
// and "pkgpath.Type.Method" for methods. Functions without a package
// (builtins) render as their plain name.
func FuncString(f *types.Func) string {
	if f == nil {
		return ""
	}
	if f.Pkg() == nil {
		return f.Name()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return f.Pkg().Path() + ".(*" + named.Obj().Name() + ")." + f.Name()
		}
	}
	if named, ok := recv.(*types.Named); ok {
		return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// ExchangeShaped reports whether f has the transport.Transport.Exchange
// shape the suite treats as the upstream network boundary: a method
// named Exchange whose first parameter is a context.Context.
func ExchangeShaped(f *types.Func) bool {
	if f == nil || f.Name() != "Exchange" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	return IsContextType(sig.Params().At(0).Type())
}
