package persist

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// File names inside the store directory.
const (
	snapshotFile = "snapshot.dat"
	journalFile  = "journal.dat"
	tmpSuffix    = ".tmp"
)

// maxJournalBuffer bounds the in-memory delta buffer when the journal
// file cannot be written (disk failure, or the window while a snapshot is
// in flight grows pathological). Overflowing it drops the journal entirely
// — a partial journal would replay as silently wrong state, while
// "snapshot only" is merely a wider (but honest) loss window.
const maxJournalBuffer = 64 << 20

// defaultFlushEvery is the journal flush interval when Options leaves it
// zero: the crash-loss window for deltas.
const defaultFlushEvery = time.Second

// Options parameterises a Store.
type Options struct {
	// Dir is the store directory, created if absent. Required.
	Dir string
	// Clock stamps file headers and is the simulator's hook for keeping
	// persisted timestamps on the virtual timeline. Defaults to the wall
	// clock. It must be the same clock the cached entries' timestamps come
	// from.
	Clock simclock.Clock
	// FlushEvery is how often Run flushes buffered journal deltas to disk
	// (default 1s). A crash loses at most this much journal.
	FlushEvery time.Duration
}

// Store is the on-disk persistence for one caching server: a snapshot +
// journal pair in a directory. Wire it up in this order:
//
//	st, _ := persist.Open(persist.Options{Dir: dir})
//	cs, _ := core.NewCachingServer(core.Config{..., OnCacheChange: st.Observe})
//	rep, _ := st.Recover(cs)          // replay snapshot+journal, checkpoint
//	go st.Run(ctx, cs, 5*time.Minute, nil)
//	...
//	st.Checkpoint(cs)                 // final snapshot on shutdown
//	st.Close()
//
// Observe is safe to hand to the cache before Recover runs: deltas only
// buffer in memory until the first checkpoint creates a journal.
type Store struct {
	dir        string
	clock      simclock.Clock
	flushEvery time.Duration
	counters   metrics.PersistCounters

	mu     sync.Mutex
	jf     *os.File // active journal (nil while buffering only)
	jbuf   []byte   // encoded deltas not yet written
	gen    uint64   // generation of the current snapshot/journal pair
	closed bool

	loaded *loadedState // parsed files from Open, consumed by Recover
}

// loadedState carries what Open found on disk.
type loadedState struct {
	snap    *snapshotData
	journal *journalData
}

// snapshotData is a decoded snapshot file.
type snapshotData struct {
	gen      uint64
	torn     bool
	unusable bool // header unreadable: treat as no snapshot
	entries  []entryRecord
	credits  map[dnswire.Name]float64
	servers  []serverRecord
	dropped  int // records that failed decoding
}

// journalOp is one decoded journal delta.
type journalOp struct {
	typ     byte
	entry   entryRecord // recEntry
	key     cache.Key   // recExtend, recEvict
	expires time.Time   // recExtend
}

// journalData is a decoded journal file.
type journalData struct {
	gen      uint64
	torn     bool
	unusable bool
	ops      []journalOp
	dropped  int
}

// Open reads (but does not yet apply) the store directory's snapshot and
// journal. Call Recover to replay them into a server; until the first
// Checkpoint, Observe only buffers deltas in memory.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real{}
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = defaultFlushEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: opts.Dir, clock: opts.Clock, flushEvery: opts.FlushEvery}
	snap, err := readSnapshot(filepath.Join(opts.Dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	journal, err := readJournal(filepath.Join(opts.Dir, journalFile))
	if err != nil {
		return nil, err
	}
	s.loaded = &loadedState{snap: snap, journal: journal}
	if snap != nil && !snap.unusable {
		s.gen = snap.gen
	}
	return s, nil
}

// Counters exposes the persistence metrics.
func (s *Store) Counters() metrics.PersistStats { return s.counters.Snapshot() }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Observe is the cache.ChangeFunc feeding the journal: it encodes the
// delta and appends it to the in-memory buffer. It runs under a cache
// shard lock, so it does no I/O — FlushJournal (driven by Run) writes the
// buffer out.
func (s *Store) Observe(op cache.ChangeOp, key cache.Key, e *cache.Entry) {
	var rec []byte
	switch op {
	case cache.ChangePut:
		payload, err := encodeEntry(e)
		if err != nil {
			return // unencodable entry: the next snapshot may still catch it
		}
		rec = appendFrame(nil, recEntry, payload)
	case cache.ChangeExtend:
		rec = appendFrame(nil, recExtend, encodeExtend(key, e.Expires))
	case cache.ChangeEvict:
		rec = appendFrame(nil, recEvict, appendKey(nil, key))
	default:
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.jbuf = append(s.jbuf, rec...)
		s.counters.JournalRecords.Add(1)
		s.counters.JournalBytes.Add(uint64(len(rec)))
		if len(s.jbuf) > maxJournalBuffer {
			s.poisonJournalLocked()
		}
	}
	s.mu.Unlock()
}

// poisonJournalLocked abandons journaling until the next checkpoint: the
// buffer overflowed, and a journal missing deltas must not exist on disk
// (it would replay as wrong state). The snapshot alone stays consistent.
func (s *Store) poisonJournalLocked() {
	s.jbuf = nil
	if s.jf != nil {
		s.jf.Close()
		s.jf = nil
	}
	os.Remove(filepath.Join(s.dir, journalFile))
}

// FlushJournal writes buffered deltas to the journal file and syncs it.
// Deltas buffered while no journal exists (before the first checkpoint,
// or after a poisoned journal) stay in memory.
func (s *Store) FlushJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.jf == nil || len(s.jbuf) == 0 {
		return nil
	}
	if _, err := s.jf.Write(s.jbuf); err != nil {
		s.poisonJournalLocked()
		return fmt.Errorf("persist: journal write: %w", err)
	}
	s.jbuf = s.jbuf[:0]
	if err := s.jf.Sync(); err != nil {
		s.poisonJournalLocked()
		return fmt.Errorf("persist: journal sync: %w", err)
	}
	return nil
}

// Close flushes the journal and releases the file handle. It does not
// write a final snapshot — call Checkpoint first for that.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	if s.jf != nil {
		s.jf.Close()
		s.jf = nil
	}
	s.closed = true
	return err
}

// RecoveryReport describes what a Recover replayed.
type RecoveryReport struct {
	// SnapshotFound reports that a usable snapshot header was read;
	// Generation is its generation.
	SnapshotFound bool
	Generation    uint64
	// JournalReplayed / JournalSkipped: a journal matching the snapshot's
	// generation was applied, or a present journal was ignored
	// (generation mismatch after a crash between snapshot and rotation,
	// or an unreadable header).
	JournalReplayed bool
	JournalSkipped  bool
	// TornTail reports that the snapshot or journal ended mid-record —
	// the expected crash signature; replay stopped at the last good
	// record and continued.
	TornTail bool
	// Replayed counts entries restored into the cache (live or stale).
	// Dropped counts records discarded: corrupt, expired beyond the stale
	// window, or re-clamped to nothing. JournalOps counts applied deltas.
	Replayed   int
	Dropped    int
	JournalOps int
	// Credits / Servers count restored renewal-credit zones and upstream
	// server states.
	Credits int
	Servers int
	// Elapsed is the wall-clock recovery latency.
	Elapsed time.Duration
}

// String renders the one-line summary the server prints at startup.
func (r RecoveryReport) String() string {
	if !r.SnapshotFound {
		return "persist: no snapshot found, starting cold"
	}
	journal := "journal=none"
	switch {
	case r.JournalReplayed:
		journal = fmt.Sprintf("journal=%d ops", r.JournalOps)
	case r.JournalSkipped:
		journal = "journal=skipped (stale generation)"
	}
	return fmt.Sprintf("persist: recovered %d entries (gen %d, %s, dropped %d, torn=%v) in %v",
		r.Replayed, r.Generation, journal, r.Dropped, r.TornTail, r.Elapsed)
}

// Recover replays the snapshot and journal loaded by Open into cs: cache
// entries (re-clamped by the cache's own TTL policy, expired ones dropped
// or retained as stale per its KeepStale), renewal credit, and upstream
// selection state. It then re-arms the renewal scheduler and writes a
// fresh checkpoint, so the store is immediately consistent and the old
// journal is compacted away. Corruption never fails recovery — only I/O
// errors from the new checkpoint do.
func (s *Store) Recover(cs *core.CachingServer) (RecoveryReport, error) {
	start := time.Now()
	var rep RecoveryReport
	s.mu.Lock()
	loaded := s.loaded
	s.loaded = nil
	s.mu.Unlock()
	if loaded == nil {
		return rep, errors.New("persist: Recover called twice")
	}

	snap, journal := loaded.snap, loaded.journal
	if snap != nil && !snap.unusable {
		rep.SnapshotFound = true
		rep.Generation = snap.gen
		rep.TornTail = snap.torn
		rep.Dropped += snap.dropped

		// Fold the journal into the snapshot's entry map, then install the
		// final state. Per-key journal order matches mutation order (the
		// hook runs under the shard lock), so "last record wins" is exact.
		state := make(map[cache.Key]entryRecord, len(snap.entries))
		for _, rec := range snap.entries {
			state[keyOf(rec)] = rec
		}
		if journal != nil && !journal.unusable {
			if journal.gen == snap.gen {
				rep.JournalReplayed = true
				rep.TornTail = rep.TornTail || journal.torn
				rep.Dropped += journal.dropped
				for _, op := range journal.ops {
					switch op.typ {
					case recEntry:
						state[keyOf(op.entry)] = op.entry
						rep.JournalOps++
					case recExtend:
						if rec, ok := state[op.key]; ok {
							rec.Expires = op.expires
							state[op.key] = rec
							rep.JournalOps++
						} else {
							rep.Dropped++
						}
					case recEvict:
						delete(state, op.key)
						rep.JournalOps++
					}
				}
			} else {
				rep.JournalSkipped = true
			}
		}

		c := cs.Cache()
		for _, rec := range state {
			if c.Restore(cache.RestoreEntry{
				RRs:      rec.RRs,
				Cred:     rec.Cred,
				Infra:    rec.Infra,
				Origin:   rec.Origin,
				OrigTTL:  rec.OrigTTL,
				Expires:  rec.Expires,
				StoredAt: rec.StoredAt,
			}) {
				rep.Replayed++
			} else {
				rep.Dropped++
			}
		}
		if len(snap.credits) > 0 {
			cs.RestoreRenewalCredits(snap.credits)
			rep.Credits = len(snap.credits)
		}
		if len(snap.servers) > 0 {
			states := make([]core.UpstreamServerState, 0, len(snap.servers))
			for _, sr := range snap.servers {
				states = append(states, core.UpstreamServerState{
					Addr:            transport.Addr(sr.Addr),
					SRTT:            sr.SRTT,
					RTTVar:          sr.RTTVar,
					Samples:         sr.Samples,
					Fails:           int(sr.Fails),
					QuarantineUntil: sr.QuarantineUntil,
				})
			}
			cs.RestoreUpstreamStates(states)
			rep.Servers = len(states)
		}
		cs.RearmRenewals()
	} else if journal != nil && !journal.unusable {
		// A journal with no snapshot (first snapshot never completed):
		// nothing to replay it against.
		rep.JournalSkipped = true
	}

	rep.Elapsed = time.Since(start)
	s.counters.Recoveries.Add(1)
	s.counters.ReplayedRecords.Add(uint64(rep.Replayed))
	s.counters.DroppedRecords.Add(uint64(rep.Dropped))
	s.counters.RecoveryNanos.Add(uint64(rep.Elapsed))

	// Checkpoint immediately: the recovered state becomes the new
	// generation and the old journal is compacted away.
	if err := s.Checkpoint(cs); err != nil {
		return rep, err
	}
	return rep, nil
}

// keyOf returns the cache key of a decoded entry record (the decoder
// guarantees a non-empty homogeneous RRset).
func keyOf(rec entryRecord) cache.Key {
	return cache.Key{Name: rec.RRs[0].Name, Type: rec.RRs[0].Type()}
}

// Checkpoint writes a full snapshot of cs at the next generation and
// rotates the journal to match, folding all journaled deltas into the
// snapshot. Safe to run while the server is serving: deltas committed
// while the snapshot is being written land in the next-generation journal
// (and harmlessly also in the snapshot — replay overwrites with the same
// final state). A crash at any point leaves either the old consistent
// pair or the new one.
func (s *Store) Checkpoint(cs *core.CachingServer) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("persist: store is closed")
	}
	// Retire the current journal: everything flushed so far is covered by
	// the snapshot about to be taken (those deltas are already applied to
	// the cache), and from here deltas buffer for the next generation.
	if s.jf != nil {
		s.jf.Close()
		s.jf = nil
	}
	gen := s.gen + 1
	s.mu.Unlock()

	now := s.clock.Now()
	buf := appendHeader(nil, fileHeader{Kind: kindSnapshot, Generation: gen, CreatedAt: now})
	records := 0
	cs.Cache().Range(func(e *cache.Entry) bool {
		payload, err := encodeEntry(e)
		if err != nil {
			return true // skip unencodable entries, keep the rest
		}
		buf = appendFrame(buf, recEntry, payload)
		records++
		return true
	})
	credits := cs.RenewalCredits()
	zones := make([]dnswire.Name, 0, len(credits))
	for z := range credits {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })
	for _, z := range zones {
		buf = appendFrame(buf, recCredit, encodeCredit(z, credits[z]))
		records++
	}
	for _, st := range cs.UpstreamStates() {
		buf = appendFrame(buf, recServer, encodeServer(serverRecord{
			Addr:            string(st.Addr),
			SRTT:            st.SRTT,
			RTTVar:          st.RTTVar,
			Samples:         st.Samples,
			Fails:           uint32(max(st.Fails, 0)),
			QuarantineUntil: st.QuarantineUntil,
		}))
		records++
	}

	if err := atomicWriteFile(filepath.Join(s.dir, snapshotFile), buf); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	s.counters.Snapshots.Add(1)
	s.counters.SnapshotRecords.Add(uint64(records))
	s.counters.SnapshotBytes.Add(uint64(len(buf)))

	jf, err := createJournal(filepath.Join(s.dir, journalFile), gen, now)
	if err != nil {
		// Snapshot succeeded, journal rotation failed: stay in buffer-only
		// mode (degraded but consistent — the stale journal was renamed
		// away or will be generation-skipped).
		return fmt.Errorf("persist: journal rotate: %w", err)
	}
	s.mu.Lock()
	s.gen = gen
	if s.closed {
		jf.Close()
		s.mu.Unlock()
		return nil
	}
	s.jf = jf
	err = s.flushLocked() // deltas accumulated during the snapshot
	s.mu.Unlock()
	return err
}

// Run services the store until ctx is cancelled: it flushes the journal
// every FlushEvery and checkpoints every snapshotEvery. Errors are
// reported through onError (nil to ignore) and do not stop the loop — a
// transient disk error should not end persistence for the process.
func (s *Store) Run(ctx context.Context, cs *core.CachingServer, snapshotEvery time.Duration, onError func(error)) {
	report := func(err error) {
		if err != nil && onError != nil {
			onError(err)
		}
	}
	flush := time.NewTicker(s.flushEvery)
	defer flush.Stop()
	var snapC <-chan time.Time
	if snapshotEvery > 0 {
		snap := time.NewTicker(snapshotEvery)
		defer snap.Stop()
		snapC = snap.C
	}
	for {
		select {
		case <-ctx.Done():
			report(s.FlushJournal())
			return
		case <-flush.C:
			report(s.FlushJournal())
		case <-snapC:
			report(s.Checkpoint(cs))
		}
	}
}

// readSnapshot decodes a snapshot file. A missing file returns (nil, nil);
// an unreadable header returns data flagged unusable; record-level damage
// is dropped/truncated, never fatal. Only real I/O errors propagate.
func readSnapshot(path string) (*snapshotData, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return parseSnapshotBytes(b), nil
}

// parseSnapshotBytes decodes snapshot bytes; it never fails, only
// degrades (unusable header, dropped records, torn tail).
func parseSnapshotBytes(b []byte) *snapshotData {
	h, off, err := parseHeader(b)
	if err != nil || h.Kind != kindSnapshot {
		return &snapshotData{unusable: true}
	}
	data := &snapshotData{gen: h.Generation, credits: make(map[dnswire.Name]float64)}
	frames, _, torn := readFrames(b[off:])
	data.torn = torn
	for _, f := range frames {
		switch f.typ {
		case recEntry:
			rec, err := decodeEntry(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			data.entries = append(data.entries, rec)
		case recCredit:
			zone, credit, err := decodeCredit(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			data.credits[zone] = credit
		case recServer:
			sr, err := decodeServer(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			data.servers = append(data.servers, sr)
		default:
			data.dropped++ // unknown record type: skip, keep the rest
		}
	}
	return data
}

// readJournal decodes a journal file with the same tolerance rules as
// readSnapshot.
func readJournal(path string) (*journalData, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return parseJournalBytes(b), nil
}

// parseJournalBytes decodes journal bytes with the same tolerance rules
// as parseSnapshotBytes.
func parseJournalBytes(b []byte) *journalData {
	h, off, err := parseHeader(b)
	if err != nil || h.Kind != kindJournal {
		return &journalData{unusable: true}
	}
	data := &journalData{gen: h.Generation}
	frames, _, torn := readFrames(b[off:])
	data.torn = torn
	for _, f := range frames {
		op := journalOp{typ: f.typ}
		switch f.typ {
		case recEntry:
			rec, err := decodeEntry(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			op.entry = rec
		case recExtend:
			key, t, err := decodeExtend(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			op.key, op.expires = key, t
		case recEvict:
			key, err := decodeEvict(f.payload)
			if err != nil {
				data.dropped++
				continue
			}
			op.key = key
		default:
			data.dropped++
			continue
		}
		data.ops = append(data.ops, op)
	}
	return data
}

// atomicWriteFile writes data to path via a temp file, fsync, and rename,
// then syncs the directory so the rename itself is durable.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// createJournal writes an empty journal (header only) for gen via the
// same tmp+rename dance and returns an open handle positioned for
// appends. The handle survives the rename — it names the inode, not the
// path.
func createJournal(path string, gen uint64, now time.Time) (*os.File, error) {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: gen, CreatedAt: now})
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	syncDir(filepath.Dir(path))
	return f, nil
}

// syncDir fsyncs a directory; best-effort (not all platforms allow it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
