// Package dnswire implements the DNS wire format (RFC 1035) from scratch:
// domain names with compression, resource records with typed RDATA, and
// full message packing and unpacking. It is the lowest substrate of the
// repository; every other package builds on it.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified, canonical (lower-case, trailing-dot) domain
// name. The root zone is ".". Use CanonicalName to build one from free-form
// input; the zero value is invalid.
type Name string

// Root is the name of the DNS root zone.
const Root Name = "."

// Wire-format limits from RFC 1035 §2.3.4.
const (
	// MaxNameWireLen is the maximum length of a name on the wire,
	// including the terminating zero octet.
	MaxNameWireLen = 255
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
)

var (
	// ErrNameTooLong reports a name whose wire encoding exceeds 255 octets.
	ErrNameTooLong = errors.New("dnswire: name too long")
	// ErrLabelTooLong reports a label longer than 63 octets.
	ErrLabelTooLong = errors.New("dnswire: label too long")
	// ErrEmptyLabel reports an empty label inside a name ("a..b").
	ErrEmptyLabel = errors.New("dnswire: empty label")
	// ErrBadLabel reports a label with characters that cannot survive the
	// master-file presentation format (whitespace, control bytes, quotes,
	// parentheses, semicolons, or non-ASCII).
	ErrBadLabel = errors.New("dnswire: invalid character in label")
)

// labelCharOK reports whether c is safe in both wire and presentation
// form without escaping. DNS wire format technically allows any octet;
// this stack restricts names to the visible ASCII subset its master-file
// tokenizer can round-trip.
func labelCharOK(c byte) bool {
	if c <= 0x20 || c >= 0x7F {
		return false
	}
	switch c {
	case '.', '"', ';', '(', ')':
		return false
	}
	return true
}

// CanonicalName converts free-form input into a canonical Name: lower-case
// with a trailing dot. It validates label and total lengths.
func CanonicalName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	s = strings.ToLower(s)
	wireLen := 1 // terminating zero octet
	for _, label := range strings.Split(strings.TrimSuffix(s, "."), ".") {
		if label == "" {
			return "", fmt.Errorf("%w: %q", ErrEmptyLabel, s)
		}
		if len(label) > MaxLabelLen {
			return "", fmt.Errorf("%w: %q", ErrLabelTooLong, label)
		}
		for i := 0; i < len(label); i++ {
			if !labelCharOK(label[i]) {
				return "", fmt.Errorf("%w: %q", ErrBadLabel, label)
			}
		}
		wireLen += 1 + len(label)
	}
	if wireLen > MaxNameWireLen {
		return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
	}
	return Name(s), nil
}

// MustName is CanonicalName for constant inputs; it panics on invalid input
// and is intended for tests and literals.
func MustName(s string) Name {
	n, err := CanonicalName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String returns the textual form of the name.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is the root zone name.
func (n Name) IsRoot() bool { return n == Root }

// Labels returns the labels of the name from left to right. The root name
// has zero labels.
func (n Name) Labels() []string {
	if n.IsRoot() || n == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// LabelCount returns the number of labels in the name; the root has zero.
func (n Name) LabelCount() int {
	if n.IsRoot() || n == "" {
		return 0
	}
	return strings.Count(string(n), ".")
}

// Parent returns the name with the leftmost label removed. The parent of
// the root is the root itself.
func (n Name) Parent() Name {
	if n.IsRoot() || n == "" {
		return Root
	}
	i := strings.IndexByte(string(n), '.')
	if i < 0 || i == len(n)-1 {
		return Root
	}
	return n[i+1:]
}

// IsSubdomainOf reports whether n is equal to, or falls below, ancestor.
// Every name is a subdomain of the root.
func (n Name) IsSubdomainOf(ancestor Name) bool {
	if ancestor.IsRoot() {
		return true
	}
	if n == ancestor {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(ancestor))
}

// Child returns the name formed by prepending label to n.
func (n Name) Child(label string) (Name, error) {
	if label == "" {
		return "", ErrEmptyLabel
	}
	if n.IsRoot() {
		return CanonicalName(label + ".")
	}
	return CanonicalName(label + "." + string(n))
}

// Ancestors returns n and every ancestor of n up to and including the root,
// ordered from n itself to the root.
func (n Name) Ancestors() []Name {
	out := make([]Name, 0, n.LabelCount()+1)
	cur := n
	for {
		out = append(out, cur)
		if cur.IsRoot() {
			return out
		}
		cur = cur.Parent()
	}
}

// CommonAncestor returns the deepest name that is an ancestor of both a
// and b (possibly the root).
func CommonAncestor(a, b Name) Name {
	al, bl := a.Labels(), b.Labels()
	n := 0
	for n < len(al) && n < len(bl) {
		if al[len(al)-1-n] != bl[len(bl)-1-n] {
			break
		}
		n++
	}
	if n == 0 {
		return Root
	}
	return Name(strings.Join(al[len(al)-n:], ".") + ".")
}

// appendName appends the uncompressed wire encoding of n to b.
func appendName(b []byte, n Name) ([]byte, error) {
	if n == "" {
		return nil, errors.New("dnswire: empty name")
	}
	for _, label := range n.Labels() {
		if len(label) > MaxLabelLen {
			return nil, ErrLabelTooLong
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// wireLen returns the length of the uncompressed wire encoding of n.
func (n Name) wireLen() int {
	if n.IsRoot() {
		return 1
	}
	return len(n) + 1
}
