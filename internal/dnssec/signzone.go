package dnssec

import (
	"fmt"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

// SignZone signs every authoritative RRset in z with the signer: it adds
// the DNSKEY RRset at the apex, an RRSIG per RRset, and returns the DS
// record the parent zone should publish. Delegation NS sets and glue
// below zone cuts are not signed (they are the child's data, per RFC
// 4035 §2.2); the DS for each child must be added by the caller if the
// children are signed too.
func SignZone(z *zone.Zone, s *Signer, inception, expiration time.Time) (dnswire.RR, error) {
	if z.Origin() != s.Zone {
		return dnswire.RR{}, fmt.Errorf("dnssec: signer for %s cannot sign zone %s", s.Zone, z.Origin())
	}
	// Publish the DNSKEY first so it is signed along with everything else.
	if err := z.Add(s.KeyRR()); err != nil {
		return dnswire.RR{}, err
	}

	cuts := make(map[dnswire.Name]bool)
	for _, c := range z.Delegations() {
		cuts[c] = true
	}
	below := func(n dnswire.Name) bool {
		for c := range cuts {
			if n.IsSubdomainOf(c) {
				return true
			}
		}
		return false
	}

	// Group records into RRsets.
	type key struct {
		name dnswire.Name
		typ  dnswire.Type
	}
	sets := make(map[key][]dnswire.RR)
	for _, rr := range z.Records() {
		if rr.Type() == dnswire.TypeRRSIG {
			continue // do not sign signatures
		}
		// Delegation NS and glue are the child's data and stay unsigned,
		// but the DS RRset at the cut is the parent's own (RFC 4035).
		if below(rr.Name) && !(rr.Type() == dnswire.TypeDS && cuts[rr.Name]) {
			continue
		}
		k := key{name: rr.Name, typ: rr.Type()}
		sets[k] = append(sets[k], rr)
	}
	for _, set := range sets {
		sigRR, err := s.SignRRSet(set, inception, expiration)
		if err != nil {
			return dnswire.RR{}, fmt.Errorf("dnssec: signing %s %s: %w", set[0].Name, set[0].Type(), err)
		}
		if err := z.Add(sigRR); err != nil {
			return dnswire.RR{}, err
		}
	}
	return DSFromKey(s.Zone, s.Key, s.KeyTTL)
}

// Validator verifies DS→DNSKEY→RRset chains from a set of trust anchors.
// It is a pure verifier: the caller supplies the records (typically from
// a resolver's cache); the validator never performs lookups itself.
type Validator struct {
	// anchors maps a zone to its trusted DNSKEY set.
	anchors map[dnswire.Name][]dnswire.DNSKEY
}

// NewValidator builds a validator trusting the given DNSKEY RRs (usually
// the root's).
func NewValidator(anchorKeys ...dnswire.RR) *Validator {
	v := &Validator{anchors: make(map[dnswire.Name][]dnswire.DNSKEY)}
	for _, rr := range anchorKeys {
		if k, ok := rr.Data.(dnswire.DNSKEY); ok {
			v.anchors[rr.Name] = append(v.anchors[rr.Name], k)
		}
	}
	return v
}

// TrustKey marks a zone's DNSKEY as validated, extending the chain.
func (v *Validator) TrustKey(zone dnswire.Name, k dnswire.DNSKEY) {
	v.anchors[zone] = append(v.anchors[zone], k)
}

// TrustedKeys returns the validated keys for a zone.
func (v *Validator) TrustedKeys(zone dnswire.Name) []dnswire.DNSKEY {
	return v.anchors[zone]
}

// ValidateRRSet verifies an RRset signed by signerZone using any of the
// zone's trusted keys.
func (v *Validator) ValidateRRSet(signerZone dnswire.Name, sigRR dnswire.RR, rrs []dnswire.RR, now time.Time) error {
	keys := v.anchors[signerZone]
	if len(keys) == 0 {
		return fmt.Errorf("dnssec: no trusted key for %s", signerZone)
	}
	var lastErr error
	for _, k := range keys {
		if err := VerifyRRSet(k, sigRR, rrs, now); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// ValidateDelegation extends trust from a parent to a child: the DS RRset
// (signed by the parent) must match the child's DNSKEY, and the child's
// DNSKEY RRset must be self-signed. On success the child key becomes
// trusted.
func (v *Validator) ValidateDelegation(
	parent, child dnswire.Name,
	dsSet []dnswire.RR, dsSig dnswire.RR,
	keySet []dnswire.RR, keySig dnswire.RR,
	now time.Time,
) error {
	if err := v.ValidateRRSet(parent, dsSig, dsSet, now); err != nil {
		return fmt.Errorf("dnssec: DS set for %s not validated by %s: %w", child, parent, err)
	}
	// Find a child key matching any validated DS, then check the key
	// set's self-signature with it.
	for _, dsRR := range dsSet {
		ds, ok := dsRR.Data.(dnswire.DS)
		if !ok {
			continue
		}
		for _, keyRR := range keySet {
			k, ok := keyRR.Data.(dnswire.DNSKEY)
			if !ok {
				continue
			}
			if VerifyDS(ds, child, k) != nil {
				continue
			}
			if err := VerifyRRSet(k, keySig, keySet, now); err != nil {
				return fmt.Errorf("dnssec: DNSKEY set of %s not self-signed: %w", child, err)
			}
			// Trust every key in the now-validated set.
			for _, rr := range keySet {
				if kk, ok := rr.Data.(dnswire.DNSKEY); ok {
					v.TrustKey(child, kk)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("dnssec: no DNSKEY of %s matches its DS set", child)
}
