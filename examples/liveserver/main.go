// Live server: the whole stack over real UDP sockets on localhost — a
// root server, a TLD server, a leaf-zone server, the resilient caching
// server, and a stub query, each talking wire-format DNS over the network.
//
//	go run ./examples/liveserver
package main

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveserver:", err)
		os.Exit(1)
	}
}

// serve starts a UDP authoritative server for the zones and returns its
// bound address.
func serve(zones ...*zone.Zone) (string, *transport.UDPServer, error) {
	srv := &transport.UDPServer{Handler: authserver.New(zones...)}
	addr, err := srv.Listen("127.0.0.1:0")
	return addr, srv, err
}

func run() error {
	// The zone data references placeholder IPs; what matters for routing
	// is the AddrMapper below, which sends every learned address to the
	// right localhost UDP port.
	const (
		rootIP = "10.0.0.1"
		tldIP  = "10.0.0.2"
		leafIP = "10.0.0.3"
	)

	rootZone, err := zone.ParseString(`
@	518400	IN	NS	a.root-servers.net.
a.root-servers.net.	518400	IN	A	`+rootIP+`
example.	172800	IN	NS	ns1.example.
ns1.example.	172800	IN	A	`+tldIP+`
`, dnswire.Root)
	if err != nil {
		return err
	}
	tldZone, err := zone.ParseString(`
@	172800	IN	NS	ns1.example.
ns1.example.	172800	IN	A	`+tldIP+`
corp.example.	86400	IN	NS	ns1.corp.example.
ns1.corp.example.	86400	IN	A	`+leafIP+`
`, dnswire.MustName("example."))
	if err != nil {
		return err
	}
	leafZone, err := zone.ParseString(`
@	86400	IN	NS	ns1.corp.example.
ns1	86400	IN	A	`+leafIP+`
www	300	IN	A	192.0.2.80
mail	300	IN	MX	10 www.corp.example.
`, dnswire.MustName("corp.example."))
	if err != nil {
		return err
	}

	rootAddr, rootSrv, err := serve(rootZone)
	if err != nil {
		return err
	}
	defer rootSrv.Close()
	tldAddr, tldSrv, err := serve(tldZone)
	if err != nil {
		return err
	}
	defer tldSrv.Close()
	leafAddr, leafSrv, err := serve(leafZone)
	if err != nil {
		return err
	}
	defer leafSrv.Close()
	fmt.Printf("root=%s tld=%s leaf=%s\n", rootAddr, tldAddr, leafAddr)

	// Map the placeholder zone-data IPs to the real ephemeral ports.
	portOf := map[string]string{rootIP: rootAddr, tldIP: tldAddr, leafIP: leafAddr}
	cs, err := core.NewCachingServer(core.Config{
		Transport:  &transport.UDP{Timeout: time.Second},
		RootHints:  []core.ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: transport.Addr(rootAddr)}},
		RefreshTTL: true,
		Renewal:    core.ALFU{C: 5, MaxDays: 50},
		AddrMapper: func(a netip.Addr) transport.Addr {
			if real, ok := portOf[a.String()]; ok {
				return transport.Addr(real)
			}
			return transport.Addr(a.String() + ":53")
		},
	})
	if err != nil {
		return err
	}

	// Run the caching server itself as a UDP service and query it with a
	// plain stub query, like an /etc/resolv.conf client would.
	csSrv := &transport.UDPServer{Handler: cs}
	csAddr, err := csSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer csSrv.Close()
	fmt.Printf("caching server on %s\n\n", csAddr)

	stub := &transport.UDP{Timeout: 2 * time.Second}
	for _, q := range []struct {
		name string
		typ  dnswire.Type
	}{
		{"www.corp.example.", dnswire.TypeA},
		{"mail.corp.example.", dnswire.TypeMX},
		{"www.corp.example.", dnswire.TypeA}, // answered from cache
	} {
		query := dnswire.NewQuery(1, dnswire.MustName(q.name), q.typ)
		query.Flags.RecursionDesired = true
		resp, err := stub.Exchange(context.Background(), transport.Addr(csAddr), query)
		if err != nil {
			return err
		}
		var answers []string
		for _, rr := range resp.Answer {
			answers = append(answers, rr.Data.String())
		}
		fmt.Printf("%-28s %-4s -> %s [%s]\n", q.name, q.typ, strings.Join(answers, ", "), resp.RCode)
	}

	st := cs.Stats()
	fmt.Printf("\ncaching server sent %d upstream queries for 3 stub queries\n", st.QueriesOut)
	return nil
}
