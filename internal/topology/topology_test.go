package topology

import (
	"context"
	"testing"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
)

func smallParams(seed int64) Params {
	p := DefaultParams(seed)
	p.NumTLDs = 5
	p.SLDsPerTLD = 20
	return p
}

func TestGenerateBasicShape(t *testing.T) {
	tree, err := Generate(smallParams(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tree.Root() == nil {
		t.Fatal("no root zone")
	}
	if len(tree.RootHints) == 0 {
		t.Fatal("no root hints")
	}
	tlds := 0
	depths := map[int]int{}
	for _, zn := range tree.Order {
		zi := tree.Zones[zn]
		depths[zi.Depth]++
		if zi.Depth == 1 {
			tlds++
		}
		if got := len(zi.Servers); got < 2 || got > 3 {
			t.Errorf("zone %s has %d servers, want 2-3", zn, got)
		}
	}
	if tlds != 5 {
		t.Errorf("TLD count = %d, want 5", tlds)
	}
	if depths[2] < 50 {
		t.Errorf("only %d SLDs generated", depths[2])
	}
	if depths[3] == 0 {
		t.Error("no third-level zones generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallParams(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(smallParams(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a.Order) != len(b.Order) {
		t.Fatalf("zone counts differ: %d vs %d", len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("zone order differs at %d: %s vs %s", i, a.Order[i], b.Order[i])
		}
		za, zb := a.Zones[a.Order[i]], b.Zones[b.Order[i]]
		if za.IRRTTL != zb.IRRTTL || len(za.Servers) != len(zb.Servers) {
			t.Fatalf("zone %s differs between runs", a.Order[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallParams(1))
	b, _ := Generate(smallParams(2))
	if len(a.Order) == len(b.Order) {
		same := true
		for i := range a.Order {
			if a.Zones[a.Order[i]].IRRTTL != b.Zones[b.Order[i]].IRRTTL {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical trees")
		}
	}
}

func TestIRRTTLOverride(t *testing.T) {
	p := smallParams(3)
	p.IRRTTLOverride = 3 * 24 * time.Hour
	tree, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, zn := range tree.Order {
		if got := tree.Zones[zn].IRRTTL; got != 3*24*time.Hour {
			t.Fatalf("zone %s IRR TTL = %v, want 72h", zn, got)
		}
	}
}

func TestIRRTTLDistributionMostlyUnderTwelveHours(t *testing.T) {
	p := DefaultParams(4)
	tree, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	under, total := 0, 0
	for _, zn := range tree.Order {
		zi := tree.Zones[zn]
		if zi.Depth < 2 {
			continue
		}
		total++
		if zi.IRRTTL <= 12*time.Hour {
			under++
		}
	}
	// §4: "most zones have a TTL value less or equal to 12 hours".
	if frac := float64(under) / float64(total); frac < 0.6 {
		t.Errorf("only %.0f%% of zones have IRR TTL ≤ 12h", 100*frac)
	}
}

func TestQueryableNames(t *testing.T) {
	tree, err := Generate(smallParams(5))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	names := tree.QueryableNames()
	if len(names) < 100 {
		t.Fatalf("only %d queryable names", len(names))
	}
	for _, tn := range names[:20] {
		if !tn.Name.IsSubdomainOf(tn.Zone) {
			t.Errorf("name %s not under its zone %s", tn.Name, tn.Zone)
		}
	}
}

// TestFullResolutionOverGeneratedTree is the topology integration test:
// every kind of generated name must resolve through a real caching server
// over the simulated network.
func TestFullResolutionOverGeneratedTree(t *testing.T) {
	p := smallParams(6)
	p.OutOfBailiwickFrac = 0.2 // stress glue chasing
	tree, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	clk := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clk, 1)
	net.RTT = 0
	net.Timeout = 0
	tree.Install(net)

	cs, err := core.NewCachingServer(core.Config{
		Transport: net,
		Clock:     clk,
		RootHints: tree.RootHints,
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}

	names := tree.QueryableNames()
	step := len(names)/50 + 1
	resolved := 0
	for i := 0; i < len(names); i += step {
		res, err := cs.Resolve(context.Background(), names[i].Name, dnswire.TypeA)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", names[i].Name, err)
		}
		if res.RCode != dnswire.RCodeNoError || len(res.Answer) == 0 {
			t.Fatalf("Resolve(%s) = %+v", names[i].Name, res)
		}
		resolved++
	}
	if resolved < 20 {
		t.Fatalf("resolved only %d names", resolved)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(Params{}); err == nil {
		t.Error("Generate accepted zero params")
	}
	p := smallParams(1)
	p.MinNS = 3
	p.MaxNS = 2
	if _, err := Generate(p); err == nil {
		t.Error("Generate accepted MinNS > MaxNS")
	}
}

func TestSignedTreeValidatesEndToEnd(t *testing.T) {
	p := smallParams(8)
	p.Signed = true
	tree, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate signed: %v", err)
	}
	if len(tree.TrustAnchors) == 0 {
		t.Fatal("signed tree has no trust anchors")
	}
	clk := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clk, 1)
	net.RTT = 0
	net.Timeout = 0
	tree.Install(net)

	cs, err := core.NewCachingServer(core.Config{
		Transport:      net,
		Clock:          clk,
		RootHints:      tree.RootHints,
		ValidateDNSSEC: true,
		TrustAnchors:   tree.TrustAnchors,
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	names := tree.QueryableNames()
	step := len(names)/20 + 1
	for i := 0; i < len(names); i += step {
		res, err := cs.Resolve(context.Background(), names[i].Name, dnswire.TypeA)
		if err != nil {
			t.Fatalf("validated Resolve(%s): %v", names[i].Name, err)
		}
		if res.RCode != dnswire.RCodeNoError {
			t.Fatalf("Resolve(%s) = %v", names[i].Name, res.RCode)
		}
	}
}

func TestSignedTreeDeterministic(t *testing.T) {
	p := smallParams(9)
	p.Signed = true
	a, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a.TrustAnchors) != len(b.TrustAnchors) {
		t.Fatal("anchor counts differ")
	}
	if a.TrustAnchors[0].Data.String() != b.TrustAnchors[0].Data.String() {
		t.Error("trust anchors differ between identical seeds")
	}
}

// TestPropertyResolutionMatchesZoneData: across random topologies, every
// answer the caching server produces must equal the authoritative data in
// the owning zone — resolution is a correct function of the zone files.
func TestPropertyResolutionMatchesZoneData(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		p := DefaultParams(seed)
		p.NumTLDs = 4
		p.SLDsPerTLD = 10
		p.OutOfBailiwickFrac = 0.15
		tree, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		clk := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		net := simnet.New(clk, seed)
		net.RTT = 0
		net.Timeout = 0
		tree.Install(net)
		cs, err := core.NewCachingServer(core.Config{
			Transport: net, Clock: clk, RootHints: tree.RootHints,
		})
		if err != nil {
			t.Fatalf("seed %d: NewCachingServer: %v", seed, err)
		}

		names := tree.QueryableNames()
		step := len(names)/30 + 1
		for i := 0; i < len(names); i += step {
			tn := names[i]
			res, err := cs.Resolve(context.Background(), tn.Name, dnswire.TypeA)
			if err != nil {
				t.Fatalf("seed %d: Resolve(%s): %v", seed, tn.Name, err)
			}
			// Chase the CNAME chain in the authoritative data to find the
			// expected final A set.
			zi := tree.Zones[tn.Zone]
			want := zi.Zone.RRSet(tn.Name, dnswire.TypeA)
			if len(want) == 0 {
				// Name is a CNAME; the final answer must be an A record
				// somewhere in the chain the resolver returned.
				if res.Answer[0].Type() != dnswire.TypeCNAME {
					t.Fatalf("seed %d: %s: expected CNAME first, got %v", seed, tn.Name, res.Answer)
				}
				continue
			}
			got := map[string]bool{}
			for _, rr := range res.Answer {
				if rr.Type() == dnswire.TypeA {
					got[rr.Data.String()] = true
				}
			}
			for _, rr := range want {
				if !got[rr.Data.String()] {
					t.Fatalf("seed %d: %s: answer %v missing authoritative %v",
						seed, tn.Name, res.Answer, rr)
				}
			}
		}
	}
}
