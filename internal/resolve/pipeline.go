package resolve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// Lookup is the CacheLookup stage: it attempts to answer qname/qtype
// purely from live cached data — the lock-free hot path, which never
// enters the slow path's coalescing or upstream machinery. It returns
// (nil, nil) when upstream work is (or may be) needed. The lookup
// sequence per CNAME hop mirrors resolveOne's cache section exactly, so
// cache counters and gap tombstones behave as if the slow path had run.
func (r *Resolver) Lookup(tr *Trace, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	sp := tr.StartStage(StageCacheLookup)
	defer sp.End()
	now := r.cfg.Clock.Now()
	cr := walkChain(qname, qtype, r.cfg.MaxCNAME, func(cur dnswire.Name) chainStep {
		if e := r.cache.Get(cur, qtype); e != nil {
			if r.prefetchDue(e, now) {
				if r.pf == nil {
					// Inline-prefetch mode: let the slow path issue the
					// prefetch before serving the hit.
					return chainStep{outcome: chainMiss}
				}
				// Async mode: serve the hit now, refresh in background.
				r.pf.enqueue(cache.Key{Name: cur, Type: qtype})
			}
			return chainStep{rrs: e.RRsWithRemainingTTL(now), outcome: chainDone, fromCache: true}
		}
		if qtype != dnswire.TypeCNAME {
			if e := r.cache.Get(cur, dnswire.TypeCNAME); e != nil {
				return chainStep{rrs: e.RRsWithRemainingTTL(now), outcome: chainFollow, fromCache: true}
			}
		}
		if rcode, soa, ok := r.negativeLookup(cur, qtype, now); ok {
			return chainStep{rcode: rcode, authority: soa, outcome: chainDone, fromCache: true}
		}
		return chainStep{outcome: chainMiss}
	})
	switch {
	case cr.err != nil:
		return nil, cr.err
	case cr.exhausted:
		// A fully cached CNAME chain longer than MaxCNAME: fail exactly
		// as the slow path would.
		return nil, chainTooLong(qname)
	case cr.miss:
		return nil, nil // the slow path takes over
	}
	tr.MarkCacheHit()
	return &Result{RCode: cr.rcode, Answer: cr.answer, Authority: cr.authority, FromCache: true}, nil
}

// LookupCacheOnly answers qname/qtype without any upstream work: live
// cache first, then the negative cache, then — when serve-stale is on —
// expired records per link. It returns (nil, nil) when nothing cached
// can answer; the caller decides what a miss means (REFUSED for an RD=0
// probe, SERVFAIL in overload degraded mode). Unlike Lookup, a hit in
// the prefetch window is always served (never deferred to the slow
// path): the whole point of this mode is to never drop a cache hit.
func (r *Resolver) LookupCacheOnly(tr *Trace, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	sp := tr.StartStage(StageCacheLookup)
	defer sp.End()
	tr.MarkCacheOnly()
	now := r.cfg.Clock.Now()
	stale := false
	cr := walkChain(qname, qtype, r.cfg.MaxCNAME, func(cur dnswire.Name) chainStep {
		if e := r.cache.Get(cur, qtype); e != nil {
			if r.prefetchDue(e, now) && r.pf != nil {
				r.pf.enqueue(cache.Key{Name: cur, Type: qtype})
			}
			return chainStep{rrs: e.RRsWithRemainingTTL(now), outcome: chainDone, fromCache: true}
		}
		if qtype != dnswire.TypeCNAME {
			if e := r.cache.Get(cur, dnswire.TypeCNAME); e != nil {
				return chainStep{rrs: e.RRsWithRemainingTTL(now), outcome: chainFollow, fromCache: true}
			}
		}
		if rcode, soa, ok := r.negativeLookup(cur, qtype, now); ok {
			return chainStep{rcode: rcode, authority: soa, outcome: chainDone, fromCache: true}
		}
		if r.cfg.ServeStale > 0 {
			e := r.cache.GetStale(cur, qtype)
			if e == nil && qtype != dnswire.TypeCNAME {
				e = r.cache.GetStale(cur, dnswire.TypeCNAME)
			}
			if e != nil {
				r.counters.StaleAnswers.Add(1)
				stale = true
				rrs := make([]dnswire.RR, len(e.RRs))
				copy(rrs, e.RRs)
				for i := range rrs {
					rrs[i].TTL = StaleServeTTL
				}
				return chainStep{rrs: rrs, outcome: chainFollow, fromCache: true}
			}
		}
		return chainStep{outcome: chainMiss}
	})
	switch {
	case cr.err != nil:
		return nil, cr.err
	case cr.exhausted:
		return nil, chainTooLong(qname)
	case cr.miss:
		return nil, nil // nothing cached; the caller refuses or sheds
	}
	if stale {
		tr.MarkStale()
	} else {
		tr.MarkCacheHit()
	}
	return &Result{RCode: cr.rcode, Answer: cr.answer, Authority: cr.authority, FromCache: true}, nil
}

// prefetchDue reports whether a cache hit falls in the prefetch window
// (the last tenth of the entry's TTL).
func (r *Resolver) prefetchDue(e *cache.Entry, now time.Time) bool {
	return r.cfg.Prefetch && e.Expires.Sub(now) <= e.OrigTTL/10
}

// ResolveChain is the ChainWalk stage: it resolves qname/qtype fully,
// chasing CNAMEs across zones, entering Iterate for every link the cache
// cannot answer.
func (r *Resolver) ResolveChain(ctx context.Context, tr *Trace, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	sp := tr.StartStage(StageChainWalk)
	defer sp.End()
	// One aggregate glue budget for the whole client query: every link
	// of the chain and every nesting level draws from it.
	ctx = withGlueBudget(ctx, r.cfg.MaxGlueFetches)
	cr := walkChain(qname, qtype, r.cfg.MaxCNAME, func(cur dnswire.Name) chainStep {
		res, err := r.resolveOne(ctx, tr, cur, qtype, 0)
		if err != nil {
			return chainStep{err: err}
		}
		out := chainFollow
		if res.RCode != dnswire.RCodeNoError {
			out = chainDone
		}
		return chainStep{rrs: res.Answer, authority: res.Authority, rcode: res.RCode, outcome: out, fromCache: res.FromCache}
	})
	switch {
	case cr.err != nil:
		return nil, cr.err
	case cr.exhausted:
		return nil, chainTooLong(qname)
	}
	return &Result{RCode: cr.rcode, Answer: cr.answer, Authority: cr.authority, FromCache: cr.fromCache}, nil
}

// resolveOne resolves a single (name, type) without CNAME chasing across
// calls: a cached or received CNAME is returned for the caller to chase.
// depth counts nested glue resolutions.
func (r *Resolver) resolveOne(ctx context.Context, tr *Trace, qname dnswire.Name, qtype dnswire.Type, depth int) (*Result, error) {
	now := r.cfg.Clock.Now()
	// Cache: exact answer, then a cached CNAME.
	if e := r.cache.Get(qname, qtype); e != nil {
		r.maybePrefetch(ctx, tr, e, qname, qtype, depth, now)
		return &Result{RCode: dnswire.RCodeNoError, Answer: e.RRsWithRemainingTTL(now), FromCache: true}, nil
	}
	if qtype != dnswire.TypeCNAME {
		if e := r.cache.Get(qname, dnswire.TypeCNAME); e != nil {
			return &Result{RCode: dnswire.RCodeNoError, Answer: e.RRsWithRemainingTTL(now), FromCache: true}, nil
		}
	}
	if rcode, soa, ok := r.negativeLookup(qname, qtype, now); ok {
		return &Result{RCode: rcode, Authority: soa, FromCache: true}, nil
	}
	validate := r.cfg.ValidateDNSSEC && depth == 0
	res, _, err := r.iterate(ctx, tr, qname, qtype, depth, validate, false)
	if err != nil && r.cfg.ServeStale > 0 {
		// StaleFallback stage. Retry using stale IRRs first: expired
		// NS/glue still point at child servers that may be alive even
		// though the upper hierarchy is not (the serve-stale baseline's
		// main power in this attack).
		sp := tr.StartStage(StageStaleFallback)
		res2, _, err2 := r.iterate(ctx, tr, qname, qtype, depth, validate, true)
		if err2 == nil {
			sp.End()
			return res2, nil
		}
		stale := r.staleAnswer(tr, qname, qtype)
		sp.End()
		if stale != nil {
			return stale, nil
		}
	}
	if err != nil && depth == 0 {
		// Mesh fallback, last before SERVFAIL: every live, quarantined,
		// and stale path is exhausted, so ask the zone owner peer's
		// cache (single hop, never recursive — the serving peer answers
		// strictly from its own cached/stale data).
		if hook := r.cfg.Hooks.PeerFetch; hook != nil {
			psp := tr.StartStage(StagePeerFetch)
			r.counters.PeerFetches.Add(1)
			pres := hook(ctx, qname, qtype)
			psp.End()
			if pres != nil {
				r.counters.PeerFetchAnswered.Add(1)
				tr.MarkPeerFetch()
				return pres, nil
			}
		}
	}
	return res, err
}

// maybePrefetch refreshes a cache entry early when a query arrives in the
// last tenth of its TTL (unbound-style prefetch). Inline mode refetches
// before the cached data is returned, so the caller still gets the
// (valid) cached answer even if the refetch fails; async mode hands the
// key to the background pool and returns immediately.
func (r *Resolver) maybePrefetch(ctx context.Context, tr *Trace, e *cache.Entry, qname dnswire.Name, qtype dnswire.Type, depth int, now time.Time) {
	if !r.cfg.Prefetch || depth > 0 {
		return
	}
	if e.Expires.Sub(now) > e.OrigTTL/10 {
		return
	}
	if r.pf != nil {
		r.pf.enqueue(cache.Key{Name: qname, Type: qtype})
		return
	}
	r.counters.PrefetchQueries.Add(1)
	// A fresh fetch restarts the entry's lifetime; failures are harmless
	// (the cached copy is still live). The explicit Extend covers the
	// cache's conservative replacement rules for identical data.
	if _, _, err := r.iterate(ctx, tr, qname, qtype, depth+1, false, false); err == nil {
		r.cache.Extend(qname, qtype)
	}
}

// staleAnswer serves an expired cached answer after live resolution
// failed, per the serve-stale baseline. A stale CNAME is not returned
// bare: the chain is chased through the stale cache, up to MaxCNAME hops,
// so the client receives the terminal records whenever they are still
// held. When only a prefix of the chain is cached the partial chain is
// returned (ending in a CNAME) and ResolveChain chases the tail, trying
// live resolution first for each remaining hop.
func (r *Resolver) staleAnswer(tr *Trace, qname dnswire.Name, qtype dnswire.Type) *Result {
	cr := walkChain(qname, qtype, r.cfg.MaxCNAME, func(cur dnswire.Name) chainStep {
		e := r.cache.GetStale(cur, qtype)
		if e == nil && qtype != dnswire.TypeCNAME {
			e = r.cache.GetStale(cur, dnswire.TypeCNAME)
		}
		if e == nil {
			return chainStep{outcome: chainMiss}
		}
		r.counters.StaleAnswers.Add(1)
		rrs := make([]dnswire.RR, len(e.RRs))
		copy(rrs, e.RRs)
		for i := range rrs {
			rrs[i].TTL = StaleServeTTL
		}
		return chainStep{rrs: rrs, outcome: chainFollow, fromCache: true}
	})
	// A miss mid-chain or an exhausted walk both yield the partial chain:
	// the caller's ResolveChain chases whatever tail remains.
	if len(cr.answer) == 0 {
		return nil
	}
	tr.MarkStale()
	return &Result{RCode: dnswire.RCodeNoError, Answer: cr.answer, FromCache: true}
}

// iterate is the Iterate stage: it walks the DNS hierarchy from the
// deepest zone with cached IRRs down to the zone authoritative for qname.
func (r *Resolver) iterate(ctx context.Context, tr *Trace, qname dnswire.Name, qtype dnswire.Type, depth int, validate, stale bool) (*Result, *dnswire.Message, error) {
	sp := tr.StartStage(StageIterate)
	defer sp.End()
	var lastErr error
	prevZone := dnswire.Name("")
	for step := 0; step < r.cfg.MaxReferrals; step++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, err)
		}
		zname, servers := r.deepestKnownZone(qname, qtype, stale)
		if zname == prevZone {
			// A referral that does not descend (e.g. the child's servers
			// have no resolvable addresses) would loop forever.
			return nil, nil, fmt.Errorf("%w: %s %s: no progress below zone %s",
				ErrResolutionFailed, qname, qtype, zname)
		}
		prevZone = zname
		resp, err := r.queryZone(ctx, tr, zname, servers, qname, qtype)
		if err != nil {
			lastErr = err
			if zname.IsRoot() {
				// Even the root hints failed: the query is lost (§3).
				return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, err)
			}
			// The zone's cached IRRs are stale or its servers are down;
			// discard them and climb to an ancestor (§4 "Long TTL": in
			// the worst case the parent zone must be queried to reset
			// the IRR).
			r.cache.Evict(zname, dnswire.TypeNS)
			continue
		}

		isp := tr.StartStage(StageValidateIngest)
		r.Ingest(resp, zname, qname)
		isp.End()

		switch {
		case resp.RCode == dnswire.RCodeNXDomain:
			soa := r.negativeSOA(resp)
			r.negativeStore(qname, qtype, dnswire.RCodeNXDomain, soa)
			return &Result{RCode: dnswire.RCodeNXDomain, Authority: soa}, resp, nil

		case resp.RCode != dnswire.RCodeNoError:
			// Lame or broken server; treat the zone as unusable.
			lastErr = fmt.Errorf("resolve: %s from %s", resp.RCode, zname)
			if zname.IsRoot() {
				return nil, nil, fmt.Errorf("%w: %v", ErrResolutionFailed, lastErr)
			}
			r.cache.Evict(zname, dnswire.TypeNS)
			continue

		case answersQuestion(resp, qname, qtype):
			if validate && r.validator != nil {
				vsp := tr.StartStage(StageValidateIngest)
				verr := r.validateAnswer(ctx, tr, zname, resp, depth)
				vsp.End()
				if verr != nil {
					return nil, nil, fmt.Errorf("%w: %v", ErrResolutionFailed, verr)
				}
			}
			return &Result{RCode: dnswire.RCodeNoError, Answer: relevantAnswers(resp, qname, qtype)}, resp, nil

		case isReferral(resp, zname):
			r.counters.Referrals.Add(1)
			r.resolveMissingGlue(ctx, tr, referralChild(resp, zname), depth)
			continue // deepestKnownZone now finds the child's IRRs

		default:
			// Authoritative empty answer: NODATA.
			soa := r.negativeSOA(resp)
			r.negativeStore(qname, qtype, dnswire.RCodeNoError, soa)
			return &Result{RCode: dnswire.RCodeNoError, Authority: soa}, resp, nil
		}
	}
	if lastErr == nil {
		lastErr = errors.New("referral limit exceeded")
	}
	return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, lastErr)
}

// deepestKnownZone returns the deepest ancestor zone of qname whose IRRs
// (NS plus at least one server address) are cached, falling back to the
// root hints.
func (r *Resolver) deepestKnownZone(qname dnswire.Name, qtype dnswire.Type, stale bool) (dnswire.Name, []transport.Addr) {
	now := r.cfg.Clock.Now()
	get := func(name dnswire.Name, t dnswire.Type) *cache.Entry {
		if e := r.cache.Get(name, t); e != nil {
			return e
		}
		if stale {
			return r.cache.GetStale(name, t)
		}
		return nil
	}
	for _, anc := range qname.Ancestors() {
		if anc.IsRoot() {
			break
		}
		if qtype == dnswire.TypeDS && anc == qname {
			// The parent side is authoritative for the DS RRset at a
			// delegation; never ask the child about its own DS.
			continue
		}
		e := get(anc, dnswire.TypeNS)
		if e == nil {
			continue
		}
		if iv := r.cfg.ParentRecheckInterval; iv > 0 && !stale {
			if seen, ok := r.parentLastSeen(anc); !ok || now.Sub(seen) > iv {
				// The delegation is overdue for confirmation: pretend the
				// IRRs are unknown so resolution re-visits the parent.
				continue
			}
		}
		var addrs []transport.Addr
		for _, rr := range e.RRs {
			host := rr.Data.(dnswire.NS).Host
			if ae := get(host, dnswire.TypeA); ae != nil {
				for _, arr := range ae.RRs {
					addrs = append(addrs, r.cfg.AddrMapper(arr.Data.(dnswire.A).Addr))
				}
				continue
			}
			// No A glue for this host: fall back to cached AAAA glue, which
			// renewal keeps alive alongside A (renewZone extends both).
			if ae := get(host, dnswire.TypeAAAA); ae != nil {
				for _, arr := range ae.RRs {
					addrs = append(addrs, r.cfg.AddrMapper(arr.Data.(dnswire.AAAA).Addr))
				}
			}
		}
		if len(addrs) > 0 {
			return anc, addrs
		}
	}
	return dnswire.Root, r.cfg.RootAddrs
}

// parentLastSeen returns when zone's delegation was last confirmed by its
// parent.
func (r *Resolver) parentLastSeen(zone dnswire.Name) (time.Time, bool) {
	r.parentMu.Lock()
	defer r.parentMu.Unlock()
	seen, ok := r.parentSeen[zone]
	return seen, ok
}

// queryZone sends (qname, qtype) to the zone's servers through the fetch
// engine. The ZoneQueried hook (renewal credit) fires only after a
// validated response arrives: a query that every server fails never
// earns the zone credit towards renewing IRRs that evidently cannot be
// refetched. No lock is held across the exchange round-trips.
func (r *Resolver) queryZone(ctx context.Context, tr *Trace, zname dnswire.Name, servers []transport.Addr, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: no addresses for zone %s", transport.ErrServerUnreachable, zname)
	}
	resp, err := r.engine.Fetch(ctx, tr, servers, qname, qtype)
	if err != nil {
		return nil, err
	}
	if h := r.cfg.Hooks.ZoneQueried; h != nil {
		h(zname)
	}
	return resp, nil
}

// Refetch sends a NS query for zone to its own servers through the fetch
// engine, sharing its RTT estimates and quarantine state. Unlike
// resolution queries, refetches do not fire the ZoneQueried hook: only
// genuine demand keeps a zone alive, otherwise renewal would sustain
// itself forever. The renewal scheduler (internal/core) is the caller.
func (r *Resolver) Refetch(ctx context.Context, tr *Trace, zone dnswire.Name, addrs []transport.Addr) (*dnswire.Message, error) {
	if len(addrs) == 0 {
		return nil, transport.ErrServerUnreachable
	}
	return r.engine.Fetch(ctx, tr, addrs, zone, dnswire.TypeNS)
}

// ZoneAddrs collects the cached addresses of the NS hosts in set. Hosts
// with no A record fall back to cached AAAA glue (renewal extends both
// families, so either may be the one still alive).
func (r *Resolver) ZoneAddrs(set []dnswire.RR) []transport.Addr {
	var addrs []transport.Addr
	for _, rr := range set {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		if ae := r.cache.Peek(ns.Host, dnswire.TypeA); ae != nil {
			for _, arr := range ae.RRs {
				addrs = append(addrs, r.cfg.AddrMapper(arr.Data.(dnswire.A).Addr))
			}
			continue
		}
		if ae := r.cache.Peek(ns.Host, dnswire.TypeAAAA); ae != nil {
			for _, arr := range ae.RRs {
				addrs = append(addrs, r.cfg.AddrMapper(arr.Data.(dnswire.AAAA).Addr))
			}
		}
	}
	return addrs
}

// answersQuestion reports whether resp's answer section covers (qname,
// qtype), directly or through a CNAME.
func answersQuestion(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type) bool {
	for _, rr := range resp.Answer {
		if rr.Name == qname && (rr.Type() == qtype || rr.Type() == dnswire.TypeCNAME) {
			return true
		}
	}
	return false
}

// relevantAnswers extracts the answer-section records that belong to the
// question's CNAME chain.
func relevantAnswers(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	cur := qname
	for hops := 0; hops <= len(resp.Answer); hops++ {
		matched := false
		for _, rr := range resp.Answer {
			if rr.Name != cur {
				continue
			}
			if rr.Type() == qtype {
				out = append(out, rr)
				matched = true
			}
		}
		if matched {
			return out
		}
		// Follow one CNAME link.
		advanced := false
		for _, rr := range resp.Answer {
			if rr.Name == cur && rr.Type() == dnswire.TypeCNAME {
				out = append(out, rr)
				cur = rr.Data.(dnswire.CNAME).Target
				advanced = true
				break
			}
		}
		if !advanced {
			return out
		}
	}
	return out
}

// referralChild returns the child zone a referral from zname points at.
func referralChild(resp *dnswire.Message, zname dnswire.Name) dnswire.Name {
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS && rr.Name != zname && rr.Name.IsSubdomainOf(zname) {
			return rr.Name
		}
	}
	return ""
}

// resolveMissingGlue resolves address records for the child zone's name
// servers when the referral carried no usable glue (out-of-bailiwick
// servers). Failures are tolerated: iterate detects lack of progress.
func (r *Resolver) resolveMissingGlue(ctx context.Context, tr *Trace, child dnswire.Name, depth int) {
	if child == "" || depth >= maxGlueDepth {
		return
	}
	e := r.cache.Peek(child, dnswire.TypeNS)
	if e == nil {
		return
	}
	// Any live cached address already makes the zone usable. Get (not
	// Peek) so that an expired glue record does not masquerade as usable.
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		if r.cache.Get(host, dnswire.TypeA) != nil {
			return
		}
	}
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		if host.IsSubdomainOf(child) {
			// In-bailiwick without glue: unresolvable without the child
			// zone itself; skip.
			continue
		}
		// The aggregate budget bounds fanout across sibling NS names,
		// not just nesting: a delegation naming dozens of unresolvable
		// out-of-bailiwick servers (the NXNSAttack shape) stops
		// multiplying upstream traffic once the query's budget is gone.
		if !takeGlueFetch(ctx) {
			r.counters.GlueBudgetExhausted.Add(1)
			return
		}
		r.counters.GlueFetches.Add(1)
		if _, err := r.resolveOne(ctx, tr, host, dnswire.TypeA, depth+1); err == nil {
			return
		}
	}
}

// isReferral reports whether resp is a downward referral from zname.
func isReferral(resp *dnswire.Message, zname dnswire.Name) bool {
	if len(resp.Answer) != 0 || resp.Flags.Authoritative {
		return false
	}
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS && rr.Name != zname && rr.Name.IsSubdomainOf(zname) {
			return true
		}
	}
	return false
}
