// Command dnslint is the repo's custom vet tool: six analyzers that
// enforce the resilience invariants the ordinary toolchain cannot see.
// It speaks the unitchecker protocol, so it runs under the go command:
//
//	go build -o bin/dnslint ./cmd/dnslint
//	go vet -vettool=$(pwd)/bin/dnslint ./...
//
// or via `make lint`. Findings are suppressed case-by-case with
// `//dnslint:ignore <analyzer> <reason>` (reason mandatory); see
// DESIGN.md §9 for the invariant behind each analyzer.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"resilientdns/internal/analysis/lockexchange"
	"resilientdns/internal/analysis/maporder"
	"resilientdns/internal/analysis/onepath"
	"resilientdns/internal/analysis/wallclock"
	"resilientdns/internal/analysis/weakrand"
	"resilientdns/internal/analysis/wireerr"
)

func main() {
	unitchecker.Main(
		wallclock.Analyzer,
		lockexchange.Analyzer,
		weakrand.Analyzer,
		wireerr.Analyzer,
		maporder.Analyzer,
		onepath.Analyzer,
	)
}
