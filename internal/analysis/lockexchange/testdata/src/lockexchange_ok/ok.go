// Package lockexchange_ok is a passing fixture: the copy-then-release
// idiom PR 1 established, and the other shapes the analyzer must not
// flag.
package lockexchange_ok

import (
	"context"
	"sync"
	"time"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Resolver snapshots state under the lock, releases, then exchanges.
type Resolver struct {
	mu      sync.Mutex
	tr      Transport
	servers []string
}

// Query is the correct idiom: lock only around the shared state.
func (r *Resolver) Query(ctx context.Context, q []byte) ([]byte, error) {
	r.mu.Lock()
	server := r.servers[0]
	r.mu.Unlock()
	return r.tr.Exchange(ctx, server, q)
}

// Spawn launches the exchange on its own goroutine: the lock holder
// does not block.
func (r *Resolver) Spawn(ctx context.Context, q []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	server := r.servers[0]
	go func() {
		r.tr.Exchange(ctx, server, q)
	}()
}

// Closure defines (but does not run) a blocking closure under the lock.
func (r *Resolver) Closure(ctx context.Context) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() { time.Sleep(time.Second) }
}

// BranchRelease unlocks before the blocking call in the early-return
// branch; the fallthrough path still holds no lock by then.
func (r *Resolver) BranchRelease(ctx context.Context, fast bool) ([]byte, error) {
	r.mu.Lock()
	if fast {
		r.mu.Unlock()
		return r.tr.Exchange(ctx, "fast", nil)
	}
	r.mu.Unlock()
	return nil, nil
}
