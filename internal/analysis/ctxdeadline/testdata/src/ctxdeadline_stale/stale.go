// Package ctxdeadline_stale exercises stale-suppression detection:
// the code was fixed long ago but the directive outlived the finding.
// Note this package is deliberately left out of the -pkgs scope in the
// test: stale directives are reported everywhere, scope or not.
package ctxdeadline_stale

import (
	"context"
	"time"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Bounded got its WithTimeout in some past cleanup; the leftover
// directive now suppresses nothing and must be deleted.
func Bounded(tr Transport) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tr.Exchange(ctx, "10.0.0.1", nil) //dnslint:ignore ctxdeadline legacy suppression // want "stale"
}
