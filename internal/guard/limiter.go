package guard

import (
	"hash/fnv"
	"net/netip"
	"sync"
	"time"

	"resilientdns/internal/metrics"
)

// The per-client token-bucket rate limiter. Client state lives in a
// sparse map sharded by address hash — lock-striped like the cache, so a
// flood from many (possibly spoofed) addresses contends on independent
// locks — and each shard keeps an intrusive LRU list bounding its slot
// count: a spoofed-source flood can churn the table but never grow it.

// shardCount is the number of independently locked limiter shards. A
// power of two so the shard index is a mask of the address hash.
const shardCount = 64

// defaultMaxClients bounds tracked client slots across all shards.
const defaultMaxClients = 65536

// decision classifies one query's fate at the rate limiter.
type decision int

const (
	decisionAllow decision = iota
	decisionDrop
	decisionSlip
)

// client is one address's token bucket and LRU linkage. Guarded by its
// shard's mutex.
type client struct {
	addr   netip.Addr
	tokens float64
	last   time.Time
	// limited counts consecutive rate-limited queries, driving the slip
	// cadence (every Nth limited query slips).
	limited uint64

	prev, next *client
}

// limShard is one lock-striped slice of the client table with its own
// LRU list (lru.next = most recently seen, lru.prev = eviction victim;
// the lru field itself is the list's sentinel).
type limShard struct {
	mu      sync.Mutex
	clients map[netip.Addr]*client
	lru     client
}

// limiter is the sharded token-bucket table.
type limiter struct {
	rps      float64
	burst    float64
	slip     int
	perShard int
	counters *metrics.GuardCounters
	shards   [shardCount]limShard
}

func newLimiter(rps, burst float64, slip, maxClients int, counters *metrics.GuardCounters) *limiter {
	if burst <= 0 {
		burst = 2 * rps
	}
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = defaultMaxClients
	}
	perShard := maxClients / shardCount
	if perShard < 1 {
		perShard = 1
	}
	l := &limiter{rps: rps, burst: burst, slip: slip, perShard: perShard, counters: counters}
	for i := range l.shards {
		s := &l.shards[i]
		s.clients = make(map[netip.Addr]*client)
		s.lru.next = &s.lru
		s.lru.prev = &s.lru
	}
	return l
}

// admit spends one token from addr's bucket, deciding the query's fate.
func (l *limiter) admit(addr netip.Addr, now time.Time) decision {
	s := &l.shards[shardFor(addr)]
	s.mu.Lock()
	defer s.mu.Unlock()

	c := s.clients[addr]
	if c == nil {
		if len(s.clients) >= l.perShard {
			victim := s.lru.prev // least recently seen
			unlink(victim)
			delete(s.clients, victim.addr)
			l.counters.ClientsEvicted.Add(1)
		}
		c = &client{addr: addr, tokens: l.burst, last: now}
		s.clients[addr] = c
	} else {
		unlink(c)
		// Refill from elapsed time, capped at the burst depth.
		if dt := now.Sub(c.last).Seconds(); dt > 0 {
			c.tokens += dt * l.rps
			if c.tokens > l.burst {
				c.tokens = l.burst
			}
		}
		c.last = now
	}
	pushFront(&s.lru, c)

	if c.tokens >= 1 {
		c.tokens--
		c.limited = 0
		return decisionAllow
	}
	c.limited++
	if l.slip > 0 && c.limited%uint64(l.slip) == 0 {
		return decisionSlip
	}
	return decisionDrop
}

// clientCount reports the tracked slots across all shards (tests).
func (l *limiter) clientCount() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.clients)
		s.mu.Unlock()
	}
	return n
}

func unlink(c *client) {
	c.prev.next = c.next
	c.next.prev = c.prev
	c.prev, c.next = nil, nil
}

func pushFront(sentinel, c *client) {
	c.next = sentinel.next
	c.prev = sentinel
	sentinel.next.prev = c
	sentinel.next = c
}

// shardFor maps an address to its shard by FNV-1a hash of the 16-byte
// form (v4 addresses were unmapped by clientAddr, so the mapping is
// stable per client).
func shardFor(addr netip.Addr) int {
	h := fnv.New32a()
	b := addr.As16()
	h.Write(b[:])
	return int(h.Sum32() & (shardCount - 1))
}
