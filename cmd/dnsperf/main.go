// Command dnsperf load-tests a DNS server: it fires concurrent queries
// for a fixed duration and reports throughput, success rate, and latency
// percentiles. Query names come from a trace file (-trace) or a single
// repeated name (-name).
//
// Usage:
//
//	dnsperf -server 127.0.0.1:5301 -name www.example.com -duration 5s -concurrency 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/debughttp"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/transport"
	"resilientdns/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsperf:", err)
		os.Exit(1)
	}
}

// loadNames builds the query name list from flags.
func loadNames(traceFile, name string) ([]dnswire.Name, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		names := make([]dnswire.Name, 0, len(tr.Queries))
		for _, q := range tr.Queries {
			names = append(names, q.Name)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("trace %s has no queries", traceFile)
		}
		return names, nil
	}
	n, err := dnswire.CanonicalName(name)
	if err != nil {
		return nil, err
	}
	return []dnswire.Name{n}, nil
}

func run() error {
	server := flag.String("server", "127.0.0.1:5301", "DNS server to load (host:port)")
	name := flag.String("name", "www.example.com", "query name when no trace is given")
	traceFile := flag.String("trace", "", "trace file supplying query names")
	duration := flag.Duration("duration", 5*time.Second, "test duration")
	concurrency := flag.Int("concurrency", 8, "concurrent query workers")
	timeout := flag.Duration("timeout", time.Second, "per-query timeout")
	unique := flag.Bool("unique", false, "prefix every query name with a unique label (cache-miss-heavy load)")
	rate := flag.Float64("rate", 0, "paced queries/s per legit worker (0 = as fast as replies allow)")
	abusers := flag.Int("abusers", 0, "abusive flooding clients: fire-and-forget workers sending unique names (forcing recursion) from -abuse-source, replies ignored")
	abuseQPS := flag.Float64("abuse-qps", 1000, "queries/s per abuser (0 = unthrottled)")
	abuseSource := flag.String("abuse-source", "127.0.0.99", "local IP the abusers bind, so the server sees them as one client address")
	debugURL := flag.String("debug-url", "", "dnscache -debug-addr base URL (e.g. http://127.0.0.1:8053); prints the server-side per-stage latency breakdown after the run")
	jsonOut := flag.String("json", "", "also write a machine-readable result summary to this file (\"-\" = stdout); what make bench consumes")
	flag.Parse()

	names, err := loadNames(*traceFile, *name)
	if err != nil {
		return err
	}

	before, err := fetchStats(*debugURL)
	if err != nil {
		return err
	}
	if before != nil {
		printBuild(os.Stdout, before.Build)
	}

	ctx := context.Background()
	abuseSent := runAbusers(ctx, *server, names[0], *duration, *abusers, *abuseQPS, *abuseSource)
	stats := runLoad(ctx, transport.Addr(*server), names,
		*duration, *concurrency, *timeout, *unique, *rate)
	stats.print(os.Stdout)
	if *abusers > 0 {
		fmt.Printf("abuse sent:   %d (%.0f qps from %s across %d abusers)\n",
			abuseSent.Load(), float64(abuseSent.Load())/duration.Seconds(), *abuseSource, *abusers)
	}

	after, err := fetchStats(*debugURL)
	if err != nil {
		return err
	}
	printStageBreakdown(os.Stdout, before.latency(), after.latency())

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stats, *concurrency); err != nil {
			return err
		}
	}
	if stats.sent == 0 {
		return fmt.Errorf("no queries completed")
	}
	return nil
}

// resultJSON is the machine-readable run summary behind -json; the
// benchmark harness (make bench → BENCH_10.json) parses it, so fields
// are additive-only.
type resultJSON struct {
	Queries     uint64  `json:"queries"`
	QPS         float64 `json:"qps"`
	OK          uint64  `json:"ok"`
	Failed      uint64  `json:"failed"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
}

func writeJSON(path string, s *loadStats, concurrency int) error {
	out := resultJSON{
		Queries:     s.sent,
		QPS:         float64(s.sent) / s.elapsed.Seconds(),
		OK:          s.ok,
		Failed:      s.failed,
		P50MS:       1000 * s.latencies.Quantile(0.50),
		P95MS:       1000 * s.latencies.Quantile(0.95),
		P99MS:       1000 * s.latencies.Quantile(0.99),
		DurationS:   s.elapsed.Seconds(),
		Concurrency: concurrency,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runAbusers starts the abusive-client mix: n workers flooding the server
// with unique query names (every query forces a full recursion — the
// NXNSAttack shape) from a shared source address, never reading replies.
// It returns immediately; the returned counter accumulates sends until
// duration elapses, and the legit load runs concurrently.
func runAbusers(ctx context.Context, server string, base dnswire.Name,
	duration time.Duration, n int, qps float64, source string) *atomic.Uint64 {
	sent := &atomic.Uint64{}
	if n <= 0 {
		return sent
	}
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(time.Second) / qps)
	}
	deadline := time.Now().Add(duration)
	for w := 0; w < n; w++ {
		go func(worker int) {
			laddr, err := net.ResolveUDPAddr("udp", source+":0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsperf: abuser source %s: %v\n", source, err)
				return
			}
			dialer := net.Dialer{LocalAddr: laddr}
			conn, err := dialer.DialContext(ctx, "udp", server)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsperf: abuser dial: %v\n", err)
				return
			}
			defer conn.Close()
			for i := 0; time.Now().Before(deadline); i++ {
				qname := dnswire.Name(fmt.Sprintf("a%dw%d.%s", i, worker, base))
				q := dnswire.NewQuery(uint16(i), qname, dnswire.TypeA)
				q.Flags.RecursionDesired = true
				wire, err := q.Pack()
				if err != nil {
					continue
				}
				if _, err := conn.Write(wire); err != nil {
					continue
				}
				sent.Add(1)
				if interval > 0 {
					time.Sleep(interval)
				}
			}
		}(w)
	}
	return sent
}

// debugStats is the slice of the server's /debug/stats payload dnsperf
// reads: the build/uptime section and the latency histograms.
type debugStats struct {
	Build   map[string]any                      `json:"build"`
	Latency map[string]debughttp.LatencySummary `json:"latency"`
}

// latency returns the latency map, tolerating a nil receiver (debug
// endpoint off) so the breakdown printer can treat both snapshots
// uniformly.
func (d *debugStats) latency() map[string]debughttp.LatencySummary {
	if d == nil {
		return nil
	}
	return d.Latency
}

// fetchStats reads the server's /debug/stats. An empty URL returns nil
// (the feature is off).
func fetchStats(baseURL string) (*debugStats, error) {
	if baseURL == "" {
		return nil, nil
	}
	url := strings.TrimSuffix(baseURL, "/") + "/debug/stats"
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("debug endpoint: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("debug endpoint: %s returned %s", url, resp.Status)
	}
	var payload debugStats
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("debug endpoint: %w", err)
	}
	if payload.Latency == nil {
		payload.Latency = map[string]debughttp.LatencySummary{}
	}
	return &payload, nil
}

// printBuild reports which binary the target server is running and for
// how long — catches the classic load-test footgun of benchmarking a
// stale fleet member.
func printBuild(w *os.File, build map[string]any) {
	if len(build) == 0 {
		return
	}
	var parts []string
	for _, key := range []string{"path", "version", "go", "vcs.revision", "vcs.modified"} {
		if v, ok := build[key]; ok {
			s := fmt.Sprint(v)
			if key == "vcs.revision" && len(s) > 12 {
				s = s[:12]
			}
			parts = append(parts, s)
		}
	}
	if up, ok := build["uptime_s"]; ok {
		parts = append(parts, fmt.Sprintf("up %vs", up))
	}
	fmt.Fprintf(w, "server build: %s\n", strings.Join(parts, " "))
}

// printStageBreakdown reports where the server spent resolution time
// during the run: per-pipeline-stage and per-trace-kind counts and
// latencies, deltas between the before/after snapshots. Percentiles
// come from the cumulative histograms (the server does not keep
// interval percentiles), so they reflect the server's lifetime.
func printStageBreakdown(w *os.File, before, after map[string]debughttp.LatencySummary) {
	if after == nil {
		return
	}
	fmt.Fprintf(w, "server-side stage breakdown (this run):\n")
	any := false
	for _, key := range debughttp.SortedLatencyKeys(after) {
		s := after[key]
		count := s.Count - before[key].Count
		if count == 0 {
			continue
		}
		any = true
		sumMS := s.SumMS - before[key].SumMS
		meanUS := sumMS * 1e3 / float64(count)
		fmt.Fprintf(w, "  %-22s %8d × %8.0f µs mean  (lifetime p50 %d µs, p99 %d µs)\n",
			key, count, meanUS, s.P50US, s.P99US)
	}
	if !any {
		fmt.Fprintf(w, "  (no traced work on the server during the run)\n")
	}
}

// loadStats aggregates worker results.
type loadStats struct {
	mu          sync.Mutex
	latencies   metrics.CDF
	okLatencies metrics.CDF

	sent, ok, failed uint64
	perWorker        []uint64 // queries completed by each worker
	elapsed          time.Duration
}

func (s *loadStats) record(worker int, d time.Duration, success bool) {
	atomic.AddUint64(&s.sent, 1)
	atomic.AddUint64(&s.perWorker[worker], 1)
	if success {
		atomic.AddUint64(&s.ok, 1)
	} else {
		atomic.AddUint64(&s.failed, 1)
	}
	s.mu.Lock()
	s.latencies.AddDuration(d)
	if success {
		s.okLatencies.AddDuration(d)
	}
	s.mu.Unlock()
}

func (s *loadStats) print(w *os.File) {
	qps := float64(s.sent) / s.elapsed.Seconds()
	fmt.Fprintf(w, "queries:      %d (%.0f qps)\n", s.sent, qps)
	fmt.Fprintf(w, "success:      %d (%.2f%%)\n", s.ok, 100*float64(s.ok)/float64(max64(s.sent, 1)))
	fmt.Fprintf(w, "failed:       %d\n", s.failed)
	fmt.Fprintf(w, "latency p50:  %.3f ms\n", 1000*s.latencies.Quantile(0.50))
	fmt.Fprintf(w, "latency p95:  %.3f ms\n", 1000*s.latencies.Quantile(0.95))
	fmt.Fprintf(w, "latency p99:  %.3f ms\n", 1000*s.latencies.Quantile(0.99))
	// Upstream (successful-query) latency: failed queries sit at the
	// client timeout and would mask what the resolver actually delivered.
	if s.ok > 0 {
		fmt.Fprintf(w, "ok p50:       %.3f ms\n", 1000*s.okLatencies.Quantile(0.50))
		fmt.Fprintf(w, "ok p99:       %.3f ms\n", 1000*s.okLatencies.Quantile(0.99))
	}
	// Per-worker throughput: with a concurrent server every worker should
	// sustain roughly the single-worker rate; a serialized server shows
	// per-worker qps collapsing as 1/concurrency.
	var minQ, maxQ uint64
	for i, n := range s.perWorker {
		wqps := float64(n) / s.elapsed.Seconds()
		fmt.Fprintf(w, "worker %2d:    %d (%.0f qps)\n", i, n, wqps)
		if i == 0 || n < minQ {
			minQ = n
		}
		if n > maxQ {
			maxQ = n
		}
	}
	if len(s.perWorker) > 1 && minQ > 0 {
		fmt.Fprintf(w, "worker spread: min %.0f qps, max %.0f qps (max/min %.2f)\n",
			float64(minQ)/s.elapsed.Seconds(), float64(maxQ)/s.elapsed.Seconds(),
			float64(maxQ)/float64(minQ))
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// runLoad drives the workers and returns aggregated statistics. With
// unique set, every query name gets a distinct leading label so each
// query forces a full resolution (cache-miss-heavy load). A non-zero
// rate paces each worker to that many queries/s, modelling legitimate
// clients that query at their own tempo rather than as fast as the
// server answers.
func runLoad(ctx context.Context, server transport.Addr, names []dnswire.Name,
	duration time.Duration, concurrency int, timeout time.Duration, unique bool, rate float64) *loadStats {
	stats := &loadStats{perWorker: make([]uint64, concurrency)}
	deadline := time.Now().Add(duration)
	// Fresh binding, not a reassignment of the parameter: the load
	// window is the deadline for every in-flight query, and the fresh
	// name is how ctxdeadline sees that the parameter never reaches an
	// exchange unbounded.
	lctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			tr := &transport.UDP{Timeout: timeout}
			for i := worker; time.Now().Before(deadline); i += concurrency {
				qname := names[i%len(names)]
				if unique {
					qname = dnswire.Name(fmt.Sprintf("q%d.%s", i, qname))
				}
				q := dnswire.NewQuery(uint16(i), qname, dnswire.TypeA)
				q.Flags.RecursionDesired = true
				start := time.Now()
				resp, err := tr.Exchange(lctx, server, q)
				success := err == nil && resp.RCode != dnswire.RCodeServFail
				stats.record(worker, time.Since(start), success)
				if sleep := interval - time.Since(start); interval > 0 && sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}(w)
	}
	wg.Wait()
	stats.elapsed = duration
	return stats
}
