package resolve

import (
	"resilientdns/internal/dnswire"
)

// The CNAME chain walker. Three pipeline paths chase CNAME chains — the
// cache hot path (Lookup), the full resolution (ResolveChain), and the
// stale fallback (staleAnswer) — and before this walker existed each
// re-implemented the loop with subtly different copy/TTL semantics. The
// walker owns the hop bound, the answer accumulation, the FromCache
// conjunction, and the follow/terminate decision; each mode supplies
// only the per-name step.

// chainOutcome classifies one step of a chain walk.
type chainOutcome int

const (
	// chainDone ends the walk: the step produced a terminal answer (or
	// a non-NoError rcode).
	chainDone chainOutcome = iota
	// chainFollow offers the step's records for CNAME chasing: the walk
	// follows the chain's next target, or terminates when the records
	// already answer the question.
	chainFollow
	// chainMiss ends the walk without an answer for the current name;
	// the caller decides what a miss means in its mode.
	chainMiss
)

// chainStep is one mode-specific lookup result for the current name.
type chainStep struct {
	rrs []dnswire.RR
	// authority carries authority-section records for a terminal step
	// (the SOA of a negative answer); only meaningful with chainDone.
	authority []dnswire.RR
	rcode     dnswire.RCode
	outcome   chainOutcome
	fromCache bool
	err       error
}

// chainResult is the walk's accumulated outcome.
type chainResult struct {
	answer    []dnswire.RR
	authority []dnswire.RR
	rcode     dnswire.RCode
	fromCache bool
	// miss reports the walk stopped on a chainMiss; missAt names where.
	miss   bool
	missAt dnswire.Name
	// exhausted reports the chain exceeded maxHops without terminating.
	exhausted bool
	err       error
}

// walkChain chases a CNAME chain from qname, calling step for each name
// up to maxHops+1 times. The step's records are appended to the answer
// before its outcome is applied, and FromCache holds only if every step
// was cache-served.
func walkChain(qname dnswire.Name, qtype dnswire.Type, maxHops int, step func(cur dnswire.Name) chainStep) chainResult {
	res := chainResult{fromCache: true}
	cur := qname
	for hop := 0; hop <= maxHops; hop++ {
		st := step(cur)
		if st.err != nil {
			res.err = st.err
			return res
		}
		res.answer = append(res.answer, st.rrs...)
		res.fromCache = res.fromCache && st.fromCache
		switch st.outcome {
		case chainMiss:
			res.miss = true
			res.missAt = cur
			return res
		case chainDone:
			res.rcode = st.rcode
			res.authority = st.authority
			return res
		case chainFollow:
			if target, ok := cnameTarget(st.rrs, cur, qtype); ok {
				cur = target
				continue
			}
			res.rcode = st.rcode
			res.authority = st.authority
			return res
		}
	}
	res.exhausted = true
	return res
}

// cnameTarget returns the target to chase when rrs answer name only via a
// CNAME and the query was not for the CNAME itself.
func cnameTarget(rrs []dnswire.RR, name dnswire.Name, qtype dnswire.Type) (dnswire.Name, bool) {
	if qtype == dnswire.TypeCNAME {
		return "", false
	}
	var target dnswire.Name
	found := false
	for _, rr := range rrs {
		if rr.Type() == qtype {
			return "", false // real answer present
		}
		if rr.Name == name && rr.Type() == dnswire.TypeCNAME {
			target = rr.Data.(dnswire.CNAME).Target
			found = true
		}
	}
	return target, found
}
