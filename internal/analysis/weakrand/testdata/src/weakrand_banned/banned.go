// Package weakrand_banned is a failing fixture standing in for a
// security-sensitive package (the test adds it to -weakrand.pkgs):
// any math/rand use is flagged, because query IDs, ports, and nonces
// must come from crypto/rand.
package weakrand_banned

import "math/rand"

// QueryID draws a QID from math/rand: guessable.
func QueryID() uint16 {
	return uint16(rand.Intn(1 << 16)) // want "math/rand.Intn in security-sensitive package"
}

// SourcePort draws from a local generator; the method call is caught too.
func SourcePort(r *rand.Rand) int {
	return 1024 + r.Intn(64511) // want "math/rand.Intn in security-sensitive package"
}

// Annotated carries a justified suppression and is not flagged.
func Annotated(r *rand.Rand) int {
	return r.Intn(6) //dnslint:ignore weakrand dice roll for jitter only, not an identifier
}
