package resolve

import (
	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// Ingest is the Validate/Ingest stage's cache half: it stores every
// usable record in resp, applying RFC 2181 credibility ranking and
// marking infrastructure RRsets (zone NS sets and the address records of
// the servers they name) so the refresh and renewal schemes know what
// they may extend. Exported so the renewal scheduler (internal/core) can
// ingest refetch responses through the same rules.
func (r *Resolver) Ingest(resp *dnswire.Message, fromZone dnswire.Name, qname dnswire.Name) {
	r.IngestFrom(resp, fromZone, qname, cache.OriginUpstream)
}

// IngestFrom is Ingest with an explicit data origin: the mesh ingests
// peer-gossiped IRR sets through exactly the same credibility,
// bailiwick, and TTL-clamping rules, tagged cache.OriginPeer so the
// cache (and a post-restart recovery) can tell peer-learned data from
// upstream-confirmed data.
func (r *Resolver) IngestFrom(resp *dnswire.Message, fromZone dnswire.Name, qname dnswire.Name, origin cache.Origin) {
	aa := resp.Flags.Authoritative

	// Collect the name-server host names mentioned by NS records anywhere
	// in the message; their address records are infrastructure.
	nsHosts := make(map[dnswire.Name]bool)
	nsOwners := make(map[dnswire.Name]bool)
	for _, section := range [][]dnswire.RR{resp.Answer, resp.Authority} {
		for _, rr := range section {
			if ns, ok := rr.Data.(dnswire.NS); ok {
				nsHosts[ns.Host] = true
				nsOwners[rr.Name] = true
			}
		}
	}

	// Answer section: full credibility. Zone NS and DNSKEY sets are
	// infrastructure (§6 extends the IRR notion to the DNSSEC records).
	for _, set := range groupRRSets(resp.Answer) {
		if set[0].Type() == dnswire.TypeRRSIG {
			// RRSIGs for different covered types share an (owner, type)
			// cache key; they are validated in-line from the response
			// instead of being cached.
			continue
		}
		t := set[0].Type()
		infra := t == dnswire.TypeNS || t == dnswire.TypeDNSKEY || t == dnswire.TypeDS
		r.putInfraAware(set, cache.CredAnswer, infra, origin)
	}

	// Authority section: the child's own copy of its IRRs when the answer
	// is authoritative, referral data otherwise.
	cred := cache.CredReferral
	if aa {
		cred = cache.CredAuthority
	}
	for _, set := range groupRRSets(resp.Authority) {
		switch set[0].Type() {
		case dnswire.TypeNS:
			r.putInfraAware(set, cred, true, origin)
			if cred == cache.CredReferral {
				// A referral is the parent vouching for the delegation.
				r.parentMu.Lock()
				r.parentSeen[set[0].Name] = r.cfg.Clock.Now()
				r.parentMu.Unlock()
			}
		case dnswire.TypeDS:
			// Parent-side DS is infrastructure, like NS and glue.
			r.putInfraAware(set, cred, true, origin)
		case dnswire.TypeSOA, dnswire.TypeRRSIG:
			// SOA in negative answers is not cached as data; the
			// negative-cache layer handles the outcome itself. RRSIGs
			// are consumed in-line, not cached.
		default:
			r.cache.PutOrigin(set, cred, false, origin)
		}
	}

	// Additional section: glue. Only address records for name servers
	// mentioned in this message are trusted (bailiwick hygiene).
	for _, set := range groupRRSets(resp.Additional) {
		t := set[0].Type()
		if t != dnswire.TypeA && t != dnswire.TypeAAAA {
			continue
		}
		if !nsHosts[set[0].Name] {
			continue
		}
		r.putInfraAware(set, cred, true, origin)
	}

	// Renewal bookkeeping: any newly cached zone IRR gets a scheduler
	// entry keyed to its expiry.
	if h := r.cfg.Hooks.InfraCached; h != nil {
		for owner := range nsOwners {
			if e := r.cache.Peek(owner, dnswire.TypeNS); e != nil && e.Infra {
				h(owner, e.Expires)
			}
		}
	}
}

// putInfraAware stores a set and, for infrastructure NS sets, fires the
// InfraCached hook so the renewal scheduler stays in sync.
func (r *Resolver) putInfraAware(set []dnswire.RR, cred cache.Credibility, infra bool, origin cache.Origin) {
	e := r.cache.PutOrigin(set, cred, infra, origin)
	if e != nil && infra && e.Key.Type == dnswire.TypeNS {
		if h := r.cfg.Hooks.InfraCached; h != nil {
			h(e.Key.Name, e.Expires)
		}
	}
}

// groupRRSets splits a message section into RRsets by (owner, type),
// preserving first-appearance order.
func groupRRSets(rrs []dnswire.RR) [][]dnswire.RR {
	type key struct {
		name dnswire.Name
		typ  dnswire.Type
	}
	var order []key
	groups := make(map[key][]dnswire.RR)
	for _, rr := range rrs {
		k := key{name: rr.Name, typ: rr.Type()}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rr)
	}
	out := make([][]dnswire.RR, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}
