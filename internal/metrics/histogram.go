package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histogramBuckets covers latencies from <1µs up through bucket upper
// bounds of 2^38µs (~76h) — far beyond any per-query timeout.
const histogramBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two bucket
// boundaries in microseconds: bucket 0 holds samples under 1µs and
// bucket i holds samples in [2^(i-1), 2^i) µs. All fields are atomic, so
// the trace layer records from every query/renewal/prefetch goroutine
// without synchronisation; Snapshot reads a consistent-enough copy for
// reporting. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sumNano atomic.Int64
	buckets [histogramBuckets]atomic.Uint64
}

// Observe folds one duration sample into the histogram. Negative
// samples clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNano.Add(d.Nanoseconds())
	idx := bits.Len64(uint64(d.Microseconds()))
	if idx >= histogramBuckets {
		idx = histogramBuckets - 1
	}
	h.buckets[idx].Add(1)
}

// Snapshot copies the histogram into a plain value for reporting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNano.Load()),
	}
	s.Buckets = make([]uint64, histogramBuckets)
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of samples; Sum their total duration.
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	// Buckets[i] counts samples in [2^(i-1), 2^i) microseconds
	// (Buckets[0]: under 1µs).
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the mean sample duration, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound for the q-th quantile (q in [0, 1]):
// the upper boundary of the bucket where the cumulative count crosses
// q·Count. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketUpperBound(i)
		}
	}
	return bucketUpperBound(len(s.Buckets) - 1)
}

// bucketUpperBound returns bucket i's exclusive upper bound as a
// duration: 1µs for bucket 0, 2^i µs beyond.
func bucketUpperBound(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}
