package resolve

import (
	"errors"
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// TestNilTraceIsInert: every Trace method must be a no-op on nil — this
// is the property that lets the pipeline thread traces unconditionally
// and the simulator run with tracing fully off.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.StartStage(StageIterate)
	sp.End()
	tr.MarkCoalesced()
	tr.MarkCacheHit()
	tr.MarkStale()
	tr.RecordAttempt("10.0.0.1", time.Millisecond, errors.New("x"))

	// A resolver without a sink never creates traces at all...
	r := newTestResolver(t, Config{})
	if got := r.NewTrace(KindQuery, dnswire.MustName("x."), dnswire.TypeA); got != nil {
		t.Errorf("NewTrace = %v with no sink, want nil", got)
	}
	// ...and finishing the nil trace is equally inert.
	r.FinishTrace(nil, nil, nil)
}

// TestTraceStageTimingAndSummary drives a trace through stage spans on
// a virtual clock and checks the summary the sink receives.
func TestTraceStageTimingAndSummary(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	ring := NewRing(4)
	r := newTestResolver(t, Config{Clock: clk, TraceSink: ring,
		Cache: cache.New(cache.Config{Clock: clk})})

	tr := r.NewTrace(KindResolve, dnswire.MustName("www.test."), dnswire.TypeA)
	if tr == nil {
		t.Fatal("NewTrace returned nil with a sink configured")
	}
	sp := tr.StartStage(StageIterate)
	clk.Advance(3 * time.Millisecond)

	// Nested re-entry (glue resolution re-entering Iterate) must not
	// double-count: the outer span owns the wall clock.
	inner := tr.StartStage(StageIterate)
	clk.Advance(2 * time.Millisecond)
	inner.End()
	sp.End()

	tr.MarkStale()
	tr.RecordAttempt("10.0.0.1", 4*time.Millisecond, transport.ErrTimeout)
	tr.RecordAttempt("10.0.0.2", time.Millisecond, nil)
	r.FinishTrace(tr, &Result{RCode: dnswire.RCodeNoError}, nil)

	recent := ring.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("ring holds %d summaries, want 1", len(recent))
	}
	ts := recent[0]
	if ts.Kind != "resolve" || ts.Name != "www.test." || ts.Outcome != dnswire.RCodeNoError.String() {
		t.Errorf("summary = %+v", ts)
	}
	if !ts.Stale {
		t.Error("MarkStale not reflected in the summary")
	}
	if got := ts.StageMicros["iterate"]; got != 5000 {
		t.Errorf("iterate stage = %dµs, want 5000 (nested span must not double-count)", got)
	}
	if len(ts.Attempts) != 2 || ts.Attempts[0].Error == "" || ts.Attempts[1].Error != "" {
		t.Errorf("attempts = %+v", ts.Attempts)
	}

	// The finished trace also feeds the resolver's histograms.
	snaps := r.LatencySnapshots()
	if snaps["stage/iterate"].Count != 1 {
		t.Errorf("stage/iterate histogram count = %d, want 1", snaps["stage/iterate"].Count)
	}
	if snaps["kind/resolve"].Count != 1 {
		t.Errorf("kind/resolve histogram count = %d, want 1", snaps["kind/resolve"].Count)
	}
	if snaps["kind/query"].Count != 0 {
		t.Errorf("kind/query histogram count = %d, want 0", snaps["kind/query"].Count)
	}
}

// TestTraceOutcomeError: a failed resolution's summary carries the
// error text.
func TestTraceOutcomeError(t *testing.T) {
	ring := NewRing(1)
	r := newTestResolver(t, Config{TraceSink: ring})
	tr := r.NewTrace(KindRenewal, dnswire.MustName("z."), dnswire.TypeNS)
	r.FinishTrace(tr, nil, errors.New("boom"))
	recent := ring.Recent(1)
	if len(recent) != 1 || recent[0].Outcome != "error: boom" {
		t.Fatalf("recent = %+v, want outcome \"error: boom\"", recent)
	}
}

func TestRingWrapsAndOrders(t *testing.T) {
	ring := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		ring.Observe(TraceSummary{ID: i})
	}
	got := ring.Recent(10)
	if len(got) != 3 {
		t.Fatalf("Recent returned %d, want 3 (capacity)", len(got))
	}
	for i, want := range []uint64{5, 4, 3} { // newest first
		if got[i].ID != want {
			t.Errorf("Recent[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if n := len(ring.Recent(2)); n != 2 {
		t.Errorf("Recent(2) returned %d", n)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRing(1), NewRing(1)
	if s := MultiSink(nil, nil); s != nil {
		t.Errorf("MultiSink(nil, nil) = %v, want nil", s)
	}
	if s := MultiSink(a, nil); s != Sink(a) {
		t.Errorf("MultiSink with one live sink should return it directly")
	}
	s := MultiSink(a, b)
	s.Observe(TraceSummary{ID: 7})
	if a.Recent(1)[0].ID != 7 || b.Recent(1)[0].ID != 7 {
		t.Error("fan-out did not reach every sink")
	}
}
