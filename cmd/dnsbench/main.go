// Command dnsbench produces the repo's perf-trajectory snapshot
// (BENCH_10.json and successors): steady-state micro-benchmarks of the
// wire hot path measured in-process via testing.Benchmark, plus an
// end-to-end dnsperf run against a real dnsserver+dnscache pair on
// loopback. `make bench` runs it with the defaults; CI runs the
// micro-only mode (-e2e=false) and uploads the result as an artifact.
//
// Usage:
//
//	dnsbench -out BENCH_10.json                 # full run (needs bin/)
//	dnsbench -e2e=false -out BENCH_10.json      # micro-benchmarks only
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsbench:", err)
		os.Exit(1)
	}
}

// metric is one benchmark's steady-state cost.
type metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the BENCH_N.json shape. Fields are additive-only so later
// issues can diff their snapshot against this one.
type report struct {
	Issue  int               `json:"issue"`
	Micro  map[string]metric `json:"micro"`
	Perf   json.RawMessage   `json:"dnsperf,omitempty"`
	Config benchConfig       `json:"config"`
}

type benchConfig struct {
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
	UDPReaders  int     `json:"udp_readers"`
}

func run() error {
	out := flag.String("out", "BENCH_10.json", "output file")
	binDir := flag.String("bin", "bin", "directory holding dnsserver, dnscache, dnsperf (with -e2e)")
	zone := flag.String("zone", "testdata/example.zone", "zone file served by the e2e dnsserver")
	serverAddr := flag.String("server-addr", "127.0.0.1:5300", "e2e dnsserver listen address")
	cacheAddr := flag.String("cache-addr", "127.0.0.1:5301", "e2e dnscache listen address")
	duration := flag.Duration("duration", 5*time.Second, "e2e dnsperf duration")
	concurrency := flag.Int("concurrency", 8, "e2e dnsperf concurrency")
	udpReaders := flag.Int("udp-readers", 1, "e2e dnscache -udp-readers")
	e2e := flag.Bool("e2e", true, "run the dnsperf end-to-end pass (needs built binaries)")
	flag.Parse()

	rep := report{
		Issue: 10,
		Micro: runMicro(),
		Config: benchConfig{
			DurationS:   duration.Seconds(),
			Concurrency: *concurrency,
			UDPReaders:  *udpReaders,
		},
	}
	for name, m := range rep.Micro {
		fmt.Printf("micro %-18s %10.1f ns/op %8d B/op %6d allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	if *e2e {
		perf, err := runE2E(*binDir, *zone, *serverAddr, *cacheAddr, *duration, *concurrency, *udpReaders)
		if err != nil {
			return err
		}
		rep.Perf = perf
		fmt.Printf("dnsperf: %s\n", perf)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// sampleMessage mirrors the dnswire round-trip fixture: a compressible
// referral-shaped response (1 question, 1 answer, 2 NS, 2 glue).
func sampleMessage() *dnswire.Message {
	mkA := func(name string, ip string) dnswire.RR {
		return dnswire.RR{Name: dnswire.MustName(name), Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.A{Addr: netip.MustParseAddr(ip)}}
	}
	mkNS := func(name, host string) dnswire.RR {
		return dnswire.RR{Name: dnswire.MustName(name), Class: dnswire.ClassIN, TTL: 86400,
			Data: dnswire.NS{Host: dnswire.MustName(host)}}
	}
	m := dnswire.NewQuery(0x1234, dnswire.MustName("www.example.com"), dnswire.TypeA)
	m.Flags.RecursionDesired = true
	r := m.Reply()
	r.Flags.Authoritative = true
	r.Answer = []dnswire.RR{mkA("www.example.com", "192.0.2.1")}
	r.Authority = []dnswire.RR{mkNS("example.com", "ns1.example.com"), mkNS("example.com", "ns2.example.com")}
	r.Additional = []dnswire.RR{mkA("ns1.example.com", "192.0.2.53"), mkA("ns2.example.com", "192.0.2.54")}
	return r
}

// runMicro measures the wire hot path in-process. testing.Benchmark
// auto-scales N, so each number is a steady-state figure.
func runMicro() map[string]metric {
	msg := sampleMessage()
	wire, err := msg.Pack()
	if err != nil {
		panic(err)
	}
	scratch := make([]byte, 0, 1024)

	micro := map[string]metric{}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		micro[name] = metric{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}

	record("wire_pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := msg.Pack(); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("wire_append_pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := msg.AppendPack(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("wire_unpack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dnswire.Unpack(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("udp_exchange", func(b *testing.B) {
		srv := &transport.UDPServer{Handler: transport.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
			r := q.Reply()
			r.Answer = []dnswire.RR{{Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}}
			return r
		})}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		u := &transport.UDP{Timeout: 2 * time.Second}
		q := dnswire.NewQuery(1, dnswire.MustName("www.example.com"), dnswire.TypeA)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.Exchange(context.Background(), transport.Addr(addr), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	return micro
}

// runE2E starts dnsserver and dnscache from binDir, waits until the
// cache answers, runs dnsperf against it, and returns dnsperf's -json
// output verbatim.
func runE2E(binDir, zone, serverAddr, cacheAddr string, duration time.Duration, concurrency, udpReaders int) (json.RawMessage, error) {
	for _, bin := range []string{"dnsserver", "dnscache", "dnsperf"} {
		if _, err := os.Stat(filepath.Join(binDir, bin)); err != nil {
			return nil, fmt.Errorf("e2e needs %s/%s (run `make bench`, which builds it): %w", binDir, bin, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	server := exec.CommandContext(ctx, filepath.Join(binDir, "dnsserver"),
		"-listen", serverAddr, "-zone", "example.com="+zone)
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		return nil, fmt.Errorf("start dnsserver: %w", err)
	}
	defer func() { cancel(); server.Wait() }()

	cache := exec.CommandContext(ctx, filepath.Join(binDir, "dnscache"),
		"-listen", cacheAddr, "-root", serverAddr,
		"-udp-readers", fmt.Sprint(udpReaders), "-stats", "0")
	cache.Stderr = os.Stderr
	if err := cache.Start(); err != nil {
		return nil, fmt.Errorf("start dnscache: %w", err)
	}
	defer func() { cancel(); cache.Wait() }()

	if err := waitReady(cacheAddr, 10*time.Second); err != nil {
		return nil, err
	}

	jsonPath := filepath.Join(os.TempDir(), fmt.Sprintf("dnsperf-%d.json", os.Getpid()))
	defer os.Remove(jsonPath)
	perf := exec.CommandContext(ctx, filepath.Join(binDir, "dnsperf"),
		"-server", cacheAddr, "-name", "www.example.com",
		"-duration", duration.String(), "-concurrency", fmt.Sprint(concurrency),
		"-json", jsonPath)
	perf.Stdout = os.Stdout
	perf.Stderr = os.Stderr
	if err := perf.Run(); err != nil {
		return nil, fmt.Errorf("dnsperf: %w", err)
	}
	return os.ReadFile(jsonPath)
}

// waitReady polls the cache with a real query until it resolves —
// which also warms the cache, so the measured run is the hot path.
func waitReady(addr string, patience time.Duration) error {
	u := &transport.UDP{Timeout: 500 * time.Millisecond}
	q := dnswire.NewQuery(9, dnswire.MustName("www.example.com"), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp, err := u.Exchange(ctx, transport.Addr(addr), q)
		cancel()
		if err == nil && resp.RCode == dnswire.RCodeNoError {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("dnscache at %s not ready after %s", addr, patience)
}
