package core

import (
	"context"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
)

func TestServeStaleAnswersAfterFailure(t *testing.T) {
	f := newFixture(t, Config{ServeStale: 7 * 24 * time.Hour})
	f.resolveA(t, "www.ucla.edu.") // warm
	// Everything goes dark: root, TLDs, and the leaf zone too.
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 24*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
		dnswire.MustName("ucla.edu."))})
	f.clock.Advance(2 * time.Hour) // the A record (300s) and ucla IRR (1h) expired

	res := f.resolveA(t, "www.ucla.edu.")
	if !res.FromCache || len(res.Answer) != 1 {
		t.Fatalf("stale answer = %+v", res)
	}
	if res.Answer[0].Data.String() != "10.9.9.9" {
		t.Errorf("stale data = %v", res.Answer[0].Data)
	}
	if res.Answer[0].TTL != 30 {
		t.Errorf("stale TTL = %d, want 30", res.Answer[0].TTL)
	}
	if st := f.cs.Stats(); st.StaleAnswers != 1 {
		t.Errorf("StaleAnswers = %d, want 1", st.StaleAnswers)
	}
}

func TestServeStaleUsesStaleIRRs(t *testing.T) {
	// Root+TLDs dark but the leaf zone alive: stale IRRs must route the
	// query to the living ucla servers and return FRESH data.
	f := newFixture(t, Config{ServeStale: 7 * 24 * time.Hour})
	f.resolveA(t, "www.ucla.edu.")
	f.net.SetAttack(attack.RootAndTLDs(f.clock.Now(), 24*time.Hour, []dnswire.Name{
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
	}))
	f.clock.Advance(2 * time.Hour) // ucla IRR (1h) expired

	res := f.resolveA(t, "www.ucla.edu.")
	if len(res.Answer) != 1 {
		t.Fatalf("answer = %+v", res)
	}
	// The answer came fresh from the ucla servers via stale IRRs, so the
	// TTL is the authoritative 300, not the stale-serve 30.
	if res.Answer[0].TTL != 300 {
		t.Errorf("TTL = %d, want 300 (fresh data via stale IRRs)", res.Answer[0].TTL)
	}
}

func TestServeStaleOffByDefault(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 24*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
		dnswire.MustName("ucla.edu."))})
	f.clock.Advance(2 * time.Hour)
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution succeeded without serve-stale while all servers are down")
	}
}

func TestServeStaleWindowExpires(t *testing.T) {
	f := newFixture(t, Config{ServeStale: time.Hour})
	f.resolveA(t, "www.ucla.edu.")
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 90*24*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
		dnswire.MustName("ucla.edu."))})
	// Far past the stale window (records expired > 1h ago).
	f.clock.Advance(6 * time.Hour)
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("stale record served beyond the KeepStale window")
	}
}

func TestPrefetchExtendsHotAnswer(t *testing.T) {
	f := newFixture(t, Config{Prefetch: true})
	f.resolveA(t, "www.ucla.edu.") // A record TTL 300s
	// Query again at 95% of the TTL: prefetch fires and restarts it.
	f.clock.Advance(290 * time.Second)
	before := f.cs.Stats().PrefetchQueries
	f.resolveA(t, "www.ucla.edu.")
	if got := f.cs.Stats().PrefetchQueries - before; got != 1 {
		t.Fatalf("PrefetchQueries delta = %d, want 1", got)
	}
	// Another 290s later the entry is still alive thanks to the prefetch.
	f.clock.Advance(290 * time.Second)
	res := f.resolveA(t, "www.ucla.edu.")
	if !res.FromCache {
		t.Error("record expired despite prefetch")
	}
}

func TestPrefetchQuietWhenFresh(t *testing.T) {
	f := newFixture(t, Config{Prefetch: true})
	f.resolveA(t, "www.ucla.edu.")
	f.clock.Advance(30 * time.Second) // only 10% of TTL elapsed
	f.resolveA(t, "www.ucla.edu.")
	if got := f.cs.Stats().PrefetchQueries; got != 0 {
		t.Errorf("PrefetchQueries = %d, want 0 for a fresh entry", got)
	}
}
