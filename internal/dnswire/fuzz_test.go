package dnswire

import (
	"bytes"
	"testing"
)

// FuzzUnpack exercises the wire decoder with arbitrary bytes: it must
// never panic, and any message it accepts must re-pack and re-parse to an
// equivalent wire form (decode/encode stability).
func FuzzUnpack(f *testing.F) {
	// Seeds: a real query, a real response, a truncated header, and junk.
	q := NewQuery(7, MustName("www.example.com."), TypeA)
	qw, _ := q.Pack()
	f.Add(qw)
	r := q.Reply()
	r.Answer = []RR{{Name: MustName("www.example.com."), Class: ClassIN, TTL: 300,
		Data: CNAME{Target: MustName("web.example.com.")}}}
	rw, _ := r.Pack()
	f.Add(rw)
	f.Add(rw[:8])
	f.Add([]byte{0xC0, 0x0C, 0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Some decoded messages cannot be re-encoded (e.g. a TXT
			// that decoded to zero strings); they must error, not panic.
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("re-unpack of repacked message failed: %v", err)
		}
		w2, err := m2.Pack()
		if err != nil {
			t.Fatalf("re-pack failed: %v", err)
		}
		if !bytes.Equal(wire, w2) {
			t.Fatalf("pack not stable:\n%x\n%x", wire, w2)
		}
	})
}

// FuzzCanonicalName checks that name canonicalisation never panics and
// that accepted names survive wire round trips.
func FuzzCanonicalName(f *testing.F) {
	for _, s := range []string{"", ".", "www.example.com", "a..b", "UPPER.Case.", "xn--bcher-kva.example"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := CanonicalName(s)
		if err != nil {
			return
		}
		wire, err := appendName(nil, n)
		if err != nil {
			t.Fatalf("accepted name %q does not encode: %v", n, err)
		}
		got, _, err := decodeName(wire, 0)
		if err != nil {
			t.Fatalf("accepted name %q does not decode: %v", n, err)
		}
		if got != n {
			t.Fatalf("name round trip: %q -> %q", n, got)
		}
	})
}
