// Command dnssim regenerates the paper's tables and figures from the
// trace-driven simulation. Run with -exp all (default) or a specific id
// such as -exp fig4.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resilientdns/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id(s), comma-separated, or 'all'")
	seed := flag.Int64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "use the small test scale instead of the full evaluation scale")
	verbose := flag.Bool("v", false, "print per-experiment timing")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnssim:", err)
		os.Exit(1)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.ExperimentIDs()
	}
	for _, id := range ids {
		t0 := time.Now()
		tbl, err := suite.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnssim:", err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", id, time.Since(t0))
		}
	}
}
