package resolve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/metrics"
	"resilientdns/internal/transport"
)

// UpstreamConfig tunes the upstream robustness layer shared by every
// fetch path: RTT-aware server selection, per-attempt timeouts derived
// from SRTT + 4·RTTVAR, failure quarantine with exponential backoff, and
// a bounded retry budget per resolution. The zero value enables the
// layer with the defaults below.
type UpstreamConfig struct {
	// Disable reverts to the pre-layer behaviour — blind round-robin
	// rotation with the transport's own flat timeout, no quarantine, no
	// budget. Kept as the A/B off-switch for measurements.
	Disable bool

	// MinTimeout / MaxTimeout clamp the per-attempt timeout derived from
	// a server's SRTT + 4·RTTVAR. Defaults: 200ms and 3s.
	MinTimeout time.Duration
	MaxTimeout time.Duration

	// Quarantine is the base sit-out after a failed exchange; it doubles
	// per consecutive failure to the same server up to MaxQuarantine
	// (exponential backoff), and one success clears it. Quarantined
	// servers are deprioritized, not excluded: they sort after every
	// healthy server and are still attempted when all healthier choices
	// fail, so a set whose every member is quarantined keeps being tried.
	// 0 means the default 5s; negative disables quarantine entirely.
	Quarantine time.Duration
	// MaxQuarantine caps the backoff (default 60s).
	MaxQuarantine time.Duration

	// RetryBudget bounds the total upstream attempts one resolution (or
	// one renewal refetch cycle) may spend across its whole referral
	// ladder, so a blacked-out hierarchy cannot make a single query burn
	// every failover path. 0 means unbounded — the library default, and
	// what the trace-driven simulator uses so attack-window query counts
	// stay comparable across schemes; cmd/dnscache sets a real bound.
	RetryBudget int
}

// Upstream-layer defaults.
const (
	defaultMinTimeout    = 200 * time.Millisecond
	defaultMaxTimeout    = 3 * time.Second
	defaultQuarantine    = 5 * time.Second
	defaultMaxQuarantine = time.Minute
	// maxBackoffShift caps the quarantine doubling exponent so the
	// shifted duration cannot overflow.
	maxBackoffShift = 10
)

// errBudgetExhausted reports that a resolution spent its whole upstream
// retry budget without completing.
var errBudgetExhausted = errors.New("resolve: upstream retry budget exhausted")

// ServerState is one authoritative server's exported selection state:
// the RFC 6298 RTT estimate, the consecutive-failure count, and the
// quarantine release time. The persistence subsystem checkpoints it so a
// restarted server resumes with the upstream knowledge it had.
type ServerState struct {
	Addr            transport.Addr
	SRTT            time.Duration
	RTTVar          time.Duration
	Samples         uint64
	Fails           int
	QuarantineUntil time.Time
}

// serverState is the per-server book-keeping behind selection: a smoothed
// RTT estimate, the consecutive-failure count, and the quarantine release
// time. Keyed by transport.Addr in upstream.servers.
type serverState struct {
	rtt             metrics.RTTEstimator
	fails           int
	quarantineUntil time.Time
}

// upstream is the shared selection state. All methods take time as an
// argument rather than reading a clock, so the trace-driven simulator
// drives it off the virtual clock and stays deterministic: ordering uses
// stable sorts keyed only on observed state and falls back to the input
// order on ties, never on map iteration order.
type upstream struct {
	cfg UpstreamConfig

	mu      sync.Mutex
	servers map[transport.Addr]*serverState

	// rotate round-robins the starting server when the layer is disabled
	// (the pre-layer behaviour, kept for A/B runs).
	rotate atomic.Uint64
}

// newUpstream applies defaults and builds the selection state.
func newUpstream(cfg UpstreamConfig) *upstream {
	if cfg.MinTimeout <= 0 {
		cfg.MinTimeout = defaultMinTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = defaultMaxTimeout
	}
	if cfg.MaxTimeout < cfg.MinTimeout {
		cfg.MaxTimeout = cfg.MinTimeout
	}
	switch {
	case cfg.Quarantine == 0:
		cfg.Quarantine = defaultQuarantine
	case cfg.Quarantine < 0:
		cfg.Quarantine = 0 // disabled
	}
	if cfg.MaxQuarantine <= 0 {
		cfg.MaxQuarantine = defaultMaxQuarantine
	}
	if cfg.MaxQuarantine < cfg.Quarantine {
		cfg.MaxQuarantine = cfg.Quarantine
	}
	return &upstream{cfg: cfg, servers: make(map[transport.Addr]*serverState)}
}

// order returns servers in the order they should be attempted at time
// now: healthy servers first, ascending by estimated RTT (servers with no
// history estimate at MaxTimeout, so proven-fast servers lead and unknown
// ones are probed only after them), then quarantined servers ascending by
// release time. skipped counts the quarantined servers that were
// deprioritized behind at least one healthy server — when every server is
// quarantined there is nothing healthier to prefer, so nothing counts as
// skipped and the set is simply tried in release order.
func (u *upstream) order(servers []transport.Addr, now time.Time) (ordered []transport.Addr, skipped int) {
	if u.cfg.Disable {
		out := make([]transport.Addr, len(servers))
		start := u.rotate.Add(1) - 1
		for i := range servers {
			out[i] = servers[(start+uint64(i))%uint64(len(servers))]
		}
		return out, 0
	}
	type candidate struct {
		addr  transport.Addr
		est   time.Duration
		quar  bool
		until time.Time
	}
	cands := make([]candidate, 0, len(servers))
	u.mu.Lock()
	for _, addr := range servers {
		c := candidate{addr: addr, est: u.cfg.MaxTimeout}
		if st := u.servers[addr]; st != nil {
			if st.rtt.Samples() > 0 {
				c.est = st.rtt.SRTT()
			}
			if st.quarantineUntil.After(now) {
				c.quar = true
				c.until = st.quarantineUntil
			}
		}
		cands = append(cands, c)
	}
	u.mu.Unlock()

	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.quar != b.quar {
			return !a.quar
		}
		if a.quar {
			return a.until.Before(b.until)
		}
		return a.est < b.est
	})
	ordered = make([]transport.Addr, len(cands))
	healthy := 0
	for i, c := range cands {
		ordered[i] = c.addr
		if !c.quar {
			healthy++
		}
	}
	if healthy > 0 {
		skipped = len(cands) - healthy
	}
	return ordered, skipped
}

// attemptTimeout returns the per-attempt timeout for addr: the server's
// SRTT + 4·RTTVAR clamped into [MinTimeout, MaxTimeout], or MaxTimeout
// when no RTT history exists (first contact keeps the transport's
// traditional patience; only proven-fast servers earn short deadlines).
// 0 means "no per-attempt deadline" (layer disabled).
func (u *upstream) attemptTimeout(addr transport.Addr) time.Duration {
	if u.cfg.Disable {
		return 0
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.servers[addr]
	if st == nil || st.rtt.Samples() == 0 {
		return u.cfg.MaxTimeout
	}
	t := st.rtt.RTO()
	if t < u.cfg.MinTimeout {
		t = u.cfg.MinTimeout
	}
	if t > u.cfg.MaxTimeout {
		t = u.cfg.MaxTimeout
	}
	return t
}

// observeSuccess folds a successful exchange's RTT into the server's
// estimate and clears its failure state.
func (u *upstream) observeSuccess(addr transport.Addr, rtt time.Duration) {
	if u.cfg.Disable {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.servers[addr]
	if st == nil {
		st = &serverState{}
		u.servers[addr] = st
	}
	st.rtt.Observe(rtt)
	st.fails = 0
	st.quarantineUntil = time.Time{}
}

// observeFailure records a failed exchange at time now: the consecutive
// failure count grows and, when quarantine is enabled, the server sits
// out for Quarantine·2^(fails−1) capped at MaxQuarantine. The failure
// also folds into the RTT estimate as a sample at the full MaxTimeout
// (the time the attempt burned), so selection keeps preferring servers
// that actually answer even after the quarantine window lapses.
func (u *upstream) observeFailure(addr transport.Addr, now time.Time) {
	if u.cfg.Disable {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.servers[addr]
	if st == nil {
		st = &serverState{}
		u.servers[addr] = st
	}
	st.rtt.Observe(u.cfg.MaxTimeout)
	st.fails++
	if u.cfg.Quarantine <= 0 {
		return
	}
	shift := st.fails - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	d := u.cfg.Quarantine << shift
	if d > u.cfg.MaxQuarantine {
		d = u.cfg.MaxQuarantine
	}
	st.quarantineUntil = now.Add(d)
}

// export returns a copy of every server's selection state, sorted by
// address so checkpoints are deterministic.
func (u *upstream) export() []ServerState {
	u.mu.Lock()
	out := make([]ServerState, 0, len(u.servers))
	for addr, st := range u.servers {
		out = append(out, ServerState{
			Addr:            addr,
			SRTT:            st.rtt.SRTT(),
			RTTVar:          st.rtt.RTTVar(),
			Samples:         st.rtt.Samples(),
			Fails:           st.fails,
			QuarantineUntil: st.quarantineUntil,
		})
	}
	u.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// restore rebuilds per-server state from a checkpoint, overwriting any
// state already accumulated for the same addresses.
func (u *upstream) restore(states []ServerState) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, s := range states {
		if s.Addr == "" {
			continue
		}
		fails := s.Fails
		if fails < 0 {
			fails = 0
		}
		u.servers[s.Addr] = &serverState{
			rtt:             metrics.RestoreRTTEstimator(s.SRTT, s.RTTVar, s.Samples),
			fails:           fails,
			quarantineUntil: s.QuarantineUntil,
		}
	}
}

// quarantined reports whether addr is sitting out at time now (tests and
// diagnostics).
func (u *upstream) quarantined(addr transport.Addr, now time.Time) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.servers[addr]
	return st != nil && st.quarantineUntil.After(now)
}

// retryBudget is the shared attempt counter one resolution carries
// through its context: every upstream attempt across the whole referral
// ladder (nested glue and DNSSEC fetches included) draws from the same
// pool.
type retryBudget struct {
	remaining atomic.Int64
}

type retryBudgetKey struct{}

// WithRetryBudget installs a fresh budget of n attempts into ctx; n <= 0
// leaves ctx unbounded. The owning server installs one budget per
// coalesced flight and one per renewal refetch cycle.
func WithRetryBudget(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	b := &retryBudget{}
	b.remaining.Store(int64(n))
	return context.WithValue(ctx, retryBudgetKey{}, b)
}

// takeAttempt consumes one attempt from the context's budget, reporting
// false when the budget is exhausted. Contexts without a budget always
// allow the attempt.
func takeAttempt(ctx context.Context) bool {
	b, ok := ctx.Value(retryBudgetKey{}).(*retryBudget)
	if !ok {
		return true
	}
	return b.remaining.Add(-1) >= 0
}

// glueBudget is the aggregate out-of-bailiwick glue-fetch counter one
// client query carries through its context. Unlike maxGlueDepth (which
// only bounds nesting), it bounds total fanout: every sibling NS name
// chased at every level draws from the same pool, which is what stops
// an NXNSAttack-style delegation from multiplying upstream traffic.
type glueBudget struct {
	remaining atomic.Int64
}

type glueBudgetKey struct{}

// withGlueBudget installs a fresh budget of n glue fetches into ctx;
// n < 0 leaves ctx unbounded.
func withGlueBudget(ctx context.Context, n int) context.Context {
	if n < 0 {
		return ctx
	}
	b := &glueBudget{}
	b.remaining.Store(int64(n))
	return context.WithValue(ctx, glueBudgetKey{}, b)
}

// takeGlueFetch consumes one glue resolution from the context's budget,
// reporting false when it is exhausted. Contexts without a budget
// always allow the fetch.
func takeGlueFetch(ctx context.Context) bool {
	b, ok := ctx.Value(glueBudgetKey{}).(*glueBudget)
	if !ok {
		return true
	}
	return b.remaining.Add(-1) >= 0
}
