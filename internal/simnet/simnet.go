// Package simnet provides a deterministic in-memory network for
// trace-driven simulation. It implements transport.Transport against
// in-process authoritative server handlers, charges virtual time for every
// exchange, drops packets probabilistically, and times out queries to
// servers whose zone is under attack.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// Host is one simulated authoritative server instance.
type Host struct {
	Addr transport.Addr
	// Zone is the apex of the zone this server is authoritative for; the
	// attack schedule targets zones, taking all their hosts down together.
	Zone    dnswire.Name
	Handler transport.Handler
}

// Stats counts network-level events.
type Stats struct {
	Exchanges   uint64
	Delivered   uint64
	TimedOut    uint64
	Unreachable uint64
}

// Network is a deterministic simulated network. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Network struct {
	// RTT is the virtual time charged for a successful exchange.
	RTT time.Duration
	// Timeout is the virtual time charged for a failed exchange.
	Timeout time.Duration
	// LossRate drops this fraction of queries at random (seeded).
	LossRate float64

	clock  *simclock.Virtual
	rng    *rand.Rand
	hosts  map[transport.Addr]*Host
	attack attack.Schedule
	stats  Stats
}

// New returns a network using the given virtual clock and RNG seed.
// Defaults: 40 ms RTT, 2 s timeout, no loss.
func New(clock *simclock.Virtual, seed int64) *Network {
	return &Network{
		RTT:     40 * time.Millisecond,
		Timeout: 2 * time.Second,
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		hosts:   make(map[transport.Addr]*Host),
	}
}

// Register adds a server host to the network.
func (n *Network) Register(h *Host) {
	n.hosts[h.Addr] = h
}

// SetAttack installs the attack schedule.
func (n *Network) SetAttack(s attack.Schedule) { n.attack = s }

// Attack returns the installed attack schedule.
func (n *Network) Attack() attack.Schedule { return n.attack }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Hosts returns the number of registered hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// Exchange implements transport.Transport. Time is charged on the virtual
// clock: RTT on success, Timeout on drop, blackout, or unknown server.
func (n *Network) Exchange(_ context.Context, server transport.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	n.stats.Exchanges++
	now := n.clock.Now()

	h, ok := n.hosts[server]
	if !ok {
		n.stats.Unreachable++
		n.clock.Advance(n.Timeout)
		return nil, fmt.Errorf("%w: no host at %s", transport.ErrServerUnreachable, server)
	}
	if n.attack.ZoneDown(h.Zone, now) {
		n.stats.TimedOut++
		n.clock.Advance(n.Timeout)
		return nil, fmt.Errorf("%w: %s (zone %s under attack)", transport.ErrTimeout, server, h.Zone)
	}
	if n.LossRate > 0 && n.rng.Float64() < n.LossRate {
		n.stats.TimedOut++
		n.clock.Advance(n.Timeout)
		return nil, fmt.Errorf("%w: %s (packet loss)", transport.ErrTimeout, server)
	}

	// Round-trip the message through the wire format so that simulation
	// exercises exactly the same encoding paths as the real transport.
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}
	decoded, err := dnswire.Unpack(wire)
	if err != nil {
		return nil, err
	}
	resp := h.Handler.HandleQuery(decoded)
	if resp == nil {
		n.stats.TimedOut++
		n.clock.Advance(n.Timeout)
		return nil, fmt.Errorf("%w: %s", transport.ErrTimeout, server)
	}
	respWire, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	out, err := dnswire.Unpack(respWire)
	if err != nil {
		return nil, err
	}
	n.stats.Delivered++
	n.clock.Advance(n.RTT)
	return out, nil
}

var _ transport.Transport = (*Network)(nil)
