// Package taintwire_stale exercises stale-suppression detection: the
// bypass was fixed but the directive outlived it.
package taintwire_stale

import (
	"context"

	"cache"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Prime was rewritten to use local bytes; the directive now suppresses
// nothing and must be deleted.
func Prime(ctx context.Context, tr Transport, c *cache.Cache) {
	c.Put([]byte{0x00, 0x01}, 2) //dnslint:ignore taintwire legacy suppression // want "stale"
}
