// Package wallclock_other is not in the analyzer's package list: the
// wall clock is allowed here (production server paths read real time).
package wallclock_other

import "time"

// Now is fine outside determinism-critical packages.
func Now() time.Time {
	return time.Now()
}
