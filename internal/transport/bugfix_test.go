package transport

// Regression tests for transport-layer bugs: context-blind TCP dialing,
// EDNS0 payload limits that only ever grew, TCP queries losing their
// source address, and one dropped query tearing down a whole connection.

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

// TestTCPExchangeCancelledContext: Exchange used net.Dial, which ignores
// the caller's context, so a cancelled context still waited out the full
// connect. With DialContext the dial must fail immediately.
func TestTCPExchangeCancelledContext(t *testing.T) {
	// A live listener that would accept: the dial can only fail because
	// the context says so.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &TCP{Timeout: time.Hour}
	q := dnswire.NewQuery(1, dnswire.MustName("x."), dnswire.TypeA)
	start := time.Now()
	_, err = c.Exchange(ctx, Addr(ln.Addr().String()), q)
	if err == nil {
		t.Fatal("Exchange succeeded with a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled dial took %v, want immediate return", elapsed)
	}
}

// TestUDPClampsToClientEDNS0Advertisement: writeResponse used to only
// raise the limit from the client's advertisement; RFC 6891 §6.2.5 says a
// response must never exceed it. A client advertising 1232 against a
// server willing to emit 4096 must get truncation at 1232.
func TestUDPClampsToClientEDNS0Advertisement(t *testing.T) {
	srv := &UDPServer{Handler: bigHandler(), MaxPayload: 4096}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(21, dnswire.MustName("big.example."), dnswire.TypeTXT)
	q.SetEDNS0(1232) // the ~3.8 KB reply exceeds this
	resp, err := u.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if !resp.Flags.Truncated {
		t.Fatal("response above the client's 1232-byte advertisement was not truncated")
	}
}

// TestUDPEDNS0AdvertisementStillRaisesAbove512: the clamp fix must not
// regress the raise direction — an EDNS0 client advertising 4096 still
// receives a large response in one datagram.
func TestUDPEDNS0AdvertisementStillRaisesAbove512(t *testing.T) {
	srv := &UDPServer{Handler: bigHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(22, dnswire.MustName("big.example."), dnswire.TypeTXT)
	q.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
	resp, err := u.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Flags.Truncated {
		t.Fatal("response within the client's 4096-byte advertisement was truncated")
	}
	if len(resp.Answer) != 60 {
		t.Errorf("got %d answers, want 60", len(resp.Answer))
	}
}

// TestUDPTinyEDNS0AdvertisementRaisedToClassicFloor: an advertisement
// below 512 is raised to the classic floor, never below it.
func TestUDPTinyEDNS0AdvertisementRaisedToClassicFloor(t *testing.T) {
	srv := &UDPServer{Handler: echoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(23, dnswire.MustName("www.example.com"), dnswire.TypeA)
	q.SetEDNS0(64) // absurdly small; the floor is 512
	resp, err := u.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Flags.Truncated {
		t.Fatal("small response truncated under a tiny EDNS0 advertisement; the 512 floor was not applied")
	}
}

// addrRecorder implements AddrHandler, remembering the source address of
// every query it answers.
type addrRecorder struct {
	inner Handler

	mu    sync.Mutex
	addrs []net.Addr
}

func (a *addrRecorder) HandleQuery(q *dnswire.Message) *dnswire.Message {
	return a.HandleQueryFrom(q, nil)
}

func (a *addrRecorder) HandleQueryFrom(q *dnswire.Message, from net.Addr) *dnswire.Message {
	a.mu.Lock()
	a.addrs = append(a.addrs, from)
	a.mu.Unlock()
	return a.inner.HandleQuery(q)
}

func (a *addrRecorder) recorded() []net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]net.Addr(nil), a.addrs...)
}

// TestTCPServerDispatchesAddrHandler: serveConn used to call HandleQuery
// unconditionally, so TCP queries reached per-client policy (the guard
// layer) with no source address while UDP queries carried one. Both paths
// must now report the client's address.
func TestTCPServerDispatchesAddrHandler(t *testing.T) {
	rec := &addrRecorder{inner: echoHandler()}

	udpSrv := &UDPServer{Handler: rec}
	udpAddr, err := udpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("udp Listen: %v", err)
	}
	defer udpSrv.Close()
	tcpSrv := &TCPServer{Handler: rec}
	tcpAddr, err := tcpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("tcp Listen: %v", err)
	}
	defer tcpSrv.Close()

	q := dnswire.NewQuery(31, dnswire.MustName("x.example."), dnswire.TypeA)
	u := &UDP{Timeout: 2 * time.Second}
	if _, err := u.Exchange(context.Background(), Addr(udpAddr), q); err != nil {
		t.Fatalf("udp Exchange: %v", err)
	}
	c := &TCP{Timeout: 2 * time.Second}
	if _, err := c.Exchange(context.Background(), Addr(tcpAddr), q); err != nil {
		t.Fatalf("tcp Exchange: %v", err)
	}

	addrs := rec.recorded()
	if len(addrs) != 2 {
		t.Fatalf("recorded %d addresses, want 2", len(addrs))
	}
	for i, a := range addrs {
		if a == nil {
			t.Fatalf("query %d dispatched without a source address", i)
		}
	}
	udpHost, _, err := net.SplitHostPort(addrs[0].String())
	if err != nil {
		t.Fatalf("udp client addr %q: %v", addrs[0], err)
	}
	tcpHost, _, err := net.SplitHostPort(addrs[1].String())
	if err != nil {
		t.Fatalf("tcp client addr %q: %v", addrs[1], err)
	}
	if udpHost != tcpHost {
		t.Errorf("UDP saw client %s but TCP saw %s; both paths must report the same client", udpHost, tcpHost)
	}
}

// TestTCPServerSurvivesDroppedQuery: a nil handler response used to close
// the whole connection, killing pipelined queries behind the dropped one.
// The connection must stay open and answer the next query.
func TestTCPServerSurvivesDroppedQuery(t *testing.T) {
	drop := dnswire.MustName("drop.example.")
	srv := &TCPServer{Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if q.Question[0].Name == drop {
			return nil
		}
		r := q.Reply()
		return r
	})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	conn, err := dialTCP(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Pipeline two queries: the first is dropped, the second answered.
	q1 := dnswire.NewQuery(41, drop, dnswire.TypeA)
	q2 := dnswire.NewQuery(42, dnswire.MustName("keep.example."), dnswire.TypeA)
	if err := WriteTCPMessage(conn, q1); err != nil {
		t.Fatalf("write q1: %v", err)
	}
	if err := WriteTCPMessage(conn, q2); err != nil {
		t.Fatalf("write q2: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatalf("read after dropped query: %v (connection closed?)", err)
	}
	if resp.ID != 42 {
		t.Errorf("resp.ID = %d, want 42 (the non-dropped query)", resp.ID)
	}
}

// TestUDPServerSharding: the -udp-readers path — N read loops on one
// socket — must answer every query exactly like a single reader.
func TestUDPServerSharding(t *testing.T) {
	srv := &UDPServer{Handler: echoHandler(), Readers: 4}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := &UDP{Timeout: 2 * time.Second}
			for i := 0; i < 25; i++ {
				q := dnswire.NewQuery(uint16(g*100+i), dnswire.MustName("www.example.com"), dnswire.TypeA)
				resp, err := u.Exchange(context.Background(), Addr(addr), q)
				if err != nil {
					errs <- err
					return
				}
				if resp.ID != q.ID || len(resp.Answer) != 1 {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("sharded exchange: %v", err)
	}
}
