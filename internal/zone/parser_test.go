package zone

import (
	"strings"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

const sampleZoneText = `
$ORIGIN example.com.
$TTL 3600
@	IN	SOA	ns1.example.com. admin.example.com. (
			2026070401 ; serial
			7200       ; refresh
			900        ; retry
			1209600    ; expire
			300 )      ; minimum
@	IN	NS	ns1
@	IN	NS	ns2.example.com.
ns1	86400	IN	A	192.0.2.1
ns2	86400	IN	A	192.0.2.2
www	300	IN	A	192.0.2.80
	IN	AAAA	2001:db8::80
mail	IN	MX	10 mx.example.com.
mx	IN	A	192.0.2.25
alias	IN	CNAME	www
txt	IN	TXT	"hello world" "second"
_sip._udp	IN	SRV	10 5 5060 sip.example.com.
sip	IN	A	192.0.2.99
sub	IN	NS	ns1.sub.example.com.
ns1.sub	IN	A	198.51.100.1
`

func parseSample(t *testing.T) *Zone {
	t.Helper()
	z, err := ParseString(sampleZoneText, dnswire.MustName("example.com."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return z
}

func TestParseBasics(t *testing.T) {
	z := parseSample(t)
	if _, ok := z.SOA(); !ok {
		t.Fatal("no SOA parsed")
	}
	if got := len(z.ApexNS()); got != 2 {
		t.Errorf("apex NS count = %d, want 2", got)
	}
}

func TestParseRelativeAndAbsoluteNames(t *testing.T) {
	z := parseSample(t)
	set := z.RRSet(dnswire.MustName("ns1.example.com."), dnswire.TypeA)
	if len(set) != 1 || set[0].TTL != 86400 {
		t.Errorf("ns1 A = %v", set)
	}
	// "@" expands to origin; "ns1" in NS RDATA expands relative to origin.
	ns := z.ApexNS()
	found := false
	for _, rr := range ns {
		if rr.Data.(dnswire.NS).Host == "ns1.example.com." {
			found = true
		}
	}
	if !found {
		t.Errorf("relative NS host not expanded: %v", ns)
	}
}

func TestParseBlankOwnerContinuation(t *testing.T) {
	z := parseSample(t)
	set := z.RRSet(dnswire.MustName("www.example.com."), dnswire.TypeAAAA)
	if len(set) != 1 {
		t.Fatalf("AAAA continuation line not attached to www: %v", set)
	}
}

func TestParseMultilineSOA(t *testing.T) {
	z := parseSample(t)
	soa, _ := z.SOA()
	data := soa.Data.(dnswire.SOA)
	if data.Serial != 2026070401 || data.Minimum != 300 {
		t.Errorf("SOA = %+v", data)
	}
}

func TestParseTXTQuotedStrings(t *testing.T) {
	z := parseSample(t)
	set := z.RRSet(dnswire.MustName("txt.example.com."), dnswire.TypeTXT)
	if len(set) != 1 {
		t.Fatalf("TXT = %v", set)
	}
	txt := set[0].Data.(dnswire.TXT)
	if len(txt.Strings) != 2 || txt.Strings[0] != "hello world" {
		t.Errorf("TXT strings = %q", txt.Strings)
	}
}

func TestParseSRVAndMX(t *testing.T) {
	z := parseSample(t)
	srv := z.RRSet(dnswire.MustName("_sip._udp.example.com."), dnswire.TypeSRV)
	if len(srv) != 1 {
		t.Fatalf("SRV = %v", srv)
	}
	if d := srv[0].Data.(dnswire.SRV); d.Port != 5060 || d.Target != "sip.example.com." {
		t.Errorf("SRV data = %+v", d)
	}
	mx := z.RRSet(dnswire.MustName("mail.example.com."), dnswire.TypeMX)
	if len(mx) != 1 || mx[0].Data.(dnswire.MX).Preference != 10 {
		t.Errorf("MX = %v", mx)
	}
}

func TestParseDelegationBecomesCut(t *testing.T) {
	z := parseSample(t)
	res := z.Lookup(dnswire.MustName("www.sub.example.com."), dnswire.TypeA)
	if res.Type != Referral {
		t.Fatalf("Lookup below sub = %v, want Referral", res.Type)
	}
	if len(res.Glue) != 1 {
		t.Errorf("glue = %v, want 1 record", res.Glue)
	}
}

func TestParseTTLUnits(t *testing.T) {
	tests := []struct {
		in   string
		want uint32
		err  bool
	}{
		{"300", 300, false},
		{"1h", 3600, false},
		{"2d", 172800, false},
		{"1w", 604800, false},
		{"1h30m", 5400, false},
		{"", 0, true},
		{"abc", 0, true},
		{"12x", 0, true},
		{"h", 0, true},
	}
	for _, tt := range tests {
		got, err := parseTTL(tt.in)
		if tt.err {
			if err == nil {
				t.Errorf("parseTTL(%q) = %d, want error", tt.in, got)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", tt.in, got, err, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"unbalanced paren", "@ IN SOA a. b. ( 1 2 3 4 5"},
		{"extra close paren", "@ IN A 1.2.3.4 )"},
		{"bad A address", "@ IN A not-an-ip"},
		{"A with v6", "@ IN A 2001:db8::1"},
		{"AAAA with v4", "@ IN AAAA 1.2.3.4"},
		{"unknown type", "@ IN BOGUS data"},
		{"missing rdata", "@ IN MX 10"},
		{"unsupported directive", "$INCLUDE other.zone"},
		{"unterminated quote", `txt IN TXT "oops`},
		{"owner only", "www"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.text, dnswire.MustName("example."))
			if err == nil {
				t.Errorf("Parse succeeded, want error")
			}
		})
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	text := "@ IN NS ns.example.\nns IN A 192.0.2.1\nbad IN A nope\n"
	_, err := ParseString(text, dnswire.MustName("example."))
	if err == nil {
		t.Fatal("Parse succeeded, want error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error %T is not *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseCommentsIgnored(t *testing.T) {
	text := `
; full line comment
@ IN NS ns.example. ; trailing comment
ns IN A 192.0.2.1
`
	z, err := ParseString(text, dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if z.RecordCount() != 2 {
		t.Errorf("RecordCount = %d, want 2", z.RecordCount())
	}
}

func TestParseOriginDirectiveSwitchesOrigin(t *testing.T) {
	text := strings.Join([]string{
		"@ IN NS ns.example.",
		"ns IN A 192.0.2.1",
		"$ORIGIN sub.example.",
		"host IN A 192.0.2.2",
	}, "\n")
	z, err := ParseString(text, dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if set := z.RRSet(dnswire.MustName("host.sub.example."), dnswire.TypeA); len(set) != 1 {
		t.Errorf("host.sub.example. not found after $ORIGIN switch")
	}
}

func TestParseDNSSECRecords(t *testing.T) {
	text := `
@	3600	IN	NS	ns.example.
ns	3600	IN	A	192.0.2.1
@	3600	IN	DNSKEY	257 3 15 7dDg5YMVJ7dNhnttJe7beCQieNLLj/TJyOwHIPgZlAk=
child	3600	IN	DS	12345 15 2 a1b2c3d4e5f60718293a4b5c6d7e8f901234567890abcdef1234567890abcdef
www	300	IN	A	192.0.2.80
www	300	IN	RRSIG	A 15 2 300 1893456000 1767225600 12345 example. dGVzdHNpZ25hdHVyZXRlc3RzaWduYXR1cmV0ZXN0c2lnbmF0dXJldGVzdHNpZ25hdHVyZXRlc3RzaWc=
`
	z, err := ParseString(text, dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	key := z.RRSet(dnswire.MustName("example."), dnswire.TypeDNSKEY)
	if len(key) != 1 {
		t.Fatalf("DNSKEY = %v", key)
	}
	if d := key[0].Data.(dnswire.DNSKEY); d.Flags != 257 || d.Algorithm != 15 || len(d.PublicKey) != 32 {
		t.Errorf("DNSKEY data = %+v", d)
	}
	ds := z.RRSet(dnswire.MustName("child.example."), dnswire.TypeDS)
	if len(ds) != 1 {
		t.Fatalf("DS = %v", ds)
	}
	if d := ds[0].Data.(dnswire.DS); d.KeyTag != 12345 || len(d.Digest) != 32 {
		t.Errorf("DS data = %+v", d)
	}
	sig := z.RRSet(dnswire.MustName("www.example."), dnswire.TypeRRSIG)
	if len(sig) != 1 {
		t.Fatalf("RRSIG = %v", sig)
	}
	if s := sig[0].Data.(dnswire.RRSIG); s.TypeCovered != dnswire.TypeA ||
		s.SignerName != "example." || s.Expiration != 1893456000 {
		t.Errorf("RRSIG data = %+v", s)
	}
}

func TestParseRRSIGTimestampFormats(t *testing.T) {
	// RFC 4034 YYYYMMDDHHmmSS timestamps are also accepted.
	text := `
@	3600	IN	NS	ns.example.
ns	3600	IN	A	192.0.2.1
www	300	IN	A	192.0.2.80
www	300	IN	RRSIG	A 15 2 300 20300101000000 20260101000000 12345 example. dGVzdA==
`
	z, err := ParseString(text, dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sig := z.RRSet(dnswire.MustName("www.example."), dnswire.TypeRRSIG)[0].Data.(dnswire.RRSIG)
	wantExp := uint32(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC).Unix())
	if sig.Expiration != wantExp {
		t.Errorf("Expiration = %d, want %d", sig.Expiration, wantExp)
	}
}
