package core

import (
	"context"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// frontendTimeout bounds one stub query's resolution when served over a
// real transport.
const frontendTimeout = 5 * time.Second

// HandleQuery implements transport.Handler, making the caching server
// directly servable over UDP to stub resolvers: the full CS role from the
// paper (Fig. 1), with recursion available.
func (cs *CachingServer) HandleQuery(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	resp.Flags.RecursionAvailable = true
	if len(q.Question) != 1 || q.Opcode != dnswire.OpcodeQuery {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if question.Class != dnswire.ClassIN {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	ctx, cancel := context.WithTimeout(context.Background(), frontendTimeout)
	defer cancel()
	res, err := cs.Resolve(ctx, question.Name, question.Type)
	if err != nil {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.RCode = res.RCode
	resp.Answer = append(resp.Answer, res.Answer...)
	return resp
}

var _ transport.Handler = (*CachingServer)(nil)
