// Package core implements the paper's resilient caching server: an
// iterative resolver with an RRset cache (package cache) extended with the
// three proposed mechanisms — TTL refresh, credit-based TTL renewal of
// infrastructure records, and a long-TTL clamp — plus the renewal
// scheduler and the per-query accounting the evaluation harness consumes.
package core

import (
	"fmt"
	"strings"
	"time"
)

// day is the normalisation constant of the adaptive policies (§4: "864_00
// is the equivalent of one day in seconds").
const day = 24 * time.Hour

// RenewalPolicy assigns per-zone renewal credit. Each time a zone's
// authoritative servers are queried during normal resolution, Update
// recomputes the zone's credit; every time the zone's cached IRRs are
// about to expire, one unit of credit buys one refetch-and-renew cycle.
type RenewalPolicy interface {
	// Name returns the policy's display name (e.g. "A-LFU(5)").
	Name() string
	// Update returns the zone's new credit after a query to the zone,
	// given its current credit and the zone's IRR TTL.
	Update(current float64, irrTTL time.Duration) float64
}

// creditPerTTL converts a credit multiplier into the adaptive policies'
// TTL-normalised credit: c·86400/TTL, so that the extra cache residency is
// roughly c days regardless of the zone's IRR TTL.
func creditPerTTL(c float64, irrTTL time.Duration) float64 {
	secs := irrTTL.Seconds()
	if secs <= 0 {
		return c
	}
	return c * day.Seconds() / secs
}

// LRU is the paper's LRU_c policy: each query to the zone resets its
// credit to C, so recently used zones survive C extra TTL periods.
type LRU struct {
	C float64
}

// Name implements RenewalPolicy.
func (p LRU) Name() string { return fmt.Sprintf("LRU(%g)", p.C) }

// Update implements RenewalPolicy.
func (p LRU) Update(_ float64, _ time.Duration) float64 { return p.C }

// LFU is the paper's LFU_c policy: each query adds C to the credit, capped
// at Max, so frequently used zones survive longest.
type LFU struct {
	C   float64
	Max float64
}

// Name implements RenewalPolicy.
func (p LFU) Name() string { return fmt.Sprintf("LFU(%g)", p.C) }

// Update implements RenewalPolicy.
func (p LFU) Update(current float64, _ time.Duration) float64 {
	v := current + p.C
	if p.Max > 0 && v > p.Max {
		v = p.Max
	}
	return v
}

// ALRU is the adaptive LRU policy: the credit is normalised by the zone's
// IRR TTL so every zone gets roughly C extra days of residency.
type ALRU struct {
	C float64
}

// Name implements RenewalPolicy.
func (p ALRU) Name() string { return fmt.Sprintf("A-LRU(%g)", p.C) }

// Update implements RenewalPolicy.
func (p ALRU) Update(_ float64, irrTTL time.Duration) float64 {
	return creditPerTTL(p.C, irrTTL)
}

// ALFU is the adaptive LFU policy: TTL-normalised credit accumulates per
// query. MaxDays caps the total extra residency the credit can buy, in
// days, so the cap is TTL-neutral like the credit itself.
type ALFU struct {
	C       float64
	MaxDays float64
}

// Name implements RenewalPolicy.
func (p ALFU) Name() string { return fmt.Sprintf("A-LFU(%g)", p.C) }

// Update implements RenewalPolicy.
func (p ALFU) Update(current float64, irrTTL time.Duration) float64 {
	v := current + creditPerTTL(p.C, irrTTL)
	if cap := creditPerTTL(p.MaxDays, irrTTL); p.MaxDays > 0 && v > cap {
		v = cap
	}
	return v
}

// DefaultLFUMax returns the credit cap the evaluation uses for LFU-style
// policies when none is specified: ten times the per-query credit, enough
// to favour hot zones without letting credit grow without bound (§4).
func DefaultLFUMax(c float64) float64 { return 10 * c }

// ParsePolicy builds a renewal policy from its configuration name ("lru",
// "lfu", "a-lru", "a-lfu", case-insensitive; empty disables renewal) and
// a credit value, applying the default caps for the LFU variants.
func ParsePolicy(name string, credit float64) (RenewalPolicy, error) {
	switch strings.ToLower(name) {
	case "":
		return nil, nil
	case "lru":
		return LRU{C: credit}, nil
	case "lfu":
		return LFU{C: credit, Max: DefaultLFUMax(credit)}, nil
	case "a-lru", "alru":
		return ALRU{C: credit}, nil
	case "a-lfu", "alfu":
		return ALFU{C: credit, MaxDays: DefaultLFUMax(credit)}, nil
	default:
		return nil, fmt.Errorf("core: unknown renewal policy %q (want lru, lfu, a-lru, a-lfu)", name)
	}
}
