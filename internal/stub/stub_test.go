package stub

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// fakeCS answers like a caching server for a fixed name set.
func fakeCS() transport.Handler {
	return transport.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Flags.RecursionAvailable = true
		name := q.Question[0].Name
		switch {
		case name == "www.example.com." && q.Question[0].Type == dnswire.TypeA:
			r.Answer = []dnswire.RR{{
				Name: name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")},
			}}
		case name == "www.example.com." && q.Question[0].Type == dnswire.TypeTXT:
			r.Answer = []dnswire.RR{{
				Name: name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.TXT{Strings: []string{"hello"}},
			}}
		case name == "example.com." && q.Question[0].Type == dnswire.TypeMX:
			r.Answer = []dnswire.RR{
				{Name: name, Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.MX{Preference: 20, Host: dnswire.MustName("mx2.example.com.")}},
				{Name: name, Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.MX{Preference: 10, Host: dnswire.MustName("mx1.example.com.")}},
			}
		case name == "broken.example.com.":
			r.RCode = dnswire.RCodeServFail
		default:
			r.RCode = dnswire.RCodeNXDomain
		}
		return r
	})
}

func newClient(t *testing.T) (*Client, func()) {
	t.Helper()
	srv := &transport.UDPServer{Handler: fakeCS()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	c := &Client{
		Servers: []transport.Addr{transport.Addr(addr)},
		Timeout: time.Second,
	}
	return c, func() { srv.Close() }
}

func TestLookupHost(t *testing.T) {
	c, done := newClient(t)
	defer done()
	addrs, err := c.LookupHost(context.Background(), "www.example.com")
	if err != nil {
		t.Fatalf("LookupHost: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.80") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestLookupTXT(t *testing.T) {
	c, done := newClient(t)
	defer done()
	strs, err := c.LookupTXT(context.Background(), "www.example.com")
	if err != nil {
		t.Fatalf("LookupTXT: %v", err)
	}
	if len(strs) != 1 || strs[0] != "hello" {
		t.Errorf("strs = %v", strs)
	}
}

func TestLookupMXSorted(t *testing.T) {
	c, done := newClient(t)
	defer done()
	mx, err := c.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if len(mx) != 2 || mx[0].Preference != 10 || mx[1].Preference != 20 {
		t.Errorf("mx = %v", mx)
	}
}

func TestNXDomain(t *testing.T) {
	c, done := newClient(t)
	defer done()
	_, err := c.Lookup(context.Background(), dnswire.MustName("missing.example.com."), dnswire.TypeA)
	var nx *NXDomainError
	if !errors.As(err, &nx) {
		t.Fatalf("err = %v, want NXDomainError", err)
	}
	if nx.Name != "missing.example.com." {
		t.Errorf("NXDomainError.Name = %s", nx.Name)
	}
}

func TestNoServers(t *testing.T) {
	c := &Client{}
	if _, err := c.Exchange(context.Background(), "x.", dnswire.TypeA); !errors.Is(err, ErrNoServers) {
		t.Errorf("err = %v, want ErrNoServers", err)
	}
}

func TestFailoverToSecondServer(t *testing.T) {
	// First server is a black hole (no response), second answers. §6:
	// configuring stub resolvers with many caching servers defends
	// against attacks on the caching servers themselves.
	dead := &transport.UDPServer{Handler: transport.HandlerFunc(
		func(*dnswire.Message) *dnswire.Message { return nil })}
	deadAddr, err := dead.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer dead.Close()
	live := &transport.UDPServer{Handler: fakeCS()}
	liveAddr, err := live.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer live.Close()

	c := &Client{
		Servers: []transport.Addr{transport.Addr(deadAddr), transport.Addr(liveAddr)},
		Timeout: 200 * time.Millisecond,
	}
	addrs, err := c.LookupHost(context.Background(), "www.example.com")
	if err != nil {
		t.Fatalf("LookupHost with failover: %v", err)
	}
	if len(addrs) != 1 {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestSkipsServFailServer(t *testing.T) {
	c, done := newClient(t)
	defer done()
	_, err := c.Lookup(context.Background(), dnswire.MustName("broken.example.com."), dnswire.TypeA)
	if err == nil || !errors.Is(err, ErrAllServersFailed) {
		t.Errorf("err = %v, want ErrAllServersFailed", err)
	}
}

func TestAllServersFailed(t *testing.T) {
	c := &Client{
		Servers: []transport.Addr{"127.0.0.1:1"},
		Timeout: 100 * time.Millisecond,
		Retries: 1,
	}
	_, err := c.Exchange(context.Background(), dnswire.MustName("x."), dnswire.TypeA)
	if !errors.Is(err, ErrAllServersFailed) {
		t.Errorf("err = %v, want ErrAllServersFailed", err)
	}
}
