package persist

import (
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// FuzzParseStore drives the whole on-disk decode path — header, frame
// stream, and every record payload decoder — with arbitrary bytes. The
// recovery contract is that corrupt input degrades (unusable header,
// dropped records, torn tail) and never panics: a damaged store must not
// be able to keep the server from starting.
func FuzzParseStore(f *testing.F) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// Seed with a well-formed snapshot and journal so mutation explores
	// near-valid inputs, plus their truncations (torn tails).
	entry, err := encodeEntry(&cache.Entry{
		Key: cache.Key{Name: dnswire.MustName("example."), Type: dnswire.TypeNS},
		RRs: []dnswire.RR{{
			Name:  dnswire.MustName("example."),
			Class: dnswire.ClassIN,
			TTL:   3600,
			Data:  dnswire.NS{Host: dnswire.MustName("ns1.example.")},
		}},
		Cred:     cache.CredAuthority,
		Infra:    true,
		OrigTTL:  time.Hour,
		Expires:  now.Add(time.Hour),
		StoredAt: now,
	})
	if err != nil {
		f.Fatal(err)
	}
	snap := appendHeader(nil, fileHeader{Kind: kindSnapshot, Generation: 3, CreatedAt: now})
	snap = appendFrame(snap, recEntry, entry)
	snap = appendFrame(snap, recCredit, encodeCredit(dnswire.MustName("example."), 2.5))
	snap = appendFrame(snap, recServer, encodeServer(serverRecord{
		Addr: "10.0.0.1:53", SRTT: 20 * time.Millisecond, RTTVar: 5 * time.Millisecond, Samples: 7,
	}))
	journal := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: 3, CreatedAt: now})
	journal = appendFrame(journal, recEntry, entry)
	journal = appendFrame(journal, recExtend, encodeExtend(cache.Key{Name: dnswire.MustName("example."), Type: dnswire.TypeNS}, now.Add(2*time.Hour)))
	journal = appendFrame(journal, recEvict, appendKey(nil, cache.Key{Name: dnswire.MustName("example."), Type: dnswire.TypeNS}))

	f.Add(snap)
	f.Add(journal)
	f.Add(snap[:len(snap)-3]) // torn tail
	f.Add(journal[:headerLen+1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		if d := parseSnapshotBytes(b); d == nil {
			t.Fatal("parseSnapshotBytes returned nil")
		}
		if d := parseJournalBytes(b); d == nil {
			t.Fatal("parseJournalBytes returned nil")
		}
	})
}

// TestFuzzSeedsRoundTrip pins the seed corpus semantics: the valid seeds
// must decode fully, and the torn variants must flag the tear.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	key := cache.Key{Name: dnswire.MustName("example."), Type: dnswire.TypeNS}
	entry, err := encodeEntry(&cache.Entry{
		Key: key,
		RRs: []dnswire.RR{{
			Name:  dnswire.MustName("example."),
			Class: dnswire.ClassIN,
			TTL:   3600,
			Data:  dnswire.NS{Host: dnswire.MustName("ns1.example.")},
		}},
		Cred:     cache.CredAuthority,
		Infra:    true,
		OrigTTL:  time.Hour,
		Expires:  now.Add(time.Hour),
		StoredAt: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := appendHeader(nil, fileHeader{Kind: kindSnapshot, Generation: 3, CreatedAt: now})
	snap = appendFrame(snap, recEntry, entry)
	snap = appendFrame(snap, recCredit, encodeCredit(dnswire.MustName("example."), 2.5))

	d := parseSnapshotBytes(snap)
	if d.unusable || d.torn || d.dropped != 0 || len(d.entries) != 1 || d.credits[dnswire.MustName("example.")] != 2.5 {
		t.Fatalf("valid snapshot decoded as %+v", d)
	}
	if d.gen != 3 {
		t.Errorf("generation = %d, want 3", d.gen)
	}
	got := d.entries[0]
	if got.OrigTTL != time.Hour || !got.Expires.Equal(now.Add(time.Hour)) || !got.Infra || got.Cred != cache.CredAuthority {
		t.Errorf("entry decoded as %+v", got)
	}

	torn := parseSnapshotBytes(snap[:len(snap)-3])
	if !torn.torn {
		t.Error("truncated snapshot not flagged torn")
	}
	if len(torn.entries) != 1 {
		t.Errorf("torn snapshot kept %d entries, want the 1 before the tear", len(torn.entries))
	}

	if !parseSnapshotBytes(nil).unusable {
		t.Error("empty input not flagged unusable")
	}
	if !parseJournalBytes(snap).unusable {
		t.Error("snapshot bytes accepted as a journal")
	}
}
