package core

import (
	"context"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

// frontendTimeout bounds one stub query's resolution when served over a
// real transport.
const frontendTimeout = 5 * time.Second

// HandleQuery implements transport.Handler, making the caching server
// directly servable over UDP to stub resolvers: the full CS role from the
// paper (Fig. 1), with recursion available. Queries with RD=0 are served
// from cached data only — a stub probing the cache must not trigger
// upstream fetches — and answered REFUSED when nothing cached applies.
func (cs *CachingServer) HandleQuery(q *dnswire.Message) *dnswire.Message {
	return cs.handle(q, false)
}

// HandleQueryCacheOnly answers q without any upstream work regardless of
// its RD flag: the guard layer's overload degraded mode, where the
// paper's cache and stale-serving machinery keeps answering while
// recursion capacity is saturated. A query nothing cached can answer
// gets SERVFAIL (transient — the client should retry), unlike an RD=0
// miss's REFUSED (deliberate policy).
func (cs *CachingServer) HandleQueryCacheOnly(q *dnswire.Message) *dnswire.Message {
	return cs.handle(q, true)
}

// handle is the shared frontend: protocol validation, the
// recursive/cache-only routing decision, and reply assembly.
func (cs *CachingServer) handle(q *dnswire.Message, overloadCacheOnly bool) *dnswire.Message {
	resp := q.Reply()
	resp.Flags.RecursionAvailable = true
	// RFC 6891: a response to a query carrying an OPT record must carry
	// one too, advertising our receive capability.
	if _, ok := q.EDNS0PayloadSize(); ok {
		resp.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
	}
	if len(q.Question) != 1 || q.Opcode != dnswire.OpcodeQuery {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if question.Class != dnswire.ClassIN {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	if overloadCacheOnly || !q.Flags.RecursionDesired {
		res, err := cs.ResolveCacheOnly(question.Name, question.Type)
		switch {
		case err != nil:
			resp.RCode = dnswire.RCodeServFail
		case res == nil && overloadCacheOnly:
			// Degraded mode and nothing cached: shed with SERVFAIL so
			// the client retries once capacity returns.
			resp.RCode = dnswire.RCodeServFail
		case res == nil:
			// RD=0 and nothing cached: we will not recurse on the
			// stub's behalf.
			resp.RCode = dnswire.RCodeRefused
		default:
			resp.RCode = res.RCode
			resp.Answer = append(resp.Answer, res.Answer...)
			resp.Authority = append(resp.Authority, res.Authority...)
		}
		return resp
	}

	ctx, cancel := context.WithTimeout(context.Background(), frontendTimeout)
	defer cancel()
	res, err := cs.Resolve(ctx, question.Name, question.Type)
	if err != nil {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.RCode = res.RCode
	resp.Answer = append(resp.Answer, res.Answer...)
	resp.Authority = append(resp.Authority, res.Authority...)
	return resp
}

var _ transport.Handler = (*CachingServer)(nil)
