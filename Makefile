GO ?= go

.PHONY: build vet test race check bench fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: the race detector gates every PR.
check: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x .

# fuzz is the CI smoke pass over the wire-format and persist-format parsers.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalName -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzParseStore -fuzztime=30s ./internal/persist
