package transport

// Micro-benchmarks for the socket hot paths: full loopback exchanges
// (client pack/write/read/unpack plus the server read loop and pooled
// response path) and the TCP framing helpers in isolation.

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

// BenchmarkUDPExchange measures one full query/response round trip over
// real loopback sockets — the end-to-end path dnsperf exercises.
func BenchmarkUDPExchange(b *testing.B) {
	srv := &UDPServer{Handler: echoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(1, dnswire.MustName("www.example.com"), dnswire.TypeA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Exchange(context.Background(), Addr(addr), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUDPExchangeParallel drives the server's sharded read loops
// from concurrent clients — the configuration `-udp-readers` targets.
func BenchmarkUDPExchangeParallel(b *testing.B) {
	srv := &UDPServer{Handler: echoHandler(), Readers: 4}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := &UDP{Timeout: 2 * time.Second}
		q := dnswire.NewQuery(1, dnswire.MustName("www.example.com"), dnswire.TypeA)
		for pb.Next() {
			if _, err := u.Exchange(context.Background(), Addr(addr), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWriteTCPMessage measures framed packing (single write, pooled
// scratch) with the socket cost excluded.
func BenchmarkWriteTCPMessage(b *testing.B) {
	q := dnswire.NewQuery(1, dnswire.MustName("www.example.com"), dnswire.TypeA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteTCPMessage(io.Discard, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadTCPMessage measures framed reading + unpack from a
// pre-framed in-memory stream.
func BenchmarkReadTCPMessage(b *testing.B) {
	var framed bytes.Buffer
	q := dnswire.NewQuery(1, dnswire.MustName("www.example.com"), dnswire.TypeA)
	if err := WriteTCPMessage(&framed, q); err != nil {
		b.Fatal(err)
	}
	wire := framed.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTCPMessage(bytes.NewReader(wire)); err != nil {
			b.Fatal(err)
		}
	}
}
