// Package wallclock_ignored exercises the //dnslint:ignore escape
// hatch: a justified directive suppresses, a bare one does not.
package wallclock_ignored

import "time"

// RealNow is the one legitimate wall-clock read, annotated.
func RealNow() time.Time {
	return time.Now() //dnslint:ignore wallclock this is the production Clock implementation
}

// AboveLine is suppressed by a directive on the preceding line.
func AboveLine() time.Time {
	//dnslint:ignore wallclock directive on the line above also counts
	return time.Now()
}

// BareDirective has no reason, so it does not suppress.
func BareDirective() time.Time {
	//dnslint:ignore wallclock
	return time.Now() // want "time.Now in determinism-critical package"
}

// WrongAnalyzer names a different analyzer, so it does not suppress.
func WrongAnalyzer() time.Time {
	return time.Now() //dnslint:ignore weakrand wrong analyzer name // want "time.Now in determinism-critical package"
}

// StaleDirective suppresses nothing: the forbidden call was removed but
// the directive stayed behind, so the directive itself is the finding.
func StaleDirective() time.Time {
	return time.Unix(0, 0) //dnslint:ignore wallclock fossil from a removed time.Now // want "stale"
}
