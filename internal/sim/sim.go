// Package sim is the trace-driven simulation driver: it wires a generated
// topology, a query trace, an attack schedule, and one configured caching
// server together over a virtual clock, replays the trace, and collects
// the measurements the paper reports — failed-query percentages at the
// stub-resolver and caching-server levels, message counts, IRR expiry
// gaps, and cache-occupancy series.
package sim

import (
	"context"
	"fmt"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/cache"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

// Scheme configures the caching-server behaviour under test.
type Scheme struct {
	// Name labels the scheme in experiment output.
	Name string
	// RefreshTTL enables the TTL-refresh mechanism.
	RefreshTTL bool
	// Renewal enables TTL renewal with the given policy (nil = off).
	Renewal core.RenewalPolicy
	// MaxTTL overrides the cache TTL clamp (0 = default 7 days).
	MaxTTL time.Duration
	// NegativeTTL enables negative caching (0 = off, as in the paper).
	NegativeTTL time.Duration
	// ValidateDNSSEC turns on chain validation; the scenario's tree must
	// be generated with topology.Params.Signed and provide TrustAnchors.
	ValidateDNSSEC bool
	// ServeStale enables the Ballani & Francis stale-record baseline with
	// the given retention window (0 = off).
	ServeStale time.Duration
	// Prefetch enables unbound-style early refresh of hot answers.
	Prefetch bool
}

// Vanilla is the current-DNS baseline scheme.
func Vanilla() Scheme { return Scheme{Name: "DNS"} }

// Refresh is the TTL-refresh-only scheme.
func Refresh() Scheme { return Scheme{Name: "Refresh", RefreshTTL: true} }

// RefreshRenew combines TTL refresh with a renewal policy, as the paper's
// figures 6-9 do.
func RefreshRenew(p core.RenewalPolicy) Scheme {
	return Scheme{Name: "Refresh+" + p.Name(), RefreshTTL: true, Renewal: p}
}

// Scenario is one simulation run.
type Scenario struct {
	Tree   *topology.Tree
	Trace  workload.Trace
	Attack attack.Schedule
	Scheme Scheme
	// SampleEvery samples cache occupancy at this virtual-time interval
	// (0 disables the series).
	SampleEvery time.Duration
	// Seed feeds the simulated network (loss decisions).
	Seed int64
	// NoChildIRRs disables the authoritative servers' attachment of their
	// own IRRs to answers — the ablation that shows TTL refresh only
	// works because child answers carry the IRRs.
	NoChildIRRs bool
}

// Results aggregates one run's measurements.
type Results struct {
	Scheme string
	Trace  string

	// SRQueriesAttack / SRFailedAttack count stub-resolver queries (and
	// failures) during attack windows — the paper's upper graphs.
	SRQueriesAttack uint64
	SRFailedAttack  uint64
	// CSQueriesAttack / CSFailedAttack count caching-server → authoritative
	// queries during attack windows — the paper's lower graphs.
	CSQueriesAttack uint64
	CSFailedAttack  uint64

	// Totals over the whole run.
	SRQueriesTotal uint64
	SRFailedTotal  uint64
	CSQueriesTotal uint64
	CSFailedTotal  uint64

	// GapAbs / GapFrac are the Fig. 3 CDFs: IRR expiry-to-next-query
	// gaps in absolute seconds and as a fraction of the IRR TTL.
	GapAbs  metrics.CDF
	GapFrac metrics.CDF

	// ZoneSeries / RecordSeries track cached zones and records over time
	// (Fig. 12).
	ZoneSeries   *metrics.Series
	RecordSeries *metrics.Series

	// FinalCache is the cache occupancy at the end of the run.
	FinalCache cache.Stats
	// ServerStats is the caching server's cumulative counters.
	ServerStats core.Stats
}

// SRFailRate returns the fraction of stub-resolver queries that failed
// during attack windows.
func (r *Results) SRFailRate() float64 {
	return metrics.Ratio(r.SRFailedAttack, r.SRQueriesAttack)
}

// CSFailRate returns the fraction of caching-server queries that failed
// during attack windows.
func (r *Results) CSFailRate() float64 {
	return metrics.Ratio(r.CSFailedAttack, r.CSQueriesAttack)
}

// MessagesOut returns the total queries the caching server sent, the
// Table 2 message-overhead metric.
func (r *Results) MessagesOut() uint64 { return r.CSQueriesTotal }

// Run replays the scenario through one caching server.
func Run(s Scenario) (*Results, error) {
	return RunPartitioned(s, 1)
}

// RunPartitioned replays the scenario with the client population split
// across `parts` independent caching servers (client i talks to server
// i mod parts). The paper observes that SR-level results depend on how
// many stub resolvers share one cache; this sweeps that factor.
func RunPartitioned(s Scenario, parts int) (*Results, error) {
	if s.Tree == nil {
		return nil, fmt.Errorf("sim: Scenario.Tree is required")
	}
	if parts < 1 {
		return nil, fmt.Errorf("sim: parts must be >= 1, got %d", parts)
	}
	clk := simclock.NewVirtual(s.Trace.Start)
	net := simnet.New(clk, s.Seed)
	// Virtual exchanges are free in time: the trace timestamps alone
	// drive the clock, exactly as in the paper's simulator. (Timeout
	// accounting is still exact: a blacked-out server yields an error.)
	net.RTT = 0
	net.Timeout = 0
	s.Tree.InstallOpt(net, !s.NoChildIRRs)
	net.SetAttack(s.Attack)

	res := &Results{Scheme: s.Scheme.Name, Trace: s.Trace.Label}
	if s.SampleEvery > 0 {
		res.ZoneSeries = metrics.NewSeries("zones", 4096)
		res.RecordSeries = metrics.NewSeries("records", 4096)
	}

	servers := make([]*core.CachingServer, parts)
	for i := range servers {
		cs, err := core.NewCachingServer(core.Config{
			Transport:      net,
			Clock:          clk,
			RootHints:      s.Tree.RootHints,
			RefreshTTL:     s.Scheme.RefreshTTL,
			Renewal:        s.Scheme.Renewal,
			MaxTTL:         s.Scheme.MaxTTL,
			NegativeTTL:    s.Scheme.NegativeTTL,
			ValidateDNSSEC: s.Scheme.ValidateDNSSEC,
			TrustAnchors:   s.Tree.TrustAnchors,
			ServeStale:     s.Scheme.ServeStale,
			OnGap: func(key cache.Key, gap, origTTL time.Duration) {
				if key.Type != dnswire.TypeNS {
					return
				}
				res.GapAbs.AddDuration(gap)
				if origTTL > 0 {
					res.GapFrac.Add(float64(gap) / float64(origTTL))
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		servers[i] = cs
	}

	ctx := context.Background()
	nextSample := s.Trace.Start
	for _, q := range s.Trace.Queries {
		// Renewals due before this query fire at their exact instants,
		// globally ordered across all caching servers.
		for {
			var next *core.CachingServer
			var nextDue time.Time
			for _, cs := range servers {
				if due, ok := cs.NextRenewalDue(); ok && !due.After(q.At) {
					if next == nil || due.Before(nextDue) {
						next, nextDue = cs, due
					}
				}
			}
			if next == nil {
				break
			}
			clk.AdvanceTo(nextDue)
			beforeStats := next.Stats()
			next.ProcessDueRenewals(ctx, clk.Now())
			res.accountCS(beforeStats, next.Stats(), s.Attack, clk.Now())
		}
		// Occupancy samples between events.
		if s.SampleEvery > 0 {
			for !nextSample.After(q.At) {
				clk.AdvanceTo(nextSample)
				res.sample(servers, nextSample)
				nextSample = nextSample.Add(s.SampleEvery)
			}
		}
		clk.AdvanceTo(q.At)

		cs := servers[q.Client%parts]
		underAttack := s.Attack.Active(q.At)
		before := cs.Stats()
		_, err := cs.Resolve(ctx, q.Name, q.Type)
		after := cs.Stats()

		res.SRQueriesTotal++
		if err != nil {
			res.SRFailedTotal++
		}
		if underAttack {
			res.SRQueriesAttack++
			if err != nil {
				res.SRFailedAttack++
			}
		}
		res.accountCS(before, after, s.Attack, q.At)
	}

	for _, cs := range servers {
		st := cs.CacheStats()
		res.FinalCache.Entries += st.Entries
		res.FinalCache.Records += st.Records
		res.FinalCache.Zones += st.Zones
		res.FinalCache.InfraEntries += st.InfraEntries
		res.ServerStats = addStats(res.ServerStats, cs.Stats())
	}
	return res, nil
}

// addStats sums two counter snapshots.
func addStats(a, b core.Stats) core.Stats {
	a.QueriesIn += b.QueriesIn
	a.Resolved += b.Resolved
	a.Failed += b.Failed
	a.CacheAnswered += b.CacheAnswered
	a.QueriesOut += b.QueriesOut
	a.QueriesOutFailed += b.QueriesOutFailed
	a.RenewalQueries += b.RenewalQueries
	a.RenewalFailed += b.RenewalFailed
	a.Renewals += b.Renewals
	a.Referrals += b.Referrals
	return a
}

// accountCS attributes outgoing-query deltas to totals and, when the
// attack is active at now, to the attack-window counters.
func (r *Results) accountCS(before, after core.Stats, sched attack.Schedule, now time.Time) {
	dq := after.QueriesOut - before.QueriesOut
	df := after.QueriesOutFailed - before.QueriesOutFailed
	r.CSQueriesTotal += dq
	r.CSFailedTotal += df
	if sched.Active(now) {
		r.CSQueriesAttack += dq
		r.CSFailedAttack += df
	}
}

// sample appends one cache-occupancy point, summed over all servers.
func (r *Results) sample(servers []*core.CachingServer, at time.Time) {
	zones, records := 0, 0
	for _, cs := range servers {
		st := cs.CacheStats()
		zones += st.Zones
		records += st.Records
	}
	r.ZoneSeries.Append(at, float64(zones))
	r.RecordSeries.Append(at, float64(records))
}
