// Package lockexchange enforces the PR 1 concurrency invariant: no
// mutex may be held across a call that can block on network I/O —
// above all Transport.Exchange, the upstream query path.
//
// The seed resolver held one global lock across upstream queries, so a
// single slow authoritative server serialized every client (the exact
// failure mode the paper's §4 attack model exploits). PR 1 decomposed
// the lock and established the rule by convention; this analyzer makes
// it mechanical.
//
// Detection is two-stage. First, every function declared in the package
// is classified "may block" if its body contains a known-blocking call:
// a method named Exchange taking a context.Context (the
// transport.Transport shape), net dial/listen/conn I/O, net/http
// round-trips, or time.Sleep. That property is propagated through
// same-package static calls to a fixed point. Second, each function
// body is scanned statement-by-statement tracking which mutexes are
// held (sync.Mutex/RWMutex Lock/RLock, released only by an inline
// Unlock — a deferred Unlock keeps the lock held to the end), and any
// may-block call made while a lock is held is flagged.
//
// The tracker is deliberately syntactic: branches are scanned with a
// copy of the held set, function literals start with no locks held, and
// `go` statements are skipped (the spawning goroutine does not block).
// Cross-package calls are only recognized when they match the
// known-blocking shapes above.
package lockexchange

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "lockexchange"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "flag mutexes held across Transport.Exchange or other blocking network I/O (the PR 1 invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

type checker struct {
	pass *analysis.Pass
	supp *lintutil.Suppressor
	// blocking marks package-level functions whose call tree reaches a
	// known-blocking call without leaving the package.
	blocking map[*types.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &checker{
		pass:     pass,
		supp:     lintutil.NewSuppressor(pass),
		blocking: make(map[*types.Func]bool),
	}

	// Stage 1: collect declared functions and propagate may-block.
	decls := make(map[*types.Func]*ast.FuncDecl)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			decls[fn] = decl
		}
	})
	for changed := true; changed; {
		changed = false
		for fn, decl := range decls {
			if c.blocking[fn] {
				continue
			}
			if c.bodyMayBlock(decl.Body) {
				c.blocking[fn] = true
				changed = true
			}
		}
	}

	// Stage 2: scan each body for blocking calls under a held lock.
	for _, decl := range decls {
		c.scanBlock(decl.Body.List, map[string]bool{})
	}
	c.supp.ReportStale(pass, name)
	return nil, nil
}

// bodyMayBlock reports whether the body contains a blocking call,
// directly or via an already-classified same-package function. Function
// literals are included: calling a function that launches blocking work
// inline still blocks.
func (c *checker) bodyMayBlock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false // spawned work does not block the caller
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c.blockingCall(call) != "" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// blockingCall returns a human-readable description of why the call may
// block, or "" if it is not known to.
func (c *checker) blockingCall(call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	if c.blocking[fn] {
		return fn.Name() + " (reaches blocking I/O)"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	// The transport.Transport shape: Exchange(ctx, ...) as a method.
	if fn.Name() == "Exchange" && sig.Recv() != nil && firstParamIsContext(sig) {
		return "Exchange (upstream query)"
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch pkg {
	case "net":
		if strings.HasPrefix(fn.Name(), "Dial") || strings.HasPrefix(fn.Name(), "Listen") {
			return "net." + fn.Name()
		}
		if sig.Recv() != nil {
			switch fn.Name() {
			case "Read", "Write", "ReadFrom", "WriteTo", "ReadFromUDP", "WriteToUDP", "ReadMsgUDP", "WriteMsgUDP", "Accept", "AcceptTCP":
				return "net connection " + fn.Name()
			}
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head", "Do", "RoundTrip":
			return "net/http " + fn.Name()
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}

func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// lockOp classifies a call as a mutex acquire or inline release and
// returns the lock's receiver expression as its tracking key.
func (c *checker) lockOp(call *ast.CallExpr) (key string, acquire, release bool) {
	fn, ok := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return "", false, false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		acquire = true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		release = true
	default:
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, release
}

// scanBlock walks a statement list in order, maintaining the set of
// held locks, flagging may-block calls made while any lock is held.
func (c *checker) scanBlock(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acquire, release := c.lockOp(call); acquire || release {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			c.scanExpr(s.X, held)
		case *ast.DeferStmt:
			// A deferred Unlock releases only at return: the lock stays
			// held for the remainder of the body. Deferred calls
			// themselves run after the function's own critical section.
			if _, _, release := c.lockOp(s.Call); !release {
				for _, arg := range s.Call.Args {
					c.scanExpr(arg, held)
				}
			}
		case *ast.GoStmt:
			// Argument expressions are evaluated now, in this goroutine.
			for _, arg := range s.Call.Args {
				c.scanExpr(arg, held)
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				c.scanExpr(e, held)
			}
		case *ast.DeclStmt:
			c.scanExpr(s, held)
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				c.scanExpr(e, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				c.scanBlock([]ast.Stmt{s.Init}, held)
			}
			c.scanExpr(s.Cond, held)
			c.scanBlock(s.Body.List, copyHeld(held))
			if s.Else != nil {
				c.scanBlock([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.BlockStmt:
			c.scanBlock(s.List, held)
		case *ast.ForStmt:
			if s.Init != nil {
				c.scanBlock([]ast.Stmt{s.Init}, held)
			}
			if s.Cond != nil {
				c.scanExpr(s.Cond, held)
			}
			c.scanBlock(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			c.scanExpr(s.X, held)
			c.scanBlock(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				c.scanExpr(s.Tag, held)
			}
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanBlock(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanBlock(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					c.scanBlock(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			c.scanBlock([]ast.Stmt{s.Stmt}, held)
		}
	}
}

// scanExpr flags may-block calls inside an expression (or DeclStmt)
// while locks are held. It does not descend into function literals: a
// closure defined under a lock does not run under it.
func (c *checker) scanExpr(n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := c.blockingCall(call); why != "" && !lintutil.InTestFile(c.pass, call.Pos()) {
			c.supp.Report(c.pass, name, call.Pos(),
				"call to %s while holding %s: no lock may be held across blocking I/O (PR 1 invariant)",
				why, heldNames(held))
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Deterministic diagnostic text regardless of map order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
