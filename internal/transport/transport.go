// Package transport abstracts how DNS messages travel between a resolver
// and authoritative servers. The same resolver code runs over the real
// network (UDP) in production and over an in-memory deterministic network
// (package simnet) in trace-driven simulation.
package transport

import (
	"context"
	"errors"
	"net"

	"resilientdns/internal/dnswire"
)

// Addr identifies a DNS server endpoint. Over UDP it is "host:port"; in
// the simulated network it is the server's synthetic IP address.
type Addr string

// ErrTimeout reports that a server did not answer within the deadline.
// Implementations wrap it so callers can match with errors.Is.
var ErrTimeout = errors.New("transport: query timed out")

// ErrServerUnreachable reports that the server could not be contacted at
// all (simulated blackout or connection refusal).
var ErrServerUnreachable = errors.New("transport: server unreachable")

// Transport sends one query to one server and returns its response.
//
// Implementations treat a context deadline as the per-attempt deadline:
// callers that maintain per-server RTT estimates (the upstream layer in
// internal/core) derive an attempt timeout and pass it down via
// context.WithTimeout, and the transport honours whichever of that
// deadline and its own default timeout comes first.
type Transport interface {
	Exchange(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error)
}

// Exchanger adapts a function to the Transport interface. It is the hook
// for wrapping a Transport with per-attempt policy — deadlines, response
// validation, fault injection in tests — without the underlying transport
// knowing:
//
//	inner := &transport.UDP{}
//	tr := transport.Exchanger(func(ctx context.Context, s transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
//		ctx, cancel := context.WithTimeout(ctx, perAttempt)
//		defer cancel()
//		return inner.Exchange(ctx, s, q)
//	})
type Exchanger func(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error)

// Exchange implements Transport.
func (f Exchanger) Exchange(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, server, query)
}

// Handler answers DNS queries; authoritative server engines implement it.
type Handler interface {
	HandleQuery(q *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q *dnswire.Message) *dnswire.Message

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(q *dnswire.Message) *dnswire.Message { return f(q) }

// AddrHandler is a Handler that also wants the client's source address —
// the hook for per-client policy such as the guard layer's rate limiter.
// Servers that know the source (UDP) prefer HandleQueryFrom when the
// handler implements it; a nil response means send nothing.
type AddrHandler interface {
	Handler
	HandleQueryFrom(q *dnswire.Message, from net.Addr) *dnswire.Message
}

// Pipe is a Transport that delivers queries directly to in-process
// handlers, with no latency or failures. It is intended for unit tests.
type Pipe struct {
	Handlers map[Addr]Handler
}

// Exchange implements Transport.
func (p *Pipe) Exchange(_ context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error) {
	h, ok := p.Handlers[server]
	if !ok {
		return nil, ErrServerUnreachable
	}
	resp := h.HandleQuery(query)
	if resp == nil {
		return nil, ErrTimeout
	}
	return resp, nil
}
