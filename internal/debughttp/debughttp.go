// Package debughttp serves the resolver's introspection endpoints over
// HTTP for operators and load tools (cmd/dnsperf -debug-url):
//
//	GET /debug/stats    server counters, cache occupancy, and per-stage /
//	                    per-kind latency summaries from finished traces
//	GET /debug/queries  the most recent trace summaries, newest first
//	                    (?n=K limits the count)
//	GET /debug/peers    the cooperative mesh's membership snapshot
//	                    (registered only when the mesh is enabled)
//
// Everything is read-only JSON assembled from snapshots; handlers never
// touch resolver locks beyond the snapshot calls themselves, so leaving
// the endpoint enabled costs a query nothing.
package debughttp

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"resilientdns/internal/metrics"
	"resilientdns/internal/resolve"
)

// Options wires the endpoint to a running server. Any field may be nil;
// the corresponding section is simply omitted.
type Options struct {
	// Stats returns the server's counter snapshot (core.Stats).
	Stats func() any
	// CacheStats returns the cache occupancy snapshot.
	CacheStats func() any
	// Latency returns the per-stage / per-kind histograms
	// (Resolver.LatencySnapshots).
	Latency func() map[string]metrics.HistogramSnapshot
	// Guard returns the client-facing guard layer's decision counters
	// (metrics.GuardStats).
	Guard func() any
	// Mesh returns the cooperative-mesh counters (metrics.MeshStats);
	// also enables the /debug/peers route when Peers is set.
	Mesh func() any
	// Peers returns the mesh membership snapshot (mesh.Snapshot) served
	// at /debug/peers. Nil leaves the route unregistered (404).
	Peers func() any
	// Build returns the process build/uptime section (version, VCS
	// revision, uptime) shown under "build" in /debug/stats.
	Build func() any
	// Ring retains recent trace summaries for /debug/queries.
	Ring *resolve.Ring
}

// LatencySummary is one histogram reduced to the numbers an operator
// reads first.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS int64   `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	SumMS  float64 `json:"sum_ms"`
}

// statsPayload is the /debug/stats response shape.
type statsPayload struct {
	Build   any                       `json:"build,omitempty"`
	Server  any                       `json:"server,omitempty"`
	Cache   any                       `json:"cache,omitempty"`
	Guard   any                       `json:"guard,omitempty"`
	Mesh    any                       `json:"mesh,omitempty"`
	Latency map[string]LatencySummary `json:"latency,omitempty"`
}

// New returns the debug mux.
func New(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, req *http.Request) {
		p := statsPayload{}
		if o.Stats != nil {
			p.Server = o.Stats()
		}
		if o.CacheStats != nil {
			p.Cache = o.CacheStats()
		}
		if o.Guard != nil {
			p.Guard = o.Guard()
		}
		if o.Mesh != nil {
			p.Mesh = o.Mesh()
		}
		if o.Build != nil {
			p.Build = o.Build()
		}
		if o.Latency != nil {
			p.Latency = make(map[string]LatencySummary)
			for key, s := range o.Latency() {
				if s.Count == 0 {
					continue // never-exercised stages just add noise
				}
				p.Latency[key] = LatencySummary{
					Count:  s.Count,
					MeanUS: s.Mean().Microseconds(),
					P50US:  s.Quantile(0.50).Microseconds(),
					P95US:  s.Quantile(0.95).Microseconds(),
					P99US:  s.Quantile(0.99).Microseconds(),
					SumMS:  float64(s.Sum.Microseconds()) / 1e3,
				}
			}
		}
		writeJSON(w, p)
	})
	if o.Peers != nil {
		mux.HandleFunc("/debug/peers", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, o.Peers())
		})
	}
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, req *http.Request) {
		n := 0 // 0 = everything retained
		if v := req.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		var recent []resolve.TraceSummary
		if o.Ring != nil {
			recent = o.Ring.Recent(n)
		}
		if recent == nil {
			recent = []resolve.TraceSummary{}
		}
		writeJSON(w, recent)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A write error here means the client hung up; nothing to do.
	_ = enc.Encode(v)
}

// SortedLatencyKeys returns the latency map's keys in display order:
// stages first (pipeline order is alphabetically scrambled, but stable
// sorting beats arbitrary map order), then kinds.
func SortedLatencyKeys(m map[string]LatencySummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
