package core

import (
	"context"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
)

func TestFrontendAnswersStubQuery(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true})
	q := dnswire.NewQuery(77, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	resp := f.cs.HandleQuery(q)
	if resp.ID != 77 || !resp.Flags.Response {
		t.Fatalf("resp header = %+v", resp)
	}
	if !resp.Flags.RecursionAvailable {
		t.Error("RA not set")
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	if resp.Answer[0].Data.String() != "10.9.9.9" {
		t.Errorf("answer = %v", resp.Answer)
	}
}

func TestFrontendNXDomain(t *testing.T) {
	f := newFixture(t, Config{})
	q := dnswire.NewQuery(1, dnswire.MustName("missing.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	resp := f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.RCode)
	}
}

// TestFrontendNegativeAnswerCarriesSOA asserts the RFC 2308 contract: an
// NXDOMAIN reply carries the zone SOA in its authority section — live
// from the authoritative response, and again from the negative cache with
// the TTL clamped to the cached outcome's remaining lifetime.
func TestFrontendNegativeAnswerCarriesSOA(t *testing.T) {
	f := newFixture(t, Config{NegativeTTL: time.Minute})
	q := dnswire.NewQuery(1, dnswire.MustName("missing.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true

	soaOf := func(resp *dnswire.Message) dnswire.RR {
		t.Helper()
		if resp.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("rcode = %v, want NXDOMAIN", resp.RCode)
		}
		if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
			t.Fatalf("authority = %v, want one SOA", resp.Authority)
		}
		return resp.Authority[0]
	}

	// Live negative answer: the fixture zone's SOA has TTL 3600 and
	// Minimum 60; RFC 2308 clamps to min(TTL, Minimum) = 60, and our own
	// NegativeTTL (60s) does not clamp further.
	rr := soaOf(f.cs.HandleQuery(q))
	if rr.Name != dnswire.MustName("ucla.edu.") || rr.TTL != 60 {
		t.Errorf("live SOA = %s TTL %d, want ucla.edu. TTL 60", rr.Name, rr.TTL)
	}

	// Served from the negative cache 45s later: the SOA TTL must have
	// decayed to the outcome's remaining 15s lifetime.
	f.clock.Advance(45 * time.Second)
	sent := f.cs.Stats().QueriesOut
	rr = soaOf(f.cs.HandleQuery(q))
	if f.cs.Stats().QueriesOut != sent {
		t.Error("negative-cache hit went upstream")
	}
	if rr.TTL != 15 {
		t.Errorf("cached SOA TTL = %d, want 15 (60s cache - 45s elapsed)", rr.TTL)
	}
}

func TestFrontendServFailWhenUnresolvable(t *testing.T) {
	f := newFixture(t, Config{})
	// Root and TLDs down, cold cache: resolution fails → SERVFAIL.
	f.net.SetAttack(attack.RootAndTLDs(epoch, 6*time.Hour, []dnswire.Name{
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
	}))
	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	resp := f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.RCode)
	}
}

func TestFrontendRejectsBadQueries(t *testing.T) {
	f := newFixture(t, Config{})
	resp := f.cs.HandleQuery(&dnswire.Message{ID: 5})
	if resp.RCode != dnswire.RCodeFormErr {
		t.Errorf("no-question rcode = %v, want FORMERR", resp.RCode)
	}
	q := dnswire.NewQuery(6, dnswire.MustName("a.edu."), dnswire.TypeA)
	q.Question[0].Class = dnswire.ClassCH
	resp = f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("CH-class rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestFrontendDecrementsTTLOnCachedAnswers(t *testing.T) {
	f := newFixture(t, Config{})
	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	f.cs.HandleQuery(q)
	f.clock.Advance(100 * time.Second)
	resp := f.cs.HandleQuery(q)
	if len(resp.Answer) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	if got := resp.Answer[0].TTL; got != 200 {
		t.Errorf("cached answer TTL = %d, want 200 (300s original - 100s elapsed)", got)
	}
}

// TestFrontendHonorsRDFlag covers the RD=0 contract: a stub probing the
// cache is served cached data — live, negative, or stale — but never
// triggers an upstream fetch, and a miss is REFUSED.
func TestFrontendHonorsRDFlag(t *testing.T) {
	t.Run("miss", func(t *testing.T) {
		f := newFixture(t, Config{})
		q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
		resp := f.cs.HandleQuery(q) // RD=0, cold cache
		if resp.RCode != dnswire.RCodeRefused {
			t.Errorf("rcode = %v, want REFUSED", resp.RCode)
		}
		if out := f.cs.Stats().QueriesOut; out != 0 {
			t.Errorf("RD=0 miss sent %d upstream queries, want 0", out)
		}
	})

	t.Run("hit", func(t *testing.T) {
		f := newFixture(t, Config{})
		f.resolveA(t, "www.ucla.edu.") // prime the cache
		out := f.cs.Stats().QueriesOut
		q := dnswire.NewQuery(2, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
		resp := f.cs.HandleQuery(q)
		if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
			t.Fatalf("resp = %v, want cached answer", resp)
		}
		if resp.Answer[0].Data.String() != "10.9.9.9" {
			t.Errorf("answer = %v", resp.Answer)
		}
		if got := f.cs.Stats().QueriesOut; got != out {
			t.Errorf("RD=0 hit sent %d upstream queries", got-out)
		}
	})

	t.Run("stale", func(t *testing.T) {
		f := newFixture(t, Config{ServeStale: 24 * time.Hour})
		f.resolveA(t, "www.ucla.edu.")
		f.clock.Advance(10 * time.Minute) // past the 300s record TTL
		out := f.cs.Stats().QueriesOut
		q := dnswire.NewQuery(3, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
		resp := f.cs.HandleQuery(q)
		if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
			t.Fatalf("resp = %v, want stale answer", resp)
		}
		if got := resp.Answer[0].TTL; got != 30 {
			t.Errorf("stale TTL = %d, want 30 (StaleServeTTL)", got)
		}
		if got := f.cs.Stats().QueriesOut; got != out {
			t.Errorf("RD=0 stale hit sent %d upstream queries", got-out)
		}
	})
}

// TestFrontendEchoesEDNS0 asserts the RFC 6891 contract: a response to a
// query carrying an OPT record carries one back advertising our payload
// size, and a response to a plain query does not grow one.
func TestFrontendEchoesEDNS0(t *testing.T) {
	f := newFixture(t, Config{})
	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	q.SetEDNS0(1232)
	resp := f.cs.HandleQuery(q)
	size, ok := resp.EDNS0PayloadSize()
	if !ok {
		t.Fatal("response to an EDNS0 query carries no OPT")
	}
	if size != dnswire.DefaultEDNS0PayloadSize {
		t.Errorf("advertised payload = %d, want %d", size, dnswire.DefaultEDNS0PayloadSize)
	}

	plain := dnswire.NewQuery(2, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	plain.Flags.RecursionDesired = true
	if _, ok := f.cs.HandleQuery(plain).EDNS0PayloadSize(); ok {
		t.Error("response to a non-EDNS0 query grew an OPT")
	}
}

// TestFrontendEDNS0OverUDP drives the EDNS0 echo through a real UDP
// socket: the OPT record must survive the wire round-trip in both
// directions, not just the in-process message exchange.
func TestFrontendEDNS0OverUDP(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")

	srv := &transport.UDPServer{Handler: f.cs}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &transport.UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(9, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	q.SetEDNS0(1232)
	resp, err := u.Exchange(context.Background(), transport.Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("answer = %v, want the cached A record", resp.Answer)
	}
	size, ok := resp.EDNS0PayloadSize()
	if !ok {
		t.Fatal("OPT did not survive the UDP round-trip")
	}
	if size != dnswire.DefaultEDNS0PayloadSize {
		t.Errorf("advertised payload = %d, want %d", size, dnswire.DefaultEDNS0PayloadSize)
	}

	plain := dnswire.NewQuery(10, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	plain.Flags.RecursionDesired = true
	resp, err = u.Exchange(context.Background(), transport.Addr(addr), plain)
	if err != nil {
		t.Fatalf("Exchange(plain): %v", err)
	}
	if _, ok := resp.EDNS0PayloadSize(); ok {
		t.Error("response to a non-EDNS0 query grew an OPT over UDP")
	}
}

// TestFrontendCacheOnlyMode covers the guard's degraded mode: RD=1
// queries are still answered from cache, and a miss sheds with SERVFAIL
// instead of recursing.
func TestFrontendCacheOnlyMode(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	out := f.cs.Stats().QueriesOut

	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	resp := f.cs.HandleQueryCacheOnly(q)
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Fatalf("resp = %v, want cached answer", resp)
	}

	miss := dnswire.NewQuery(2, dnswire.MustName("www.com."), dnswire.TypeA)
	miss.Flags.RecursionDesired = true
	resp = f.cs.HandleQueryCacheOnly(miss)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("miss rcode = %v, want SERVFAIL", resp.RCode)
	}
	if got := f.cs.Stats().QueriesOut; got != out {
		t.Errorf("cache-only mode sent %d upstream queries", got-out)
	}
}
