// Package cache implements the resolver-side RRset cache that is the heart
// of the paper's contribution. Beyond vanilla TTL-based expiry it supports:
//
//   - credibility ranking (RFC 2181): data learned from a child zone's own
//     answers replaces glue learned from parent referrals;
//   - TTL refresh: resetting a cached infrastructure RRset's TTL whenever a
//     fresh copy arrives from the zone's own authoritative servers;
//   - a maximum-TTL clamp (7 days, §6 "Deployment Issues");
//   - expiry tombstones used to measure the paper's Fig. 3 time gap
//     between an IRR's expiry and the next query needing it;
//   - occupancy accounting (cached zones and records, Fig. 12 and Table 2).
//
// The cache is safe for concurrent use: entries are spread over a fixed
// number of shards by key hash, each guarded by its own RWMutex, so
// concurrent resolutions only contend when they touch the same shard.
// Entries are immutable once published — every update (TTL refresh,
// Extend, stale tombstoning) replaces the stored *Entry with a fresh copy
// — so callers may keep returned pointers without further locking.
//
// TTL renewal policies (LRU/LFU and their adaptive variants) are layered
// on top by package core, which owns the renewal scheduler. Crash-safe
// persistence is layered on by package persist, through the Config.OnChange
// mutation hook and the Range/Restore export–import pair.
package cache

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// Credibility ranks how trustworthy a cached RRset is, following the
// RFC 2181 §5.4.1 ranking (higher replaces lower).
type Credibility int

// Credibility levels, lowest first.
const (
	// CredReferral: NS/glue from a parent zone's referral.
	CredReferral Credibility = 1
	// CredAuthority: records from the authority/additional sections of an
	// authoritative answer (the child zone's own copy of its IRRs).
	CredAuthority Credibility = 2
	// CredAnswer: records from the answer section of an authoritative answer.
	CredAnswer Credibility = 3
)

// Key identifies a cached RRset.
type Key struct {
	Name dnswire.Name
	Type dnswire.Type
}

// Entry is one cached RRset. Entries are immutable after publication;
// updates replace the stored entry with a copy.
type Entry struct {
	Key  Key
	RRs  []dnswire.RR
	Cred Credibility
	// staleTombstoned marks that the expiry gap for this entry was
	// already observed, so repeated stale accesses do not re-record it.
	staleTombstoned bool
	// Infra marks infrastructure RRsets: a zone's NS set and the address
	// records of its name servers. Only these are eligible for the
	// paper's refresh and renewal treatment.
	Infra bool
	// Origin records where the set was learned from: an authoritative
	// upstream response, or a fleet peer's gossip/fetch. Peer-learned
	// entries persist and restore with the tag so a restarted node
	// still knows which records it never confirmed upstream itself.
	Origin Origin
	// OrigTTL is the (possibly clamped) TTL the set arrived with.
	OrigTTL time.Duration
	// Expires is when the entry leaves the cache.
	Expires time.Time
	// StoredAt is when the entry was first inserted or last replaced.
	StoredAt time.Time
}

// Origin labels where a cache entry's data was learned from.
type Origin uint8

const (
	// OriginUpstream is the default: data from an authoritative server,
	// validated by the fetch engine.
	OriginUpstream Origin = iota
	// OriginPeer marks data ingested from a cooperating mesh peer
	// (IRR gossip or a peer-fetch answer).
	OriginPeer
)

// GapFunc observes a tombstone hit: a lookup for key arrived gap after the
// previous entry (with the given original TTL) expired. Used for Fig. 3.
// It may be invoked concurrently from different shards (never twice for
// the same tombstone) and runs with a shard lock held, so it must not call
// back into the cache.
type GapFunc func(key Key, gap time.Duration, origTTL time.Duration)

// ChangeOp labels a cache mutation observed through Config.OnChange.
type ChangeOp uint8

// Change operations, in the order the persistence journal replays them.
const (
	// ChangePut: a new or replacing entry was installed.
	ChangePut ChangeOp = iota + 1
	// ChangeExtend: an existing entry's expiry was reset (TTL refresh or
	// renewal Extend); the data is unchanged.
	ChangeExtend
	// ChangeEvict: an entry was removed explicitly (Evict) or by capacity
	// pressure. Lazy TTL expiry is NOT reported: it is derivable from the
	// entry's own Expires, so replaying a journal re-drops expired entries
	// without needing expiry records.
	ChangeEvict
)

// ChangeFunc observes committed cache mutations; the persistence journal
// hangs off this hook. e is the post-mutation entry (nil for ChangeEvict).
// Like GapFunc it runs with a shard lock held and may be invoked
// concurrently from different shards, so it must be fast and must not call
// back into the cache.
type ChangeFunc func(op ChangeOp, key Key, e *Entry)

// Config parameterises a Cache.
type Config struct {
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// MaxTTL clamps all TTLs; caching servers do not accept arbitrarily
	// large TTL values (§6). Defaults to 7 days. Negative disables.
	MaxTTL time.Duration
	// RefreshInfraTTL enables the paper's TTL-refresh scheme: an arriving
	// copy of a cached infrastructure RRset resets its TTL even when the
	// credibility is not higher.
	RefreshInfraTTL bool
	// OnGap, when set, observes expiry-to-next-use gaps.
	OnGap GapFunc
	// OnChange, when set, observes committed mutations (Put/Extend/Evict)
	// for persistence journaling. Restore does not fire it: recovered
	// entries are already covered by the snapshot being replayed.
	OnChange ChangeFunc
	// MaxEntries bounds the number of live RRset entries (0 = unbounded).
	// When full, the soonest-to-expire non-infrastructure entries are
	// evicted first; infrastructure records — the paper's prized asset —
	// go last.
	MaxEntries int
	// KeepStale retains expired entries for this long so they can be
	// served as a last resort when authoritative servers are unreachable
	// — the Ballani & Francis HotNets'06 scheme the paper's related work
	// (§7) compares against, and the ancestor of RFC 8767 serve-stale.
	// Zero disables stale retention.
	KeepStale time.Duration
}

// DefaultMaxTTL is the clamp applied when Config.MaxTTL is zero.
const DefaultMaxTTL = 7 * 24 * time.Hour

// shardCount is the number of independently locked cache shards. 64 keeps
// per-shard contention negligible at any plausible core count while the
// fixed array stays small; it must be a power of two so the shard index is
// a mask of the key hash.
const shardCount = 64

// Stats describes cache occupancy at a point in time.
type Stats struct {
	// Entries is the number of live RRset entries.
	Entries int
	// Records is the number of live resource records.
	Records int
	// Zones is the number of zones whose NS RRset is cached — the
	// paper's "number of cached zones".
	Zones int
	// InfraEntries is the number of live infrastructure RRset entries.
	InfraEntries int
	// StaleEntries counts retained expired entries (KeepStale only).
	StaleEntries int
	// ApproxBytes estimates the wire-format size of the cached data,
	// grounding the paper's "tens of MBytes" memory claim (§5.2.2).
	ApproxBytes int
}

// Cache is an RRset cache, safe for concurrent use (see the package
// comment for the sharding scheme).
type Cache struct {
	cfg    Config
	shards [shardCount]shard
	// capMu serialises global capacity enforcement across shards.
	capMu sync.Mutex
	// hits/misses count Get outcomes for reporting.
	hits, misses atomic.Uint64
	// staleHits counts stale entries served after expiry.
	staleHits atomic.Uint64
	// evictions counts capacity-pressure removals.
	evictions atomic.Uint64
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu      sync.RWMutex
	entries map[Key]*Entry
	// tombstones remember when an expired entry died, to measure gaps.
	tombstones map[Key]tombstone
}

type tombstone struct {
	expiredAt time.Time
	origTTL   time.Duration
	infra     bool
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = DefaultMaxTTL
	}
	c := &Cache{cfg: cfg}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*Entry)
		c.shards[i].tombstones = make(map[Key]tombstone)
	}
	return c
}

// shardFor maps a key to its shard by FNV-1a hash of owner name and type.
func (c *Cache) shardFor(key Key) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key.Name); i++ {
		h ^= uint32(key.Name[i])
		h *= prime32
	}
	h ^= uint32(key.Type) & 0xff
	h *= prime32
	h ^= uint32(key.Type) >> 8
	h *= prime32
	return &c.shards[h&(shardCount-1)]
}

// Clock returns the cache's clock.
func (c *Cache) Clock() simclock.Clock { return c.cfg.Clock }

// RefreshEnabled reports whether TTL refresh is on.
func (c *Cache) RefreshEnabled() bool { return c.cfg.RefreshInfraTTL }

// clampTTL applies the MaxTTL policy to a TTL expressed in seconds.
func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if c.cfg.MaxTTL > 0 && ttl > c.cfg.MaxTTL {
		return c.cfg.MaxTTL
	}
	return ttl
}

// rrsetEqual reports whether two RRsets carry the same data, ignoring TTL
// and order.
func rrsetEqual(a, b []dnswire.RR) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = a[i].Data.String()
		bs[i] = b[i].Data.String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// minTTL returns the smallest TTL in the set, as a duration.
func minTTL(rrs []dnswire.RR) time.Duration {
	min := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < min {
			min = rr.TTL
		}
	}
	return time.Duration(min) * time.Second
}

// Put inserts or updates the RRset for its (name, type). All records must
// share one owner and type. Returns the resulting entry.
//
// Replacement rules:
//   - an expired or absent entry is always replaced;
//   - a higher-credibility set replaces a lower one;
//   - an equal-or-higher credibility copy of an infrastructure set
//     refreshes the entry's TTL when RefreshInfraTTL is on;
//   - otherwise the arriving copy is ignored (vanilla DNS behaviour: the
//     cached TTL keeps counting down).
func (c *Cache) Put(rrs []dnswire.RR, cred Credibility, infra bool) *Entry {
	return c.PutOrigin(rrs, cred, infra, OriginUpstream)
}

// PutOrigin is Put with an explicit data origin. A TTL refresh keeps
// the existing entry's origin (only the timer changes, not the data);
// a replacement installs the new copy's origin.
func (c *Cache) PutOrigin(rrs []dnswire.RR, cred Credibility, infra bool, origin Origin) *Entry {
	if len(rrs) == 0 {
		return nil
	}
	now := c.cfg.Clock.Now()
	key := Key{Name: rrs[0].Name, Type: rrs[0].Type()}
	ttl := c.clampTTL(minTTL(rrs))
	sh := c.shardFor(key)

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if e.Expires.After(now) {
			same := rrsetEqual(e.RRs, rrs)
			switch {
			case cred > e.Cred:
				// Higher credibility: replace outright.
			case !same && cred == e.Cred:
				// Equal credibility, different data: the fresher copy
				// wins (RFC 2181 §5.4.1 replacement).
			case same && c.cfg.RefreshInfraTTL && e.Infra && infra && cred >= e.Cred:
				// TTL refresh: reset the clock on the existing entry.
				// Keep the cached (higher-credibility) data; only the
				// timer is reset, per §4 "TTL Refresh". Entries are
				// immutable, so the refresh installs a copy.
				ne := *e
				ne.Expires = now.Add(e.OrigTTL)
				sh.entries[key] = &ne
				c.noteChangeLocked(ChangeExtend, key, &ne)
				sh.mu.Unlock()
				return &ne
			default:
				sh.mu.Unlock()
				return e // vanilla: ignore the new copy
			}
		} else {
			c.expireEntryLocked(sh, key, e, now)
			c.noteTombstoneHitLocked(sh, key, now)
		}
	} else {
		c.noteTombstoneHitLocked(sh, key, now)
	}

	e := &Entry{
		Key:      key,
		RRs:      append([]dnswire.RR(nil), rrs...),
		Cred:     cred,
		Infra:    infra,
		Origin:   origin,
		OrigTTL:  ttl,
		Expires:  now.Add(ttl),
		StoredAt: now,
	}
	sh.entries[key] = e
	delete(sh.tombstones, key)
	c.noteChangeLocked(ChangePut, key, e)
	sh.mu.Unlock()
	c.enforceCapacity(now)
	return e
}

// noteChangeLocked reports a committed mutation to the OnChange hook. The
// mutated shard's lock must be held so journal order matches apply order
// per key.
func (c *Cache) noteChangeLocked(op ChangeOp, key Key, e *Entry) {
	if c.cfg.OnChange != nil {
		c.cfg.OnChange(op, key, e)
	}
}

// enforceCapacity evicts entries until the cache fits MaxEntries: expired
// entries first, then the soonest-to-expire data entries, then (only if
// unavoidable) the soonest-to-expire infrastructure entries. It is called
// without any shard lock held; capMu serialises concurrent enforcement.
func (c *Cache) enforceCapacity(now time.Time) {
	if c.cfg.MaxEntries <= 0 || c.Len() <= c.cfg.MaxEntries {
		return
	}
	c.capMu.Lock()
	defer c.capMu.Unlock()
	if c.Len() <= c.cfg.MaxEntries {
		return
	}
	c.SweepExpired()
	for _, infraPass := range []bool{false, true} {
		for c.Len() > c.cfg.MaxEntries {
			if !c.evictSoonest(infraPass) {
				break
			}
		}
		if c.Len() <= c.cfg.MaxEntries {
			return
		}
	}
}

// evictSoonest removes the soonest-to-expire entry whose Infra flag equals
// infraPass, reporting whether a victim was found.
func (c *Cache) evictSoonest(infraPass bool) bool {
	var victim Key
	var victimShard *shard
	var victimExpires time.Time
	found := false
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for key, e := range sh.entries {
			if e.Infra != infraPass {
				continue
			}
			if !found || e.Expires.Before(victimExpires) {
				victim, victimShard, victimExpires, found = key, sh, e.Expires, true
			}
		}
		sh.mu.RUnlock()
	}
	if !found {
		return false
	}
	victimShard.mu.Lock()
	_, still := victimShard.entries[victim]
	if still {
		delete(victimShard.entries, victim)
		c.noteChangeLocked(ChangeEvict, victim, nil)
	}
	victimShard.mu.Unlock()
	if still {
		c.evictions.Add(1)
	}
	return true
}

// Evictions returns how many entries capacity pressure has removed.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }

// Get returns the live entry for (name, type), or nil. An expired entry is
// retired (leaving a tombstone; retained for stale service under
// KeepStale) and reported as a miss.
func (c *Cache) Get(name dnswire.Name, t dnswire.Type) *Entry {
	key := Key{Name: name, Type: t}
	sh := c.shardFor(key)
	now := c.cfg.Clock.Now()

	sh.mu.RLock()
	e, ok := sh.entries[key]
	if ok && e.Expires.After(now) {
		sh.mu.RUnlock()
		c.hits.Add(1)
		return e
	}
	sh.mu.RUnlock()

	// Miss or expired: take the write lock to retire the entry and note
	// the tombstone, re-checking under the lock (a concurrent Put may have
	// revived the key).
	sh.mu.Lock()
	e, ok = sh.entries[key]
	if ok && e.Expires.After(now) {
		sh.mu.Unlock()
		c.hits.Add(1)
		return e
	}
	if ok {
		c.expireEntryLocked(sh, key, e, now)
	}
	c.noteTombstoneHitLocked(sh, key, now)
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil
}

// GetStale returns the expired-but-retained entry for (name, type) when
// stale retention is on and the entry died within the KeepStale window.
// Live entries are returned as well (callers prefer Get first).
func (c *Cache) GetStale(name dnswire.Name, t dnswire.Type) *Entry {
	if c.cfg.KeepStale <= 0 {
		return nil
	}
	key := Key{Name: name, Type: t}
	sh := c.shardFor(key)
	now := c.cfg.Clock.Now()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil
	}
	if e.Expires.After(now) {
		return e
	}
	if now.Sub(e.Expires) > c.cfg.KeepStale {
		c.expireEntryLocked(sh, key, e, now)
		return nil
	}
	c.staleHits.Add(1)
	return e
}

// StaleHits counts GetStale successes on expired entries.
func (c *Cache) StaleHits() uint64 { return c.staleHits.Load() }

// Peek returns the entry without expiry processing or stats; nil if absent.
func (c *Cache) Peek(name dnswire.Name, t dnswire.Type) *Entry {
	key := Key{Name: name, Type: t}
	sh := c.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	return e
}

// Extend resets the entry's expiry to now + its original TTL, returning
// false if the entry is absent. Package core uses this when a renewal
// refetch succeeds.
func (c *Cache) Extend(name dnswire.Name, t dnswire.Type) bool {
	key := Key{Name: name, Type: t}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return false
	}
	ne := *e
	ne.Expires = c.cfg.Clock.Now().Add(e.OrigTTL)
	sh.entries[key] = &ne
	c.noteChangeLocked(ChangeExtend, key, &ne)
	return true
}

// Evict removes the entry without leaving a tombstone (used when a zone's
// servers all stop responding and its stale IRRs must be discarded).
func (c *Cache) Evict(name dnswire.Name, t dnswire.Type) {
	key := Key{Name: name, Type: t}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if _, ok := sh.entries[key]; ok {
		delete(sh.entries, key)
		c.noteChangeLocked(ChangeEvict, key, nil)
	}
	sh.mu.Unlock()
}

// expireEntryLocked retires a dead entry: it leaves a tombstone (once) and
// either deletes the entry or, with KeepStale, retains it for stale
// service until the window passes. The shard lock must be held.
func (c *Cache) expireEntryLocked(sh *shard, key Key, e *Entry, now time.Time) {
	if !e.staleTombstoned {
		sh.tombstones[key] = tombstone{expiredAt: e.Expires, origTTL: e.OrigTTL, infra: e.Infra}
		ne := *e
		ne.staleTombstoned = true
		sh.entries[key] = &ne
	}
	if c.cfg.KeepStale > 0 && now.Sub(e.Expires) <= c.cfg.KeepStale {
		return // retained as stale
	}
	delete(sh.entries, key)
}

// noteTombstoneHitLocked reports the gap between an entry's expiry and
// this renewed interest in it, then clears the tombstone. The shard lock
// must be held.
func (c *Cache) noteTombstoneHitLocked(sh *shard, key Key, now time.Time) {
	ts, ok := sh.tombstones[key]
	if !ok {
		return
	}
	delete(sh.tombstones, key)
	if c.cfg.OnGap != nil && now.After(ts.expiredAt) {
		c.cfg.OnGap(key, now.Sub(ts.expiredAt), ts.origTTL)
	}
}

// SweepExpired removes every entry whose TTL has passed, leaving
// tombstones. The cache expires lazily on Get; call this before reading
// occupancy stats so that Fig. 12-style series reflect live entries only.
func (c *Cache) SweepExpired() {
	now := c.cfg.Clock.Now()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			if !e.Expires.After(now) {
				c.expireEntryLocked(sh, key, e, now)
			}
		}
		sh.mu.Unlock()
	}
}

// Stats reports occupancy. Call SweepExpired first for exact numbers.
// Live and stale entries are counted separately.
func (c *Cache) Stats() Stats {
	var s Stats
	now := c.cfg.Clock.Now()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for key, e := range sh.entries {
			if !e.Expires.After(now) {
				s.StaleEntries++
				continue
			}
			s.Entries++
			s.Records += len(e.RRs)
			if e.Infra {
				s.InfraEntries++
			}
			if key.Type == dnswire.TypeNS {
				s.Zones++
			}
			for _, rr := range e.RRs {
				// Owner + fixed RR header (type/class/TTL/rdlength) + a
				// cheap RDATA size proxy.
				s.ApproxBytes += len(rr.Name) + 10 + len(rr.Data.String())
			}
		}
		sh.mu.RUnlock()
	}
	return s
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (c *Cache) HitRate() float64 {
	hits := c.hits.Load()
	total := hits + c.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Len returns the number of live entries (without sweeping).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// InfraExpiries returns the (name, expiry) pairs of all live
// infrastructure NS entries, sorted by expiry. The renewal scheduler in
// package core uses this to rebuild its due-queue after configuration
// changes and in tests.
func (c *Cache) InfraExpiries() []ExpiryInfo {
	var out []ExpiryInfo
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for key, e := range sh.entries {
			if key.Type == dnswire.TypeNS && e.Infra {
				out = append(out, ExpiryInfo{Zone: key.Name, Expires: e.Expires, OrigTTL: e.OrigTTL})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Expires.Equal(out[j].Expires) {
			return out[i].Expires.Before(out[j].Expires)
		}
		return out[i].Zone < out[j].Zone
	})
	return out
}

// ExpiryInfo describes one cached zone IRR's expiry.
type ExpiryInfo struct {
	Zone    dnswire.Name
	Expires time.Time
	OrigTTL time.Duration
}

// Range calls fn for every cached entry — live and (under KeepStale)
// expired-but-retained alike — until fn returns false. The iteration order
// is unspecified. Entries are immutable, so fn may retain the pointers; it
// must not call back into the cache (each shard's read lock is held while
// its entries are visited). The persistence snapshot writer is the primary
// consumer.
func (c *Cache) Range(fn func(e *Entry) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if !fn(e) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// RestoreEntry is one recovered record offered to Restore.
type RestoreEntry struct {
	RRs      []dnswire.RR
	Cred     Credibility
	Infra    bool
	Origin   Origin
	OrigTTL  time.Duration
	Expires  time.Time
	StoredAt time.Time
}

// Restore installs a recovered entry, re-applying this cache's own TTL
// policy: OrigTTL is re-clamped against MaxTTL and the remaining lifetime
// may not exceed MaxTTL from now (a restart must never resurrect records
// for longer than a fresh Put could cache them). Entries already expired
// are kept only when stale retention is on and they died within the
// KeepStale window; otherwise they are dropped. Restore overwrites any
// existing entry (journal replay applies records in mutation order) and
// does not fire OnChange or leave tombstones — recovered state is already
// covered by the snapshot being replayed, and expiry-gap measurement
// restarts cleanly after recovery. Reports whether the entry was kept.
func (c *Cache) Restore(re RestoreEntry) bool {
	if len(re.RRs) == 0 {
		return false
	}
	key := Key{Name: re.RRs[0].Name, Type: re.RRs[0].Type()}
	for _, rr := range re.RRs {
		if rr.Name != key.Name || rr.Type() != key.Type {
			return false // corrupt record: mixed owners or types
		}
	}
	ttl := c.clampTTL(re.OrigTTL)
	if ttl <= 0 {
		return false
	}
	now := c.cfg.Clock.Now()
	expires := re.Expires
	if c.cfg.MaxTTL > 0 && expires.After(now.Add(c.cfg.MaxTTL)) {
		expires = now.Add(c.cfg.MaxTTL)
	}
	if !expires.After(now) {
		if c.cfg.KeepStale <= 0 || now.Sub(expires) > c.cfg.KeepStale {
			return false // dead on arrival and not retainable as stale
		}
	}
	e := &Entry{
		Key:      key,
		RRs:      append([]dnswire.RR(nil), re.RRs...),
		Cred:     re.Cred,
		Infra:    re.Infra,
		Origin:   re.Origin,
		OrigTTL:  ttl,
		Expires:  expires,
		StoredAt: re.StoredAt,
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.entries[key] = e
	sh.mu.Unlock()
	return true
}

// RemainingTTL returns the seconds left for an entry at time now, for
// serving decremented TTLs to stub resolvers.
func (e *Entry) RemainingTTL(now time.Time) uint32 {
	d := e.Expires.Sub(now)
	if d <= 0 {
		return 0
	}
	secs := int64(d / time.Second)
	if secs == 0 {
		secs = 1
	}
	return uint32(secs)
}

// RRsWithRemainingTTL returns a copy of the RRset with TTLs decremented to
// the remaining lifetime.
func (e *Entry) RRsWithRemainingTTL(now time.Time) []dnswire.RR {
	rem := e.RemainingTTL(now)
	out := make([]dnswire.RR, len(e.RRs))
	for i, rr := range e.RRs {
		rr.TTL = rem
		out[i] = rr
	}
	return out
}
