// Quickstart: build an in-memory DNS hierarchy, run the resilient caching
// server against it over the simulated network, and resolve a few names.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Generate a small synthetic DNS hierarchy: a root, TLDs, and a
	//    few hundred delegated zones with name servers and host records.
	params := topology.DefaultParams(42)
	params.NumTLDs = 5
	params.SLDsPerTLD = 30
	tree, err := topology.Generate(params)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d zones\n", len(tree.AllZoneNames()))

	// 2. Install the authoritative servers on a simulated network driven
	//    by a virtual clock.
	clock := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := simnet.New(clock, 1)
	tree.Install(network)

	// 3. Start the resilient caching server with the paper's combined
	//    scheme: TTL refresh plus adaptive-LFU renewal.
	cs, err := core.NewCachingServer(core.Config{
		Transport:  network,
		Clock:      clock,
		RootHints:  tree.RootHints,
		RefreshTTL: true,
		Renewal:    core.ALFU{C: 5, MaxDays: 50},
	})
	if err != nil {
		return err
	}

	// 4. Resolve some generated names. The first walk goes through the
	//    root; the second is answered from cache.
	ctx := context.Background()
	names := tree.QueryableNames()
	for _, tn := range names[:3] {
		res, err := cs.Resolve(ctx, tn.Name, dnswire.TypeA)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s -> %s (cache=%v)\n", tn.Name, res.Answer[len(res.Answer)-1].Data, res.FromCache)
	}
	res, err := cs.Resolve(ctx, names[0].Name, dnswire.TypeA)
	if err != nil {
		return err
	}
	fmt.Printf("%-40s -> %s (cache=%v)\n", names[0].Name, res.Answer[len(res.Answer)-1].Data, res.FromCache)

	// 5. Inspect what the cache holds: the infrastructure records (zone
	//    NS sets and server addresses) are the paper's key asset.
	st := cs.CacheStats()
	fmt.Printf("cache: %d entries, %d records, %d zones' IRRs\n", st.Entries, st.Records, st.Zones)

	srv := cs.Stats()
	fmt.Printf("queries: in=%d out=%d referrals=%d\n", srv.QueriesIn, srv.QueriesOut, srv.Referrals)
	return nil
}
