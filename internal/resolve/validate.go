package resolve

import (
	"context"
	"errors"
	"fmt"

	"resilientdns/internal/dnswire"
)

// maxChainDepth bounds DS→DNSKEY chain walks.
const maxChainDepth = 8

// ErrBogus reports a DNSSEC validation failure: the zone chain is signed
// but the data does not verify.
var ErrBogus = errors.New("resolve: DNSSEC validation failed (bogus)")

// The dnssec.Validator mutates its trust-anchor map while validating
// delegations, so every call into it (and every insecure-map access) is
// serialized under secMu. secMu is a leaf lock, never held across
// network I/O — the accessors below each take it for one step only.

// zoneTrusted reports whether zname already has trusted keys.
func (r *Resolver) zoneTrusted(zname dnswire.Name) bool {
	r.secMu.Lock()
	defer r.secMu.Unlock()
	return len(r.validator.TrustedKeys(zname)) > 0
}

// zoneInsecure reports whether zname is cached as provably unsigned.
func (r *Resolver) zoneInsecure(zname dnswire.Name) bool {
	r.secMu.Lock()
	defer r.secMu.Unlock()
	return r.insecure[zname]
}

// markInsecure caches zname as provably unsigned.
func (r *Resolver) markInsecure(zname dnswire.Name) {
	r.secMu.Lock()
	defer r.secMu.Unlock()
	r.insecure[zname] = true
}

// ensureTrusted establishes the DS→DNSKEY chain from the trust anchors
// down to zname. It returns whether the zone is securely delegated
// (false = provably unsigned/insecure, which is acceptable) or an error
// when the chain is bogus or unreachable.
func (r *Resolver) ensureTrusted(ctx context.Context, tr *Trace, zname dnswire.Name, depth int) (bool, error) {
	if r.validator == nil {
		return false, nil
	}
	if r.zoneTrusted(zname) {
		return true, nil
	}
	if zname.IsRoot() {
		// The root is only ever trusted via the configured anchors.
		return false, nil
	}
	if r.zoneInsecure(zname) {
		return false, nil
	}
	if depth > maxChainDepth {
		return false, fmt.Errorf("%w: trust chain deeper than %d at %s", ErrBogus, maxChainDepth, zname)
	}

	// 1. The DS set for zname, served authoritatively by the parent side.
	dsSet, dsSig, err := r.fetchRRSetWithSig(ctx, tr, zname, dnswire.TypeDS, depth)
	if err != nil {
		return false, fmt.Errorf("fetching DS for %s: %w", zname, err)
	}
	if len(dsSet) == 0 {
		// No DS: an insecure delegation. (Without NSEC we accept the
		// parent's negative answer at face value.)
		r.markInsecure(zname)
		return false, nil
	}
	sig, ok := dsSig.Data.(dnswire.RRSIG)
	if !ok {
		return false, fmt.Errorf("%w: DS set for %s carries no signature", ErrBogus, zname)
	}

	// 2. The signer (the parent zone) must itself be trusted.
	parentSecure, err := r.ensureTrusted(ctx, tr, sig.SignerName, depth+1)
	if err != nil {
		return false, err
	}
	if !parentSecure {
		r.markInsecure(zname)
		return false, nil
	}

	// 3. The child's self-signed DNSKEY set must match the DS.
	keySet, keySig, err := r.fetchRRSetWithSig(ctx, tr, zname, dnswire.TypeDNSKEY, depth)
	if err != nil {
		return false, fmt.Errorf("fetching DNSKEY for %s: %w", zname, err)
	}
	if len(keySet) == 0 {
		return false, fmt.Errorf("%w: signed delegation %s publishes no DNSKEY", ErrBogus, zname)
	}
	now := r.cfg.Clock.Now()
	r.secMu.Lock()
	err = r.validator.ValidateDelegation(sig.SignerName, zname, dsSet, dsSig, keySet, keySig, now)
	r.secMu.Unlock()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBogus, err)
	}
	return true, nil
}

// fetchRRSetWithSig resolves (qname, qtype) over the network and returns
// the RRset together with its covering RRSIG from the same response. An
// authoritative negative answer returns an empty set and no error.
func (r *Resolver) fetchRRSetWithSig(ctx context.Context, tr *Trace, qname dnswire.Name, qtype dnswire.Type, depth int) ([]dnswire.RR, dnswire.RR, error) {
	res, raw, err := r.iterate(ctx, tr, qname, qtype, depth+1, false, false)
	if err != nil {
		return nil, dnswire.RR{}, err
	}
	if res.RCode != dnswire.RCodeNoError || raw == nil {
		return nil, dnswire.RR{}, nil // negative: insecure/absent
	}
	var set []dnswire.RR
	var sig dnswire.RR
	for _, rr := range raw.Answer {
		if rr.Name != qname {
			continue
		}
		if rr.Type() == qtype {
			set = append(set, rr)
		}
		if s, ok := rr.Data.(dnswire.RRSIG); ok && s.TypeCovered == qtype {
			sig = rr
		}
	}
	return set, sig, nil
}

// validateAnswer verifies the RRSIGs over every answer RRset in resp,
// walking the trust chain as needed. Insecure (unsigned) zones pass
// unvalidated, matching standard resolver behaviour.
func (r *Resolver) validateAnswer(ctx context.Context, tr *Trace, zname dnswire.Name, resp *dnswire.Message, depth int) error {
	secure, err := r.ensureTrusted(ctx, tr, zname, depth)
	if err != nil {
		return err
	}
	if !secure {
		return nil
	}
	now := r.cfg.Clock.Now()
	for _, set := range groupRRSets(resp.Answer) {
		if set[0].Type() == dnswire.TypeRRSIG {
			continue
		}
		sigRR, ok := findSig(resp.Answer, set[0].Name, set[0].Type())
		if !ok {
			return fmt.Errorf("%w: no RRSIG over %s %s from secure zone %s",
				ErrBogus, set[0].Name, set[0].Type(), zname)
		}
		signer := sigRR.Data.(dnswire.RRSIG).SignerName
		signerSecure, err := r.ensureTrusted(ctx, tr, signer, depth)
		if err != nil {
			return err
		}
		if !signerSecure {
			continue // cross-zone CNAME target in an unsigned zone
		}
		r.secMu.Lock()
		err = r.validator.ValidateRRSet(signer, sigRR, set, now)
		r.secMu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %s %s: %v", ErrBogus, set[0].Name, set[0].Type(), err)
		}
	}
	return nil
}

// findSig locates the RRSIG covering (owner, t) in a section.
func findSig(rrs []dnswire.RR, owner dnswire.Name, t dnswire.Type) (dnswire.RR, bool) {
	for _, rr := range rrs {
		if rr.Name != owner {
			continue
		}
		if s, ok := rr.Data.(dnswire.RRSIG); ok && s.TypeCovered == t {
			return rr, true
		}
	}
	return dnswire.RR{}, false
}

// SecureZone reports whether zname currently has a validated key chain
// (true), is known insecure (false), with ok=false when undetermined.
func (r *Resolver) SecureZone(zname dnswire.Name) (secure, known bool) {
	if r.validator == nil {
		return false, false
	}
	r.secMu.Lock()
	defer r.secMu.Unlock()
	if len(r.validator.TrustedKeys(zname)) > 0 {
		return true, true
	}
	if r.insecure[zname] {
		return false, true
	}
	return false, false
}
