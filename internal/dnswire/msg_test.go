package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mkA(name string, ttl uint32, ip string) RR {
	return RR{
		Name:  MustName(name),
		Class: ClassIN,
		TTL:   ttl,
		Data:  A{Addr: netip.MustParseAddr(ip)},
	}
}

func mkNS(name string, ttl uint32, host string) RR {
	return RR{
		Name:  MustName(name),
		Class: ClassIN,
		TTL:   ttl,
		Data:  NS{Host: MustName(host)},
	}
}

func sampleMessage() *Message {
	m := NewQuery(0x1234, MustName("www.example.com"), TypeA)
	m.Flags.RecursionDesired = true
	r := m.Reply()
	r.Flags.Authoritative = true
	r.Answer = []RR{mkA("www.example.com", 3600, "192.0.2.1")}
	r.Authority = []RR{
		mkNS("example.com", 86400, "ns1.example.com"),
		mkNS("example.com", 86400, "ns2.example.com"),
	}
	r.Additional = []RR{
		mkA("ns1.example.com", 86400, "192.0.2.53"),
		mkA("ns2.example.com", 86400, "192.0.2.54"),
	}
	return r
}

func TestPackUnpackRoundTrip(t *testing.T) {
	msg := sampleMessage()
	wire, err := msg.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Errorf("round trip mismatch:\nsent: %+v\ngot:  %+v", msg, got)
	}
}

func TestPackCompressesNames(t *testing.T) {
	msg := sampleMessage()
	wire, err := msg.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// Uncompressed encoding of all names would be much larger. With
	// compression, "example.com." appears in full exactly once.
	uncompressed := 0
	for _, q := range msg.Question {
		uncompressed += q.Name.wireLen() + 4
	}
	for _, rr := range append(append(append([]RR{}, msg.Answer...), msg.Authority...), msg.Additional...) {
		uncompressed += rr.Name.wireLen() + 10
		switch d := rr.Data.(type) {
		case A:
			uncompressed += 4
		case NS:
			uncompressed += d.Host.wireLen()
		}
	}
	uncompressed += headerLen
	if len(wire) >= uncompressed {
		t.Errorf("compressed size %d >= uncompressed size %d", len(wire), uncompressed)
	}
}

func TestUnpackRejectsTruncated(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	for _, cut := range []int{1, headerLen - 1, headerLen + 3, len(wire) - 1} {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Errorf("Unpack of %d/%d bytes succeeded, want error", cut, len(wire))
		}
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if _, err := Unpack(append(wire, 0xAB)); err == nil {
		t.Error("Unpack with trailing byte succeeded, want error")
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Craft a message whose question name is a pointer to itself.
	wire := make([]byte, headerLen)
	wire[0], wire[1] = 0xBE, 0xEF
	wire[5] = 1 // QDCOUNT = 1
	// Name at offset 12: pointer to offset 12 (forward/self reference).
	wire = append(wire, 0xC0, 12, 0, 1, 0, 1)
	if _, err := Unpack(wire); err == nil {
		t.Error("Unpack with self-referential pointer succeeded, want error")
	}
}

func TestRDataRoundTripAllTypes(t *testing.T) {
	rrs := []RR{
		mkA("host.example.", 60, "203.0.113.9"),
		{Name: MustName("host.example."), Class: ClassIN, TTL: 60,
			Data: AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
		mkNS("example.", 300, "ns.example."),
		{Name: MustName("alias.example."), Class: ClassIN, TTL: 60,
			Data: CNAME{Target: MustName("real.example.")}},
		{Name: MustName("9.113.0.203.in-addr.arpa."), Class: ClassIN, TTL: 60,
			Data: PTR{Target: MustName("host.example.")}},
		{Name: MustName("example."), Class: ClassIN, TTL: 3600,
			Data: SOA{MName: MustName("ns.example."), RName: MustName("admin.example."),
				Serial: 2026070401, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
		{Name: MustName("example."), Class: ClassIN, TTL: 600,
			Data: MX{Preference: 10, Host: MustName("mail.example.")}},
		{Name: MustName("example."), Class: ClassIN, TTL: 600,
			Data: TXT{Strings: []string{"v=spf1 -all", "second string"}}},
		{Name: MustName("_dns._udp.example."), Class: ClassIN, TTL: 600,
			Data: SRV{Priority: 1, Weight: 5, Port: 53, Target: MustName("ns.example.")}},
		{Name: MustName("example."), Class: ClassIN, TTL: 60,
			Data: Unknown{TypeCode: Type(4242), Raw: []byte{1, 2, 3, 4}}},
	}
	for _, rr := range rrs {
		t.Run(rr.Type().String(), func(t *testing.T) {
			m := &Message{ID: 7, Answer: []RR{rr}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			got, err := Unpack(wire)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			if len(got.Answer) != 1 {
				t.Fatalf("got %d answers, want 1", len(got.Answer))
			}
			if !reflect.DeepEqual(got.Answer[0], rr) {
				t.Errorf("round trip mismatch: sent %+v got %+v", rr, got.Answer[0])
			}
		})
	}
}

func TestInvalidRData(t *testing.T) {
	tests := []struct {
		name string
		rr   RR
	}{
		{"A with IPv6", RR{Name: "x.", Class: ClassIN, Data: A{Addr: netip.MustParseAddr("::1")}}},
		{"AAAA with IPv4", RR{Name: "x.", Class: ClassIN, Data: AAAA{Addr: netip.MustParseAddr("1.2.3.4")}}},
		{"empty TXT", RR{Name: "x.", Class: ClassIN, Data: TXT{}}},
		{"nil data", RR{Name: "x.", Class: ClassIN}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := &Message{Answer: []RR{tt.rr}}
			if _, err := m.Pack(); err == nil {
				t.Errorf("Pack succeeded, want error")
			}
		})
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(99, MustName("a.b.c"), TypeNS)
	q.Flags.RecursionDesired = true
	r := q.Reply()
	if !r.Flags.Response {
		t.Error("Reply did not set QR")
	}
	if r.ID != q.ID {
		t.Errorf("Reply ID = %d, want %d", r.ID, q.ID)
	}
	if !r.Flags.RecursionDesired {
		t.Error("Reply did not echo RD")
	}
	if len(r.Question) != 1 || r.Question[0] != q.Question[0] {
		t.Errorf("Reply question = %v, want %v", r.Question, q.Question)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for _, flags := range []Flags{
		{},
		{Response: true},
		{Response: true, Authoritative: true, RecursionAvailable: true},
		{Truncated: true, RecursionDesired: true},
		{AuthenticData: true, CheckingDisabled: true},
	} {
		m := &Message{ID: 1, Flags: flags, Opcode: OpcodeQuery, RCode: RCodeNXDomain}
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		if got.Flags != flags {
			t.Errorf("flags round trip: sent %+v got %+v", flags, got.Flags)
		}
		if got.RCode != RCodeNXDomain {
			t.Errorf("rcode round trip: got %v", got.RCode)
		}
	}
}

// randomRR builds a random RR over a small set of types.
func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	ttl := uint32(r.Intn(7 * 86400))
	switch r.Intn(5) {
	case 0:
		var v4 [4]byte
		r.Read(v4[:])
		return RR{Name: name, Class: ClassIN, TTL: ttl, Data: A{Addr: netip.AddrFrom4(v4)}}
	case 1:
		return RR{Name: name, Class: ClassIN, TTL: ttl, Data: NS{Host: randomName(r)}}
	case 2:
		return RR{Name: name, Class: ClassIN, TTL: ttl, Data: CNAME{Target: randomName(r)}}
	case 3:
		return RR{Name: name, Class: ClassIN, TTL: ttl,
			Data: MX{Preference: uint16(r.Intn(100)), Host: randomName(r)}}
	default:
		return RR{Name: name, Class: ClassIN, TTL: ttl,
			Data: TXT{Strings: []string{"payload"}}}
	}
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewQuery(uint16(r.Intn(1<<16)), randomName(r), TypeA)
		m.Flags.Response = true
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Answer = append(m.Answer, randomRR(r))
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Authority = append(m.Authority, randomRR(r))
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Additional = append(m.Additional, randomRR(r))
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	// Unpack must reject, not panic on, arbitrary byte soup.
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unpack(b) //nolint:errcheck // errors are expected for random input
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackFuzzedWire(t *testing.T) {
	// Flip bytes in a valid message; Unpack must never panic and, when it
	// succeeds, repacking must succeed too.
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), wire...)
		for j, n := 0, 1+r.Intn(4); j < n; j++ {
			mut[r.Intn(len(mut))] = byte(r.Intn(256))
		}
		m, err := Unpack(mut)
		if err != nil {
			continue
		}
		if _, err := m.Pack(); err != nil {
			// Repacking may legitimately fail for e.g. a mutated TXT
			// that decoded to empty strings; it must not panic.
			continue
		}
	}
}
