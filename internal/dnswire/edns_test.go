package dnswire

import "testing"

func TestSetEDNS0AndReadBack(t *testing.T) {
	m := NewQuery(1, MustName("www.example.com."), TypeA)
	if _, ok := m.EDNS0PayloadSize(); ok {
		t.Fatal("fresh query claims EDNS0")
	}
	m.SetEDNS0(4096)
	size, ok := m.EDNS0PayloadSize()
	if !ok || size != 4096 {
		t.Fatalf("EDNS0PayloadSize = %d, %v", size, ok)
	}
}

func TestSetEDNS0Replaces(t *testing.T) {
	m := NewQuery(1, MustName("x."), TypeA)
	m.SetEDNS0(1232)
	m.SetEDNS0(4096)
	optCount := 0
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			optCount++
		}
	}
	if optCount != 1 {
		t.Errorf("found %d OPT records, want 1", optCount)
	}
	if size, _ := m.EDNS0PayloadSize(); size != 4096 {
		t.Errorf("size = %d, want 4096", size)
	}
}

func TestEDNS0SurvivesWireRoundTrip(t *testing.T) {
	m := NewQuery(1, MustName("x."), TypeA)
	m.SetEDNS0(1232)
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	size, ok := got.EDNS0PayloadSize()
	if !ok || size != 1232 {
		t.Errorf("round-trip EDNS0 size = %d, %v", size, ok)
	}
}
