package core

import (
	"context"
	"net/netip"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/resolve"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// ServerRef names one authoritative server endpoint.
type ServerRef struct {
	// Host is the server's DNS name (e.g. "a.root-servers.net.").
	Host dnswire.Name
	// Addr is where to reach it.
	Addr transport.Addr
}

// The resolution machinery lives in internal/resolve; core re-exports the
// pipeline's shared surface so existing callers (the simulator, the
// persistence layer, the binaries) keep one import.
type (
	// Result is a completed resolution.
	Result = resolve.Result
	// UpstreamConfig tunes the robustness layer shared by the query,
	// renewal, and prefetch paths.
	UpstreamConfig = resolve.UpstreamConfig
	// UpstreamServerState is one authoritative server's persisted
	// selection state: the RFC 6298 RTT estimate, the consecutive-failure
	// count, and the quarantine release time.
	UpstreamServerState = resolve.ServerState
)

// ErrResolutionFailed reports that every reachable path to the answer was
// exhausted (the paper's "failed query").
var ErrResolutionFailed = resolve.ErrResolutionFailed

// ErrBogus reports a DNSSEC validation failure: the zone chain is signed
// but the data does not verify.
var ErrBogus = resolve.ErrBogus

// staleServeTTL is the TTL stamped on stale answers (RFC 8767 recommends
// a short value so clients re-try soon).
const staleServeTTL = resolve.StaleServeTTL

// Config parameterises a CachingServer.
type Config struct {
	// Transport carries queries to authoritative servers. Required.
	Transport transport.Transport
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// RootHints are the hard-coded root servers every caching server
	// knows (§2). Required.
	RootHints []ServerRef

	// RefreshTTL enables the paper's TTL-refresh scheme.
	RefreshTTL bool
	// Renewal enables credit-based TTL renewal with the given policy;
	// nil disables renewal.
	Renewal RenewalPolicy
	// MaxTTL clamps cached TTLs; defaults to 7 days (§6: caching servers
	// do not accept arbitrarily large TTL values, which also bounds how
	// long a reclaimed delegation can linger).
	MaxTTL time.Duration
	// NegativeTTL caches NXDOMAIN/NODATA outcomes for this long; zero
	// disables negative caching (the paper's simulations ignore it).
	NegativeTTL time.Duration
	// ServeStale retains expired records for this long and serves them as
	// a last resort when resolution fails — the Ballani & Francis
	// HotNets'06 baseline from the paper's related work (§7), ancestor of
	// RFC 8767. Zero disables it.
	ServeStale time.Duration
	// Prefetch re-fetches a cached answer when a query hits it within
	// the last tenth of its TTL — unbound's prefetch behaviour, the other
	// modern cousin of the paper's renewal scheme (data records instead
	// of IRRs).
	Prefetch bool
	// AsyncPrefetch moves prefetch refetches off the client's critical
	// path onto a bounded background worker pool (see
	// resolve.Config.AsyncPrefetch). Leave false for the deterministic
	// inline behaviour the simulator requires.
	AsyncPrefetch bool
	// PrefetchWorkers sizes the background prefetch pool (default 2).
	PrefetchWorkers int
	// PrefetchQueue bounds the pending-prefetch queue (default 64).
	PrefetchQueue int

	// MaxReferrals bounds one resolution's downward steps (default 24).
	MaxReferrals int
	// MaxCNAME bounds CNAME chain chasing (default 8).
	MaxCNAME int
	// MaxGlueFetches caps one client query's aggregate out-of-bailiwick
	// name-server address resolutions, across sibling NS names as well
	// as nesting (the NXNSAttack fanout bound; see
	// resolve.Config.MaxGlueFetches). Zero means the default (16);
	// negative disables the cap.
	MaxGlueFetches int

	// OnGap observes IRR expiry-to-reuse gaps (Fig. 3).
	OnGap cache.GapFunc

	// OnCacheChange observes committed cache mutations (see
	// cache.Config.OnChange); the persistence journal hangs off it. Nil in
	// the simulator, which never persists.
	OnCacheChange cache.ChangeFunc

	// ValidateDNSSEC verifies answers from signed zones against the
	// DS→DNSKEY chain rooted at TrustAnchors (§6: DNSSEC's DS and DNSKEY
	// sets are infrastructure records and flow through the same cache).
	ValidateDNSSEC bool
	// TrustAnchors are trusted DNSKEY RRs (normally the root zone's).
	TrustAnchors []dnswire.RR

	// AdvertiseEDNS0 attaches an EDNS0 OPT record advertising a 4096-byte
	// UDP payload to outgoing queries, avoiding TCP fallback for large
	// referrals.
	AdvertiseEDNS0 bool

	// ParentRecheckInterval forces a query to a zone's parent when the
	// cached delegation has not been confirmed by the parent for this
	// long, so reclaimed delegations surface even under indefinite
	// refresh/renewal (§6 "Deployment Issues"; the paper suggests 7
	// days). Zero disables the recheck.
	ParentRecheckInterval time.Duration

	// AddrMapper converts a name server's address record into a transport
	// address. The default uses the bare IP string (the simulator's
	// convention); live deployments typically append ":53".
	AddrMapper func(addr netip.Addr) transport.Addr

	// Upstream tunes the robustness layer shared by the query, renewal,
	// and prefetch paths (RTT-aware server selection, adaptive per-attempt
	// timeouts, failure quarantine, retry budget). The zero value enables
	// it with defaults; set Upstream.Disable for the legacy round-robin
	// behaviour.
	Upstream UpstreamConfig

	// TraceSink receives a summary of every finished per-query trace
	// (see resolve.Sink). Nil disables tracing entirely; the simulator
	// never sets it, keeping its runs deterministic and overhead-free.
	TraceSink resolve.Sink

	// RenewalOwner, when set, is consulted before the renewal scheduler
	// spends a credit on a zone: false defers the refetch (another
	// fleet member owns the zone's renewal duty and its gossip will
	// keep this cache warm). The mesh's rendezvous-hash ownership hangs
	// off this hook; nil (the default, and always in the simulator's
	// solo runs) renews everything locally.
	RenewalOwner func(zone dnswire.Name) bool
	// OnRenewed fires after a successful renewal refetch has been
	// ingested and extended, so the mesh can gossip the refreshed IRR
	// set to peers. Called from the renewal loop's goroutine.
	OnRenewed func(zone dnswire.Name)
	// PeerFetch is the mesh's last-resort fallback, consulted only
	// after a resolution has failed every live and stale path (see
	// resolve.Hooks.PeerFetch). Nil disables it.
	PeerFetch func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *Result
}
