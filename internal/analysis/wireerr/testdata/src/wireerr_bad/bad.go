// Package wireerr_bad is a failing fixture: codec errors dropped on
// the floor in every syntactic position.
package wireerr_bad

import "dnswire"

// Drop discards both results of Unpack.
func Drop(b []byte) {
	dnswire.Unpack(b) // want "discarded error from dnswire.Unpack"
}

// BlankError keeps the value but blanks the error.
func BlankError(m *dnswire.Message) []byte {
	wire, _ := m.Pack() // want "discarded error from dnswire.Pack"
	return wire
}

// BlankSingle discards a lone error result.
func BlankSingle(m *dnswire.Message) {
	_ = m.Validate() // want "discarded error from dnswire.Validate"
}

// InDefer drops the error in a defer.
func InDefer(m *dnswire.Message) {
	defer m.Pack() // want "discarded error from dnswire.Pack"
}

// InGo drops the error in a goroutine.
func InGo(b []byte) {
	go dnswire.Unpack(b) // want "discarded error from dnswire.Unpack"
}
