// Package ctxdeadline_ok is a passing fixture: bounded flows, wrapper
// functions, stored contexts, closure parameters, and the sanctioned
// escape hatch. Any diagnostic here is a false positive.
package ctxdeadline_ok

import (
	"context"
	"time"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Bounded rebinds to a fresh variable after WithTimeout: the canonical
// way to declare a context bounded.
func Bounded(tr Transport) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tr.Exchange(ctx, "10.0.0.1", nil)
}

// withBudget bounds its result on every return path, so it earns the
// AddsDeadline fact and launders Background for its callers.
func withBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second)
}

// Wrapped relies on the wrapper's deadline.
func Wrapped(tr Transport) {
	ctx, cancel := withBudget(context.Background())
	defer cancel()
	tr.Exchange(ctx, "10.0.0.1", nil)
}

// Spawn returns a callback whose context parameter is assumed bounded
// by whoever eventually invokes it.
func Spawn(tr Transport) func(context.Context) {
	return func(ctx context.Context) {
		tr.Exchange(ctx, "10.0.0.1", nil)
	}
}

// client stores a context; the flow is checked at the write site, not
// at every read.
type client struct {
	ctx context.Context
	tr  Transport
}

func (c *client) ping() {
	c.tr.Exchange(c.ctx, "10.0.0.1", nil)
}

// Gossip is fire-and-forget by design and says so: the escape hatch
// needs a justification to count.
func Gossip(tr Transport) {
	tr.Exchange(context.Background(), "10.0.0.1", nil) //dnslint:ignore ctxdeadline gossip sends are bounded by the connection write deadline
}

var _ = (&client{}).ping
