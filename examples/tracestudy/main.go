// Trace study: generate a synthetic stub-resolver trace, compute Table 1
// style statistics, and reproduce the paper's Figure 3 measurement — the
// CDF of the gap between a zone IRR's expiry and the next query for it.
//
//	go run ./examples/tracestudy
package main

import (
	"fmt"
	"os"
	"time"

	"resilientdns/internal/sim"
	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracestudy:", err)
		os.Exit(1)
	}
}

func run() error {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	params := topology.DefaultParams(11)
	params.NumTLDs = 6
	params.SLDsPerTLD = 30
	tree, err := topology.Generate(params)
	if err != nil {
		return err
	}

	gp := workload.DefaultGenParams("STUDY", 11, epoch)
	gp.Clients = 120
	gp.TotalQueries = 15000
	trace := workload.Generate(gp, tree.QueryableNames())

	st := workload.ComputeStats(trace)
	fmt.Printf("trace %s: %v, %d clients, %d requests, %d names, %d zones\n\n",
		st.Label, st.Duration, st.Clients, st.RequestsIn, st.Names, st.Zones)

	// Replay against vanilla DNS with no attack; the simulator observes
	// every IRR expiry-to-reuse gap along the way.
	res, err := sim.Run(sim.Scenario{Tree: tree, Trace: trace, Scheme: sim.Vanilla(), Seed: 11})
	if err != nil {
		return err
	}

	fmt.Printf("observed %d IRR expiry gaps\n", res.GapAbs.Len())
	fmt.Println("\ngap duration CDF (absolute):")
	for _, days := range []float64{0.1, 0.5, 1, 2, 3, 5} {
		fmt.Printf("  P(gap <= %4.1f days) = %5.1f%%\n", days, 100*res.GapAbs.At(days*86400))
	}
	fmt.Println("\ngap duration CDF (fraction of the IRR TTL):")
	for _, frac := range []float64{0.5, 1, 2, 5, 10, 50} {
		fmt.Printf("  P(gap <= %4.1f x TTL) = %5.1f%%\n", frac, 100*res.GapFrac.At(frac))
	}
	fmt.Println("\nAlmost all gaps are short in absolute time, which is why modest")
	fmt.Println("TTL extensions (days, not weeks) recover most of the resilience.")
	return nil
}
