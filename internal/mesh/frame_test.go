package mesh

import (
	"bytes"
	"testing"

	"resilientdns/internal/dnswire"
)

var testKey = []byte("fleet-shared-key")

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Type: TPing, Seq: 1, Cookie: 0xdeadbeef, Payload: []byte("hello")},
		{Type: TAck, Seq: 0xffffffff, Cookie: 0},
		{Type: TChallenge, Flags: FlagRelayed, Seq: 7, Cookie: 42},
		{Type: TFetchResp, Seq: 9, Payload: bytes.Repeat([]byte{0xab}, MaxPayload)},
	} {
		wire, err := EncodeFrame(testKey, f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, err := DecodeFrame(testKey, wire)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if got.Type != f.Type || got.Flags != f.Flags || got.Seq != f.Seq ||
			got.Cookie != f.Cookie || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("round trip: got %+v want %+v", got, f)
		}
	}
}

func TestFrameRejectsTampering(t *testing.T) {
	wire, err := EncodeFrame(testKey, Frame{Type: TPing, Seq: 3, Cookie: 99, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit — header, payload, or MAC — must fail
	// authentication (or structural validation); nothing may slip through.
	for i := range wire {
		bad := append([]byte{}, wire...)
		bad[i] ^= 0x01
		if _, err := DecodeFrame(testKey, bad); err == nil {
			t.Errorf("bit flip at byte %d accepted", i)
		}
	}
	if _, err := DecodeFrame([]byte("some-other-key"), wire); err == nil {
		t.Error("frame accepted under the wrong key")
	}
	if _, err := DecodeFrame(testKey, wire[:len(wire)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := DecodeFrame(testKey, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := EncodeFrame(testKey, Frame{Type: TIRRPush, Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Error("oversized payload encoded")
	}
}

func TestPeekTypeSeq(t *testing.T) {
	wire, err := EncodeFrame(testKey, Frame{Type: TFetchResp, Seq: 0x01020304})
	if err != nil {
		t.Fatal(err)
	}
	typ, seq, ok := PeekTypeSeq(wire)
	if !ok || typ != TFetchResp || seq != 0x01020304 {
		t.Errorf("PeekTypeSeq = (%d, %#x, %v)", typ, seq, ok)
	}
	if _, _, ok := PeekTypeSeq(wire[:headerLen-1]); ok {
		t.Error("PeekTypeSeq accepted a short buffer")
	}
}

func TestPingPayloadRoundTrip(t *testing.T) {
	p := PingPayload{
		From:        "10.0.0.1:7946",
		Incarnation: 12,
		Digest: []DigestEntry{
			{Addr: "10.0.0.2:7946", State: StateAlive, Incarnation: 3},
			{Addr: "10.0.0.3:7946", State: StateSuspect, Incarnation: 0},
			{Addr: "10.0.0.4:7946", State: StateDead, Incarnation: 9},
		},
	}
	b, err := EncodePing(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePing(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != p.From || got.Incarnation != p.Incarnation || len(got.Digest) != len(p.Digest) {
		t.Fatalf("round trip: got %+v want %+v", got, p)
	}
	for i := range p.Digest {
		if got.Digest[i] != p.Digest[i] {
			t.Errorf("digest[%d] = %+v want %+v", i, got.Digest[i], p.Digest[i])
		}
	}
	if _, err := DecodePing(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestIRRPushRoundTrip(t *testing.T) {
	zone := dnswire.MustName("example.")
	msg := &dnswire.Message{
		Question: []dnswire.Question{{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassIN}},
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.NS{Host: dnswire.MustName("ns1.example.")},
		}},
	}
	b, err := EncodeIRRPush(zone, msg)
	if err != nil {
		t.Fatal(err)
	}
	gotZone, gotMsg, err := DecodeIRRPush(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotZone != zone {
		t.Errorf("zone = %q want %q", gotZone, zone)
	}
	if len(gotMsg.Answer) != 1 || gotMsg.Answer[0].Name != zone {
		t.Errorf("message answer = %+v", gotMsg.Answer)
	}
}

// TestChallengeSmallerThanRequest pins the anti-amplification property:
// the challenge reply to an unconfirmed source is never larger than the
// smallest possible request frame, so the mesh port cannot amplify
// reflected traffic.
func TestChallengeSmallerThanRequest(t *testing.T) {
	challenge, err := EncodeFrame(testKey, Frame{Type: TChallenge, Seq: 1, Cookie: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	smallestReq, err := EncodeFrame(testKey, Frame{Type: TPing, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(challenge) > len(smallestReq) {
		t.Errorf("challenge is %d bytes, larger than the %d-byte minimum request: amplification vector",
			len(challenge), len(smallestReq))
	}
}

// FuzzMeshFrame drives the authenticated-frame and payload decoders with
// arbitrary bytes. The contract is the same as every parser in the repo:
// hostile input is rejected, never a panic — this port faces other
// machines on the network.
func FuzzMeshFrame(f *testing.F) {
	ping, _ := EncodePing(PingPayload{
		From: "10.0.0.1:7946", Incarnation: 2,
		Digest: []DigestEntry{{Addr: "10.0.0.2:7946", State: StateAlive, Incarnation: 1}},
	})
	pingFrame, _ := EncodeFrame(testKey, Frame{Type: TPing, Seq: 1, Cookie: 7, Payload: ping})
	zone := dnswire.MustName("seed.example.")
	push, _ := EncodeIRRPush(zone, &dnswire.Message{
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.NS{Host: dnswire.MustName("ns.seed.example.")},
		}},
	})
	pushFrame, _ := EncodeFrame(testKey, Frame{Type: TIRRPush, Seq: 2, Payload: push})

	f.Add(pingFrame)
	f.Add(pushFrame)
	f.Add(pingFrame[:headerLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		// The outer frame decoder must reject anything unauthenticated.
		if fr, err := DecodeFrame(testKey, b); err == nil {
			// Authenticated frames still carry attacker-influenced
			// payloads once a key leaks: payload decoders must not panic.
			_, _ = DecodePing(fr.Payload)
			_, _, _ = DecodeIRRPush(fr.Payload)
			_, _ = DecodeMsg(fr.Payload)
		}
		PeekTypeSeq(b)
		// Payload decoders are also reachable via authenticated peers.
		_, _ = DecodePing(b)
		_, _, _ = DecodeIRRPush(b)
		_, _ = DecodeMsg(b)
	})
}
