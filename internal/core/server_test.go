package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/authserver"
	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func rrCNAME(name, target string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   300,
		Data:  dnswire.CNAME{Target: dnswire.MustName(target)},
	}
}

// fixture is an in-memory DNS hierarchy:
//
//	.  (10.0.0.1)
//	├── edu.  (10.0.1.1, 10.0.1.2)   IRR TTL 86400
//	│   ├── ucla.edu.  (10.0.2.1, 10.0.2.2)  IRR TTL 3600
//	│   └── oob.edu.   served by ns1.com. (out-of-bailiwick, no glue)
//	└── com.  (10.0.3.1)             IRR TTL 86400
type fixture struct {
	clock   *simclock.Virtual
	net     *simnet.Network
	cs      *CachingServer
	uclaSrv *authserver.Server
}

// reviveUclaHost re-registers a previously killed ucla.edu server with
// its real handler.
func (f *fixture) reviveUclaHost(addr string) {
	f.net.Register(&simnet.Host{
		Addr:    transport.Addr(addr),
		Zone:    dnswire.MustName("ucla.edu."),
		Handler: f.uclaSrv,
	})
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	clk := simclock.NewVirtual(epoch)
	net := simnet.New(clk, 1)
	net.RTT = 0
	net.Timeout = 0

	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrNS("edu.", 86400, "ns1.edu."))
	root.MustAdd(rrNS("edu.", 86400, "ns2.edu."))
	root.MustAdd(rrA("ns1.edu.", 86400, "10.0.1.1"))
	root.MustAdd(rrA("ns2.edu.", 86400, "10.0.1.2"))
	root.MustAdd(rrNS("com.", 86400, "ns1.com."))
	root.MustAdd(rrA("ns1.com.", 86400, "10.0.3.1"))

	edu := zone.New(dnswire.MustName("edu."))
	edu.MustAdd(rrNS("edu.", 86400, "ns1.edu."))
	edu.MustAdd(rrNS("edu.", 86400, "ns2.edu."))
	edu.MustAdd(rrA("ns1.edu.", 86400, "10.0.1.1"))
	edu.MustAdd(rrA("ns2.edu.", 86400, "10.0.1.2"))
	edu.MustAdd(rrNS("ucla.edu.", 3600, "ns1.ucla.edu."))
	edu.MustAdd(rrNS("ucla.edu.", 3600, "ns2.ucla.edu."))
	edu.MustAdd(rrA("ns1.ucla.edu.", 3600, "10.0.2.1"))
	edu.MustAdd(rrA("ns2.ucla.edu.", 3600, "10.0.2.2"))
	edu.MustAdd(rrNS("oob.edu.", 3600, "ns1.com."))

	ucla := zone.New(dnswire.MustName("ucla.edu."))
	ucla.MustAdd(dnswire.RR{
		Name:  dnswire.MustName("ucla.edu."),
		Class: dnswire.ClassIN,
		TTL:   3600,
		Data: dnswire.SOA{
			MName:   dnswire.MustName("ns1.ucla.edu."),
			RName:   dnswire.MustName("hostmaster.ucla.edu."),
			Serial:  1,
			Minimum: 60,
		},
	})
	ucla.MustAdd(rrNS("ucla.edu.", 3600, "ns1.ucla.edu."))
	ucla.MustAdd(rrNS("ucla.edu.", 3600, "ns2.ucla.edu."))
	ucla.MustAdd(rrA("ns1.ucla.edu.", 3600, "10.0.2.1"))
	ucla.MustAdd(rrA("ns2.ucla.edu.", 3600, "10.0.2.2"))
	ucla.MustAdd(rrA("www.ucla.edu.", 300, "10.9.9.9"))
	ucla.MustAdd(rrCNAME("alias.ucla.edu.", "www.com."))

	com := zone.New(dnswire.MustName("com."))
	com.MustAdd(rrNS("com.", 86400, "ns1.com."))
	com.MustAdd(rrA("ns1.com.", 86400, "10.0.3.1"))
	com.MustAdd(rrA("www.com.", 600, "10.8.8.8"))

	oob := zone.New(dnswire.MustName("oob.edu."))
	oob.MustAdd(rrNS("oob.edu.", 3600, "ns1.com."))
	oob.MustAdd(rrA("www.oob.edu.", 300, "10.7.7.7"))

	register := func(addr string, zoneName string, srv *authserver.Server) {
		net.Register(&simnet.Host{
			Addr:    transport.Addr(addr),
			Zone:    dnswire.MustName(zoneName),
			Handler: srv,
		})
	}
	register("10.0.0.1", ".", authserver.New(root))
	eduSrv := authserver.New(edu)
	register("10.0.1.1", "edu.", eduSrv)
	register("10.0.1.2", "edu.", eduSrv)
	uclaSrv := authserver.New(ucla)
	register("10.0.2.1", "ucla.edu.", uclaSrv)
	register("10.0.2.2", "ucla.edu.", uclaSrv)
	// ns1.com serves both com. and the out-of-bailiwick oob.edu.
	register("10.0.3.1", "com.", authserver.New(com, oob))

	cfg.Transport = net
	cfg.Clock = clk
	cfg.RootHints = []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}}
	cs, err := NewCachingServer(cfg)
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	return &fixture{clock: clk, net: net, cs: cs, uclaSrv: uclaSrv}
}

func (f *fixture) resolveA(t testing.TB, name string) *Result {
	t.Helper()
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName(name), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve(%s): %v", name, err)
	}
	return res
}

func TestResolveWalksHierarchy(t *testing.T) {
	f := newFixture(t, Config{})
	res := f.resolveA(t, "www.ucla.edu.")
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := res.Answer[0].Data.String(); got != "10.9.9.9" {
		t.Errorf("answer = %s, want 10.9.9.9", got)
	}
	if res.FromCache {
		t.Error("first resolution claimed FromCache")
	}
	// Root → edu referral → ucla referral → answer: 3 outgoing queries.
	if st := f.cs.Stats(); st.QueriesOut != 3 {
		t.Errorf("QueriesOut = %d, want 3", st.QueriesOut)
	}
}

func TestResolveUsesCache(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	before := f.cs.Stats().QueriesOut
	res := f.resolveA(t, "www.ucla.edu.")
	if !res.FromCache {
		t.Error("second resolution not from cache")
	}
	if after := f.cs.Stats().QueriesOut; after != before {
		t.Errorf("cache hit still sent %d queries", after-before)
	}
}

func TestIRRsCachedAfterWalk(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	// A later query for a sibling name under ucla.edu must go directly to
	// the ucla servers (1 query), not re-walk the hierarchy.
	before := f.cs.Stats().QueriesOut
	f.resolveA(t, "ftp.ucla.edu.") // NXDOMAIN but that's fine
	if sent := f.cs.Stats().QueriesOut - before; sent != 1 {
		t.Errorf("sibling query sent %d queries, want 1 (IRRs not cached?)", sent)
	}
}

func TestChildIRRReplacesParentGlue(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("ucla.edu. NS not cached")
	}
	if e.Cred != cache.CredAuthority {
		t.Errorf("NS credibility = %v, want CredAuthority (child copy)", e.Cred)
	}
	if !e.Infra {
		t.Error("NS entry not marked infrastructure")
	}
}

func TestVanillaIRRExpiresAndRewalks(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	f.clock.Advance(2 * time.Hour) // ucla IRR TTL is 1h
	before := f.cs.Stats().QueriesOut
	f.resolveA(t, "www.ucla.edu.")
	// edu IRR (TTL 1d) still cached: edu referral + ucla answer = 2.
	if sent := f.cs.Stats().QueriesOut - before; sent != 2 {
		t.Errorf("re-walk sent %d queries, want 2", sent)
	}
}

func TestRefreshKeepsIRRAlive(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true})
	f.resolveA(t, "www.ucla.edu.")
	// Query every 30 minutes; each answer from ucla servers refreshes the
	// 1-hour IRR TTL, so after 3 hours the IRRs must still be cached.
	for i := 0; i < 6; i++ {
		f.clock.Advance(30 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("IRR expired despite refresh")
	}
	if e.Expires.Before(f.clock.Now()) {
		t.Error("IRR stale despite refresh")
	}
}

func TestNoRefreshWithoutFlag(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	for i := 0; i < 6; i++ {
		f.clock.Advance(30 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	f.cs.Cache().SweepExpired()
	e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	// The entry was re-learned each time it expired, but the expiry must
	// never exceed StoredAt + 1h, proving no refresh happened.
	if e != nil && e.Expires.Sub(e.StoredAt) > time.Hour {
		t.Errorf("vanilla entry lifetime %v exceeds TTL", e.Expires.Sub(e.StoredAt))
	}
}

func TestCNAMEChaseAcrossZones(t *testing.T) {
	f := newFixture(t, Config{})
	res := f.resolveA(t, "alias.ucla.edu.")
	if len(res.Answer) != 2 {
		t.Fatalf("answers = %v, want CNAME + A", res.Answer)
	}
	if res.Answer[0].Type() != dnswire.TypeCNAME {
		t.Errorf("first answer = %v, want CNAME", res.Answer[0])
	}
	last := res.Answer[len(res.Answer)-1]
	if last.Type() != dnswire.TypeA || last.Data.String() != "10.8.8.8" {
		t.Errorf("final answer = %v, want www.com. A 10.8.8.8", last)
	}
}

func TestNXDomain(t *testing.T) {
	f := newFixture(t, Config{})
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("missing.ucla.edu."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("RCode = %v, want NXDOMAIN", res.RCode)
	}
}

func TestOutOfBailiwickGlueResolution(t *testing.T) {
	f := newFixture(t, Config{})
	res := f.resolveA(t, "www.oob.edu.")
	if len(res.Answer) != 1 || res.Answer[0].Data.String() != "10.7.7.7" {
		t.Fatalf("answer = %v", res.Answer)
	}
}

func TestAttackFailsUncachedResolution(t *testing.T) {
	f := newFixture(t, Config{})
	f.net.SetAttack(attack.RootAndTLDs(epoch, 6*time.Hour, []dnswire.Name{
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
	}))
	_, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	if err == nil {
		t.Fatal("resolution succeeded with root and TLDs down and a cold cache")
	}
	st := f.cs.Stats()
	if st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	if st.QueriesOutFailed == 0 {
		t.Error("no failed outgoing queries recorded")
	}
}

func TestCachedIRRSurvivesAttack(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.") // warm the cache
	f.net.SetAttack(attack.RootAndTLDs(f.clock.Now(), 6*time.Hour, []dnswire.Name{
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
	}))
	f.clock.Advance(10 * time.Minute) // www A (300s) expired; ucla IRR (1h) alive
	res := f.resolveA(t, "www.ucla.edu.")
	if res.FromCache {
		t.Error("expected re-fetch from ucla servers")
	}
	if len(res.Answer) != 1 {
		t.Errorf("answer = %v", res.Answer)
	}
}

func TestAttackExpiredIRRFails(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	f.net.SetAttack(attack.Schedule{attack.NewWindow(
		f.clock.Now(), 24*time.Hour, dnswire.Root, dnswire.MustName("edu."))})
	f.clock.Advance(2 * time.Hour) // ucla IRR (1h) expired during the attack
	_, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	if err == nil {
		t.Fatal("resolution succeeded though IRRs expired and edu is down")
	}
}

func TestRenewalKeepsIRRAcrossGap(t *testing.T) {
	f := newFixture(t, Config{
		RefreshTTL: true,
		Renewal:    LRU{C: 3},
	})
	f.resolveA(t, "www.ucla.edu.")
	ctx := context.Background()
	// No queries for 3 hours; the 1-hour IRR would expire, but 3 credits
	// of renewal keep it alive through 3 extra TTL periods.
	for f.clock.Now().Before(epoch.Add(3 * time.Hour)) {
		due, ok := f.cs.NextRenewalDue()
		if !ok || due.After(epoch.Add(3*time.Hour)) {
			break
		}
		f.clock.AdvanceTo(due)
		f.cs.ProcessDueRenewals(ctx, f.clock.Now())
	}
	f.clock.AdvanceTo(epoch.Add(3 * time.Hour))
	e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil || e.Expires.Before(f.clock.Now()) {
		t.Fatal("renewal did not keep the IRR alive")
	}
	st := f.cs.Stats()
	if st.Renewals == 0 || st.RenewalQueries == 0 {
		t.Errorf("stats = %+v, want renewals recorded", st)
	}
}

func TestRenewalStopsWhenCreditExhausted(t *testing.T) {
	f := newFixture(t, Config{
		RefreshTTL: true,
		Renewal:    LRU{C: 2},
	})
	f.resolveA(t, "www.ucla.edu.")
	ctx := context.Background()
	deadline := epoch.Add(12 * time.Hour)
	for {
		due, ok := f.cs.NextRenewalDue()
		if !ok || due.After(deadline) {
			break
		}
		f.clock.AdvanceTo(due)
		f.cs.ProcessDueRenewals(ctx, f.clock.Now())
	}
	f.clock.AdvanceTo(deadline)
	f.cs.Cache().SweepExpired()
	if e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS); e != nil {
		t.Errorf("IRR still cached after credit exhausted: %+v", e)
	}
	if st := f.cs.Stats(); st.Renewals != 2 {
		t.Errorf("Renewals = %d, want exactly 2 (the credit)", st.Renewals)
	}
}

func TestRenewalDoesNotSelfSustain(t *testing.T) {
	// LFU accumulates credit per query, but renewal refetches must not
	// count as queries, or credit would grow forever.
	f := newFixture(t, Config{
		RefreshTTL: true,
		Renewal:    LFU{C: 1, Max: 100},
	})
	f.resolveA(t, "www.ucla.edu.")
	ctx := context.Background()
	deadline := epoch.Add(48 * time.Hour)
	renewCount := 0
	for {
		due, ok := f.cs.NextRenewalDue()
		if !ok || due.After(deadline) {
			break
		}
		f.clock.AdvanceTo(due)
		renewCount += f.cs.ProcessDueRenewals(ctx, f.clock.Now())
		if renewCount > 10 {
			t.Fatalf("renewal self-sustains: %d refetches with only 2 demand queries", renewCount)
		}
	}
}

func TestNegativeCaching(t *testing.T) {
	f := newFixture(t, Config{NegativeTTL: time.Hour})
	f.resolveA(t, "missing.ucla.edu.")
	before := f.cs.Stats().QueriesOut
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("missing.ucla.edu."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.RCode != dnswire.RCodeNXDomain || !res.FromCache {
		t.Errorf("result = %+v, want cached NXDOMAIN", res)
	}
	if sent := f.cs.Stats().QueriesOut - before; sent != 0 {
		t.Errorf("negative cache miss: %d queries sent", sent)
	}
}

func TestServerFailoverToSecondNS(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	// Take down only one ucla server by a targeted attack on a synthetic
	// zone name is not possible; instead remove the host from the network
	// by re-registering a dead handler.
	f.net.Register(&simnet.Host{
		Addr:    "10.0.2.1",
		Zone:    dnswire.MustName("ucla.edu."),
		Handler: transport.HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil }),
	})
	f.clock.Advance(10 * time.Minute)
	res := f.resolveA(t, "www.ucla.edu.")
	if len(res.Answer) != 1 {
		t.Fatalf("failover failed: %+v", res)
	}
}

func TestMaxTTLClampAppliesToIRRs(t *testing.T) {
	f := newFixture(t, Config{MaxTTL: 30 * time.Minute})
	f.resolveA(t, "www.ucla.edu.")
	e := f.cs.Cache().Peek(dnswire.MustName("edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("edu. NS not cached")
	}
	if e.OrigTTL > 30*time.Minute {
		t.Errorf("IRR TTL %v exceeds clamp", e.OrigTTL)
	}
}

func TestGapObserved(t *testing.T) {
	var gaps []time.Duration
	f := newFixture(t, Config{
		OnGap: func(key cache.Key, gap, _ time.Duration) {
			if key.Type == dnswire.TypeNS {
				gaps = append(gaps, gap)
			}
		},
	})
	f.resolveA(t, "www.ucla.edu.")
	f.clock.Advance(3 * time.Hour) // ucla IRR expired 2h ago
	f.resolveA(t, "www.ucla.edu.")
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly 1 NS gap", gaps)
	}
	if gaps[0] != 2*time.Hour {
		t.Errorf("gap = %v, want 2h", gaps[0])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCachingServer(Config{}); err == nil {
		t.Error("NewCachingServer accepted empty config")
	}
	if _, err := NewCachingServer(Config{Transport: &transport.Pipe{}}); err == nil {
		t.Error("NewCachingServer accepted config without root hints")
	}
}

func TestCrossZoneCNAMELoopFails(t *testing.T) {
	// alias chains that loop across zones must terminate with an error,
	// not hang: build a loop by pointing two aliases at each other.
	f := newFixture(t, Config{})
	// alias.ucla.edu -> www.com exists; craft a second fixture-level loop
	// by querying a CNAME chain longer than MaxCNAME using repeated
	// resolution of alias -> www.com (1 hop, fine), then verify the hop
	// bound directly with a small MaxCNAME.
	cs, err := NewCachingServer(Config{
		Transport: f.net,
		Clock:     f.clock,
		RootHints: []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}},
		MaxCNAME:  1,
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	// One CNAME hop is within the bound.
	if _, err := cs.Resolve(context.Background(), dnswire.MustName("alias.ucla.edu."), dnswire.TypeA); err != nil {
		t.Fatalf("single hop failed under MaxCNAME=1: %v", err)
	}
}

func TestResolveNoDataAnswer(t *testing.T) {
	f := newFixture(t, Config{})
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeAAAA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 0 {
		t.Errorf("NODATA result = %+v", res)
	}
}

func TestResolveMXAndTXTTypes(t *testing.T) {
	f := newFixture(t, Config{})
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if err != nil {
		t.Fatalf("Resolve NS: %v", err)
	}
	if len(res.Answer) != 2 {
		t.Errorf("NS answer = %v", res.Answer)
	}
}

func TestCacheStatsApproxBytes(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	st := f.cs.CacheStats()
	if st.ApproxBytes <= 0 {
		t.Errorf("ApproxBytes = %d, want > 0", st.ApproxBytes)
	}
	// Sanity: bytes scale with records (at least ~12 bytes per record).
	if st.ApproxBytes < st.Records*12 {
		t.Errorf("ApproxBytes = %d implausibly small for %d records", st.ApproxBytes, st.Records)
	}
}
