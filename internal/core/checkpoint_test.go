package core

import (
	"testing"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

func TestRenewalCreditsRoundTrip(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.resolveA(t, "www.ucla.edu.")
	f.resolveA(t, "www.ucla.edu.")
	credits := f.cs.RenewalCredits()
	if len(credits) == 0 {
		t.Fatal("no credit accrued after repeated queries")
	}

	g := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	g.cs.RestoreRenewalCredits(credits)
	got := g.cs.RenewalCredits()
	for z, c := range credits {
		if got[z] != c {
			t.Errorf("credit[%s] = %v, want %v", z, got[z], c)
		}
	}
	// Non-positive and empty-zone credit is dropped.
	g.cs.RestoreRenewalCredits(map[dnswire.Name]float64{"": 4, "junk.edu.": 0, "neg.edu.": -2})
	got = g.cs.RenewalCredits()
	for _, z := range []dnswire.Name{"", "junk.edu.", "neg.edu."} {
		if _, ok := got[z]; ok {
			t.Errorf("invalid credit for %q was stored", z)
		}
	}
}

// TestUpstreamStatesRoundTripThroughServer checks the CachingServer's
// checkpoint surface delegates to the pipeline's selection state. (The
// selector's own round-trip tests live in internal/resolve.)
func TestUpstreamStatesRoundTripThroughServer(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	states := f.cs.UpstreamStates()
	if len(states) == 0 {
		t.Fatal("no upstream state accumulated after a resolution")
	}

	g := newFixture(t, Config{})
	g.cs.RestoreUpstreamStates(states)
	again := g.cs.UpstreamStates()
	if len(again) != len(states) {
		t.Fatalf("restored %d states, want %d", len(again), len(states))
	}
	for i := range states {
		if again[i] != states[i] {
			t.Errorf("state[%d] = %+v, want %+v", i, again[i], states[i])
		}
	}
}

func TestRearmRenewalsSchedulesRestoredIRRs(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.resolveA(t, "www.ucla.edu.")

	// A second server receives the cache contents via Restore (the
	// persistence path), which bypasses Put and thus renewal scheduling.
	g := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.cs.Cache().Range(func(e *cache.Entry) bool {
		g.cs.Cache().Restore(cache.RestoreEntry{
			RRs: e.RRs, Cred: e.Cred, Infra: e.Infra,
			OrigTTL: e.OrigTTL, Expires: e.Expires, StoredAt: e.StoredAt,
		})
		return true
	})
	if _, ok := g.cs.NextRenewalDue(); ok {
		t.Fatal("renewal scheduled before RearmRenewals — test premise broken")
	}
	g.cs.RearmRenewals()
	if _, ok := g.cs.NextRenewalDue(); !ok {
		t.Error("RearmRenewals scheduled nothing for restored IRRs")
	}

	// Without a renewal policy it is a no-op.
	h := newFixture(t, Config{})
	h.cs.RearmRenewals()
	if _, ok := h.cs.NextRenewalDue(); ok {
		t.Error("RearmRenewals scheduled work with renewal off")
	}
}
