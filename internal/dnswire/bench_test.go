package dnswire

// Micro-benchmarks for the wire hot path; run via `make bench`, which
// also records allocs/op in BENCH_10.json. The sample message is the
// round-trip fixture: 1 question, 1 answer, 2 authority, 2 additional,
// with heavily compressible names.

import "testing"

// BenchmarkPack measures one-shot packing (fresh output buffer per call).
func BenchmarkPack(b *testing.B) {
	msg := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendPack measures packing into a caller-reused buffer — the
// transport servers' steady state, which must be allocation-free.
func BenchmarkAppendPack(b *testing.B) {
	msg := sampleMessage()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.AppendPack(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpack measures arena-style decoding: one wire copy, fields
// sliced from it, repeated names served from the per-message cache.
func BenchmarkUnpack(b *testing.B) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
