// Package cache mirrors the resilientdns cache mutation surface for
// the taintwire fixtures (the analyzer matches sinks by shape).
package cache

// Credibility mirrors the ranking the real chokepoints assign.
type Credibility int

// Cache is the fixture stand-in for the sharded cache.
type Cache struct{}

// Put is a mutation sink.
func (c *Cache) Put(wire []byte, cred Credibility) {}

// PutOrigin is a mutation sink.
func (c *Cache) PutOrigin(wire []byte, cred Credibility, origin int) {}

// Restore is the recovery-path mutation sink.
func (c *Cache) Restore(wire []byte) bool { return true }
