// Package wallclock_bad is a failing fixture: wall-clock reads in a
// determinism-critical package.
package wallclock_bad

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want "time.Now in determinism-critical package"
}

// Age measures elapsed wall time.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since in determinism-critical package"
}

// Wait blocks on the wall clock two ways.
func Wait() {
	time.Sleep(time.Second) // want "time.Sleep in determinism-critical package"
	<-time.After(time.Second) // want "time.After in determinism-critical package"
}

// Poll builds a wall-clock ticker.
func Poll() *time.Ticker {
	return time.NewTicker(time.Minute) // want "time.NewTicker in determinism-critical package"
}
