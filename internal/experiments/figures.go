package experiments

import (
	"fmt"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/sim"
	"resilientdns/internal/workload"
)

// Table1 reproduces Table 1: per-trace statistics. Requests Out comes from
// a vanilla no-attack replay, as in the paper's collected traces.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "DNS trace statistics (synthetic stand-ins for the university traces)",
		Columns: []string{"Trace", "Duration", "Clients", "Requests In", "Requests Out", "Names", "Zones"},
	}
	all := append(append([]workload.Trace(nil), s.traces...), s.month)
	for _, tr := range all {
		res, err := s.runBase(tr, sim.Vanilla(), 0)
		if err != nil {
			return nil, err
		}
		st := workload.ComputeStats(tr)
		t.Rows = append(t.Rows, []string{
			st.Label,
			fmt.Sprintf("%d days", int(st.Duration.Hours()/24)),
			fmt.Sprintf("%d", st.Clients),
			fmt.Sprintf("%d", st.RequestsIn),
			fmt.Sprintf("%d", res.MessagesOut()),
			fmt.Sprintf("%d", st.Names),
			fmt.Sprintf("%d", st.Zones),
		})
	}
	t.Notes = append(t.Notes, "requests out < requests in (caching absorbs most queries)")
	return t, nil
}

// Fig3 reproduces Figure 3: the CDF of the gap between a zone IRR's expiry
// and the next query needing it, absolute and as a fraction of the TTL.
func (s *Suite) Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Time-gap duration between IRR expiry and next query (CDF)",
		Columns: []string{"Metric", "x", "P(gap <= x)"},
	}
	var abs, frac []float64
	gather := func(tr workload.Trace) error {
		res, err := s.runBase(tr, sim.Vanilla(), 0)
		if err != nil {
			return err
		}
		abs = append(abs, resGaps(res, false)...)
		frac = append(frac, resGaps(res, true)...)
		return nil
	}
	for _, tr := range s.traces {
		if err := gather(tr); err != nil {
			return nil, err
		}
	}
	if err := gather(s.month); err != nil {
		return nil, err
	}
	absCDF := cdfOf(abs)
	fracCDF := cdfOf(frac)
	for _, days := range []float64{0.25, 0.5, 1, 2, 3, 4, 5, 7} {
		t.Rows = append(t.Rows, []string{
			"gap (days)", fmt.Sprintf("%.2f", days), pct(absCDF.At(days * 86400)),
		})
	}
	for _, f := range []float64{0.1, 0.5, 1, 2, 5, 10, 20, 50} {
		t.Rows = append(t.Rows, []string{
			"gap / TTL", fmt.Sprintf("%.1f", f), pct(fracCDF.At(f)),
		})
	}
	t.Notes = append(t.Notes,
		"almost all gaps are under 5 days in absolute time",
		"relative gaps vary far more because IRR TTLs span minutes to days")
	return t, nil
}

// failureFigure runs scheme over TRC1–TRC5 for every attack duration and
// tabulates the SR-level and CS-level failed-query percentages.
func (s *Suite) failureFigure(id, title string, scheme sim.Scheme, notes ...string) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"Trace",
			"SR 3h", "SR 6h", "SR 12h", "SR 24h",
			"CS 3h", "CS 6h", "CS 12h", "CS 24h"},
		Notes: notes,
	}
	for _, tr := range s.traces {
		row := []string{tr.Label}
		var sr, cs []string
		for _, dur := range attackDurations {
			res, err := s.runBase(tr, scheme, dur)
			if err != nil {
				return nil, err
			}
			sr = append(sr, pct(res.SRFailRate()))
			cs = append(cs, pct(res.CSFailRate()))
		}
		row = append(row, sr...)
		row = append(row, cs...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4 reproduces Figure 4: vanilla DNS under the root+TLD blackout.
func (s *Suite) Fig4() (*Table, error) {
	return s.failureFigure("fig4", "Vanilla DNS: failed queries during root+TLD attack",
		sim.Vanilla(),
		"failure rate grows with attack duration",
		"CS-level failure rate exceeds SR-level (caches shield stub resolvers)")
}

// Fig5 reproduces Figure 5: the TTL-refresh scheme.
func (s *Suite) Fig5() (*Table, error) {
	return s.failureFigure("fig5", "TTL Refresh: failed queries during root+TLD attack",
		sim.Refresh(),
		"at least ~50% lower failure rates than vanilla in most settings")
}

// renewalFigure runs refresh+renewal for the three credit values against
// the vanilla baseline at the 6-hour attack, as Figures 6–9 do.
func (s *Suite) renewalFigure(id, title string, mk func(c float64) core.RenewalPolicy) (*Table, error) {
	const dur = 6 * time.Hour
	cols := []string{"Trace", "DNS SR", "DNS CS"}
	for _, c := range renewalCredits {
		cols = append(cols, fmt.Sprintf("c=%g SR", c), fmt.Sprintf("c=%g CS", c))
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	for _, tr := range s.traces {
		base, err := s.runBase(tr, sim.Vanilla(), dur)
		if err != nil {
			return nil, err
		}
		row := []string{tr.Label, pct(base.SRFailRate()), pct(base.CSFailRate())}
		for _, c := range renewalCredits {
			res, err := s.runBase(tr, sim.RefreshRenew(mk(c)), dur)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.SRFailRate()), pct(res.CSFailRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "higher credit → lower failure rate; order-of-magnitude better than DNS")
	return t, nil
}

// Fig6 reproduces Figure 6: TTL refresh + LRU renewal.
func (s *Suite) Fig6() (*Table, error) {
	return s.renewalFigure("fig6", "TTL Refresh + Renew (LRU), 6h attack",
		func(c float64) core.RenewalPolicy { return core.LRU{C: c} })
}

// Fig7 reproduces Figure 7: TTL refresh + LFU renewal.
func (s *Suite) Fig7() (*Table, error) {
	return s.renewalFigure("fig7", "TTL Refresh + Renew (LFU), 6h attack",
		func(c float64) core.RenewalPolicy { return core.LFU{C: c, Max: core.DefaultLFUMax(c)} })
}

// Fig8 reproduces Figure 8: TTL refresh + adaptive LRU renewal.
func (s *Suite) Fig8() (*Table, error) {
	return s.renewalFigure("fig8", "TTL Refresh + Renew (A-LRU), 6h attack",
		func(c float64) core.RenewalPolicy { return core.ALRU{C: c} })
}

// Fig9 reproduces Figure 9: TTL refresh + adaptive LFU renewal.
func (s *Suite) Fig9() (*Table, error) {
	return s.renewalFigure("fig9", "TTL Refresh + Renew (A-LFU), 6h attack",
		func(c float64) core.RenewalPolicy { return core.ALFU{C: c, MaxDays: core.DefaultLFUMax(c)} })
}

// longTTLFigure runs scheme over the long-TTL topologies, 6-hour attack.
func (s *Suite) longTTLFigure(id, title string, scheme sim.Scheme, notes ...string) (*Table, error) {
	const dur = 6 * time.Hour
	cols := []string{"Trace", "DNS SR", "DNS CS"}
	for _, ttl := range longTTLValues {
		d := int(ttl.Hours() / 24)
		cols = append(cols, fmt.Sprintf("%dd SR", d), fmt.Sprintf("%dd CS", d))
	}
	t := &Table{ID: id, Title: title, Columns: cols, Notes: notes}
	for _, tr := range s.traces {
		base, err := s.runBase(tr, sim.Vanilla(), dur)
		if err != nil {
			return nil, err
		}
		row := []string{tr.Label, pct(base.SRFailRate()), pct(base.CSFailRate())}
		for _, ttl := range longTTLValues {
			tree, err := s.longTree(ttl)
			if err != nil {
				return nil, err
			}
			res, err := s.run(tree, fmt.Sprintf("ttl%d", int(ttl.Hours())), tr, scheme, dur, 0, false)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.SRFailRate()), pct(res.CSFailRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 reproduces Figure 10: TTL refresh + long-TTL (operators raise the
// IRR TTL to 1/3/5/7 days).
func (s *Suite) Fig10() (*Table, error) {
	return s.longTTLFigure("fig10", "TTL Refresh + Long-TTL, 6h attack", sim.Refresh(),
		"5-day TTL is nearly as good as 7-day (gap CDF < 5 days, Fig 3)",
		"matches the best renewal policy's resilience")
}

// Fig11 reproduces Figure 11: refresh + A-LFU(5) renewal + long-TTL.
func (s *Suite) Fig11() (*Table, error) {
	scheme := sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)})
	scheme.Name = "Combination"
	return s.longTTLFigure("fig11", "TTL Refresh + Renew (A-LFU 5) + Long-TTL, 6h attack", scheme,
		"a 3-day TTL already reaches the maximum resilience")
}
