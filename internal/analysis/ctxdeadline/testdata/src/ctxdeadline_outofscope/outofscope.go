// Package ctxdeadline_outofscope has the forbidden flow but carries no
// // want expectations: it stands in for the simulator and experiment
// packages, where wall-clock deadlines would break virtual-clock
// determinism and reporting is off by design.
package ctxdeadline_outofscope

import "context"

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Replay would be flagged in a scoped package.
func Replay(tr Transport) {
	tr.Exchange(context.Background(), "10.0.0.1", nil)
}
