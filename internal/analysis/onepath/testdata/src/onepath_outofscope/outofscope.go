// Package onepath_outofscope has the forbidden shape but is not in the
// analyzer's -pkgs scope: transport internals, the stub client, and
// the zone-transfer code exchange on their own behalf legitimately.
package onepath_outofscope

import "context"

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// TCPFallback is the transport-internal retry shape: no diagnostics,
// the package is out of scope.
func TCPFallback(ctx context.Context, tr Transport, server string, q []byte) ([]byte, error) {
	return tr.Exchange(ctx, server, q)
}
