package core_test

import (
	"context"
	"fmt"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
)

// Example builds the paper's resilient caching server over a simulated
// hierarchy and resolves a name twice: the second answer comes from cache.
func Example() {
	params := topology.DefaultParams(1)
	params.NumTLDs = 3
	params.SLDsPerTLD = 5
	tree, err := topology.Generate(params)
	if err != nil {
		panic(err)
	}
	clock := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := simnet.New(clock, 1)
	tree.Install(network)

	cs, err := core.NewCachingServer(core.Config{
		Transport:  network,
		Clock:      clock,
		RootHints:  tree.RootHints,
		RefreshTTL: true,                         // §4 TTL refresh
		Renewal:    core.ALFU{C: 5, MaxDays: 50}, // §4 adaptive-LFU renewal
	})
	if err != nil {
		panic(err)
	}

	name := tree.QueryableNames()[0].Name
	first, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
	if err != nil {
		panic(err)
	}
	second, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
	if err != nil {
		panic(err)
	}
	fmt.Println("first from cache:", first.FromCache)
	fmt.Println("second from cache:", second.FromCache)
	// Output:
	// first from cache: false
	// second from cache: true
}
