package dnssec

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

var (
	now        = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	inception  = now.Add(-time.Hour)
	expiration = now.Add(30 * 24 * time.Hour)
)

// detRand is a deterministic reader for reproducible keys in tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func testSigner(t *testing.T, zoneName string, seed int64) *Signer {
	t.Helper()
	s, err := GenerateSigner(dnswire.MustName(zoneName), 3600, detRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatalf("GenerateSigner: %v", err)
	}
	return s
}

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name: dnswire.MustName(name), Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name: dnswire.MustName(name), Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func TestSignAndVerifyRRSet(t *testing.T) {
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{
		rrA("www.example.", 300, "192.0.2.1"),
		rrA("www.example.", 300, "192.0.2.2"),
	}
	sig, err := s.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	if err := VerifyRRSet(s.Key, sig, set, now); err != nil {
		t.Errorf("VerifyRRSet: %v", err)
	}
}

func TestVerifyRejectsTamperedData(t *testing.T) {
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	sig, err := s.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	forged := []dnswire.RR{rrA("www.example.", 300, "192.0.2.99")}
	if err := VerifyRRSet(s.Key, sig, forged, now); err == nil {
		t.Error("tampered RRset verified")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1 := testSigner(t, "example.", 1)
	s2 := testSigner(t, "example.", 2)
	set := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	sig, err := s1.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	if err := VerifyRRSet(s2.Key, sig, set, now); err == nil {
		t.Error("signature verified with the wrong key")
	}
}

func TestVerifyRespectsValidityWindow(t *testing.T) {
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	sig, err := s.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	if err := VerifyRRSet(s.Key, sig, set, inception.Add(-time.Hour)); err == nil {
		t.Error("signature verified before inception")
	}
	if err := VerifyRRSet(s.Key, sig, set, expiration.Add(time.Hour)); err == nil {
		t.Error("signature verified after expiration")
	}
}

func TestVerifyIgnoresRRsetOrderAndTTL(t *testing.T) {
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{
		rrA("www.example.", 300, "192.0.2.2"),
		rrA("www.example.", 300, "192.0.2.1"),
	}
	sig, err := s.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	reordered := []dnswire.RR{set[1], set[0]}
	reordered[0].TTL = 17 // decremented cached TTL must not break verification
	reordered[1].TTL = 17
	if err := VerifyRRSet(s.Key, sig, reordered, now); err != nil {
		t.Errorf("VerifyRRSet with reordered/decremented set: %v", err)
	}
}

func TestKeyTagStable(t *testing.T) {
	s := testSigner(t, "example.", 1)
	a, err := KeyTag(s.Key)
	if err != nil {
		t.Fatalf("KeyTag: %v", err)
	}
	b, err := KeyTag(s.Key)
	if err != nil {
		t.Fatalf("KeyTag: %v", err)
	}
	if a != b {
		t.Errorf("key tag unstable: %d vs %d", a, b)
	}
	other := testSigner(t, "example.", 2)
	c, _ := KeyTag(other.Key)
	if a == c {
		t.Error("different keys produced the same tag (unlikely)")
	}
}

func TestDSMatchesKey(t *testing.T) {
	s := testSigner(t, "example.", 1)
	dsRR, err := DSFromKey(s.Zone, s.Key, 3600)
	if err != nil {
		t.Fatalf("DSFromKey: %v", err)
	}
	ds := dsRR.Data.(dnswire.DS)
	if err := VerifyDS(ds, s.Zone, s.Key); err != nil {
		t.Errorf("VerifyDS: %v", err)
	}
	other := testSigner(t, "example.", 2)
	if err := VerifyDS(ds, s.Zone, other.Key); err == nil {
		t.Error("DS verified against the wrong key")
	}
}

func TestDNSSECRecordsWireRoundTrip(t *testing.T) {
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	sig, err := s.SignRRSet(set, inception, expiration)
	if err != nil {
		t.Fatalf("SignRRSet: %v", err)
	}
	dsRR, err := DSFromKey(s.Zone, s.Key, 3600)
	if err != nil {
		t.Fatalf("DSFromKey: %v", err)
	}
	m := &dnswire.Message{ID: 1, Answer: []dnswire.RR{s.KeyRR(), sig, dsRR}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	// The round-tripped signature must still verify.
	gotSig := got.Answer[1]
	gotKey := got.Answer[0].Data.(dnswire.DNSKEY)
	if err := VerifyRRSet(gotKey, gotSig, set, now); err != nil {
		t.Errorf("round-tripped signature failed: %v", err)
	}
	gotDS := got.Answer[2].Data.(dnswire.DS)
	if err := VerifyDS(gotDS, s.Zone, gotKey); err != nil {
		t.Errorf("round-tripped DS failed: %v", err)
	}
}

func TestSignZone(t *testing.T) {
	z := zone.New(dnswire.MustName("example."))
	z.MustAdd(rrNS("example.", 3600, "ns1.example."))
	z.MustAdd(rrA("ns1.example.", 3600, "192.0.2.1"))
	z.MustAdd(rrA("www.example.", 300, "192.0.2.80"))
	// A delegation whose records must NOT be signed.
	z.MustAdd(rrNS("child.example.", 3600, "ns1.child.example."))
	z.MustAdd(rrA("ns1.child.example.", 3600, "192.0.2.9"))

	s := testSigner(t, "example.", 3)
	dsRR, err := SignZone(z, s, inception, expiration)
	if err != nil {
		t.Fatalf("SignZone: %v", err)
	}
	if dsRR.Type() != dnswire.TypeDS {
		t.Errorf("SignZone returned %s, want DS", dsRR.Type())
	}

	// The apex DNSKEY is published and signed.
	if set := z.RRSet(dnswire.MustName("example."), dnswire.TypeDNSKEY); len(set) != 1 {
		t.Fatalf("DNSKEY set = %v", set)
	}
	sigs := 0
	for _, rr := range z.Records() {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok {
			sigs++
			if strings.HasSuffix(string(rr.Name), "child.example.") {
				t.Errorf("delegation data signed: %v", rr)
			}
			// Every signature must verify against the zone key.
			covered := z.RRSet(rr.Name, sig.TypeCovered)
			if err := VerifyRRSet(s.Key, rr, covered, now); err != nil {
				t.Errorf("signature over %s %s invalid: %v", rr.Name, sig.TypeCovered, err)
			}
		}
	}
	// Apex NS, apex DNSKEY, ns1 A, www A — four signed RRsets.
	if sigs != 4 {
		t.Errorf("zone has %d RRSIGs, want 4", sigs)
	}
}

func TestValidatorChain(t *testing.T) {
	// Root signs a DS for child; child's keys become trusted; a child
	// answer validates.
	rootSigner := testSigner(t, ".", 10)
	childSigner := testSigner(t, "example.", 11)

	dsRR, err := DSFromKey(childSigner.Zone, childSigner.Key, 3600)
	if err != nil {
		t.Fatalf("DSFromKey: %v", err)
	}
	dsSet := []dnswire.RR{dsRR}
	dsSig, err := rootSigner.SignRRSet(dsSet, inception, expiration)
	if err != nil {
		t.Fatalf("sign DS: %v", err)
	}
	keySet := []dnswire.RR{childSigner.KeyRR()}
	keySig, err := childSigner.SignRRSet(keySet, inception, expiration)
	if err != nil {
		t.Fatalf("sign DNSKEY: %v", err)
	}

	v := NewValidator(rootSigner.KeyRR())
	if err := v.ValidateDelegation(dnswire.Root, childSigner.Zone, dsSet, dsSig, keySet, keySig, now); err != nil {
		t.Fatalf("ValidateDelegation: %v", err)
	}

	answer := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	answerSig, err := childSigner.SignRRSet(answer, inception, expiration)
	if err != nil {
		t.Fatalf("sign answer: %v", err)
	}
	if err := v.ValidateRRSet(childSigner.Zone, answerSig, answer, now); err != nil {
		t.Errorf("ValidateRRSet: %v", err)
	}
}

func TestValidatorRejectsForgedDelegation(t *testing.T) {
	rootSigner := testSigner(t, ".", 10)
	childSigner := testSigner(t, "example.", 11)
	attacker := testSigner(t, "example.", 12)

	// DS points at the legitimate child key, but the attacker presents
	// their own key set.
	dsRR, _ := DSFromKey(childSigner.Zone, childSigner.Key, 3600)
	dsSet := []dnswire.RR{dsRR}
	dsSig, _ := rootSigner.SignRRSet(dsSet, inception, expiration)
	forgedKeys := []dnswire.RR{attacker.KeyRR()}
	forgedSig, _ := attacker.SignRRSet(forgedKeys, inception, expiration)

	v := NewValidator(rootSigner.KeyRR())
	if err := v.ValidateDelegation(dnswire.Root, childSigner.Zone, dsSet, dsSig, forgedKeys, forgedSig, now); err == nil {
		t.Error("forged delegation validated")
	}
}

func TestValidatorNoAnchor(t *testing.T) {
	v := NewValidator()
	s := testSigner(t, "example.", 1)
	set := []dnswire.RR{rrA("www.example.", 300, "192.0.2.1")}
	sig, _ := s.SignRRSet(set, inception, expiration)
	if err := v.ValidateRRSet(s.Zone, sig, set, now); err == nil {
		t.Error("validation succeeded without a trust anchor")
	}
}

func TestSignRRSetRejectsMixedSet(t *testing.T) {
	s := testSigner(t, "example.", 1)
	mixed := []dnswire.RR{
		rrA("www.example.", 300, "192.0.2.1"),
		rrA("ftp.example.", 300, "192.0.2.2"),
	}
	if _, err := s.SignRRSet(mixed, inception, expiration); err == nil {
		t.Error("mixed RRset signed")
	}
}

func TestSignRRSetRejectsOutOfZone(t *testing.T) {
	s := testSigner(t, "example.", 1)
	out := []dnswire.RR{rrA("www.other.", 300, "192.0.2.1")}
	if _, err := s.SignRRSet(out, inception, expiration); err == nil {
		t.Error("out-of-zone RRset signed")
	}
}

func TestSignedZoneStringRoundTrip(t *testing.T) {
	// A zone signed in-memory serialises to master-file format and
	// re-parses losslessly, signatures included.
	z, err := zone.ParseString(`
@	3600	IN	NS	ns.example.
ns	3600	IN	A	192.0.2.1
www	300	IN	A	192.0.2.80
`, dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := testSigner(t, "example.", 77)
	if _, err := SignZone(z, s, inception, expiration); err != nil {
		t.Fatalf("SignZone: %v", err)
	}
	z2, err := zone.ParseString(z.String(), z.Origin())
	if err != nil {
		t.Fatalf("reparse signed zone: %v", err)
	}
	if z2.RecordCount() != z.RecordCount() {
		t.Errorf("record count %d after round trip, want %d", z2.RecordCount(), z.RecordCount())
	}
	// Signatures still verify after the textual round trip.
	sigs := z2.RRSet(dnswire.MustName("www.example."), dnswire.TypeRRSIG)
	if len(sigs) != 1 {
		t.Fatalf("RRSIG = %v", sigs)
	}
	set := z2.RRSet(dnswire.MustName("www.example."), dnswire.TypeA)
	if err := VerifyRRSet(s.Key, sigs[0], set, now); err != nil {
		t.Errorf("round-tripped signature invalid: %v", err)
	}
}
