// Package taintwire taint-tracks network-origin bytes into the cache.
//
// The paper's poisoning defenses (bailiwick filtering, credibility
// ranking, the infra/answer split) all live in one place: the resolve
// ingest chokepoints, which classify every RRset before it touches
// cache.Put. The cache-poisoning failure mode is therefore not "the
// validator has a bug" but "somebody added a second door": a code path
// that takes bytes straight off the wire — an Exchange result, a mesh
// peer response, journal bytes replayed from disk — and writes them
// into the cache or the persistence layer without passing through the
// validators. This analyzer makes that door impossible to add quietly.
//
// It is a may-tainted dataflow over the shared def-use index (see
// internal/analysis/dataflow; the vendored toolchain has no go/ssa):
//
// Sources (network-origin bytes):
//   - results of Exchange-shaped methods (the transport.Transport
//     shape: method named Exchange, first parameter context.Context);
//   - results of a method named Call in a package named mesh (peer
//     responses are exactly as attacker-influenced as upstream ones);
//   - os.ReadFile in a package named persist (journal and snapshot
//     bytes were cached from the network, and disk can be tampered);
//   - calls to functions carrying the ReturnsTainted fact.
//
// Propagation is conservative: taint survives slicing, indexing,
// field selection, composite literals, conversions, append, and calls
// that pass payload-typed arguments ([]byte, dnswire types) through to
// payload-typed results — dnswire.Unpack parses hostile input, it does
// not sanitize it. Sanitization is positional, not computational: the
// only way to launder taint is to route the write through a chokepoint.
//
// Sinks: methods named Put, PutOrigin, or Restore in a package named
// cache, and Observe in a package named persist. Every argument is
// checked. A non-chokepoint function that passes its own parameter to
// a sink exports SinkViaParam, which turns its callers into sinks
// across package boundaries; a function returning source-derived
// payloads exports ReturnsTainted. Each package also exports a
// Sanitizers package fact naming the chokepoints it declares, so
// importers recognize sanctioned destinations without re-deriving
// them.
//
// Chokepoints (-chokepoints, full names as printed by
// dataflow.FuncString) default to the resolve ingest chain, persist
// recovery, and cache.Put's own delegation to PutOrigin. Sink calls
// inside a chokepoint body are the sanctioned writes and are exempt.
// Test files are NOT exempt: a test that feeds exchanged bytes
// straight into cache.Put is rehearsing the bug this analyzer exists
// to prevent.
package taintwire

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"resilientdns/internal/analysis/dataflow"
	"resilientdns/internal/analysis/lintutil"
)

const name = "taintwire"

const defaultChokepoints = "resilientdns/internal/resolve.(*Resolver).Ingest," +
	"resilientdns/internal/resolve.(*Resolver).IngestFrom," +
	"resilientdns/internal/resolve.(*Resolver).putInfraAware," +
	"resilientdns/internal/persist.(*Store).Recover," +
	"resilientdns/internal/cache.(*Cache).Put"

// ReturnsTainted marks a function whose results carry network-origin
// bytes (a wrapper around a source): its call sites are sources.
type ReturnsTainted struct{}

func (*ReturnsTainted) AFact() {}

func (*ReturnsTainted) String() string { return "ReturnsTainted" }

// SinkViaParam marks a function that passes the listed parameters into
// a cache/persist mutation outside any chokepoint: its callers must
// not hand it tainted bytes.
type SinkViaParam struct {
	Params []int
}

func (*SinkViaParam) AFact() {}

func (f *SinkViaParam) String() string { return "SinkViaParam" }

// Sanitizers is the per-package summary of declared chokepoints, so an
// importing package can recognize sanctioned destinations from the
// export data alone.
type Sanitizers struct {
	Funcs []string
}

func (*Sanitizers) AFact() {}

func (f *Sanitizers) String() string { return "Sanitizers" }

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "taint-track network-origin bytes (Exchange results, mesh peer responses, journal bytes) and " +
		"flag flows into cache.Put/PutOrigin/Restore or persist mutation that bypass the validated " +
		"ingest chokepoints",
	Requires:  []*analysis.Analyzer{dataflow.Builder},
	FactTypes: []analysis.Fact{(*ReturnsTainted)(nil), (*SinkViaParam)(nil), (*Sanitizers)(nil)},
	Run:       run,
}

func init() {
	Analyzer.Flags.String("chokepoints", defaultChokepoints,
		"comma-separated full function names (dataflow.FuncString form) through which all cache/persist mutation must flow")
}

type taint struct {
	kind  int
	param int
}

const (
	tSource = iota
	tParam
)

type checker struct {
	pass        *analysis.Pass
	df          *dataflow.Info
	supp        *lintutil.Suppressor
	chokepoints map[string]bool
	// returns marks same-package functions whose results are tainted;
	// sinks maps same-package functions to parameter indices that reach
	// a sink. Both grow to a fixpoint.
	returns map[*types.Func]bool
	sinks   map[*types.Func]map[int]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:        pass,
		df:          pass.ResultOf[dataflow.Builder].(*dataflow.Info),
		supp:        lintutil.NewSuppressor(pass),
		chokepoints: make(map[string]bool),
		returns:     make(map[*types.Func]bool),
		sinks:       make(map[*types.Func]map[int]bool),
	}
	for _, s := range strings.Split(pass.Analyzer.Flags.Lookup("chokepoints").Value.String(), ",") {
		if s = strings.TrimSpace(s); s != "" {
			c.chokepoints[s] = true
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fi := range c.df.Funcs {
			if fi.Obj == nil || fi.Parent != nil {
				continue
			}
			if c.summarize(fi) {
				changed = true
			}
		}
	}

	// Export facts: object facts for wrappers and sink conduits, and
	// the package's sanitizer summary.
	var declared []string
	for _, fi := range c.df.Funcs {
		if fi.Obj == nil || fi.Parent != nil {
			continue
		}
		if c.isChokepoint(fi.Obj) {
			declared = append(declared, dataflow.FuncString(fi.Obj))
		}
	}
	if len(declared) > 0 {
		sort.Strings(declared)
		c.pass.ExportPackageFact(&Sanitizers{Funcs: declared})
	}
	for fn := range c.returns {
		c.pass.ExportObjectFact(fn, &ReturnsTainted{})
	}
	for fn, params := range c.sinks {
		if len(params) == 0 {
			continue
		}
		idx := make([]int, 0, len(params))
		for i := range params {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		c.pass.ExportObjectFact(fn, &SinkViaParam{Params: idx})
	}

	for _, fi := range c.df.Funcs {
		if fi.Parent != nil {
			continue
		}
		c.analyze(fi, true)
	}
	c.supp.ReportStale(pass, name)
	return nil, nil
}

// summarize grows the fixpoint state for fi: parameter flows into
// sinks (SinkViaParam) and source-derived returns (ReturnsTainted).
// It reports whether anything changed.
func (c *checker) summarize(fi *dataflow.FuncInfo) bool {
	before := len(c.sinks[fi.Obj])
	beforeRet := c.returns[fi.Obj]
	c.analyze(fi, false)

	// ReturnsTainted: any return statement whose results carry source
	// taint. Nested closures' returns are their own, not fi's.
	if !c.returns[fi.Obj] {
		params := c.paramIndex(fi)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				for _, t := range c.taints(res, params, make(map[*types.Var]bool)) {
					if t.kind == tSource {
						c.returns[fi.Obj] = true
					}
				}
			}
			return true
		}
		ast.Inspect(fi.Body, walk)
	}
	return len(c.sinks[fi.Obj]) != before || c.returns[fi.Obj] != beforeRet
}

// analyze walks fi's body (closures included). With report=false it
// accumulates SinkViaParam state; with report=true it emits
// diagnostics for source taint reaching a sink.
func (c *checker) analyze(fi *dataflow.FuncInfo, report bool) {
	if fi.Obj != nil && c.isChokepoint(fi.Obj) {
		return // the sanctioned writes live here
	}
	params := c.paramIndex(fi)
	ast.Inspect(fi.Node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := c.df.Callee(call)
		if callee == nil {
			return true
		}
		sinkArgs := c.sinkParams(callee)
		if len(sinkArgs) == 0 {
			return true
		}
		tainted := false
		for _, argIdx := range sinkArgs {
			if argIdx >= len(call.Args) {
				continue
			}
			for _, t := range c.taints(call.Args[argIdx], params, make(map[*types.Var]bool)) {
				switch t.kind {
				case tSource:
					tainted = true
				case tParam:
					if !report && fi.Obj != nil {
						set := c.sinks[fi.Obj]
						if set == nil {
							set = make(map[int]bool)
							c.sinks[fi.Obj] = set
						}
						set[t.param] = true
					}
				}
			}
		}
		if tainted && report {
			c.supp.Report(c.pass, name, call.Pos(),
				"network-origin bytes flow into %s outside the validated ingest chokepoints: "+
					"route cache and persist mutation through resolve.Ingest/IngestFrom (or persist recovery)",
				callee.Name())
		}
		return true
	})
}

// sinkParams returns the argument indices to check when calling fn:
// every argument for a shape-recognized cache/persist mutator, the
// fact-listed parameters for a sink conduit, nil otherwise.
func (c *checker) sinkParams(fn *types.Func) []int {
	if c.isChokepoint(fn) {
		return nil // sanctioned destination, not a sink
	}
	if sinkShaped(fn) {
		sig := fn.Type().(*types.Signature)
		idx := make([]int, sig.Params().Len())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if set, ok := c.sinks[fn]; ok && len(set) > 0 {
		idx := make([]int, 0, len(set))
		for i := range set {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		return idx
	}
	var fact SinkViaParam
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// sinkShaped matches the cache/persist mutation surface by shape, so
// the analyzer also fires on fixture copies under testdata.
func sinkShaped(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg()
	inPkg := func(n string) bool {
		return pkg.Name() == n || strings.HasSuffix(pkg.Path(), "/"+n)
	}
	switch fn.Name() {
	case "Put", "PutOrigin", "Restore":
		return inPkg("cache")
	case "Observe":
		return inPkg("persist")
	}
	return false
}

// isChokepoint reports whether fn is a sanctioned mutation path: named
// in -chokepoints, or listed in its own package's Sanitizers fact.
func (c *checker) isChokepoint(fn *types.Func) bool {
	full := dataflow.FuncString(fn)
	if c.chokepoints[full] {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		var fact Sanitizers
		if c.pass.ImportPackageFact(fn.Pkg(), &fact) {
			for _, f := range fact.Funcs {
				if f == full {
					return true
				}
			}
		}
	}
	return false
}

// paramIndex maps fi's own parameters to their signature indices.
func (c *checker) paramIndex(fi *dataflow.FuncInfo) map[*types.Var]int {
	if fi.Obj == nil {
		return nil
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[*types.Var]int)
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = i
	}
	return out
}

// taints computes the provenance set of an expression. params maps the
// enclosing declaration's parameters to indices; seen breaks cycles.
func (c *checker) taints(e ast.Expr, params map[*types.Var]int, seen map[*types.Var]bool) []taint {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.taints(e.X, params, seen)
	case *ast.Ident:
		v := c.df.VarOf(e)
		if v == nil {
			return nil
		}
		if i, ok := params[v]; ok {
			return []taint{{kind: tParam, param: i}}
		}
		if seen[v] {
			return nil
		}
		seen[v] = true
		var out []taint
		for _, d := range c.df.Defs(v) {
			out = append(out, c.taints(d.RHS, params, seen)...)
		}
		return out
	case *ast.CallExpr:
		return c.callTaints(e, params, seen)
	case *ast.SelectorExpr:
		return c.taints(e.X, params, seen)
	case *ast.IndexExpr:
		return c.taints(e.X, params, seen)
	case *ast.SliceExpr:
		return c.taints(e.X, params, seen)
	case *ast.StarExpr:
		return c.taints(e.X, params, seen)
	case *ast.UnaryExpr:
		return c.taints(e.X, params, seen)
	case *ast.TypeAssertExpr:
		return c.taints(e.X, params, seen)
	case *ast.KeyValueExpr:
		return c.taints(e.Value, params, seen)
	case *ast.CompositeLit:
		var out []taint
		for _, elt := range e.Elts {
			out = append(out, c.taints(elt, params, seen)...)
		}
		return out
	}
	return nil
}

// callTaints resolves a call's taint: sources by shape or fact, plus
// conservative pass-through of payload-typed arguments.
func (c *checker) callTaints(call *ast.CallExpr, params map[*types.Var]int, seen map[*types.Var]bool) []taint {
	// Type conversion: dnswire.Name(b) keeps b's taint.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.taints(call.Args[0], params, seen)
	}
	fn := c.df.Callee(call)
	if fn == nil {
		// Builtin (append, copy) or dynamic call: pass payload
		// arguments through.
		return c.argTaints(call, params, seen)
	}
	if taintSource(fn, c.pass.Pkg) {
		return []taint{{kind: tSource}}
	}
	var fact ReturnsTainted
	if c.returns[fn] || c.pass.ImportObjectFact(fn, &fact) {
		return []taint{{kind: tSource}}
	}
	return c.argTaints(call, params, seen)
}

// argTaints unions the taint of payload-typed arguments — the generic
// pass-through rule (Unpack parses, it does not sanitize).
func (c *checker) argTaints(call *ast.CallExpr, params map[*types.Var]int, seen map[*types.Var]bool) []taint {
	var out []taint
	for _, arg := range call.Args {
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && payloadType(tv.Type) {
			out = append(out, c.taints(arg, params, seen)...)
		}
	}
	return out
}

// taintSource matches the source shapes: upstream exchanges, mesh peer
// calls, and journal reads inside the persist layer.
func taintSource(fn *types.Func, current *types.Package) bool {
	if dataflow.ExchangeShaped(fn) {
		return true
	}
	if fn.Pkg() != nil && fn.Name() == "Call" {
		if fn.Pkg().Name() == "mesh" || strings.HasSuffix(fn.Pkg().Path(), "/mesh") {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				sig.Params().Len() > 0 && dataflow.IsContextType(sig.Params().At(0).Type()) {
				return true
			}
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "ReadFile" {
		if current.Name() == "persist" || strings.HasSuffix(current.Path(), "/persist") {
			return true
		}
	}
	return false
}

// payloadType reports whether t can carry DNS payload: byte slices and
// dnswire types (plus slices/pointers of them). Credibility scores,
// counters, and keys are not payload — taint does not ride on them.
func payloadType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		if b, ok := t.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return true
		}
		return payloadType(t.Elem())
	case *types.Pointer:
		return payloadType(t.Elem())
	case *types.Named:
		if pkg := t.Obj().Pkg(); pkg != nil &&
			(pkg.Name() == "dnswire" || strings.HasSuffix(pkg.Path(), "/dnswire")) {
			return true
		}
		return payloadType(t.Underlying())
	}
	return false
}
