// Package mesh mirrors the resilientdns mesh peer-call shape for the
// taintwire fixtures: peer responses are network-origin bytes.
package mesh

import "context"

// Conn is the fixture stand-in for the mesh UDP connection.
type Conn struct{}

// Call sends a frame to a peer and returns its response bytes.
func (c *Conn) Call(ctx context.Context, peer string, frame []byte) ([]byte, error) {
	return nil, nil
}
