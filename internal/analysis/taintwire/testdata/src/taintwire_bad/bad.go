// Package taintwire_bad is a failing fixture: raw network bytes
// written into the cache without passing a validated chokepoint.
package taintwire_bad

import (
	"context"

	"cache"
	"mesh"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Stash slurps the raw upstream response straight into the cache.
func Stash(ctx context.Context, tr Transport, c *cache.Cache) {
	resp, err := tr.Exchange(ctx, "10.0.0.1", nil)
	if err != nil {
		return
	}
	c.Put(resp, 0) // want "outside the validated ingest chokepoints"
}

// StashTail slices the response first; taint survives slicing.
func StashTail(ctx context.Context, tr Transport, c *cache.Cache) {
	resp, _ := tr.Exchange(ctx, "10.0.0.1", nil)
	c.PutOrigin(resp[12:], 0, 1) // want "outside the validated ingest chokepoints"
}

// stash is a conduit: its parameter reaches a sink, so it exports
// SinkViaParam and its callers become sinks.
func stash(c *cache.Cache, b []byte) {
	c.Put(b, 0)
}

// Fetch is caught one hop away from the mutation.
func Fetch(ctx context.Context, tr Transport, c *cache.Cache) {
	resp, _ := tr.Exchange(ctx, "10.0.0.1", nil)
	stash(c, resp) // want "outside the validated ingest chokepoints"
}

// PeerFill trusts a mesh peer's bytes as much as an upstream's — that
// is, not at all.
func PeerFill(ctx context.Context, mc *mesh.Conn, c *cache.Cache) {
	frame, _ := mc.Call(ctx, "peer-1", nil)
	c.Restore(frame) // want "outside the validated ingest chokepoints"
}
