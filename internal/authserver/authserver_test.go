package authserver

import (
	"net/netip"
	"testing"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func rrSOA(name string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   3600,
		Data: dnswire.SOA{
			MName: dnswire.MustName("ns1." + name), RName: dnswire.MustName("admin." + name),
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
	}
}

func rrCNAME(name string, target string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   300,
		Data:  dnswire.CNAME{Target: dnswire.MustName(target)},
	}
}

// eduServer serves an edu. zone with a ucla.edu. delegation.
func eduServer(t *testing.T) *Server {
	t.Helper()
	z := zone.New(dnswire.MustName("edu"))
	for _, rr := range []dnswire.RR{
		rrSOA("edu."),
		rrNS("edu.", 172800, "ns1.edu."),
		rrNS("edu.", 172800, "ns2.edu."),
		rrA("ns1.edu.", 172800, "192.0.2.1"),
		rrA("ns2.edu.", 172800, "192.0.2.2"),
		rrA("www.edu.", 300, "192.0.2.80"),
		rrCNAME("alias.edu.", "www.edu."),
		rrNS("ucla.edu.", 86400, "ns1.ucla.edu."),
		rrA("ns1.ucla.edu.", 86400, "198.51.100.1"),
	} {
		z.MustAdd(rr)
	}
	return New(z)
}

func query(name string, qtype dnswire.Type) *dnswire.Message {
	return dnswire.NewQuery(42, dnswire.MustName(name), qtype)
}

func TestAnswerCarriesApexIRRs(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("www.edu.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNoError || !resp.Flags.Authoritative {
		t.Fatalf("resp = %v", resp)
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("answers = %v", resp.Answer)
	}
	// The paper's TTL-refresh scheme depends on the child's own answers
	// carrying the zone IRRs: apex NS in authority, glue in additional.
	if len(resp.Authority) != 2 {
		t.Errorf("authority = %v, want 2 apex NS", resp.Authority)
	}
	if len(resp.Additional) != 2 {
		t.Errorf("additional = %v, want 2 glue A", resp.Additional)
	}
}

func TestAttachApexNSDisabled(t *testing.T) {
	s := eduServer(t)
	s.AttachApexNS = false
	resp := s.HandleQuery(query("www.edu.", dnswire.TypeA))
	if len(resp.Authority) != 0 || len(resp.Additional) != 0 {
		t.Errorf("IRRs attached despite AttachApexNS=false: %v / %v",
			resp.Authority, resp.Additional)
	}
}

func TestReferral(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("www.ucla.edu.", dnswire.TypeA))
	if resp.Flags.Authoritative {
		t.Error("referral marked authoritative")
	}
	if len(resp.Answer) != 0 {
		t.Errorf("referral with answers: %v", resp.Answer)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeNS {
		t.Fatalf("authority = %v", resp.Authority)
	}
	if resp.Authority[0].Name != "ucla.edu." {
		t.Errorf("referral NS owner = %v, want ucla.edu.", resp.Authority[0].Name)
	}
	if len(resp.Additional) != 1 || resp.Additional[0].Name != "ns1.ucla.edu." {
		t.Errorf("glue = %v", resp.Additional)
	}
}

func TestNXDomain(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("nope.edu.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", resp.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", resp.Authority)
	}
}

func TestNoData(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("www.edu.", dnswire.TypeAAAA))
	if resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v, want NOERROR", resp.RCode)
	}
	if len(resp.Answer) != 0 {
		t.Errorf("answers = %v, want none", resp.Answer)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", resp.Authority)
	}
}

func TestCNAMEChaseInZone(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("alias.edu.", dnswire.TypeA))
	if len(resp.Answer) != 2 {
		t.Fatalf("answers = %v, want CNAME+A", resp.Answer)
	}
	if resp.Answer[0].Type() != dnswire.TypeCNAME || resp.Answer[1].Type() != dnswire.TypeA {
		t.Errorf("answer types = %v, %v", resp.Answer[0].Type(), resp.Answer[1].Type())
	}
}

func TestCNAMELoopBounded(t *testing.T) {
	z := zone.New(dnswire.MustName("x."))
	z.MustAdd(rrNS("x.", 300, "ns.x."))
	z.MustAdd(rrA("ns.x.", 300, "192.0.2.1"))
	z.MustAdd(rrCNAME("a.x.", "b.x."))
	z.MustAdd(rrCNAME("b.x.", "a.x."))
	s := New(z)
	resp := s.HandleQuery(query("a.x.", dnswire.TypeA))
	if resp == nil {
		t.Fatal("nil response for CNAME loop")
	}
	if len(resp.Answer) > 2*maxCNAMEChase+2 {
		t.Errorf("unbounded CNAME chase: %d answers", len(resp.Answer))
	}
}

func TestRefusedOutsideAuthority(t *testing.T) {
	s := eduServer(t)
	resp := s.HandleQuery(query("example.com.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestFormErrOnBadQuestion(t *testing.T) {
	s := eduServer(t)
	q := &dnswire.Message{ID: 1} // no question
	resp := s.HandleQuery(q)
	if resp.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode = %v, want FORMERR", resp.RCode)
	}
}

func TestMultiZoneServerPicksDeepest(t *testing.T) {
	parent := zone.New(dnswire.MustName("edu"))
	parent.MustAdd(rrSOA("edu."))
	parent.MustAdd(rrNS("edu.", 300, "ns.edu."))
	parent.MustAdd(rrA("ns.edu.", 300, "192.0.2.1"))
	parent.MustAdd(rrNS("ucla.edu.", 300, "ns.ucla.edu."))
	parent.MustAdd(rrA("ns.ucla.edu.", 300, "192.0.2.2"))

	child := zone.New(dnswire.MustName("ucla.edu"))
	child.MustAdd(rrSOA("ucla.edu."))
	child.MustAdd(rrNS("ucla.edu.", 300, "ns.ucla.edu."))
	child.MustAdd(rrA("ns.ucla.edu.", 300, "192.0.2.2"))
	child.MustAdd(rrA("www.ucla.edu.", 300, "192.0.2.3"))

	s := New(parent, child)
	resp := s.HandleQuery(query("www.ucla.edu.", dnswire.TypeA))
	if !resp.Flags.Authoritative || len(resp.Answer) != 1 {
		t.Fatalf("multi-zone server did not answer from child: %v", resp)
	}
}

func TestResponseIsPackable(t *testing.T) {
	s := eduServer(t)
	for _, q := range []string{"www.edu.", "www.ucla.edu.", "nope.edu.", "alias.edu."} {
		resp := s.HandleQuery(query(q, dnswire.TypeA))
		if _, err := resp.Pack(); err != nil {
			t.Errorf("response to %s not packable: %v", q, err)
		}
	}
}

func TestRotateAnswers(t *testing.T) {
	z := zone.New(dnswire.MustName("example."))
	z.MustAdd(rrSOA("example."))
	z.MustAdd(rrNS("example.", 3600, "ns.example."))
	z.MustAdd(rrA("ns.example.", 3600, "192.0.2.1"))
	z.MustAdd(rrA("www.example.", 60, "192.0.2.10"))
	z.MustAdd(rrA("www.example.", 60, "192.0.2.11"))
	z.MustAdd(rrA("www.example.", 60, "192.0.2.12"))

	s := New(z)
	s.RotateAnswers = true
	firsts := make(map[string]bool)
	for i := 0; i < 12; i++ {
		resp := s.HandleQuery(query("www.example.", dnswire.TypeA))
		if len(resp.Answer) != 3 {
			t.Fatalf("answers = %v", resp.Answer)
		}
		firsts[resp.Answer[0].Data.String()] = true
	}
	if len(firsts) != 3 {
		t.Errorf("rotation covered %d of 3 records: %v", len(firsts), firsts)
	}
}

func TestNoRotationByDefault(t *testing.T) {
	z := zone.New(dnswire.MustName("example."))
	z.MustAdd(rrNS("example.", 3600, "ns.example."))
	z.MustAdd(rrA("ns.example.", 3600, "192.0.2.1"))
	z.MustAdd(rrA("www.example.", 60, "192.0.2.10"))
	z.MustAdd(rrA("www.example.", 60, "192.0.2.11"))

	s := New(z)
	first := s.HandleQuery(query("www.example.", dnswire.TypeA)).Answer[0].Data.String()
	for i := 0; i < 5; i++ {
		got := s.HandleQuery(query("www.example.", dnswire.TypeA)).Answer[0].Data.String()
		if got != first {
			t.Fatalf("answer order changed without RotateAnswers")
		}
	}
}
