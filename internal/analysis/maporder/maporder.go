// Package maporder flags map iteration that feeds deterministic output.
//
// Go randomizes map iteration order on purpose. results_full.txt is
// frozen byte-for-byte (the PR 3 reproducibility contract), experiment
// tables are diffed across runs, and persisted journals are replayed in
// write order — so a `for k := range m` that prints, writes, or records
// inside its body makes output depend on the iteration seed. The fix is
// the collect-then-sort idiom: gather keys into a slice, sort it, and
// range over the slice. That idiom is deliberately not flagged: a loop
// body that only collects (appends, counts, builds another map) is
// order-insensitive.
//
// The analyzer fires on a range over a map (in the configured
// deterministic-output packages) whose body directly emits: fmt
// printing, io.Writer-style Write*/Fprint methods, or calls to
// journal/stats sinks named Observe, Record, or Emit.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "maporder"

// defaultPkgs is every package whose output is diffed, frozen, or
// replayed: the simulator and its inputs, the experiment tables behind
// results_full.txt, the stats/metrics lines, and the persistence layer.
const defaultPkgs = "resilientdns/internal/sim," +
	"resilientdns/internal/simnet," +
	"resilientdns/internal/experiments," +
	"resilientdns/internal/workload," +
	"resilientdns/internal/topology," +
	"resilientdns/internal/metrics," +
	"resilientdns/internal/persist," +
	"resilientdns/internal/attack"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag range-over-map loops that print, write, or record in their body: map order is random, " +
		"so emitted output must go through the collect-then-sort idiom",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) whose output must be deterministic")
}

// emitMethods are method names that send data somewhere order matters:
// io.Writer and strings.Builder shapes, table/stats sinks, and the
// persist journal hook.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Observe": true, "Record": true, "Emit": true,
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !lintutil.PkgMatches(pass.Pkg.Path(), pkgs) {
		// Out of scope: any maporder ignore directive here is stale.
		lintutil.ReportStaleAll(pass, name)
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := lintutil.NewSuppressor(pass)

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rng := n.(*ast.RangeStmt)
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		if lintutil.InTestFile(pass, rng.Pos()) {
			return
		}
		if emit := firstEmission(pass, rng.Body); emit != "" {
			supp.Report(pass, name, rng.Pos(),
				"map iteration order feeds output via %s: collect keys, sort, then emit (map order is randomized)", emit)
		}
	})
	supp.ReportStale(pass, name)
	return nil, nil
}

// firstEmission returns a description of the first output-emitting call
// directly inside the loop body, or "". Function literals are skipped:
// a closure built in the loop runs later, typically after sorting.
func firstEmission(pass *analysis.Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
			found = "fmt." + fn.Name()
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			found = "fmt." + fn.Name()
			return false
		}
		sig, isSig := fn.Type().(*types.Signature)
		if isSig && sig.Recv() != nil && emitMethods[fn.Name()] {
			found = fn.Name() + " on " + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg))
			return false
		}
		return true
	})
	return found
}
