package zone

import (
	"testing"

	"resilientdns/internal/dnswire"
)

// FuzzParse exercises the master-file parser with arbitrary text: it must
// never panic, and any zone it accepts must serialise and re-parse to the
// same record count.
func FuzzParse(f *testing.F) {
	f.Add("@ IN NS ns.example.\nns IN A 192.0.2.1\n")
	f.Add("$ORIGIN example.\n$TTL 300\nwww 300 IN A 192.0.2.1\n")
	f.Add("@ IN SOA a. b. ( 1 2 3 4 5 )\n")
	f.Add("x IN TXT \"quoted string\" second\n")
	f.Add("bad line without type\n")
	f.Add("$BOGUS directive\n")
	f.Add("a IN MX 10 mail.example.\nb IN SRV 1 2 3 target.\n")

	f.Fuzz(func(t *testing.T, text string) {
		z, err := ParseString(text, dnswire.MustName("example."))
		if err != nil {
			return
		}
		z2, err := ParseString(z.String(), z.Origin())
		if err != nil {
			t.Fatalf("accepted zone does not re-parse: %v\nzone:\n%s", err, z.String())
		}
		if z2.RecordCount() != z.RecordCount() {
			t.Fatalf("round trip count %d != %d\nzone:\n%s",
				z2.RecordCount(), z.RecordCount(), z.String())
		}
	})
}
