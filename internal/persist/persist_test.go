package persist

import (
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/cache"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/zone"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

// fixture wires a tiny hierarchy (root → example.) over a virtual clock so
// persistence tests can run real resolutions through a caching server.
type fixture struct {
	t   *testing.T
	clk *simclock.Virtual
	net *simnet.Network
	dir string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := simclock.NewVirtual(epoch)
	net := simnet.New(clk, 1)
	net.RTT = 0
	net.Timeout = 0

	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrNS("example.", 86400, "ns1.example."))
	root.MustAdd(rrA("ns1.example.", 86400, "10.0.1.1"))

	ex := zone.New(dnswire.MustName("example."))
	ex.MustAdd(rrNS("example.", 86400, "ns1.example."))
	ex.MustAdd(rrA("ns1.example.", 86400, "10.0.1.1"))
	ex.MustAdd(rrA("www.example.", 300, "10.9.9.9"))
	ex.MustAdd(rrA("short.example.", 60, "10.9.9.10"))
	ex.MustAdd(rrA("long.example.", 864000, "10.9.9.11"))

	net.Register(&simnet.Host{Addr: "10.0.0.1", Zone: dnswire.Root, Handler: authserver.New(root)})
	net.Register(&simnet.Host{Addr: "10.0.1.1", Zone: dnswire.MustName("example."), Handler: authserver.New(ex)})
	return &fixture{t: t, clk: clk, net: net, dir: t.TempDir()}
}

// open creates a store on the fixture's directory and clock.
func (f *fixture) open() *Store {
	f.t.Helper()
	st, err := Open(Options{Dir: f.dir, Clock: f.clk})
	if err != nil {
		f.t.Fatalf("Open: %v", err)
	}
	return st
}

// server builds a caching server journaling into st (nil for none).
func (f *fixture) server(st *Store, cfg core.Config) *core.CachingServer {
	f.t.Helper()
	cfg.Transport = f.net
	cfg.Clock = f.clk
	cfg.RootHints = []core.ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}}
	if st != nil {
		cfg.OnCacheChange = st.Observe
	}
	cs, err := core.NewCachingServer(cfg)
	if err != nil {
		f.t.Fatalf("NewCachingServer: %v", err)
	}
	return cs
}

func (f *fixture) resolve(cs *core.CachingServer, name string) {
	f.t.Helper()
	if _, err := cs.Resolve(context.Background(), dnswire.MustName(name), dnswire.TypeA); err != nil {
		f.t.Fatalf("Resolve(%s): %v", name, err)
	}
}

// entriesOf snapshots a cache's contents keyed for comparison.
func entriesOf(c *cache.Cache) map[cache.Key]*cache.Entry {
	out := make(map[cache.Key]*cache.Entry)
	c.Range(func(e *cache.Entry) bool {
		out[e.Key] = e
		return true
	})
	return out
}

// requireSameEntries asserts the restored cache holds exactly the original
// entries with identical RRsets, TTL clamps, and expiry instants.
func requireSameEntries(t *testing.T, want, got map[cache.Key]*cache.Entry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("restored %d entries, want %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("restored cache is missing %v", key)
		}
		if len(g.RRs) != len(w.RRs) {
			t.Fatalf("%v: restored %d RRs, want %d", key, len(g.RRs), len(w.RRs))
		}
		for i := range w.RRs {
			if g.RRs[i].String() != w.RRs[i].String() {
				t.Errorf("%v RR[%d] = %s, want %s", key, i, g.RRs[i], w.RRs[i])
			}
		}
		if g.OrigTTL != w.OrigTTL || !g.Expires.Equal(w.Expires) || !g.StoredAt.Equal(w.StoredAt) {
			t.Errorf("%v: ttl/expiry = (%v, %v, %v), want (%v, %v, %v)",
				key, g.OrigTTL, g.Expires, g.StoredAt, w.OrigTTL, w.Expires, w.StoredAt)
		}
		if g.Cred != w.Cred || g.Infra != w.Infra {
			t.Errorf("%v: cred/infra = (%v, %v), want (%v, %v)", key, g.Cred, g.Infra, w.Cred, w.Infra)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{RefreshTTL: true})
	f.resolve(cs, "www.example.")
	f.resolve(cs, "short.example.")
	f.resolve(cs, "long.example.")
	want := entriesOf(cs.Cache())
	if len(want) == 0 {
		t.Fatal("fixture resolved nothing into the cache")
	}
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st.Close()

	st2 := f.open()
	cs2 := f.server(st2, core.Config{RefreshTTL: true})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.SnapshotFound || rep.Replayed != len(want) || rep.Dropped != 0 {
		t.Fatalf("report = %+v, want %d replayed, 0 dropped", rep, len(want))
	}
	requireSameEntries(t, want, entriesOf(cs2.Cache()))
	// The restored cache answers without going upstream.
	before := cs2.Stats().QueriesOut
	f.resolve(cs2, "www.example.")
	if sent := cs2.Stats().QueriesOut - before; sent != 0 {
		t.Errorf("restored cache still sent %d upstream queries", sent)
	}
	st2.Close()
}

func TestJournalCarriesDeltasPastSnapshot(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	f.resolve(cs, "www.example.")
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-snapshot activity lands only in the journal.
	f.resolve(cs, "short.example.")
	cs.Cache().Evict(dnswire.MustName("www.example."), dnswire.TypeA)
	want := entriesOf(cs.Cache())
	if err := st.FlushJournal(); err != nil {
		t.Fatalf("FlushJournal: %v", err)
	}
	st.Close() // crash: no final checkpoint

	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.JournalReplayed {
		t.Fatalf("journal was not replayed: %+v", rep)
	}
	requireSameEntries(t, want, entriesOf(cs2.Cache()))
	if got := cs2.Cache().Peek(dnswire.MustName("www.example."), dnswire.TypeA); got != nil {
		t.Error("evicted entry resurrected by recovery")
	}
	st2.Close()
}

func TestTornJournalTailIsTolerated(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	f.resolve(cs, "www.example.")
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.resolve(cs, "short.example.")
	if err := st.FlushJournal(); err != nil {
		t.Fatalf("FlushJournal: %v", err)
	}
	st.Close()

	// Tear the journal mid-record, as a crash during a write would.
	jpath := filepath.Join(f.dir, journalFile)
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= headerLen+3 {
		t.Fatalf("journal too small to tear: %d bytes", len(b))
	}
	if err := os.WriteFile(jpath, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover after torn tail: %v", err)
	}
	if !rep.TornTail {
		t.Errorf("torn tail not reported: %+v", rep)
	}
	// The snapshot's entries must all survive regardless of the tear.
	if got := cs2.Cache().Peek(dnswire.MustName("www.example."), dnswire.TypeA); got == nil {
		t.Error("snapshot entry lost to a journal tear")
	}
	st2.Close()
}

// TestTornTailEveryPrefix is the crash-injection sweep: recovery must
// succeed (never panic, never error) from every possible truncation point
// of both files.
func TestTornTailEveryPrefix(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	f.resolve(cs, "www.example.")
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.resolve(cs, "short.example.")
	if err := st.FlushJournal(); err != nil {
		t.Fatalf("FlushJournal: %v", err)
	}
	st.Close()

	snap, err := os.ReadFile(filepath.Join(f.dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(filepath.Join(f.dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		file string
		data []byte
	}{
		{"snapshot", snapshotFile, snap},
		{"journal", journalFile, journal},
	} {
		for cut := 0; cut <= len(tc.data); cut += 7 {
			dir := t.TempDir()
			full := map[string][]byte{snapshotFile: snap, journalFile: journal}
			full[tc.file] = tc.data[:cut]
			for name, b := range full {
				if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			st2, err := Open(Options{Dir: dir, Clock: f.clk})
			if err != nil {
				t.Fatalf("%s cut at %d: Open: %v", tc.name, cut, err)
			}
			cs2 := f.server(nil, core.Config{})
			if _, err := st2.Recover(cs2); err != nil {
				t.Fatalf("%s cut at %d: Recover: %v", tc.name, cut, err)
			}
			st2.Close()
		}
	}
}

func TestStaleJournalGenerationIsSkipped(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	f.resolve(cs, "www.example.")
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.resolve(cs, "short.example.")
	if err := st.FlushJournal(); err != nil {
		t.Fatalf("FlushJournal: %v", err)
	}
	st.Close()

	// Forge the crash window between snapshot write and journal rotation:
	// rewrite the journal's generation so it no longer matches.
	jpath := filepath.Join(f.dir, journalFile)
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	forged := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: 999, CreatedAt: f.clk.Now()})
	forged = append(forged, b[headerLen:]...)
	if err := os.WriteFile(jpath, forged, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.JournalSkipped || rep.JournalReplayed {
		t.Fatalf("mismatched journal not skipped: %+v", rep)
	}
	// Only the snapshot's entry is present.
	if cs2.Cache().Peek(dnswire.MustName("www.example."), dnswire.TypeA) == nil {
		t.Error("snapshot entry missing")
	}
	if cs2.Cache().Peek(dnswire.MustName("short.example."), dnswire.TypeA) != nil {
		t.Error("stale journal delta replayed despite generation mismatch")
	}
	st2.Close()
}

func TestEntriesExpiringBetweenSnapshotAndReload(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	f.resolve(cs, "short.example.") // 60s answer TTL
	f.resolve(cs, "long.example.")  // 10-day answer TTL (clamped to 7)
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st.Close()

	f.clk.Advance(10 * time.Minute) // short.example.'s answer dies in between

	// Recover compacts (the post-recovery checkpoint drops dead entries),
	// so keep a pristine copy for the serve-stale variant below.
	staleDir := t.TempDir()
	for _, name := range []string{snapshotFile, journalFile} {
		b, err := os.ReadFile(filepath.Join(f.dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(staleDir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cs2.Cache().Peek(dnswire.MustName("short.example."), dnswire.TypeA) != nil {
		t.Error("entry that expired between snapshot and reload was restored")
	}
	if cs2.Cache().Peek(dnswire.MustName("long.example."), dnswire.TypeA) == nil {
		t.Error("still-live entry was dropped")
	}
	if rep.Dropped == 0 {
		t.Errorf("expired entries not counted as dropped: %+v", rep)
	}
	st2.Close()

	// With stale retention on, the same dead entry is restorable for
	// GetStale service instead.
	st3, err := Open(Options{Dir: staleDir, Clock: f.clk})
	if err != nil {
		t.Fatal(err)
	}
	cs3 := f.server(st3, core.Config{ServeStale: time.Hour})
	if _, err := st3.Recover(cs3); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	name := dnswire.MustName("short.example.")
	if cs3.Cache().Get(name, dnswire.TypeA) != nil {
		t.Error("expired entry served as live")
	}
	if cs3.Cache().GetStale(name, dnswire.TypeA) == nil {
		t.Error("expired-within-window entry not servable as stale after restore")
	}
	st3.Close()
}

func TestRecoveryRestoresRenewalAndUpstreamState(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	policy := core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}
	cs := f.server(st, core.Config{RefreshTTL: true, Renewal: policy})
	f.resolve(cs, "www.example.")
	f.resolve(cs, "www.example.")
	credits := cs.RenewalCredits()
	if len(credits) == 0 {
		t.Fatal("no renewal credit accrued")
	}
	servers := cs.UpstreamStates()
	if len(servers) == 0 {
		t.Fatal("no upstream state accrued")
	}
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st.Close()

	st2 := f.open()
	cs2 := f.server(st2, core.Config{RefreshTTL: true, Renewal: policy})
	rep, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Credits != len(credits) || rep.Servers != len(servers) {
		t.Fatalf("report = %+v, want %d credits, %d servers", rep, len(credits), len(servers))
	}
	got := cs2.RenewalCredits()
	for z, c := range credits {
		if got[z] != c {
			t.Errorf("credit[%s] = %v, want %v", z, got[z], c)
		}
	}
	gotServers := cs2.UpstreamStates()
	if len(gotServers) != len(servers) {
		t.Fatalf("restored %d server states, want %d", len(gotServers), len(servers))
	}
	for i := range servers {
		if gotServers[i] != servers[i] {
			t.Errorf("server[%d] = %+v, want %+v", i, gotServers[i], servers[i])
		}
	}
	// RearmRenewals must have queued checks for the restored IRRs.
	if _, ok := cs2.NextRenewalDue(); !ok {
		t.Error("no renewal scheduled after recovery")
	}
	st2.Close()
}

func TestRecoverOnEmptyDirStartsCold(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	rep, err := st.Recover(cs)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SnapshotFound || rep.Replayed != 0 {
		t.Fatalf("cold start replayed state: %+v", rep)
	}
	// The initial checkpoint must have created a valid (empty) pair.
	f.resolve(cs, "www.example.")
	if err := st.FlushJournal(); err != nil {
		t.Fatalf("FlushJournal: %v", err)
	}
	st.Close()
	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	rep2, err := st2.Recover(cs2)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if !rep2.JournalReplayed || rep2.Replayed == 0 {
		t.Fatalf("journal-only recovery failed: %+v", rep2)
	}
	st2.Close()
}

func TestRecoverTwiceFails(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	if _, err := st.Recover(cs); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := st.Recover(cs); err == nil {
		t.Fatal("second Recover did not fail")
	}
	st.Close()
}

// TestEntryOriginRoundTrip pins the peer-origin flag at the codec level:
// peer-learned entries keep their provenance across encode/decode, and a
// pre-mesh record (flag bit absent) decodes as upstream-learned.
func TestEntryOriginRoundTrip(t *testing.T) {
	base := &cache.Entry{
		Key:      cache.Key{Name: dnswire.MustName("peer.example."), Type: dnswire.TypeNS},
		RRs:      []dnswire.RR{rrNS("peer.example.", 3600, "ns1.peer.example.")},
		Cred:     cache.CredAnswer,
		Infra:    true,
		OrigTTL:  time.Hour,
		Expires:  epoch.Add(time.Hour),
		StoredAt: epoch,
	}
	for _, origin := range []cache.Origin{cache.OriginUpstream, cache.OriginPeer} {
		e := *base
		e.Origin = origin
		b, err := encodeEntry(&e)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := decodeEntry(b)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Origin != origin {
			t.Errorf("origin %v round-tripped as %v", origin, rec.Origin)
		}
		if !rec.Infra {
			t.Errorf("origin %v: infra flag lost", origin)
		}
	}

	// A record written before the mesh existed never has flag bit 2;
	// clearing it must yield OriginUpstream, not garbage.
	e := *base
	e.Origin = cache.OriginPeer
	b, err := encodeEntry(&e)
	if err != nil {
		t.Fatal(err)
	}
	b[1] &^= 2
	rec, err := decodeEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Origin != cache.OriginUpstream {
		t.Errorf("pre-mesh record decoded with origin %v, want OriginUpstream", rec.Origin)
	}
}

// TestPeerOriginSurvivesRecovery runs the full store path: an entry the
// mesh ingested from a peer is journaled, recovered after a restart, and
// still marked peer-learned in the rebuilt cache.
func TestPeerOriginSurvivesRecovery(t *testing.T) {
	f := newFixture(t)
	st := f.open()
	cs := f.server(st, core.Config{})
	zone := dnswire.MustName("gossiped.example.")
	cs.Cache().PutOrigin(
		[]dnswire.RR{rrNS("gossiped.example.", 3600, "ns1.gossiped.example.")},
		cache.CredAnswer, true, cache.OriginPeer)
	if err := st.Checkpoint(cs); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st.Close()

	st2 := f.open()
	cs2 := f.server(st2, core.Config{})
	if _, err := st2.Recover(cs2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer st2.Close()
	e := cs2.Cache().Peek(zone, dnswire.TypeNS)
	if e == nil {
		t.Fatal("peer-learned entry did not survive recovery")
	}
	if e.Origin != cache.OriginPeer {
		t.Errorf("recovered entry origin = %v, want OriginPeer", e.Origin)
	}
	if !e.Infra {
		t.Error("recovered entry lost its infra flag")
	}
}
