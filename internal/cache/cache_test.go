package cache

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func newTestCache(t *testing.T, cfg Config) (*Cache, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual(epoch)
	cfg.Clock = clk
	return New(cfg), clk
}

func TestPutGet(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	set := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns1.ucla.edu.")}
	c.Put(set, CredReferral, true)
	e := c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("Get returned nil after Put")
	}
	if e.OrigTTL != time.Hour {
		t.Errorf("OrigTTL = %v, want 1h", e.OrigTTL)
	}
}

func TestExpiry(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	c.Put([]dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")}, CredAnswer, false)
	clk.Advance(299 * time.Second)
	if c.Get(dnswire.MustName("www.edu."), dnswire.TypeA) == nil {
		t.Fatal("entry expired early")
	}
	clk.Advance(2 * time.Second)
	if c.Get(dnswire.MustName("www.edu."), dnswire.TypeA) != nil {
		t.Fatal("entry survived past TTL")
	}
}

func TestVanillaDoesNotRefreshTTL(t *testing.T) {
	c, clk := newTestCache(t, Config{RefreshInfraTTL: false})
	set := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns1.ucla.edu.")}
	c.Put(set, CredAuthority, true)
	clk.Advance(30 * time.Minute)
	c.Put(set, CredAuthority, true) // same copy arrives again
	clk.Advance(31 * time.Minute)   // total 61 min > TTL
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) != nil {
		t.Fatal("vanilla cache refreshed the TTL")
	}
}

func TestRefreshResetsInfraTTL(t *testing.T) {
	c, clk := newTestCache(t, Config{RefreshInfraTTL: true})
	set := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns1.ucla.edu.")}
	c.Put(set, CredAuthority, true)
	clk.Advance(30 * time.Minute)
	c.Put(set, CredAuthority, true) // refresh
	clk.Advance(31 * time.Minute)   // 61 min after first Put, 31 after refresh
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) == nil {
		t.Fatal("refresh did not reset the TTL")
	}
	clk.Advance(30 * time.Minute) // 61 min after refresh
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) != nil {
		t.Fatal("entry survived past refreshed TTL")
	}
}

func TestRefreshDoesNotApplyToNonInfra(t *testing.T) {
	c, clk := newTestCache(t, Config{RefreshInfraTTL: true})
	set := []dnswire.RR{rrA("www.edu.", 3600, "192.0.2.1")}
	c.Put(set, CredAnswer, false)
	clk.Advance(30 * time.Minute)
	c.Put(set, CredAnswer, false)
	clk.Advance(31 * time.Minute)
	if c.Get(dnswire.MustName("www.edu."), dnswire.TypeA) != nil {
		t.Fatal("non-infrastructure record was refreshed")
	}
}

func TestCredibilityUpgradeReplaces(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	glue := []dnswire.RR{rrNS("ucla.edu.", 600, "ns-old.ucla.edu.")}
	c.Put(glue, CredReferral, true)
	child := []dnswire.RR{rrNS("ucla.edu.", 86400, "ns-new.ucla.edu.")}
	c.Put(child, CredAuthority, true)

	e := c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.Cred != CredAuthority {
		t.Errorf("Cred = %v, want CredAuthority", e.Cred)
	}
	if e.RRs[0].Data.(dnswire.NS).Host != "ns-new.ucla.edu." {
		t.Errorf("child data did not replace parent glue: %v", e.RRs)
	}
}

func TestLowerCredibilityIgnored(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	child := []dnswire.RR{rrNS("ucla.edu.", 86400, "ns-new.ucla.edu.")}
	c.Put(child, CredAuthority, true)
	glue := []dnswire.RR{rrNS("ucla.edu.", 600, "ns-old.ucla.edu.")}
	c.Put(glue, CredReferral, true)

	e := c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e.RRs[0].Data.(dnswire.NS).Host != "ns-new.ucla.edu." {
		t.Errorf("lower-credibility data replaced child copy: %v", e.RRs)
	}
}

func TestLowerCredibilityDoesNotRefresh(t *testing.T) {
	// With refresh on, a parent referral copy must NOT reset the TTL of
	// the child's copy: refresh uses data from the zone's own servers.
	c, clk := newTestCache(t, Config{RefreshInfraTTL: true})
	child := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns.ucla.edu.")}
	c.Put(child, CredAuthority, true)
	clk.Advance(30 * time.Minute)
	glue := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns.ucla.edu.")}
	c.Put(glue, CredReferral, true)
	e := c.Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("entry missing")
	}
	if got, want := e.Expires, epoch.Add(time.Hour); !got.Equal(want) {
		// Refresh from a referral is acceptable per the paper's model
		// (any response carrying the IRR refreshes it), but our stricter
		// rule keeps the child-credibility expiry. Assert the stricter
		// behaviour so a regression is caught either way.
		t.Errorf("Expires = %v, want %v (no refresh from lower credibility)", got, want)
	}
}

func TestMaxTTLClamp(t *testing.T) {
	c, clk := newTestCache(t, Config{MaxTTL: 24 * time.Hour})
	huge := []dnswire.RR{rrNS("ucla.edu.", 30*86400, "ns.ucla.edu.")}
	c.Put(huge, CredAuthority, true)
	clk.Advance(25 * time.Hour)
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) != nil {
		t.Fatal("TTL clamp not applied")
	}
}

func TestDefaultMaxTTLIsSevenDays(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	huge := []dnswire.RR{rrNS("ucla.edu.", 30*86400, "ns.ucla.edu.")}
	c.Put(huge, CredAuthority, true)
	clk.Advance(6 * 24 * time.Hour)
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) == nil {
		t.Fatal("entry expired before 7 days")
	}
	clk.Advance(2 * 24 * time.Hour)
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) != nil {
		t.Fatal("entry survived past the 7-day clamp")
	}
}

func TestGapObservation(t *testing.T) {
	var gaps []time.Duration
	var gapKeys []Key
	c, clk := newTestCache(t, Config{
		OnGap: func(key Key, gap, _ time.Duration) {
			gaps = append(gaps, gap)
			gapKeys = append(gapKeys, key)
		},
	})
	c.Put([]dnswire.RR{rrNS("ucla.edu.", 3600, "ns.ucla.edu.")}, CredAuthority, true)
	clk.Advance(3 * time.Hour) // entry expired 2h ago
	c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if len(gaps) != 1 {
		t.Fatalf("observed %d gaps, want 1", len(gaps))
	}
	if gaps[0] != 2*time.Hour {
		t.Errorf("gap = %v, want 2h", gaps[0])
	}
	if gapKeys[0].Type != dnswire.TypeNS {
		t.Errorf("gap key = %v", gapKeys[0])
	}
	// The tombstone is consumed: a second Get records nothing.
	c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if len(gaps) != 1 {
		t.Errorf("tombstone not consumed: %d gaps", len(gaps))
	}
}

func TestGapObservedOnPutAfterExpiry(t *testing.T) {
	var gaps []time.Duration
	c, clk := newTestCache(t, Config{
		OnGap: func(_ Key, gap, _ time.Duration) { gaps = append(gaps, gap) },
	})
	set := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns.ucla.edu.")}
	c.Put(set, CredAuthority, true)
	clk.Advance(5 * time.Hour)
	c.Put(set, CredAuthority, true) // re-learned 4h after expiry
	if len(gaps) != 1 || gaps[0] != 4*time.Hour {
		t.Errorf("gaps = %v, want [4h]", gaps)
	}
}

func TestEvictLeavesNoTombstone(t *testing.T) {
	var gaps int
	c, clk := newTestCache(t, Config{
		OnGap: func(Key, time.Duration, time.Duration) { gaps++ },
	})
	c.Put([]dnswire.RR{rrNS("ucla.edu.", 60, "ns.ucla.edu.")}, CredAuthority, true)
	c.Evict(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	clk.Advance(time.Hour)
	c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if gaps != 0 {
		t.Errorf("eviction left a tombstone (%d gaps)", gaps)
	}
}

func TestExtend(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	c.Put([]dnswire.RR{rrNS("ucla.edu.", 3600, "ns.ucla.edu.")}, CredAuthority, true)
	clk.Advance(50 * time.Minute)
	if !c.Extend(dnswire.MustName("ucla.edu."), dnswire.TypeNS) {
		t.Fatal("Extend returned false")
	}
	clk.Advance(50 * time.Minute) // 100 min total, 50 since extend
	if c.Get(dnswire.MustName("ucla.edu."), dnswire.TypeNS) == nil {
		t.Fatal("Extend did not reset expiry")
	}
	if c.Extend(dnswire.MustName("missing."), dnswire.TypeNS) {
		t.Error("Extend of missing entry returned true")
	}
}

func TestSweepAndStats(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	c.Put([]dnswire.RR{
		rrNS("ucla.edu.", 3600, "ns1.ucla.edu."),
		rrNS("ucla.edu.", 3600, "ns2.ucla.edu."),
	}, CredAuthority, true)
	c.Put([]dnswire.RR{rrA("ns1.ucla.edu.", 3600, "192.0.2.1")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrA("www.ucla.edu.", 60, "192.0.2.2")}, CredAnswer, false)

	s := c.Stats()
	if s.Entries != 3 || s.Records != 4 || s.Zones != 1 || s.InfraEntries != 2 {
		t.Errorf("Stats = %+v", s)
	}

	clk.Advance(2 * time.Minute)
	c.SweepExpired()
	s = c.Stats()
	if s.Entries != 2 || s.Records != 3 {
		t.Errorf("Stats after sweep = %+v", s)
	}
}

func TestInfraExpiriesSorted(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	c.Put([]dnswire.RR{rrNS("b.edu.", 7200, "ns.b.edu.")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrNS("a.edu.", 3600, "ns.a.edu.")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrA("ns.a.edu.", 3600, "192.0.2.1")}, CredAuthority, true) // not NS
	got := c.InfraExpiries()
	if len(got) != 2 {
		t.Fatalf("InfraExpiries = %v", got)
	}
	if got[0].Zone != "a.edu." || got[1].Zone != "b.edu." {
		t.Errorf("order = %v", got)
	}
}

func TestRemainingTTL(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	c.Put([]dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")}, CredAnswer, false)
	clk.Advance(100 * time.Second)
	e := c.Get(dnswire.MustName("www.edu."), dnswire.TypeA)
	if got := e.RemainingTTL(clk.Now()); got != 200 {
		t.Errorf("RemainingTTL = %d, want 200", got)
	}
	rrs := e.RRsWithRemainingTTL(clk.Now())
	if rrs[0].TTL != 200 {
		t.Errorf("decremented TTL = %d, want 200", rrs[0].TTL)
	}
	// The cached copy keeps its original TTL.
	if e.RRs[0].TTL != 300 {
		t.Errorf("cached TTL mutated to %d", e.RRs[0].TTL)
	}
}

func TestHitRate(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	if c.HitRate() != 0 {
		t.Error("HitRate != 0 before any Get")
	}
	c.Put([]dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")}, CredAnswer, false)
	c.Get(dnswire.MustName("www.edu."), dnswire.TypeA)
	c.Get(dnswire.MustName("missing."), dnswire.TypeA)
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

// TestPropertyCacheNeverServesExpired drives random Put/Get/advance
// sequences and asserts the core invariant: Get never returns an entry
// whose expiry has passed.
func TestPropertyCacheNeverServesExpired(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clk := simclock.NewVirtual(epoch)
		c := New(Config{Clock: clk, RefreshInfraTTL: r.Intn(2) == 0})
		names := []string{"a.edu.", "b.edu.", "c.com.", "d.org."}
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0:
				name := names[r.Intn(len(names))]
				ttl := uint32(1 + r.Intn(7200))
				cred := Credibility(1 + r.Intn(3))
				c.Put([]dnswire.RR{rrNS(name, ttl, "ns."+name)}, cred, r.Intn(2) == 0)
			case 1:
				name := names[r.Intn(len(names))]
				e := c.Get(dnswire.MustName(name), dnswire.TypeNS)
				if e != nil && !e.Expires.After(clk.Now()) {
					return false
				}
			default:
				clk.Advance(time.Duration(r.Intn(3600)) * time.Second)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCredibilityMonotone asserts that a surviving entry's
// credibility never decreases across random Puts.
func TestPropertyCredibilityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clk := simclock.NewVirtual(epoch)
		c := New(Config{Clock: clk})
		name := dnswire.MustName("z.edu.")
		last := Credibility(0)
		for i := 0; i < 100; i++ {
			cred := Credibility(1 + r.Intn(3))
			c.Put([]dnswire.RR{rrNS("z.edu.", 86400, "ns.z.edu.")}, cred, true)
			e := c.Peek(name, dnswire.TypeNS)
			if e == nil {
				return false
			}
			if e.Cred < last {
				return false
			}
			last = e.Cred
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCapacityEvictsDataBeforeInfra(t *testing.T) {
	c, _ := newTestCache(t, Config{MaxEntries: 3})
	c.Put([]dnswire.RR{rrNS("zone1.edu.", 7200, "ns.zone1.edu.")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrA("ns.zone1.edu.", 7200, "192.0.2.1")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrA("www.a.edu.", 60, "192.0.2.2")}, CredAnswer, false)
	c.Put([]dnswire.RR{rrA("www.b.edu.", 3600, "192.0.2.3")}, CredAnswer, false)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// The soonest-to-expire data record was evicted; infra survived.
	if c.Peek(dnswire.MustName("www.a.edu."), dnswire.TypeA) != nil {
		t.Error("soonest-to-expire data entry not evicted")
	}
	if c.Peek(dnswire.MustName("zone1.edu."), dnswire.TypeNS) == nil {
		t.Error("infrastructure entry evicted while data remained")
	}
	if c.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestCapacityEvictsInfraOnlyWhenFull(t *testing.T) {
	c, _ := newTestCache(t, Config{MaxEntries: 2})
	c.Put([]dnswire.RR{rrNS("a.edu.", 60, "ns.a.edu.")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrNS("b.edu.", 3600, "ns.b.edu.")}, CredAuthority, true)
	c.Put([]dnswire.RR{rrNS("c.edu.", 7200, "ns.c.edu.")}, CredAuthority, true)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// All entries are infra, so the soonest-to-expire infra entry went.
	if c.Peek(dnswire.MustName("a.edu."), dnswire.TypeNS) != nil {
		t.Error("soonest-to-expire infra entry not evicted")
	}
}

func TestCapacityPrefersSweepingExpired(t *testing.T) {
	c, clk := newTestCache(t, Config{MaxEntries: 2})
	c.Put([]dnswire.RR{rrA("old.edu.", 60, "192.0.2.1")}, CredAnswer, false)
	clk.Advance(2 * time.Minute) // old.edu. is dead
	c.Put([]dnswire.RR{rrA("x.edu.", 3600, "192.0.2.2")}, CredAnswer, false)
	c.Put([]dnswire.RR{rrA("y.edu.", 3600, "192.0.2.3")}, CredAnswer, false)
	// The expired entry satisfied the capacity; both live entries remain.
	if c.Peek(dnswire.MustName("x.edu."), dnswire.TypeA) == nil ||
		c.Peek(dnswire.MustName("y.edu."), dnswire.TypeA) == nil {
		t.Error("live entry evicted while an expired one lingered")
	}
	if c.Evictions() != 0 {
		t.Errorf("Evictions = %d, want 0 (sweep should have sufficed)", c.Evictions())
	}
}

func TestUnboundedByDefault(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	for i := 0; i < 500; i++ {
		c.Put([]dnswire.RR{rrA(fmt.Sprintf("h%d.edu.", i), 3600, "192.0.2.1")}, CredAnswer, false)
	}
	if c.Len() != 500 {
		t.Errorf("Len = %d, want 500", c.Len())
	}
}
