// Package goroleak_bad is a failing fixture: goroutines that can never
// be stopped.
package goroleak_bad

import (
	"context"
	"time"
)

// Renew spins forever: no return, no stop channel, no ctx.Done.
func Renew() {
	for {
		time.Sleep(time.Second)
	}
}

// Start spawns unstoppable work three ways.
func Start(ctx context.Context) {
	go Renew() // want "Renew can never be stopped"

	// time.Tick fires forever; ranging over it is not a stop signal.
	go func() { // want "this goroutine can never be stopped"
		for range time.Tick(time.Second) {
		}
	}()

	// A ticker-only select has no exit either.
	tick := time.NewTicker(time.Second)
	go func() { // want "this goroutine can never be stopped"
		for {
			select {
			case <-tick.C:
			}
		}
	}()
}

// sweep hides the unstoppable loop one call deep; Leaky propagates.
func sweep() {
	Renew()
}

// StartIndirect spawns it through the wrapper.
func StartIndirect() {
	go sweep() // want "sweep can never be stopped"
}
