package xfer

import (
	"context"
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

func buildZone(t *testing.T, serial uint32, extra ...dnswire.RR) *zone.Zone {
	t.Helper()
	z := zone.New(dnswire.MustName("example."))
	z.MustAdd(dnswire.RR{
		Name: dnswire.MustName("example."), Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.SOA{
			MName: dnswire.MustName("ns.example."), RName: dnswire.MustName("admin.example."),
			Serial: serial, Refresh: 1, Retry: 1, Expire: 1000, Minimum: 60,
		},
	})
	z.MustAdd(dnswire.RR{
		Name: dnswire.MustName("example."), Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NS{Host: dnswire.MustName("ns.example.")},
	})
	z.MustAdd(dnswire.RR{
		Name: dnswire.MustName("ns.example."), Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	z.MustAdd(dnswire.RR{
		Name: dnswire.MustName("www.example."), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")},
	})
	for _, rr := range extra {
		z.MustAdd(rr)
	}
	return z
}

// swappableHandler lets tests replace the served zone at runtime.
type swappableHandler struct {
	cur atomic.Pointer[authserver.Server]
}

func (h *swappableHandler) HandleQuery(q *dnswire.Message) *dnswire.Message {
	return h.cur.Load().HandleQuery(q)
}

// startPrimary serves the handler over TCP and returns its address.
func startPrimary(t *testing.T, h transport.Handler) string {
	t.Helper()
	srv := &transport.TCPServer{Handler: h}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestAXFRTransfersWholeZone(t *testing.T) {
	src := buildZone(t, 100)
	addr := startPrimary(t, authserver.New(src))

	got, err := AXFR(context.Background(), &transport.TCP{Timeout: time.Second},
		transport.Addr(addr), dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("AXFR: %v", err)
	}
	if got.RecordCount() != src.RecordCount() {
		t.Errorf("transferred %d records, want %d", got.RecordCount(), src.RecordCount())
	}
	soa, ok := got.SOA()
	if !ok || soa.Data.(dnswire.SOA).Serial != 100 {
		t.Errorf("SOA = %v", soa)
	}
	// The transferred zone answers queries like the original.
	res := got.Lookup(dnswire.MustName("www.example."), dnswire.TypeA)
	if res.Type != zone.Answer {
		t.Errorf("Lookup = %v", res.Type)
	}
}

func TestAXFRRefusedForUnknownZone(t *testing.T) {
	addr := startPrimary(t, authserver.New(buildZone(t, 1)))
	_, err := AXFR(context.Background(), &transport.TCP{Timeout: time.Second},
		transport.Addr(addr), dnswire.MustName("other."))
	if err == nil {
		t.Fatal("AXFR of unserved zone succeeded")
	}
}

func TestFetchSOASerial(t *testing.T) {
	addr := startPrimary(t, authserver.New(buildZone(t, 42)))
	serial, err := FetchSOASerial(context.Background(), &transport.TCP{Timeout: time.Second},
		transport.Addr(addr), dnswire.MustName("example."))
	if err != nil {
		t.Fatalf("FetchSOASerial: %v", err)
	}
	if serial != 42 {
		t.Errorf("serial = %d, want 42", serial)
	}
}

func TestSecondaryServesAfterRefresh(t *testing.T) {
	addr := startPrimary(t, authserver.New(buildZone(t, 7)))
	sec := &Secondary{
		Zone:      dnswire.MustName("example."),
		Primary:   transport.Addr(addr),
		Transport: &transport.TCP{Timeout: time.Second},
	}
	// Before the first transfer: SERVFAIL.
	q := dnswire.NewQuery(1, dnswire.MustName("www.example."), dnswire.TypeA)
	if resp := sec.HandleQuery(q); resp.RCode != dnswire.RCodeServFail {
		t.Errorf("pre-transfer rcode = %v, want SERVFAIL", resp.RCode)
	}

	changed, err := sec.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !changed || sec.Serial() != 7 {
		t.Errorf("changed=%v serial=%d", changed, sec.Serial())
	}
	resp := sec.HandleQuery(q)
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Errorf("post-transfer resp = %v", resp)
	}
}

func TestSecondarySkipsUnchangedSerial(t *testing.T) {
	addr := startPrimary(t, authserver.New(buildZone(t, 7)))
	sec := &Secondary{
		Zone:      dnswire.MustName("example."),
		Primary:   transport.Addr(addr),
		Transport: &transport.TCP{Timeout: time.Second},
	}
	if _, err := sec.Refresh(context.Background()); err != nil {
		t.Fatalf("first Refresh: %v", err)
	}
	changed, err := sec.Refresh(context.Background())
	if err != nil {
		t.Fatalf("second Refresh: %v", err)
	}
	if changed {
		t.Error("re-transferred despite unchanged serial")
	}
	if sec.Transfers() != 1 {
		t.Errorf("Transfers = %d, want 1", sec.Transfers())
	}
}

func TestSecondaryPicksUpSerialBump(t *testing.T) {
	h := &swappableHandler{}
	h.cur.Store(authserver.New(buildZone(t, 7)))
	addr := startPrimary(t, h)
	sec := &Secondary{
		Zone:      dnswire.MustName("example."),
		Primary:   transport.Addr(addr),
		Transport: &transport.TCP{Timeout: time.Second},
	}
	if _, err := sec.Refresh(context.Background()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}

	// The primary publishes serial 8 with an extra record.
	h.cur.Store(authserver.New(buildZone(t, 8, dnswire.RR{
		Name: dnswire.MustName("new.example."), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.99")},
	})))
	changed, err := sec.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh after bump: %v", err)
	}
	if !changed || sec.Serial() != 8 {
		t.Errorf("changed=%v serial=%d, want transfer to serial 8", changed, sec.Serial())
	}
	q := dnswire.NewQuery(2, dnswire.MustName("new.example."), dnswire.TypeA)
	if resp := sec.HandleQuery(q); len(resp.Answer) != 1 {
		t.Errorf("new record not served after re-transfer: %v", resp)
	}
}

func TestSecondaryRunLoop(t *testing.T) {
	h := &swappableHandler{}
	h.cur.Store(authserver.New(buildZone(t, 1)))
	addr := startPrimary(t, h)
	sec := &Secondary{
		Zone:         dnswire.MustName("example."),
		Primary:      transport.Addr(addr),
		Transport:    &transport.TCP{Timeout: time.Second},
		PollInterval: 20 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sec.Run(ctx)

	deadline := time.Now().Add(2 * time.Second)
	for sec.Serial() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("initial transfer never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.cur.Store(authserver.New(buildZone(t, 2)))
	for sec.Serial() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("serial bump not picked up (serial=%d)", sec.Serial())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAXFROverUDPTruncates(t *testing.T) {
	// Over UDP a large transfer is truncated; the client must reject it
	// rather than build a partial zone.
	var pad []dnswire.RR
	for i := 0; i < 40; i++ {
		pad = append(pad, dnswire.RR{
			Name: dnswire.MustName("example."), Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.TXT{Strings: []string{fmt.Sprintf("%02d-padding-padding-padding-padding", i)}},
		})
	}
	srv := &transport.UDPServer{Handler: authserver.New(buildZone(t, 5, pad...))}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	_, err = AXFR(context.Background(), &transport.UDP{Timeout: time.Second},
		transport.Addr(addr), dnswire.MustName("example."))
	if err == nil {
		t.Fatal("truncated UDP transfer accepted")
	}
}

// boundedCheckTransport wraps a transport and records whether every
// exchange context carried a deadline.
type boundedCheckTransport struct {
	inner   transport.Transport
	total   atomic.Int64
	bounded atomic.Int64
}

func (b *boundedCheckTransport) Exchange(ctx context.Context, server transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	b.total.Add(1)
	if _, ok := ctx.Deadline(); ok {
		b.bounded.Add(1)
	}
	return b.inner.Exchange(ctx, server, q)
}

// TestSecondaryRunBoundsPolls verifies that the refresh loop gives each
// poll its own deadline even when its context has none: a black-holed
// primary must fail one round, not hang the loop.
func TestSecondaryRunBoundsPolls(t *testing.T) {
	h := &swappableHandler{}
	h.cur.Store(authserver.New(buildZone(t, 1)))
	addr := startPrimary(t, h)
	capture := &boundedCheckTransport{inner: &transport.TCP{Timeout: time.Second}}
	sec := &Secondary{
		Zone:         dnswire.MustName("example."),
		Primary:      transport.Addr(addr),
		Transport:    capture,
		PollInterval: 20 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sec.Run(ctx)

	deadline := time.Now().Add(2 * time.Second)
	for sec.Serial() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("initial transfer never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if total, bounded := capture.total.Load(), capture.bounded.Load(); total == 0 || bounded != total {
		t.Errorf("%d/%d poll exchanges carried a deadline, want all (and at least one)", bounded, total)
	}
}
