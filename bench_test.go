// Package bench holds the benchmark harness that regenerates every table
// and figure in the paper's evaluation (run with `go test -bench=.`), plus
// micro-benchmarks of the substrates (wire format, cache, resolver).
//
// Each BenchmarkTableN/BenchmarkFigN iteration builds a fresh suite and
// regenerates the artifact end to end; key measurements are attached as
// custom benchmark metrics, so `go test -bench=.` output records both the
// runtime and the reproduced result shape.
package bench

import (
	"context"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/experiments"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
	"resilientdns/internal/zone"
)

// benchConfig is the scale used by the per-figure benchmarks: small enough
// that every figure regenerates in seconds, large enough to preserve the
// paper's shapes.
func benchConfig() experiments.Config {
	c := experiments.QuickConfig()
	c.NumTLDs = 5
	c.SLDsPerTLD = 15
	c.TraceClients = 50
	c.TraceQueries = 5000
	c.MonthQueries = 12000
	return c
}

// runExperiment regenerates one experiment per iteration and reports the
// named percentage cells as metrics.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		suite, err := experiments.NewSuite(benchConfig())
		if err != nil {
			b.Fatalf("NewSuite: %v", err)
		}
		tbl, err = suite.Run(id)
		if err != nil {
			b.Fatalf("Run(%s): %v", id, err)
		}
	}
	return tbl
}

// cellFloat parses a numeric table cell (possibly "+x%"/"x%").
func cellFloat(b *testing.B, cell string) float64 {
	b.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(cell), "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

// avgColumn averages a numeric column over all rows.
func avgColumn(b *testing.B, tbl *experiments.Table, col int) float64 {
	b.Helper()
	sum := 0.0
	for _, row := range tbl.Rows {
		sum += cellFloat(b, row[col])
	}
	return sum / float64(len(tbl.Rows))
}

// BenchmarkTable1TraceStats regenerates Table 1 (trace statistics).
func BenchmarkTable1TraceStats(b *testing.B) {
	tbl := runExperiment(b, "table1")
	b.ReportMetric(avgColumn(b, tbl, 3), "requests-in")
	b.ReportMetric(avgColumn(b, tbl, 4), "requests-out")
}

// BenchmarkFig3GapCDF regenerates Figure 3 (IRR expiry gap CDFs).
func BenchmarkFig3GapCDF(b *testing.B) {
	tbl := runExperiment(b, "fig3")
	for _, row := range tbl.Rows {
		if row[0] == "gap (days)" && row[1] == "5.00" {
			b.ReportMetric(cellFloat(b, row[2]), "pct-gaps-under-5d")
		}
	}
}

// BenchmarkFig4Vanilla regenerates Figure 4 (vanilla DNS under attack).
func BenchmarkFig4Vanilla(b *testing.B) {
	tbl := runExperiment(b, "fig4")
	b.ReportMetric(avgColumn(b, tbl, 2), "sr-fail-pct-6h")
	b.ReportMetric(avgColumn(b, tbl, 6), "cs-fail-pct-6h")
}

// BenchmarkFig5Refresh regenerates Figure 5 (TTL refresh).
func BenchmarkFig5Refresh(b *testing.B) {
	tbl := runExperiment(b, "fig5")
	b.ReportMetric(avgColumn(b, tbl, 2), "sr-fail-pct-6h")
	b.ReportMetric(avgColumn(b, tbl, 6), "cs-fail-pct-6h")
}

// BenchmarkFig6RenewLRU regenerates Figure 6 (refresh + LRU renewal).
func BenchmarkFig6RenewLRU(b *testing.B) {
	tbl := runExperiment(b, "fig6")
	b.ReportMetric(avgColumn(b, tbl, 7), "sr-fail-pct-c5")
}

// BenchmarkFig7RenewLFU regenerates Figure 7 (refresh + LFU renewal).
func BenchmarkFig7RenewLFU(b *testing.B) {
	tbl := runExperiment(b, "fig7")
	b.ReportMetric(avgColumn(b, tbl, 7), "sr-fail-pct-c5")
}

// BenchmarkFig8RenewALRU regenerates Figure 8 (refresh + A-LRU renewal).
func BenchmarkFig8RenewALRU(b *testing.B) {
	tbl := runExperiment(b, "fig8")
	b.ReportMetric(avgColumn(b, tbl, 7), "sr-fail-pct-c5")
}

// BenchmarkFig9RenewALFU regenerates Figure 9 (refresh + A-LFU renewal,
// the paper's best policy).
func BenchmarkFig9RenewALFU(b *testing.B) {
	tbl := runExperiment(b, "fig9")
	b.ReportMetric(avgColumn(b, tbl, 7), "sr-fail-pct-c5")
	b.ReportMetric(avgColumn(b, tbl, 8), "cs-fail-pct-c5")
}

// BenchmarkFig10LongTTL regenerates Figure 10 (refresh + long TTL).
func BenchmarkFig10LongTTL(b *testing.B) {
	tbl := runExperiment(b, "fig10")
	b.ReportMetric(avgColumn(b, tbl, 7), "sr-fail-pct-5d")
}

// BenchmarkFig11Combined regenerates Figure 11 (refresh + renewal + long
// TTL combined).
func BenchmarkFig11Combined(b *testing.B) {
	tbl := runExperiment(b, "fig11")
	b.ReportMetric(avgColumn(b, tbl, 5), "sr-fail-pct-3d")
}

// BenchmarkTable2Overhead regenerates Table 2 (message and memory
// overhead per scheme).
func BenchmarkTable2Overhead(b *testing.B) {
	tbl := runExperiment(b, "table2")
	for _, row := range tbl.Rows {
		switch row[0] {
		case "Refresh":
			b.ReportMetric(cellFloat(b, row[1]), "refresh-msg-delta-pct")
		case "Refresh+A-LFU(5)":
			b.ReportMetric(cellFloat(b, row[1]), "alfu-msg-delta-pct")
		}
	}
}

// BenchmarkFig12Memory regenerates Figure 12 (cache occupancy over one
// month).
func BenchmarkFig12Memory(b *testing.B) {
	tbl := runExperiment(b, "fig12")
	var dns, alfu float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "DNS":
			dns = cellFloat(b, row[3])
		case "Refresh+A-LFU(5)":
			alfu = cellFloat(b, row[3])
		}
	}
	if dns > 0 {
		b.ReportMetric(alfu/dns, "records-multiplier")
	}
}

// BenchmarkAblationChildIRR regenerates the child-IRR ablation.
func BenchmarkAblationChildIRR(b *testing.B) {
	tbl := runExperiment(b, "ablation-childirr")
	b.ReportMetric(avgColumn(b, tbl, 1), "refresh-sr-pct")
	b.ReportMetric(avgColumn(b, tbl, 2), "nochildirr-sr-pct")
}

// BenchmarkMaxDamage regenerates the §6 maximum-damage comparison.
func BenchmarkMaxDamage(b *testing.B) {
	tbl := runExperiment(b, "maxdamage")
	b.ReportMetric(avgColumn(b, tbl, 1), "roottld-sr-pct")
	b.ReportMetric(avgColumn(b, tbl, 2), "maxdamage-sr-pct")
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkWirePack measures DNS message encoding with compression.
func BenchmarkWirePack(b *testing.B) {
	msg := sampleWireMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireUnpack measures DNS message decoding.
func BenchmarkWireUnpack(b *testing.B) {
	wire, err := sampleWireMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleWireMessage() *dnswire.Message {
	q := dnswire.NewQuery(1, dnswire.MustName("www.example.com."), dnswire.TypeA)
	r := q.Reply()
	r.Flags.Authoritative = true
	r.Answer = []dnswire.RR{{
		Name: dnswire.MustName("www.example.com."), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.CNAME{Target: dnswire.MustName("web.example.com.")},
	}}
	r.Authority = []dnswire.RR{
		{Name: dnswire.MustName("example.com."), Class: dnswire.ClassIN, TTL: 86400,
			Data: dnswire.NS{Host: dnswire.MustName("ns1.example.com.")}},
		{Name: dnswire.MustName("example.com."), Class: dnswire.ClassIN, TTL: 86400,
			Data: dnswire.NS{Host: dnswire.MustName("ns2.example.com.")}},
	}
	return r
}

// benchStack builds a small tree + caching server over the simulated
// network for resolver micro-benchmarks.
func benchStack(b *testing.B, scheme func(*core.Config)) (*core.CachingServer, []topology.TargetName, *simclock.Virtual) {
	b.Helper()
	p := topology.DefaultParams(1)
	p.NumTLDs = 5
	p.SLDsPerTLD = 20
	tree, err := topology.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	clk := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clk, 1)
	net.RTT = 0
	net.Timeout = 0
	tree.Install(net)
	cfg := core.Config{Transport: net, Clock: clk, RootHints: tree.RootHints}
	if scheme != nil {
		scheme(&cfg)
	}
	cs, err := core.NewCachingServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return cs, tree.QueryableNames(), clk
}

// BenchmarkResolveCold measures full hierarchy walks (cache cleared by
// using a different name each iteration, cycling the name list).
func BenchmarkResolveCold(b *testing.B) {
	cs, names, clk := benchStack(b, nil)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance far enough that previous answers expired.
		clk.Advance(8 * 24 * time.Hour)
		if _, err := cs.Resolve(ctx, names[i%len(names)].Name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveWarm measures cache-hit resolution.
func BenchmarkResolveWarm(b *testing.B) {
	cs, names, _ := benchStack(b, nil)
	ctx := context.Background()
	if _, err := cs.Resolve(ctx, names[0].Name, dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Resolve(ctx, names[0].Name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveWarmParallel measures the lock-free cache-hit path
// under maximum contention: every goroutine hammers the same hot name
// (one cache shard, no flight-table entry).
func BenchmarkResolveWarmParallel(b *testing.B) {
	cs, names, _ := benchStack(b, nil)
	ctx := context.Background()
	if _, err := cs.Resolve(ctx, names[0].Name, dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cs.Resolve(ctx, names[0].Name, dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveWarmParallelSpread is the shard-spread variant: the
// goroutines cycle through every warm name, so hits distribute across the
// cache shards the way mixed production traffic would.
func BenchmarkResolveWarmParallelSpread(b *testing.B) {
	cs, names, _ := benchStack(b, nil)
	ctx := context.Background()
	for _, n := range names {
		if _, err := cs.Resolve(ctx, n.Name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := names[next.Add(1)%uint64(len(names))]
			if _, err := cs.Resolve(ctx, n.Name, dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveRefreshScheme measures resolution cost with the full
// resilient configuration enabled.
func BenchmarkResolveRefreshScheme(b *testing.B) {
	cs, names, _ := benchStack(b, func(cfg *core.Config) {
		cfg.RefreshTTL = true
		cfg.Renewal = core.ALFU{C: 5, MaxDays: 50}
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Resolve(ctx, names[i%len(names)].Name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyGenerate measures hierarchy generation.
func BenchmarkTopologyGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := topology.DefaultParams(int64(i))
		p.NumTLDs = 8
		p.SLDsPerTLD = 50
		if _, err := topology.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNSSECExtension regenerates the §6 DNSSEC-extension experiment.
func BenchmarkDNSSECExtension(b *testing.B) {
	tbl := runExperiment(b, "dnssec")
	b.ReportMetric(avgColumn(b, tbl, 2), "signed-dns-sr-pct")
	b.ReportMetric(avgColumn(b, tbl, 4), "signed-alfu-sr-pct")
}

// BenchmarkSignZone measures whole-zone DNSSEC signing.
func BenchmarkSignZone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		z := zone.New(dnswire.MustName("bench.example."))
		z.MustAdd(dnswire.RR{Name: dnswire.MustName("bench.example."), Class: dnswire.ClassIN,
			TTL: 3600, Data: dnswire.NS{Host: dnswire.MustName("ns.bench.example.")}})
		for j := 0; j < 50; j++ {
			z.MustAdd(dnswire.RR{
				Name: dnswire.MustName(fmt.Sprintf("h%d.bench.example.", j)), Class: dnswire.ClassIN,
				TTL: 300, Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(j + 1)})},
			})
		}
		z.MustAdd(dnswire.RR{Name: dnswire.MustName("ns.bench.example."), Class: dnswire.ClassIN,
			TTL: 3600, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.250")}})
		s, err := dnssec.GenerateSigner(dnswire.MustName("bench.example."), 3600, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dnssec.SignZone(z, s, time.Now(), time.Now().Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyRRSet measures one Ed25519 RRset verification.
func BenchmarkVerifyRRSet(b *testing.B) {
	s, err := dnssec.GenerateSigner(dnswire.MustName("example."), 3600, nil)
	if err != nil {
		b.Fatal(err)
	}
	set := []dnswire.RR{{
		Name: dnswire.MustName("www.example."), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
	}}
	now := time.Now()
	sig, err := s.SignRRSet(set, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dnssec.VerifyRRSet(s.Key, sig, set, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition regenerates the cache-population extension experiment.
func BenchmarkPartition(b *testing.B) {
	tbl := runExperiment(b, "partition")
	b.ReportMetric(avgColumn(b, tbl, 1), "shared-cache-sr-pct")
	b.ReportMetric(avgColumn(b, tbl, 7), "split8-sr-pct")
}
