// Package wallclock forbids reading the wall clock in
// determinism-critical packages.
//
// The paper's argument rests on reproducible trace-driven simulation:
// `dnssim -exp all` must reproduce results_full.txt byte-for-byte, which
// only holds if every timestamp in the simulation path flows from the
// caller's simclock.Clock. A single time.Now() or time.Sleep() smuggled
// into the simulator, workload generator, or topology builder makes runs
// diverge by scheduling accident (the invariant introduced in PR 3 and
// relied on since PR 0).
package wallclock

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "wallclock"

// forbidden are the time-package functions that observe or wait on the
// wall clock. Pure arithmetic (time.Duration, time.Unix, t.Add) is fine.
var forbidden = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
	"time.AfterFunc": true,
}

// defaultPkgs is the determinism-critical set: everything that runs
// under the virtual clock during trace-driven simulation. simclock
// itself is included so that the one legitimate wall-clock read
// (Real.Now) carries a visible //dnslint:ignore annotation.
const defaultPkgs = "resilientdns/internal/sim," +
	"resilientdns/internal/simnet," +
	"resilientdns/internal/simclock," +
	"resilientdns/internal/experiments," +
	"resilientdns/internal/workload," +
	"resilientdns/internal/topology," +
	"resilientdns/internal/attack," +
	"resilientdns/internal/guard," +
	"resilientdns/internal/mesh"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid wall-clock reads (time.Now, time.Sleep, ...) in determinism-critical packages; " +
		"time must flow through simclock.Clock so simulation output stays reproducible",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) where wall-clock reads are forbidden")
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !lintutil.PkgMatches(pass.Pkg.Path(), pkgs) {
		// Out of scope: no wallclock finding can exist here, so every
		// wallclock ignore directive is stale by definition.
		lintutil.ReportStaleAll(pass, name)
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := lintutil.NewSuppressor(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || !isTimePkg(fn.Pkg()) {
			return
		}
		// Methods like (time.Time).After/Sub are pure comparisons, not
		// clock reads: only package-level time functions are forbidden.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		full := "time." + fn.Name()
		if !forbidden[full] {
			return
		}
		if lintutil.InTestFile(pass, call.Pos()) {
			return
		}
		supp.Report(pass, name, call.Pos(),
			"%s in determinism-critical package %s: take time from simclock.Clock instead", full, pass.Pkg.Path())
	})
	supp.ReportStale(pass, name)
	return nil, nil
}

func isTimePkg(pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == "time"
}
