package maporder_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	prev := maporder.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := maporder.Analyzer.Flags.Set("pkgs", "maporder_bad,maporder_ok"); err != nil {
		t.Fatal(err)
	}
	defer maporder.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, maporder.Analyzer, "maporder_bad", "maporder_ok", "maporder_other")
}
