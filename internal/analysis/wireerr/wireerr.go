// Package wireerr flags discarded errors from the dnswire codec.
//
// Pack/Unpack/CanonicalName and friends fail on hostile input by
// design — truncated messages, compression-pointer loops, oversized
// names (see internal/dnswire/fuzz_test.go for the menagerie). A caller
// that drops the error and uses the zero value anyway turns a parse
// failure into silent cache corruption or a malformed packet on the
// wire. Production code must check every dnswire error; test files are
// exempt (fuzz harnesses discard errors on purpose).
package wireerr

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "wireerr"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "flag discarded errors from dnswire Pack/Unpack/ParseName and other codec entry points",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := lintutil.NewSuppressor(pass)

	ins.Preorder([]ast.Node{(*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil), (*ast.GoStmt)(nil), (*ast.DeferStmt)(nil)}, func(n ast.Node) {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			// Bare call statement: every result, error included, dropped.
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if fn, errIdx := codecCallee(pass, call); fn != nil && errIdx >= 0 {
					report(pass, supp, call, fn)
				}
			}
		case *ast.GoStmt:
			if fn, errIdx := codecCallee(pass, stmt.Call); fn != nil && errIdx >= 0 {
				report(pass, supp, stmt.Call, fn)
			}
		case *ast.DeferStmt:
			if fn, errIdx := codecCallee(pass, stmt.Call); fn != nil && errIdx >= 0 {
				report(pass, supp, stmt.Call, fn)
			}
		case *ast.AssignStmt:
			// wire, _ := msg.Pack() — error slot assigned to blank.
			if len(stmt.Rhs) != 1 {
				return
			}
			call, ok := stmt.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			fn, errIdx := codecCallee(pass, call)
			if fn == nil || errIdx < 0 || errIdx >= len(stmt.Lhs) {
				return
			}
			if id, ok := stmt.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
				report(pass, supp, call, fn)
			}
		}
	})
	supp.ReportStale(pass, name)
	return nil, nil
}

func report(pass *analysis.Pass, supp *lintutil.Suppressor, call *ast.CallExpr, fn *types.Func) {
	if lintutil.InTestFile(pass, call.Pos()) {
		return
	}
	supp.Report(pass, name, call.Pos(),
		"discarded error from dnswire.%s: codec errors signal hostile or corrupt input and must be checked", fn.Name())
}

// codecCallee returns the called dnswire function and the index of its
// error result, or (nil, -1). It matches the package by name so the
// analyzer also fires on fixture copies of the codec under testdata.
func codecCallee(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, int) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, -1
	}
	if fn.Pkg().Name() != "dnswire" && !strings.HasSuffix(fn.Pkg().Path(), "/dnswire") {
		return nil, -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return fn, i
		}
	}
	return nil, -1
}
