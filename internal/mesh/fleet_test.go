package mesh

// Fleet integration tests: three full caching servers wired to three mesh
// nodes over the deterministic simnet fabrics, sharing one virtual clock.
// These are the end-to-end checks for the cooperative-mesh claims: one
// owner refetch per zone per TTL fleet-wide, gossip-warmed non-owner
// caches, peer-fetch answers during a hierarchy blackout, and partition
// recovery without a duplicate-renewal storm.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
)

var fleetEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type fleetMember struct {
	addr string
	cs   *core.CachingServer
	node *Node
}

type fleet struct {
	t       *testing.T
	clk     *simclock.Virtual
	dnet    *simnet.Network
	mnet    *simnet.MeshNet
	tree    *topology.Tree
	members []*fleetMember
}

// newFleet builds n caching servers on a shared DNS simnet and, when
// withMesh is set, joins them into one mesh over a zero-latency MeshNet.
// The hierarchy is small but spans every TTL bucket, so renewal cycles
// of several lengths fall inside a short virtual horizon.
func newFleet(t *testing.T, n int, withMesh bool) *fleet {
	t.Helper()
	clk := simclock.NewVirtual(fleetEpoch)
	dnet := simnet.New(clk, 7)
	dnet.RTT = 0
	dnet.Timeout = 0

	params := topology.DefaultParams(7)
	params.NumTLDs = 3
	params.SLDsPerTLD = 5
	tree, err := topology.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	tree.InstallOpt(dnet, true)

	mnet := simnet.NewMeshNet(clk)
	mnet.RTT = 0
	mnet.Timeout = 0

	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, fmt.Sprintf("10.9.0.%d:7946", i+1))
	}

	f := &fleet{t: t, clk: clk, dnet: dnet, mnet: mnet, tree: tree}
	for i := 0; i < n; i++ {
		m := &fleetMember{addr: addrs[i]}
		cfg := core.Config{
			Transport:  dnet,
			Clock:      clk,
			RootHints:  tree.RootHints,
			RefreshTTL: true,
			Renewal:    core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)},
		}
		if withMesh {
			// Same closure-over-late-bound-node wiring as cmd/dnscache:
			// the node is created right below, before any resolution or
			// renewal can run.
			mm := m
			cfg.RenewalOwner = func(zone dnswire.Name) bool { return mm.node.OwnsRenewal(zone) }
			cfg.OnRenewed = func(zone dnswire.Name) { mm.node.GossipZone(zone) }
			cfg.PeerFetch = func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *core.Result {
				msg := mm.node.PeerFetch(ctx, qname, qtype)
				if msg == nil {
					return nil
				}
				return &core.Result{RCode: msg.RCode, Answer: msg.Answer, Authority: msg.Authority, FromCache: true}
			}
		}
		cs, err := core.NewCachingServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.cs = cs
		if withMesh {
			var peers []string
			for _, a := range addrs {
				if a != addrs[i] {
					peers = append(peers, a)
				}
			}
			node, err := NewNode(Config{
				Self:         addrs[i],
				Key:          testKey,
				Peers:        peers,
				Transport:    mnet.Bind(addrs[i]),
				Clock:        clk,
				Backend:      cs,
				OwnerRenewal: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			m.node = node
			mnet.Register(addrs[i], node.HandleFrame)
		}
		f.members = append(f.members, m)
	}
	return f
}

// tick runs one probe round on every node and advances one probe interval.
func (f *fleet) tick() {
	for _, m := range f.members {
		if m.node != nil {
			m.node.Tick(f.clk.Now())
		}
	}
	f.clk.Advance(DefaultProbeInterval)
}

// confirm drives probe rounds until every node has cookie-confirmed every
// peer, i.e. the fleet is fully meshed.
func (f *fleet) confirm() {
	f.t.Helper()
	for round := 0; round < 10; round++ {
		f.tick()
		if f.allConfirmed() {
			return
		}
	}
	f.t.Fatalf("fleet never fully confirmed: %+v", f.members[0].node.Snapshot())
}

func (f *fleet) allConfirmed() bool {
	for _, m := range f.members {
		if m.node == nil {
			continue
		}
		snap := m.node.Snapshot()
		if len(snap.Peers) != len(f.members)-1 {
			return false
		}
		for _, p := range snap.Peers {
			if !p.Confirmed || p.State != "alive" {
				return false
			}
		}
	}
	return true
}

// targets returns the first n queryable names of the shared topology.
func (f *fleet) targets(n int) []topology.TargetName {
	names := f.tree.QueryableNames()
	if len(names) > n {
		names = names[:n]
	}
	return names
}

// warm resolves every target on the given members, filling caches and
// accruing renewal credit, exactly as live client traffic would.
func (f *fleet) warm(targets []topology.TargetName, members ...*fleetMember) {
	f.t.Helper()
	ctx := context.Background()
	for _, m := range members {
		for _, tn := range targets {
			if _, err := m.cs.Resolve(ctx, tn.Name, dnswire.TypeA); err != nil {
				f.t.Fatalf("warm %s on %s: %v", tn.Name, m.addr, err)
			}
		}
	}
}

// drain fires every member's renewals at their exact virtual instants
// until none is due before horizon, interleaving mesh probe rounds so
// failure detection keeps pace with virtual time. This is the fleet
// version of the experiment suite's replay loop.
func (f *fleet) drain(horizon time.Time) {
	ctx := context.Background()
	for {
		var next time.Time
		any := false
		for _, m := range f.members {
			if due, ok := m.cs.NextRenewalDue(); ok && due.Before(horizon) && (!any || due.Before(next)) {
				next, any = due, true
			}
		}
		if !any {
			break
		}
		if next.After(f.clk.Now()) {
			f.clk.AdvanceTo(next)
		}
		for _, m := range f.members {
			if m.node != nil {
				m.node.Tick(f.clk.Now())
			}
			m.cs.ProcessDueRenewals(ctx, f.clk.Now())
		}
	}
	if horizon.After(f.clk.Now()) {
		f.clk.AdvanceTo(horizon)
	}
}

func (f *fleet) renewalQueries() uint64 {
	var sum uint64
	for _, m := range f.members {
		sum += m.cs.Stats().RenewalQueries
	}
	return sum
}

func (f *fleet) renewalDeferred() uint64 {
	var sum uint64
	for _, m := range f.members {
		sum += m.cs.Stats().RenewalDeferred
	}
	return sum
}

// TestFleetRenewalDedupAndGossipWarm is the headline dedup claim: a
// three-member mesh fleet spends at most half (in practice about a third)
// of the aggregate renewal traffic of three solo servers over the same
// horizon, while gossip keeps every member's copy of each renewed zone
// alive — including the two non-owners who never refetched it.
func TestFleetRenewalDedupAndGossipWarm(t *testing.T) {
	horizon := fleetEpoch.Add(8 * time.Hour)

	solo := newFleet(t, 3, false)
	targets := solo.targets(36)
	solo.warm(targets, solo.members...)
	solo.drain(horizon)
	soloRenewals := solo.renewalQueries()
	if soloRenewals == 0 {
		t.Fatal("no-mesh baseline issued no renewals; topology or credit setup is broken")
	}

	mf := newFleet(t, 3, true)
	mf.confirm()
	mf.warm(mf.targets(36), mf.members...)
	mf.drain(horizon)
	meshRenewals := mf.renewalQueries()

	if meshRenewals == 0 {
		t.Fatal("mesh fleet issued no renewals")
	}
	if meshRenewals*2 > soloRenewals {
		t.Errorf("mesh fleet issued %d aggregate renewal queries, want ≤ half the no-mesh fleet's %d",
			meshRenewals, soloRenewals)
	}
	if mf.renewalDeferred() == 0 {
		t.Error("no renewals were deferred to fleet owners; ownership wiring is dead")
	}

	// Gossip warmth: zones whose IRR TTL is far shorter than the horizon
	// can only still be cached if renewals kept extending them — and on
	// the two non-owners, only the owner's gossip pushes did that.
	now := mf.clk.Now()
	warmZones := 0
	seen := map[dnswire.Name]bool{}
	for _, tn := range mf.targets(36) {
		if seen[tn.Zone] {
			continue
		}
		seen[tn.Zone] = true
		short, allWarm := false, true
		for _, m := range mf.members {
			e := m.cs.Cache().Peek(tn.Zone, dnswire.TypeNS)
			if e == nil || !e.Expires.After(now) {
				allWarm = false
				break
			}
			if e.OrigTTL < 6*time.Hour {
				short = true
			}
		}
		if short && allWarm {
			warmZones++
		}
	}
	if warmZones == 0 {
		t.Error("no short-TTL zone stayed warm on all three members; gossip is not extending non-owner caches")
	}
}

// TestFleetBlackoutPeerFetch drives the paper's attack scenario at the
// fleet level: the root and TLD hierarchy is blacked out, a member with a
// cold cache cannot resolve locally, and the mesh peer-fetch fallback
// turns its SERVFAIL into an answer served from a warm peer's cache.
func TestFleetBlackoutPeerFetch(t *testing.T) {
	f := newFleet(t, 3, true)
	f.confirm()

	// A data name inside an SLD zone, cached only on members 1 and 2.
	targets := f.targets(36)
	var tn topology.TargetName
	for _, c := range targets {
		if f.tree.Zones[c.Zone] != nil && f.tree.Zones[c.Zone].Depth >= 2 {
			tn = c
			break
		}
	}
	if tn.Name == "" {
		t.Fatal("no SLD-depth target in topology")
	}
	f.warm([]topology.TargetName{tn}, f.members[1], f.members[2])

	// Black out the upper hierarchy and move just inside the window, so
	// the warm copies (≥1 min data TTL) are still live.
	start := f.clk.Now().Add(5 * time.Second)
	f.dnet.SetAttack(attack.RootAndTLDs(start, time.Hour, f.tree.AllZoneNames()))
	f.clk.AdvanceTo(start.Add(10 * time.Second))

	ctx := context.Background()
	res, err := f.members[0].cs.Resolve(ctx, tn.Name, dnswire.TypeA)
	if err != nil {
		t.Fatalf("cold member could not resolve %s during blackout despite warm peers: %v", tn.Name, err)
	}
	if len(res.Answer) == 0 {
		t.Fatalf("peer-fetched result for %s carries no answer: %+v", tn.Name, res)
	}
	st := f.members[0].cs.Stats()
	if st.PeerFetches == 0 || st.PeerFetchAnswered == 0 {
		t.Errorf("peer-fetch counters = attempted %d answered %d, want both ≥ 1",
			st.PeerFetches, st.PeerFetchAnswered)
	}

	// A name no member ever cached still fails: the fallback serves only
	// from peer caches, it never triggers recursive resolution on peers.
	cold := targets[len(targets)-1]
	if cold.Name == tn.Name {
		cold = targets[len(targets)-2]
	}
	if _, err := f.members[0].cs.Resolve(ctx, cold.Name, dnswire.TypeA); err == nil {
		t.Errorf("uncached %s resolved during blackout; peer fetch must not recurse", cold.Name)
	}
}

// TestFleetPartitionOwnershipTakeover isolates one member and checks that
// ownership re-derives cleanly: the survivors agree on exactly one new
// owner per zone, and a full renewal horizon afterwards costs them no
// more aggregate upstream traffic than a single perfectly-deduplicated
// server — i.e. no duplicate-renewal storm.
func TestFleetPartitionOwnershipTakeover(t *testing.T) {
	horizon := fleetEpoch.Add(8 * time.Hour)

	// Perfect-dedup yardstick: one solo server renews each zone exactly
	// once per cycle, which is what the surviving pair should match.
	solo := newFleet(t, 1, false)
	targets := solo.targets(36)
	solo.warm(targets, solo.members[0])
	solo.drain(horizon)
	soloRenewals := solo.renewalQueries()

	f := newFleet(t, 3, true)
	f.confirm()
	f.warm(f.targets(36), f.members...)

	victim := f.members[2]
	f.mnet.Isolate(victim.addr)
	for i := 0; i < DefaultDeadAfter*2+2; i++ {
		f.tick()
	}

	survivors := f.members[:2]
	for _, m := range survivors {
		for _, p := range m.node.Snapshot().Peers {
			if p.Addr == victim.addr && p.State != "dead" {
				t.Fatalf("%s still sees isolated %s as %q", m.addr, victim.addr, p.State)
			}
		}
	}

	// Exactly one survivor owns each zone — no gaps, no double owners.
	seen := map[dnswire.Name]bool{}
	for _, tn := range f.targets(36) {
		if seen[tn.Zone] {
			continue
		}
		seen[tn.Zone] = true
		owners := 0
		for _, m := range survivors {
			if m.node.OwnsRenewal(tn.Zone) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("zone %s has %d owners among survivors, want exactly 1", tn.Zone, owners)
		}
		// The isolated member sees everyone else dead, so it owns its
		// whole keyspace locally — correct partition behaviour.
		if !victim.node.OwnsRenewal(tn.Zone) {
			t.Errorf("isolated member does not own %s locally", tn.Zone)
		}
	}

	f.drain(horizon)
	var survivorRenewals uint64
	for _, m := range survivors {
		survivorRenewals += m.cs.Stats().RenewalQueries
	}
	// 20% slack absorbs cycle-boundary offsets from the confirmation and
	// detection ticks; a duplicate-renewal storm would be ~2x.
	if survivorRenewals > soloRenewals+soloRenewals/5 {
		t.Errorf("survivors issued %d aggregate renewal queries vs perfect-dedup baseline %d: duplicate-renewal storm",
			survivorRenewals, soloRenewals)
	}
}
