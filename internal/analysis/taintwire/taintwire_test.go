package taintwire_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/taintwire"
)

func TestTaintwire(t *testing.T) {
	flag := taintwire.Analyzer.Flags.Lookup("chokepoints")
	prev := flag.Value.String()
	if err := flag.Value.Set("taintwire_ok.Ingest"); err != nil {
		t.Fatal(err)
	}
	defer flag.Value.Set(prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, taintwire.Analyzer,
		"taintwire_bad", "taintwire_ok", "taintwire_stale")
}
