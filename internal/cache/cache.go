// Package cache implements the resolver-side RRset cache that is the heart
// of the paper's contribution. Beyond vanilla TTL-based expiry it supports:
//
//   - credibility ranking (RFC 2181): data learned from a child zone's own
//     answers replaces glue learned from parent referrals;
//   - TTL refresh: resetting a cached infrastructure RRset's TTL whenever a
//     fresh copy arrives from the zone's own authoritative servers;
//   - a maximum-TTL clamp (7 days, §6 "Deployment Issues");
//   - expiry tombstones used to measure the paper's Fig. 3 time gap
//     between an IRR's expiry and the next query needing it;
//   - occupancy accounting (cached zones and records, Fig. 12 and Table 2).
//
// TTL renewal policies (LRU/LFU and their adaptive variants) are layered
// on top by package core, which owns the renewal scheduler.
package cache

import (
	"sort"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// Credibility ranks how trustworthy a cached RRset is, following the
// RFC 2181 §5.4.1 ranking (higher replaces lower).
type Credibility int

// Credibility levels, lowest first.
const (
	// CredReferral: NS/glue from a parent zone's referral.
	CredReferral Credibility = 1
	// CredAuthority: records from the authority/additional sections of an
	// authoritative answer (the child zone's own copy of its IRRs).
	CredAuthority Credibility = 2
	// CredAnswer: records from the answer section of an authoritative answer.
	CredAnswer Credibility = 3
)

// Key identifies a cached RRset.
type Key struct {
	Name dnswire.Name
	Type dnswire.Type
}

// Entry is one cached RRset.
type Entry struct {
	Key  Key
	RRs  []dnswire.RR
	Cred Credibility
	// staleTombstoned marks that the expiry gap for this entry was
	// already observed, so repeated stale accesses do not re-record it.
	staleTombstoned bool
	// Infra marks infrastructure RRsets: a zone's NS set and the address
	// records of its name servers. Only these are eligible for the
	// paper's refresh and renewal treatment.
	Infra bool
	// OrigTTL is the (possibly clamped) TTL the set arrived with.
	OrigTTL time.Duration
	// Expires is when the entry leaves the cache.
	Expires time.Time
	// StoredAt is when the entry was first inserted or last replaced.
	StoredAt time.Time
}

// GapFunc observes a tombstone hit: a lookup for key arrived gap after the
// previous entry (with the given original TTL) expired. Used for Fig. 3.
type GapFunc func(key Key, gap time.Duration, origTTL time.Duration)

// Config parameterises a Cache.
type Config struct {
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// MaxTTL clamps all TTLs; caching servers do not accept arbitrarily
	// large TTL values (§6). Defaults to 7 days. Negative disables.
	MaxTTL time.Duration
	// RefreshInfraTTL enables the paper's TTL-refresh scheme: an arriving
	// copy of a cached infrastructure RRset resets its TTL even when the
	// credibility is not higher.
	RefreshInfraTTL bool
	// OnGap, when set, observes expiry-to-next-use gaps.
	OnGap GapFunc
	// MaxEntries bounds the number of live RRset entries (0 = unbounded).
	// When full, the soonest-to-expire non-infrastructure entries are
	// evicted first; infrastructure records — the paper's prized asset —
	// go last.
	MaxEntries int
	// KeepStale retains expired entries for this long so they can be
	// served as a last resort when authoritative servers are unreachable
	// — the Ballani & Francis HotNets'06 scheme the paper's related work
	// (§7) compares against, and the ancestor of RFC 8767 serve-stale.
	// Zero disables stale retention.
	KeepStale time.Duration
}

// DefaultMaxTTL is the clamp applied when Config.MaxTTL is zero.
const DefaultMaxTTL = 7 * 24 * time.Hour

// Stats describes cache occupancy at a point in time.
type Stats struct {
	// Entries is the number of live RRset entries.
	Entries int
	// Records is the number of live resource records.
	Records int
	// Zones is the number of zones whose NS RRset is cached — the
	// paper's "number of cached zones".
	Zones int
	// InfraEntries is the number of live infrastructure RRset entries.
	InfraEntries int
	// StaleEntries counts retained expired entries (KeepStale only).
	StaleEntries int
	// ApproxBytes estimates the wire-format size of the cached data,
	// grounding the paper's "tens of MBytes" memory claim (§5.2.2).
	ApproxBytes int
}

// Cache is an RRset cache. It is not safe for concurrent use; wrap it or
// confine it to one goroutine (the simulator is single-threaded, and the
// live caching server serialises through a mutex in package core).
type Cache struct {
	cfg     Config
	entries map[Key]*Entry
	// tombstones remember when an expired entry died, to measure gaps.
	tombstones map[Key]tombstone
	// hits/misses count Get outcomes for reporting.
	hits, misses uint64
	// staleHits counts stale entries served after expiry.
	staleHits uint64
	// evictions counts capacity-pressure removals.
	evictions uint64
}

type tombstone struct {
	expiredAt time.Time
	origTTL   time.Duration
	infra     bool
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = DefaultMaxTTL
	}
	return &Cache{
		cfg:        cfg,
		entries:    make(map[Key]*Entry),
		tombstones: make(map[Key]tombstone),
	}
}

// Clock returns the cache's clock.
func (c *Cache) Clock() simclock.Clock { return c.cfg.Clock }

// RefreshEnabled reports whether TTL refresh is on.
func (c *Cache) RefreshEnabled() bool { return c.cfg.RefreshInfraTTL }

// clampTTL applies the MaxTTL policy to a TTL expressed in seconds.
func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if c.cfg.MaxTTL > 0 && ttl > c.cfg.MaxTTL {
		return c.cfg.MaxTTL
	}
	return ttl
}

// rrsetEqual reports whether two RRsets carry the same data, ignoring TTL
// and order.
func rrsetEqual(a, b []dnswire.RR) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = a[i].Data.String()
		bs[i] = b[i].Data.String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// minTTL returns the smallest TTL in the set, as a duration.
func minTTL(rrs []dnswire.RR) time.Duration {
	min := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < min {
			min = rr.TTL
		}
	}
	return time.Duration(min) * time.Second
}

// Put inserts or updates the RRset for its (name, type). All records must
// share one owner and type. Returns the resulting entry.
//
// Replacement rules:
//   - an expired or absent entry is always replaced;
//   - a higher-credibility set replaces a lower one;
//   - an equal-or-higher credibility copy of an infrastructure set
//     refreshes the entry's TTL when RefreshInfraTTL is on;
//   - otherwise the arriving copy is ignored (vanilla DNS behaviour: the
//     cached TTL keeps counting down).
func (c *Cache) Put(rrs []dnswire.RR, cred Credibility, infra bool) *Entry {
	if len(rrs) == 0 {
		return nil
	}
	now := c.cfg.Clock.Now()
	key := Key{Name: rrs[0].Name, Type: rrs[0].Type()}
	ttl := c.clampTTL(minTTL(rrs))

	if e, ok := c.entries[key]; ok {
		if e.Expires.After(now) {
			same := rrsetEqual(e.RRs, rrs)
			switch {
			case cred > e.Cred:
				// Higher credibility: replace outright.
			case !same && cred == e.Cred:
				// Equal credibility, different data: the fresher copy
				// wins (RFC 2181 §5.4.1 replacement).
			case same && c.cfg.RefreshInfraTTL && e.Infra && infra && cred >= e.Cred:
				// TTL refresh: reset the clock on the existing entry.
				// Keep the cached (higher-credibility) data; only the
				// timer is reset, per §4 "TTL Refresh".
				e.Expires = now.Add(e.OrigTTL)
				return e
			default:
				return e // vanilla: ignore the new copy
			}
		} else {
			c.expireEntry(key, e, now)
			c.noteTombstoneHit(key, now)
		}
	} else {
		c.noteTombstoneHit(key, now)
	}

	e := &Entry{
		Key:      key,
		RRs:      append([]dnswire.RR(nil), rrs...),
		Cred:     cred,
		Infra:    infra,
		OrigTTL:  ttl,
		Expires:  now.Add(ttl),
		StoredAt: now,
	}
	c.entries[key] = e
	delete(c.tombstones, key)
	c.enforceCapacity(now)
	return e
}

// enforceCapacity evicts entries until the cache fits MaxEntries: expired
// entries first, then the soonest-to-expire data entries, then (only if
// unavoidable) the soonest-to-expire infrastructure entries.
func (c *Cache) enforceCapacity(now time.Time) {
	if c.cfg.MaxEntries <= 0 || len(c.entries) <= c.cfg.MaxEntries {
		return
	}
	c.SweepExpired()
	for _, infraPass := range []bool{false, true} {
		for len(c.entries) > c.cfg.MaxEntries {
			var victim Key
			var victimExpires time.Time
			found := false
			for key, e := range c.entries {
				if e.Infra != infraPass {
					continue
				}
				if !found || e.Expires.Before(victimExpires) {
					victim, victimExpires, found = key, e.Expires, true
				}
			}
			if !found {
				break
			}
			delete(c.entries, victim)
			c.evictions++
		}
		if len(c.entries) <= c.cfg.MaxEntries {
			return
		}
	}
}

// Evictions returns how many entries capacity pressure has removed.
func (c *Cache) Evictions() uint64 { return c.evictions }

// Get returns the live entry for (name, type), or nil. An expired entry is
// retired (leaving a tombstone; retained for stale service under
// KeepStale) and reported as a miss.
func (c *Cache) Get(name dnswire.Name, t dnswire.Type) *Entry {
	key := Key{Name: name, Type: t}
	e, ok := c.entries[key]
	if !ok {
		c.noteTombstoneHit(key, c.cfg.Clock.Now())
		c.misses++
		return nil
	}
	now := c.cfg.Clock.Now()
	if !e.Expires.After(now) {
		c.expireEntry(key, e, now)
		c.noteTombstoneHit(key, now)
		c.misses++
		return nil
	}
	c.hits++
	return e
}

// GetStale returns the expired-but-retained entry for (name, type) when
// stale retention is on and the entry died within the KeepStale window.
// Live entries are returned as well (callers prefer Get first).
func (c *Cache) GetStale(name dnswire.Name, t dnswire.Type) *Entry {
	if c.cfg.KeepStale <= 0 {
		return nil
	}
	key := Key{Name: name, Type: t}
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	now := c.cfg.Clock.Now()
	if e.Expires.After(now) {
		return e
	}
	if now.Sub(e.Expires) > c.cfg.KeepStale {
		c.expireEntry(key, e, now)
		return nil
	}
	c.staleHits++
	return e
}

// StaleHits counts GetStale successes on expired entries.
func (c *Cache) StaleHits() uint64 { return c.staleHits }

// Peek returns the entry without expiry processing or stats; nil if absent.
func (c *Cache) Peek(name dnswire.Name, t dnswire.Type) *Entry {
	return c.entries[Key{Name: name, Type: t}]
}

// Extend resets the entry's expiry to now + its original TTL, returning
// false if the entry is absent. Package core uses this when a renewal
// refetch succeeds.
func (c *Cache) Extend(name dnswire.Name, t dnswire.Type) bool {
	e, ok := c.entries[Key{Name: name, Type: t}]
	if !ok {
		return false
	}
	e.Expires = c.cfg.Clock.Now().Add(e.OrigTTL)
	return true
}

// Evict removes the entry without leaving a tombstone (used when a zone's
// servers all stop responding and its stale IRRs must be discarded).
func (c *Cache) Evict(name dnswire.Name, t dnswire.Type) {
	delete(c.entries, Key{Name: name, Type: t})
}

// expireEntry retires a dead entry: it leaves a tombstone (once) and
// either deletes the entry or, with KeepStale, retains it for stale
// service until the window passes.
func (c *Cache) expireEntry(key Key, e *Entry, now time.Time) {
	if !e.staleTombstoned {
		c.tombstones[key] = tombstone{expiredAt: e.Expires, origTTL: e.OrigTTL, infra: e.Infra}
		e.staleTombstoned = true
	}
	if c.cfg.KeepStale > 0 && now.Sub(e.Expires) <= c.cfg.KeepStale {
		return // retained as stale
	}
	delete(c.entries, key)
}

// noteTombstoneHit reports the gap between an entry's expiry and this
// renewed interest in it, then clears the tombstone.
func (c *Cache) noteTombstoneHit(key Key, now time.Time) {
	ts, ok := c.tombstones[key]
	if !ok {
		return
	}
	delete(c.tombstones, key)
	if c.cfg.OnGap != nil && now.After(ts.expiredAt) {
		c.cfg.OnGap(key, now.Sub(ts.expiredAt), ts.origTTL)
	}
}

// SweepExpired removes every entry whose TTL has passed, leaving
// tombstones. The cache expires lazily on Get; call this before reading
// occupancy stats so that Fig. 12-style series reflect live entries only.
func (c *Cache) SweepExpired() {
	now := c.cfg.Clock.Now()
	for key, e := range c.entries {
		if !e.Expires.After(now) {
			c.expireEntry(key, e, now)
		}
	}
}

// Stats reports occupancy. Call SweepExpired first for exact numbers.
// Live and stale entries are counted separately.
func (c *Cache) Stats() Stats {
	var s Stats
	now := c.cfg.Clock.Now()
	for key, e := range c.entries {
		if !e.Expires.After(now) {
			s.StaleEntries++
			continue
		}
		s.Entries++
		s.Records += len(e.RRs)
		if e.Infra {
			s.InfraEntries++
		}
		if key.Type == dnswire.TypeNS {
			s.Zones++
		}
		for _, rr := range e.RRs {
			// Owner + fixed RR header (type/class/TTL/rdlength) + a
			// cheap RDATA size proxy.
			s.ApproxBytes += len(rr.Name) + 10 + len(rr.Data.String())
		}
	}
	return s
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of live entries (without sweeping).
func (c *Cache) Len() int { return len(c.entries) }

// InfraExpiries returns the (name, expiry) pairs of all live
// infrastructure NS entries, sorted by expiry. The renewal scheduler in
// package core uses this to rebuild its due-queue after configuration
// changes and in tests.
func (c *Cache) InfraExpiries() []ExpiryInfo {
	var out []ExpiryInfo
	for key, e := range c.entries {
		if key.Type == dnswire.TypeNS && e.Infra {
			out = append(out, ExpiryInfo{Zone: key.Name, Expires: e.Expires, OrigTTL: e.OrigTTL})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Expires.Equal(out[j].Expires) {
			return out[i].Expires.Before(out[j].Expires)
		}
		return out[i].Zone < out[j].Zone
	})
	return out
}

// ExpiryInfo describes one cached zone IRR's expiry.
type ExpiryInfo struct {
	Zone    dnswire.Name
	Expires time.Time
	OrigTTL time.Duration
}

// RemainingTTL returns the seconds left for an entry at time now, for
// serving decremented TTLs to stub resolvers.
func (e *Entry) RemainingTTL(now time.Time) uint32 {
	d := e.Expires.Sub(now)
	if d <= 0 {
		return 0
	}
	secs := int64(d / time.Second)
	if secs == 0 {
		secs = 1
	}
	return uint32(secs)
}

// RRsWithRemainingTTL returns a copy of the RRset with TTLs decremented to
// the remaining lifetime.
func (e *Entry) RRsWithRemainingTTL(now time.Time) []dnswire.RR {
	rem := e.RemainingTTL(now)
	out := make([]dnswire.RR, len(e.RRs))
	for i, rr := range e.RRs {
		rr.TTL = rem
		out[i] = rr
	}
	return out
}
