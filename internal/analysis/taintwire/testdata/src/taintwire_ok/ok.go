// Package taintwire_ok is a passing fixture: writes routed through the
// declared chokepoint, untainted writes, and the escape hatch. Any
// diagnostic here is a false positive.
package taintwire_ok

import (
	"context"

	"cache"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Ingest is the validated chokepoint (listed via -chokepoints in the
// test): its cache writes are the sanctioned ones.
func Ingest(c *cache.Cache, resp []byte) {
	if len(resp) < 12 {
		return // validation lives here
	}
	c.Put(resp, 2)
}

// Fetch routes the response through the chokepoint: clean.
func Fetch(ctx context.Context, tr Transport, c *cache.Cache) {
	resp, _ := tr.Exchange(ctx, "10.0.0.1", nil)
	Ingest(c, resp)
}

// Prime writes locally-authored bytes: no network origin, no finding.
func Prime(c *cache.Cache) {
	c.Put([]byte{0x00, 0x01}, 2)
}

// Gossip has reviewed its bypass and says why: the escape hatch needs
// a justification to count.
func Gossip(ctx context.Context, tr Transport, c *cache.Cache) {
	resp, _ := tr.Exchange(ctx, "10.0.0.1", nil)
	c.Put(resp, 0) //dnslint:ignore taintwire fixture-sanctioned bypass with a written justification
}
