GO ?= go

.PHONY: build vet lint lint-sarif test race check bench bench-short bench-paper fuzz mesh-test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the dnslint analyzer suite (internal/analysis/...) over the
# repo via the vet -vettool protocol. Zero unannotated findings is the
# bar; suppress with `//dnslint:ignore <analyzer> <reason>`. Analysis
# scope (which packages each invariant is enforced in) lives in each
# analyzer's -pkgs default, never here: everything, cmd/ and _test.go
# included, is handed to the driver. Repeat runs are cheap — vet caches
# per-package facts (the dataflow index, taint and deadline summaries)
# in the go build cache, so only changed packages re-analyze.
lint:
	$(GO) build -o bin/dnslint ./cmd/dnslint
	$(GO) vet -vettool=$(abspath bin/dnslint) ./...

# lint-sarif emits the same findings as a SARIF 2.1.0 log for CI code
# scanning. Always exits 0 on findings: `make lint` is the gate, this
# is the reporter.
lint-sarif:
	$(GO) build -o bin/dnslint ./cmd/dnslint
	./bin/dnslint -sarif ./... > dnslint.sarif

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# mesh-test runs the multi-process mesh integration test: real dnscache
# binaries on real sockets, peer-fetching through an upstream outage.
mesh-test:
	DNSCACHE_MESH_PROC=1 $(GO) test -race -run TestMeshMultiProcess -v ./cmd/dnscache

# check is what CI runs: the race detector and dnslint gate every PR.
check: build vet lint race mesh-test

# bench is the perf-trajectory snapshot: wire-hot-path micro-benchmarks
# plus a dnsperf run against a real dnsserver+dnscache pair on loopback,
# written to BENCH_10.json (qps, p50/p99, allocs/op). Compare against the
# baseline recorded in EXPERIMENTS.md before accepting a perf-sensitive
# change.
bench:
	$(GO) build -o bin/dnsserver ./cmd/dnsserver
	$(GO) build -o bin/dnscache ./cmd/dnscache
	$(GO) build -o bin/dnsperf ./cmd/dnsperf
	$(GO) run ./cmd/dnsbench -out BENCH_10.json

# bench-short is the CI variant: micro-benchmarks only, no sockets beyond
# loopback exchange, no separate processes.
bench-short:
	$(GO) run ./cmd/dnsbench -e2e=false -out BENCH_10.json

# bench-paper regenerates every table/figure benchmark in the root suite
# (the paper-reproduction harness, one iteration each).
bench-paper:
	$(GO) test -bench=. -benchtime=1x .

# fuzz is the CI smoke pass over the wire-format and persist-format parsers.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalName -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzParseStore -fuzztime=30s ./internal/persist
	$(GO) test -run='^$$' -fuzz=FuzzMeshFrame -fuzztime=30s ./internal/mesh
