package resolve

import "sync/atomic"

// Counters are the pipeline's cumulative event counts. They cover the
// upstream-facing half of the server's statistics; the owning server
// keeps its own frontend counters (queries in, coalesced, renewals) and
// merges the two snapshots.
type Counters struct {
	// QueriesOut counts queries sent to authoritative servers, renewal
	// refetches included; QueriesOutFailed the ones that timed out or
	// were unreachable.
	QueriesOut       atomic.Uint64
	QueriesOutFailed atomic.Uint64

	// Referrals counts referral responses followed.
	Referrals atomic.Uint64
	// StaleAnswers counts expired records served under ServeStale.
	StaleAnswers atomic.Uint64
	// PrefetchQueries counts early refreshes issued by Prefetch.
	PrefetchQueries atomic.Uint64

	// Retries counts upstream failover attempts beyond the first within
	// a single fetch.
	Retries atomic.Uint64
	// QuarantineSkips counts quarantined servers deprioritized behind a
	// healthy one during selection.
	QuarantineSkips atomic.Uint64
	// BudgetExhausted counts failover loops cut short by the retry
	// budget.
	BudgetExhausted atomic.Uint64

	// GlueFetches counts out-of-bailiwick name-server address
	// resolutions charged against the per-query glue budget.
	GlueFetches atomic.Uint64
	// GlueBudgetExhausted counts glue resolutions skipped because the
	// query's aggregate budget ran out (the NXNS-style fanout bound).
	GlueBudgetExhausted atomic.Uint64

	// PeerFetches counts mesh peer-fetch fallbacks attempted after
	// local resolution failed; PeerFetchAnswered the ones a peer's
	// cache could answer.
	PeerFetches       atomic.Uint64
	PeerFetchAnswered atomic.Uint64
}

// CounterSnapshot is a plain-value copy of Counters.
type CounterSnapshot struct {
	QueriesOut       uint64
	QueriesOutFailed uint64
	Referrals        uint64
	StaleAnswers     uint64
	PrefetchQueries  uint64
	Retries          uint64
	QuarantineSkips  uint64
	BudgetExhausted  uint64

	GlueFetches         uint64
	GlueBudgetExhausted uint64
	PeerFetches         uint64
	PeerFetchAnswered   uint64
}

// snapshot reads every counter.
func (c *Counters) snapshot() CounterSnapshot {
	return CounterSnapshot{
		QueriesOut:       c.QueriesOut.Load(),
		QueriesOutFailed: c.QueriesOutFailed.Load(),
		Referrals:        c.Referrals.Load(),
		StaleAnswers:     c.StaleAnswers.Load(),
		PrefetchQueries:  c.PrefetchQueries.Load(),
		Retries:          c.Retries.Load(),
		QuarantineSkips:  c.QuarantineSkips.Load(),
		BudgetExhausted:  c.BudgetExhausted.Load(),

		GlueFetches:         c.GlueFetches.Load(),
		GlueBudgetExhausted: c.GlueBudgetExhausted.Load(),
		PeerFetches:         c.PeerFetches.Load(),
		PeerFetchAnswered:   c.PeerFetchAnswered.Load(),
	}
}
