// Package goroleak flags goroutines that can never be stopped.
//
// The long-lived components of this system — the caching server core,
// the resolve pipeline, the client guard, the mesh, persistence, the
// debug endpoint — run background loops for renewals, prefetch,
// journal flushing, gossip, and sweeping. Under the paper's attack
// model these loops multiply: a resolver that leaks one goroutine per
// reload, per reconnect, or per failed upstream eventually dies of its
// own defenses (and a leaked renewal loop keeps hammering upstreams
// that asked us to stop). The invariant: every goroutine started in a
// long-lived component must be stoppable — its loop has to observe
// ctx.Done(), a stop channel, or terminate on its own.
//
// Detection is a leak-shape analysis over the shared dataflow index:
//
//   - an infinite loop (`for { ... }`) is unstoppable if it contains no
//     return, no break out of the loop, no goto, and no receive from —
//     or range over — a non-timer channel. Receiving from a
//     time.Ticker/time.Timer channel or time.After/time.Tick does NOT
//     count: timers fire forever, they never say "stop" (`for range
//     time.Tick(d)` is the classic leak). A stop channel or ctx.Done()
//     receive does count, as does ranging over a work channel that the
//     owner closes on shutdown.
//   - a function containing an unstoppable loop — or calling, on any
//     path, a function that does — is Leaky. Leaky is an object fact,
//     so the property crosses package boundaries: spawning an imported
//     run-forever helper is flagged in the package that wrote `go`.
//   - every `go` statement in a scoped package whose callee (named
//     function, method, or function literal) is Leaky is reported at
//     the spawn site, which is where the fix belongs.
//
// Reporting is scoped (-pkgs) to the long-lived components plus the
// daemon mains; fact computation runs everywhere. Deliberately out of
// scope, by design rather than Makefile wiring: short-lived CLIs
// (dnsquery, dnsperf, dnssim exit when their work is done, and the OS
// is their goroutine collector), the simulator/experiments tree (the
// virtual clock drives explicit steps, not goroutines), and _test.go
// files (the test binary exits; goleak-style churn there would add
// noise, not resilience).
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"resilientdns/internal/analysis/dataflow"
	"resilientdns/internal/analysis/lintutil"
)

const name = "goroleak"

// defaultPkgs lists the long-lived components: every package that
// starts goroutines expected to outlive a single request.
const defaultPkgs = "resilientdns/internal/core," +
	"resilientdns/internal/resolve," +
	"resilientdns/internal/guard," +
	"resilientdns/internal/mesh," +
	"resilientdns/internal/persist," +
	"resilientdns/internal/xfer," +
	"resilientdns/internal/debughttp," +
	"resilientdns/cmd/dnscache," +
	"resilientdns/cmd/dnsserver"

// Leaky marks a function that, once entered, may run forever without
// observing any stop signal: it must not be the body of a goroutine.
type Leaky struct{}

func (*Leaky) AFact() {}

func (*Leaky) String() string { return "Leaky" }

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag go statements in long-lived components whose goroutine can never be stopped " +
		"(no ctx.Done(), stop channel, or termination on any path)",
	Requires:  []*analysis.Analyzer{dataflow.Builder},
	FactTypes: []analysis.Fact{(*Leaky)(nil)},
	Run:       run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) where go statements must spawn stoppable goroutines")
}

type checker struct {
	pass *analysis.Pass
	df   *dataflow.Info
	supp *lintutil.Suppressor
	// leaky holds the same-package fixpoint over declarations and
	// function literals.
	leaky map[*dataflow.FuncInfo]bool
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	c := &checker{
		pass:  pass,
		df:    pass.ResultOf[dataflow.Builder].(*dataflow.Info),
		supp:  lintutil.NewSuppressor(pass),
		leaky: make(map[*dataflow.FuncInfo]bool),
	}

	for changed := true; changed; {
		changed = false
		for _, fi := range c.df.Funcs {
			if c.leaky[fi] {
				continue
			}
			if c.isLeaky(fi) {
				c.leaky[fi] = true
				changed = true
			}
		}
	}
	for fi := range c.leaky {
		if fi.Obj != nil {
			c.pass.ExportObjectFact(fi.Obj, &Leaky{})
		}
	}

	if lintutil.PkgMatches(pass.Pkg.Path(), pkgs) {
		for _, fi := range c.df.Funcs {
			if fi.Parent != nil {
				continue
			}
			c.checkSpawns(fi)
		}
	} else {
		lintutil.ReportStaleAll(pass, name)
		return nil, nil
	}
	c.supp.ReportStale(pass, name)
	return nil, nil
}

// isLeaky reports whether fi's own body (nested literals excluded —
// they are their own FuncInfo) contains an unstoppable infinite loop
// or a plain call to a leaky function.
func (c *checker) isLeaky(fi *dataflow.FuncInfo) bool {
	found := false
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			if li := c.df.LitInfo(s); li != nil && li != fi {
				return false
			}
		case *ast.GoStmt:
			// Work handed to another goroutine does not pin this one.
			return false
		case *ast.ForStmt:
			if s.Cond == nil && c.unstoppable(s.Body) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a timer channel is an infinite loop in
			// disguise: the ticker never closes.
			if c.timerChan(s.X) && c.unstoppable(s.Body) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := c.df.Callee(s); fn != nil {
				if target, ok := c.df.ByObj[fn]; ok && c.leaky[target] {
					found = true
					return false
				}
				// Cross-package propagation stops at the standard
				// library: stdlib calls are assumed to return (its
				// rare run-forever loops exit via panic or runtime
				// machinery this shape analysis cannot see, and
				// treating fmt.Sprintf as leaky would poison every
				// caller in the repo).
				if fn.Pkg() != nil && !stdlibPkg(fn.Pkg().Path()) {
					var fact Leaky
					if c.pass.ImportObjectFact(fn, &fact) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// unstoppable reports whether an infinite loop body offers no way out:
// no return, no goto, no break of this loop, and no receive from (or
// range over) a non-timer channel. nested tracks constructs that
// capture an unlabeled break.
func (c *checker) unstoppable(body *ast.BlockStmt) bool {
	escape := false
	c.scanEscape(body, false, &escape)
	return !escape
}

func (c *checker) scanEscape(n ast.Node, nested bool, escape *bool) {
	if n == nil || *escape {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if *escape || m == nil {
			return false
		}
		switch s := m.(type) {
		case *ast.FuncLit:
			return false // its returns and receives are its own
		case *ast.ReturnStmt:
			*escape = true
			return false
		case *ast.BranchStmt:
			if s.Tok == token.GOTO || (s.Tok == token.BREAK && (!nested || s.Label != nil)) {
				*escape = true
			}
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !c.timerChan(s.X) {
				*escape = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !c.timerChan(s.X) {
					*escape = true
					return false
				}
			}
			c.scanEscape(s.X, nested, escape)
			c.scanEscape(s.Body, true, escape)
			return false
		case *ast.ForStmt:
			c.scanEscape(s.Init, nested, escape)
			c.scanEscape(s.Cond, nested, escape)
			c.scanEscape(s.Post, nested, escape)
			c.scanEscape(s.Body, true, escape)
			return false
		case *ast.SwitchStmt:
			c.scanEscape(s.Init, nested, escape)
			c.scanEscape(s.Tag, nested, escape)
			c.scanEscape(s.Body, true, escape)
			return false
		case *ast.TypeSwitchStmt:
			c.scanEscape(s.Init, nested, escape)
			c.scanEscape(s.Assign, nested, escape)
			c.scanEscape(s.Body, true, escape)
			return false
		case *ast.SelectStmt:
			c.scanEscape(s.Body, true, escape)
			return false
		}
		return true
	})
}

// stdlibPkg reports whether the import path is standard library: its
// first element carries no dot (module paths start with a domain;
// fixture packages under testdata have a single element and no dot,
// but they are never a *cross*-package fact source in tests).
func stdlibPkg(path string) bool {
	first := path
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	return !strings.Contains(first, ".")
}

// timerChan reports whether the channel expression is a timer: a
// time.Ticker/time.Timer .C field, or time.After/time.Tick/NewTicker
// results. Timers fire forever; they are not stop signals.
func (c *checker) timerChan(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		t := c.pass.TypesInfo.TypeOf(x.X)
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "time" {
			return named.Obj().Name() == "Ticker" || named.Obj().Name() == "Timer"
		}
	case *ast.CallExpr:
		if fn := c.df.Callee(x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return fn.Name() == "After" || fn.Name() == "Tick"
		}
	case *ast.Ident:
		// A timer channel stored in a variable: chase single-definition
		// bindings (tick := time.Tick(d)).
		if v := c.df.VarOf(x); v != nil {
			defs := c.df.Defs(v)
			if len(defs) == 1 && defs[0].RHS != nil {
				return c.timerChan(defs[0].RHS)
			}
		}
	}
	return false
}

// checkSpawns reports go statements whose goroutine is leaky.
func (c *checker) checkSpawns(fi *dataflow.FuncInfo) {
	ast.Inspect(fi.Node, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lintutil.InTestFile(c.pass, g.Pos()) {
			return true
		}
		var what string
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			if li := c.df.LitInfo(fun); li != nil && c.leaky[li] {
				what = "this goroutine"
			}
		default:
			if fn := c.df.Callee(g.Call); fn != nil {
				if target, ok := c.df.ByObj[fn]; ok && c.leaky[target] {
					what = fn.Name()
				} else if fn.Pkg() != nil && !stdlibPkg(fn.Pkg().Path()) {
					var fact Leaky
					if c.pass.ImportObjectFact(fn, &fact) {
						what = fn.Name()
					}
				}
			}
		}
		if what != "" {
			c.supp.Report(c.pass, name, g.Pos(),
				"%s can never be stopped: its loop observes no ctx.Done() or stop channel "+
					"(timer ticks are not stop signals); add a cancellation case or bound the loop",
				what)
		}
		return true
	})
}
