// Package lockorder_bad is a failing fixture: lock-order inversions,
// direct and through a call.
package lockorder_bad

import "sync"

var muA, muB sync.Mutex

// TransferAB holds A then takes B.
func TransferAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "lock-order cycle"
	defer muB.Unlock()
}

// TransferBA holds B then takes A: the inversion.
func TransferBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "lock-order cycle"
	defer muA.Unlock()
}

// node/table invert through a call: pin holds node.mu and calls
// update, which takes table.mu — the Acquires fact carries the edge.
type node struct{ mu sync.Mutex }

type table struct{ mu sync.Mutex }

func (t *table) update() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

func (n *node) pin(t *table) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t.update() // want "lock-order cycle"
}

func (t *table) rebalance(n *node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n.mu.Lock() // want "lock-order cycle"
	n.mu.Unlock()
}

var _, _ = (*node).pin, (*table).rebalance
