package sim

import (
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/core"
	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// testScenario builds a small but realistic scenario: ~500 zones, 8000
// queries over 7 days, attack on day 7.
func testScenario(t *testing.T, scheme Scheme, attackDur time.Duration) Scenario {
	t.Helper()
	p := topology.DefaultParams(1)
	p.NumTLDs = 6
	p.SLDsPerTLD = 60
	tree, err := topology.Generate(p)
	if err != nil {
		t.Fatalf("topology.Generate: %v", err)
	}
	gp := workload.DefaultGenParams("TEST", 2, epoch)
	gp.Clients = 100
	gp.TotalQueries = 8000
	tr := workload.Generate(gp, tree.QueryableNames())

	var sched attack.Schedule
	if attackDur > 0 {
		sched = attack.RootAndTLDs(epoch.Add(6*24*time.Hour), attackDur, tree.AllZoneNames())
	}
	return Scenario{Tree: tree, Trace: tr, Attack: sched, Scheme: scheme, Seed: 3}
}

func TestRunVanillaNoAttack(t *testing.T) {
	res, err := Run(testScenario(t, Vanilla(), 0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SRQueriesTotal != 8000 {
		t.Errorf("SRQueriesTotal = %d, want 8000", res.SRQueriesTotal)
	}
	if res.SRFailedTotal != 0 {
		t.Errorf("failures with no attack: %d", res.SRFailedTotal)
	}
	if res.CSQueriesTotal == 0 {
		t.Error("no outgoing queries recorded")
	}
	if res.SRQueriesAttack != 0 {
		t.Errorf("attack counters nonzero without attack: %d", res.SRQueriesAttack)
	}
}

func TestRunVanillaAttackCausesFailures(t *testing.T) {
	res, err := Run(testScenario(t, Vanilla(), 24*time.Hour))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SRQueriesAttack == 0 {
		t.Fatal("no queries during attack window")
	}
	if res.SRFailedAttack == 0 {
		t.Error("vanilla DNS had no failures during a 24h root+TLD blackout")
	}
	if res.CSFailedAttack == 0 {
		t.Error("no failed CS queries during attack")
	}
	// CS-level failure rate exceeds SR-level (paper: cached answers
	// shield stub resolvers, every CS query hits the infrastructure).
	if res.CSFailRate() <= res.SRFailRate() {
		t.Errorf("CS fail rate %.3f not above SR fail rate %.3f",
			res.CSFailRate(), res.SRFailRate())
	}
}

func TestRefreshBeatsVanilla(t *testing.T) {
	vanilla, err := Run(testScenario(t, Vanilla(), 24*time.Hour))
	if err != nil {
		t.Fatalf("Run vanilla: %v", err)
	}
	refresh, err := Run(testScenario(t, Refresh(), 24*time.Hour))
	if err != nil {
		t.Fatalf("Run refresh: %v", err)
	}
	if refresh.SRFailRate() >= vanilla.SRFailRate() {
		t.Errorf("refresh SR fail rate %.4f not below vanilla %.4f",
			refresh.SRFailRate(), vanilla.SRFailRate())
	}
}

func TestRenewalBeatsRefresh(t *testing.T) {
	refresh, err := Run(testScenario(t, Refresh(), 24*time.Hour))
	if err != nil {
		t.Fatalf("Run refresh: %v", err)
	}
	renew, err := Run(testScenario(t, RefreshRenew(core.ALFU{C: 5, MaxDays: 50}), 24*time.Hour))
	if err != nil {
		t.Fatalf("Run renew: %v", err)
	}
	if renew.SRFailRate() > refresh.SRFailRate() {
		t.Errorf("renewal SR fail rate %.4f above refresh-only %.4f",
			renew.SRFailRate(), refresh.SRFailRate())
	}
	if renew.ServerStats.Renewals == 0 {
		t.Error("renewal scheme performed no renewals")
	}
}

func TestGapCDFCollected(t *testing.T) {
	res, err := Run(testScenario(t, Vanilla(), 0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.GapAbs.Len() == 0 {
		t.Fatal("no gap samples collected")
	}
	if res.GapFrac.Len() == 0 {
		t.Fatal("no fractional gap samples collected")
	}
	// Gaps are bounded by the trace horizon.
	if max := res.GapAbs.Max(); max > 7*24*3600 {
		t.Errorf("gap %v s exceeds horizon", max)
	}
}

func TestOccupancySeries(t *testing.T) {
	s := testScenario(t, Refresh(), 0)
	s.SampleEvery = 6 * time.Hour
	res, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ZoneSeries == nil || res.ZoneSeries.Len() < 20 {
		t.Fatalf("zone series too short: %v", res.ZoneSeries)
	}
	if res.RecordSeries.MaxValue() < res.ZoneSeries.MaxValue() {
		t.Error("fewer records than zones cached")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testScenario(t, RefreshRenew(core.LRU{C: 3}), 6*time.Hour))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(testScenario(t, RefreshRenew(core.LRU{C: 3}), 6*time.Hour))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.SRFailedAttack != b.SRFailedAttack || a.CSQueriesTotal != b.CSQueriesTotal ||
		a.ServerStats.Renewals != b.ServerStats.Renewals {
		t.Errorf("runs differ: %+v vs %+v", a.ServerStats, b.ServerStats)
	}
}

func TestSchemeNames(t *testing.T) {
	if Vanilla().Name != "DNS" {
		t.Errorf("Vanilla name = %q", Vanilla().Name)
	}
	if got := RefreshRenew(core.LRU{C: 1}).Name; got != "Refresh+LRU(1)" {
		t.Errorf("RefreshRenew name = %q", got)
	}
}

func TestRunRequiresTree(t *testing.T) {
	if _, err := Run(Scenario{}); err == nil {
		t.Error("Run accepted empty scenario")
	}
}

func TestRunPartitionedSplitsLoad(t *testing.T) {
	s := testScenario(t, Vanilla(), 24*time.Hour)
	one, err := RunPartitioned(s, 1)
	if err != nil {
		t.Fatalf("RunPartitioned(1): %v", err)
	}
	four, err := RunPartitioned(s, 4)
	if err != nil {
		t.Fatalf("RunPartitioned(4): %v", err)
	}
	if four.SRQueriesTotal != one.SRQueriesTotal {
		t.Errorf("query counts differ: %d vs %d", four.SRQueriesTotal, one.SRQueriesTotal)
	}
	// Splitting the client population dilutes each cache: more upstream
	// traffic and at least as many failures.
	if four.CSQueriesTotal <= one.CSQueriesTotal {
		t.Errorf("4-way split sent %d upstream vs %d for shared cache",
			four.CSQueriesTotal, one.CSQueriesTotal)
	}
	// SR failure rates saturate under a 24h blackout, so allow noise; the
	// split population must not do meaningfully better than a shared cache.
	if four.SRFailRate() < one.SRFailRate()-0.07 {
		t.Errorf("4-way split failed much less (%.3f) than shared cache (%.3f)",
			four.SRFailRate(), one.SRFailRate())
	}
}

func TestRunPartitionedRejectsBadParts(t *testing.T) {
	s := testScenario(t, Vanilla(), 0)
	if _, err := RunPartitioned(s, 0); err == nil {
		t.Error("parts=0 accepted")
	}
}
