package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Implementations are
// immutable value types; copying an RR copies its RData.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// String renders the payload in master-file presentation format.
	String() string

	// appendTo appends the wire encoding of the payload (without the
	// RDLENGTH prefix) to the packer. Names inside RDATA that RFC 3597
	// allows to be compressed (NS, CNAME, SOA, PTR, MX) are compressed.
	appendTo(p *Packer) error
}

// RR is a single DNS resource record.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, derived from the payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String renders the record in master-file presentation format.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// A is an IPv4 address record payload.
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (A) Type() Type { return TypeA }

// String implements RData.
func (a A) String() string { return a.Addr.String() }

func (a A) appendTo(p *Packer) error {
	if !a.Addr.Is4() {
		return fmt.Errorf("dnswire: A record with non-IPv4 address %v", a.Addr)
	}
	v4 := a.Addr.As4()
	p.buf = append(p.buf, v4[:]...)
	return nil
}

// AAAA is an IPv6 address record payload.
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

// String implements RData.
func (a AAAA) String() string { return a.Addr.String() }

func (a AAAA) appendTo(p *Packer) error {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return fmt.Errorf("dnswire: AAAA record with non-IPv6 address %v", a.Addr)
	}
	v6 := a.Addr.As16()
	p.buf = append(p.buf, v6[:]...)
	return nil
}

// NS is a name-server record payload. It points at the host name of an
// authoritative server; together with that host's A records it forms the
// zone's infrastructure resource records (IRRs).
type NS struct {
	Host Name
}

// Type implements RData.
func (NS) Type() Type { return TypeNS }

// String implements RData.
func (n NS) String() string { return n.Host.String() }

func (n NS) appendTo(p *Packer) error { return p.appendCompressedName(n.Host) }

// CNAME is a canonical-name alias record payload.
type CNAME struct {
	Target Name
}

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

// String implements RData.
func (c CNAME) String() string { return c.Target.String() }

func (c CNAME) appendTo(p *Packer) error { return p.appendCompressedName(c.Target) }

// PTR is a pointer record payload.
type PTR struct {
	Target Name
}

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

// String implements RData.
func (r PTR) String() string { return r.Target.String() }

func (r PTR) appendTo(p *Packer) error { return p.appendCompressedName(r.Target) }

// SOA is a start-of-authority record payload.
type SOA struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

// String implements RData.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

func (s SOA) appendTo(p *Packer) error {
	if err := p.appendCompressedName(s.MName); err != nil {
		return err
	}
	if err := p.appendCompressedName(s.RName); err != nil {
		return err
	}
	p.appendUint32(s.Serial)
	p.appendUint32(s.Refresh)
	p.appendUint32(s.Retry)
	p.appendUint32(s.Expire)
	p.appendUint32(s.Minimum)
	return nil
}

// MX is a mail-exchanger record payload.
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

// String implements RData.
func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, m.Host) }

func (m MX) appendTo(p *Packer) error {
	p.appendUint16(m.Preference)
	return p.appendCompressedName(m.Host)
}

// TXT is a text record payload holding one or more character strings.
type TXT struct {
	Strings []string
}

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

// String implements RData.
func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

func (t TXT) appendTo(p *Packer) error {
	if len(t.Strings) == 0 {
		return errors.New("dnswire: TXT record with no strings")
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return fmt.Errorf("dnswire: TXT string longer than 255 bytes (%d)", len(s))
		}
		p.buf = append(p.buf, byte(len(s)))
		p.buf = append(p.buf, s...)
	}
	return nil
}

// SRV is a service-locator record payload (RFC 2782). Its target name is
// never compressed.
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   Name
}

// Type implements RData.
func (SRV) Type() Type { return TypeSRV }

// String implements RData.
func (s SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", s.Priority, s.Weight, s.Port, s.Target)
}

func (s SRV) appendTo(p *Packer) error {
	p.appendUint16(s.Priority)
	p.appendUint16(s.Weight)
	p.appendUint16(s.Port)
	return p.appendUncompressedName(s.Target)
}

// OPT is a minimal EDNS0 pseudo-record payload (RFC 6891). Only the UDP
// payload size advertisement is modelled; options are carried opaquely.
type OPT struct {
	Options []byte
}

// Type implements RData.
func (OPT) Type() Type { return TypeOPT }

// String implements RData.
func (o OPT) String() string { return fmt.Sprintf("OPT %d bytes of options", len(o.Options)) }

func (o OPT) appendTo(p *Packer) error {
	p.buf = append(p.buf, o.Options...)
	return nil
}

// Unknown carries the raw RDATA of a record type this package does not
// decode (RFC 3597 treatment).
type Unknown struct {
	TypeCode Type
	Raw      []byte
}

// Type implements RData.
func (u Unknown) Type() Type { return u.TypeCode }

// String implements RData.
func (u Unknown) String() string { return fmt.Sprintf("\\# %d %x", len(u.Raw), u.Raw) }

func (u Unknown) appendTo(p *Packer) error {
	p.buf = append(p.buf, u.Raw...)
	return nil
}
