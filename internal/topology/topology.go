// Package topology generates the synthetic DNS hierarchy the simulations
// run against. The paper probed the real DNS for the part of the tree its
// traces touched; that snapshot is proprietary to the 2006 measurement, so
// this package substitutes a parameterised generator that reproduces the
// properties the paper's results depend on: tree depth and fan-out, the
// infrastructure-record TTL distribution ("from some minutes to some days,
// most zones ≤ 12 hours", §4), 2–3 name servers per zone (§3.1), in- and
// out-of-bailiwick server placement, and short end-host TTLs.
package topology

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/core"
	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simnet"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// TTLChoice is one weighted option in a TTL distribution.
type TTLChoice struct {
	TTL    time.Duration
	Weight float64
}

// DefaultIRRTTLs is the infrastructure-record TTL distribution: minutes to
// days with most mass at or below 12 hours, matching §4's characterisation
// of measured zones.
var DefaultIRRTTLs = []TTLChoice{
	{TTL: 5 * time.Minute, Weight: 5},
	{TTL: 30 * time.Minute, Weight: 10},
	{TTL: time.Hour, Weight: 20},
	{TTL: 4 * time.Hour, Weight: 15},
	{TTL: 12 * time.Hour, Weight: 25},
	{TTL: 24 * time.Hour, Weight: 15},
	{TTL: 48 * time.Hour, Weight: 10},
}

// DefaultHostTTLs is the end-host (data) record TTL distribution, skewed
// short the way CDN and load-balanced names are.
var DefaultHostTTLs = []TTLChoice{
	{TTL: time.Minute, Weight: 5},
	{TTL: 5 * time.Minute, Weight: 10},
	{TTL: 30 * time.Minute, Weight: 15},
	{TTL: time.Hour, Weight: 25},
	{TTL: 4 * time.Hour, Weight: 30},
	{TTL: 24 * time.Hour, Weight: 15},
}

// Params controls generation. The zero value is not useful; start from
// DefaultParams.
type Params struct {
	Seed int64
	// NumTLDs is the number of top-level domains.
	NumTLDs int
	// SLDsPerTLD is the mean number of second-level zones per TLD.
	SLDsPerTLD int
	// SubZoneFrac is the fraction of SLDs delegating a third-level zone.
	SubZoneFrac float64
	// SubSubZoneFrac is the fraction of third-level zones delegating a
	// fourth level.
	SubSubZoneFrac float64
	// MinNS and MaxNS bound the per-zone server count.
	MinNS, MaxNS int
	// MaxHostNames bounds queryable names per leaf zone (Pareto-ish).
	MaxHostNames int
	// OutOfBailiwickFrac is the fraction of zones whose servers live
	// under a different TLD (no glue at the parent).
	OutOfBailiwickFrac float64
	// CNAMEFrac is the fraction of host names that alias another name.
	CNAMEFrac float64
	// IRRTTLs is the IRR TTL distribution for SLD-and-below zones.
	IRRTTLs []TTLChoice
	// HostTTLs is the data-record TTL distribution.
	HostTTLs []TTLChoice
	// IRRTTLOverride, when non-zero, forces every zone's IRR TTL — the
	// paper's long-TTL scheme, applied by zone operators.
	IRRTTLOverride time.Duration
	// TLDIRRTTL is the IRR TTL of the root and TLD delegations (long in
	// practice; 2 days by default).
	TLDIRRTTL time.Duration
	// Signed, when true, DNSSEC-signs every zone (Ed25519) and links the
	// DS chain from the leaves to the root; Tree.TrustAnchors then holds
	// the root's DNSKEY.
	Signed bool
}

// DefaultParams returns a laptop-scale hierarchy: ~15 TLDs, ~2000 zones.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:               seed,
		NumTLDs:            15,
		SLDsPerTLD:         130,
		SubZoneFrac:        0.15,
		SubSubZoneFrac:     0.10,
		MinNS:              2,
		MaxNS:              3,
		MaxHostNames:       12,
		OutOfBailiwickFrac: 0.05,
		CNAMEFrac:          0.05,
		IRRTTLs:            DefaultIRRTTLs,
		HostTTLs:           DefaultHostTTLs,
		TLDIRRTTL:          48 * time.Hour,
	}
}

// ZoneInfo is one generated zone.
type ZoneInfo struct {
	Name   dnswire.Name
	Parent dnswire.Name
	Depth  int
	// IRRTTL is the TTL of this zone's NS/glue records at the parent and
	// at the zone itself.
	IRRTTL time.Duration
	// Servers lists the zone's authoritative server hosts and addresses.
	Servers []core.ServerRef
	// Hosts are the queryable names defined inside the zone.
	Hosts []dnswire.Name
	// Zone is the authoritative data (including child delegations).
	Zone *zone.Zone
}

// Tree is a generated hierarchy.
type Tree struct {
	Zones map[dnswire.Name]*ZoneInfo
	// Order lists zone names parent-before-child, deterministically.
	Order []dnswire.Name
	// RootHints are the root server references for caching servers.
	RootHints []core.ServerRef
	// TrustAnchors holds the root DNSKEY RRs when the tree is signed.
	TrustAnchors []dnswire.RR
}

// Root returns the root zone info.
func (t *Tree) Root() *ZoneInfo { return t.Zones[dnswire.Root] }

// AllZoneNames returns every zone name in deterministic order.
func (t *Tree) AllZoneNames() []dnswire.Name {
	return append([]dnswire.Name(nil), t.Order...)
}

// QueryableNames returns every host name with its enclosing zone, in
// deterministic order, for workload generation.
func (t *Tree) QueryableNames() []TargetName {
	var out []TargetName
	for _, zn := range t.Order {
		zi := t.Zones[zn]
		for _, h := range zi.Hosts {
			out = append(out, TargetName{Name: h, Zone: zn})
		}
	}
	return out
}

// TargetName pairs a queryable name with its enclosing zone.
type TargetName struct {
	Name dnswire.Name
	Zone dnswire.Name
}

// Install registers one simulated host per authoritative server address.
func (t *Tree) Install(net *simnet.Network) {
	t.InstallOpt(net, true)
}

// InstallOpt registers the tree's servers. attachApexNS controls whether
// authoritative answers carry the zone's own IRRs (the behaviour the
// paper's TTL-refresh scheme relies on); disabling it is used by the
// ablation experiments.
func (t *Tree) InstallOpt(net *simnet.Network, attachApexNS bool) {
	for _, zn := range t.Order {
		zi := t.Zones[zn]
		srv := authserver.New(zi.Zone)
		srv.AttachApexNS = attachApexNS
		for _, ref := range zi.Servers {
			net.Register(&simnet.Host{Addr: ref.Addr, Zone: zn, Handler: srv})
		}
	}
}

// generator carries generation state.
type generator struct {
	p       Params
	rng     *rand.Rand
	nextIP  uint32
	tree    *Tree
	counter int
	// hosting lists the zones that host out-of-bailiwick server names.
	hosting []dnswire.Name
}

// Generate builds a hierarchy from params.
func Generate(p Params) (*Tree, error) {
	if p.NumTLDs <= 0 || p.SLDsPerTLD <= 0 {
		return nil, fmt.Errorf("topology: NumTLDs and SLDsPerTLD must be positive")
	}
	if p.MinNS <= 0 || p.MaxNS < p.MinNS {
		return nil, fmt.Errorf("topology: bad NS bounds [%d, %d]", p.MinNS, p.MaxNS)
	}
	if len(p.IRRTTLs) == 0 {
		p.IRRTTLs = DefaultIRRTTLs
	}
	if len(p.HostTTLs) == 0 {
		p.HostTTLs = DefaultHostTTLs
	}
	if p.TLDIRRTTL == 0 {
		p.TLDIRRTTL = 48 * time.Hour
	}
	g := &generator{
		p:      p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		nextIP: 1,
		tree:   &Tree{Zones: make(map[dnswire.Name]*ZoneInfo)},
	}
	g.buildRoot()
	tldNames := g.buildTLDs()
	// Hosting zones give out-of-bailiwick name servers a resolvable home:
	// a zone served by ns1.hosting3.<tld>. needs that host's A record to
	// exist somewhere in the tree.
	nHosting := p.NumTLDs / 4
	if nHosting < 2 {
		nHosting = 2
	}
	for i := 0; i < nHosting; i++ {
		hz, err := tldNames[0].Child(fmt.Sprintf("hosting%d", i))
		if err != nil {
			return nil, err
		}
		g.hosting = append(g.hosting, g.newZone(hz, tldNames[0], 2))
	}
	var slds []dnswire.Name
	for _, tld := range tldNames {
		n := g.poissonish(p.SLDsPerTLD)
		for i := 0; i < n; i++ {
			slds = append(slds, g.buildZone(tld, 2))
		}
	}
	var thirds []dnswire.Name
	for _, sld := range slds {
		if g.rng.Float64() < p.SubZoneFrac {
			thirds = append(thirds, g.buildZone(sld, 3))
		}
	}
	for _, z3 := range thirds {
		if g.rng.Float64() < p.SubSubZoneFrac {
			g.buildZone(z3, 4)
		}
	}
	g.linkDelegations()
	if p.Signed {
		if err := g.signTree(); err != nil {
			return nil, err
		}
	}
	for _, zn := range g.tree.Order {
		if err := g.tree.Zones[zn].Zone.Validate(); err != nil {
			return nil, fmt.Errorf("topology: generated invalid zone: %w", err)
		}
	}
	return g.tree, nil
}

// signTree signs every zone bottom-up, installing each child's DS in its
// parent before the parent is signed, and records the root trust anchor.
func (g *generator) signTree() error {
	inception := time.Date(2025, 12, 1, 0, 0, 0, 0, time.UTC)
	expiration := inception.Add(5 * 365 * 24 * time.Hour)
	// Children first (Order is parent-before-child, so walk backwards).
	dsByParent := make(map[dnswire.Name][]dnswire.RR)
	for i := len(g.tree.Order) - 1; i >= 0; i-- {
		zi := g.tree.Zones[g.tree.Order[i]]
		for _, ds := range dsByParent[zi.Name] {
			if err := zi.Zone.Add(ds); err != nil {
				return fmt.Errorf("topology: adding DS to %s: %w", zi.Name, err)
			}
		}
		signer, err := dnssec.GenerateSigner(zi.Name, uint32(zi.IRRTTL/time.Second), g.keyRand())
		if err != nil {
			return err
		}
		ds, err := dnssec.SignZone(zi.Zone, signer, inception, expiration)
		if err != nil {
			return fmt.Errorf("topology: signing %s: %w", zi.Name, err)
		}
		if zi.Name.IsRoot() {
			g.tree.TrustAnchors = append(g.tree.TrustAnchors, signer.KeyRR())
		} else {
			dsByParent[zi.Parent] = append(dsByParent[zi.Parent], ds)
		}
	}
	return nil
}

// keyRand adapts the generator's seeded RNG for deterministic key
// generation.
func (g *generator) keyRand() io.Reader { return rngReader{g.rng} }

type rngReader struct{ r *rand.Rand }

func (rr rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Intn(256))
	}
	return len(p), nil
}

// addr allocates the next synthetic server address.
func (g *generator) addr() transport.Addr {
	ip := g.nextIP
	g.nextIP++
	a := netip.AddrFrom4([4]byte{10, byte(ip >> 16), byte(ip >> 8), byte(ip)})
	return transport.Addr(a.String())
}

// poissonish returns a positive integer around mean.
func (g *generator) poissonish(mean int) int {
	if mean <= 1 {
		return 1
	}
	v := int(g.rng.NormFloat64()*float64(mean)/4) + mean
	if v < 1 {
		v = 1
	}
	return v
}

func (g *generator) pickTTL(choices []TTLChoice) time.Duration {
	total := 0.0
	for _, c := range choices {
		total += c.Weight
	}
	x := g.rng.Float64() * total
	for _, c := range choices {
		x -= c.Weight
		if x <= 0 {
			return c.TTL
		}
	}
	return choices[len(choices)-1].TTL
}

func (g *generator) irrTTL(depth int) time.Duration {
	var ttl time.Duration
	if depth <= 1 {
		ttl = g.p.TLDIRRTTL
	} else {
		// Always draw, even under an override, so that the RNG stream —
		// and with it the generated structure and name set — is identical
		// between a base tree and its long-TTL variants.
		ttl = g.pickTTL(g.p.IRRTTLs)
	}
	if g.p.IRRTTLOverride > 0 {
		return g.p.IRRTTLOverride
	}
	return ttl
}

func (g *generator) buildRoot() {
	name := dnswire.Root
	zi := &ZoneInfo{Name: name, Parent: name, Depth: 0, IRRTTL: g.irrTTL(0), Zone: zone.New(name)}
	for i := 0; i < 3; i++ {
		host := dnswire.MustName(fmt.Sprintf("%c.root-servers.net.", 'a'+i))
		addr := g.addr()
		zi.Servers = append(zi.Servers, core.ServerRef{Host: host, Addr: addr})
	}
	g.installApex(zi)
	g.tree.Zones[name] = zi
	g.tree.Order = append(g.tree.Order, name)
	g.tree.RootHints = append(g.tree.RootHints, zi.Servers...)
}

func (g *generator) buildTLDs() []dnswire.Name {
	base := []string{"com", "net", "org", "edu", "gov", "mil", "uk", "de", "cn", "jp",
		"fr", "nl", "br", "au", "ca", "it", "es", "se", "ch", "kr"}
	var names []dnswire.Name
	for i := 0; i < g.p.NumTLDs; i++ {
		var label string
		if i < len(base) {
			label = base[i]
		} else {
			label = fmt.Sprintf("tld%d", i)
		}
		names = append(names, g.newZone(dnswire.MustName(label+"."), dnswire.Root, 1))
	}
	return names
}

// buildZone creates a child zone of parent at the given depth.
func (g *generator) buildZone(parent dnswire.Name, depth int) dnswire.Name {
	g.counter++
	label := fmt.Sprintf("z%d", g.counter)
	name, err := parent.Child(label)
	if err != nil {
		panic(err) // generated labels are always valid
	}
	return g.newZone(name, parent, depth)
}

func (g *generator) newZone(name, parent dnswire.Name, depth int) dnswire.Name {
	zi := &ZoneInfo{
		Name:   name,
		Parent: parent,
		Depth:  depth,
		IRRTTL: g.irrTTL(depth),
		Zone:   zone.New(name),
	}
	nns := g.p.MinNS + g.rng.Intn(g.p.MaxNS-g.p.MinNS+1)
	outOfBailiwick := depth >= 2 && len(g.hosting) > 0 &&
		g.rng.Float64() < g.p.OutOfBailiwickFrac
	for i := 0; i < nns; i++ {
		addr := g.addr()
		var host dnswire.Name
		if outOfBailiwick {
			hz := g.tree.Zones[g.hosting[g.rng.Intn(len(g.hosting))]]
			h, err := hz.Name.Child(fmt.Sprintf("ns%d-z%d", i+1, g.counter))
			if err != nil {
				panic(err)
			}
			host = h
			// The host's address record lives in the hosting zone.
			hz.Zone.MustAdd(dnswire.RR{
				Name: host, Class: dnswire.ClassIN, TTL: uint32(hz.IRRTTL / time.Second),
				Data: dnswire.A{Addr: netip.MustParseAddr(string(addr))},
			})
		} else {
			h, err := name.Child(fmt.Sprintf("ns%d", i+1))
			if err != nil {
				panic(err)
			}
			host = h
		}
		zi.Servers = append(zi.Servers, core.ServerRef{Host: host, Addr: addr})
	}
	g.installApex(zi)
	if depth >= 2 {
		g.installHosts(zi)
	}
	g.tree.Zones[name] = zi
	g.tree.Order = append(g.tree.Order, name)
	return name
}

// installApex adds SOA, apex NS, and in-zone glue to the zone data.
func (g *generator) installApex(zi *ZoneInfo) {
	z := zi.Zone
	ttl := uint32(zi.IRRTTL / time.Second)
	soaHost := zi.Servers[0].Host
	z.MustAdd(dnswire.RR{
		Name: zi.Name, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.SOA{
			MName: soaHost, RName: dnswire.MustName("hostmaster." + trimRoot(zi.Name)),
			Serial: 2026070400, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
	})
	for _, ref := range zi.Servers {
		z.MustAdd(dnswire.RR{
			Name: zi.Name, Class: dnswire.ClassIN, TTL: ttl,
			Data: dnswire.NS{Host: ref.Host},
		})
		if ref.Host.IsSubdomainOf(zi.Name) {
			z.MustAdd(dnswire.RR{
				Name: ref.Host, Class: dnswire.ClassIN, TTL: ttl,
				Data: dnswire.A{Addr: netip.MustParseAddr(string(ref.Addr))},
			})
		}
	}
}

// trimRoot renders a name suitable for concatenation under another name.
func trimRoot(n dnswire.Name) string {
	if n.IsRoot() {
		return ""
	}
	return string(n)
}

// installHosts populates a zone with queryable host names.
func (g *generator) installHosts(zi *ZoneInfo) {
	max := g.p.MaxHostNames
	if max < 1 {
		max = 1
	}
	// Pareto-ish: most zones have 1-3 names, a few have many.
	n := 1 + int(float64(max)*g.rng.Float64()*g.rng.Float64())
	labels := []string{"www", "mail", "ftp", "vpn", "ns-ext", "web", "api", "db", "m", "img", "cdn", "dev"}
	for i := 0; i < n && i < len(labels); i++ {
		host, err := zi.Name.Child(labels[i])
		if err != nil {
			panic(err)
		}
		ttl := uint32(g.pickTTL(g.p.HostTTLs) / time.Second)
		if i > 0 && g.rng.Float64() < g.p.CNAMEFrac {
			// Alias to the zone's first host.
			zi.Zone.MustAdd(dnswire.RR{
				Name: host, Class: dnswire.ClassIN, TTL: ttl,
				Data: dnswire.CNAME{Target: zi.Hosts[0]},
			})
		} else {
			zi.Zone.MustAdd(dnswire.RR{
				Name: host, Class: dnswire.ClassIN, TTL: ttl,
				Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{
					192, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254)),
				})},
			})
		}
		zi.Hosts = append(zi.Hosts, host)
	}
}

// linkDelegations adds each child's NS records (and in-bailiwick glue) to
// its parent zone.
func (g *generator) linkDelegations() {
	for _, zn := range g.tree.Order {
		zi := g.tree.Zones[zn]
		if zn.IsRoot() {
			continue
		}
		parent := g.tree.Zones[zi.Parent]
		ttl := uint32(zi.IRRTTL / time.Second)
		for _, ref := range zi.Servers {
			parent.Zone.MustAdd(dnswire.RR{
				Name: zi.Name, Class: dnswire.ClassIN, TTL: ttl,
				Data: dnswire.NS{Host: ref.Host},
			})
			if ref.Host.IsSubdomainOf(zi.Name) {
				parent.Zone.MustAdd(dnswire.RR{
					Name: ref.Host, Class: dnswire.ClassIN, TTL: ttl,
					Data: dnswire.A{Addr: netip.MustParseAddr(string(ref.Addr))},
				})
			}
		}
	}
}
