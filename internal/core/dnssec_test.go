package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// detRand yields deterministic keys for reproducible tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// signedFixture is a fully signed hierarchy: root → edu → ucla.edu, plus
// an unsigned zone com → plain.com for the insecure-delegation path.
type signedFixture struct {
	clock    *simclock.Virtual
	net      *simnet.Network
	cs       *CachingServer
	anchors  []dnswire.RR
	uclaZone *zone.Zone
	signers  map[string]*dnssec.Signer
}

func newSignedFixture(t *testing.T, tamper func(f *signedFixture)) *signedFixture {
	t.Helper()
	f := &signedFixture{signers: make(map[string]*dnssec.Signer)}
	f.clock = simclock.NewVirtual(epoch)
	f.net = simnet.New(f.clock, 1)
	f.net.RTT = 0
	f.net.Timeout = 0

	inception := epoch.Add(-time.Hour)
	expiration := epoch.Add(365 * 24 * time.Hour)
	signer := func(zoneName string, seed int64) *dnssec.Signer {
		s, err := dnssec.GenerateSigner(dnswire.MustName(zoneName), 3600, detRand{rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatalf("GenerateSigner: %v", err)
		}
		f.signers[zoneName] = s
		return s
	}

	// Leaf: ucla.edu (signed).
	ucla := zone.New(dnswire.MustName("ucla.edu."))
	ucla.MustAdd(rrNS("ucla.edu.", 3600, "ns1.ucla.edu."))
	ucla.MustAdd(rrA("ns1.ucla.edu.", 3600, "10.0.2.1"))
	ucla.MustAdd(rrA("www.ucla.edu.", 300, "10.9.9.9"))
	uclaSigner := signer("ucla.edu.", 101)
	uclaDS, err := dnssec.SignZone(ucla, uclaSigner, inception, expiration)
	if err != nil {
		t.Fatalf("sign ucla: %v", err)
	}
	f.uclaZone = ucla

	// Unsigned leaf: plain.com.
	plain := zone.New(dnswire.MustName("plain.com."))
	plain.MustAdd(rrNS("plain.com.", 3600, "ns1.plain.com."))
	plain.MustAdd(rrA("ns1.plain.com.", 3600, "10.0.4.1"))
	plain.MustAdd(rrA("www.plain.com.", 300, "10.4.4.4"))

	// TLD: edu (signed, delegates ucla.edu with DS).
	edu := zone.New(dnswire.MustName("edu."))
	edu.MustAdd(rrNS("edu.", 86400, "ns1.edu."))
	edu.MustAdd(rrA("ns1.edu.", 86400, "10.0.1.1"))
	edu.MustAdd(rrNS("ucla.edu.", 3600, "ns1.ucla.edu."))
	edu.MustAdd(rrA("ns1.ucla.edu.", 3600, "10.0.2.1"))
	edu.MustAdd(uclaDS)
	eduSigner := signer("edu.", 102)
	eduDS, err := dnssec.SignZone(edu, eduSigner, inception, expiration)
	if err != nil {
		t.Fatalf("sign edu: %v", err)
	}

	// TLD: com (signed, delegates plain.com WITHOUT a DS — insecure).
	com := zone.New(dnswire.MustName("com."))
	com.MustAdd(rrNS("com.", 86400, "ns1.com."))
	com.MustAdd(rrA("ns1.com.", 86400, "10.0.3.1"))
	com.MustAdd(rrNS("plain.com.", 3600, "ns1.plain.com."))
	com.MustAdd(rrA("ns1.plain.com.", 3600, "10.0.4.1"))
	comSigner := signer("com.", 103)
	comDS, err := dnssec.SignZone(com, comSigner, inception, expiration)
	if err != nil {
		t.Fatalf("sign com: %v", err)
	}

	// Root (signed, anchors the chain).
	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrNS("edu.", 86400, "ns1.edu."))
	root.MustAdd(rrA("ns1.edu.", 86400, "10.0.1.1"))
	root.MustAdd(rrNS("com.", 86400, "ns1.com."))
	root.MustAdd(rrA("ns1.com.", 86400, "10.0.3.1"))
	root.MustAdd(eduDS)
	root.MustAdd(comDS)
	rootSigner := signer(".", 104)
	if _, err := dnssec.SignZone(root, rootSigner, inception, expiration); err != nil {
		t.Fatalf("sign root: %v", err)
	}
	f.anchors = []dnswire.RR{rootSigner.KeyRR()}

	if tamper != nil {
		tamper(f)
	}

	reg := func(addr, zoneName string, z *zone.Zone) {
		f.net.Register(&simnet.Host{
			Addr: transport.Addr(addr), Zone: dnswire.MustName(zoneName),
			Handler: authserver.New(z),
		})
	}
	reg("10.0.0.1", ".", root)
	reg("10.0.1.1", "edu.", edu)
	reg("10.0.2.1", "ucla.edu.", ucla)
	reg("10.0.3.1", "com.", com)
	reg("10.0.4.1", "plain.com.", plain)

	cs, err := NewCachingServer(Config{
		Transport:      f.net,
		Clock:          f.clock,
		RootHints:      []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}},
		RefreshTTL:     true,
		ValidateDNSSEC: true,
		TrustAnchors:   f.anchors,
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	f.cs = cs
	return f
}

func TestDNSSECValidResolution(t *testing.T) {
	f := newSignedFixture(t, nil)
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(res.Answer) == 0 || res.Answer[0].Data.String() != "10.9.9.9" {
		t.Errorf("answer = %v", res.Answer)
	}
	if secure, known := f.cs.SecureZone(dnswire.MustName("ucla.edu.")); !secure || !known {
		t.Errorf("ucla.edu. not marked secure (secure=%v known=%v)", secure, known)
	}
}

func TestDNSSECInsecureZonePasses(t *testing.T) {
	f := newSignedFixture(t, nil)
	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.plain.com."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve of insecure zone: %v", err)
	}
	if len(res.Answer) == 0 {
		t.Errorf("answer = %v", res.Answer)
	}
	if secure, known := f.cs.SecureZone(dnswire.MustName("plain.com.")); secure || !known {
		t.Errorf("plain.com. should be known-insecure (secure=%v known=%v)", secure, known)
	}
}

func TestDNSSECRejectsTamperedAnswer(t *testing.T) {
	f := newSignedFixture(t, func(f *signedFixture) {
		// After signing, the attacker swaps the www record: the RRSIG in
		// the zone no longer covers the data. (Add bypasses re-signing.)
		f.uclaZone.MustAdd(rrA("www.ucla.edu.", 300, "10.6.6.6"))
	})
	_, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	if err == nil {
		t.Fatal("tampered answer resolved under validation")
	}
}

func TestDNSSECNotValidatingAcceptsTamper(t *testing.T) {
	// The same tamper passes when validation is off, proving the
	// validator is what rejects it.
	f := newSignedFixture(t, func(f *signedFixture) {
		f.uclaZone.MustAdd(rrA("www.ucla.edu.", 300, "10.6.6.6"))
	})
	cs, err := NewCachingServer(Config{
		Transport: f.net,
		Clock:     f.clock,
		RootHints: []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}},
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	if _, err := cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err != nil {
		t.Fatalf("non-validating Resolve: %v", err)
	}
}

func TestDNSSECChainCachedAcrossQueries(t *testing.T) {
	f := newSignedFixture(t, nil)
	ctx := context.Background()
	if _, err := f.cs.Resolve(ctx, dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err != nil {
		t.Fatalf("first Resolve: %v", err)
	}
	before := f.cs.Stats().QueriesOut
	// A sibling query in the same zone must not rebuild the chain.
	if _, err := f.cs.Resolve(ctx, dnswire.MustName("ns1.ucla.edu."), dnswire.TypeA); err != nil {
		t.Fatalf("second Resolve: %v", err)
	}
	sent := f.cs.Stats().QueriesOut - before
	if sent > 1 {
		t.Errorf("sibling query sent %d queries; trust chain not cached", sent)
	}
}

func TestDNSSECInfraRecordsMarked(t *testing.T) {
	// §6: the DS and DNSKEY sets are infrastructure records; the cache
	// must treat them exactly like NS and glue so refresh/renewal extend
	// to them.
	f := newSignedFixture(t, nil)
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	ds := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeDS)
	if ds == nil || !ds.Infra {
		t.Errorf("DS entry = %+v, want cached infrastructure", ds)
	}
	key := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeDNSKEY)
	if key == nil || !key.Infra {
		t.Errorf("DNSKEY entry = %+v, want cached infrastructure", key)
	}
}

func TestDNSSECValidationRequiresAnchors(t *testing.T) {
	_, err := NewCachingServer(Config{
		Transport:      &transport.Pipe{},
		RootHints:      []ServerRef{{Host: "a.", Addr: "x"}},
		ValidateDNSSEC: true,
	})
	if err == nil {
		t.Error("ValidateDNSSEC without anchors accepted")
	}
}
