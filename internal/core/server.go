package core

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// ServerRef names one authoritative server endpoint.
type ServerRef struct {
	// Host is the server's DNS name (e.g. "a.root-servers.net.").
	Host dnswire.Name
	// Addr is where to reach it.
	Addr transport.Addr
}

// Config parameterises a CachingServer.
type Config struct {
	// Transport carries queries to authoritative servers. Required.
	Transport transport.Transport
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// RootHints are the hard-coded root servers every caching server
	// knows (§2). Required.
	RootHints []ServerRef

	// RefreshTTL enables the paper's TTL-refresh scheme.
	RefreshTTL bool
	// Renewal enables credit-based TTL renewal with the given policy;
	// nil disables renewal.
	Renewal RenewalPolicy
	// MaxTTL clamps cached TTLs; defaults to 7 days (§6: caching servers
	// do not accept arbitrarily large TTL values, which also bounds how
	// long a reclaimed delegation can linger).
	MaxTTL time.Duration
	// NegativeTTL caches NXDOMAIN/NODATA outcomes for this long; zero
	// disables negative caching (the paper's simulations ignore it).
	NegativeTTL time.Duration
	// ServeStale retains expired records for this long and serves them as
	// a last resort when resolution fails — the Ballani & Francis
	// HotNets'06 baseline from the paper's related work (§7), ancestor of
	// RFC 8767. Zero disables it.
	ServeStale time.Duration
	// Prefetch re-fetches a cached answer when a query hits it within
	// the last tenth of its TTL — unbound's prefetch behaviour, the other
	// modern cousin of the paper's renewal scheme (data records instead
	// of IRRs).
	Prefetch bool

	// MaxReferrals bounds one resolution's downward steps (default 24).
	MaxReferrals int
	// MaxCNAME bounds CNAME chain chasing (default 8).
	MaxCNAME int

	// OnGap observes IRR expiry-to-reuse gaps (Fig. 3).
	OnGap cache.GapFunc

	// OnCacheChange observes committed cache mutations (see
	// cache.Config.OnChange); the persistence journal hangs off it. Nil in
	// the simulator, which never persists.
	OnCacheChange cache.ChangeFunc

	// ValidateDNSSEC verifies answers from signed zones against the
	// DS→DNSKEY chain rooted at TrustAnchors (§6: DNSSEC's DS and DNSKEY
	// sets are infrastructure records and flow through the same cache).
	ValidateDNSSEC bool
	// TrustAnchors are trusted DNSKEY RRs (normally the root zone's).
	TrustAnchors []dnswire.RR

	// AdvertiseEDNS0 attaches an EDNS0 OPT record advertising a 4096-byte
	// UDP payload to outgoing queries, avoiding TCP fallback for large
	// referrals.
	AdvertiseEDNS0 bool

	// ParentRecheckInterval forces a query to a zone's parent when the
	// cached delegation has not been confirmed by the parent for this
	// long, so reclaimed delegations surface even under indefinite
	// refresh/renewal (§6 "Deployment Issues"; the paper suggests 7
	// days). Zero disables the recheck.
	ParentRecheckInterval time.Duration

	// AddrMapper converts a name server's address record into a transport
	// address. The default uses the bare IP string (the simulator's
	// convention); live deployments typically append ":53".
	AddrMapper func(addr netip.Addr) transport.Addr

	// Upstream tunes the robustness layer shared by the query, renewal,
	// and prefetch paths (RTT-aware server selection, adaptive per-attempt
	// timeouts, failure quarantine, retry budget). The zero value enables
	// it with defaults; set Upstream.Disable for the legacy round-robin
	// behaviour.
	Upstream UpstreamConfig
}

// Stats counts a caching server's activity. Counters are cumulative;
// subtract two snapshots to measure an interval.
type Stats struct {
	// QueriesIn counts Resolve calls (stub-resolver queries).
	QueriesIn uint64
	// Resolved counts Resolve calls that produced an answer, including
	// authoritative negative answers.
	Resolved uint64
	// Failed counts Resolve calls that failed (servers unreachable).
	Failed uint64
	// CacheAnswered counts Resolve calls served entirely from cache.
	CacheAnswered uint64
	// Coalesced counts Resolve calls that joined another in-flight
	// resolution of the same (name, type) instead of resolving
	// themselves.
	Coalesced uint64

	// QueriesOut counts queries sent to authoritative servers, renewal
	// refetches included.
	QueriesOut uint64
	// QueriesOutFailed counts those that timed out or were unreachable.
	QueriesOutFailed uint64

	// RenewalQueries counts refetches issued by the renewal scheduler.
	RenewalQueries uint64
	// RenewalFailed counts renewal refetches that failed entirely.
	RenewalFailed uint64
	// Renewals counts successful renew cycles.
	Renewals uint64

	// Referrals counts referral responses followed.
	Referrals uint64
	// StaleAnswers counts expired records served under ServeStale.
	StaleAnswers uint64
	// PrefetchQueries counts early refreshes issued by Prefetch.
	PrefetchQueries uint64

	// Retries counts upstream failover attempts beyond the first within a
	// single zone query or renewal refetch.
	Retries uint64
	// QuarantineSkips counts quarantined servers deprioritized behind a
	// healthy one during upstream selection.
	QuarantineSkips uint64
	// BudgetExhausted counts failover loops cut short because the
	// resolution spent its upstream retry budget.
	BudgetExhausted uint64
}

// statCounters is the lock-free internal form of Stats.
type statCounters struct {
	queriesIn, resolved, failed, cacheAnswered, coalesced atomic.Uint64
	queriesOut, queriesOutFailed                          atomic.Uint64
	renewalQueries, renewalFailed, renewals               atomic.Uint64
	referrals, staleAnswers, prefetchQueries              atomic.Uint64
	retries, quarantineSkips, budgetExhausted             atomic.Uint64
}

// snapshot reads every counter into an exported Stats value.
func (s *statCounters) snapshot() Stats {
	return Stats{
		QueriesIn:        s.queriesIn.Load(),
		Resolved:         s.resolved.Load(),
		Failed:           s.failed.Load(),
		CacheAnswered:    s.cacheAnswered.Load(),
		Coalesced:        s.coalesced.Load(),
		QueriesOut:       s.queriesOut.Load(),
		QueriesOutFailed: s.queriesOutFailed.Load(),
		RenewalQueries:   s.renewalQueries.Load(),
		RenewalFailed:    s.renewalFailed.Load(),
		Renewals:         s.renewals.Load(),
		Referrals:        s.referrals.Load(),
		StaleAnswers:     s.staleAnswers.Load(),
		PrefetchQueries:  s.prefetchQueries.Load(),
		Retries:          s.retries.Load(),
		QuarantineSkips:  s.quarantineSkips.Load(),
		BudgetExhausted:  s.budgetExhausted.Load(),
	}
}

// Result is a completed resolution.
type Result struct {
	RCode dnswire.RCode
	// Answer holds the answer-section records (CNAME chains included).
	Answer []dnswire.RR
	// FromCache reports that no authoritative query was needed.
	FromCache bool
}

// ErrResolutionFailed reports that every reachable path to the answer was
// exhausted (the paper's "failed query").
var ErrResolutionFailed = errors.New("core: resolution failed")

// CachingServer is the paper's modified caching server (CS). It is safe
// for concurrent use: the cache is sharded internally, the remaining
// state is split into independently locked components (see the lock
// comments below), and no lock is ever held across a Transport.Exchange
// round-trip. Concurrent Resolve calls for the same (name, type) coalesce
// into one upstream resolution. The trace-driven simulator uses the same
// code single-threaded, where every operation stays deterministic.
//
// Lock hierarchy (a goroutine may only take locks downward in this list,
// and never holds one across upstream I/O):
//
//	flightMu > renewMu > cache shard locks
//	negMu, parentMu, secMu are leaves taken on their own.
type CachingServer struct {
	cfg   Config
	cache *cache.Cache

	// renewMu guards the renewal scheduler: per-zone credit, the due
	// queue, and the scheduled set.
	renewMu   sync.Mutex
	credits   map[dnswire.Name]float64
	renew     renewQueue
	scheduled map[dnswire.Name]bool

	// negMu guards the negative-answer cache.
	negMu    sync.Mutex
	negative map[cache.Key]negEntry

	// parentMu guards parentSeen, which records when each zone's
	// delegation was last confirmed by a referral from the parent.
	parentMu   sync.Mutex
	parentSeen map[dnswire.Name]time.Time

	// secMu guards the DNSSEC chain state: validator (nil when not
	// validating) and the insecure-zone cache.
	secMu     sync.Mutex
	validator *dnssec.Validator
	insecure  map[dnswire.Name]bool

	// flightMu guards the in-flight resolution table.
	flightMu sync.Mutex
	flight   map[cache.Key]*flightCall

	stats statCounters
	// qid is the outgoing query-ID counter: seeded from crypto/rand and
	// advanced atomically, so concurrent queries never share an ID and
	// the sequence does not restart at a guessable value.
	qid atomic.Uint32
	// upstream holds the per-server selection state (RTT estimates,
	// quarantine) shared by the query, renewal, and prefetch paths; it has
	// its own internal lock, taken only for short state reads/updates and
	// never across an exchange.
	upstream *upstream
}

// maxGlueDepth bounds nested resolutions of out-of-bailiwick name-server
// addresses.
const maxGlueDepth = 4

// staleServeTTL is the TTL stamped on stale answers (RFC 8767 recommends
// a short value so clients re-try soon).
const staleServeTTL = 30

// defaultTimeouts and loop bounds.
const (
	defaultMaxReferrals = 24
	defaultMaxCNAME     = 8
	// renewLead is how far before expiry a renewal refetch fires ("just
	// before they are ready to expire", §4).
	renewLead = time.Second
)

// NewCachingServer builds a caching server from cfg.
func NewCachingServer(cfg Config) (*CachingServer, error) {
	if cfg.Transport == nil {
		return nil, errors.New("core: Config.Transport is required")
	}
	if len(cfg.RootHints) == 0 {
		return nil, errors.New("core: Config.RootHints is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.MaxReferrals == 0 {
		cfg.MaxReferrals = defaultMaxReferrals
	}
	if cfg.MaxCNAME == 0 {
		cfg.MaxCNAME = defaultMaxCNAME
	}
	if cfg.AddrMapper == nil {
		cfg.AddrMapper = func(a netip.Addr) transport.Addr { return transport.Addr(a.String()) }
	}
	cs := &CachingServer{
		cfg: cfg,
		cache: cache.New(cache.Config{
			Clock:           cfg.Clock,
			MaxTTL:          cfg.MaxTTL,
			RefreshInfraTTL: cfg.RefreshTTL,
			OnGap:           cfg.OnGap,
			OnChange:        cfg.OnCacheChange,
			KeepStale:       cfg.ServeStale,
		}),
		credits:    make(map[dnswire.Name]float64),
		scheduled:  make(map[dnswire.Name]bool),
		parentSeen: make(map[dnswire.Name]time.Time),
		flight:     make(map[cache.Key]*flightCall),
		upstream:   newUpstream(cfg.Upstream),
	}
	var seed [4]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("core: seeding query IDs: %w", err)
	}
	cs.qid.Store(binary.LittleEndian.Uint32(seed[:]))
	if cfg.ValidateDNSSEC {
		if len(cfg.TrustAnchors) == 0 {
			return nil, errors.New("core: ValidateDNSSEC requires TrustAnchors")
		}
		cs.validator = dnssec.NewValidator(cfg.TrustAnchors...)
		cs.insecure = make(map[dnswire.Name]bool)
	}
	return cs, nil
}

// nextQID returns a fresh 16-bit query ID.
func (cs *CachingServer) nextQID() uint16 { return uint16(cs.qid.Add(1)) }

// Stats returns a snapshot of the counters.
func (cs *CachingServer) Stats() Stats { return cs.stats.snapshot() }

// CacheStats reports cache occupancy after sweeping expired entries.
func (cs *CachingServer) CacheStats() cache.Stats {
	cs.cache.SweepExpired()
	return cs.cache.Stats()
}

// Cache exposes the underlying cache for tests and examples.
func (cs *CachingServer) Cache() *cache.Cache { return cs.cache }

// Resolve answers one stub-resolver query. Concurrent calls for the same
// (name, type) share a single upstream resolution.
func (cs *CachingServer) Resolve(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	cs.stats.queriesIn.Add(1)
	res, err := cs.resolveFromCache(qname, qtype)
	if err == nil && res == nil {
		res, err = cs.resolveCoalesced(ctx, qname, qtype)
	}
	if err != nil {
		cs.stats.failed.Add(1)
		return nil, err
	}
	cs.stats.resolved.Add(1)
	if res.FromCache {
		cs.stats.cacheAnswered.Add(1)
	}
	return res, nil
}

// resolveFromCache attempts to answer qname/qtype purely from live cached
// data — the lock-free hot path, which never enters the in-flight table.
// It returns (nil, nil) when upstream work is (or may be) needed, leaving
// the full resolution to the coalesced slow path. The lookup sequence per
// CNAME hop mirrors resolveOne's cache section exactly, so cache counters
// and gap tombstones behave as if the slow path had run.
func (cs *CachingServer) resolveFromCache(qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	now := cs.cfg.Clock.Now()
	var answer []dnswire.RR
	cur := qname
	for hop := 0; hop <= cs.cfg.MaxCNAME; hop++ {
		if e := cs.cache.Get(cur, qtype); e != nil {
			if cs.prefetchDue(e, now) {
				return nil, nil // let the slow path issue the prefetch
			}
			answer = append(answer, e.RRsWithRemainingTTL(now)...)
			return &Result{RCode: dnswire.RCodeNoError, Answer: answer, FromCache: true}, nil
		}
		if qtype != dnswire.TypeCNAME {
			if e := cs.cache.Get(cur, dnswire.TypeCNAME); e != nil {
				rrs := e.RRsWithRemainingTTL(now)
				answer = append(answer, rrs...)
				if target, ok := cnameTarget(rrs, cur, qtype); ok {
					cur = target
					continue
				}
				return &Result{RCode: dnswire.RCodeNoError, Answer: answer, FromCache: true}, nil
			}
		}
		if rcode, ok := cs.negativeLookup(cur, qtype, now); ok {
			return &Result{RCode: rcode, Answer: answer, FromCache: true}, nil
		}
		return nil, nil
	}
	// A fully cached CNAME chain longer than MaxCNAME: fail exactly as
	// the slow path would.
	return nil, fmt.Errorf("%w: CNAME chain too long for %s", ErrResolutionFailed, qname)
}

// prefetchDue reports whether a cache hit falls in the prefetch window
// (the last tenth of the entry's TTL).
func (cs *CachingServer) prefetchDue(e *cache.Entry, now time.Time) bool {
	return cs.cfg.Prefetch && e.Expires.Sub(now) <= e.OrigTTL/10
}

// resolveChain resolves qname/qtype, chasing CNAMEs across zones.
func (cs *CachingServer) resolveChain(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	var answer []dnswire.RR
	fromCache := true
	cur := qname
	for hop := 0; hop <= cs.cfg.MaxCNAME; hop++ {
		step, err := cs.resolveOne(ctx, cur, qtype, 0)
		if err != nil {
			return nil, err
		}
		answer = append(answer, step.Answer...)
		fromCache = fromCache && step.FromCache
		if step.RCode != dnswire.RCodeNoError {
			return &Result{RCode: step.RCode, Answer: answer, FromCache: fromCache}, nil
		}
		if target, ok := cnameTarget(step.Answer, cur, qtype); ok {
			cur = target
			continue
		}
		return &Result{RCode: dnswire.RCodeNoError, Answer: answer, FromCache: fromCache}, nil
	}
	return nil, fmt.Errorf("%w: CNAME chain too long for %s", ErrResolutionFailed, qname)
}

// cnameTarget returns the target to chase when rrs answer name only via a
// CNAME and the query was not for the CNAME itself.
func cnameTarget(rrs []dnswire.RR, name dnswire.Name, qtype dnswire.Type) (dnswire.Name, bool) {
	if qtype == dnswire.TypeCNAME {
		return "", false
	}
	var target dnswire.Name
	found := false
	for _, rr := range rrs {
		if rr.Type() == qtype {
			return "", false // real answer present
		}
		if rr.Name == name && rr.Type() == dnswire.TypeCNAME {
			target = rr.Data.(dnswire.CNAME).Target
			found = true
		}
	}
	return target, found
}

// resolveOne resolves a single (name, type) without CNAME chasing across
// calls: a cached or received CNAME is returned for the caller to chase.
// depth counts nested glue resolutions.
func (cs *CachingServer) resolveOne(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int) (*Result, error) {
	now := cs.cfg.Clock.Now()
	// Cache: exact answer, then a cached CNAME.
	if e := cs.cache.Get(qname, qtype); e != nil {
		cs.maybePrefetch(ctx, e, qname, qtype, depth, now)
		return &Result{RCode: dnswire.RCodeNoError, Answer: e.RRsWithRemainingTTL(now), FromCache: true}, nil
	}
	if qtype != dnswire.TypeCNAME {
		if e := cs.cache.Get(qname, dnswire.TypeCNAME); e != nil {
			return &Result{RCode: dnswire.RCodeNoError, Answer: e.RRsWithRemainingTTL(now), FromCache: true}, nil
		}
	}
	if rcode, ok := cs.negativeLookup(qname, qtype, now); ok {
		return &Result{RCode: rcode, FromCache: true}, nil
	}
	validate := cs.cfg.ValidateDNSSEC && depth == 0
	res, _, err := cs.iterate(ctx, qname, qtype, depth, validate, false)
	if err != nil && cs.cfg.ServeStale > 0 {
		// Retry using stale IRRs: expired NS/glue still point at child
		// servers that may be alive even though the upper hierarchy is
		// not (the serve-stale baseline's main power in this attack).
		if res2, _, err2 := cs.iterate(ctx, qname, qtype, depth, validate, true); err2 == nil {
			return res2, nil
		}
		if stale := cs.staleAnswer(qname, qtype); stale != nil {
			return stale, nil
		}
	}
	return res, err
}

// maybePrefetch refreshes a cache entry early when a query arrives in the
// last tenth of its TTL (unbound-style prefetch). The refetch happens
// inline before the cached data is returned, so the caller still gets the
// (valid) cached answer even if the refetch fails.
func (cs *CachingServer) maybePrefetch(ctx context.Context, e *cache.Entry, qname dnswire.Name, qtype dnswire.Type, depth int, now time.Time) {
	if !cs.cfg.Prefetch || depth > 0 {
		return
	}
	remaining := e.Expires.Sub(now)
	if remaining > e.OrigTTL/10 {
		return
	}
	cs.stats.prefetchQueries.Add(1)
	// A fresh fetch restarts the entry's lifetime; failures are harmless
	// (the cached copy is still live). The explicit Extend covers the
	// cache's conservative replacement rules for identical data.
	if _, _, err := cs.iterate(ctx, qname, qtype, depth+1, false, false); err == nil {
		cs.cache.Extend(qname, qtype)
	}
}

// staleAnswer serves an expired cached answer after live resolution
// failed, per the serve-stale baseline. A stale CNAME is not returned
// bare: the chain is chased through the stale cache, up to MaxCNAME hops,
// so the client receives the terminal records whenever they are still
// held. When only a prefix of the chain is cached the partial chain is
// returned (ending in a CNAME) and resolveChain chases the tail, trying
// live resolution first for each remaining hop.
func (cs *CachingServer) staleAnswer(qname dnswire.Name, qtype dnswire.Type) *Result {
	var answer []dnswire.RR
	cur := qname
	for hop := 0; hop <= cs.cfg.MaxCNAME; hop++ {
		e := cs.cache.GetStale(cur, qtype)
		if e == nil && qtype != dnswire.TypeCNAME {
			e = cs.cache.GetStale(cur, dnswire.TypeCNAME)
		}
		if e == nil {
			break
		}
		cs.stats.staleAnswers.Add(1)
		rrs := make([]dnswire.RR, len(e.RRs))
		copy(rrs, e.RRs)
		for i := range rrs {
			rrs[i].TTL = staleServeTTL
		}
		answer = append(answer, rrs...)
		if target, ok := cnameTarget(rrs, cur, qtype); ok {
			cur = target
			continue
		}
		break // terminal records (or the CNAME itself was the question)
	}
	if len(answer) == 0 {
		return nil
	}
	return &Result{RCode: dnswire.RCodeNoError, Answer: answer, FromCache: true}
}

// iterate walks the DNS hierarchy from the deepest zone with cached IRRs
// down to the zone authoritative for qname.
func (cs *CachingServer) iterate(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int, validate, stale bool) (*Result, *dnswire.Message, error) {
	var lastErr error
	prevZone := dnswire.Name("")
	for step := 0; step < cs.cfg.MaxReferrals; step++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, err)
		}
		zname, servers := cs.deepestKnownZone(qname, qtype, stale)
		if zname == prevZone {
			// A referral that does not descend (e.g. the child's servers
			// have no resolvable addresses) would loop forever.
			return nil, nil, fmt.Errorf("%w: %s %s: no progress below zone %s",
				ErrResolutionFailed, qname, qtype, zname)
		}
		prevZone = zname
		resp, err := cs.queryZone(ctx, zname, servers, qname, qtype)
		if err != nil {
			lastErr = err
			if zname.IsRoot() {
				// Even the root hints failed: the query is lost (§3).
				return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, err)
			}
			// The zone's cached IRRs are stale or its servers are down;
			// discard them and climb to an ancestor (§4 "Long TTL": in
			// the worst case the parent zone must be queried to reset
			// the IRR).
			cs.cache.Evict(zname, dnswire.TypeNS)
			continue
		}

		cs.ingest(resp, zname, qname)

		switch {
		case resp.RCode == dnswire.RCodeNXDomain:
			cs.negativeStore(qname, qtype, dnswire.RCodeNXDomain)
			return &Result{RCode: dnswire.RCodeNXDomain}, resp, nil

		case resp.RCode != dnswire.RCodeNoError:
			// Lame or broken server; treat the zone as unusable.
			lastErr = fmt.Errorf("core: %s from %s", resp.RCode, zname)
			if zname.IsRoot() {
				return nil, nil, fmt.Errorf("%w: %v", ErrResolutionFailed, lastErr)
			}
			cs.cache.Evict(zname, dnswire.TypeNS)
			continue

		case answersQuestion(resp, qname, qtype):
			if validate && cs.validator != nil {
				if err := cs.validateAnswer(ctx, zname, resp, depth); err != nil {
					return nil, nil, fmt.Errorf("%w: %v", ErrResolutionFailed, err)
				}
			}
			return &Result{RCode: dnswire.RCodeNoError, Answer: relevantAnswers(resp, qname, qtype)}, resp, nil

		case isReferral(resp, zname):
			cs.stats.referrals.Add(1)
			cs.resolveMissingGlue(ctx, referralChild(resp, zname), depth)
			continue // deepestKnownZone now finds the child's IRRs

		default:
			// Authoritative empty answer: NODATA.
			cs.negativeStore(qname, qtype, dnswire.RCodeNoError)
			return &Result{RCode: dnswire.RCodeNoError}, resp, nil
		}
	}
	if lastErr == nil {
		lastErr = errors.New("referral limit exceeded")
	}
	return nil, nil, fmt.Errorf("%w: %s %s: %v", ErrResolutionFailed, qname, qtype, lastErr)
}

// deepestKnownZone returns the deepest ancestor zone of qname whose IRRs
// (NS plus at least one server address) are cached, falling back to the
// root hints.
func (cs *CachingServer) deepestKnownZone(qname dnswire.Name, qtype dnswire.Type, stale bool) (dnswire.Name, []transport.Addr) {
	now := cs.cfg.Clock.Now()
	get := func(name dnswire.Name, t dnswire.Type) *cache.Entry {
		if e := cs.cache.Get(name, t); e != nil {
			return e
		}
		if stale {
			return cs.cache.GetStale(name, t)
		}
		return nil
	}
	for _, anc := range qname.Ancestors() {
		if anc.IsRoot() {
			break
		}
		if qtype == dnswire.TypeDS && anc == qname {
			// The parent side is authoritative for the DS RRset at a
			// delegation; never ask the child about its own DS.
			continue
		}
		e := get(anc, dnswire.TypeNS)
		if e == nil {
			continue
		}
		if iv := cs.cfg.ParentRecheckInterval; iv > 0 && !stale {
			if seen, ok := cs.parentLastSeen(anc); !ok || now.Sub(seen) > iv {
				// The delegation is overdue for confirmation: pretend the
				// IRRs are unknown so resolution re-visits the parent.
				continue
			}
		}
		var addrs []transport.Addr
		for _, rr := range e.RRs {
			host := rr.Data.(dnswire.NS).Host
			if ae := get(host, dnswire.TypeA); ae != nil {
				for _, arr := range ae.RRs {
					addrs = append(addrs, cs.cfg.AddrMapper(arr.Data.(dnswire.A).Addr))
				}
				continue
			}
			// No A glue for this host: fall back to cached AAAA glue, which
			// renewal keeps alive alongside A (renewZone extends both).
			if ae := get(host, dnswire.TypeAAAA); ae != nil {
				for _, arr := range ae.RRs {
					addrs = append(addrs, cs.cfg.AddrMapper(arr.Data.(dnswire.AAAA).Addr))
				}
			}
		}
		if len(addrs) > 0 {
			return anc, addrs
		}
	}
	addrs := make([]transport.Addr, 0, len(cs.cfg.RootHints))
	for _, h := range cs.cfg.RootHints {
		addrs = append(addrs, h.Addr)
	}
	return dnswire.Root, addrs
}

// parentLastSeen returns when zone's delegation was last confirmed by its
// parent.
func (cs *CachingServer) parentLastSeen(zone dnswire.Name) (time.Time, bool) {
	cs.parentMu.Lock()
	defer cs.parentMu.Unlock()
	seen, ok := cs.parentSeen[zone]
	return seen, ok
}

// queryZone sends (qname, qtype) to the zone's servers through the
// upstream failover loop. The zone's renewal credit is updated only after
// a validated response arrives: a query that every server fails never
// earns the zone credit towards renewing IRRs that evidently cannot be
// refetched. No lock is held across the Exchange round-trips.
func (cs *CachingServer) queryZone(ctx context.Context, zname dnswire.Name, servers []transport.Addr, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: no addresses for zone %s", transport.ErrServerUnreachable, zname)
	}
	q := dnswire.NewQuery(cs.nextQID(), qname, qtype)
	if cs.cfg.AdvertiseEDNS0 {
		q.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
	}
	resp, err := cs.exchangeFailover(ctx, servers, q)
	if err != nil {
		return nil, err
	}
	cs.updateCredit(zname)
	return resp, nil
}

// exchangeFailover tries each of servers in the upstream layer's
// preferred order (healthy by ascending SRTT, then quarantined) until one
// returns a validated response. Every path that talks upstream — zone
// queries, renewal refetches, prefetch — funnels through here, so RTT
// estimates, quarantine state, and the retry budget are shared across all
// of them. A cancelled client must not keep burning upstream attempts, so
// the loop re-checks ctx before every attempt.
func (cs *CachingServer) exchangeFailover(ctx context.Context, servers []transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	ordered, skipped := cs.upstream.order(servers, cs.cfg.Clock.Now())
	if skipped > 0 {
		cs.stats.quarantineSkips.Add(uint64(skipped))
	}
	var lastErr error
	for i, addr := range ordered {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, lastErr
		}
		if !takeAttempt(ctx) {
			cs.stats.budgetExhausted.Add(1)
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", errBudgetExhausted, lastErr)
			}
			return nil, errBudgetExhausted
		}
		if i > 0 {
			cs.stats.retries.Add(1)
		}
		cs.stats.queriesOut.Add(1)
		resp, err := cs.exchange(ctx, addr, q)
		if err != nil {
			cs.stats.queriesOutFailed.Add(1)
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// exchange performs one upstream attempt against addr: it applies the
// per-attempt deadline derived from the server's RTT history, validates
// the response (ID and question echo), and folds the outcome back into
// the server's selection state.
func (cs *CachingServer) exchange(ctx context.Context, addr transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	if t := cs.upstream.attemptTimeout(addr); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	start := cs.cfg.Clock.Now()
	resp, err := cs.cfg.Transport.Exchange(ctx, addr, q)
	if err == nil && resp.ID != q.ID {
		err = fmt.Errorf("core: mismatched response ID from %s", addr)
	}
	if err == nil && !dnswire.EchoesQuestion(q, resp) {
		err = fmt.Errorf("core: response from %s does not echo the question", addr)
	}
	if err != nil {
		cs.upstream.observeFailure(addr, cs.cfg.Clock.Now())
		return nil, err
	}
	cs.upstream.observeSuccess(addr, cs.cfg.Clock.Now().Sub(start))
	return resp, nil
}

// updateCredit applies the renewal policy on a query to zname.
func (cs *CachingServer) updateCredit(zname dnswire.Name) {
	if cs.cfg.Renewal == nil || zname.IsRoot() {
		return
	}
	ttl := cache.DefaultMaxTTL
	if e := cs.cache.Peek(zname, dnswire.TypeNS); e != nil {
		ttl = e.OrigTTL
	}
	cs.renewMu.Lock()
	cs.credits[zname] = cs.cfg.Renewal.Update(cs.credits[zname], ttl)
	cs.renewMu.Unlock()
}

// answersQuestion reports whether resp's answer section covers (qname,
// qtype), directly or through a CNAME.
func answersQuestion(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type) bool {
	for _, rr := range resp.Answer {
		if rr.Name == qname && (rr.Type() == qtype || rr.Type() == dnswire.TypeCNAME) {
			return true
		}
	}
	return false
}

// relevantAnswers extracts the answer-section records that belong to the
// question's CNAME chain.
func relevantAnswers(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	cur := qname
	for hops := 0; hops <= len(resp.Answer); hops++ {
		matched := false
		for _, rr := range resp.Answer {
			if rr.Name != cur {
				continue
			}
			if rr.Type() == qtype {
				out = append(out, rr)
				matched = true
			}
		}
		if matched {
			return out
		}
		// Follow one CNAME link.
		advanced := false
		for _, rr := range resp.Answer {
			if rr.Name == cur && rr.Type() == dnswire.TypeCNAME {
				out = append(out, rr)
				cur = rr.Data.(dnswire.CNAME).Target
				advanced = true
				break
			}
		}
		if !advanced {
			return out
		}
	}
	return out
}

// referralChild returns the child zone a referral from zname points at.
func referralChild(resp *dnswire.Message, zname dnswire.Name) dnswire.Name {
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS && rr.Name != zname && rr.Name.IsSubdomainOf(zname) {
			return rr.Name
		}
	}
	return ""
}

// resolveMissingGlue resolves address records for the child zone's name
// servers when the referral carried no usable glue (out-of-bailiwick
// servers). Failures are tolerated: iterate detects lack of progress.
func (cs *CachingServer) resolveMissingGlue(ctx context.Context, child dnswire.Name, depth int) {
	if child == "" || depth >= maxGlueDepth {
		return
	}
	e := cs.cache.Peek(child, dnswire.TypeNS)
	if e == nil {
		return
	}
	// Any live cached address already makes the zone usable. Get (not
	// Peek) so that an expired glue record does not masquerade as usable.
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		if cs.cache.Get(host, dnswire.TypeA) != nil {
			return
		}
	}
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		if host.IsSubdomainOf(child) {
			// In-bailiwick without glue: unresolvable without the child
			// zone itself; skip.
			continue
		}
		if _, err := cs.resolveOne(ctx, host, dnswire.TypeA, depth+1); err == nil {
			return
		}
	}
}

// isReferral reports whether resp is a downward referral from zname.
func isReferral(resp *dnswire.Message, zname dnswire.Name) bool {
	if len(resp.Answer) != 0 || resp.Flags.Authoritative {
		return false
	}
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS && rr.Name != zname && rr.Name.IsSubdomainOf(zname) {
			return true
		}
	}
	return false
}
