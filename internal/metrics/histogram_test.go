package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	wantSum := 200*time.Microsecond + 3*time.Millisecond
	if s.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if mean := s.Mean(); mean != wantSum/3 {
		t.Errorf("Mean = %v, want %v", mean, wantSum/3)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	// The median bucket holds the 100µs samples: its upper bound is
	// below 1ms. The p99 falls in the 50ms samples' bucket.
	if q := s.Quantile(0.5); q >= time.Millisecond {
		t.Errorf("p50 = %v, want < 1ms", q)
	}
	if q := s.Quantile(0.99); q < 25*time.Millisecond {
		t.Errorf("p99 = %v, want a bucket covering 50ms", q)
	}
	// Degenerate inputs.
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if m := empty.Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)         // clamps into the lowest bucket
	h.Observe(300 * 24 * time.Hour) // clamps into the highest bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[len(s.Buckets)-1] != 1 {
		t.Errorf("extremes not clamped to the edge buckets: %v", s.Buckets)
	}
}

// TestHistogramConcurrent hammers Observe/Snapshot for the -race pass:
// the histogram sits on the traced hot path and must be lock-free safe.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
				if i%100 == 0 {
					h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("Count = %d, want 8000", s.Count)
	}
}
