// Package workload generates and manipulates stub-resolver query traces.
// The paper's evaluation replays six proprietary university traces
// (Table 1); this package substitutes a synthetic generator whose knobs
// control the properties those results depend on: Zipf-skewed zone
// popularity, per-client interest with overlap across clients, temporal
// locality (repeat queries), a diurnal rate pattern, and sporadic queries
// for non-existent names. It also reads and writes a plain-text trace
// format and computes Table 1-style statistics.
package workload

import (
	"math/rand"
	"sort"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/topology"
)

// Query is one stub-resolver query.
type Query struct {
	// At is the absolute query time.
	At time.Time
	// Client identifies the stub resolver issuing the query.
	Client int
	Name   dnswire.Name
	Type   dnswire.Type
}

// Trace is a time-ordered query workload.
type Trace struct {
	// Label names the trace (e.g. "TRC1").
	Label string
	Start time.Time
	// Duration covers the full trace horizon.
	Duration time.Duration
	// Clients is the number of distinct stub resolvers.
	Clients int
	Queries []Query
}

// GenParams controls synthetic trace generation.
type GenParams struct {
	Label string
	Seed  int64
	Start time.Time
	// Duration is the trace horizon (the paper uses 7 days, one trace a
	// month).
	Duration time.Duration
	// Clients is the stub-resolver population.
	Clients int
	// TotalQueries is the number of queries over the horizon.
	TotalQueries int
	// ZipfS > 1 skews zone popularity (higher = more skew).
	ZipfS float64
	// RepeatProb is the probability a client re-queries one of its
	// recent names (temporal locality).
	RepeatProb float64
	// ClientLocalProb is the probability a query comes from the client's
	// private interest set rather than the global popularity law.
	ClientLocalProb float64
	// NXFrac is the fraction of queries for names that do not exist.
	NXFrac float64
	// Diurnal modulates the arrival rate with a 24 h sine (day ≫ night).
	Diurnal bool
}

// DefaultGenParams returns a 7-day workload in the spirit of the paper's
// university traces, scaled to simulate quickly.
func DefaultGenParams(label string, seed int64, start time.Time) GenParams {
	return GenParams{
		Label:           label,
		Seed:            seed,
		Start:           start,
		Duration:        7 * 24 * time.Hour,
		Clients:         400,
		TotalQueries:    60000,
		ZipfS:           1.3,
		RepeatProb:      0.35,
		ClientLocalProb: 0.25,
		NXFrac:          0.03,
		Diurnal:         true,
	}
}

// queryTypeTable is the query-type mix (A-dominated, like real traces).
var queryTypeTable = []struct {
	t dnswire.Type
	w float64
}{
	{dnswire.TypeA, 0.90},
	{dnswire.TypeAAAA, 0.05},
	{dnswire.TypeMX, 0.03},
	{dnswire.TypeTXT, 0.02},
}

// Generate builds a synthetic trace over the given queryable names.
func Generate(p GenParams, names []topology.TargetName) Trace {
	if p.Clients <= 0 || p.TotalQueries <= 0 || len(names) == 0 {
		return Trace{Label: p.Label, Start: p.Start, Duration: p.Duration, Clients: p.Clients}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Zone popularity: Zipf over the distinct zones, with the name order
	// shuffled so popularity is independent of generation order.
	zoneNames, namesByZone := indexByZone(names)
	perm := rng.Perm(len(zoneNames))
	s := p.ZipfS
	if s <= 1 {
		s = 1.2
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(len(zoneNames)-1))

	// Private interest sets: each client prefers a handful of zones.
	private := make([][]int, p.Clients)
	for c := range private {
		k := 3 + rng.Intn(8)
		set := make([]int, k)
		for i := range set {
			set[i] = rng.Intn(len(zoneNames))
		}
		private[c] = set
	}
	recent := make([][]Query, p.Clients)

	pickZone := func(client int) dnswire.Name {
		if rng.Float64() < p.ClientLocalProb {
			return zoneNames[private[client][rng.Intn(len(private[client]))]]
		}
		return zoneNames[perm[zipf.Uint64()]]
	}
	pickType := func() dnswire.Type {
		x := rng.Float64()
		for _, e := range queryTypeTable {
			x -= e.w
			if x <= 0 {
				return e.t
			}
		}
		return dnswire.TypeA
	}

	tr := Trace{Label: p.Label, Start: p.Start, Duration: p.Duration, Clients: p.Clients}
	tr.Queries = make([]Query, 0, p.TotalQueries)
	for i := 0; i < p.TotalQueries; i++ {
		at := p.Start.Add(arrivalOffset(rng, p, i))
		client := rng.Intn(p.Clients)

		// Temporal locality: repeat a recent query.
		if r := recent[client]; len(r) > 0 && rng.Float64() < p.RepeatProb {
			q := r[rng.Intn(len(r))]
			q.At = at
			tr.Queries = append(tr.Queries, q)
			continue
		}

		zn := pickZone(client)
		inZone := namesByZone[zn]
		var qname dnswire.Name
		if rng.Float64() < p.NXFrac {
			// A name that does not exist inside a real zone.
			n, err := zn.Child(nxLabel(rng))
			if err != nil {
				n = inZone[0]
			}
			qname = n
		} else {
			// Names within a zone follow a skewed pick: the first name
			// (typically "www") dominates.
			idx := 0
			if len(inZone) > 1 && rng.Float64() < 0.3 {
				idx = rng.Intn(len(inZone))
			}
			qname = inZone[idx]
		}
		q := Query{At: at, Client: client, Name: qname, Type: pickType()}
		tr.Queries = append(tr.Queries, q)
		recent[client] = append(recent[client], q)
		if len(recent[client]) > 32 {
			recent[client] = recent[client][1:]
		}
	}
	sort.SliceStable(tr.Queries, func(i, j int) bool { return tr.Queries[i].At.Before(tr.Queries[j].At) })
	return tr
}

// arrivalOffset spreads query i over the horizon, optionally with a
// diurnal rate pattern (more traffic during the day).
func arrivalOffset(rng *rand.Rand, p GenParams, _ int) time.Duration {
	for {
		off := time.Duration(rng.Int63n(int64(p.Duration)))
		if !p.Diurnal {
			return off
		}
		// Thinning: accept with probability following a 24 h sine with a
		// floor, peaking mid-day.
		hour := off % (24 * time.Hour)
		frac := float64(hour) / float64(24*time.Hour)
		accept := 0.25 + 0.75*dayShape(frac)
		if rng.Float64() < accept {
			return off
		}
	}
}

// dayShape maps a fraction of the day to a [0,1] activity level peaking at
// 14:00 and bottoming before dawn.
func dayShape(frac float64) float64 {
	// Piecewise triangle: low until 06:00, ramp to 14:00, ramp down to 24:00.
	switch {
	case frac < 0.25:
		return 0.1
	case frac < 0.58:
		return 0.1 + 0.9*(frac-0.25)/0.33
	default:
		return 1.0 - 0.9*(frac-0.58)/0.42
	}
}

// nxLabel builds a label that the generator never uses for real names.
func nxLabel(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return "nx-" + string(b)
}

// indexByZone groups names by zone, preserving deterministic order.
func indexByZone(names []topology.TargetName) ([]dnswire.Name, map[dnswire.Name][]dnswire.Name) {
	var zones []dnswire.Name
	byZone := make(map[dnswire.Name][]dnswire.Name)
	for _, tn := range names {
		if _, ok := byZone[tn.Zone]; !ok {
			zones = append(zones, tn.Zone)
		}
		byZone[tn.Zone] = append(byZone[tn.Zone], tn.Name)
	}
	return zones, byZone
}

// Stats are Table 1-style trace statistics. RequestsOut is filled by the
// simulator, not the trace itself.
type Stats struct {
	Label      string
	Duration   time.Duration
	Clients    int
	RequestsIn int
	// Names is the number of distinct query names.
	Names int
	// Zones is the number of distinct enclosing zones queried (counted
	// by the name's parent; NX names still belong to a real zone).
	Zones int
}

// ComputeStats derives Table 1 statistics from a trace.
func ComputeStats(tr Trace) Stats {
	names := make(map[dnswire.Name]bool)
	zones := make(map[dnswire.Name]bool)
	clients := make(map[int]bool)
	for _, q := range tr.Queries {
		names[q.Name] = true
		zones[q.Name.Parent()] = true
		clients[q.Client] = true
	}
	return Stats{
		Label:      tr.Label,
		Duration:   tr.Duration,
		Clients:    len(clients),
		RequestsIn: len(tr.Queries),
		Names:      len(names),
		Zones:      len(zones),
	}
}

// ZoneQueryCounts tallies queries per enclosing zone, for the
// maximum-damage attack heuristic.
func ZoneQueryCounts(tr Trace) map[dnswire.Name]uint64 {
	counts := make(map[dnswire.Name]uint64)
	for _, q := range tr.Queries {
		counts[q.Name.Parent()]++
	}
	return counts
}
