package goroleak_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	prev := goroleak.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := goroleak.Analyzer.Flags.Set("pkgs",
		"goroleak_bad,goroleak_ok,goroleak_stale"); err != nil {
		t.Fatal(err)
	}
	defer goroleak.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, goroleak.Analyzer,
		"goroleak_bad", "goroleak_ok", "goroleak_stale", "goroleak_outofscope")
}
