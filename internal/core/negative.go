package core

import (
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// negEntry caches a negative resolution outcome.
type negEntry struct {
	rcode   dnswire.RCode
	expires time.Time
}

// negativeStore remembers a negative outcome when negative caching is on.
func (cs *CachingServer) negativeStore(qname dnswire.Name, qtype dnswire.Type, rcode dnswire.RCode) {
	if cs.cfg.NegativeTTL <= 0 {
		return
	}
	cs.negMu.Lock()
	defer cs.negMu.Unlock()
	if cs.negative == nil {
		cs.negative = make(map[cache.Key]negEntry)
	}
	cs.negative[cache.Key{Name: qname, Type: qtype}] = negEntry{
		rcode:   rcode,
		expires: cs.cfg.Clock.Now().Add(cs.cfg.NegativeTTL),
	}
}

// negativeLookup returns a cached negative outcome, if one is live.
func (cs *CachingServer) negativeLookup(qname dnswire.Name, qtype dnswire.Type, now time.Time) (dnswire.RCode, bool) {
	if cs.cfg.NegativeTTL <= 0 {
		return 0, false
	}
	cs.negMu.Lock()
	defer cs.negMu.Unlock()
	if cs.negative == nil {
		return 0, false
	}
	key := cache.Key{Name: qname, Type: qtype}
	e, ok := cs.negative[key]
	if !ok {
		return 0, false
	}
	if !e.expires.After(now) {
		delete(cs.negative, key)
		return 0, false
	}
	return e.rcode, true
}
