package core

import (
	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// Mesh backend surface: these three methods let a CachingServer serve a
// cooperative resolver mesh (internal/mesh) without core importing the
// mesh package — the mesh's Backend interface is satisfied structurally.
//
//   - ZoneIRRMessage builds the IRR set an owner gossips after renewing;
//   - IngestPeerIRRs validates and ingests a peer's gossiped set;
//   - PeerAnswer serves a peer-fetch request from cached data only.

// ZoneIRRMessage packages the zone's cached infrastructure records — the
// NS set plus the cached address records of the servers it names — as an
// authoritative response-shaped message with remaining TTLs, ready for
// gossip. Returns nil when the zone's NS set is not live infrastructure
// in this cache (nothing worth pushing).
func (cs *CachingServer) ZoneIRRMessage(zone dnswire.Name) *dnswire.Message {
	now := cs.cfg.Clock.Now()
	e := cs.cache.Get(zone, dnswire.TypeNS)
	if e == nil || !e.Infra {
		return nil
	}
	msg := &dnswire.Message{
		Question: []dnswire.Question{{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassIN}},
		Answer:   e.RRsWithRemainingTTL(now),
	}
	msg.Flags.Response = true
	msg.Flags.Authoritative = true
	for _, rr := range e.RRs {
		host := rr.Data.(dnswire.NS).Host
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			if ge := cs.cache.Get(host, t); ge != nil {
				msg.Additional = append(msg.Additional, ge.RRsWithRemainingTTL(now)...)
			}
		}
	}
	return msg
}

// IngestPeerIRRs validates a peer-gossiped IRR message and ingests it
// through the normal validated ingest path (credibility ranking,
// bailiwick-style nsHost gating on the glue, TTL clamping), tagged
// cache.OriginPeer. Like a renewal, a valid push then explicitly extends
// the zone's IRRs so the fleet's caches stay warm deterministically.
// Reports whether the message was accepted.
func (cs *CachingServer) IngestPeerIRRs(zone dnswire.Name, msg *dnswire.Message) bool {
	if msg == nil || len(msg.Answer) == 0 || len(msg.Authority) != 0 {
		return false
	}
	// The answer section must be exactly the zone's NS set: a peer push
	// may only refresh infrastructure records for the zone it names,
	// never inject arbitrary answer-credibility data.
	for _, rr := range msg.Answer {
		if rr.Name != zone || rr.Type() != dnswire.TypeNS {
			return false
		}
	}
	hosts := make([]dnswire.Name, 0, len(msg.Answer))
	for _, rr := range msg.Answer {
		hosts = append(hosts, rr.Data.(dnswire.NS).Host)
	}
	cs.resolver.IngestFrom(msg, zone, zone, cache.OriginPeer)
	cs.cache.Extend(zone, dnswire.TypeNS)
	for _, host := range hosts {
		cs.cache.Extend(host, dnswire.TypeA)
		cs.cache.Extend(host, dnswire.TypeAAAA)
	}
	return true
}

// PeerAnswer serves one mesh peer-fetch request from cached data alone
// (live, negative, then stale) — never recursing, so relayed fetches can
// never cascade into further upstream or peer traffic.
func (cs *CachingServer) PeerAnswer(q *dnswire.Message) *dnswire.Message {
	return cs.HandleQueryCacheOnly(q)
}
