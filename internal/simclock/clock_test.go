package simclock

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Errorf("Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(90 * time.Second)
	if got, want := v.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Hour)
	v.AdvanceTo(epoch)
	if got, want := v.Now(), epoch.Add(time.Hour); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualFiresEventsInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []int
	v.Schedule(epoch.Add(3*time.Second), func(time.Time) { fired = append(fired, 3) })
	v.Schedule(epoch.Add(1*time.Second), func(time.Time) { fired = append(fired, 1) })
	v.Schedule(epoch.Add(2*time.Second), func(time.Time) { fired = append(fired, 2) })
	v.Advance(10 * time.Second)
	want := []int{1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired %v, want %v", fired, want)
			break
		}
	}
}

func TestVirtualTieBreaksBySchedulingOrder(t *testing.T) {
	v := NewVirtual(epoch)
	at := epoch.Add(time.Second)
	var fired []string
	v.Schedule(at, func(time.Time) { fired = append(fired, "a") })
	v.Schedule(at, func(time.Time) { fired = append(fired, "b") })
	v.Advance(2 * time.Second)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Errorf("fired %v, want [a b]", fired)
	}
}

func TestVirtualEventSeesEventTime(t *testing.T) {
	v := NewVirtual(epoch)
	at := epoch.Add(5 * time.Second)
	var sawNow, sawClock time.Time
	v.Schedule(at, func(now time.Time) {
		sawNow = now
		sawClock = v.Now()
	})
	v.Advance(time.Minute)
	if !sawNow.Equal(at) {
		t.Errorf("event saw now=%v, want %v", sawNow, at)
	}
	if !sawClock.Equal(at) {
		t.Errorf("event saw clock=%v, want %v", sawClock, at)
	}
}

func TestVirtualEventMaySchedule(t *testing.T) {
	v := NewVirtual(epoch)
	var chained bool
	v.Schedule(epoch.Add(time.Second), func(now time.Time) {
		v.Schedule(now.Add(time.Second), func(time.Time) { chained = true })
	})
	v.Advance(3 * time.Second)
	if !chained {
		t.Error("chained event did not fire")
	}
	if v.PendingEvents() != 0 {
		t.Errorf("PendingEvents() = %d, want 0", v.PendingEvents())
	}
}

func TestVirtualDoesNotFireFutureEvents(t *testing.T) {
	v := NewVirtual(epoch)
	var fired bool
	v.Schedule(epoch.Add(time.Hour), func(time.Time) { fired = true })
	v.Advance(time.Minute)
	if fired {
		t.Error("future event fired early")
	}
	if v.PendingEvents() != 1 {
		t.Errorf("PendingEvents() = %d, want 1", v.PendingEvents())
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now().Add(-time.Second)
	if got := c.Now(); got.Before(before) {
		t.Errorf("Real.Now() = %v is implausibly old", got)
	}
}
