// Package experiments regenerates every table and figure in the paper's
// evaluation (§5): Table 1 (trace statistics), Fig. 3 (IRR expiry gap
// CDFs), Figs. 4–11 (failed-query percentages under root+TLD DDoS for
// vanilla DNS, TTL refresh, the four renewal policies, long TTL, and the
// combined scheme), Table 2 (message and memory overhead), and Fig. 12
// (cache occupancy over a month), plus the ablations DESIGN.md calls out.
//
// Everything is deterministic given Config.Seed. Results are memoised per
// (tree, trace, scheme, attack) so figures that share runs do not repeat
// them.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/sim"
	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

// Config scales the evaluation. The defaults run the full set of
// experiments in minutes on a laptop while preserving the paper's shapes.
type Config struct {
	Seed int64
	// Epoch anchors all traces.
	Epoch time.Time
	// NumTLDs / SLDsPerTLD size the synthetic hierarchy.
	NumTLDs    int
	SLDsPerTLD int
	// TraceClients / TraceQueries size each of the five 7-day traces.
	TraceClients int
	TraceQueries int
	// MonthClients / MonthQueries size the 30-day trace (TRC6).
	MonthClients int
	MonthQueries int
}

// DefaultConfig returns the standard evaluation scale.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Epoch:        time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		NumTLDs:      12,
		SLDsPerTLD:   70,
		TraceClients: 300,
		TraceQueries: 50000,
		MonthClients: 300,
		MonthQueries: 215000,
	}
}

// QuickConfig returns a much smaller scale for tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.NumTLDs = 6
	c.SLDsPerTLD = 25
	c.TraceClients = 80
	c.TraceQueries = 9000
	c.MonthClients = 80
	c.MonthQueries = 36000
	return c
}

// attackDurations are the paper's attack lengths.
var attackDurations = []time.Duration{3 * time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour}

// longTTLValues are the paper's long-TTL settings.
var longTTLValues = []time.Duration{24 * time.Hour, 3 * 24 * time.Hour, 5 * 24 * time.Hour, 7 * 24 * time.Hour}

// renewalCredits are the paper's credit values.
var renewalCredits = []float64{1, 3, 5}

// Suite holds the shared topology, traces, and memoised runs.
type Suite struct {
	cfg       Config
	baseTree  *topology.Tree
	longTrees map[time.Duration]*topology.Tree
	signed    *topology.Tree
	traces    []workload.Trace // TRC1..TRC5, 7 days each
	month     workload.Trace   // TRC6, 30 days
	memo      map[string]*sim.Results
}

// NewSuite generates the shared topology and traces.
func NewSuite(cfg Config) (*Suite, error) {
	tp := topology.DefaultParams(cfg.Seed)
	tp.NumTLDs = cfg.NumTLDs
	tp.SLDsPerTLD = cfg.SLDsPerTLD
	tree, err := topology.Generate(tp)
	if err != nil {
		return nil, err
	}
	s := &Suite{
		cfg:       cfg,
		baseTree:  tree,
		longTrees: make(map[time.Duration]*topology.Tree),
		memo:      make(map[string]*sim.Results),
	}
	names := tree.QueryableNames()
	for i := 1; i <= 5; i++ {
		gp := workload.DefaultGenParams(fmt.Sprintf("TRC%d", i), cfg.Seed+int64(i)*1000, cfg.Epoch)
		gp.Clients = cfg.TraceClients
		gp.TotalQueries = cfg.TraceQueries
		// Vary per-trace character the way different organisations do.
		gp.ZipfS = 1.2 + 0.1*float64(i)
		gp.RepeatProb = 0.3 + 0.05*float64(i)
		gp.ClientLocalProb = 0.3
		s.traces = append(s.traces, workload.Generate(gp, names))
	}
	gm := workload.DefaultGenParams("TRC6", cfg.Seed+6000, cfg.Epoch)
	gm.Duration = 30 * 24 * time.Hour
	gm.Clients = cfg.MonthClients
	gm.TotalQueries = cfg.MonthQueries
	s.month = workload.Generate(gm, names)
	return s, nil
}

// Tree returns the shared base topology.
func (s *Suite) Tree() *topology.Tree { return s.baseTree }

// Traces returns the five 7-day traces.
func (s *Suite) Traces() []workload.Trace { return s.traces }

// MonthTrace returns the 30-day trace (TRC6).
func (s *Suite) MonthTrace() workload.Trace { return s.month }

// longTree returns (generating on demand) the hierarchy with every zone's
// IRR TTL forced to ttl — the long-TTL scheme as deployed by operators.
func (s *Suite) longTree(ttl time.Duration) (*topology.Tree, error) {
	if t, ok := s.longTrees[ttl]; ok {
		return t, nil
	}
	tp := topology.DefaultParams(s.cfg.Seed)
	tp.NumTLDs = s.cfg.NumTLDs
	tp.SLDsPerTLD = s.cfg.SLDsPerTLD
	tp.IRRTTLOverride = ttl
	t, err := topology.Generate(tp)
	if err != nil {
		return nil, err
	}
	s.longTrees[ttl] = t
	return t, nil
}

// attackFor builds the paper's root+TLD blackout starting on day seven.
func (s *Suite) attackFor(tree *topology.Tree, dur time.Duration) attack.Schedule {
	if dur <= 0 {
		return nil
	}
	start := s.cfg.Epoch.Add(6 * 24 * time.Hour)
	return attack.RootAndTLDs(start, dur, tree.AllZoneNames())
}

// runKey builds the memoisation key.
func runKey(treeTag string, trace string, scheme sim.Scheme, dur, sample time.Duration, noChild bool) string {
	return fmt.Sprintf("%s|%s|%s|%v|%v|%v", treeTag, trace, scheme.Name, dur, sample, noChild)
}

// run executes (or recalls) one simulation.
func (s *Suite) run(tree *topology.Tree, treeTag string, tr workload.Trace, scheme sim.Scheme, dur, sample time.Duration, noChild bool) (*sim.Results, error) {
	key := runKey(treeTag, tr.Label, scheme, dur, sample, noChild)
	if r, ok := s.memo[key]; ok {
		return r, nil
	}
	r, err := sim.Run(sim.Scenario{
		Tree:        tree,
		Trace:       tr,
		Attack:      s.attackFor(tree, dur),
		Scheme:      scheme,
		SampleEvery: sample,
		Seed:        s.cfg.Seed,
		NoChildIRRs: noChild,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", key, err)
	}
	s.memo[key] = r
	return r, nil
}

// runBase is run over the shared base tree.
func (s *Suite) runBase(tr workload.Trace, scheme sim.Scheme, dur time.Duration) (*sim.Results, error) {
	return s.run(s.baseTree, "base", tr, scheme, dur, 0, false)
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper-shape expectations checked in EXPERIMENTS.md.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// pct renders a fraction as a percentage cell.
func pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// Registry maps experiment ids to their runners.
func (s *Suite) Registry() map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"table1":            s.Table1,
		"fig3":              s.Fig3,
		"fig4":              s.Fig4,
		"fig5":              s.Fig5,
		"fig6":              s.Fig6,
		"fig7":              s.Fig7,
		"fig8":              s.Fig8,
		"fig9":              s.Fig9,
		"fig10":             s.Fig10,
		"fig11":             s.Fig11,
		"table2":            s.Table2,
		"fig12":             s.Fig12,
		"ablation-childirr": s.AblationChildIRRs,
		"ablation-refresh":  s.AblationRenewalWithoutRefresh,
		"ablation-negcache": s.AblationNegativeCache,
		"maxdamage":         s.MaxDamage,
		"dnssec":            s.DNSSECExtension,
		"partition":         s.Partition,
		"servestale":        s.ServeStaleBaseline,
		// "restart" and "mesh" are runnable by id but intentionally
		// absent from ExperimentIDs(): they post-date the frozen
		// results_full.txt.
		"restart": s.Restart,
		"mesh":    s.Mesh,
	}
}

// ExperimentIDs lists the registered experiments in canonical order.
func ExperimentIDs() []string {
	ids := []string{
		"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "table2", "fig12",
		"ablation-childirr", "ablation-refresh", "ablation-negcache", "maxdamage",
		"dnssec", "partition", "servestale",
	}
	return ids
}

// Run executes one experiment by id.
func (s *Suite) Run(id string) (*Table, error) {
	fn, ok := s.Registry()[id]
	if !ok {
		known := ExperimentIDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	return fn()
}
