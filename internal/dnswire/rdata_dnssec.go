package dnswire

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
)

// DNSSEC record types (RFC 4034). The paper's §6 notes that DNSSEC
// introduces new infrastructure resource records (DS, DNSKEY) and that the
// refresh/renewal/long-TTL techniques extend to them; these types make
// that extension implementable.
const (
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

// DNSKEY flags.
const (
	// DNSKEYFlagZone marks a zone key (bit 7).
	DNSKEYFlagZone uint16 = 0x0100
	// DNSKEYFlagSEP marks a secure entry point / key-signing key (bit 15).
	DNSKEYFlagSEP uint16 = 0x0001
)

// DNSKEY is a zone public key (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (DNSKEY) Type() Type { return TypeDNSKEY }

// String implements RData.
func (k DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", k.Flags, k.Protocol, k.Algorithm,
		base64.StdEncoding.EncodeToString(k.PublicKey))
}

func (k DNSKEY) appendTo(p *Packer) error {
	p.appendUint16(k.Flags)
	p.buf = append(p.buf, k.Protocol, k.Algorithm)
	p.buf = append(p.buf, k.PublicKey...)
	return nil
}

// DS is a delegation signer record (RFC 4034 §5): the parent-side hash of
// a child zone's key-signing DNSKEY. Like NS+glue, it is infrastructure
// data stored at the parent.
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// Type implements RData.
func (DS) Type() Type { return TypeDS }

// String implements RData.
func (d DS) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		hex.EncodeToString(d.Digest))
}

func (d DS) appendTo(p *Packer) error {
	p.appendUint16(d.KeyTag)
	p.buf = append(p.buf, d.Algorithm, d.DigestType)
	p.buf = append(p.buf, d.Digest...)
	return nil
}

// RRSIG is an RRset signature (RFC 4034 §3). The signer name is never
// compressed.
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32 // seconds since the Unix epoch
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

// Type implements RData.
func (RRSIG) Type() Type { return TypeRRSIG }

// String implements RData.
func (s RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		s.TypeCovered, s.Algorithm, s.Labels, s.OrigTTL,
		s.Expiration, s.Inception, s.KeyTag, s.SignerName,
		base64.StdEncoding.EncodeToString(s.Signature))
}

func (s RRSIG) appendTo(p *Packer) error {
	p.appendUint16(uint16(s.TypeCovered))
	p.buf = append(p.buf, s.Algorithm, s.Labels)
	p.appendUint32(s.OrigTTL)
	p.appendUint32(s.Expiration)
	p.appendUint32(s.Inception)
	p.appendUint16(s.KeyTag)
	if err := p.appendUncompressedName(s.SignerName); err != nil {
		return err
	}
	p.buf = append(p.buf, s.Signature...)
	return nil
}

// rdataWire returns the uncompressed wire encoding of an RDATA payload,
// used by DNSSEC key tags, digests, and signature input.
func rdataWire(d RData) ([]byte, error) {
	// Canonical form (RFC 4034 §6.2) requires uncompressed names in RDATA.
	p := &Packer{noCompress: true}
	if err := d.appendTo(p); err != nil {
		return nil, err
	}
	return p.buf, nil
}

// CanonicalRDataWire exposes the canonical (uncompressed) RDATA encoding
// for DNSSEC processing.
func CanonicalRDataWire(d RData) ([]byte, error) { return rdataWire(d) }

// CanonicalNameWire returns the canonical wire form of a name (lower-case,
// uncompressed).
func CanonicalNameWire(n Name) ([]byte, error) {
	return appendName(nil, n)
}
