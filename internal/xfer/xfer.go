// Package xfer implements DNS zone transfer (AXFR, RFC 5936) and
// secondary-server zone maintenance: a client that pulls a whole zone
// over TCP, and a Secondary that keeps a served copy fresh by polling the
// primary's SOA serial and re-transferring on change.
package xfer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// ErrTransferFailed reports an unusable AXFR response.
var ErrTransferFailed = errors.New("xfer: zone transfer failed")

// AXFR pulls the full zone from the server using the given transport
// (normally transport.TCP) and rebuilds it.
func AXFR(ctx context.Context, tr transport.Transport, server transport.Addr, zoneName dnswire.Name) (*zone.Zone, error) {
	q := dnswire.NewQuery(axfrID(), zoneName, dnswire.TypeAXFR)
	resp, err := tr.Exchange(ctx, server, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransferFailed, err)
	}
	if resp.RCode != dnswire.RCodeNoError {
		return nil, fmt.Errorf("%w: %s from %s", ErrTransferFailed, resp.RCode, server)
	}
	if resp.Flags.Truncated {
		return nil, fmt.Errorf("%w: truncated response (use TCP)", ErrTransferFailed)
	}
	rrs := resp.Answer
	if len(rrs) < 2 {
		return nil, fmt.Errorf("%w: %d records", ErrTransferFailed, len(rrs))
	}
	first, okFirst := rrs[0].Data.(dnswire.SOA)
	last, okLast := rrs[len(rrs)-1].Data.(dnswire.SOA)
	if !okFirst || !okLast || first.Serial != last.Serial {
		return nil, fmt.Errorf("%w: stream not SOA-delimited", ErrTransferFailed)
	}
	z := zone.New(zoneName)
	for _, rr := range rrs[:len(rrs)-1] { // drop the trailing SOA copy
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransferFailed, err)
		}
	}
	return z, nil
}

// FetchSOASerial queries the zone's SOA and returns its serial.
func FetchSOASerial(ctx context.Context, tr transport.Transport, server transport.Addr, zoneName dnswire.Name) (uint32, error) {
	q := dnswire.NewQuery(axfrID(), zoneName, dnswire.TypeSOA)
	resp, err := tr.Exchange(ctx, server, q)
	if err != nil {
		return 0, err
	}
	for _, rr := range resp.Answer {
		if soa, ok := rr.Data.(dnswire.SOA); ok && rr.Name == zoneName {
			return soa.Serial, nil
		}
	}
	return 0, fmt.Errorf("xfer: no SOA in response for %s", zoneName)
}

var axfrSeq atomic.Uint32

// axfrID yields distinct message IDs without global randomness.
func axfrID() uint16 { return uint16(axfrSeq.Add(1)) }

// Secondary serves a zone transferred from a primary, refreshing it when
// the primary's SOA serial advances. It implements transport.Handler and
// can be placed behind UDP/TCP servers like any authoritative engine.
type Secondary struct {
	// Zone is the origin to maintain.
	Zone dnswire.Name
	// Primary is the master server's address.
	Primary transport.Addr
	// Transport defaults to DNS-over-TCP.
	Transport transport.Transport
	// PollInterval overrides the SOA refresh interval (default: the
	// zone's SOA refresh value, or a minute before the first transfer).
	PollInterval time.Duration

	mu      sync.Mutex
	serial  uint32
	loaded  bool
	current atomic.Pointer[authserver.Server]
	// transfers counts completed zone transfers, for tests and stats.
	transfers atomic.Uint64
}

// Refresh checks the primary's serial and re-transfers when needed (or
// when the secondary has never loaded the zone). It reports whether a
// transfer happened.
func (s *Secondary) Refresh(ctx context.Context) (bool, error) {
	tr := s.Transport
	if tr == nil {
		tr = &transport.TCP{}
	}
	// Snapshot the state and release before touching the network:
	// holding s.mu across the SOA probe or the transfer would block
	// Serial() and concurrent refreshers for a full network timeout
	// whenever the primary is slow or blackholed (dnslint: lockexchange,
	// the PR 1 invariant).
	s.mu.Lock()
	loaded, serial := s.loaded, s.serial
	s.mu.Unlock()
	if loaded {
		remote, err := FetchSOASerial(ctx, tr, s.Primary, s.Zone)
		if err != nil {
			return false, err
		}
		if remote == serial {
			return false, nil
		}
	}
	z, err := AXFR(ctx, tr, s.Primary, s.Zone)
	if err != nil {
		return false, err
	}
	soa, ok := z.SOA()
	if !ok {
		return false, fmt.Errorf("%w: transferred zone has no SOA", ErrTransferFailed)
	}
	newSerial := soa.Data.(dnswire.SOA).Serial
	s.mu.Lock()
	defer s.mu.Unlock()
	// A concurrent Refresh may have installed a copy while this one was
	// on the wire; RFC 1982 serial arithmetic decides which is newer.
	if s.loaded && !serialNewer(newSerial, s.serial) {
		return false, nil
	}
	s.current.Store(authserver.New(z))
	s.serial = newSerial
	s.loaded = true
	s.transfers.Add(1)
	return true, nil
}

// serialNewer reports whether a is strictly newer than b in RFC 1982
// serial-number arithmetic.
func serialNewer(a, b uint32) bool { return int32(a-b) > 0 }

// Serial returns the serial of the currently served copy (0 before the
// first transfer).
func (s *Secondary) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Transfers returns how many zone transfers have completed.
func (s *Secondary) Transfers() uint64 { return s.transfers.Load() }

// HandleQuery implements transport.Handler, serving the current copy.
// Before the first successful transfer every query gets SERVFAIL.
func (s *Secondary) HandleQuery(q *dnswire.Message) *dnswire.Message {
	srv := s.current.Load()
	if srv == nil {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	return srv.HandleQuery(q)
}

// pollTimeout bounds one refresh round: an SOA serial check plus, when
// the serial moved, a full AXFR over TCP.
const pollTimeout = 30 * time.Second

// Run refreshes the zone until ctx is cancelled, polling at the SOA
// refresh interval (or PollInterval when set). Transfer errors are
// retried at the poll cadence.
func (s *Secondary) Run(ctx context.Context) {
	for {
		// One poll (SOA check plus any transfer) gets its own deadline:
		// a black-holed primary must not hang the loop past its next
		// tick, it just fails this round and is retried.
		rctx, cancel := context.WithTimeout(ctx, pollTimeout)
		_, _ = s.Refresh(rctx) //nolint:errcheck // retried next round
		cancel()
		interval := s.PollInterval
		if interval == 0 {
			interval = time.Minute
			if srv := s.current.Load(); srv != nil {
				if soa, ok := srv.Zones()[0].SOA(); ok {
					interval = time.Duration(soa.Data.(dnswire.SOA).Refresh) * time.Second
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

var _ transport.Handler = (*Secondary)(nil)
