// Package antest is a minimal analysistest replacement for the dnslint
// suite. The toolchain vendors golang.org/x/tools/go/analysis (and the
// unitchecker driver that `go vet -vettool` speaks) but not
// go/analysis/analysistest, whose loader drags in go/packages and the
// go command. This harness reimplements the part dnslint needs on the
// standard library: load a fixture package from testdata/src/<path>
// (GOPATH layout, same as analysistest), typecheck it with the source
// importer, run the analyzer and its Requires closure, and match
// reported diagnostics against `// want "regexp"` comments.
//
// Differences from the real analysistest, on purpose:
//   - fixtures may import the standard library and sibling fixture
//     packages, but facts are not exported across packages;
//   - one `// want` expectation per line, matching any diagnostic
//     reported on that line.
package antest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// wantRE extracts the expectation regexp from a `// want "..."` or
// `// want `...`` comment.
var wantRE = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// Run loads each fixture package under dir/src and applies the
// analyzer, failing t on any mismatch between reported diagnostics and
// the fixtures' // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	// The source importer resolves imports through build.Default; point
	// its GOPATH at the fixture tree, analysistest-style. GO111MODULE
	// must be off or go/build notices the enclosing repo go.mod and
	// asks the go command to resolve fixture imports in module mode,
	// where they do not exist.
	oldGOPATH := build.Default.GOPATH
	build.Default.GOPATH = dir
	defer func() { build.Default.GOPATH = oldGOPATH }()
	t.Setenv("GO111MODULE", "off")

	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			runPackage(t, dir, a, path)
		})
	}
}

func runPackage(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgDir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	if _, err := runAnalyzer(a, fset, files, pkg, info, &diags, make(map[*analysis.Analyzer]any)); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, fset, files, diags)
}

// factStore is the in-memory fact table backing a single fixture run.
// The real drivers serialize facts across package boundaries; fixtures
// are analyzed one package at a time, so facts only need to round-trip
// within the pass (same-package objects) — which is exactly what the
// fact-based analyzers use same-package fixpoints for anyway.
type factStore struct {
	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		objFacts: make(map[types.Object][]analysis.Fact),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
	}
}

// setFact inserts fact into facts, replacing any existing fact of the
// same dynamic type (one fact per type per key, like the real drivers).
func setFact(facts []analysis.Fact, fact analysis.Fact) []analysis.Fact {
	for i, f := range facts {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			facts[i] = fact
			return facts
		}
	}
	return append(facts, fact)
}

// getFact copies the stored fact with ptr's dynamic type into *ptr.
func getFact(facts []analysis.Fact, ptr analysis.Fact) bool {
	for _, f := range facts {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// runAnalyzer executes a's Requires closure then a itself, memoizing
// results. Only diagnostics from the root analyzer are collected (the
// diags slice is shared, but dependency passes like inspect never
// report).
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, diags *[]analysis.Diagnostic, results map[*analysis.Analyzer]any) (any, error) {
	if res, ok := results[a]; ok {
		return res, nil
	}
	deps := make(map[*analysis.Analyzer]any)
	for _, req := range a.Requires {
		res, err := runAnalyzer(req, fset, files, pkg, info, diags, results)
		if err != nil {
			return nil, err
		}
		deps[req] = res
	}
	fs := newFactStore()
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   deps,
		Report:     func(d analysis.Diagnostic) { *diags = append(*diags, d) },
		ReadFile:   os.ReadFile,

		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			fs.objFacts[obj] = setFact(fs.objFacts[obj], fact)
		},
		ImportObjectFact: func(obj types.Object, ptr analysis.Fact) bool {
			return getFact(fs.objFacts[obj], ptr)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			fs.pkgFacts[pkg] = setFact(fs.pkgFacts[pkg], fact)
		},
		ImportPackageFact: func(p *types.Package, ptr analysis.Fact) bool {
			return getFact(fs.pkgFacts[p], ptr)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, facts := range fs.objFacts {
				for _, f := range facts {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for p, facts := range fs.pkgFacts {
				for _, f := range facts {
					out = append(out, analysis.PackageFact{Package: p, Fact: f})
				}
			}
			return out
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return res, nil
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var pat string
				if m[1][0] == '"' {
					var err error
					pat, err = strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("bad // want string %s: %v", m[1], err)
					}
				} else {
					pat = m[1][1 : len(m[1])-1] // strip backquotes
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad // want regexp %q: %v", pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}
