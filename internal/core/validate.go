package core

import (
	"context"
	"errors"
	"fmt"

	"resilientdns/internal/dnswire"
)

// maxChainDepth bounds DS→DNSKEY chain walks.
const maxChainDepth = 8

// ErrBogus reports a DNSSEC validation failure: the zone chain is signed
// but the data does not verify.
var ErrBogus = errors.New("core: DNSSEC validation failed (bogus)")

// The dnssec.Validator mutates its trust-anchor map while validating
// delegations, so every call into it (and every insecure-map access) is
// serialized under secMu. secMu is a leaf lock, never held across
// network I/O — the accessors below each take it for one step only.

// zoneTrusted reports whether zname already has trusted keys.
func (cs *CachingServer) zoneTrusted(zname dnswire.Name) bool {
	cs.secMu.Lock()
	defer cs.secMu.Unlock()
	return len(cs.validator.TrustedKeys(zname)) > 0
}

// zoneInsecure reports whether zname is cached as provably unsigned.
func (cs *CachingServer) zoneInsecure(zname dnswire.Name) bool {
	cs.secMu.Lock()
	defer cs.secMu.Unlock()
	return cs.insecure[zname]
}

// markInsecure caches zname as provably unsigned.
func (cs *CachingServer) markInsecure(zname dnswire.Name) {
	cs.secMu.Lock()
	defer cs.secMu.Unlock()
	cs.insecure[zname] = true
}

// ensureTrusted establishes the DS→DNSKEY chain from the trust anchors
// down to zname. It returns whether the zone is securely delegated
// (false = provably unsigned/insecure, which is acceptable) or an error
// when the chain is bogus or unreachable.
func (cs *CachingServer) ensureTrusted(ctx context.Context, zname dnswire.Name, depth int) (bool, error) {
	if cs.validator == nil {
		return false, nil
	}
	if cs.zoneTrusted(zname) {
		return true, nil
	}
	if zname.IsRoot() {
		// The root is only ever trusted via the configured anchors.
		return false, nil
	}
	if cs.zoneInsecure(zname) {
		return false, nil
	}
	if depth > maxChainDepth {
		return false, fmt.Errorf("%w: trust chain deeper than %d at %s", ErrBogus, maxChainDepth, zname)
	}

	// 1. The DS set for zname, served authoritatively by the parent side.
	dsSet, dsSig, err := cs.fetchRRSetWithSig(ctx, zname, dnswire.TypeDS, depth)
	if err != nil {
		return false, fmt.Errorf("fetching DS for %s: %w", zname, err)
	}
	if len(dsSet) == 0 {
		// No DS: an insecure delegation. (Without NSEC we accept the
		// parent's negative answer at face value.)
		cs.markInsecure(zname)
		return false, nil
	}
	sig, ok := dsSig.Data.(dnswire.RRSIG)
	if !ok {
		return false, fmt.Errorf("%w: DS set for %s carries no signature", ErrBogus, zname)
	}

	// 2. The signer (the parent zone) must itself be trusted.
	parentSecure, err := cs.ensureTrusted(ctx, sig.SignerName, depth+1)
	if err != nil {
		return false, err
	}
	if !parentSecure {
		cs.markInsecure(zname)
		return false, nil
	}

	// 3. The child's self-signed DNSKEY set must match the DS.
	keySet, keySig, err := cs.fetchRRSetWithSig(ctx, zname, dnswire.TypeDNSKEY, depth)
	if err != nil {
		return false, fmt.Errorf("fetching DNSKEY for %s: %w", zname, err)
	}
	if len(keySet) == 0 {
		return false, fmt.Errorf("%w: signed delegation %s publishes no DNSKEY", ErrBogus, zname)
	}
	now := cs.cfg.Clock.Now()
	cs.secMu.Lock()
	err = cs.validator.ValidateDelegation(sig.SignerName, zname, dsSet, dsSig, keySet, keySig, now)
	cs.secMu.Unlock()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBogus, err)
	}
	return true, nil
}

// fetchRRSetWithSig resolves (qname, qtype) over the network and returns
// the RRset together with its covering RRSIG from the same response. An
// authoritative negative answer returns an empty set and no error.
func (cs *CachingServer) fetchRRSetWithSig(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int) ([]dnswire.RR, dnswire.RR, error) {
	res, raw, err := cs.iterate(ctx, qname, qtype, depth+1, false, false)
	if err != nil {
		return nil, dnswire.RR{}, err
	}
	if res.RCode != dnswire.RCodeNoError || raw == nil {
		return nil, dnswire.RR{}, nil // negative: insecure/absent
	}
	var set []dnswire.RR
	var sig dnswire.RR
	for _, rr := range raw.Answer {
		if rr.Name != qname {
			continue
		}
		if rr.Type() == qtype {
			set = append(set, rr)
		}
		if s, ok := rr.Data.(dnswire.RRSIG); ok && s.TypeCovered == qtype {
			sig = rr
		}
	}
	return set, sig, nil
}

// validateAnswer verifies the RRSIGs over every answer RRset in resp,
// walking the trust chain as needed. Insecure (unsigned) zones pass
// unvalidated, matching standard resolver behaviour.
func (cs *CachingServer) validateAnswer(ctx context.Context, zname dnswire.Name, resp *dnswire.Message, depth int) error {
	secure, err := cs.ensureTrusted(ctx, zname, depth)
	if err != nil {
		return err
	}
	if !secure {
		return nil
	}
	now := cs.cfg.Clock.Now()
	for _, set := range groupRRSets(resp.Answer) {
		if set[0].Type() == dnswire.TypeRRSIG {
			continue
		}
		sigRR, ok := findSig(resp.Answer, set[0].Name, set[0].Type())
		if !ok {
			return fmt.Errorf("%w: no RRSIG over %s %s from secure zone %s",
				ErrBogus, set[0].Name, set[0].Type(), zname)
		}
		signer := sigRR.Data.(dnswire.RRSIG).SignerName
		signerSecure, err := cs.ensureTrusted(ctx, signer, depth)
		if err != nil {
			return err
		}
		if !signerSecure {
			continue // cross-zone CNAME target in an unsigned zone
		}
		cs.secMu.Lock()
		err = cs.validator.ValidateRRSet(signer, sigRR, set, now)
		cs.secMu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %s %s: %v", ErrBogus, set[0].Name, set[0].Type(), err)
		}
	}
	return nil
}

// findSig locates the RRSIG covering (owner, t) in a section.
func findSig(rrs []dnswire.RR, owner dnswire.Name, t dnswire.Type) (dnswire.RR, bool) {
	for _, rr := range rrs {
		if rr.Name != owner {
			continue
		}
		if s, ok := rr.Data.(dnswire.RRSIG); ok && s.TypeCovered == t {
			return rr, true
		}
	}
	return dnswire.RR{}, false
}

// SecureZone reports whether zname currently has a validated key chain
// (true), is known insecure (false), with ok=false when undetermined.
func (cs *CachingServer) SecureZone(zname dnswire.Name) (secure, known bool) {
	if cs.validator == nil {
		return false, false
	}
	cs.secMu.Lock()
	defer cs.secMu.Unlock()
	if len(cs.validator.TrustedKeys(zname)) > 0 {
		return true, true
	}
	if cs.insecure[zname] {
		return false, true
	}
	return false, false
}
