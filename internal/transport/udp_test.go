package transport

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

func echoHandler() Handler {
	return HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Answer = []dnswire.RR{{
			Name:  q.Question[0].Name,
			Class: dnswire.ClassIN,
			TTL:   60,
			Data:  dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
		}}
		return r
	})
}

func TestUDPRoundTrip(t *testing.T) {
	srv := &UDPServer{Handler: echoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(7, dnswire.MustName("www.example.com"), dnswire.TypeA)
	resp, err := u.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.ID != 7 || len(resp.Answer) != 1 {
		t.Errorf("resp = %v", resp)
	}
}

func TestUDPTimeout(t *testing.T) {
	// A handler that returns nil never responds.
	srv := &UDPServer{Handler: HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil })}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 100 * time.Millisecond}
	q := dnswire.NewQuery(7, dnswire.MustName("x."), dnswire.TypeA)
	start := time.Now()
	_, err = u.Exchange(context.Background(), Addr(addr), q)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestUDPContextDeadline(t *testing.T) {
	srv := &UDPServer{Handler: HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil })}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	u := &UDP{Timeout: time.Hour}
	q := dnswire.NewQuery(7, dnswire.MustName("x."), dnswire.TypeA)
	_, err = u.Exchange(ctx, Addr(addr), q)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestUDPIgnoresMismatchedID(t *testing.T) {
	// Handler answers with a wrong ID first; client must keep waiting and
	// time out rather than accept it.
	srv := &UDPServer{Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.ID = q.ID + 1
		return r
	})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 150 * time.Millisecond}
	q := dnswire.NewQuery(9, dnswire.MustName("x."), dnswire.TypeA)
	_, err = u.Exchange(context.Background(), Addr(addr), q)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (mismatched ID accepted?)", err)
	}
}

func TestUDPIgnoresMismatchedQuestion(t *testing.T) {
	// Handler echoes the right ID but a different question — an off-path
	// spoof that guessed the ID. The client must discard it and time out.
	srv := &UDPServer{Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Question = []dnswire.Question{{
			Name:  dnswire.MustName("evil.example."),
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
		}}
		return r
	})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 150 * time.Millisecond}
	q := dnswire.NewQuery(9, dnswire.MustName("x."), dnswire.TypeA)
	_, err = u.Exchange(context.Background(), Addr(addr), q)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (spoofed question accepted?)", err)
	}
}

func TestPipeTransport(t *testing.T) {
	p := &Pipe{Handlers: map[Addr]Handler{"a": echoHandler()}}
	q := dnswire.NewQuery(1, dnswire.MustName("x."), dnswire.TypeA)
	if _, err := p.Exchange(context.Background(), "a", q); err != nil {
		t.Errorf("Exchange(a): %v", err)
	}
	if _, err := p.Exchange(context.Background(), "missing", q); !errors.Is(err, ErrServerUnreachable) {
		t.Errorf("Exchange(missing) = %v, want ErrServerUnreachable", err)
	}
}

func TestUDPServerCloseIdempotent(t *testing.T) {
	srv := &UDPServer{Handler: echoHandler()}
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
