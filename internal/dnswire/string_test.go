package dnswire

import (
	"net/netip"
	"strings"
	"testing"
)

func TestTypeStrings(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{TypeA, "A"}, {TypeNS, "NS"}, {TypeCNAME, "CNAME"}, {TypeSOA, "SOA"},
		{TypePTR, "PTR"}, {TypeMX, "MX"}, {TypeTXT, "TXT"}, {TypeAAAA, "AAAA"},
		{TypeSRV, "SRV"}, {TypeOPT, "OPT"}, {TypeANY, "ANY"}, {TypeAXFR, "AXFR"},
		{TypeDS, "DS"}, {TypeRRSIG, "RRSIG"}, {TypeDNSKEY, "DNSKEY"},
		{Type(9999), "TYPE9999"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for typ, name := range typeNames {
		got, err := ParseType(name)
		if err != nil {
			t.Errorf("ParseType(%q): %v", name, err)
			continue
		}
		if got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, typ)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("ParseType(NOPE) succeeded")
	}
}

func TestClassOpcodeRCodeStrings(t *testing.T) {
	if ClassIN.String() != "IN" || ClassCH.String() != "CH" || ClassANY.String() != "ANY" {
		t.Error("class mnemonics wrong")
	}
	if got := Class(99).String(); got != "CLASS99" {
		t.Errorf("Class(99) = %q", got)
	}
	if OpcodeQuery.String() != "QUERY" || OpcodeUpdate.String() != "UPDATE" ||
		OpcodeStatus.String() != "STATUS" || OpcodeNotify.String() != "NOTIFY" {
		t.Error("opcode mnemonics wrong")
	}
	if got := Opcode(7).String(); got != "OPCODE7" {
		t.Errorf("Opcode(7) = %q", got)
	}
	for rc, want := range map[RCode]string{
		RCodeNoError: "NOERROR", RCodeFormErr: "FORMERR", RCodeServFail: "SERVFAIL",
		RCodeNXDomain: "NXDOMAIN", RCodeNotImp: "NOTIMP", RCodeRefused: "REFUSED",
		RCode(14): "RCODE14",
	} {
		if got := rc.String(); got != want {
			t.Errorf("RCode %d = %q, want %q", rc, got, want)
		}
	}
}

func TestRDataStrings(t *testing.T) {
	tests := []struct {
		data RData
		want string
	}{
		{A{Addr: netip.MustParseAddr("192.0.2.1")}, "192.0.2.1"},
		{AAAA{Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{NS{Host: "ns.example."}, "ns.example."},
		{CNAME{Target: "t.example."}, "t.example."},
		{PTR{Target: "p.example."}, "p.example."},
		{MX{Preference: 10, Host: "mx.example."}, "10 mx.example."},
		{TXT{Strings: []string{"a b", "c"}}, `"a b" "c"`},
		{SRV{Priority: 1, Weight: 2, Port: 53, Target: "s.example."}, "1 2 53 s.example."},
		{SOA{MName: "m.", RName: "r.", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5},
			"m. r. 1 2 3 4 5"},
	}
	for _, tt := range tests {
		if got := tt.data.String(); got != tt.want {
			t.Errorf("%T.String() = %q, want %q", tt.data, got, tt.want)
		}
	}
}

func TestUnknownRData(t *testing.T) {
	u := Unknown{TypeCode: Type(4242), Raw: []byte{0xDE, 0xAD}}
	if u.Type() != Type(4242) {
		t.Errorf("Type = %v", u.Type())
	}
	if got := u.String(); !strings.Contains(got, "dead") {
		t.Errorf("String = %q", got)
	}
}

func TestOPTString(t *testing.T) {
	o := OPT{Options: []byte{1, 2, 3}}
	if got := o.String(); !strings.Contains(got, "3 bytes") {
		t.Errorf("OPT.String = %q", got)
	}
}

func TestMessageString(t *testing.T) {
	m := NewQuery(5, MustName("www.example.com."), TypeA)
	m.Flags.RecursionDesired = true
	r := m.Reply()
	r.Flags.Authoritative = true
	r.Flags.RecursionAvailable = true
	r.Flags.Truncated = true
	r.Answer = []RR{{Name: MustName("www.example.com."), Class: ClassIN, TTL: 60,
		Data: A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	r.Authority = []RR{{Name: MustName("example.com."), Class: ClassIN, TTL: 60,
		Data: NS{Host: MustName("ns.example.com.")}}}
	r.Additional = []RR{{Name: MustName("ns.example.com."), Class: ClassIN, TTL: 60,
		Data: A{Addr: netip.MustParseAddr("192.0.2.53")}}}
	out := r.String()
	for _, want := range []string{"id=5", "qr", "aa", "tc", "rd", "ra",
		"ANSWER", "AUTHORITY", "ADDITIONAL", "www.example.com."} {
		if !strings.Contains(out, want) {
			t.Errorf("Message.String() missing %q:\n%s", want, out)
		}
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: MustName("www.example."), Class: ClassIN, TTL: 300,
		Data: A{Addr: netip.MustParseAddr("192.0.2.1")}}
	want := "www.example.\t300\tIN\tA\t192.0.2.1"
	if got := rr.String(); got != want {
		t.Errorf("RR.String() = %q, want %q", got, want)
	}
	var nilData RR
	if nilData.Type() != TypeNone {
		t.Error("nil-data RR type != NONE")
	}
}

func TestQuestionString(t *testing.T) {
	q := Question{Name: MustName("x.example."), Type: TypeMX, Class: ClassIN}
	if got := q.String(); got != "x.example. IN MX" {
		t.Errorf("Question.String() = %q", got)
	}
}

func TestNameBadCharsRejected(t *testing.T) {
	for _, in := range []string{"a b.example", "bad\"quote.example", "semi;colon",
		"par(en", "\xc6.example", "tab\tlabel"} {
		if n, err := CanonicalName(in); err == nil {
			t.Errorf("CanonicalName(%q) = %q, want error", in, n)
		}
	}
}

func TestResultTypeCoverage(t *testing.T) {
	// Exercise the Name helpers' edge branches.
	if Root.Parent() != Root {
		t.Error("Root.Parent() != Root")
	}
	if got := Name("").Parent(); got != Root {
		t.Errorf("empty name parent = %q", got)
	}
	if Name("").Labels() != nil {
		t.Error("empty name has labels")
	}
}
