package core

import (
	"context"
	"fmt"
	"testing"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/resolve"
)

// discardSink enables tracing without retaining anything, isolating the
// per-query cost of trace bookkeeping itself.
type discardSink struct{}

func (discardSink) Observe(resolve.TraceSummary) {}

// benchResolveHot measures the cache-hit path of Resolve: one warm-up
// resolution walks the hierarchy, then every iteration is answered from
// cache. This is the hot path the tracing overhead budget applies to.
func benchResolveHot(b *testing.B, sink resolve.Sink) {
	f := newFixture(b, Config{TraceSink: sink})
	name := dnswire.MustName("www.ucla.edu.")
	f.resolveA(b, "www.ucla.edu.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.cs.Resolve(context.Background(), name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveCacheHit is the production default: no sink, so
// NewTrace returns nil and every trace call is a nil-check.
func BenchmarkResolveCacheHit(b *testing.B) { benchResolveHot(b, nil) }

// BenchmarkResolveCacheHitTraced pays full trace bookkeeping per query.
func BenchmarkResolveCacheHitTraced(b *testing.B) { benchResolveHot(b, discardSink{}) }

// benchResolveMiss measures the slow path: every query is a distinct
// name under a cached delegation, so each one runs the full pipeline
// (coalescing flight, chain walk, iterate, one upstream exchange).
func benchResolveMiss(b *testing.B, sink resolve.Sink) {
	f := newFixture(b, Config{TraceSink: sink})
	f.resolveA(b, "www.ucla.edu.") // warm the edu/ucla delegations
	names := make([]dnswire.Name, 1024)
	for i := range names {
		names[i] = dnswire.MustName(fmt.Sprintf("h%d.ucla.edu.", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// NXDOMAIN answers are fine: the full resolution path still runs.
		_, _ = f.cs.Resolve(context.Background(), names[i%len(names)], dnswire.TypeA)
	}
}

func BenchmarkResolveMiss(b *testing.B)       { benchResolveMiss(b, nil) }
func BenchmarkResolveMissTraced(b *testing.B) { benchResolveMiss(b, discardSink{}) }
