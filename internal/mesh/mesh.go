package mesh

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
)

// Transport carries one mesh request to a peer and returns the matched
// response frame bytes. Implementations exist over real UDP sockets
// (Conn, production) and over the deterministic simulated network
// (simnet.MeshPort, tests and experiments). The method is deliberately
// not named Exchange: the onepath analyzer reserves that shape for the
// DNS fetch engine, and mesh calls are not upstream DNS fetches.
type Transport interface {
	Call(ctx context.Context, peer string, frame []byte) ([]byte, error)
}

// Backend is what the mesh needs from the caching server: read one
// zone's IRR set for gossip, ingest a peer's pushed set through the
// validated ingest path, and answer a peer's fetch from cache/stale
// data only. internal/core implements it; the interface lives here so
// mesh does not import core.
type Backend interface {
	// ZoneIRRMessage renders the zone's live NS set plus cached glue as
	// a response-shaped message with remaining TTLs, or nil when the
	// zone's NS set is not cached.
	ZoneIRRMessage(zone dnswire.Name) *dnswire.Message
	// IngestPeerIRRs validates and ingests a pushed IRR set, reporting
	// whether it was accepted.
	IngestPeerIRRs(zone dnswire.Name, msg *dnswire.Message) bool
	// PeerAnswer answers a peer's relayed query strictly from cached or
	// stale data (never an upstream fetch).
	PeerAnswer(q *dnswire.Message) *dnswire.Message
}

// Defaults for Config knobs left zero.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultCallTimeout   = 1 * time.Second
	// DefaultSuspectAfter / DefaultDeadAfter are consecutive failed
	// probes before a peer is demoted. Dead peers drop out of the
	// ownership hash; suspect peers stay in (one lost datagram must not
	// reshuffle renewal duty fleet-wide).
	DefaultSuspectAfter = 2
	DefaultDeadAfter    = 4
)

// Config parameterises a Node.
type Config struct {
	// Self is this node's canonical mesh address (host:port) — the
	// address peers reach it at, which must equal the address its
	// transport sends from so that cookie confirmation works.
	Self string
	// Key is the fleet's shared HMAC key.
	Key []byte
	// Peers seeds the member list (beyond what digests introduce).
	Peers []string
	// Transport sends request frames to peers.
	Transport Transport
	// Clock is the time source (virtual in tests/experiments).
	Clock simclock.Clock
	// Backend is the caching-server integration surface.
	Backend Backend
	// OwnerRenewal enables renewal-ownership deduplication: when set,
	// OwnsRenewal defers zones owned by another live peer.
	OwnerRenewal bool

	ProbeInterval time.Duration
	CallTimeout   time.Duration
	SuspectAfter  int
	DeadAfter     int

	// Counters receives mesh metrics; nil means counting is skipped.
	Counters *metrics.MeshCounters
}

// peer is one remote member as seen locally.
type peer struct {
	addr        string
	ip          netip.Addr // zero when addr has no parseable host IP
	state       PeerState
	incarnation uint64
	missed      int       // consecutive failed probes
	lastProbe   time.Time // when we last initiated a probe
	lastSeen    time.Time // last authenticated, confirmed contact

	// cookieIn is the cookie we issued to this source address; a
	// request is trusted only when it echoes it. cookieOut is the
	// cookie the peer last issued to us, attached to our requests.
	cookieIn  uint64
	cookieOut uint64
	confirmed bool // peer has echoed cookieIn at least once
}

// Node is one mesh member. All exported methods are safe for concurrent
// use; none of them holds the internal lock across a Transport.Call.
type Node struct {
	cfg      Config
	counters *metrics.MeshCounters
	seq      atomic.Uint32
	selfIP   netip.Addr

	mu          sync.Mutex
	peers       map[string]*peer
	incarnation uint64
}

// NewNode validates cfg and builds a node with the configured peers
// seeded as alive (optimistically: probes demote unreachable ones
// within DeadAfter intervals).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("mesh: Config.Self required")
	}
	if len(cfg.Key) == 0 {
		return nil, errors.New("mesh: Config.Key required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("mesh: Config.Transport required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("mesh: Config.Clock required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = DefaultDeadAfter
		if cfg.DeadAfter <= cfg.SuspectAfter {
			cfg.DeadAfter = cfg.SuspectAfter + 2
		}
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.MeshCounters{}
	}
	n := &Node{
		cfg:      cfg,
		counters: counters,
		selfIP:   addrIP(cfg.Self),
		peers:    make(map[string]*peer),
	}
	now := cfg.Clock.Now()
	for _, addr := range cfg.Peers {
		if addr == "" || addr == cfg.Self {
			continue
		}
		n.peers[addr] = n.newPeer(addr, now)
	}
	return n, nil
}

// addrIP extracts the host IP of a host:port mesh address.
func addrIP(addr string) netip.Addr {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return netip.Addr{}
	}
	return ap.Addr().Unmap()
}

func (n *Node) newPeer(addr string, now time.Time) *peer {
	return &peer{
		addr:     addr,
		ip:       addrIP(addr),
		state:    StateAlive,
		cookieIn: newCookie(),
		lastSeen: now,
	}
}

// newCookie draws a fresh 64-bit source-confirmation cookie.
func newCookie() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("mesh: crypto/rand failed: %v", err))
	}
	c := binary.BigEndian.Uint64(b[:])
	if c == 0 {
		c = 1 // zero means "no cookie yet" on the wire
	}
	return c
}

// Self returns the node's canonical mesh address.
func (n *Node) Self() string { return n.cfg.Self }

func (n *Node) count(c *atomic.Uint64) { c.Add(1) }

// --- inbound path ---

// HandleFrame processes one inbound datagram and returns the reply to
// send back to its source, or nil to stay silent. It NEVER makes an
// outbound transport call (transports may invoke it synchronously from
// their read loop, and simnet calls are synchronous), and it never
// replies with more bytes than it received unless the source has
// completed the cookie handshake — the anti-reflection property.
func (n *Node) HandleFrame(raw []byte, from string) []byte {
	n.count(&n.counters.FramesIn)
	f, err := DecodeFrame(n.cfg.Key, raw)
	if err != nil {
		n.count(&n.counters.FramesBadMAC)
		return nil
	}
	if IsResponseType(f.Type) {
		// Responses are matched to pending calls by the transport; one
		// reaching the request handler is stray — drop it rather than
		// answering (a reply to a reply invites loops).
		return nil
	}

	now := n.cfg.Clock.Now()
	n.mu.Lock()
	p, ok := n.peers[from]
	if !ok {
		// Authenticated under the fleet key but a source we have never
		// seen: admit it to the member list, pending confirmation.
		p = n.newPeer(from, now)
		p.state = StateSuspect // not yet proven reachable at this address
		n.peers[from] = p
	}
	if f.Cookie == 0 || f.Cookie != p.cookieIn {
		// Source has not echoed our cookie: do not act on the request,
		// answer only with a challenge carrying the cookie. The
		// challenge is header+MAC only (35 bytes) — never larger than
		// the smallest possible request — so spoofed-source floods gain
		// no amplification through this port.
		cookie := p.cookieIn
		n.mu.Unlock()
		n.count(&n.counters.FramesUnconfirmed)
		n.count(&n.counters.ChallengesSent)
		reply, err := EncodeFrame(n.cfg.Key, Frame{Type: TChallenge, Seq: f.Seq, Cookie: cookie})
		if err != nil {
			return nil
		}
		return reply
	}
	// Cookie echo proves the source receives traffic at this address.
	p.confirmed = true
	p.missed = 0
	p.lastSeen = now
	if p.state != StateAlive {
		p.state = StateAlive
	}
	cookie := p.cookieIn // echoed back so the peer can pre-confirm future calls
	n.mu.Unlock()

	var respType byte
	var payload []byte
	switch f.Type {
	case TPing:
		ping, err := DecodePing(f.Payload)
		if err != nil || ping.From != from {
			return nil
		}
		n.mergeDigest(ping, now)
		respType = TAck
		if payload, err = EncodePing(n.digest()); err != nil {
			return nil
		}
	case TIRRPush:
		zone, msg, err := DecodeIRRPush(f.Payload)
		if err != nil {
			return nil
		}
		n.count(&n.counters.IRRPushesReceived)
		if n.cfg.Backend != nil && n.cfg.Backend.IngestPeerIRRs(zone, msg) {
			n.count(&n.counters.IRRIngested)
		}
		respType = TIRRAck
	case TFetchReq:
		q, err := DecodeMsg(f.Payload)
		if err != nil || n.cfg.Backend == nil {
			return nil
		}
		// Relayed or not, a peer fetch is answered strictly from
		// cache/stale data (PeerAnswer never fetches upstream), so a
		// fetch can never cascade into further upstream or peer work.
		resp := n.cfg.Backend.PeerAnswer(q)
		if resp == nil {
			return nil
		}
		n.count(&n.counters.FetchesServed)
		respType = TFetchResp
		if payload, err = EncodeMsg(resp); err != nil {
			return nil
		}
	default:
		return nil
	}
	reply, err := EncodeFrame(n.cfg.Key, Frame{Type: respType, Seq: f.Seq, Cookie: cookie, Payload: payload})
	if err != nil {
		return nil
	}
	return reply
}

// mergeDigest folds a peer's gossiped membership view into ours.
// Higher incarnation wins; at equal incarnation the worse state wins
// (so suspicion spreads until the subject refutes it by bumping its
// incarnation). Entries about self with a bad state are refuted by
// out-bumping their incarnation.
func (n *Node) mergeDigest(p PingPayload, now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sender, ok := n.peers[p.From]; ok && p.Incarnation > sender.incarnation {
		sender.incarnation = p.Incarnation
	}
	for _, d := range p.Digest {
		if d.Addr == n.cfg.Self {
			if d.State != StateAlive && d.Incarnation >= n.incarnation {
				n.incarnation = d.Incarnation + 1
			}
			continue
		}
		q, ok := n.peers[d.Addr]
		if !ok {
			q = n.newPeer(d.Addr, now)
			q.state = d.State
			q.incarnation = d.Incarnation
			n.peers[d.Addr] = q
			continue
		}
		switch {
		case d.Incarnation > q.incarnation:
			q.incarnation = d.Incarnation
			q.state = d.State
			if d.State == StateAlive {
				q.missed = 0
			}
		case d.Incarnation == q.incarnation && d.State > q.state:
			q.state = d.State
		}
	}
}

// digest snapshots the local membership view for gossip.
func (n *Node) digest() PingPayload {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := PingPayload{From: n.cfg.Self, Incarnation: n.incarnation}
	p.Digest = append(p.Digest, DigestEntry{Addr: n.cfg.Self, State: StateAlive, Incarnation: n.incarnation})
	for _, addr := range n.sortedPeerAddrsLocked() {
		q := n.peers[addr]
		p.Digest = append(p.Digest, DigestEntry{Addr: q.addr, State: q.state, Incarnation: q.incarnation})
	}
	return p
}

func (n *Node) sortedPeerAddrsLocked() []string {
	addrs := make([]string, 0, len(n.peers))
	for a := range n.peers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// --- outbound path ---

// call sends one request frame to addr and returns the decoded,
// sequence-matched response. On a Challenge response it adopts the
// issued cookie and retries once — the normal first-contact flow.
func (n *Node) call(ctx context.Context, addr string, typ, flags byte, payload []byte) (Frame, error) {
	n.mu.Lock()
	p, ok := n.peers[addr]
	if !ok {
		now := n.cfg.Clock.Now()
		p = n.newPeer(addr, now)
		n.peers[addr] = p
	}
	cookie := p.cookieOut
	n.mu.Unlock()

	for attempt := 0; ; attempt++ {
		resp, err := n.callOnce(ctx, addr, typ, flags, cookie, payload)
		if err != nil {
			return Frame{}, err
		}
		if resp.Type != TChallenge {
			n.mu.Lock()
			if p, ok := n.peers[addr]; ok && resp.Cookie != 0 {
				p.cookieOut = resp.Cookie
			}
			n.mu.Unlock()
			return resp, nil
		}
		if attempt >= 1 {
			return Frame{}, errors.New("mesh: peer kept challenging")
		}
		cookie = resp.Cookie
		n.mu.Lock()
		if p, ok := n.peers[addr]; ok {
			p.cookieOut = cookie
		}
		n.mu.Unlock()
	}
}

func (n *Node) callOnce(ctx context.Context, addr string, typ, flags byte, cookie uint64, payload []byte) (Frame, error) {
	seq := n.seq.Add(1)
	raw, err := EncodeFrame(n.cfg.Key, Frame{Type: typ, Flags: flags, Seq: seq, Cookie: cookie, Payload: payload})
	if err != nil {
		return Frame{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
	defer cancel()
	respRaw, err := n.cfg.Transport.Call(cctx, addr, raw)
	if err != nil {
		return Frame{}, err
	}
	resp, err := DecodeFrame(n.cfg.Key, respRaw)
	if err != nil {
		return Frame{}, err
	}
	if resp.Seq != seq || !IsResponseType(resp.Type) {
		return Frame{}, ErrBadFrame
	}
	return resp, nil
}

// Tick drives the failure detector: it probes every peer whose probe
// interval has elapsed (in deterministic sorted order) and applies the
// results. Callers run it from a ticker goroutine in production or
// interleave it with virtual-clock advancement in simulation. Probes
// are synchronous, so a tick can block for missed×CallTimeout on dead
// peers; run it off the query path.
func (n *Node) Tick(now time.Time) {
	n.mu.Lock()
	var due []string
	for _, addr := range n.sortedPeerAddrsLocked() {
		p := n.peers[addr]
		if p.lastProbe.IsZero() || now.Sub(p.lastProbe) >= n.cfg.ProbeInterval {
			p.lastProbe = now
			due = append(due, addr)
		}
	}
	n.mu.Unlock()

	for _, addr := range due {
		n.probe(addr, now)
	}
}

func (n *Node) probe(addr string, now time.Time) {
	n.count(&n.counters.PingsSent)
	payload, err := EncodePing(n.digest())
	if err != nil {
		return
	}
	resp, err := n.call(context.Background(), addr, TPing, 0, payload)
	if err != nil {
		n.count(&n.counters.PingFailures)
		n.mu.Lock()
		if p, ok := n.peers[addr]; ok {
			p.missed++
			switch {
			case p.missed >= n.cfg.DeadAfter:
				p.state = StateDead
			case p.missed >= n.cfg.SuspectAfter:
				if p.state == StateAlive {
					p.state = StateSuspect
				}
			}
		}
		n.mu.Unlock()
		return
	}
	ack, err := DecodePing(resp.Payload)
	if err != nil || ack.From != addr {
		return
	}
	n.mu.Lock()
	if p, ok := n.peers[addr]; ok {
		p.missed = 0
		p.state = StateAlive
		p.confirmed = true
		p.lastSeen = now
		if ack.Incarnation > p.incarnation {
			p.incarnation = ack.Incarnation
		}
	}
	n.mu.Unlock()
	n.mergeDigest(ack, now)
}

// GossipZone pushes the zone's current IRR set to every live peer.
// Core calls it (via the OnRenewed hook) after a successful renewal
// refetch, so one owner's upstream query warms the whole fleet.
func (n *Node) GossipZone(zone dnswire.Name) {
	if n.cfg.Backend == nil {
		return
	}
	msg := n.cfg.Backend.ZoneIRRMessage(zone)
	if msg == nil {
		return
	}
	payload, err := EncodeIRRPush(zone, msg)
	if err != nil {
		return
	}
	for _, addr := range n.alivePeers() {
		if _, err := n.call(context.Background(), addr, TIRRPush, 0, payload); err == nil {
			n.count(&n.counters.IRRPushesSent)
		}
	}
}

// alivePeers lists live remote peers in sorted order.
func (n *Node) alivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for _, addr := range n.sortedPeerAddrsLocked() {
		if n.peers[addr].state != StateDead {
			out = append(out, addr)
		}
	}
	return out
}

// PeerFetch asks the zone owner's cache for an answer when local
// resolution has failed. It returns nil when no peer can help (no live
// peers, transport failure, or the peer had nothing cached either).
// The request carries FlagRelayed so the serving peer answers strictly
// from cache and never relays onward — peer fetch is single-hop.
func (n *Node) PeerFetch(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *dnswire.Message {
	target := n.fetchTarget(qname)
	if target == "" {
		return nil
	}
	q := dnswire.NewQuery(uint16(n.seq.Add(1)), qname, qtype)
	payload, err := EncodeMsg(q)
	if err != nil {
		return nil
	}
	n.count(&n.counters.FetchesSent)
	resp, err := n.call(ctx, target, TFetchReq, FlagRelayed, payload)
	if err != nil {
		return nil
	}
	msg, err := DecodeMsg(resp.Payload)
	if err != nil || !dnswire.EchoesQuestion(q, msg) {
		return nil
	}
	if msg.RCode == dnswire.RCodeServFail || msg.RCode == dnswire.RCodeRefused {
		return nil // the peer had nothing cached either
	}
	n.count(&n.counters.FetchHits)
	return msg
}

// fetchTarget picks the best peer to ask for qname: the live member
// with the highest rendezvous weight for the enclosing zone, skipping
// self (the owner keeps the zone warmest; if we are the owner, the
// runner-up is the next-likeliest warm cache).
func (n *Node) fetchTarget(qname dnswire.Name) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	best := ""
	var bestW uint64
	for _, addr := range n.sortedPeerAddrsLocked() {
		p := n.peers[addr]
		if p.state == StateDead {
			continue
		}
		if w := rendezvousWeight(addr, qname); best == "" || w > bestW {
			best, bestW = addr, w
		}
	}
	return best
}

// IsPeerIP reports whether ip belongs to a handshake-confirmed mesh
// peer. The guard layer uses it to exempt fleet members from the
// per-client rate limiter.
func (n *Node) IsPeerIP(ip netip.Addr) bool {
	ip = ip.Unmap()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		if p.confirmed && p.ip.IsValid() && p.ip == ip {
			return true
		}
	}
	return false
}

// PeerInfo is one member's row in Snapshot (and /debug/peers).
type PeerInfo struct {
	Addr        string    `json:"addr"`
	State       string    `json:"state"`
	Incarnation uint64    `json:"incarnation"`
	Confirmed   bool      `json:"confirmed"`
	Missed      int       `json:"missed,omitempty"`
	LastSeen    time.Time `json:"last_seen"`
}

// Snapshot is the node's membership view plus counters, served at
// /debug/peers.
type Snapshot struct {
	Self        string            `json:"self"`
	Incarnation uint64            `json:"incarnation"`
	OwnerRenew  bool              `json:"owner_renewal"`
	Peers       []PeerInfo        `json:"peers"`
	Counters    metrics.MeshStats `json:"counters"`
}

// Snapshot captures the current membership view.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	s := Snapshot{Self: n.cfg.Self, Incarnation: n.incarnation, OwnerRenew: n.cfg.OwnerRenewal}
	for _, addr := range n.sortedPeerAddrsLocked() {
		p := n.peers[addr]
		s.Peers = append(s.Peers, PeerInfo{
			Addr:        p.addr,
			State:       p.state.String(),
			Incarnation: p.incarnation,
			Confirmed:   p.confirmed,
			Missed:      p.missed,
			LastSeen:    p.lastSeen,
		})
	}
	n.mu.Unlock()
	s.Counters = n.counters.Snapshot()
	return s
}
