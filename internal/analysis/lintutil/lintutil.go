// Package lintutil holds the shared plumbing for the dnslint analyzers:
// the //dnslint:ignore escape hatch and package-list matching.
//
// Every analyzer in internal/analysis/... supports the same suppression
// directive:
//
//	//dnslint:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or on the line
// immediately above it. The reason is mandatory: a bare
// "//dnslint:ignore wallclock" does not suppress anything, so every
// exception carries its justification in the source where reviewers can
// audit it (see DESIGN.md §9).
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix is the suppression directive marker.
const IgnorePrefix = "//dnslint:ignore"

// Suppressor answers whether a position is covered by a
// //dnslint:ignore directive for a given analyzer. Build one per pass
// with NewSuppressor.
type Suppressor struct {
	// byLine maps file base name + line to the analyzers ignored there.
	lines map[lineKey][]string
}

type lineKey struct {
	file string
	line int
}

// NewSuppressor scans every comment in the pass's files and indexes the
// //dnslint:ignore directives it finds. A directive suppresses findings
// on its own line and on the line directly below it (so it can trail
// the offending statement or sit on its own line above).
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{lines: make(map[lineKey][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				s.lines[lineKey{pos.Filename, pos.Line}] = append(s.lines[lineKey{pos.Filename, pos.Line}], name)
				s.lines[lineKey{pos.Filename, pos.Line + 1}] = append(s.lines[lineKey{pos.Filename, pos.Line + 1}], name)
			}
		}
	}
	return s
}

// parseIgnore extracts the analyzer name from a well-formed directive.
// A directive without a reason is malformed and suppresses nothing.
func parseIgnore(text string) (analyzer string, ok bool) {
	if !strings.HasPrefix(text, IgnorePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, IgnorePrefix)
	fields := strings.Fields(rest)
	// fields[0] is the analyzer name; at least one more word of reason
	// is required for the directive to count.
	if len(fields) < 2 {
		return "", false
	}
	return fields[0], true
}

// Ignored reports whether a finding by the named analyzer at pos is
// suppressed by a directive.
func (s *Suppressor) Ignored(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	p := pass.Fset.Position(pos)
	for _, name := range s.lines[lineKey{p.Filename, p.Line}] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// Report emits a diagnostic unless it is suppressed. It is the single
// reporting entry point for all dnslint analyzers, so the escape hatch
// behaves identically everywhere.
func (s *Suppressor) Report(pass *analysis.Pass, analyzer string, pos token.Pos, format string, args ...any) {
	if s.Ignored(pass, pos, analyzer) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// InTestFile reports whether pos is inside a _test.go file. The dnslint
// rules police production code; tests may sleep, discard errors, and
// use deterministic randomness freely.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// PkgMatches reports whether the package path is covered by the
// comma-separated pattern list. A pattern matches its exact path, and a
// pattern ending in "/..." matches the prefix subtree.
func PkgMatches(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File in the pass containing pos, or nil.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
