package mesh

import (
	"hash/fnv"

	"resilientdns/internal/dnswire"
)

// Renewal ownership uses rendezvous (highest-random-weight) hashing:
// every member independently scores each (member, zone) pair and the
// highest score owns the zone's renewal duty. With a consistent
// membership view all members agree on every owner with no
// coordination, and a member joining or dying only reassigns the zones
// it owned (1/N of them) instead of reshuffling everything, so a
// failure never triggers a fleet-wide renewal storm.

// rendezvousWeight scores one (member, zone) pair. FNV-1a is fine here:
// the weight only balances load and must be deterministic across the
// fleet; it is not an authentication boundary (frames are HMAC'd).
func rendezvousWeight(addr string, zone dnswire.Name) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{0}) // separator: ("ab","c.") must not collide with ("a","bc.")
	h.Write([]byte(zone.String()))
	return h.Sum64()
}

// Owner returns the member (self included) that owns zone's renewal
// duty: the non-dead member with the highest rendezvous weight.
// Suspect members still count — one lost probe must not reshuffle
// ownership — only dead ones drop out.
func (n *Node) Owner(zone dnswire.Name) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	best := n.cfg.Self
	bestW := rendezvousWeight(n.cfg.Self, zone)
	for _, addr := range n.sortedPeerAddrsLocked() {
		if n.peers[addr].state == StateDead {
			continue
		}
		if w := rendezvousWeight(addr, zone); w > bestW {
			best, bestW = addr, w
		}
	}
	return best
}

// OwnsRenewal reports whether this node should spend a renewal credit
// on zone. With owner-renewal dedup disabled every node owns every
// zone (the mesh leaves renewal behaviour untouched).
func (n *Node) OwnsRenewal(zone dnswire.Name) bool {
	if !n.cfg.OwnerRenewal {
		return true
	}
	return n.Owner(zone) == n.cfg.Self
}
