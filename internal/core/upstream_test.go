package core

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/transport"
)

func rrAAAA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.AAAA{Addr: netip.MustParseAddr(ip)},
	}
}

func TestUpstreamOrderPrefersFastServers(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	now := epoch
	u.observeSuccess("slow", 100*time.Millisecond)
	u.observeSuccess("fast", 5*time.Millisecond)
	// "unknown" has no history and must sort after measured servers.
	ordered, skipped := u.order([]transport.Addr{"unknown", "slow", "fast"}, now)
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	want := []transport.Addr{"fast", "slow", "unknown"}
	for i, addr := range want {
		if ordered[i] != addr {
			t.Fatalf("order = %v, want %v", ordered, want)
		}
	}
}

func TestUpstreamOrderTiesKeepInputOrder(t *testing.T) {
	// Determinism: servers with identical state must come out in input
	// order (the simulator depends on this).
	u := newUpstream(UpstreamConfig{})
	ordered, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	want := []transport.Addr{"a", "b", "c"}
	for i, addr := range want {
		if ordered[i] != addr {
			t.Fatalf("order = %v, want input order %v", ordered, want)
		}
	}
}

func TestUpstreamQuarantineSkipAndRecover(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second})
	now := epoch
	u.observeFailure("bad", now)
	if !u.quarantined("bad", now) {
		t.Fatal("server not quarantined after failure")
	}
	ordered, skipped := u.order([]transport.Addr{"bad", "good"}, now)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if ordered[0] != "good" || ordered[1] != "bad" {
		t.Errorf("order = %v, want [good bad]", ordered)
	}
	// The quarantine lapses with time...
	later := now.Add(6 * time.Second)
	if u.quarantined("bad", later) {
		t.Error("server still quarantined after the window lapsed")
	}
	// ...and one success clears the failure streak entirely.
	u.observeFailure("bad", later) // second consecutive failure: 10s window
	if !u.quarantined("bad", later.Add(9*time.Second)) {
		t.Error("backoff did not double the quarantine window")
	}
	u.observeSuccess("bad", time.Millisecond)
	if u.quarantined("bad", later) {
		t.Error("success did not clear quarantine")
	}
}

func TestUpstreamAllQuarantinedFallsBack(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second})
	now := epoch
	u.observeFailure("a", now)
	u.observeFailure("b", now.Add(time.Second))
	ordered, skipped := u.order([]transport.Addr{"b", "a"}, now.Add(2*time.Second))
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0 when no healthy server exists", skipped)
	}
	if len(ordered) != 2 {
		t.Fatalf("ordered = %v, want both servers still tried", ordered)
	}
	// Earliest release first: a's window ends before b's.
	if ordered[0] != "a" || ordered[1] != "b" {
		t.Errorf("order = %v, want [a b] (by release time)", ordered)
	}
}

func TestUpstreamBackoffCapped(t *testing.T) {
	u := newUpstream(UpstreamConfig{Quarantine: 5 * time.Second, MaxQuarantine: 20 * time.Second})
	now := epoch
	for i := 0; i < 10; i++ {
		u.observeFailure("bad", now)
	}
	if u.quarantined("bad", now.Add(21*time.Second)) {
		t.Error("quarantine exceeded MaxQuarantine")
	}
	if !u.quarantined("bad", now.Add(19*time.Second)) {
		t.Error("quarantine shorter than MaxQuarantine after many failures")
	}
}

func TestAttemptTimeoutFromSRTT(t *testing.T) {
	u := newUpstream(UpstreamConfig{MinTimeout: 200 * time.Millisecond, MaxTimeout: 3 * time.Second})
	// No history: first contact gets the full MaxTimeout.
	if got := u.attemptTimeout("new"); got != 3*time.Second {
		t.Errorf("first-contact timeout = %v, want 3s", got)
	}
	// One 100ms sample: SRTT=100ms, RTTVAR=50ms, RTO=SRTT+4·RTTVAR=300ms.
	u.observeSuccess("mid", 100*time.Millisecond)
	if got := u.attemptTimeout("mid"); got != 300*time.Millisecond {
		t.Errorf("timeout = %v, want 300ms (SRTT+4·RTTVAR)", got)
	}
	// Tiny RTT clamps up to MinTimeout, huge RTT clamps down to MaxTimeout.
	u.observeSuccess("fast", time.Millisecond)
	if got := u.attemptTimeout("fast"); got != 200*time.Millisecond {
		t.Errorf("timeout = %v, want MinTimeout clamp", got)
	}
	u.observeSuccess("slow", 10*time.Second)
	if got := u.attemptTimeout("slow"); got != 3*time.Second {
		t.Errorf("timeout = %v, want MaxTimeout clamp", got)
	}
	// Disabled layer imposes no per-attempt deadline at all.
	d := newUpstream(UpstreamConfig{Disable: true})
	d.observeSuccess("x", time.Millisecond)
	if got := d.attemptTimeout("x"); got != 0 {
		t.Errorf("disabled timeout = %v, want 0", got)
	}
}

func TestUpstreamDisableRoundRobins(t *testing.T) {
	u := newUpstream(UpstreamConfig{Disable: true})
	first, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	second, _ := u.order([]transport.Addr{"a", "b", "c"}, epoch)
	if first[0] == second[0] {
		t.Errorf("disabled selection did not rotate: %v then %v", first, second)
	}
}

func TestRetryBudgetContext(t *testing.T) {
	ctx := context.Background()
	if !takeAttempt(ctx) {
		t.Fatal("budget-less context denied an attempt")
	}
	b := withRetryBudget(ctx, 2)
	if !takeAttempt(b) || !takeAttempt(b) {
		t.Fatal("budget denied attempts within its allowance")
	}
	if takeAttempt(b) {
		t.Fatal("budget allowed a third attempt out of 2")
	}
	if withRetryBudget(ctx, 0) != ctx {
		t.Error("zero budget should leave the context unbounded")
	}
}

// TestNoCreditOnTotalFailure is the regression test for the
// credit-accounting bug: queryZone used to award renewal credit before
// any exchange was attempted, so a zone whose servers were all down still
// earned credit toward renewing IRRs it could never refetch.
func TestNoCreditOnTotalFailure(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: LRU{C: 3}})
	f.resolveA(t, "www.ucla.edu.") // warm: ucla.edu earns credit legitimately
	f.cs.renewMu.Lock()
	before := f.cs.credits[dnswire.MustName("ucla.edu.")]
	f.cs.renewMu.Unlock()
	if before == 0 {
		t.Fatal("warm-up resolution earned no credit")
	}

	f.net.SetAttack(attack.Schedule{attack.NewWindow(
		f.clock.Now(), 24*time.Hour, dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute) // www A (300s) expired; ucla IRR alive
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution succeeded with every ucla server down")
	}

	f.cs.renewMu.Lock()
	after := f.cs.credits[dnswire.MustName("ucla.edu.")]
	f.cs.renewMu.Unlock()
	if after > before {
		t.Errorf("credit grew from %v to %v on a total failure", before, after)
	}
}

// killHost replaces a fixture host with a handler that never answers, so
// queries to it time out.
func killHost(f *fixture, addr, zone string) {
	f.net.Register(&simnet.Host{
		Addr:    transport.Addr(addr),
		Zone:    dnswire.MustName(zone),
		Handler: transport.HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil }),
	})
}

// TestQuarantineSkipAndRecovery covers the tentpole behaviour end to
// end: a failing server is quarantined and skipped while healthy peers
// exist, and remains reachable by failover once its peers die too.
func TestQuarantineSkipAndRecovery(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	killHost(f, "10.0.2.1", "ucla.edu.") // ns1.ucla.edu stops answering

	// Expire the cached A record but not the ucla IRRs, then resolve: the
	// dead server (first in input order) fails once and is quarantined.
	f.clock.Advance(10 * time.Minute)
	f.resolveA(t, "www.ucla.edu.")
	st := f.cs.Stats()
	if st.QueriesOutFailed == 0 {
		t.Fatal("dead server was never tried")
	}
	failed := st.QueriesOutFailed

	// A different miss in the same zone, inside the quarantine window: the
	// dead server must be skipped, not retried.
	f.resolveA(t, "ftp.ucla.edu.") // NXDOMAIN; must hit only the live server
	st = f.cs.Stats()
	if st.QueriesOutFailed != failed {
		t.Errorf("QueriesOutFailed grew to %d inside the quarantine window", st.QueriesOutFailed)
	}
	if st.QuarantineSkips == 0 {
		t.Error("quarantined server was not counted as skipped")
	}

	// After the window lapses, the failure's RTT penalty still ranks the
	// proven-fast live server first, so the dead one stays un-probed.
	f.clock.Advance(time.Minute)
	f.resolveA(t, "mail.ucla.edu.")
	if st := f.cs.Stats(); st.QueriesOutFailed != failed {
		t.Error("penalised server probed first despite a healthy fast peer")
	}

	// Recovery: revive the first server, kill the preferred one. Failover
	// must walk past the fresh failure to the revived server and succeed.
	f.reviveUclaHost("10.0.2.1")
	killHost(f, "10.0.2.2", "ucla.edu.")
	res := f.resolveA(t, "smtp.ucla.edu.")
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("RCode = %v, want NXDOMAIN from the revived server", res.RCode)
	}
	if st := f.cs.Stats(); st.QueriesOutFailed != failed+1 {
		t.Errorf("QueriesOutFailed = %d, want %d (one failure on the newly dead server)", st.QueriesOutFailed, failed+1)
	}
}

// TestSRTTSelectionPrefersProvenServer: a server that only ever fails
// accumulates a timeout-sized RTT penalty, so selection keeps leading
// with the live server long after every quarantine window has lapsed.
func TestSRTTSelectionPrefersProvenServer(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	killHost(f, "10.0.2.1", "ucla.edu.")

	f.clock.Advance(10 * time.Minute)
	f.resolveA(t, "www.ucla.edu.") // one failure on the dead server
	failed := f.cs.Stats().QueriesOutFailed

	// Long gaps (quarantine always lapsed): the dead server's penalised
	// SRTT still ranks it behind the answering one.
	for i := 0; i < 3; i++ {
		f.clock.Advance(10 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	if st := f.cs.Stats(); st.QueriesOutFailed != failed {
		t.Errorf("QueriesOutFailed = %d, want %d: selection kept probing the dead server first", st.QueriesOutFailed, failed)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	// Budget 3 covers the initial root → edu → ucla walk exactly.
	f := newFixture(t, Config{Upstream: UpstreamConfig{RetryBudget: 3}})
	f.resolveA(t, "www.ucla.edu.")

	// Everything goes down; the cached A expires. Without a budget the
	// resolver would bounce between ucla and edu until MaxReferrals,
	// burning an attempt on every server each round; with budget 3 it
	// stops after three.
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 24*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute)
	before := f.cs.Stats().QueriesOut
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution succeeded with the whole hierarchy down")
	}
	st := f.cs.Stats()
	if st.BudgetExhausted == 0 {
		t.Error("budget exhaustion not recorded")
	}
	if spent := st.QueriesOut - before; spent > 3 {
		t.Errorf("resolution spent %d attempts, budget was 3", spent)
	}
}

// TestSpoofedQuestionRejected is the regression test for accepting
// responses on ID match alone: a response with the right ID but the wrong
// question must be treated like a mismatched ID.
func TestSpoofedQuestionRejected(t *testing.T) {
	spoofed := 0
	tr := transport.Exchanger(func(_ context.Context, _ transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		spoofed++
		resp := dnswire.NewQuery(q.ID, dnswire.MustName("evil.example."), dnswire.TypeA)
		resp.Flags.Response = true
		return resp, nil
	})
	cs, err := NewCachingServer(Config{
		Transport: tr,
		Clock:     simclock.NewVirtual(epoch),
		RootHints: []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}},
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	if _, err := cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution accepted a response that does not echo the question")
	}
	if spoofed == 0 {
		t.Fatal("spoofing transport never invoked")
	}
	if st := cs.Stats(); st.QueriesOutFailed == 0 {
		t.Error("spoofed response not counted as a failed exchange")
	}
}

// TestStaleCNAMEChainChased is the regression test for staleAnswer
// returning a dangling stale CNAME: the chain must be followed through
// the stale cache to the terminal address records.
func TestStaleCNAMEChainChased(t *testing.T) {
	f := newFixture(t, Config{ServeStale: 24 * time.Hour})
	f.resolveA(t, "alias.ucla.edu.") // caches alias CNAME www.com. + its A

	// Take the whole hierarchy down and let every record expire: live and
	// stale iteration both fail, leaving staleAnswer as the last resort.
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 48*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."), dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute) // alias CNAME (300s) and www.com A (600s) expired

	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("alias.ucla.edu."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("stale resolution failed: %v", err)
	}
	var haveCNAME, haveA bool
	for _, rr := range res.Answer {
		if rr.TTL != staleServeTTL {
			t.Errorf("stale RR served with TTL %d, want %d", rr.TTL, staleServeTTL)
		}
		switch rr.Type() {
		case dnswire.TypeCNAME:
			haveCNAME = true
		case dnswire.TypeA:
			haveA = true
			if rr.Data.String() != "10.8.8.8" {
				t.Errorf("stale A = %s, want 10.8.8.8", rr.Data)
			}
		}
	}
	if !haveCNAME || !haveA {
		t.Fatalf("stale answer = %v, want CNAME chain chased to its A record", res.Answer)
	}
	if st := f.cs.Stats(); st.StaleAnswers < 2 {
		t.Errorf("StaleAnswers = %d, want both chain entries counted", st.StaleAnswers)
	}
}

// TestAAAAGlueFallback is the regression test for renewal extending AAAA
// glue that selection could never use: a name server with only an AAAA
// record must still be reachable via deepestKnownZone and zoneAddrs.
func TestAAAAGlueFallback(t *testing.T) {
	f := newFixture(t, Config{})
	nsSet := []dnswire.RR{rrNS("v6.test.", 3600, "ns1.v6.test.")}
	f.cs.cache.Put(nsSet, cache.CredAuthority, true)
	f.cs.cache.Put([]dnswire.RR{rrAAAA("ns1.v6.test.", 3600, "2001:db8::53")}, cache.CredAuthority, true)

	zname, addrs := f.cs.deepestKnownZone(dnswire.MustName("www.v6.test."), dnswire.TypeA, false)
	if zname != dnswire.MustName("v6.test.") {
		t.Fatalf("deepestKnownZone = %s, want v6.test.", zname)
	}
	if len(addrs) != 1 || addrs[0] != transport.Addr("2001:db8::53") {
		t.Errorf("addrs = %v, want the AAAA glue address", addrs)
	}

	if got := f.cs.zoneAddrs(nsSet); len(got) != 1 || got[0] != transport.Addr("2001:db8::53") {
		t.Errorf("zoneAddrs = %v, want the AAAA glue address", got)
	}
}

// TestAGluePreferredOverAAAA: AAAA is strictly a fallback; when both
// families are cached only the A addresses are used (matching the
// simulator's IPv4-only universe).
func TestAGluePreferredOverAAAA(t *testing.T) {
	f := newFixture(t, Config{})
	nsSet := []dnswire.RR{rrNS("v6.test.", 3600, "ns1.v6.test.")}
	f.cs.cache.Put(nsSet, cache.CredAuthority, true)
	f.cs.cache.Put([]dnswire.RR{rrA("ns1.v6.test.", 3600, "10.6.6.6")}, cache.CredAuthority, true)
	f.cs.cache.Put([]dnswire.RR{rrAAAA("ns1.v6.test.", 3600, "2001:db8::53")}, cache.CredAuthority, true)

	_, addrs := f.cs.deepestKnownZone(dnswire.MustName("www.v6.test."), dnswire.TypeA, false)
	if len(addrs) != 1 || addrs[0] != transport.Addr("10.6.6.6") {
		t.Errorf("addrs = %v, want only the A glue", addrs)
	}
}

// TestBudgetExhaustionError: exchangeFailover surfaces the sentinel so
// callers can tell budget exhaustion from ordinary unreachability.
func TestBudgetExhaustionError(t *testing.T) {
	dead := transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
		return nil, transport.ErrTimeout
	})
	cs, err := NewCachingServer(Config{
		Transport: dead,
		Clock:     simclock.NewVirtual(epoch),
		RootHints: []ServerRef{{Host: dnswire.MustName("a."), Addr: "10.0.0.1"}},
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	ctx := withRetryBudget(context.Background(), 1)
	q := dnswire.NewQuery(1, dnswire.MustName("x."), dnswire.TypeA)
	_, xerr := cs.exchangeFailover(ctx, []transport.Addr{"10.0.0.1", "10.0.0.2"}, q)
	if !errors.Is(xerr, errBudgetExhausted) {
		t.Errorf("error = %v, want errBudgetExhausted in the chain", xerr)
	}
	if st := cs.Stats(); st.BudgetExhausted != 1 {
		t.Errorf("BudgetExhausted = %d, want 1", st.BudgetExhausted)
	}
}

// TestUpstreamConcurrentAccess hammers the selection state from many
// goroutines so the -race pass covers concurrent observe/order/timeout
// updates (queries, renewals, and prefetches share one upstream).
func TestUpstreamConcurrentAccess(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	servers := []transport.Addr{"10.0.0.1:53", "10.0.0.2:53", "10.0.0.3:53"}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				addr := servers[(g+i)%len(servers)]
				now := epoch.Add(time.Duration(i) * time.Millisecond)
				switch i % 4 {
				case 0:
					u.observeSuccess(addr, time.Duration(10+i%40)*time.Millisecond)
				case 1:
					u.observeFailure(addr, now)
				case 2:
					if ordered, _ := u.order(servers, now); len(ordered) != len(servers) {
						t.Errorf("order returned %d servers, want %d", len(ordered), len(servers))
					}
				case 3:
					u.attemptTimeout(addr)
					u.quarantined(addr, now)
				}
			}
		}(g)
	}
	wg.Wait()
}
