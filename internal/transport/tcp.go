package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"resilientdns/internal/dnswire"
)

// TCP is a Transport over DNS-over-TCP (RFC 1035 §4.2.2: two-byte length
// prefix). Used as the fallback when a UDP response arrives truncated.
type TCP struct {
	// Timeout caps each exchange; a context deadline tightens it further
	// (the earlier of the two wins) but never extends it.
	Timeout time.Duration
}

// Exchange implements Transport.
func (t *TCP) Exchange(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	// DialContext, not Dial: connect must respect the caller's context.
	// A black-holed server (SYN dropped) would otherwise hold the dial
	// for the kernel's own timeout, long past the engine's per-attempt
	// deadline.
	var dialer net.Dialer
	dialer.Deadline = deadline
	conn, err := dialer.DialContext(ctx, "tcp", string(server))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrServerUnreachable, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}

	if err := WriteTCPMessage(conn, query); err != nil {
		return nil, err
	}
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, fmt.Errorf("%w: %s", ErrTimeout, server)
		}
		return nil, err
	}
	if resp.ID != query.ID {
		return nil, fmt.Errorf("transport: mismatched TCP response ID from %s", server)
	}
	if !dnswire.EchoesQuestion(query, resp) {
		return nil, fmt.Errorf("transport: response from %s does not echo the question", server)
	}
	return resp, nil
}

// WriteTCPMessage writes one length-prefixed DNS message. The message is
// packed into pooled scratch directly after a reserved two-byte prefix,
// so prefix and body go out in a single write (no tinygram pair) and the
// scratch is returned once the write completes.
func WriteTCPMessage(w io.Writer, m *dnswire.Message) error {
	bp := getBuf()
	defer putBuf(bp)
	framed, err := m.AppendPack((*bp)[:2])
	if err != nil {
		return err
	}
	n := len(framed) - 2
	if n > 0xFFFF {
		return errors.New("transport: message exceeds TCP length prefix")
	}
	binary.BigEndian.PutUint16(framed[:2], uint16(n))
	_, err = w.Write(framed)
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message. The body lands in
// a pooled buffer returned before this function does — safe because
// dnswire.Unpack copies the wire, so the Message never aliases it.
func ReadTCPMessage(r io.Reader) (*dnswire.Message, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(prefix[:])
	bp := getBuf()
	defer putBuf(bp)
	buf := (*bp)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return dnswire.Unpack(buf)
}

// TCPServer serves DNS over TCP using a Handler. Each connection runs on
// its own goroutine; concurrent query handling across all connections is
// bounded by MaxInflight.
type TCPServer struct {
	Handler Handler
	// MaxInflight bounds queries being handled at once across every
	// connection. Defaults to DefaultMaxInflight.
	MaxInflight int

	mu  sync.Mutex
	ln  net.Listener
	wg  sync.WaitGroup
	sem chan struct{}
}

// Listen binds and serves in background goroutines, returning the bound
// address.
func (s *TCPServer) Listen(addr string) (string, error) {
	if s.Handler == nil {
		return "", errors.New("transport: TCPServer without Handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	inflight := s.MaxInflight
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}
	s.mu.Lock()
	s.ln = ln
	s.sem = make(chan struct{}, inflight)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serve(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) serve(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles queries on one connection until EOF or error;
// multiple queries per connection are supported. Queries on one
// connection are processed in order (responses must not interleave on the
// stream), but each occupies a slot in the shared in-flight pool so a
// flood of connections cannot oversubscribe the resolver.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		query, err := ReadTCPMessage(conn)
		if err != nil {
			return
		}
		if query.Flags.Response {
			continue
		}
		s.sem <- struct{}{}
		// Dispatch with the source address when the handler supports it,
		// matching the UDP path: per-client policy (guard peer exemption,
		// per-client tracing) must see TCP clients too.
		var resp *dnswire.Message
		if ah, ok := s.Handler.(AddrHandler); ok {
			resp = ah.HandleQueryFrom(query, conn.RemoteAddr())
		} else {
			resp = s.Handler.HandleQuery(query)
		}
		<-s.sem
		if resp == nil {
			// The handler dropped this query (guard policy). Dropping one
			// query must not tear down the connection: later pipelined
			// queries on the same stream still deserve answers.
			continue
		}
		if err := WriteTCPMessage(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the server and waits for its goroutines.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

// UDPWithTCPFallback sends over UDP and retries over TCP when the
// response arrives truncated (TC bit), the standard resolver behaviour.
type UDPWithTCPFallback struct {
	UDP UDP
	TCP TCP
}

// Exchange implements Transport.
func (u *UDPWithTCPFallback) Exchange(ctx context.Context, server Addr, query *dnswire.Message) (*dnswire.Message, error) {
	resp, err := u.UDP.Exchange(ctx, server, query)
	if err != nil {
		return nil, err
	}
	if !resp.Flags.Truncated {
		return resp, nil
	}
	return u.TCP.Exchange(ctx, server, query)
}
