package lockorder_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, lockorder.Analyzer,
		"lockorder_bad", "lockorder_ok", "lockorder_stale")
}
