package guard

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
)

// atomicBackend is a goroutine-safe fake for the hammer.
type atomicBackend struct {
	queries, cacheOnly atomic.Uint64
}

func (b *atomicBackend) HandleQuery(q *dnswire.Message) *dnswire.Message {
	b.queries.Add(1)
	return q.Reply()
}

func (b *atomicBackend) HandleQueryCacheOnly(q *dnswire.Message) *dnswire.Message {
	b.cacheOnly.Add(1)
	return q.Reply()
}

// TestLimiterHammer drives the guard from many goroutines with a large
// spoofed address space — the shape of a spoofed-source flood — and
// checks, under the race detector, that the limiter's memory stays
// bounded at MaxClients and the decision counters account for every
// query exactly once.
func TestLimiterHammer(t *testing.T) {
	const (
		workers    = 16
		perWorker  = 2000
		maxClients = 512
	)
	counters := &metrics.GuardCounters{}
	be := &atomicBackend{}
	// The wall clock is fine here: the test asserts bounds and
	// accounting, not exact admit decisions.
	g := New(be, Config{
		ClientRPS: 5, Slip: 2, MaxClients: maxClients,
		Clock: simclock.Real{}, Counters: counters,
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Spoofed /16: 65536 distinct sources, far more than
				// the limiter is allowed to remember.
				addr := &net.UDPAddr{
					IP:   net.ParseIP(fmt.Sprintf("10.%d.%d.%d", w, i>>8, i&0xff)),
					Port: 1024 + i,
				}
				q := dnswire.NewQuery(uint16(i), dnswire.MustName("www.example.com."), dnswire.TypeA)
				q.Flags.RecursionDesired = true
				if resp := g.HandleQueryFrom(q, addr); resp != nil && resp.Flags.Truncated {
					if len(resp.Answer) != 0 {
						t.Error("slip reply carries answers")
						return
					}
				}
				// Interleave overload arrivals on the same addresses.
				if i%7 == 0 {
					g.HandleOverload(q, addr)
				}
			}
		}(w)
	}
	wg.Wait()

	if n := g.limiter.clientCount(); n > maxClients {
		t.Errorf("limiter tracks %d clients after the flood, bound is %d", n, maxClients)
	}
	gs := counters.Snapshot()
	total := workers * perWorker
	overloads := 0
	for i := 0; i < perWorker; i++ {
		if i%7 == 0 {
			overloads++
		}
	}
	total += workers * overloads
	if got := gs.Allowed + gs.RateLimited; got != uint64(total) {
		t.Errorf("allowed+limited = %d, want every query decided exactly once (%d)", got, total)
	}
	if gs.Slips > gs.RateLimited {
		t.Errorf("slips (%d) exceed rate-limited queries (%d)", gs.Slips, gs.RateLimited)
	}
	// Overload arrivals that passed the limiter were shed (degraded mode
	// off) — none may have reached the recursive entry point's cache-only
	// sibling.
	if n := be.cacheOnly.Load(); n != 0 {
		t.Errorf("cache-only entry point called %d times with degraded mode off", n)
	}
}
