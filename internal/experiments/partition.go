package experiments

import (
	"fmt"
	"time"

	"resilientdns/internal/sim"
)

// partitionCounts are the cache-sharing factors swept by the partition
// experiment.
var partitionCounts = []int{1, 2, 4, 8}

// Partition sweeps the number of caching servers the client population is
// split across. The paper (§5.1) attributes the cross-trace variance of
// SR-level results partly to "the number of SRs that use the same CS";
// this experiment isolates that factor: fewer clients per cache → colder
// caches → more failures during the attack, for vanilla DNS and for the
// refresh scheme alike.
func (s *Suite) Partition() (*Table, error) {
	const dur = 6 * time.Hour
	cols := []string{"Scheme"}
	for _, k := range partitionCounts {
		cols = append(cols, fmt.Sprintf("%d CS SR", k), fmt.Sprintf("%d CS msgs", k))
	}
	t := &Table{
		ID:      "partition",
		Title:   "Client population split across k caching servers (TRC1, 6h attack)",
		Columns: cols,
	}
	tr := s.traces[0]
	for _, scheme := range []sim.Scheme{sim.Vanilla(), sim.Refresh()} {
		row := []string{scheme.Name}
		for _, k := range partitionCounts {
			res, err := sim.RunPartitioned(sim.Scenario{
				Tree:   s.baseTree,
				Trace:  tr,
				Attack: s.attackFor(s.baseTree, dur),
				Scheme: scheme,
				Seed:   s.cfg.Seed,
			}, k)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.SRFailRate()), fmt.Sprintf("%d", res.MessagesOut()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"splitting the client population dilutes each cache: upstream traffic grows with k",
		"larger stub populations behind one cache amplify the resilience schemes (§5.1)")
	return t, nil
}
