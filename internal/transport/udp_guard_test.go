package transport

import (
	"net"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
)

// rawUDPSend sends a raw datagram to addr and waits briefly for one reply.
// ok=false means the server stayed silent.
func rawUDPSend(t *testing.T, addr string, pkt []byte) ([]byte, bool) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(pkt); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, false
	}
	return buf[:n], true
}

func TestUDPServerFormErr(t *testing.T) {
	counters := &metrics.GuardCounters{}
	srv := &UDPServer{Handler: echoHandler(), Counters: counters}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// A query truncated mid-question: the 12-byte header parses (ID,
	// opcode, QR=0) but the body does not.
	q := dnswire.NewQuery(0xBEEF, dnswire.MustName("www.example.com."), dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	reply, ok := rawUDPSend(t, addr, wire[:14])
	if !ok {
		t.Fatal("no reply to a malformed query with a parseable header")
	}
	resp, err := dnswire.Unpack(reply)
	if err != nil {
		t.Fatalf("Unpack(reply): %v", err)
	}
	if resp.ID != 0xBEEF || resp.RCode != dnswire.RCodeFormErr || !resp.Flags.Response {
		t.Errorf("reply = id %#x rcode %v qr %v, want FORMERR echoing id 0xBEEF", resp.ID, resp.RCode, resp.Flags.Response)
	}
	if got := counters.Snapshot().FormErr; got != 1 {
		t.Errorf("FormErr counter = %d, want 1", got)
	}

	// Shorter than a header: nothing to echo, stay silent.
	if _, ok := rawUDPSend(t, addr, wire[:5]); ok {
		t.Error("got a reply to a sub-header packet; want silence")
	}

	// A malformed packet with QR=1: answering it could start a reply loop
	// between two servers, so it must be dropped silently too.
	r := q.Reply()
	rwire, err := r.Pack()
	if err != nil {
		t.Fatalf("Pack(reply): %v", err)
	}
	if _, ok := rawUDPSend(t, addr, rwire[:14]); ok {
		t.Error("got a reply to a malformed response packet; want silence")
	}

	if got := counters.Snapshot().FormErr; got != 1 {
		t.Errorf("FormErr counter = %d after silent drops, want still 1", got)
	}

	// A well-formed response packet is also never answered.
	if _, ok := rawUDPSend(t, addr, rwire); ok {
		t.Error("got a reply to a well-formed response packet; want silence")
	}
}

// TestUDPServerOverloadHook saturates a MaxInflight=1 server with a
// blocked handler and checks the overflow query is handed to the
// Overload hook — synchronously, with its source address — and the
// hook's answer reaches the client.
func TestUDPServerOverloadHook(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	overloaded := make(chan net.Addr, 1)

	srv := &UDPServer{
		MaxInflight: 1,
		Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
			started <- struct{}{}
			<-block
			return q.Reply()
		}),
		Overload: func(q *dnswire.Message, from net.Addr) *dnswire.Message {
			overloaded <- from
			resp := q.Reply()
			resp.RCode = dnswire.RCodeServFail
			return resp
		},
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	defer close(block)

	// First query occupies the only inflight slot.
	q1, err := dnswire.NewQuery(1, dnswire.MustName("slow.example."), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	conn1, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn1.Close()
	if _, err := conn1.Write(q1); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}

	// Second query finds the slot busy and must flow through the hook.
	q2wire, err := dnswire.NewQuery(2, dnswire.MustName("fast.example."), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	reply, ok := rawUDPSend(t, addr, q2wire)
	if !ok {
		t.Fatal("no reply from the overload hook")
	}
	resp, err := dnswire.Unpack(reply)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if resp.ID != 2 || resp.RCode != dnswire.RCodeServFail {
		t.Errorf("overload reply = id %d rcode %v, want id 2 SERVFAIL", resp.ID, resp.RCode)
	}
	select {
	case from := <-overloaded:
		if ua, ok := from.(*net.UDPAddr); !ok || !ua.IP.IsLoopback() {
			t.Errorf("hook saw source %v, want the client's loopback address", from)
		}
	default:
		t.Error("Overload hook was not invoked")
	}
}

// TestUDPServerShedsWithoutHook: with no Overload hook, saturated
// arrivals are silently dropped and counted.
func TestUDPServerShedsWithoutHook(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	counters := &metrics.GuardCounters{}

	srv := &UDPServer{
		MaxInflight: 1,
		Counters:    counters,
		Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
			started <- struct{}{}
			<-block
			return q.Reply()
		}),
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	defer close(block)

	q1, err := dnswire.NewQuery(1, dnswire.MustName("slow.example."), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	conn1, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn1.Close()
	if _, err := conn1.Write(q1); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}

	q2, err := dnswire.NewQuery(2, dnswire.MustName("x.example."), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if _, ok := rawUDPSend(t, addr, q2); ok {
		t.Error("saturated query got a reply with no Overload hook; want a drop")
	}
	// The shed count lands synchronously on the read loop before the next
	// datagram is read, and rawUDPSend already waited 300ms.
	if got := counters.Snapshot().Shed; got != 1 {
		t.Errorf("Shed counter = %d, want 1", got)
	}
}
