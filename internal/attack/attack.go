// Package attack models DDoS attacks against DNS zones: time windows
// during which every authoritative server of a targeted zone stops
// responding. The paper's headline scenario — a blackout of the root zone
// and all top-level domains starting on day seven — is provided as a
// constructor, along with a greedy "maximum damage" target picker (§6).
package attack

import (
	"sort"
	"time"

	"resilientdns/internal/dnswire"
)

// Window is one attack interval against a set of zones. A query to any
// authoritative server of a targeted zone during [Start, End) times out.
type Window struct {
	Start time.Time
	End   time.Time
	// Zones are the targeted zone apex names.
	Zones map[dnswire.Name]bool
}

// Covers reports whether the window blacks out zone at time t.
func (w Window) Covers(zone dnswire.Name, t time.Time) bool {
	return w.Zones[zone] && !t.Before(w.Start) && t.Before(w.End)
}

// Schedule is a set of attack windows.
type Schedule []Window

// ZoneDown reports whether any window blacks out zone at time t.
func (s Schedule) ZoneDown(zone dnswire.Name, t time.Time) bool {
	for _, w := range s {
		if w.Covers(zone, t) {
			return true
		}
	}
	return false
}

// Active reports whether any window is in effect at time t.
func (s Schedule) Active(t time.Time) bool {
	for _, w := range s {
		if !t.Before(w.Start) && t.Before(w.End) {
			return true
		}
	}
	return false
}

// NewWindow builds a window over the given zones.
func NewWindow(start time.Time, duration time.Duration, zones ...dnswire.Name) Window {
	w := Window{Start: start, End: start.Add(duration), Zones: make(map[dnswire.Name]bool, len(zones))}
	for _, z := range zones {
		w.Zones[z] = true
	}
	return w
}

// RootAndTLDs builds the paper's evaluation attack: a single window that
// blacks out the root zone and every zone exactly one label deep.
func RootAndTLDs(start time.Time, duration time.Duration, allZones []dnswire.Name) Schedule {
	w := Window{Start: start, End: start.Add(duration), Zones: make(map[dnswire.Name]bool)}
	for _, z := range allZones {
		if z.IsRoot() || z.LabelCount() == 1 {
			w.Zones[z] = true
		}
	}
	return Schedule{w}
}

// MaxDamage greedily picks the budget zones whose blackout covers the most
// upcoming queries, using the per-zone descendant query counts. This is
// the heuristic approximation of the paper's "maximum damage attack" (§6):
// the exact optimum needs an oracle over all caching servers' future
// traffic and cascading IRR expiries, which the paper notes is infeasible.
func MaxDamage(start time.Time, duration time.Duration, budget int, queryCountsByZone map[dnswire.Name]uint64) Schedule {
	// Attribute each zone's queries to all of its ancestors: attacking a
	// zone disables resolution for every descendant (modulo caching).
	damage := make(map[dnswire.Name]uint64)
	for z, n := range queryCountsByZone {
		for _, anc := range z.Ancestors() {
			damage[anc] += n
		}
	}
	type cand struct {
		zone dnswire.Name
		hits uint64
	}
	cands := make([]cand, 0, len(damage))
	for z, n := range damage {
		cands = append(cands, cand{zone: z, hits: n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		return cands[i].zone < cands[j].zone
	})

	w := Window{Start: start, End: start.Add(duration), Zones: make(map[dnswire.Name]bool)}
	for i := 0; i < budget && i < len(cands); i++ {
		w.Zones[cands[i].zone] = true
	}
	return Schedule{w}
}
