// Package lintutil holds the shared plumbing for the dnslint analyzers:
// the //dnslint:ignore escape hatch and package-list matching.
//
// Every analyzer in internal/analysis/... supports the same suppression
// directive:
//
//	//dnslint:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or on the line
// immediately above it. The reason is mandatory: a bare
// "//dnslint:ignore wallclock" does not suppress anything, so every
// exception carries its justification in the source where reviewers can
// audit it (see DESIGN.md §9).
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix is the suppression directive marker.
const IgnorePrefix = "//dnslint:ignore"

// Suppressor answers whether a position is covered by a
// //dnslint:ignore directive for a given analyzer, and remembers which
// directives actually suppressed something so the stale ones can be
// reported at the end of the pass. Build one per pass with
// NewSuppressor.
type Suppressor struct {
	// lines maps file name + line to the directives covering that line.
	lines map[lineKey][]*directive
	// all lists every directive in the pass, in scan order.
	all []*directive
}

// directive is one parsed //dnslint:ignore comment. A directive covers
// its own line and the next, and is "used" once it suppresses at least
// one finding.
type directive struct {
	name string
	pos  token.Pos
	used bool
}

type lineKey struct {
	file string
	line int
}

// NewSuppressor scans every comment in the pass's files and indexes the
// //dnslint:ignore directives it finds. A directive suppresses findings
// on its own line and on the line directly below it (so it can trail
// the offending statement or sit on its own line above).
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{lines: make(map[lineKey][]*directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				d := &directive{name: name, pos: c.Pos()}
				s.all = append(s.all, d)
				pos := pass.Fset.Position(c.Pos())
				s.lines[lineKey{pos.Filename, pos.Line}] = append(s.lines[lineKey{pos.Filename, pos.Line}], d)
				s.lines[lineKey{pos.Filename, pos.Line + 1}] = append(s.lines[lineKey{pos.Filename, pos.Line + 1}], d)
			}
		}
	}
	return s
}

// parseIgnore extracts the analyzer name from a well-formed directive.
// A directive without a reason is malformed and suppresses nothing.
func parseIgnore(text string) (analyzer string, ok bool) {
	if !strings.HasPrefix(text, IgnorePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, IgnorePrefix)
	fields := strings.Fields(rest)
	// fields[0] is the analyzer name; at least one more word of reason
	// is required for the directive to count.
	if len(fields) < 2 {
		return "", false
	}
	return fields[0], true
}

// Ignored reports whether a finding by the named analyzer at pos is
// suppressed by a directive, marking the suppressing directive used.
func (s *Suppressor) Ignored(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	p := pass.Fset.Position(pos)
	hit := false
	for _, d := range s.lines[lineKey{p.Filename, p.Line}] {
		if d.name == analyzer {
			d.used = true
			hit = true
		}
	}
	return hit
}

// Report emits a diagnostic unless it is suppressed. It is the single
// reporting entry point for all dnslint analyzers, so the escape hatch
// behaves identically everywhere.
func (s *Suppressor) Report(pass *analysis.Pass, analyzer string, pos token.Pos, format string, args ...any) {
	if s.Ignored(pass, pos, analyzer) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// ReportStale reports every directive naming analyzer that suppressed
// nothing during the pass. Every analyzer calls it once at the end of
// its run: a suppression that no longer suppresses is dead weight at
// best and, at worst, a fixed bug's justification still licensing a
// future regression. Deliberately not suppressible — the cure for a
// stale directive is deleting it.
func (s *Suppressor) ReportStale(pass *analysis.Pass, analyzer string) {
	for _, d := range s.all {
		if d.name == analyzer && !d.used {
			pass.Reportf(d.pos, "stale //dnslint:ignore %s directive: it suppresses no %s finding; delete it",
				analyzer, analyzer)
		}
	}
}

// ReportStaleAll is ReportStale for analyzers that skipped the package
// entirely (scope filter): with the analyzer out of scope, no directive
// naming it can ever suppress anything, so each one is stale.
func ReportStaleAll(pass *analysis.Pass, analyzer string) {
	NewSuppressor(pass).ReportStale(pass, analyzer)
}

// InTestFile reports whether pos is inside a _test.go file. The dnslint
// rules police production code; tests may sleep, discard errors, and
// use deterministic randomness freely.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// PkgMatches reports whether the package path is covered by the
// comma-separated pattern list. A pattern matches its exact path, and a
// pattern ending in "/..." matches the prefix subtree.
func PkgMatches(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File in the pass containing pos, or nil.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
