package simnet

import (
	"context"
	"fmt"
	"time"

	"resilientdns/internal/simclock"
)

// MeshNet is the deterministic in-memory fabric for the cooperative
// resolver mesh: the simulation-side counterpart of the mesh package's
// UDP transport. Like Network it is single-threaded by design and
// charges virtual time per call. It knows nothing about frame contents
// — datagrams are opaque byte slices handed to the registered handler
// — so simnet does not import the mesh package; mesh nodes satisfy
// MeshHandler structurally and each node's port satisfies the mesh
// Transport interface.
type MeshNet struct {
	// RTT is the virtual time charged for a delivered call.
	RTT time.Duration
	// Timeout is the virtual time charged for a failed call.
	Timeout time.Duration

	clock    *simclock.Virtual
	handlers map[string]MeshHandler
	cut      map[[2]string]bool

	// MeshStats counters.
	Calls     uint64
	Delivered uint64
	Dropped   uint64
}

// MeshHandler processes one inbound mesh datagram and returns the reply
// (nil for silence). mesh.Node.HandleFrame has this shape.
type MeshHandler func(raw []byte, from string) []byte

// NewMeshNet returns an empty mesh fabric on the given virtual clock.
// Defaults match Network: 40 ms RTT, 2 s timeout.
func NewMeshNet(clock *simclock.Virtual) *MeshNet {
	return &MeshNet{
		RTT:      40 * time.Millisecond,
		Timeout:  2 * time.Second,
		clock:    clock,
		handlers: make(map[string]MeshHandler),
		cut:      make(map[[2]string]bool),
	}
}

// Register attaches a node's inbound handler at addr.
func (m *MeshNet) Register(addr string, h MeshHandler) {
	m.handlers[addr] = h
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Cut severs the link between a and b in both directions (calls time
// out), simulating a network partition.
func (m *MeshNet) Cut(a, b string) { m.cut[pairKey(a, b)] = true }

// Heal restores a previously Cut link.
func (m *MeshNet) Heal(a, b string) { delete(m.cut, pairKey(a, b)) }

// Isolate cuts addr off from every registered node.
func (m *MeshNet) Isolate(addr string) {
	for other := range m.handlers {
		if other != addr {
			m.Cut(addr, other)
		}
	}
}

// Rejoin heals every link of addr.
func (m *MeshNet) Rejoin(addr string) {
	for other := range m.handlers {
		if other != addr {
			m.Heal(addr, other)
		}
	}
}

// Bind returns the transport endpoint for the node registered at self.
func (m *MeshNet) Bind(self string) *MeshPort {
	return &MeshPort{net: m, self: self}
}

// MeshPort is one node's view of the fabric; it satisfies the mesh
// package's Transport interface.
type MeshPort struct {
	net  *MeshNet
	self string
}

// Call delivers frame to peer's handler synchronously and returns its
// reply. Severed links and unregistered peers charge Timeout and fail;
// deliveries charge RTT. A handler returning nil (a deliberately
// unanswered frame, e.g. a pre-handshake drop) charges Timeout too:
// on a real network the caller would wait out its timer.
func (p *MeshPort) Call(_ context.Context, peer string, frame []byte) ([]byte, error) {
	m := p.net
	m.Calls++
	h, ok := m.handlers[peer]
	if !ok || m.cut[pairKey(p.self, peer)] {
		m.Dropped++
		m.clock.Advance(m.Timeout)
		return nil, fmt.Errorf("mesh call to %s: unreachable", peer)
	}
	reply := h(frame, p.self)
	if reply == nil {
		m.Dropped++
		m.clock.Advance(m.Timeout)
		return nil, fmt.Errorf("mesh call to %s: no reply", peer)
	}
	m.Delivered++
	m.clock.Advance(m.RTT)
	return reply, nil
}
