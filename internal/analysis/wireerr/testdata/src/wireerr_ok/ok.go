// Package wireerr_ok is a passing fixture: every codec error is
// checked (or the call has no error to lose), plus one audited
// suppression.
package wireerr_ok

import "dnswire"

// Checked handles every error.
func Checked(b []byte) ([]byte, error) {
	m, err := dnswire.Unpack(b)
	if err != nil {
		return nil, err
	}
	if _, err := dnswire.CanonicalName("example."); err != nil {
		return nil, err
	}
	return m.Pack()
}

// NoError discards a result that carries no error.
func NoError(m *dnswire.Message) {
	m.Header()
}

// Audited drops the error with a visible justification.
func Audited(m *dnswire.Message) {
	_ = m.Validate() //dnslint:ignore wireerr best-effort validation on the metrics path, failure already counted
}
