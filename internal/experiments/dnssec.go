package experiments

import (
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/sim"
	"resilientdns/internal/topology"
)

// signedTree returns (generating on demand) the DNSSEC-signed variant of
// the base hierarchy.
func (s *Suite) signedTree() (*topology.Tree, error) {
	if s.signed != nil {
		return s.signed, nil
	}
	tp := topology.DefaultParams(s.cfg.Seed)
	tp.NumTLDs = s.cfg.NumTLDs
	tp.SLDsPerTLD = s.cfg.SLDsPerTLD
	tp.Signed = true
	t, err := topology.Generate(tp)
	if err != nil {
		return nil, err
	}
	s.signed = t
	return t, nil
}

// DNSSECExtension demonstrates the paper's §6 claim: the refresh and
// renewal techniques extend to DNSSEC's new infrastructure records (DS
// and DNSKEY). A validating resolver over a fully signed hierarchy is
// compared with and without the resilience schemes under the 6-hour
// root+TLD attack, against the unsigned baseline.
func (s *Suite) DNSSECExtension() (*Table, error) {
	const dur = 6 * time.Hour
	t := &Table{
		ID:    "dnssec",
		Title: "DNSSEC-validating resolver under 6h root+TLD attack",
		Columns: []string{"Trace",
			"unsigned DNS SR", "signed DNS SR",
			"unsigned A-LFU(5) SR", "signed A-LFU(5) SR"},
	}
	signed, err := s.signedTree()
	if err != nil {
		return nil, err
	}
	policy := core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}
	for _, tr := range s.traces {
		basePlain, err := s.runBase(tr, sim.Vanilla(), dur)
		if err != nil {
			return nil, err
		}
		signedVanilla := sim.Vanilla()
		signedVanilla.Name = "DNS+DNSSEC"
		signedVanilla.ValidateDNSSEC = true
		baseSigned, err := s.run(signed, "signed", tr, signedVanilla, dur, 0, false)
		if err != nil {
			return nil, err
		}
		plainRenew, err := s.runBase(tr, sim.RefreshRenew(policy), dur)
		if err != nil {
			return nil, err
		}
		signedRenew := sim.RefreshRenew(policy)
		signedRenew.Name = "Refresh+A-LFU(5)+DNSSEC"
		signedRenew.ValidateDNSSEC = true
		renewSigned, err := s.run(signed, "signed", tr, signedRenew, dur, 0, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tr.Label,
			pct(basePlain.SRFailRate()), pct(baseSigned.SRFailRate()),
			pct(plainRenew.SRFailRate()), pct(renewSigned.SRFailRate()),
		})
	}
	t.Notes = append(t.Notes,
		"validation adds DS/DNSKEY fetches but the renewal schemes keep those IRRs cached too",
		"the resilience gain survives a fully signed, validating deployment (§6)")
	return t, nil
}
