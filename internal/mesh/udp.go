package mesh

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Conn is the production mesh transport: one UDP socket per node, used
// for both directions. Sending requests from the same socket the node
// listens on means a request's source address IS the node's canonical
// mesh address, which is what the cookie handshake confirms — peers
// must therefore be configured by the exact host:port they bind
// (-mesh-listen on one node matches its entry in -mesh-peers on the
// others).
//
// Responses are matched to pending calls by (source address, sequence
// number); everything else is dispatched to the node's request handler
// on the read-loop goroutine.
type Conn struct {
	pc *net.UDPConn

	mu      sync.Mutex
	pending map[pendingKey]chan []byte
	closed  bool
	done    chan struct{}
}

type pendingKey struct {
	addr string
	seq  uint32
}

// ListenUDP binds the mesh socket.
func ListenUDP(listen string) (*Conn, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("mesh: resolve %s: %w", listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("mesh: listen %s: %w", listen, err)
	}
	return &Conn{
		pc:      pc,
		pending: make(map[pendingKey]chan []byte),
		done:    make(chan struct{}),
	}, nil
}

// LocalAddr returns the bound address (useful with port 0 in tests).
func (c *Conn) LocalAddr() string { return c.pc.LocalAddr().String() }

// Serve runs the read loop, dispatching requests to node.HandleFrame
// and responses to their pending Call. It returns when Close is
// called (or the socket fails).
func (c *Conn) Serve(node *Node) error {
	buf := make([]byte, MaxFrame+1)
	for {
		n, from, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if n > MaxFrame {
			continue // cannot be a valid frame; drop without copying
		}
		raw := make([]byte, n)
		copy(raw, buf[:n])
		src := from.String()

		if typ, seq, ok := PeekTypeSeq(raw); ok && IsResponseType(typ) {
			c.mu.Lock()
			ch, ok := c.pending[pendingKey{src, seq}]
			if ok {
				delete(c.pending, pendingKey{src, seq})
			}
			c.mu.Unlock()
			if ok {
				ch <- raw // buffered; never blocks the read loop
			}
			continue
		}
		if reply := node.HandleFrame(raw, src); reply != nil {
			_, _ = c.pc.WriteToUDP(reply, from)
		}
	}
}

// Call implements Transport: it sends frame to peer and waits for the
// sequence-matched response or ctx expiry.
func (c *Conn) Call(ctx context.Context, peer string, frame []byte) ([]byte, error) {
	dst, err := net.ResolveUDPAddr("udp", peer)
	if err != nil {
		return nil, fmt.Errorf("mesh: resolve peer %s: %w", peer, err)
	}
	_, seq, ok := PeekTypeSeq(frame)
	if !ok {
		return nil, ErrBadFrame
	}
	key := pendingKey{dst.String(), seq}
	ch := make(chan []byte, 1)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("mesh: transport closed")
	}
	c.pending[key] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
	}()

	if _, err := c.pc.WriteToUDP(frame, dst); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, errors.New("mesh: transport closed")
	}
}

// Close shuts the socket down and unblocks Serve and pending Calls.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	return c.pc.Close()
}

var _ Transport = (*Conn)(nil)
