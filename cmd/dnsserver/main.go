// Command dnsserver runs an authoritative DNS server over UDP and TCP,
// serving RFC 1035 master files as a primary and/or zones transferred
// from another server as a secondary (AXFR with SOA-serial polling).
//
// Usage:
//
//	dnsserver -listen 127.0.0.1:5300 -zone example.com=example.com.zone
//	    [-secondary other.org=10.0.0.1:53]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/xfer"
	"resilientdns/internal/zone"
)

// zoneFlags collects repeated -zone origin=file arguments.
type zoneFlags []string

func (z *zoneFlags) String() string { return strings.Join(*z, ",") }

func (z *zoneFlags) Set(v string) error {
	*z = append(*z, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var zones, secondaries zoneFlags
	listen := flag.String("listen", "127.0.0.1:5300", "UDP and TCP address to serve on")
	noIRRs := flag.Bool("no-apex-ns", false, "do not attach apex NS/glue to answers (ablation)")
	delay := flag.Duration("delay", 0, "artificial per-query service delay (emulates WAN RTT in localhost experiments)")
	flag.Var(&zones, "zone", "origin=masterfile, repeatable")
	flag.Var(&secondaries, "secondary", "origin=primary-host:port, repeatable (AXFR secondary)")
	flag.Parse()
	if len(zones) == 0 && len(secondaries) == 0 {
		return fmt.Errorf("at least one -zone origin=file or -secondary origin=addr is required")
	}

	var loaded []*zone.Zone
	for _, spec := range zones {
		origin, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -zone %q, want origin=file", spec)
		}
		name, err := dnswire.CanonicalName(origin)
		if err != nil {
			return err
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		z, err := zone.Parse(f, name)
		f.Close()
		if err != nil {
			return err
		}
		if err := z.Validate(); err != nil {
			return err
		}
		loaded = append(loaded, z)
		fmt.Printf("loaded zone %s (%d records)\n", name, z.RecordCount())
	}

	primary := authserver.New(loaded...)
	primary.AttachApexNS = !*noIRRs

	// Secondaries transfer their zone from a remote primary and keep it
	// fresh by polling the SOA serial.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var secs []*xfer.Secondary
	for _, spec := range secondaries {
		origin, primaryAddr, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -secondary %q, want origin=addr", spec)
		}
		name, err := dnswire.CanonicalName(origin)
		if err != nil {
			return err
		}
		sec := &xfer.Secondary{Zone: name, Primary: transport.Addr(primaryAddr)}
		secs = append(secs, sec)
		go sec.Run(ctx)
		fmt.Printf("secondary for %s from %s\n", name, primaryAddr)
	}

	// Route each query to the secondary owning the deepest matching zone,
	// falling back to the primary zones.
	handler := transport.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if len(q.Question) == 1 {
			var best *xfer.Secondary
			for _, sec := range secs {
				if q.Question[0].Name.IsSubdomainOf(sec.Zone) {
					if best == nil || sec.Zone.LabelCount() > best.Zone.LabelCount() {
						best = sec
					}
				}
			}
			if best != nil {
				return best.HandleQuery(q)
			}
		}
		return primary.HandleQuery(q)
	})
	if *delay > 0 {
		inner := handler
		handler = func(q *dnswire.Message) *dnswire.Message {
			time.Sleep(*delay)
			return inner(q)
		}
	}

	// Delayed handlers hold their worker slot for the full delay, so give
	// the experiment servers plenty of parallel headroom.
	udp := &transport.UDPServer{Handler: handler, MaxInflight: 4096}
	addr, err := udp.Listen(*listen)
	if err != nil {
		return err
	}
	defer udp.Close()
	tcp := &transport.TCPServer{Handler: handler}
	if _, err := tcp.Listen(addr); err != nil {
		return err
	}
	defer tcp.Close()
	fmt.Printf("serving on %s (udp+tcp)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
