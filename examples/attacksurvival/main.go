// Attack survival: replay the same workload against a vanilla caching
// server and against the paper's resilient configuration while the root
// and all TLDs are blacked out for six hours, and compare failure rates.
//
//	go run ./examples/attacksurvival
package main

import (
	"fmt"
	"os"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/core"
	"resilientdns/internal/sim"
	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksurvival:", err)
		os.Exit(1)
	}
}

func run() error {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	params := topology.DefaultParams(7)
	params.NumTLDs = 6
	params.SLDsPerTLD = 30
	tree, err := topology.Generate(params)
	if err != nil {
		return err
	}

	gp := workload.DefaultGenParams("DEMO", 7, epoch)
	gp.Clients = 100
	gp.TotalQueries = 12000
	trace := workload.Generate(gp, tree.QueryableNames())

	// Six days of normal operation, then a 6-hour blackout of the root
	// and every TLD — the paper's evaluation scenario.
	sched := attack.RootAndTLDs(epoch.Add(6*24*time.Hour), 6*time.Hour, tree.AllZoneNames())

	schemes := []sim.Scheme{
		sim.Vanilla(),
		sim.Refresh(),
		sim.RefreshRenew(core.ALFU{C: 5, MaxDays: 50}),
	}
	fmt.Println("scheme                     SR failures   CS failures")
	for _, scheme := range schemes {
		res, err := sim.Run(sim.Scenario{
			Tree:   tree,
			Trace:  trace,
			Attack: sched,
			Scheme: scheme,
			Seed:   7,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %10.2f%% %12.2f%%\n",
			scheme.Name, 100*res.SRFailRate(), 100*res.CSFailRate())
	}
	fmt.Println("\nTTL refresh plus adaptive-LFU renewal keeps the infrastructure")
	fmt.Println("records of every recently used zone cached, so resolution keeps")
	fmt.Println("working even though the upper hierarchy is unreachable.")
	return nil
}
