package transport

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

func TestTCPRoundTrip(t *testing.T) {
	srv := &TCPServer{Handler: echoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	c := &TCP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(11, dnswire.MustName("www.example.com"), dnswire.TypeA)
	resp, err := c.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.ID != 11 || len(resp.Answer) != 1 {
		t.Errorf("resp = %v", resp)
	}
}

func TestTCPRejectsMismatchedQuestion(t *testing.T) {
	srv := &TCPServer{Handler: HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		r.Question = []dnswire.Question{{
			Name:  dnswire.MustName("evil.example."),
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
		}}
		return r
	})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	c := &TCP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(11, dnswire.MustName("x."), dnswire.TypeA)
	if _, err := c.Exchange(context.Background(), Addr(addr), q); err == nil {
		t.Fatal("TCP exchange accepted a response with a mismatched question")
	}
}

func TestTCPMultipleQueriesPerConnection(t *testing.T) {
	srv := &TCPServer{Handler: echoHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// Use the raw framing helpers over one connection.
	conn, err := dialTCP(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		q := dnswire.NewQuery(uint16(100+i), dnswire.MustName("x.example."), dnswire.TypeA)
		if err := WriteTCPMessage(conn, q); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.ID != uint16(100+i) {
			t.Errorf("resp %d has ID %d", i, resp.ID)
		}
	}
}

func TestTCPUnreachable(t *testing.T) {
	c := &TCP{Timeout: 300 * time.Millisecond}
	q := dnswire.NewQuery(1, dnswire.MustName("x."), dnswire.TypeA)
	// A port that is almost certainly closed.
	_, err := c.Exchange(context.Background(), "127.0.0.1:1", q)
	if err == nil {
		t.Fatal("Exchange to closed port succeeded")
	}
}

// bigHandler returns a response too large for a 512-byte UDP datagram.
func bigHandler() Handler {
	return HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		r := q.Reply()
		for i := 0; i < 60; i++ {
			r.Answer = append(r.Answer, dnswire.RR{
				Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.TXT{Strings: []string{strings.Repeat("x", 50)}},
			})
		}
		return r
	})
}

func TestUDPTruncatesOversizedResponses(t *testing.T) {
	srv := &UDPServer{Handler: bigHandler()}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	u := &UDP{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(5, dnswire.MustName("big.example."), dnswire.TypeTXT)
	resp, err := u.Exchange(context.Background(), Addr(addr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if !resp.Flags.Truncated {
		t.Fatal("oversized response not truncated")
	}
	if len(resp.Answer) != 0 {
		t.Errorf("truncated response kept %d answers", len(resp.Answer))
	}
}

func TestUDPWithTCPFallback(t *testing.T) {
	handler := bigHandler()
	udpSrv := &UDPServer{Handler: handler}
	udpAddr, err := udpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("udp Listen: %v", err)
	}
	defer udpSrv.Close()
	// Serve TCP on the same port number so one Addr reaches both.
	tcpSrv := &TCPServer{Handler: handler}
	if _, err := tcpSrv.Listen(udpAddr); err != nil {
		t.Fatalf("tcp Listen on %s: %v", udpAddr, err)
	}
	defer tcpSrv.Close()

	c := &UDPWithTCPFallback{
		UDP: UDP{Timeout: 2 * time.Second},
		TCP: TCP{Timeout: 2 * time.Second},
	}
	q := dnswire.NewQuery(6, dnswire.MustName("big.example."), dnswire.TypeTXT)
	resp, err := c.Exchange(context.Background(), Addr(udpAddr), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Flags.Truncated {
		t.Fatal("fallback returned a truncated response")
	}
	if len(resp.Answer) != 60 {
		t.Errorf("fallback got %d answers, want 60", len(resp.Answer))
	}
}

func TestTruncatedCopy(t *testing.T) {
	q := dnswire.NewQuery(9, dnswire.MustName("x."), dnswire.TypeA)
	r := q.Reply()
	r.Answer = []dnswire.RR{{
		Name: dnswire.MustName("x."), Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
	}}
	tc := r.TruncatedCopy()
	if !tc.Flags.Truncated || len(tc.Answer) != 0 || len(tc.Question) != 1 {
		t.Errorf("TruncatedCopy = %+v", tc)
	}
	if tc.ID != 9 {
		t.Errorf("ID = %d", tc.ID)
	}
}

// dialTCP opens a plain TCP connection for framing-level tests.
func dialTCP(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
