package ctxdeadline_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/ctxdeadline"
)

// TestCtxdeadline runs the in-scope fixtures plus the stale-directive
// package, which is deliberately NOT in -pkgs: stale suppressions are
// reported regardless of scope.
func TestCtxdeadline(t *testing.T) {
	prev := ctxdeadline.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := ctxdeadline.Analyzer.Flags.Set("pkgs",
		"ctxdeadline_bad,ctxdeadline_chain,ctxdeadline_ok"); err != nil {
		t.Fatal(err)
	}
	defer ctxdeadline.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, ctxdeadline.Analyzer,
		"ctxdeadline_bad", "ctxdeadline_chain", "ctxdeadline_ok", "ctxdeadline_stale")
}

// TestOutOfScopePackage: a package not listed in -pkgs (the simulator,
// the experiments) may run unbounded; any diagnostic fails the run.
func TestOutOfScopePackage(t *testing.T) {
	prev := ctxdeadline.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := ctxdeadline.Analyzer.Flags.Set("pkgs", "ctxdeadline_ok"); err != nil {
		t.Fatal(err)
	}
	defer ctxdeadline.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, ctxdeadline.Analyzer, "ctxdeadline_outofscope")
}
