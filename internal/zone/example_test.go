package zone_test

import (
	"fmt"
	"net/netip"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

// ExampleParse loads a master file and resolves a name against it.
func ExampleParse() {
	z, err := zone.ParseString(`
$TTL 3600
@	IN	NS	ns1.example.com.
ns1	IN	A	192.0.2.1
www	300	IN	A	192.0.2.80
`, dnswire.MustName("example.com."))
	if err != nil {
		panic(err)
	}
	res := z.Lookup(dnswire.MustName("www.example.com."), dnswire.TypeA)
	fmt.Println(res.Type)
	fmt.Println(res.Records[0])
	// Output:
	// Answer
	// www.example.com.	300	IN	A	192.0.2.80
}

// ExampleZone_Lookup shows the delegation-aware outcomes.
func ExampleZone_Lookup() {
	z := zone.New(dnswire.MustName("edu."))
	z.MustAdd(dnswire.RR{Name: dnswire.MustName("edu."), Class: dnswire.ClassIN, TTL: 86400,
		Data: dnswire.NS{Host: dnswire.MustName("ns1.edu.")}})
	z.MustAdd(dnswire.RR{Name: dnswire.MustName("ns1.edu."), Class: dnswire.ClassIN, TTL: 86400,
		Data: dnswire.A{Addr: mustAddr("192.0.2.1")}})
	z.MustAdd(dnswire.RR{Name: dnswire.MustName("ucla.edu."), Class: dnswire.ClassIN, TTL: 86400,
		Data: dnswire.NS{Host: dnswire.MustName("ns1.ucla.edu.")}})
	z.MustAdd(dnswire.RR{Name: dnswire.MustName("ns1.ucla.edu."), Class: dnswire.ClassIN, TTL: 86400,
		Data: dnswire.A{Addr: mustAddr("198.51.100.1")}})

	fmt.Println(z.Lookup(dnswire.MustName("www.ucla.edu."), dnswire.TypeA).Type)
	fmt.Println(z.Lookup(dnswire.MustName("missing.edu."), dnswire.TypeA).Type)
	// Output:
	// Referral
	// NXDOMAIN
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
