package wallclock_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	prev := wallclock.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := wallclock.Analyzer.Flags.Set("pkgs", "wallclock_bad,wallclock_ignored,wallclock_ok"); err != nil {
		t.Fatal(err)
	}
	defer wallclock.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, wallclock.Analyzer,
		"wallclock_bad", "wallclock_ignored", "wallclock_ok", "wallclock_other")
}

func TestSubtreePattern(t *testing.T) {
	prev := wallclock.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := wallclock.Analyzer.Flags.Set("pkgs", "wallclock_bad/..."); err != nil {
		t.Fatal(err)
	}
	defer wallclock.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// wallclock_bad matches the subtree pattern; wallclock_other does not.
	antest.Run(t, dir, wallclock.Analyzer, "wallclock_bad", "wallclock_other")
}
