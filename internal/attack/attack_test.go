package attack

import (
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

var epoch = time.Date(2026, 1, 7, 0, 0, 0, 0, time.UTC)

func TestWindowCovers(t *testing.T) {
	w := NewWindow(epoch, 6*time.Hour, dnswire.MustName("edu."))
	tests := []struct {
		zone dnswire.Name
		at   time.Time
		want bool
	}{
		{"edu.", epoch, true},
		{"edu.", epoch.Add(3 * time.Hour), true},
		{"edu.", epoch.Add(6 * time.Hour), false}, // end-exclusive
		{"edu.", epoch.Add(-time.Second), false},
		{"com.", epoch, false},
	}
	for _, tt := range tests {
		if got := w.Covers(tt.zone, tt.at); got != tt.want {
			t.Errorf("Covers(%s, %v) = %v, want %v", tt.zone, tt.at, got, tt.want)
		}
	}
}

func TestScheduleZoneDownAndActive(t *testing.T) {
	s := Schedule{
		NewWindow(epoch, time.Hour, dnswire.MustName("edu.")),
		NewWindow(epoch.Add(2*time.Hour), time.Hour, dnswire.MustName("com.")),
	}
	if !s.ZoneDown(dnswire.MustName("edu."), epoch.Add(30*time.Minute)) {
		t.Error("edu not down during its window")
	}
	if s.ZoneDown(dnswire.MustName("edu."), epoch.Add(2*time.Hour+30*time.Minute)) {
		t.Error("edu down during com's window")
	}
	if !s.Active(epoch.Add(2*time.Hour + 30*time.Minute)) {
		t.Error("schedule not active during second window")
	}
	if s.Active(epoch.Add(90 * time.Minute)) {
		t.Error("schedule active in the gap between windows")
	}
	if (Schedule)(nil).Active(epoch) {
		t.Error("nil schedule active")
	}
}

func TestRootAndTLDs(t *testing.T) {
	zones := []dnswire.Name{
		dnswire.Root,
		dnswire.MustName("edu."),
		dnswire.MustName("com."),
		dnswire.MustName("ucla.edu."),
		dnswire.MustName("cs.ucla.edu."),
	}
	s := RootAndTLDs(epoch, 6*time.Hour, zones)
	at := epoch.Add(time.Hour)
	if !s.ZoneDown(dnswire.Root, at) {
		t.Error("root not attacked")
	}
	if !s.ZoneDown(dnswire.MustName("edu."), at) || !s.ZoneDown(dnswire.MustName("com."), at) {
		t.Error("TLDs not attacked")
	}
	if s.ZoneDown(dnswire.MustName("ucla.edu."), at) {
		t.Error("SLD attacked by root+TLD schedule")
	}
}

func TestMaxDamagePicksHottestAncestors(t *testing.T) {
	counts := map[dnswire.Name]uint64{
		dnswire.MustName("a.com."): 1000,
		dnswire.MustName("b.com."): 900,
		dnswire.MustName("c.edu."): 10,
	}
	s := MaxDamage(epoch, time.Hour, 2, counts)
	if len(s) != 1 {
		t.Fatalf("schedule = %v", s)
	}
	at := epoch.Add(time.Minute)
	// The root (1910 hits) and com. (1900 hits) dominate.
	if !s.ZoneDown(dnswire.Root, at) {
		t.Error("root not selected")
	}
	if !s.ZoneDown(dnswire.MustName("com."), at) {
		t.Error("com. not selected")
	}
	if s.ZoneDown(dnswire.MustName("edu."), at) {
		t.Error("edu. selected over com.")
	}
}

func TestMaxDamageDeterministicTieBreak(t *testing.T) {
	counts := map[dnswire.Name]uint64{
		dnswire.MustName("x.aa."): 5,
		dnswire.MustName("x.bb."): 5,
	}
	a := MaxDamage(epoch, time.Hour, 3, counts)
	b := MaxDamage(epoch, time.Hour, 3, counts)
	for zone := range a[0].Zones {
		if !b[0].Zones[zone] {
			t.Fatalf("tie-break not deterministic: %v vs %v", a[0].Zones, b[0].Zones)
		}
	}
}

func TestMaxDamageBudgetRespected(t *testing.T) {
	counts := map[dnswire.Name]uint64{}
	for _, z := range []string{"a.com.", "b.com.", "c.net.", "d.org.", "e.edu."} {
		counts[dnswire.MustName(z)] = 10
	}
	s := MaxDamage(epoch, time.Hour, 3, counts)
	if got := len(s[0].Zones); got != 3 {
		t.Errorf("selected %d zones, want 3", got)
	}
}
