package experiments

import (
	"fmt"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/core"
	"resilientdns/internal/metrics"
	"resilientdns/internal/sim"
	"resilientdns/internal/workload"
)

// resGaps extracts a run's gap samples (absolute seconds or TTL fraction).
func resGaps(res *sim.Results, frac bool) []float64 {
	if frac {
		return res.GapFrac.Samples()
	}
	return res.GapAbs.Samples()
}

// cdfOf builds a CDF from raw samples.
func cdfOf(samples []float64) *metrics.CDF {
	var c metrics.CDF
	for _, v := range samples {
		c.Add(v)
	}
	return &c
}

// overheadSchemes are Table 2's rows. Renewal policies run in combination
// with refresh, as in the paper's evaluation.
func overheadSchemes() []sim.Scheme {
	combo := sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)})
	combo.Name = "Combination(3d+A-LFU5)"
	return []sim.Scheme{
		sim.Refresh(),
		sim.RefreshRenew(core.LRU{C: 5}),
		sim.RefreshRenew(core.LFU{C: 5, Max: core.DefaultLFUMax(5)}),
		sim.RefreshRenew(core.ALRU{C: 5}),
		sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}),
		{Name: "Long-TTL(7d)+Refresh", RefreshTTL: true},
		combo,
	}
}

// schemeTree maps a Table 2 scheme to the topology it runs on: the
// long-TTL rows use the override trees, everything else the base tree.
func (s *Suite) schemeTree(scheme sim.Scheme) (tag string, ttl time.Duration) {
	switch scheme.Name {
	case "Long-TTL(7d)+Refresh":
		return "ttl168", 7 * 24 * time.Hour
	case "Combination(3d+A-LFU5)":
		return "ttl72", 3 * 24 * time.Hour
	default:
		return "base", 0
	}
}

// Table2 reproduces Table 2: per-scheme message overhead versus vanilla
// DNS (negative = fewer messages) and cache-occupancy multipliers.
func (s *Suite) Table2() (*Table, error) {
	const sample = 2 * time.Hour
	t := &Table{
		ID:      "table2",
		Title:   "Message overhead vs vanilla DNS, and memory (cache occupancy) multipliers",
		Columns: []string{"Scheme", "ΔMessages", "Zones ×", "Records ×"},
	}

	type agg struct{ msgs, zones, records float64 }
	baseline := agg{}
	for _, tr := range s.traces {
		res, err := s.run(s.baseTree, "base", tr, sim.Vanilla(), 0, sample, false)
		if err != nil {
			return nil, err
		}
		baseline.msgs += float64(res.MessagesOut())
		baseline.zones += res.ZoneSeries.MeanValue()
		baseline.records += res.RecordSeries.MeanValue()
	}

	for _, scheme := range overheadSchemes() {
		tag, ttl := s.schemeTree(scheme)
		tree := s.baseTree
		if ttl > 0 {
			var err error
			tree, err = s.longTree(ttl)
			if err != nil {
				return nil, err
			}
		}
		cur := agg{}
		for _, tr := range s.traces {
			res, err := s.run(tree, tag, tr, scheme, 0, sample, false)
			if err != nil {
				return nil, err
			}
			cur.msgs += float64(res.MessagesOut())
			cur.zones += res.ZoneSeries.MeanValue()
			cur.records += res.RecordSeries.MeanValue()
		}
		t.Rows = append(t.Rows, []string{
			scheme.Name,
			fmt.Sprintf("%+.1f%%", 100*(cur.msgs-baseline.msgs)/baseline.msgs),
			fmt.Sprintf("%.2f", cur.zones/baseline.zones),
			fmt.Sprintf("%.2f", cur.records/baseline.records),
		})
	}
	t.Notes = append(t.Notes,
		"adaptive renewal policies cost the most messages (small-TTL zones refetch often)",
		"refresh and long-TTL reduce message counts; the combination stays cheap",
		"occupancy multipliers stay in the 1-3x range (tens of MBs in practice)")
	return t, nil
}

// fig12Schemes are the schemes plotted in Figure 12.
func fig12Schemes() []sim.Scheme {
	combo := sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)})
	combo.Name = "Combination(3d+A-LFU5)"
	return []sim.Scheme{
		sim.Vanilla(),
		sim.RefreshRenew(core.LRU{C: 5}),
		sim.RefreshRenew(core.LFU{C: 5, Max: core.DefaultLFUMax(5)}),
		sim.RefreshRenew(core.ALRU{C: 5}),
		sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}),
		{Name: "Long-TTL(7d)+Refresh", RefreshTTL: true},
		combo,
	}
}

// Fig12 reproduces Figure 12: zones and records cached over time for the
// month-long trace, per scheme.
func (s *Suite) Fig12() (*Table, error) {
	const sample = 2 * time.Hour
	t := &Table{
		ID:      "fig12",
		Title:   "Cache occupancy over one month (TRC6)",
		Columns: []string{"Scheme", "Zones mean", "Zones max", "Records mean", "Records max"},
	}
	for _, scheme := range fig12Schemes() {
		tag, ttl := s.schemeTree(scheme)
		tree := s.baseTree
		if ttl > 0 {
			var err error
			tree, err = s.longTree(ttl)
			if err != nil {
				return nil, err
			}
		}
		res, err := s.run(tree, tag, s.month, scheme, 0, sample, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			scheme.Name,
			fmt.Sprintf("%.0f", res.ZoneSeries.MeanValue()),
			fmt.Sprintf("%.0f", res.ZoneSeries.MaxValue()),
			fmt.Sprintf("%.0f", res.RecordSeries.MeanValue()),
			fmt.Sprintf("%.0f", res.RecordSeries.MaxValue()),
		})
	}
	t.Notes = append(t.Notes, "proposed schemes cache ~2-3x more objects than vanilla DNS")
	return t, nil
}

// AblationChildIRRs shows that TTL refresh depends on child answers
// carrying the zone IRRs: with AttachApexNS disabled at the servers,
// refresh degrades to vanilla behaviour.
func (s *Suite) AblationChildIRRs() (*Table, error) {
	const dur = 6 * time.Hour
	t := &Table{
		ID:      "ablation-childirr",
		Title:   "Refresh with vs without child-carried IRRs (6h attack)",
		Columns: []string{"Trace", "Refresh SR", "Refresh(no child IRRs) SR", "DNS SR"},
	}
	for _, tr := range s.traces {
		withIRR, err := s.runBase(tr, sim.Refresh(), dur)
		if err != nil {
			return nil, err
		}
		scheme := sim.Refresh()
		scheme.Name = "Refresh-noChildIRR"
		without, err := s.run(s.baseTree, "base", tr, scheme, dur, 0, true)
		if err != nil {
			return nil, err
		}
		base, err := s.runBase(tr, sim.Vanilla(), dur)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tr.Label, pct(withIRR.SRFailRate()), pct(without.SRFailRate()), pct(base.SRFailRate()),
		})
	}
	t.Notes = append(t.Notes, "without child-carried IRRs, refresh loses most of its benefit")
	return t, nil
}

// AblationRenewalWithoutRefresh compares renewal alone against
// refresh+renewal: the paper always pairs them, and this shows why.
func (s *Suite) AblationRenewalWithoutRefresh() (*Table, error) {
	const dur = 6 * time.Hour
	t := &Table{
		ID:      "ablation-refresh",
		Title:   "Renewal with vs without TTL refresh (A-LFU 5, 6h attack)",
		Columns: []string{"Trace", "Refresh+Renew SR", "Renew-only SR", "Messages Refresh+Renew", "Messages Renew-only"},
	}
	policy := core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}
	for _, tr := range s.traces {
		both, err := s.runBase(tr, sim.RefreshRenew(policy), dur)
		if err != nil {
			return nil, err
		}
		renewOnly, err := s.runBase(tr, sim.Scheme{Name: "RenewOnly+A-LFU(5)", Renewal: policy}, dur)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tr.Label,
			pct(both.SRFailRate()), pct(renewOnly.SRFailRate()),
			fmt.Sprintf("%d", both.MessagesOut()), fmt.Sprintf("%d", renewOnly.MessagesOut()),
		})
	}
	t.Notes = append(t.Notes,
		"renewal alone already provides most of the resilience but refetches more",
		"refresh piggybacks on demand traffic, renewal pays explicit queries")
	return t, nil
}

// AblationNegativeCache measures the message saving from negative caching,
// which the paper's simulations leave out.
func (s *Suite) AblationNegativeCache() (*Table, error) {
	t := &Table{
		ID:      "ablation-negcache",
		Title:   "Negative caching: message counts (no attack)",
		Columns: []string{"Trace", "Messages (no negcache)", "Messages (1h negcache)"},
	}
	for _, tr := range s.traces {
		off, err := s.runBase(tr, sim.Vanilla(), 0)
		if err != nil {
			return nil, err
		}
		on, err := s.runBase(tr, sim.Scheme{Name: "DNS+negcache", NegativeTTL: time.Hour}, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tr.Label, fmt.Sprintf("%d", off.MessagesOut()), fmt.Sprintf("%d", on.MessagesOut()),
		})
	}
	return t, nil
}

// MaxDamage compares the root+TLD blackout with the greedy maximum-damage
// target selection of §6, at equal zone budgets.
func (s *Suite) MaxDamage() (*Table, error) {
	const dur = 6 * time.Hour
	t := &Table{
		ID:      "maxdamage",
		Title:   "Root+TLD blackout vs greedy max-damage target set (6h, vanilla DNS)",
		Columns: []string{"Trace", "Root+TLD SR", "MaxDamage SR", "Budget"},
	}
	start := s.cfg.Epoch.Add(6 * 24 * time.Hour)
	for _, tr := range s.traces {
		base, err := s.runBase(tr, sim.Vanilla(), dur)
		if err != nil {
			return nil, err
		}
		budget := s.cfg.NumTLDs + 1 // same zone count as root+TLDs
		sched := attack.MaxDamage(start, dur, budget, workload.ZoneQueryCounts(tr))
		res, err := sim.Run(sim.Scenario{
			Tree:   s.baseTree,
			Trace:  tr,
			Attack: sched,
			Scheme: sim.Vanilla(),
			Seed:   s.cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tr.Label, pct(base.SRFailRate()), pct(res.SRFailRate()), fmt.Sprintf("%d", budget),
		})
	}
	t.Notes = append(t.Notes, "the root+TLD attack is close to the greedy maximum-damage attack (§6)")
	return t, nil
}
