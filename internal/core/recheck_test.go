package core

import (
	"testing"
	"time"

	"resilientdns/internal/dnswire"
)

func TestParentRecheckForcesReferral(t *testing.T) {
	f := newFixture(t, Config{
		RefreshTTL:            true,
		ParentRecheckInterval: 2 * time.Hour,
	})
	f.resolveA(t, "www.ucla.edu.")
	// Keep the ucla IRRs refreshed with sub-TTL queries for three hours;
	// without the recheck they would never leave the cache.
	for i := 0; i < 6; i++ {
		f.clock.Advance(30 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	// The last resolution happened past the 2h recheck deadline, so the
	// resolver must have re-visited the edu parent at least once.
	st := f.cs.Stats()
	if st.Referrals < 3 { // root→edu, edu→ucla initially, plus the recheck
		t.Errorf("Referrals = %d, want a parent recheck beyond the initial walk", st.Referrals)
	}
}

func TestParentRecheckDisabledByDefault(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true})
	f.resolveA(t, "www.ucla.edu.")
	base := f.cs.Stats().Referrals
	for i := 0; i < 6; i++ {
		f.clock.Advance(30 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	if got := f.cs.Stats().Referrals; got != base {
		t.Errorf("referrals grew from %d to %d despite refresh keeping IRRs live", base, got)
	}
}

func TestParentRecheckPicksUpNewDelegation(t *testing.T) {
	// Simulate a delegation change: after the CS caches ucla.edu.'s IRRs,
	// the edu parent switches the delegation to new servers. With the
	// recheck, the CS notices within the interval.
	f := newFixture(t, Config{
		RefreshTTL:            true,
		ParentRecheckInterval: time.Hour,
	})
	f.resolveA(t, "www.ucla.edu.")
	e := f.cs.Cache().Peek(dnswire.MustName("ucla.edu."), dnswire.TypeNS)
	if e == nil {
		t.Fatal("ucla IRRs not cached")
	}
	// Two hours later (past the recheck interval), a resolution must go
	// through edu again even though refresh kept the child IRRs alive.
	f.clock.Advance(30 * time.Minute)
	f.resolveA(t, "www.ucla.edu.") // keeps IRRs fresh
	f.clock.Advance(40 * time.Minute)
	before := f.cs.Stats().Referrals
	f.resolveA(t, "www.ucla.edu.")
	if got := f.cs.Stats().Referrals; got == before {
		t.Error("no referral after the recheck interval elapsed")
	}
}
