// Package lockorder_ok is a passing fixture: one consistent order,
// release-before-acquire, sharded self-locks, and the escape hatch.
// Any diagnostic here is a false positive.
package lockorder_ok

import "sync"

var muA, muB sync.Mutex

// Both holders take A before B: a consistent order is not a cycle.
func FirstPath() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

func SecondPath() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// Sequential releases before acquiring: no edge in either direction.
func Sequential() {
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}

// shard models the sharded cache: both sides are the same named lock,
// and sharded containers order their own shards — self-edges skipped.
type shard struct{ mu sync.Mutex }

// Transfer locks two shards of the same container.
func Transfer(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// muInit/muState are taken in both orders only during single-threaded
// startup; both edges are reviewed and say so.
var muInit, muState sync.Mutex

func initFirst() {
	muInit.Lock()
	defer muInit.Unlock()
	muState.Lock() //dnslint:ignore lockorder single-threaded startup order, reviewed
	muState.Unlock()
}

func stateFirst() {
	muState.Lock()
	defer muState.Unlock()
	muInit.Lock() //dnslint:ignore lockorder single-threaded startup order, reviewed
	muInit.Unlock()
}

var _, _ = initFirst, stateFirst
