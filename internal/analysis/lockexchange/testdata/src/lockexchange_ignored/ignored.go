// Package lockexchange_ignored exercises the escape hatch on the
// lockexchange analyzer.
package lockexchange_ignored

import (
	"sync"
	"time"
)

// Calibrate deliberately sleeps under a lock (a test-bench shape) and
// carries its justification.
func Calibrate(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) //dnslint:ignore lockexchange calibration loop, lock protects the whole bench
}

// Unjustified suppressions do not count.
func Unjustified(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	//dnslint:ignore lockexchange
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding mu"
}
