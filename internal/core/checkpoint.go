package core

// Checkpoint surface: the caching server's soft state that the
// persistence subsystem (internal/persist) saves alongside the cache so a
// warm restart resumes where the killed process left off. Two components
// matter beyond the cache itself:
//
//   - renewal credit — without it a restarted server would treat every
//     zone as freshly queried and let IRRs expire mid-attack, exactly the
//     failure persistence exists to prevent;
//   - upstream selection state (per-server RTT estimates, failure counts,
//     quarantine) — without it a restart forgets which servers are dead
//     and burns full timeouts re-learning the blackout.
//
// The in-flight table, negative cache, and parentSeen map are deliberately
// not checkpointed: in-flight work dies with the process, negative answers
// are short-lived by design, and an empty parentSeen only means the next
// resolution re-confirms delegations with the parent — all safe defaults.

import (
	"resilientdns/internal/dnswire"
)

// RenewalCredits returns a copy of the per-zone renewal credit.
func (cs *CachingServer) RenewalCredits() map[dnswire.Name]float64 {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	out := make(map[dnswire.Name]float64, len(cs.credits))
	for z, c := range cs.credits {
		out[z] = c
	}
	return out
}

// RestoreRenewalCredits merges checkpointed credit into the scheduler,
// overwriting any credit already accumulated for the same zones. Non-
// positive credit is dropped rather than stored: it buys no renewals and
// would only bloat the map.
func (cs *CachingServer) RestoreRenewalCredits(credits map[dnswire.Name]float64) {
	cs.renewMu.Lock()
	defer cs.renewMu.Unlock()
	for z, c := range credits {
		if z == "" || c <= 0 {
			continue
		}
		cs.credits[z] = c
	}
}

// RearmRenewals schedules a renewal check for every cached infrastructure
// NS entry. Recovery calls it after restoring the cache: entries restored
// by Restore bypass Put, so nothing else would enqueue their pre-expiry
// checks and restored credit would never be spent. Harmless to call twice
// — the scheduler keeps at most one queue entry per zone.
func (cs *CachingServer) RearmRenewals() {
	if cs.cfg.Renewal == nil {
		return
	}
	for _, ei := range cs.cache.InfraExpiries() {
		cs.scheduleRenewal(ei.Zone, ei.Expires)
	}
}

// UpstreamStates returns a copy of the per-server selection state, sorted
// by address. (UpstreamServerState is resolve.ServerState; see config.go.)
func (cs *CachingServer) UpstreamStates() []UpstreamServerState {
	return cs.resolver.ExportServerStates()
}

// RestoreUpstreamStates rebuilds per-server selection state from a
// checkpoint, overwriting state already accumulated for the same servers.
func (cs *CachingServer) RestoreUpstreamStates(states []UpstreamServerState) {
	cs.resolver.RestoreServerStates(states)
}
