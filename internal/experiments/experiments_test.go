package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"resilientdns/internal/sim"
)

// testConfig is smaller than QuickConfig so the whole test file runs in a
// few seconds.
func testConfig() Config {
	c := QuickConfig()
	c.NumTLDs = 5
	c.SLDsPerTLD = 15
	c.TraceClients = 50
	c.TraceQueries = 5000
	c.MonthQueries = 12000
	return c
}

// suite is shared across tests; memoisation makes later tests cheap.
var sharedSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite == nil {
		s, err := NewSuite(testConfig())
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		sharedSuite = s
	}
	return sharedSuite
}

func TestRegistryCoversAllIDs(t *testing.T) {
	s := getSuite(t)
	reg := s.Registry()
	for _, id := range ExperimentIDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q not in registry", id)
		}
	}
	// Experiments runnable by id but kept out of `-exp all` (and thus out
	// of the frozen results_full.txt). Anything else in the registry must
	// be listed in ExperimentIDs.
	unlisted := map[string]bool{"restart": true, "mesh": true}
	listed := make(map[string]bool, len(ExperimentIDs()))
	for _, id := range ExperimentIDs() {
		listed[id] = true
	}
	for id := range reg {
		if !listed[id] && !unlisted[id] {
			t.Errorf("registry entry %q is neither listed nor documented as unlisted", id)
		}
	}
	if len(reg) != len(ExperimentIDs())+len(unlisted) {
		t.Errorf("registry has %d entries, want %d listed + %d unlisted",
			len(reg), len(ExperimentIDs()), len(unlisted))
	}
}

func TestRestartExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("restart experiment replays three full traces")
	}
	s := getSuite(t)
	tbl, err := s.Restart()
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("restart rows = %d, want 3", len(tbl.Rows))
	}
	coldDefended := parsePct(t, tbl.Rows[1][2]) // post-restart, defended cold
	warm := parsePct(t, tbl.Rows[2][2])         // post-restart, defended warm
	if warm >= coldDefended {
		t.Errorf("warm restart (%.3f) not better than cold restart (%.3f)", warm, coldDefended)
	}
	if warm > 0.10 {
		t.Errorf("warm restart failure rate %.3f, want near the defended baseline", warm)
	}
	var replayed float64
	if _, err := sscanFloat(tbl.Rows[2][3], &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Error("warm restart replayed no entries")
	}
}

func TestMeshExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh experiment replays three fleet variants")
	}
	s := getSuite(t)
	tbl, err := s.Mesh()
	if err != nil {
		t.Fatalf("Mesh: %v", err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("mesh rows = %d, want 3", len(tbl.Rows))
	}
	soloFail := parsePct(t, tbl.Rows[0][1])
	noMeshFail := parsePct(t, tbl.Rows[1][1])
	meshFail := parsePct(t, tbl.Rows[2][1])
	var noMeshRenewals, meshRenewals, meshDeferred float64
	if _, err := sscanFloat(tbl.Rows[1][2], &noMeshRenewals); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanFloat(tbl.Rows[2][2], &meshRenewals); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanFloat(tbl.Rows[2][3], &meshDeferred); err != nil {
		t.Fatal(err)
	}
	// The fleet claims under test: ownership dedup collapses aggregate
	// renewal traffic at least 2x below the independent fleet, and gossip
	// keeps the mesh fleet's failure rate at or below both baselines.
	if meshRenewals*2 > noMeshRenewals {
		t.Errorf("mesh renewals %v not >=2x below no-mesh %v", meshRenewals, noMeshRenewals)
	}
	if meshFail > noMeshFail {
		t.Errorf("mesh fail %.3f%% worse than no-mesh fleet %.3f%%", meshFail, noMeshFail)
	}
	if meshFail > soloFail {
		t.Errorf("mesh fail %.3f%% worse than solo instance %.3f%%", meshFail, soloFail)
	}
	if meshDeferred == 0 {
		t.Error("mesh fleet deferred no renewals: ownership dedup never engaged")
	}
}

func TestRunUnknownID(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("fig99"); err == nil {
		t.Error("Run(fig99) succeeded")
	}
}

func TestTable1Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table1 rows = %d, want 6 (TRC1-TRC6)", len(tbl.Rows))
	}
	if tbl.Rows[5][0] != "TRC6" || tbl.Rows[5][1] != "30 days" {
		t.Errorf("TRC6 row = %v", tbl.Rows[5])
	}
	out := tbl.String()
	if !strings.Contains(out, "Requests In") {
		t.Errorf("rendered table missing header: %q", out)
	}
}

func TestFig3GapMostlyUnderFiveDays(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	// Find the "gap (days) 5.00" row: the paper's headline observation is
	// that almost all gaps are under five days.
	for _, row := range tbl.Rows {
		if row[0] == "gap (days)" && row[1] == "5.00" {
			val := strings.TrimSuffix(row[2], "%")
			if !strings.HasPrefix(val, "9") {
				t.Errorf("P(gap <= 5d) = %s%%, want > 90%%", val)
			}
			return
		}
	}
	t.Fatal("5-day row not found")
}

// parsePct converts a "12.34%" cell back to a fraction.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", cell, err)
	}
	return v / 100
}

// sscanFloat parses a numeric cell that may carry a trailing "%".
func sscanFloat(cell string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "%"), 64)
	*v = f
	return 1, err
}

func TestFig4FailureGrowsWithDuration(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig4()
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("Fig4 rows = %d, want 5", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		sr3 := parsePct(t, row[1])
		sr24 := parsePct(t, row[4])
		if sr24 <= sr3 {
			t.Errorf("%s: SR failures did not grow with duration (%v -> %v)", row[0], sr3, sr24)
		}
		cs6 := parsePct(t, row[6])
		sr6 := parsePct(t, row[2])
		if cs6 <= sr6 {
			t.Errorf("%s: CS rate %v not above SR rate %v", row[0], cs6, sr6)
		}
	}
}

func TestFig5RefreshBeatsVanilla(t *testing.T) {
	s := getSuite(t)
	fig4, err := s.Fig4()
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	fig5, err := s.Fig5()
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	better := 0
	for i := range fig4.Rows {
		for col := 1; col <= 8; col++ {
			v4 := parsePct(t, fig4.Rows[i][col])
			v5 := parsePct(t, fig5.Rows[i][col])
			if v5 < v4 {
				better++
			}
		}
	}
	// Refresh must win in the vast majority of (trace, duration) cells.
	if better < 30 {
		t.Errorf("refresh better in only %d/40 cells", better)
	}
}

func TestFig9OrderOfMagnitude(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig9()
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	for _, row := range tbl.Rows {
		dns := parsePct(t, row[1])
		alfu5 := parsePct(t, row[7]) // c=5 SR
		if alfu5 > dns/3 {
			t.Errorf("%s: A-LFU(5) SR %.4f not well below DNS %.4f", row[0], alfu5, dns)
		}
	}
}

func TestFig10LongTTLSaturates(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig10()
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	for _, row := range tbl.Rows {
		d5 := parsePct(t, row[7]) // 5d SR
		d7 := parsePct(t, row[9]) // 7d SR
		if d7 > d5+0.02 {
			t.Errorf("%s: 7d (%v) much worse than 5d (%v)?", row[0], d7, d5)
		}
		dns := parsePct(t, row[1])
		if d7 > dns/2 {
			t.Errorf("%s: long-TTL 7d (%v) not well below DNS (%v)", row[0], d7, dns)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	cells := map[string][]string{}
	for _, row := range tbl.Rows {
		cells[row[0]] = row
	}
	// Refresh reduces messages.
	if !strings.HasPrefix(cells["Refresh"][1], "-") {
		t.Errorf("Refresh ΔMessages = %s, want negative", cells["Refresh"][1])
	}
	// Long-TTL reduces messages.
	if !strings.HasPrefix(cells["Long-TTL(7d)+Refresh"][1], "-") {
		t.Errorf("Long-TTL ΔMessages = %s, want negative", cells["Long-TTL(7d)+Refresh"][1])
	}
	// Combination reduces messages.
	if !strings.HasPrefix(cells["Combination(3d+A-LFU5)"][1], "-") {
		t.Errorf("Combination ΔMessages = %s, want negative", cells["Combination(3d+A-LFU5)"][1])
	}
	// Adaptive policies cost more than non-adaptive.
	var lru, alru float64
	if _, err := sscanFloat(strings.TrimPrefix(cells["Refresh+LRU(5)"][1], "+"), &lru); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanFloat(strings.TrimPrefix(cells["Refresh+A-LRU(5)"][1], "+"), &alru); err != nil {
		t.Fatal(err)
	}
	if alru <= lru {
		t.Errorf("A-LRU overhead %v not above LRU %v", alru, lru)
	}
}

func TestFig12OccupancyMultiplier(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig12()
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	var dnsZones, alfuZones float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "DNS":
			if _, err := sscanFloat(row[1], &dnsZones); err != nil {
				t.Fatal(err)
			}
		case "Refresh+A-LFU(5)":
			if _, err := sscanFloat(row[1], &alfuZones); err != nil {
				t.Fatal(err)
			}
		}
	}
	if dnsZones == 0 || alfuZones == 0 {
		t.Fatalf("rows missing: %v", tbl.Rows)
	}
	mult := alfuZones / dnsZones
	if mult < 1.2 || mult > 5 {
		t.Errorf("occupancy multiplier = %.2f, want ~2-3x", mult)
	}
}

func TestAblationChildIRR(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.AblationChildIRRs()
	if err != nil {
		t.Fatalf("AblationChildIRRs: %v", err)
	}
	worse := 0
	for _, row := range tbl.Rows {
		with := parsePct(t, row[1])
		without := parsePct(t, row[2])
		if without > with {
			worse++
		}
	}
	if worse < 4 {
		t.Errorf("disabling child IRRs hurt only %d/5 traces", worse)
	}
}

func TestMemoisationReturnsSameResults(t *testing.T) {
	s := getSuite(t)
	a, err := s.runBase(s.traces[0], sim.Vanilla(), 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.runBase(s.traces[0], sim.Vanilla(), 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoisation did not return the cached result pointer")
	}
}

func TestDNSSECExperimentShape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.DNSSECExtension()
	if err != nil {
		t.Fatalf("DNSSECExtension: %v", err)
	}
	for _, row := range tbl.Rows {
		signedDNS := parsePct(t, row[2])
		signedALFU := parsePct(t, row[4])
		if signedALFU > signedDNS/2 {
			t.Errorf("%s: signed A-LFU %.3f not well below signed DNS %.3f",
				row[0], signedALFU, signedDNS)
		}
	}
}

func TestPartitionExperimentShape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Partition()
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for _, row := range tbl.Rows {
		var m1, m8 float64
		if _, err := sscanFloat(row[2], &m1); err != nil {
			t.Fatal(err)
		}
		if _, err := sscanFloat(row[8], &m8); err != nil {
			t.Fatal(err)
		}
		if m8 <= m1 {
			t.Errorf("%s: 8-way split sent %v messages vs %v shared", row[0], m8, m1)
		}
	}
}
