// Package zone implements authoritative DNS zone data: an RRset store with
// delegation-aware lookup semantics (answers, referrals with glue,
// NXDOMAIN, NODATA, CNAME indirection) and a master-file parser and
// serializer. It is the data substrate under the authoritative server.
package zone

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"resilientdns/internal/dnswire"
)

// Key identifies an RRset inside a zone.
type Key struct {
	Name dnswire.Name
	Type dnswire.Type
}

// Zone holds the authoritative data of one DNS zone. It is not safe for
// concurrent mutation; build it fully, then share it read-only.
type Zone struct {
	origin dnswire.Name

	rrsets map[Key][]dnswire.RR
	// names holds every owner name in the zone plus all empty
	// non-terminals, for NXDOMAIN vs NODATA decisions.
	names map[dnswire.Name]bool
	// cuts holds the owner names of delegation points (NS below apex).
	cuts map[dnswire.Name]bool
}

// New returns an empty zone rooted at origin.
func New(origin dnswire.Name) *Zone {
	return &Zone{
		origin: origin,
		rrsets: make(map[Key][]dnswire.RR),
		names:  make(map[dnswire.Name]bool),
		cuts:   make(map[dnswire.Name]bool),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() dnswire.Name { return z.origin }

// ErrOutOfZone reports an attempt to add a record whose owner name does
// not fall under the zone origin.
var ErrOutOfZone = errors.New("zone: record out of zone")

// Add inserts one record. Records below a delegation cut are allowed only
// as glue (A/AAAA). Duplicate records (same owner, type, and data string)
// are ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	if rr.Data == nil {
		return errors.New("zone: record with nil data")
	}
	if !rr.Name.IsSubdomainOf(z.origin) {
		return fmt.Errorf("%w: %s not under %s", ErrOutOfZone, rr.Name, z.origin)
	}
	k := Key{Name: rr.Name, Type: rr.Type()}
	for _, have := range z.rrsets[k] {
		if have.Data.String() == rr.Data.String() {
			return nil
		}
	}
	z.rrsets[k] = append(z.rrsets[k], rr)
	if rr.Type() == dnswire.TypeNS && rr.Name != z.origin {
		z.cuts[rr.Name] = true
	}
	// Register the owner and every empty non-terminal up to the origin.
	for n := rr.Name; ; n = n.Parent() {
		z.names[n] = true
		if n == z.origin || n.IsRoot() {
			break
		}
	}
	return nil
}

// MustAdd is Add for test and generator code; it panics on error.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// RRSet returns a copy of the RRset for (name, type), or nil.
func (z *Zone) RRSet(name dnswire.Name, t dnswire.Type) []dnswire.RR {
	set := z.rrsets[Key{Name: name, Type: t}]
	if len(set) == 0 {
		return nil
	}
	return append([]dnswire.RR(nil), set...)
}

// SOA returns the zone's SOA record, if present.
func (z *Zone) SOA() (dnswire.RR, bool) {
	set := z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]
	if len(set) == 0 {
		return dnswire.RR{}, false
	}
	return set[0], true
}

// ApexNS returns the zone's own NS RRset.
func (z *Zone) ApexNS() []dnswire.RR {
	return z.RRSet(z.origin, dnswire.TypeNS)
}

// Delegations returns the owner names of all delegation points, sorted.
func (z *Zone) Delegations() []dnswire.Name {
	out := make([]dnswire.Name, 0, len(z.cuts))
	for n := range z.cuts {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordCount returns the total number of records in the zone.
func (z *Zone) RecordCount() int {
	n := 0
	for _, set := range z.rrsets {
		n += len(set)
	}
	return n
}

// Records returns all records in deterministic order (by name, type, data).
func (z *Zone) Records() []dnswire.RR {
	keys := make([]Key, 0, len(z.rrsets))
	for k := range z.rrsets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Type < keys[j].Type
	})
	var out []dnswire.RR
	for _, k := range keys {
		set := append([]dnswire.RR(nil), z.rrsets[k]...)
		sort.Slice(set, func(i, j int) bool { return set[i].Data.String() < set[j].Data.String() })
		out = append(out, set...)
	}
	return out
}

// ResultType classifies the outcome of a zone lookup.
type ResultType int

// Lookup outcomes.
const (
	// NotInZone: the query name is not under this zone's origin.
	NotInZone ResultType = iota
	// Answer: authoritative data for (name, type) was found.
	Answer
	// Referral: the name falls under a delegation; follow the NS records.
	Referral
	// CNAMEIndirection: the name owns a CNAME; chase the target.
	CNAMEIndirection
	// NXDomain: the name does not exist in this zone.
	NXDomain
	// NoData: the name exists but has no records of the queried type.
	NoData
)

// String returns the mnemonic for t.
func (t ResultType) String() string {
	switch t {
	case NotInZone:
		return "NotInZone"
	case Answer:
		return "Answer"
	case Referral:
		return "Referral"
	case CNAMEIndirection:
		return "CNAME"
	case NXDomain:
		return "NXDOMAIN"
	case NoData:
		return "NODATA"
	default:
		return fmt.Sprintf("ResultType(%d)", int(t))
	}
}

// Result is the outcome of a zone lookup.
type Result struct {
	Type ResultType
	// Records: the answer RRset (Answer), the CNAME record
	// (CNAMEIndirection), or the delegation NS set (Referral).
	Records []dnswire.RR
	// Glue holds A/AAAA records for the delegation's name servers
	// (Referral only).
	Glue []dnswire.RR
	// SOA carries the zone SOA for negative answers, when present.
	SOA []dnswire.RR
}

// Lookup resolves (qname, qtype) against the zone's authoritative data.
func (z *Zone) Lookup(qname dnswire.Name, qtype dnswire.Type) Result {
	if !qname.IsSubdomainOf(z.origin) {
		return Result{Type: NotInZone}
	}

	// DS queries are special: the parent side is authoritative for the DS
	// RRset at its delegation points (RFC 4035 §3.1.4.1).
	if qtype == dnswire.TypeDS && z.cuts[qname] {
		if set := z.rrsets[Key{Name: qname, Type: dnswire.TypeDS}]; len(set) > 0 {
			return Result{Type: Answer, Records: append([]dnswire.RR(nil), set...)}
		}
		return Result{Type: NoData, SOA: z.soaSet()}
	}

	// Find the highest delegation cut at or above qname (but below the
	// apex). Data below a cut belongs to the child zone.
	if cut, ok := z.cutFor(qname); ok {
		ns := z.rrsets[Key{Name: cut, Type: dnswire.TypeNS}]
		return Result{
			Type:    Referral,
			Records: append([]dnswire.RR(nil), ns...),
			Glue:    z.glueFor(ns),
		}
	}

	// CNAME indirection applies unless the query asks for the CNAME itself.
	if qtype != dnswire.TypeCNAME && qtype != dnswire.TypeANY {
		if cname := z.rrsets[Key{Name: qname, Type: dnswire.TypeCNAME}]; len(cname) > 0 {
			return Result{Type: CNAMEIndirection, Records: append([]dnswire.RR(nil), cname...)}
		}
	}

	if qtype == dnswire.TypeANY {
		var all []dnswire.RR
		for k, set := range z.rrsets {
			if k.Name == qname {
				all = append(all, set...)
			}
		}
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool {
				if all[i].Type() != all[j].Type() {
					return all[i].Type() < all[j].Type()
				}
				return all[i].Data.String() < all[j].Data.String()
			})
			return Result{Type: Answer, Records: all}
		}
	} else if set := z.rrsets[Key{Name: qname, Type: qtype}]; len(set) > 0 {
		return Result{Type: Answer, Records: append([]dnswire.RR(nil), set...)}
	}

	if z.names[qname] {
		return Result{Type: NoData, SOA: z.soaSet()}
	}
	// A query below an existing name that has children is still NXDOMAIN
	// unless some descendant exists (empty non-terminal handling is via
	// the names set, so reaching here means the name truly is absent).
	return Result{Type: NXDomain, SOA: z.soaSet()}
}

// cutFor returns the delegation cut that covers qname, if any. A cut
// covers every name at or below it, except that a lookup for the cut's NS
// RRset itself is still a referral (the parent side is non-authoritative).
func (z *Zone) cutFor(qname dnswire.Name) (dnswire.Name, bool) {
	// Walk from just below the apex down to qname so the highest cut wins.
	anc := qname.Ancestors() // qname ... origin ... root
	for i := len(anc) - 1; i >= 0; i-- {
		n := anc[i]
		if !n.IsSubdomainOf(z.origin) || n == z.origin {
			continue
		}
		if z.cuts[n] {
			return n, true
		}
	}
	return "", false
}

func (z *Zone) glueFor(ns []dnswire.RR) []dnswire.RR {
	var glue []dnswire.RR
	for _, rr := range ns {
		host := rr.Data.(dnswire.NS).Host
		glue = append(glue, z.rrsets[Key{Name: host, Type: dnswire.TypeA}]...)
		glue = append(glue, z.rrsets[Key{Name: host, Type: dnswire.TypeAAAA}]...)
	}
	return glue
}

func (z *Zone) soaSet() []dnswire.RR {
	return append([]dnswire.RR(nil), z.rrsets[Key{Name: z.origin, Type: dnswire.TypeSOA}]...)
}

// Validate performs basic consistency checks: the apex must have an NS
// RRset, every delegation NS host under the zone cut must have glue, and a
// CNAME owner must not own other data.
func (z *Zone) Validate() error {
	if len(z.ApexNS()) == 0 {
		return fmt.Errorf("zone %s: no NS records at apex", z.origin)
	}
	for cut := range z.cuts {
		for _, rr := range z.rrsets[Key{Name: cut, Type: dnswire.TypeNS}] {
			host := rr.Data.(dnswire.NS).Host
			if !host.IsSubdomainOf(cut) {
				continue // out-of-bailiwick server needs no glue
			}
			if len(z.rrsets[Key{Name: host, Type: dnswire.TypeA}]) == 0 &&
				len(z.rrsets[Key{Name: host, Type: dnswire.TypeAAAA}]) == 0 {
				return fmt.Errorf("zone %s: delegation %s lacks glue for %s", z.origin, cut, host)
			}
		}
	}
	for k := range z.rrsets {
		if k.Type == dnswire.TypeCNAME {
			for other := range z.rrsets {
				if other.Name == k.Name && other.Type != dnswire.TypeCNAME &&
					other.Type != dnswire.TypeRRSIG {
					// RRSIG legitimately coexists with CNAME (RFC 4035).
					return fmt.Errorf("zone %s: CNAME %s coexists with %s data", z.origin, k.Name, other.Type)
				}
			}
		}
	}
	return nil
}

// String renders the zone in master-file format.
func (z *Zone) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "$ORIGIN %s\n", z.origin)
	for _, rr := range z.Records() {
		fmt.Fprintf(&b, "%s\n", rr)
	}
	return b.String()
}
