// Package maporder_ok is a passing fixture: the collect-then-sort
// idiom and other order-insensitive map loops.
package maporder_ok

import (
	"fmt"
	"io"
	"sort"
)

// PrintSorted collects keys, sorts, then emits: the blessed idiom.
func PrintSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}

// Total only aggregates; order cannot matter.
func Total(counts map[string]int) int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}

// Invert builds another map; order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Audited emits in map order with a visible justification.
func Audited(w io.Writer, m map[string]int) {
	for k := range m { //dnslint:ignore maporder debug dump, never diffed or persisted
		fmt.Fprintln(w, k)
	}
}
