// Package metrics provides the small statistics toolkit used by the
// evaluation harness: empirical CDFs, counters, and time series, matching
// the measurements reported in the paper (failed-query percentages, gap
// CDFs, and cache-occupancy series).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// CDF is an empirical cumulative distribution function over float64
// samples. The zero value is an empty distribution ready for Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddDuration appends a duration sample, in seconds.
func (c *CDF) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X ≤ v), in [0, 1]. An empty CDF returns 0.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	idx := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (q in [0, 1]) of the samples, using
// the nearest-rank method. An empty CDF returns NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Mean returns the arithmetic mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Max returns the largest sample, or NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Points returns n evenly spaced (value, cumulative-fraction) points
// suitable for plotting the CDF, from the minimum to the maximum sample.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	lo, hi := c.samples[0], c.samples[len(c.samples)-1]
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		var v float64
		if n == 1 {
			v = hi
		} else {
			v = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		pts = append(pts, Point{X: v, Y: c.At(v)})
	}
	return pts
}

// Samples returns a copy of the raw samples.
func (c *CDF) Samples() []float64 {
	return append([]float64(nil), c.samples...)
}

// Point is a 2-D plot point.
type Point struct {
	X, Y float64
}

// RTTEstimator maintains a smoothed round-trip-time estimate with variance
// per RFC 6298 (Jacobson/Karels): the first sample sets SRTT = R and
// RTTVAR = R/2; each later sample folds in as RTTVAR = 3/4·RTTVAR +
// 1/4·|SRTT − R|, then SRTT = 7/8·SRTT + 1/8·R. The zero value has no
// samples. The estimator is a plain value type; callers provide their own
// locking and clamp RTO into whatever band suits their protocol.
type RTTEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	n      uint64
}

// Observe folds one round-trip sample into the estimate.
func (r *RTTEstimator) Observe(sample time.Duration) {
	if sample < 0 {
		sample = 0
	}
	if r.n == 0 {
		r.srtt = sample
		r.rttvar = sample / 2
	} else {
		diff := r.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		r.rttvar = (3*r.rttvar + diff) / 4
		r.srtt = (7*r.srtt + sample) / 8
	}
	r.n++
}

// Samples returns how many observations have been folded in.
func (r *RTTEstimator) Samples() uint64 { return r.n }

// SRTT returns the smoothed round-trip time (0 before any sample).
func (r *RTTEstimator) SRTT() time.Duration { return r.srtt }

// RTTVar returns the smoothed round-trip variance (0 before any sample).
func (r *RTTEstimator) RTTVar() time.Duration { return r.rttvar }

// RTO returns the retransmission timeout SRTT + 4·RTTVAR, or 0 when no
// sample has been observed yet.
func (r *RTTEstimator) RTO() time.Duration {
	if r.n == 0 {
		return 0
	}
	return r.srtt + 4*r.rttvar
}

// RestoreRTTEstimator rebuilds an estimator from persisted state, so a
// restarted server's upstream selection resumes with the RTT history it
// had accumulated. Negative durations clamp to zero; samples == 0 yields
// the zero (no-history) estimator regardless of the durations.
func RestoreRTTEstimator(srtt, rttvar time.Duration, samples uint64) RTTEstimator {
	if samples == 0 {
		return RTTEstimator{}
	}
	if srtt < 0 {
		srtt = 0
	}
	if rttvar < 0 {
		rttvar = 0
	}
	return RTTEstimator{srtt: srtt, rttvar: rttvar, n: samples}
}

// Counter is a monotone event counter with a convenience rate helper.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Ratio returns c/total as a fraction in [0, 1]; 0 when total is zero.
func Ratio(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// Percent returns 100·part/total; 0 when total is zero.
func Percent(part, total uint64) float64 { return 100 * Ratio(part, total) }

// Series is a time series of float64 samples, used for cache-occupancy
// plots (paper Fig 12).
type Series struct {
	Name    string
	Times   []time.Time
	Values  []float64
	maxKeep int
}

// NewSeries returns a named series. maxKeep bounds the number of retained
// points (0 means unbounded); when exceeded, the series is decimated by
// dropping every other point, preserving overall shape.
func NewSeries(name string, maxKeep int) *Series {
	return &Series{Name: name, maxKeep: maxKeep}
}

// Append records a sample at time t.
func (s *Series) Append(t time.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
	if s.maxKeep > 0 && len(s.Values) > s.maxKeep {
		s.decimate()
	}
}

func (s *Series) decimate() {
	j := 0
	for i := 0; i < len(s.Values); i += 2 {
		s.Times[j] = s.Times[i]
		s.Values[j] = s.Values[i]
		j++
	}
	s.Times = s.Times[:j]
	s.Values = s.Values[:j]
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.Values) }

// MeanValue returns the mean of the retained values, or NaN when empty.
func (s *Series) MeanValue() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// MaxValue returns the maximum retained value, or NaN when empty.
func (s *Series) MaxValue() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	max := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// FormatPercent renders a fraction as a fixed-width percentage string for
// experiment tables.
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%6.2f%%", 100*frac)
}

// PersistCounters counts the persistence subsystem's activity: snapshots
// written, journal growth between snapshots, and recovery outcomes. All
// fields are atomic, so the journal hook can bump them from inside cache
// shard locks without extra synchronisation. Use Snapshot to read a
// consistent-enough copy for reporting.
type PersistCounters struct {
	// Snapshots counts completed snapshot writes; SnapshotRecords and
	// SnapshotBytes accumulate their record counts and on-disk sizes.
	Snapshots       atomic.Uint64
	SnapshotRecords atomic.Uint64
	SnapshotBytes   atomic.Uint64
	// JournalRecords / JournalBytes accumulate appended journal deltas
	// (across rotations; compaction does not reset them).
	JournalRecords atomic.Uint64
	JournalBytes   atomic.Uint64
	// Recoveries counts startup replays; ReplayedRecords the entries a
	// recovery restored live (or stale); DroppedRecords the records a
	// recovery discarded (expired, corrupt, truncated, or superseded).
	Recoveries      atomic.Uint64
	ReplayedRecords atomic.Uint64
	DroppedRecords  atomic.Uint64
	// RecoveryNanos accumulates wall-clock recovery latency.
	RecoveryNanos atomic.Uint64
}

// PersistStats is a plain-value snapshot of PersistCounters.
type PersistStats struct {
	Snapshots       uint64
	SnapshotRecords uint64
	SnapshotBytes   uint64
	JournalRecords  uint64
	JournalBytes    uint64
	Recoveries      uint64
	ReplayedRecords uint64
	DroppedRecords  uint64
	RecoveryLatency time.Duration
}

// Snapshot reads every counter into an exported PersistStats value.
func (p *PersistCounters) Snapshot() PersistStats {
	return PersistStats{
		Snapshots:       p.Snapshots.Load(),
		SnapshotRecords: p.SnapshotRecords.Load(),
		SnapshotBytes:   p.SnapshotBytes.Load(),
		JournalRecords:  p.JournalRecords.Load(),
		JournalBytes:    p.JournalBytes.Load(),
		Recoveries:      p.Recoveries.Load(),
		ReplayedRecords: p.ReplayedRecords.Load(),
		DroppedRecords:  p.DroppedRecords.Load(),
		RecoveryLatency: time.Duration(p.RecoveryNanos.Load()),
	}
}

// GuardCounters counts the client-facing guard layer's decisions: what
// the per-client rate limiter and the overload admission control did with
// incoming queries. All fields are atomic so the UDP read loop and the
// per-query goroutines can bump them without extra synchronisation. Use
// Snapshot to read a consistent-enough copy for reporting.
type GuardCounters struct {
	// Allowed counts queries the rate limiter passed through.
	Allowed atomic.Uint64
	// RateLimited counts queries a client's exhausted token bucket
	// dropped (silently, apart from slips).
	RateLimited atomic.Uint64
	// Slips counts rate-limited queries answered with a minimal TC=1
	// reply instead of dropped (RRL slip), steering real clients behind
	// a hot address to TCP.
	Slips atomic.Uint64
	// Shed counts queries dropped because the server's inflight capacity
	// was saturated and no degraded mode could answer them.
	Shed atomic.Uint64
	// CacheOnly counts saturated-inflight queries served in the cache/
	// stale-only degraded mode instead of shed.
	CacheOnly atomic.Uint64
	// CacheOnlyMiss counts degraded-mode queries nothing cached could
	// answer (refused with SERVFAIL).
	CacheOnlyMiss atomic.Uint64
	// FormErr counts malformed packets answered with FORMERR (header
	// parsed, rest did not).
	FormErr atomic.Uint64
	// ClientsEvicted counts rate-limiter client slots recycled at the
	// memory bound (LRU eviction).
	ClientsEvicted atomic.Uint64
	// PeerExempt counts queries from handshake-confirmed mesh peers
	// passed through without charging a token bucket (a cooperating
	// fleet member must never be rate-limited or slipped a TC=1).
	PeerExempt atomic.Uint64
}

// GuardStats is a plain-value snapshot of GuardCounters.
type GuardStats struct {
	Allowed        uint64 `json:"allowed"`
	RateLimited    uint64 `json:"rate_limited"`
	Slips          uint64 `json:"slips"`
	Shed           uint64 `json:"shed"`
	CacheOnly      uint64 `json:"cache_only"`
	CacheOnlyMiss  uint64 `json:"cache_only_miss"`
	FormErr        uint64 `json:"form_err"`
	ClientsEvicted uint64 `json:"clients_evicted"`
	PeerExempt     uint64 `json:"peer_exempt"`
}

// Snapshot reads every counter into an exported GuardStats value.
func (g *GuardCounters) Snapshot() GuardStats {
	return GuardStats{
		Allowed:        g.Allowed.Load(),
		RateLimited:    g.RateLimited.Load(),
		Slips:          g.Slips.Load(),
		Shed:           g.Shed.Load(),
		CacheOnly:      g.CacheOnly.Load(),
		CacheOnlyMiss:  g.CacheOnlyMiss.Load(),
		FormErr:        g.FormErr.Load(),
		ClientsEvicted: g.ClientsEvicted.Load(),
		PeerExempt:     g.PeerExempt.Load(),
	}
}

// MeshCounters counts the cooperative-mesh subsystem's traffic: frame
// authentication and handshake outcomes, membership probes, IRR gossip,
// and peer-fetch fallbacks. All fields are atomic; the transport read
// loop, the probe ticker, and per-query peer fetches bump them
// concurrently.
type MeshCounters struct {
	// FramesIn counts datagrams received on the mesh port.
	FramesIn atomic.Uint64
	// FramesBadMAC counts datagrams dropped for failing decode or HMAC
	// verification (noise, wrong key, or forgery attempts).
	FramesBadMAC atomic.Uint64
	// FramesUnconfirmed counts authenticated requests from sources that
	// had not completed the cookie handshake (answered only with a
	// challenge, never acted on).
	FramesUnconfirmed atomic.Uint64
	// ChallengesSent counts cookie challenges issued.
	ChallengesSent atomic.Uint64
	// PingsSent counts membership probes initiated.
	PingsSent atomic.Uint64
	// PingFailures counts probes that timed out or failed.
	PingFailures atomic.Uint64
	// IRRPushesSent counts IRR sets gossiped to peers after renewals.
	IRRPushesSent atomic.Uint64
	// IRRPushesReceived counts IRR pushes arriving from peers.
	IRRPushesReceived atomic.Uint64
	// IRRIngested counts received pushes accepted by the validated
	// ingest path (the rest failed validation and were dropped).
	IRRIngested atomic.Uint64
	// FetchesSent counts peer-fetch fallbacks initiated when local
	// resolution had failed.
	FetchesSent atomic.Uint64
	// FetchHits counts peer fetches that returned a usable answer.
	FetchHits atomic.Uint64
	// FetchesServed counts peer-fetch requests this node answered from
	// its own cache or stale data.
	FetchesServed atomic.Uint64
}

// MeshStats is a plain-value snapshot of MeshCounters.
type MeshStats struct {
	FramesIn          uint64 `json:"frames_in"`
	FramesBadMAC      uint64 `json:"frames_bad_mac"`
	FramesUnconfirmed uint64 `json:"frames_unconfirmed"`
	ChallengesSent    uint64 `json:"challenges_sent"`
	PingsSent         uint64 `json:"pings_sent"`
	PingFailures      uint64 `json:"ping_failures"`
	IRRPushesSent     uint64 `json:"irr_pushes_sent"`
	IRRPushesReceived uint64 `json:"irr_pushes_received"`
	IRRIngested       uint64 `json:"irr_ingested"`
	FetchesSent       uint64 `json:"fetches_sent"`
	FetchHits         uint64 `json:"fetch_hits"`
	FetchesServed     uint64 `json:"fetches_served"`
}

// Snapshot reads every counter into an exported MeshStats value.
func (m *MeshCounters) Snapshot() MeshStats {
	return MeshStats{
		FramesIn:          m.FramesIn.Load(),
		FramesBadMAC:      m.FramesBadMAC.Load(),
		FramesUnconfirmed: m.FramesUnconfirmed.Load(),
		ChallengesSent:    m.ChallengesSent.Load(),
		PingsSent:         m.PingsSent.Load(),
		PingFailures:      m.PingFailures.Load(),
		IRRPushesSent:     m.IRRPushesSent.Load(),
		IRRPushesReceived: m.IRRPushesReceived.Load(),
		IRRIngested:       m.IRRIngested.Load(),
		FetchesSent:       m.FetchesSent.Load(),
		FetchHits:         m.FetchHits.Load(),
		FetchesServed:     m.FetchesServed.Load(),
	}
}
