package core

import "sync/atomic"

// Stats counts a caching server's activity. Counters are cumulative;
// subtract two snapshots to measure an interval. Frontend counters
// (queries in, coalescing, renewal cycles) are kept here; the upstream
// counters come from the resolve pipeline and are merged in Stats().
type Stats struct {
	// QueriesIn counts Resolve calls (stub-resolver queries).
	QueriesIn uint64
	// Resolved counts Resolve calls that produced an answer, including
	// authoritative negative answers.
	Resolved uint64
	// Failed counts Resolve calls that failed (servers unreachable).
	Failed uint64
	// CacheAnswered counts Resolve calls served entirely from cache.
	CacheAnswered uint64
	// Coalesced counts Resolve calls that joined another in-flight
	// resolution of the same (name, type) instead of resolving
	// themselves.
	Coalesced uint64

	// QueriesOut counts queries sent to authoritative servers, renewal
	// refetches included.
	QueriesOut uint64
	// QueriesOutFailed counts those that timed out or were unreachable.
	QueriesOutFailed uint64

	// RenewalQueries counts refetches issued by the renewal scheduler.
	RenewalQueries uint64
	// RenewalFailed counts renewal refetches that failed entirely.
	RenewalFailed uint64
	// Renewals counts successful renew cycles.
	Renewals uint64
	// RenewalDeferred counts due renewals skipped because another fleet
	// member owns the zone's renewal duty (mesh owner-renewal dedup).
	RenewalDeferred uint64

	// Referrals counts referral responses followed.
	Referrals uint64
	// StaleAnswers counts expired records served under ServeStale.
	StaleAnswers uint64
	// PrefetchQueries counts early refreshes issued by Prefetch.
	PrefetchQueries uint64

	// Retries counts upstream failover attempts beyond the first within a
	// single zone query or renewal refetch.
	Retries uint64
	// QuarantineSkips counts quarantined servers deprioritized behind a
	// healthy one during upstream selection.
	QuarantineSkips uint64
	// BudgetExhausted counts failover loops cut short because the
	// resolution spent its upstream retry budget.
	BudgetExhausted uint64

	// GlueFetches counts out-of-bailiwick name-server address
	// resolutions charged against the per-query glue budget;
	// GlueBudgetExhausted the resolutions skipped once a query's budget
	// ran out (the NXNS-style fanout bound).
	GlueFetches         uint64
	GlueBudgetExhausted uint64

	// PeerFetches counts mesh peer-fetch fallbacks attempted after
	// local resolution failed; PeerFetchAnswered the ones a fleet
	// peer's cache could answer.
	PeerFetches       uint64
	PeerFetchAnswered uint64
}

// statCounters is the lock-free internal form of the frontend half of
// Stats.
type statCounters struct {
	queriesIn, resolved, failed, cacheAnswered, coalesced atomic.Uint64
	renewalQueries, renewalFailed, renewals               atomic.Uint64
	renewalDeferred                                       atomic.Uint64
}

// Stats returns a snapshot of the counters, merging the frontend half
// with the resolve pipeline's upstream counters.
func (cs *CachingServer) Stats() Stats {
	rc := cs.resolver.Counters()
	return Stats{
		QueriesIn:        cs.stats.queriesIn.Load(),
		Resolved:         cs.stats.resolved.Load(),
		Failed:           cs.stats.failed.Load(),
		CacheAnswered:    cs.stats.cacheAnswered.Load(),
		Coalesced:        cs.stats.coalesced.Load(),
		QueriesOut:       rc.QueriesOut,
		QueriesOutFailed: rc.QueriesOutFailed,
		RenewalQueries:   cs.stats.renewalQueries.Load(),
		RenewalFailed:    cs.stats.renewalFailed.Load(),
		Renewals:         cs.stats.renewals.Load(),
		RenewalDeferred:  cs.stats.renewalDeferred.Load(),
		Referrals:        rc.Referrals,
		StaleAnswers:     rc.StaleAnswers,
		PrefetchQueries:  rc.PrefetchQueries,
		Retries:          rc.Retries,
		QuarantineSkips:  rc.QuarantineSkips,
		BudgetExhausted:  rc.BudgetExhausted,

		GlueFetches:         rc.GlueFetches,
		GlueBudgetExhausted: rc.GlueBudgetExhausted,
		PeerFetches:         rc.PeerFetches,
		PeerFetchAnswered:   rc.PeerFetchAnswered,
	}
}
