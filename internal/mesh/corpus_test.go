package mesh

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"resilientdns/internal/dnswire"
)

// TestWriteFuzzCorpus regenerates the checked-in FuzzMeshFrame seed
// corpus under testdata/fuzz/. It is a generator, not a test: run
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/mesh
//
// after changing the frame format, and commit the result. The seeds put
// the CI fuzz smoke directly into the states that matter for a port
// exposed to the network: valid frames of every type, MAC damage,
// truncations, and lying length prefixes.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}

	key := []byte("fleet-shared-key")
	seeds := map[string][]byte{}

	ping, err := EncodePing(PingPayload{
		From: "192.0.2.1:7946", Incarnation: 4,
		Digest: []DigestEntry{
			{Addr: "192.0.2.2:7946", State: StateAlive, Incarnation: 1},
			{Addr: "192.0.2.3:7946", State: StateDead, Incarnation: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pingFrame, err := EncodeFrame(key, Frame{Type: TPing, Seq: 11, Cookie: 0xfeed, Payload: ping})
	if err != nil {
		t.Fatal(err)
	}
	seeds["ping-valid"] = pingFrame

	zone := dnswire.MustName("corpus.example.")
	push, err := EncodeIRRPush(zone, &dnswire.Message{
		Question: []dnswire.Question{{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassIN}},
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 600,
			Data: dnswire.NS{Host: dnswire.MustName("ns.corpus.example.")},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pushFrame, err := EncodeFrame(key, Frame{Type: TIRRPush, Seq: 12, Cookie: 0xfeed, Payload: push})
	if err != nil {
		t.Fatal(err)
	}
	seeds["irrpush-valid"] = pushFrame

	q := dnswire.NewQuery(9, dnswire.MustName("www.corpus.example."), dnswire.TypeA)
	fetch, err := EncodeMsg(q)
	if err != nil {
		t.Fatal(err)
	}
	fetchFrame, err := EncodeFrame(key, Frame{Type: TFetchReq, Flags: FlagRelayed, Seq: 13, Cookie: 0xfeed, Payload: fetch})
	if err != nil {
		t.Fatal(err)
	}
	seeds["fetchreq-valid"] = fetchFrame

	challenge, err := EncodeFrame(key, Frame{Type: TChallenge, Seq: 11, Cookie: 0xbeef})
	if err != nil {
		t.Fatal(err)
	}
	seeds["challenge-valid"] = challenge

	// MAC damage: last byte of the truncated tag flipped.
	macBad := append([]byte{}, pingFrame...)
	macBad[len(macBad)-1] ^= 0x01
	seeds["ping-bad-mac"] = macBad

	// Header damage and truncations at hostile offsets.
	badMagic := append([]byte{}, pingFrame...)
	badMagic[0] ^= 0xFF
	seeds["ping-bad-magic"] = badMagic
	badVersion := append([]byte{}, pingFrame...)
	badVersion[2] = 0xFF
	seeds["ping-bad-version"] = badVersion
	seeds["ping-torn-header"] = pingFrame[:headerLen-3]
	seeds["ping-torn-payload"] = pingFrame[:headerLen+2]
	seeds["ping-torn-mac"] = pingFrame[:len(pingFrame)-4]

	// A header promising more payload than the datagram carries.
	lying := append([]byte{}, pingFrame[:headerLen]...)
	lying[headerLen-2] = 0xFF
	lying[headerLen-1] = 0xFF
	seeds["ping-lying-length"] = lying

	// Bare payloads (the inner decoders are fuzzed directly too).
	seeds["payload-ping"] = ping
	seeds["payload-irrpush"] = push
	seeds["payload-msg"] = fetch

	dir := filepath.Join("testdata", "fuzz", "FuzzMeshFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
