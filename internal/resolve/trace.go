package resolve

import (
	"sync"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// Stage names one pipeline stage for trace timings and histograms.
type Stage int

// The pipeline stages, in traversal order. ValidateIngest and the
// stages below it nest inside Iterate: a stage span opened while the
// same stage is already open (a nested glue or DNSSEC iteration) adds
// nothing, so each stage's time counts wall-clock once.
const (
	StageCacheLookup Stage = iota
	StageChainWalk
	StageIterate
	StageValidateIngest
	StageStaleFallback
	StagePeerFetch
	numStages
)

// String returns the stage's snake_case name, used as the histogram and
// JSON key.
func (s Stage) String() string {
	switch s {
	case StageCacheLookup:
		return "cache_lookup"
	case StageChainWalk:
		return "chain_walk"
	case StageIterate:
		return "iterate"
	case StageValidateIngest:
		return "validate_ingest"
	case StageStaleFallback:
		return "stale_fallback"
	case StagePeerFetch:
		return "peer_fetch"
	}
	return "unknown"
}

// Kind labels what drove a trace's resolution work.
type Kind int

// Trace kinds: a client query's cache hot path, a coalesced flight's
// full resolution, a renewal refetch, and a background prefetch.
const (
	KindQuery Kind = iota
	KindResolve
	KindRenewal
	KindPrefetch
	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindResolve:
		return "resolve"
	case KindRenewal:
		return "renewal"
	case KindPrefetch:
		return "prefetch"
	}
	return "unknown"
}

// Trace accumulates one resolution's observable events: stage timings,
// per-attempt upstream outcomes, and cache-path decisions. A nil *Trace
// is valid everywhere and does nothing, so the pipeline threads traces
// unconditionally and pays nothing when tracing is off.
//
// A trace belongs to a single goroutine: the client trace to the caller,
// a flight trace to the flight's goroutine. It must not be shared.
type Trace struct {
	id    uint64
	kind  Kind
	qname dnswire.Name
	qtype dnswire.Type
	start time.Time
	clock simclock.Clock

	coalesced bool
	cacheHit  bool
	stale     bool
	cacheOnly bool
	peerFetch bool

	stageNanos [numStages]int64
	stageDepth [numStages]int
	attempts   []Attempt

	duration time.Duration
	outcome  string
}

// Attempt is one upstream exchange attempt recorded in a trace.
type Attempt struct {
	Server transport.Addr
	RTT    time.Duration
	Err    string
}

// NewTrace starts a trace of the given kind, or returns nil when no
// trace sink is configured (tracing off — the simulator's mode).
func (r *Resolver) NewTrace(kind Kind, qname dnswire.Name, qtype dnswire.Type) *Trace {
	if r.cfg.TraceSink == nil {
		return nil
	}
	return &Trace{
		id:    r.traceID.Add(1),
		kind:  kind,
		qname: qname,
		qtype: qtype,
		start: r.cfg.Clock.Now(),
		clock: r.cfg.Clock,
	}
}

// FinishTrace stamps the trace's outcome, folds its timings into the
// resolver's histograms, and hands a summary to the sink. A nil trace is
// a no-op.
func (r *Resolver) FinishTrace(tr *Trace, res *Result, err error) {
	if tr == nil {
		return
	}
	tr.duration = tr.clock.Now().Sub(tr.start)
	switch {
	case err != nil:
		tr.outcome = "error: " + err.Error()
	case res != nil:
		tr.outcome = res.RCode.String()
	default:
		tr.outcome = "ok"
	}
	r.kindHist[tr.kind].Observe(tr.duration)
	for s := Stage(0); s < numStages; s++ {
		if n := tr.stageNanos[s]; n > 0 {
			r.stageHist[s].Observe(time.Duration(n))
		}
	}
	r.cfg.TraceSink.Observe(tr.summary())
}

// LatencySnapshots returns the per-stage and per-kind latency histograms
// accumulated from finished traces, keyed "stage/<stage>" and
// "kind/<kind>". Histograms only fill while a TraceSink is configured.
func (r *Resolver) LatencySnapshots() map[string]metrics.HistogramSnapshot {
	out := make(map[string]metrics.HistogramSnapshot, int(numStages)+int(numKinds))
	for s := Stage(0); s < numStages; s++ {
		out["stage/"+s.String()] = r.stageHist[s].Snapshot()
	}
	for k := Kind(0); k < numKinds; k++ {
		out["kind/"+k.String()] = r.kindHist[k].Snapshot()
	}
	return out
}

// Span is an open stage timing started by StartStage.
type Span struct {
	tr    *Trace
	stage Stage
	start time.Time
}

// StartStage opens a timing span for stage s. On a nil trace the span is
// inert. Re-entering a stage already open on the same trace (nested
// iterations) returns an inert span so stage time is wall-clock, not
// double-counted.
func (tr *Trace) StartStage(s Stage) Span {
	if tr == nil {
		return Span{}
	}
	tr.stageDepth[s]++
	if tr.stageDepth[s] > 1 {
		return Span{tr: tr, stage: s}
	}
	return Span{tr: tr, stage: s, start: tr.clock.Now()}
}

// End closes the span, adding its elapsed time to the trace's stage
// accumulator.
func (sp Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.stageDepth[sp.stage]--
	if sp.start.IsZero() {
		return // nested re-entry: outermost span owns the time
	}
	sp.tr.stageNanos[sp.stage] += sp.tr.clock.Now().Sub(sp.start).Nanoseconds()
}

// MarkCoalesced records that the query joined an in-flight resolution.
func (tr *Trace) MarkCoalesced() {
	if tr != nil {
		tr.coalesced = true
	}
}

// MarkCacheHit records that the answer came from live cache.
func (tr *Trace) MarkCacheHit() {
	if tr != nil {
		tr.cacheHit = true
	}
}

// MarkStale records that the answer was served from expired records.
func (tr *Trace) MarkStale() {
	if tr != nil {
		tr.stale = true
	}
}

// MarkCacheOnly records that the query was restricted to cached data
// (an RD=0 probe, or the guard's overload degraded mode).
func (tr *Trace) MarkCacheOnly() {
	if tr != nil {
		tr.cacheOnly = true
	}
}

// MarkPeerFetch records that the answer came from a mesh peer's cache
// after local resolution failed.
func (tr *Trace) MarkPeerFetch() {
	if tr != nil {
		tr.peerFetch = true
	}
}

// RecordAttempt logs one upstream exchange attempt.
func (tr *Trace) RecordAttempt(server transport.Addr, rtt time.Duration, err error) {
	if tr == nil {
		return
	}
	a := Attempt{Server: server, RTT: rtt}
	if err != nil {
		a.Err = err.Error()
	}
	tr.attempts = append(tr.attempts, a)
}

// TraceSummary is the exported, JSON-ready form of a finished trace:
// what the ring buffer retains and the query log writes.
type TraceSummary struct {
	ID        uint64    `json:"id"`
	Kind      string    `json:"kind"`
	Name      string    `json:"name"`
	Type      string    `json:"type"`
	Start     time.Time `json:"start"`
	Micros    int64     `json:"duration_us"`
	Outcome   string    `json:"outcome"`
	Coalesced bool      `json:"coalesced,omitempty"`
	CacheHit  bool      `json:"cache_hit,omitempty"`
	Stale     bool      `json:"stale,omitempty"`
	CacheOnly bool      `json:"cache_only,omitempty"`
	PeerFetch bool      `json:"peer_fetch,omitempty"`
	// StageMicros maps stage name → microseconds, nonzero stages only.
	StageMicros map[string]int64 `json:"stages_us,omitempty"`
	Attempts    []AttemptSummary `json:"attempts,omitempty"`
}

// AttemptSummary is one upstream attempt in a TraceSummary.
type AttemptSummary struct {
	Server string `json:"server"`
	Micros int64  `json:"rtt_us"`
	Error  string `json:"error,omitempty"`
}

// summary converts the trace into its exported form.
func (tr *Trace) summary() TraceSummary {
	ts := TraceSummary{
		ID:        tr.id,
		Kind:      tr.kind.String(),
		Name:      string(tr.qname),
		Type:      tr.qtype.String(),
		Start:     tr.start,
		Micros:    tr.duration.Microseconds(),
		Outcome:   tr.outcome,
		Coalesced: tr.coalesced,
		CacheHit:  tr.cacheHit,
		Stale:     tr.stale,
		CacheOnly: tr.cacheOnly,
		PeerFetch: tr.peerFetch,
	}
	for s := Stage(0); s < numStages; s++ {
		if n := tr.stageNanos[s]; n > 0 {
			if ts.StageMicros == nil {
				ts.StageMicros = make(map[string]int64)
			}
			ts.StageMicros[s.String()] = n / 1e3
		}
	}
	for _, a := range tr.attempts {
		ts.Attempts = append(ts.Attempts, AttemptSummary{
			Server: string(a.Server),
			Micros: a.RTT.Microseconds(),
			Error:  a.Err,
		})
	}
	return ts
}

// Sink receives finished trace summaries. Observe is called from the
// goroutine that finished the trace — query handlers, flight goroutines,
// renewal and prefetch workers — so implementations must be safe for
// concurrent use and should return quickly.
type Sink interface {
	Observe(TraceSummary)
}

// Ring is a fixed-size ring buffer Sink retaining the most recent trace
// summaries for the debug endpoint.
type Ring struct {
	mu    sync.Mutex
	buf   []TraceSummary
	next  int
	count int
}

// NewRing returns a ring retaining the last n summaries (min 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]TraceSummary, n)}
}

// Observe implements Sink.
func (rg *Ring) Observe(ts TraceSummary) {
	rg.mu.Lock()
	rg.buf[rg.next] = ts
	rg.next = (rg.next + 1) % len(rg.buf)
	if rg.count < len(rg.buf) {
		rg.count++
	}
	rg.mu.Unlock()
}

// Recent returns up to n summaries, newest first.
func (rg *Ring) Recent(n int) []TraceSummary {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if n <= 0 || n > rg.count {
		n = rg.count
	}
	out := make([]TraceSummary, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, rg.buf[(rg.next-i+len(rg.buf))%len(rg.buf)])
	}
	return out
}

// MultiSink fans summaries out to every non-nil sink; nil when none.
func MultiSink(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Observe(ts TraceSummary) {
	for _, s := range m {
		s.Observe(ts)
	}
}
