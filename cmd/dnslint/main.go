// Command dnslint is the repo's custom vet tool: ten analyzers that
// enforce the resilience invariants the ordinary toolchain cannot see.
// It speaks the unitchecker protocol, so it runs under the go command:
//
//	go build -o bin/dnslint ./cmd/dnslint
//	go vet -vettool=$(pwd)/bin/dnslint ./...
//
// or via `make lint`. Findings are suppressed case-by-case with
// `//dnslint:ignore <analyzer> <reason>` (reason mandatory) — and a
// directive that no longer suppresses anything is itself a finding.
// See DESIGN.md §9 for the invariant behind each analyzer.
//
// SARIF mode: `dnslint -sarif [packages]` re-runs the suite through
// `go vet -vettool=<self> -json` and writes a SARIF 2.1.0 log to
// stdout, for CI annotation and artifact upload:
//
//	./bin/dnslint -sarif ./... > dnslint.sarif
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"resilientdns/internal/analysis/ctxdeadline"
	"resilientdns/internal/analysis/goroleak"
	"resilientdns/internal/analysis/lockexchange"
	"resilientdns/internal/analysis/lockorder"
	"resilientdns/internal/analysis/maporder"
	"resilientdns/internal/analysis/onepath"
	"resilientdns/internal/analysis/taintwire"
	"resilientdns/internal/analysis/wallclock"
	"resilientdns/internal/analysis/weakrand"
	"resilientdns/internal/analysis/wireerr"
)

// analyzers is the full suite, in rough order of layer: time, locks,
// randomness, codec, iteration order, exchange discipline, deadlines,
// goroutine lifetimes, lock ordering, taint.
var analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	lockexchange.Analyzer,
	weakrand.Analyzer,
	wireerr.Analyzer,
	maporder.Analyzer,
	onepath.Analyzer,
	ctxdeadline.Analyzer,
	goroleak.Analyzer,
	lockorder.Analyzer,
	taintwire.Analyzer,
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-sarif" {
		os.Exit(runSARIF(os.Args[2:]))
	}
	unitchecker.Main(analyzers...)
}

// vetDiag is one diagnostic in `go vet -json` output.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runSARIF drives `go vet -vettool=<self> -json` over the requested
// packages and converts its diagnostics to a SARIF 2.1.0 log on
// stdout. The vet exit code is passed through on hard failures (build
// errors); findings alone produce a log and exit 0 — the plain `make
// lint` run is the gate, this mode is the reporter.
func runSARIF(pkgs []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnslint: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + self, "-json"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	// -json diagnostics arrive on stderr as `# pkg` comment lines
	// interleaved with concatenated JSON objects:
	// {"pkgpath": {"analyzer": [{"posn": ..., "message": ...}]}}
	byRule := make(map[string][]vetDiag)
	parsed := false
	for _, stream := range [][]byte{stderr.Bytes(), stdout.Bytes()} {
		var jsonOnly bytes.Buffer
		sc := bufio.NewScanner(bytes.NewReader(stream))
		sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
		for sc.Scan() {
			if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
				continue
			}
			jsonOnly.WriteString(sc.Text())
			jsonOnly.WriteByte('\n')
		}
		dec := json.NewDecoder(&jsonOnly)
		for {
			var unit map[string]map[string][]vetDiag
			if err := dec.Decode(&unit); err != nil {
				break
			}
			parsed = true
			for _, byAnalyzer := range unit {
				for rule, diags := range byAnalyzer {
					byRule[rule] = append(byRule[rule], diags...)
				}
			}
		}
		if parsed {
			break
		}
	}
	if runErr != nil && !parsed {
		// Hard failure (typecheck error, bad package pattern): no
		// diagnostics to report, surface vet's own message.
		os.Stderr.Write(stderr.Bytes())
		fmt.Fprintf(os.Stderr, "dnslint: go vet failed: %v\n", runErr)
		return 1
	}

	if err := json.NewEncoder(os.Stdout).Encode(sarifLog(byRule)); err != nil {
		fmt.Fprintf(os.Stderr, "dnslint: encoding SARIF: %v\n", err)
		return 2
	}
	return 0
}

// sarifLog builds a minimal, valid SARIF 2.1.0 document from the
// collected diagnostics.
func sarifLog(byRule map[string][]vetDiag) map[string]any {
	cwd, _ := os.Getwd()

	var rules []map[string]any
	for _, a := range analyzers {
		rules = append(rules, map[string]any{
			"id": a.Name,
			"shortDescription": map[string]any{
				"text": a.Doc,
			},
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		return rules[i]["id"].(string) < rules[j]["id"].(string)
	})

	results := []map[string]any{}
	ruleNames := make([]string, 0, len(byRule))
	for rule := range byRule {
		ruleNames = append(ruleNames, rule)
	}
	sort.Strings(ruleNames)
	for _, rule := range ruleNames {
		for _, d := range byRule[rule] {
			uri, line, col := splitPosn(d.Posn, cwd)
			results = append(results, map[string]any{
				"ruleId": rule,
				"level":  "error",
				"message": map[string]any{
					"text": d.Message,
				},
				"locations": []map[string]any{{
					"physicalLocation": map[string]any{
						"artifactLocation": map[string]any{
							"uri": uri,
						},
						"region": map[string]any{
							"startLine":   line,
							"startColumn": col,
						},
					},
				}},
			})
		}
	}

	return map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemas/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "dnslint",
					"informationUri": "https://example.invalid/resilientdns/dnslint",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
}

// splitPosn decomposes a "path:line:col" position, relativizing the
// path against cwd for stable CI artifacts.
func splitPosn(posn, cwd string) (uri string, line, col int) {
	uri, line, col = posn, 1, 1
	// Split from the right: the path may contain colons on some
	// platforms, line and column never do.
	if i := strings.LastIndexByte(uri, ':'); i >= 0 {
		if n, err := strconv.Atoi(uri[i+1:]); err == nil {
			col = n
			uri = uri[:i]
		}
	}
	if i := strings.LastIndexByte(uri, ':'); i >= 0 {
		if n, err := strconv.Atoi(uri[i+1:]); err == nil {
			line = n
			uri = uri[:i]
		}
	}
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
	}
	return filepath.ToSlash(uri), line, col
}
