package guard

import (
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeBackend answers every query NoError and records which entry point
// served it.
type fakeBackend struct {
	queries, cacheOnly int
}

func (b *fakeBackend) HandleQuery(q *dnswire.Message) *dnswire.Message {
	b.queries++
	resp := q.Reply()
	resp.Answer = append(resp.Answer, dnswire.RR{
		Name:  q.Question[0].Name,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data:  dnswire.A{Addr: netip.MustParseAddr("10.0.0.1")},
	})
	return resp
}

func (b *fakeBackend) HandleQueryCacheOnly(q *dnswire.Message) *dnswire.Message {
	b.cacheOnly++
	resp := q.Reply()
	resp.RCode = dnswire.RCodeServFail // miss shape: SERVFAIL, no answer
	return resp
}

func testQuery(id uint16) *dnswire.Message {
	q := dnswire.NewQuery(id, dnswire.MustName("www.example.com."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	return q
}

func udpAddr(ip string) net.Addr {
	return &net.UDPAddr{IP: net.ParseIP(ip), Port: 5353}
}

func TestLimiterAllowsUnderBudgetAndDropsOver(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	be := &fakeBackend{}
	g := New(be, Config{ClientRPS: 10, ClientBurst: 5, Clock: clk})

	// Burst depth 5: the first five queries pass, the sixth is limited.
	for i := 0; i < 5; i++ {
		if resp := g.HandleQueryFrom(testQuery(uint16(i)), udpAddr("192.0.2.1")); resp == nil || resp.Flags.Truncated {
			t.Fatalf("query %d not served: %v", i, resp)
		}
	}
	if resp := g.HandleQueryFrom(testQuery(6), udpAddr("192.0.2.1")); resp != nil {
		t.Fatalf("over-budget query served: %v", resp)
	}
	// A different client has its own bucket.
	if resp := g.HandleQueryFrom(testQuery(7), udpAddr("192.0.2.2")); resp == nil {
		t.Fatal("second client rate-limited by the first's bucket")
	}
	// Refill: 10 qps × 0.5 s = 5 tokens.
	clk.Advance(500 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if resp := g.HandleQueryFrom(testQuery(uint16(10+i)), udpAddr("192.0.2.1")); resp == nil || resp.Flags.Truncated {
			t.Fatalf("post-refill query %d not served: %v", i, resp)
		}
	}
	if resp := g.HandleQueryFrom(testQuery(20), udpAddr("192.0.2.1")); resp != nil {
		t.Fatal("refill exceeded the burst depth")
	}
}

// TestSlipRatio drives a drained bucket and checks the slip cadence:
// every Nth rate-limited query gets a minimal TC=1 reply, the rest drop.
func TestSlipRatio(t *testing.T) {
	const limited = 120
	for _, tc := range []struct {
		slip      int
		wantSlips int
	}{
		{slip: 0, wantSlips: 0},
		{slip: 1, wantSlips: limited},
		{slip: 2, wantSlips: limited / 2},
		{slip: 3, wantSlips: limited / 3},
		{slip: 10, wantSlips: limited / 10},
	} {
		t.Run(fmt.Sprintf("slip=%d", tc.slip), func(t *testing.T) {
			clk := simclock.NewVirtual(epoch)
			counters := &metrics.GuardCounters{}
			g := New(&fakeBackend{}, Config{
				ClientRPS: 1, ClientBurst: 1, Slip: tc.slip,
				Clock: clk, Counters: counters,
			})
			g.HandleQueryFrom(testQuery(0), udpAddr("192.0.2.9")) // drain the bucket

			slips := 0
			for i := 0; i < limited; i++ {
				resp := g.HandleQueryFrom(testQuery(uint16(i)), udpAddr("192.0.2.9"))
				if resp != nil {
					if !resp.Flags.Truncated {
						t.Fatalf("limited query %d served untruncated", i)
					}
					if len(resp.Answer) != 0 || len(resp.Authority) != 0 {
						t.Fatalf("slip reply %d not minimal: %v", i, resp)
					}
					slips++
				}
			}
			if slips != tc.wantSlips {
				t.Errorf("slips = %d, want %d", slips, tc.wantSlips)
			}
			gs := counters.Snapshot()
			if gs.Slips != uint64(tc.wantSlips) || gs.RateLimited != limited {
				t.Errorf("counters = %+v, want %d slips of %d limited", gs, tc.wantSlips, limited)
			}
		})
	}
}

// TestSlipResetOnAllow checks an allowed query restarts the slip cadence:
// the limited-streak counter is per streak, not forever.
func TestSlipResetOnAllow(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	g := New(&fakeBackend{}, Config{ClientRPS: 1, ClientBurst: 1, Slip: 2, Clock: clk})
	addr := udpAddr("192.0.2.9")

	g.HandleQueryFrom(testQuery(0), addr) // drain
	if resp := g.HandleQueryFrom(testQuery(1), addr); resp != nil {
		t.Fatal("first limited query should drop (streak 1 of 2)")
	}
	clk.Advance(time.Second) // refill one token
	if resp := g.HandleQueryFrom(testQuery(2), addr); resp == nil || resp.Flags.Truncated {
		t.Fatal("refilled query should be served")
	}
	// Streak restarted: the next limited query is 1 of 2 again → drop.
	if resp := g.HandleQueryFrom(testQuery(3), addr); resp != nil {
		t.Fatal("post-allow limited query should drop (streak restarted)")
	}
	if resp := g.HandleQueryFrom(testQuery(4), addr); resp == nil || !resp.Flags.Truncated {
		t.Fatal("second limited query in the streak should slip")
	}
}

func TestLimiterEvictsLRUAtBound(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	counters := &metrics.GuardCounters{}
	// MaxClients 64 → one slot per shard: every shard evicts on its
	// second distinct client.
	g := New(&fakeBackend{}, Config{ClientRPS: 100, MaxClients: 64, Clock: clk, Counters: counters})
	for i := 0; i < 1000; i++ {
		g.HandleQueryFrom(testQuery(uint16(i)), udpAddr(fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&0xff, i&0xff)))
	}
	if n := g.limiter.clientCount(); n > 64 {
		t.Errorf("limiter tracks %d clients, bound is 64", n)
	}
	if counters.Snapshot().ClientsEvicted == 0 {
		t.Error("no evictions counted despite exceeding the bound")
	}
}

func TestOverloadCacheOnlyAndShed(t *testing.T) {
	clk := simclock.NewVirtual(epoch)

	// Degraded mode off: overload arrivals are shed and counted.
	counters := &metrics.GuardCounters{}
	be := &fakeBackend{}
	g := New(be, Config{Clock: clk, Counters: counters})
	if resp := g.HandleOverload(testQuery(1), udpAddr("192.0.2.1")); resp != nil {
		t.Fatalf("shed query got a response: %v", resp)
	}
	if gs := counters.Snapshot(); gs.Shed != 1 || be.cacheOnly != 0 {
		t.Errorf("shed=%d cacheOnly=%d, want 1 shed and no cache-only call", gs.Shed, be.cacheOnly)
	}

	// Degraded mode on: the query reaches the cache-only entry point and
	// the miss (SERVFAIL, no answer) is counted.
	counters = &metrics.GuardCounters{}
	be = &fakeBackend{}
	g = New(be, Config{CacheOnlyOnOverload: true, Clock: clk, Counters: counters})
	resp := g.HandleOverload(testQuery(2), udpAddr("192.0.2.1"))
	if resp == nil || resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("degraded answer = %v, want the backend's SERVFAIL", resp)
	}
	if be.cacheOnly != 1 || be.queries != 0 {
		t.Errorf("backend calls: cacheOnly=%d queries=%d, want 1/0", be.cacheOnly, be.queries)
	}
	if gs := counters.Snapshot(); gs.CacheOnly != 1 || gs.CacheOnlyMiss != 1 || gs.Shed != 0 {
		t.Errorf("counters = %+v, want CacheOnly=1 CacheOnlyMiss=1 Shed=0", gs)
	}
}

// TestOverloadStillRateLimits: an abusive client gets no degraded-mode
// service either.
func TestOverloadStillRateLimits(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	be := &fakeBackend{}
	g := New(be, Config{ClientRPS: 1, ClientBurst: 1, CacheOnlyOnOverload: true, Clock: clk})
	g.HandleOverload(testQuery(0), udpAddr("192.0.2.1")) // drains the bucket
	if resp := g.HandleOverload(testQuery(1), udpAddr("192.0.2.1")); resp != nil {
		t.Fatalf("rate-limited overload query served: %v", resp)
	}
	if be.cacheOnly != 1 {
		t.Errorf("cache-only calls = %d, want 1 (the limited query must not reach the backend)", be.cacheOnly)
	}
}

func TestGuardDisabledIsTransparent(t *testing.T) {
	be := &fakeBackend{}
	g := New(be, Config{}) // no rate limit, no degraded mode
	for i := 0; i < 100; i++ {
		if resp := g.HandleQueryFrom(testQuery(uint16(i)), udpAddr("192.0.2.1")); resp == nil || resp.Flags.Truncated {
			t.Fatalf("query %d not passed through: %v", i, resp)
		}
	}
	if be.queries != 100 {
		t.Errorf("backend saw %d queries, want all 100", be.queries)
	}
}

func TestClientAddrIdentity(t *testing.T) {
	udp4 := &net.UDPAddr{IP: net.ParseIP("192.0.2.7"), Port: 1111}
	udp4b := &net.UDPAddr{IP: net.ParseIP("192.0.2.7"), Port: 2222}
	a1, ok1 := clientAddr(udp4)
	a2, ok2 := clientAddr(udp4b)
	if !ok1 || !ok2 || a1 != a2 {
		t.Errorf("same IP, different ports → %v/%v vs %v/%v, want one identity", a1, ok1, a2, ok2)
	}
	tcp := &net.TCPAddr{IP: net.ParseIP("192.0.2.7"), Port: 3333}
	if a3, ok := clientAddr(tcp); !ok || a3 != a1 {
		t.Errorf("TCP addr maps to %v, want %v", a3, a1)
	}
	if _, ok := clientAddr(&net.UnixAddr{Name: "@x", Net: "unix"}); ok {
		t.Error("unparseable source claimed an identity")
	}
}

// TestPeerExemptBypassesRateLimit pins the mesh integration contract:
// handshake-confirmed fleet peers are never rate-limited, slipped, or
// even charged a bucket, while strangers — including ones sharing traffic
// volume with peers — stay fully limited.
func TestPeerExemptBypassesRateLimit(t *testing.T) {
	peerA := netip.MustParseAddr("10.9.0.2")
	peerB := netip.MustParseAddr("10.9.0.3")
	exempt := func(a netip.Addr) bool { return a == peerA || a == peerB }

	cases := []struct {
		name    string
		src     string
		exempt  bool
		queries int
	}{
		{"confirmed peer far over budget", "10.9.0.2", true, 50},
		{"second confirmed peer", "10.9.0.3", true, 50},
		{"stranger over budget", "192.0.2.9", false, 50},
		{"stranger adjacent to peer subnet", "10.9.0.4", false, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := simclock.NewVirtual(epoch)
			be := &fakeBackend{}
			ctr := &metrics.GuardCounters{}
			g := New(be, Config{ClientRPS: 2, ClientBurst: 4, Slip: 2, Clock: clk, Counters: ctr, PeerExempt: exempt})

			served, limited := 0, 0
			for i := 0; i < tc.queries; i++ {
				resp := g.HandleQueryFrom(testQuery(uint16(i)), udpAddr(tc.src))
				switch {
				case resp == nil || resp.Flags.Truncated:
					limited++
				default:
					served++
				}
			}
			if tc.exempt {
				if limited != 0 {
					t.Errorf("peer had %d of %d queries limited/slipped, want 0", limited, tc.queries)
				}
				if got := ctr.PeerExempt.Load(); got != uint64(tc.queries) {
					t.Errorf("PeerExempt counter = %d, want %d", got, tc.queries)
				}
				if ctr.RateLimited.Load() != 0 {
					t.Errorf("peer traffic charged the limiter: RateLimited = %d", ctr.RateLimited.Load())
				}
			} else {
				if limited == 0 {
					t.Errorf("stranger sent %d queries over a 4-token bucket and was never limited", tc.queries)
				}
				if served != 4 {
					t.Errorf("stranger had %d served, want exactly the 4-token burst", served)
				}
				if ctr.PeerExempt.Load() != 0 {
					t.Errorf("stranger counted as peer-exempt %d times", ctr.PeerExempt.Load())
				}
			}
		})
	}
}

// TestPeerExemptDoesNotShareBucket: a peer's volume must not pollute the
// bucket of a NATed stranger behind the same address family — concretely,
// heavy peer traffic followed by stranger traffic from a different IP
// leaves the stranger's own bucket untouched.
func TestPeerExemptDoesNotShareBucket(t *testing.T) {
	peer := netip.MustParseAddr("10.9.0.2")
	clk := simclock.NewVirtual(epoch)
	be := &fakeBackend{}
	g := New(be, Config{ClientRPS: 2, ClientBurst: 4, Clock: clk,
		PeerExempt: func(a netip.Addr) bool { return a == peer }})

	for i := 0; i < 100; i++ {
		if resp := g.HandleQueryFrom(testQuery(uint16(i)), udpAddr("10.9.0.2")); resp == nil {
			t.Fatalf("peer query %d dropped", i)
		}
	}
	// The stranger still has its full burst available.
	for i := 0; i < 4; i++ {
		if resp := g.HandleQueryFrom(testQuery(uint16(200+i)), udpAddr("192.0.2.1")); resp == nil {
			t.Fatalf("stranger query %d limited despite a fresh bucket", i)
		}
	}
}
