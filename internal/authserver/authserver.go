// Package authserver implements an authoritative DNS server engine: it
// answers queries from one or more zones, emitting answers, referrals with
// glue, and negative responses, and — crucially for the paper's TTL-refresh
// scheme — it attaches the zone's own infrastructure resource records
// (apex NS plus glue A/AAAA) to every authoritative response, exactly as
// deployed name servers do.
package authserver

import (
	"sort"
	"sync/atomic"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// Server answers queries for a set of zones. Build it once; it is safe for
// concurrent readers afterwards.
type Server struct {
	zones []*zone.Zone
	// AttachApexNS controls whether authoritative answers carry the
	// zone's apex NS RRset in the authority section (and its glue in the
	// additional section). Real name servers do this; it is what lets a
	// caching server refresh a zone's IRRs from the child's own answers.
	// Defaults to true in New.
	AttachApexNS bool
	// RotateAnswers cycles the order of multi-record answer RRsets across
	// responses (classic round-robin load distribution). Off by default.
	RotateAnswers bool

	rotation atomic.Uint64
}

// maxCNAMEChase bounds in-zone CNAME chain following.
const maxCNAMEChase = 8

// New returns a server answering for the given zones.
func New(zones ...*zone.Zone) *Server {
	s := &Server{AttachApexNS: true}
	s.zones = append(s.zones, zones...)
	// Deepest origin first, so the most specific zone answers.
	sort.Slice(s.zones, func(i, j int) bool {
		a, b := s.zones[i].Origin(), s.zones[j].Origin()
		if a.LabelCount() != b.LabelCount() {
			return a.LabelCount() > b.LabelCount()
		}
		return a < b
	})
	return s
}

// Zones returns the zones served, deepest first.
func (s *Server) Zones() []*zone.Zone { return s.zones }

// zoneFor returns the deepest served zone containing qname.
func (s *Server) zoneFor(qname dnswire.Name) *zone.Zone {
	for _, z := range s.zones {
		if qname.IsSubdomainOf(z.Origin()) {
			return z
		}
	}
	return nil
}

// HandleQuery implements transport.Handler.
func (s *Server) HandleQuery(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Question) != 1 || q.Opcode != dnswire.OpcodeQuery {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if question.Class != dnswire.ClassIN && question.Class != dnswire.ClassANY {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	z := s.zoneFor(question.Name)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	// Whole-zone transfer (RFC 5936): the answer stream starts and ends
	// with the zone SOA. Intended for TCP; over UDP the transport layer
	// truncates it, signalling the client to retry via TCP.
	if question.Type == dnswire.TypeAXFR {
		if question.Name != z.Origin() {
			resp.RCode = dnswire.RCodeRefused
			return resp
		}
		soa, ok := z.SOA()
		if !ok {
			resp.RCode = dnswire.RCodeRefused
			return resp
		}
		resp.Flags.Authoritative = true
		resp.Answer = append(resp.Answer, soa)
		for _, rr := range z.Records() {
			if rr.Type() == dnswire.TypeSOA && rr.Name == z.Origin() {
				continue
			}
			resp.Answer = append(resp.Answer, rr)
		}
		resp.Answer = append(resp.Answer, soa)
		return resp
	}

	qname := question.Name
	for hop := 0; ; hop++ {
		res := z.Lookup(qname, question.Type)
		switch res.Type {
		case zone.Answer:
			resp.Flags.Authoritative = true
			resp.Answer = append(resp.Answer, s.maybeRotate(res.Records)...)
			s.attachSignatures(z, resp)
			s.attachIRRs(z, resp)
			return resp

		case zone.CNAMEIndirection:
			resp.Flags.Authoritative = true
			resp.Answer = append(resp.Answer, res.Records...)
			target := res.Records[0].Data.(dnswire.CNAME).Target
			if hop >= maxCNAMEChase {
				return resp
			}
			if tz := s.zoneFor(target); tz != nil {
				z = tz
				qname = target
				continue
			}
			// Target outside our authority; the resolver chases it.
			s.attachIRRs(z, resp)
			return resp

		case zone.Referral:
			resp.Authority = append(resp.Authority, res.Records...)
			resp.Additional = append(resp.Additional, res.Glue...)
			// A signed delegation carries the DS set and its signature in
			// the authority section (RFC 4035 §3.1.4.1) — infrastructure
			// records in the paper's sense, cached alongside NS and glue.
			if len(res.Records) > 0 {
				cut := res.Records[0].Name
				if ds := z.RRSet(cut, dnswire.TypeDS); len(ds) > 0 {
					resp.Authority = append(resp.Authority, ds...)
					resp.Authority = append(resp.Authority, sigsCovering(z, cut, dnswire.TypeDS)...)
				}
			}
			return resp

		case zone.NXDomain:
			resp.Flags.Authoritative = true
			resp.RCode = dnswire.RCodeNXDomain
			resp.Authority = append(resp.Authority, res.SOA...)
			return resp

		case zone.NoData:
			resp.Flags.Authoritative = true
			resp.Authority = append(resp.Authority, res.SOA...)
			return resp

		default: // zone.NotInZone cannot happen after zoneFor
			resp.RCode = dnswire.RCodeServFail
			return resp
		}
	}
}

// sigsCovering returns the RRSIGs at owner that cover the given type.
func sigsCovering(z *zone.Zone, owner dnswire.Name, covered dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range z.RRSet(owner, dnswire.TypeRRSIG) {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok && sig.TypeCovered == covered {
			out = append(out, rr)
		}
	}
	return out
}

// attachSignatures appends the RRSIGs covering each answer RRset, so that
// validating resolvers can check the response (RFC 4035 §3.1.1).
func (s *Server) attachSignatures(z *zone.Zone, resp *dnswire.Message) {
	type setKey struct {
		name dnswire.Name
		typ  dnswire.Type
	}
	seen := make(map[setKey]bool)
	answers := resp.Answer
	for _, rr := range answers {
		k := setKey{name: rr.Name, typ: rr.Type()}
		if seen[k] || rr.Type() == dnswire.TypeRRSIG {
			continue
		}
		seen[k] = true
		resp.Answer = append(resp.Answer, sigsCovering(z, rr.Name, rr.Type())...)
	}
}

// maybeRotate returns the RRset rotated by the per-server counter when
// RotateAnswers is on and the set has more than one record.
func (s *Server) maybeRotate(rrs []dnswire.RR) []dnswire.RR {
	if !s.RotateAnswers || len(rrs) < 2 {
		return rrs
	}
	n := int(s.rotation.Add(1)) % len(rrs)
	if n == 0 {
		return rrs
	}
	out := make([]dnswire.RR, 0, len(rrs))
	out = append(out, rrs[n:]...)
	out = append(out, rrs[:n]...)
	return out
}

// attachIRRs adds the zone's apex NS RRset to the authority section and
// any in-zone glue for those servers to the additional section, skipping
// records already present.
func (s *Server) attachIRRs(z *zone.Zone, resp *dnswire.Message) {
	if !s.AttachApexNS {
		return
	}
	seen := make(map[string]bool)
	for _, rr := range resp.Answer {
		seen[rrKey(rr)] = true
	}
	for _, rr := range z.ApexNS() {
		if seen[rrKey(rr)] {
			continue
		}
		seen[rrKey(rr)] = true
		resp.Authority = append(resp.Authority, rr)
		host := rr.Data.(dnswire.NS).Host
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			for _, g := range z.RRSet(host, t) {
				if !seen[rrKey(g)] {
					seen[rrKey(g)] = true
					resp.Additional = append(resp.Additional, g)
				}
			}
		}
	}
}

func rrKey(rr dnswire.RR) string {
	return string(rr.Name) + "/" + rr.Type().String() + "/" + rr.Data.String()
}

var _ transport.Handler = (*Server)(nil)
