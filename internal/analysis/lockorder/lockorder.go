// Package lockorder proves the fleet of fine-grained mutexes is
// acquired in one global order.
//
// PR 1 split the seed's single global lock into per-shard, per-zone,
// and per-component mutexes so one slow upstream cannot serialize the
// resolver — and PRs 3–7 kept adding locks (persist store, upstream
// tracker, mesh node, guard limiter, renewal and flight registries).
// The price of that decomposition is deadlock by lock-order inversion:
// two components that each take the other's lock second freeze the
// whole server the first time an attack drives both paths
// concurrently. The invariant: the acquisition graph over named locks
// must stay acyclic.
//
// The analysis runs on the control-flow graphs built by the shared
// dataflow pass (vendored go/cfg; the toolchain has no go/ssa):
//
//   - a lock is named by its declaration: pkg.Type.field for a mutex
//     field, pkg.var for a package-level mutex. Two shards of one
//     sharded map are the same name — self-edges are skipped, because
//     sharded containers order their own shards (the cache does, by
//     index).
//   - per function, a forward may-held dataflow over the CFG (union at
//     join points) tracks which locks are held at each node: Lock/RLock
//     adds, an inline Unlock/RUnlock removes, a deferred unlock holds
//     to function end. Acquiring b with a held emits edge a→b.
//   - each function exports an Acquires fact (every lock its call tree
//     may take), so calling into another package while holding a lock
//     emits the cross-package edges at the call site; each package
//     exports its edge list as a Graph package fact.
//   - a report fires at every current-package edge that closes a cycle
//     in the union of the local and imported graphs — the importing
//     package that completes an inversion is the one told about it.
//
// Test files are analyzed like any other code: a deadlock in a test
// hangs CI just as dead as production.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"

	"resilientdns/internal/analysis/dataflow"
	"resilientdns/internal/analysis/lintutil"
)

const name = "lockorder"

// Acquires lists every lock a function's call tree may take, so
// callers holding a lock see the edges a call implies.
type Acquires struct {
	Locks []string
}

func (*Acquires) AFact() {}

func (f *Acquires) String() string { return "Acquires" }

// Edge is one observed acquisition order: To was acquired while From
// was held.
type Edge struct {
	From, To string
}

// Graph is the per-package acquisition graph, exported as a package
// fact so importers can detect cross-package inversions.
type Graph struct {
	Edges []Edge
}

func (*Graph) AFact() {}

func (f *Graph) String() string { return "Graph" }

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "track named-mutex acquisition order across functions and packages and flag " +
		"lock-order cycles (deadlock by inversion)",
	Requires:  []*analysis.Analyzer{dataflow.Builder},
	FactTypes: []analysis.Fact{(*Acquires)(nil), (*Graph)(nil)},
	Run:       run,
}

type ownEdge struct {
	Edge
	pos token.Pos
}

type checker struct {
	pass *analysis.Pass
	df   *dataflow.Info
	supp *lintutil.Suppressor
	// acquires is the same-package may-acquire fixpoint.
	acquires map[*types.Func]map[string]bool
	// edges are this package's observed acquisition orders, first
	// occurrence wins the report position.
	edges map[Edge]token.Pos
	order []Edge
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		df:       pass.ResultOf[dataflow.Builder].(*dataflow.Info),
		supp:     lintutil.NewSuppressor(pass),
		acquires: make(map[*types.Func]map[string]bool),
		edges:    make(map[Edge]token.Pos),
	}

	// May-acquire fixpoint: direct acquisitions plus callees'.
	for changed := true; changed; {
		changed = false
		for _, fi := range c.df.Funcs {
			if fi.Obj == nil || fi.Parent != nil {
				continue
			}
			if c.growAcquires(fi) {
				changed = true
			}
		}
	}
	for fn, set := range c.acquires {
		if len(set) == 0 {
			continue
		}
		locks := make([]string, 0, len(set))
		for l := range set {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		pass.ExportObjectFact(fn, &Acquires{Locks: locks})
	}

	// Held-set dataflow per function body (literals included: a closure
	// may be invoked while its spawner's locks are NOT held, so each
	// starts empty — same convention as lockexchange).
	for _, fi := range c.df.Funcs {
		c.flow(fi)
	}

	// Publish this package's graph.
	if len(c.order) > 0 {
		g := &Graph{Edges: append([]Edge(nil), c.order...)}
		sort.Slice(g.Edges, func(i, j int) bool {
			return g.Edges[i].From+"\x00"+g.Edges[i].To < g.Edges[j].From+"\x00"+g.Edges[j].To
		})
		pass.ExportPackageFact(g)
	}

	// Build the full graph (own + imported) and report every own edge
	// that closes a cycle.
	adj := make(map[string][]string)
	addEdge := func(e Edge) { adj[e.From] = append(adj[e.From], e.To) }
	for _, e := range c.order {
		addEdge(e)
	}
	for _, pf := range pass.AllPackageFacts() {
		if g, ok := pf.Fact.(*Graph); ok && pf.Package != pass.Pkg {
			for _, e := range g.Edges {
				addEdge(e)
			}
		}
	}
	for _, e := range c.order {
		if reaches(adj, e.To, e.From) {
			c.supp.Report(pass, name, c.edges[e],
				"acquiring %s while holding %s completes a lock-order cycle (another path acquires them "+
					"in the opposite order): establish a single acquisition order", e.To, e.From)
		}
	}
	c.supp.ReportStale(pass, name)
	return nil, nil
}

// reaches reports whether `from` can reach `to` in the acquisition
// graph.
func reaches(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	work := []string{from}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range adj[n] {
			if m == to {
				return true
			}
			if !seen[m] {
				seen[m] = true
				work = append(work, m)
			}
		}
	}
	return false
}

// growAcquires updates fi's may-acquire set; reports whether it grew.
func (c *checker) growAcquires(fi *dataflow.FuncInfo) bool {
	set := c.acquires[fi.Obj]
	if set == nil {
		set = make(map[string]bool)
		c.acquires[fi.Obj] = set
	}
	before := len(set)
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, acq, _ := c.lockOp(call); acq {
			set[id] = true
			return true
		}
		for _, l := range c.calleeAcquires(call) {
			set[l] = true
		}
		return true
	})
	return len(set) != before
}

// calleeAcquires returns the locks the call's static callee may take.
func (c *checker) calleeAcquires(call *ast.CallExpr) []string {
	fn := c.df.Callee(call)
	if fn == nil {
		return nil
	}
	if set, ok := c.acquires[fn]; ok {
		locks := make([]string, 0, len(set))
		for l := range set {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		return locks
	}
	var fact Acquires
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Locks
	}
	return nil
}

// flow runs the forward may-held dataflow over fi's CFG and emits
// acquisition edges.
func (c *checker) flow(fi *dataflow.FuncInfo) {
	g := fi.CFG()
	if g == nil || len(g.Blocks) == 0 {
		return
	}
	in := make([]map[string]bool, len(g.Blocks))
	in[0] = map[string]bool{}
	work := []int32{0}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[idx]
		held := copySet(in[idx])
		for _, n := range b.Nodes {
			c.transfer(n, held)
		}
		for _, succ := range b.Succs {
			if union(&in[succ.Index], held) {
				work = append(work, succ.Index)
			}
		}
	}
}

// transfer applies one CFG node to the held set, emitting edges for
// acquisitions. Deferred unlocks keep the lock held; function literals
// are their own flow.
func (c *checker) transfer(n ast.Node, held map[string]bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if id, acq, rel := c.lockOp(s); acq || rel {
				if rel {
					delete(held, id)
					return true
				}
				for from := range held {
					c.emit(from, id, s.Pos())
				}
				held[id] = true
				return true
			}
			if len(held) > 0 {
				for _, to := range c.calleeAcquires(s) {
					for from := range held {
						c.emit(from, to, s.Pos())
					}
				}
			}
		}
		return true
	})
}

// emit records an acquisition edge; self-edges are the sharded-lock
// pattern and are skipped.
func (c *checker) emit(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	e := Edge{From: from, To: to}
	if _, ok := c.edges[e]; !ok {
		c.edges[e] = pos
		c.order = append(c.order, e)
	}
}

// lockOp classifies a call as a named-mutex acquire or inline release
// and returns the lock's name.
func (c *checker) lockOp(call *ast.CallExpr) (id string, acquire, release bool) {
	fn := c.df.Callee(call)
	if fn == nil {
		return "", false, false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		acquire = true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		release = true
	default:
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	id = c.lockName(sel.X)
	if id == "" {
		return "", false, false
	}
	return id, acquire, release
}

// lockName names the mutex expression by its declaration: a field
// selector becomes pkg.Type.field, a package-level var becomes
// pkg.var. Locals and unrecognized shapes are anonymous ("").
func (c *checker) lockName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := c.pass.TypesInfo.Selections[e]
		if !ok {
			// Qualified package identifier: pkgname.Var.
			if id, ok := e.X.(*ast.Ident); ok {
				if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					return pn.Imported().Path() + "." + e.Sel.Name
				}
			}
			return ""
		}
		t := sel.Recv()
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// union merges src into *dst, allocating it if needed; reports change.
func union(dst *map[string]bool, src map[string]bool) bool {
	if *dst == nil {
		*dst = copySet(src)
		return true
	}
	changed := false
	for k := range src {
		if !(*dst)[k] {
			(*dst)[k] = true
			changed = true
		}
	}
	return changed
}
