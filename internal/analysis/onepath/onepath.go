// Package onepath enforces the single-exchange-path invariant: inside
// the resolver, every upstream fetch goes through the fetch engine.
//
// The pipeline refactor routed all four fetch paths — client-driven
// iteration, prefetch, renewal refetch, and missing-glue chasing —
// through resolve.Engine.Fetch, which is the one place that allocates
// query IDs, consults RTT-based server selection, charges the retry
// budget, and validates that responses echo the question. A direct
// Transport.Exchange call anywhere else in the resolver would bypass
// all of that: it would reuse ID 0, ignore quarantine, dodge the
// budget, and accept spoofable responses. This analyzer flags any
// call to a method named Exchange whose first parameter is a
// context.Context (the transport.Transport shape) in the resolver-side
// packages. The engine's own call site carries the one sanctioned
// //dnslint:ignore annotation.
//
// Transport-layer internals (the UDP→TCP truncation fallback), the
// stub client, zone transfer, and the command-line probes are clients
// of the transport, not of the resolver, and stay out of scope.
package onepath

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "onepath"

// defaultPkgs is the resolver side of the repo: the policy shell, the
// pipeline, the simulator that drives them, the client-facing guard
// (which must answer from cache, never fetch), and the cooperative mesh
// (whose peer calls go through its own mesh.Transport.Call, never a DNS
// Transport.Exchange). Packages that sit
// below the resolver (transport, stub, xfer) legitimately exchange on
// their own behalf and are not listed.
const defaultPkgs = "resilientdns/internal/core," +
	"resilientdns/internal/resolve," +
	"resilientdns/internal/sim," +
	"resilientdns/internal/guard," +
	"resilientdns/internal/mesh"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid Transport.Exchange calls outside the fetch engine; every upstream fetch " +
		"must flow through resolve.Engine.Fetch for QID allocation, server selection, " +
		"retry budgeting, and response validation",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) where direct Exchange calls are forbidden")
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !lintutil.PkgMatches(pass.Pkg.Path(), pkgs) {
		// Out of scope: any onepath ignore directive here is stale.
		lintutil.ReportStaleAll(pass, name)
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := lintutil.NewSuppressor(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		// The transport.Transport shape: Exchange(ctx, ...) as a method,
		// whether through the interface or a concrete implementation.
		if fn.Name() != "Exchange" || sig.Recv() == nil || !firstParamIsContext(sig) {
			return
		}
		if lintutil.InTestFile(pass, call.Pos()) {
			return
		}
		supp.Report(pass, name, call.Pos(),
			"direct Transport.Exchange call in %s: every upstream fetch must go through the fetch engine (resolve.Engine.Fetch)",
			pass.Pkg.Path())
	})
	supp.ReportStale(pass, name)
	return nil, nil
}

func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
