package resolve

import (
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// negEntry caches a negative resolution outcome.
type negEntry struct {
	rcode   dnswire.RCode
	expires time.Time
}

// negativeStore remembers a negative outcome when negative caching is on.
func (r *Resolver) negativeStore(qname dnswire.Name, qtype dnswire.Type, rcode dnswire.RCode) {
	if r.cfg.NegativeTTL <= 0 {
		return
	}
	r.negMu.Lock()
	defer r.negMu.Unlock()
	if r.negative == nil {
		r.negative = make(map[cache.Key]negEntry)
	}
	r.negative[cache.Key{Name: qname, Type: qtype}] = negEntry{
		rcode:   rcode,
		expires: r.cfg.Clock.Now().Add(r.cfg.NegativeTTL),
	}
}

// negativeLookup returns a cached negative outcome, if one is live.
func (r *Resolver) negativeLookup(qname dnswire.Name, qtype dnswire.Type, now time.Time) (dnswire.RCode, bool) {
	if r.cfg.NegativeTTL <= 0 {
		return 0, false
	}
	r.negMu.Lock()
	defer r.negMu.Unlock()
	if r.negative == nil {
		return 0, false
	}
	key := cache.Key{Name: qname, Type: qtype}
	e, ok := r.negative[key]
	if !ok {
		return 0, false
	}
	if !e.expires.After(now) {
		delete(r.negative, key)
		return 0, false
	}
	return e.rcode, true
}
