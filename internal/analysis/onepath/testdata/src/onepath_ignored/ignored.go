// Package onepath_ignored exercises the escape hatch on the onepath
// analyzer: the fetch engine's own call site carries the one
// sanctioned annotation.
package onepath_ignored

import "context"

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// engineFetch is the sanctioned exchange path and says so.
func engineFetch(ctx context.Context, tr Transport, server string, q []byte) ([]byte, error) {
	return tr.Exchange(ctx, server, q) //dnslint:ignore onepath the fetch engine is the one sanctioned exchange path
}

// Unjustified suppressions do not count.
func sneaky(ctx context.Context, tr Transport, server string, q []byte) ([]byte, error) {
	//dnslint:ignore onepath
	return tr.Exchange(ctx, server, q) // want "direct Transport.Exchange call"
}
