// Package resolve is the explicit resolution pipeline behind the caching
// server: the stages a query can traverse —
//
//	CacheLookup → ChainWalk → Iterate → Validate/Ingest → StaleFallback
//
// — plus the single fetch engine (Engine) that every upstream exchange in
// the process goes through: client-driven iteration, prefetch, renewal
// refetches, and missing-glue resolution all funnel into Engine.Fetch,
// which owns query-ID allocation, server selection, per-attempt timeouts,
// the retry budget, and response validation. The `onepath` dnslint
// analyzer enforces that no other call site reaches Transport.Exchange.
//
// The package is deliberately policy-free: renewal credit, the renewal
// scheduler, and request coalescing stay in internal/core, which wires
// itself in through Hooks. Per-query observability flows through an
// optional Trace threaded down the pipeline; a nil trace (the simulator,
// or tracing disabled) costs nothing on the hot path.
package resolve

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// Hooks are the upward-facing callbacks the owning server registers so
// pipeline events can drive policy that lives outside this package.
// Either hook may be nil.
type Hooks struct {
	// ZoneQueried fires after a zone's servers returned a validated
	// response to a resolution query (not a renewal refetch): the renewal
	// policy's credit-earning event.
	ZoneQueried func(zone dnswire.Name)
	// InfraCached fires when ingest commits an infrastructure NS RRset,
	// so the renewal scheduler can arm a pre-expiry check.
	InfraCached func(zone dnswire.Name, expires time.Time)
	// PeerFetch is the mesh fallback: consulted only after a top-level
	// resolution has failed every live, quarantined, and stale path, it
	// may return an answer from a fleet peer's cache. Nil (the default,
	// and always in the simulator) leaves resolution behaviour
	// untouched. A nil result means no peer could help.
	PeerFetch func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *Result
}

// Config parameterises a Resolver.
type Config struct {
	// Transport carries queries to authoritative servers. Required.
	Transport transport.Transport
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// Cache is the shared RRset cache, owned by the caller. Required.
	Cache *cache.Cache
	// RootAddrs are the hard-coded root server addresses. Required.
	RootAddrs []transport.Addr

	// NegativeTTL caches NXDOMAIN/NODATA outcomes; zero disables.
	NegativeTTL time.Duration
	// ServeStale retains expired records as a last resort; zero disables.
	ServeStale time.Duration
	// Prefetch re-fetches a cached answer hit in the last tenth of its
	// TTL (unbound-style).
	Prefetch bool
	// AsyncPrefetch moves prefetch refetches off the client's critical
	// path onto a bounded background worker pool. Leave false for the
	// deterministic inline behaviour the simulator requires.
	AsyncPrefetch bool
	// PrefetchWorkers sizes the background pool (default 2).
	PrefetchWorkers int
	// PrefetchQueue bounds the pending-prefetch queue (default 64);
	// enqueues beyond it are dropped, never blocked on.
	PrefetchQueue int

	// MaxReferrals bounds one resolution's downward steps (default 24).
	MaxReferrals int
	// MaxCNAME bounds CNAME chain chasing (default 8).
	MaxCNAME int
	// MaxGlueFetches caps the total out-of-bailiwick name-server
	// address resolutions one client query may trigger, across sibling
	// NS names as well as nesting — the NXNSAttack bound (maxGlueDepth
	// alone only limits nesting, so a delegation fanning out to dozens
	// of unresolvable NS names could still multiply upstream traffic).
	// Zero means the default (16); negative disables the cap.
	MaxGlueFetches int

	// ValidateDNSSEC verifies answers from signed zones against the
	// DS→DNSKEY chain rooted at TrustAnchors.
	ValidateDNSSEC bool
	// TrustAnchors are trusted DNSKEY RRs (normally the root zone's).
	TrustAnchors []dnswire.RR

	// AdvertiseEDNS0 attaches an EDNS0 OPT advertising a 4096-byte UDP
	// payload to outgoing queries.
	AdvertiseEDNS0 bool

	// ParentRecheckInterval forces a query to a zone's parent when the
	// cached delegation has gone unconfirmed for this long.
	ParentRecheckInterval time.Duration

	// AddrMapper converts a name server's address record into a
	// transport address. Defaults to the bare IP string.
	AddrMapper func(addr netip.Addr) transport.Addr

	// Upstream tunes server selection, per-attempt timeouts, quarantine,
	// and the retry budget shared by every fetch path.
	Upstream UpstreamConfig

	// Hooks connect pipeline events to the owning server's policy.
	Hooks Hooks
	// TraceSink receives a summary of every finished trace. Nil disables
	// tracing entirely: NewTrace returns nil and the pipeline does no
	// per-query timing work.
	TraceSink Sink
}

// Result is a completed resolution.
type Result struct {
	RCode dnswire.RCode
	// Answer holds the answer-section records (CNAME chains included).
	Answer []dnswire.RR
	// Authority holds authority-section records for the reply: the SOA
	// of a negative answer (NXDOMAIN/NODATA, RFC 2308), without which a
	// downstream stub cannot negative-cache the outcome.
	Authority []dnswire.RR
	// FromCache reports that no authoritative query was needed.
	FromCache bool
}

// ErrResolutionFailed reports that every reachable path to the answer was
// exhausted (the paper's "failed query").
var ErrResolutionFailed = errors.New("resolve: resolution failed")

// StaleServeTTL is the TTL stamped on stale answers (RFC 8767 recommends
// a short value so clients re-try soon).
const StaleServeTTL = 30

// maxGlueDepth bounds nested resolutions of out-of-bailiwick name-server
// addresses.
const maxGlueDepth = 4

// Pipeline defaults.
const (
	defaultMaxReferrals   = 24
	defaultMaxCNAME       = 8
	defaultMaxGlueFetches = 16
)

// Resolver runs the resolution pipeline over a shared cache and one fetch
// engine. It is safe for concurrent use: the cache is sharded internally,
// every other piece of state sits behind its own leaf mutex, and no lock
// is ever held across a Transport.Exchange round-trip.
type Resolver struct {
	cfg    Config
	cache  *cache.Cache
	engine *Engine

	// negMu guards the negative-answer cache.
	negMu    sync.Mutex
	negative map[cache.Key]negEntry

	// parentMu guards parentSeen, which records when each zone's
	// delegation was last confirmed by a referral from the parent.
	parentMu   sync.Mutex
	parentSeen map[dnswire.Name]time.Time

	// secMu guards the DNSSEC chain state: validator (nil when not
	// validating) and the insecure-zone cache.
	secMu     sync.Mutex
	validator *dnssec.Validator
	insecure  map[dnswire.Name]bool

	counters Counters

	// Tracing state: a serial for trace IDs, the configured sink, and
	// the histograms finished traces feed. All zero-cost when TraceSink
	// is nil (no traces are ever created).
	traceID   atomic.Uint64
	stageHist [numStages]metrics.Histogram
	kindHist  [numKinds]metrics.Histogram

	// pf is the background prefetch pool; nil unless AsyncPrefetch.
	pf *prefetcher
}

// New builds a Resolver from cfg.
func New(cfg Config) (*Resolver, error) {
	if cfg.Transport == nil {
		return nil, errors.New("resolve: Config.Transport is required")
	}
	if cfg.Cache == nil {
		return nil, errors.New("resolve: Config.Cache is required")
	}
	if len(cfg.RootAddrs) == 0 {
		return nil, errors.New("resolve: Config.RootAddrs is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.MaxReferrals == 0 {
		cfg.MaxReferrals = defaultMaxReferrals
	}
	if cfg.MaxCNAME == 0 {
		cfg.MaxCNAME = defaultMaxCNAME
	}
	if cfg.MaxGlueFetches == 0 {
		cfg.MaxGlueFetches = defaultMaxGlueFetches
	}
	if cfg.AddrMapper == nil {
		cfg.AddrMapper = func(a netip.Addr) transport.Addr { return transport.Addr(a.String()) }
	}
	r := &Resolver{
		cfg:        cfg,
		cache:      cfg.Cache,
		parentSeen: make(map[dnswire.Name]time.Time),
	}
	eng, err := newEngine(cfg, &r.counters)
	if err != nil {
		return nil, err
	}
	r.engine = eng
	if cfg.ValidateDNSSEC {
		if len(cfg.TrustAnchors) == 0 {
			return nil, errors.New("resolve: ValidateDNSSEC requires TrustAnchors")
		}
		r.validator = dnssec.NewValidator(cfg.TrustAnchors...)
		r.insecure = make(map[dnswire.Name]bool)
	}
	if cfg.AsyncPrefetch {
		r.pf = newPrefetcher(r, cfg.PrefetchWorkers, cfg.PrefetchQueue)
	}
	return r, nil
}

// Close stops the background prefetch workers, if any, draining the
// queued work first. Safe to call more than once.
func (r *Resolver) Close() {
	if r.pf != nil {
		r.pf.close()
	}
}

// Engine exposes the fetch engine (tests and diagnostics).
func (r *Resolver) Engine() *Engine { return r.engine }

// Counters returns a snapshot of the pipeline's counters.
func (r *Resolver) Counters() CounterSnapshot { return r.counters.snapshot() }

// ExportServerStates returns a copy of the per-server selection state,
// sorted by address (checkpointing).
func (r *Resolver) ExportServerStates() []ServerState { return r.engine.upstream.export() }

// RestoreServerStates rebuilds per-server selection state from a
// checkpoint, overwriting state already accumulated for the same servers.
func (r *Resolver) RestoreServerStates(states []ServerState) { r.engine.upstream.restore(states) }

// chainTooLong is the shared exhaustion error for every CNAME-chasing
// mode that must fail when the chain exceeds MaxCNAME.
func chainTooLong(qname dnswire.Name) error {
	return fmt.Errorf("%w: CNAME chain too long for %s", ErrResolutionFailed, qname)
}
