package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// These tests pin the ctxdeadline invariant at runtime: every context
// that reaches an upstream exchange from a detached execution path (a
// singleflight flight, the live renewal loop) must carry a deadline,
// because no caller's context bounds those paths.

// deadlineCapture wraps a transport and records, per exchange, whether
// the context carried a deadline.
type deadlineCapture struct {
	inner transport.Transport

	mu      sync.Mutex
	total   int
	bounded int
}

func (d *deadlineCapture) Exchange(ctx context.Context, server transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	_, ok := ctx.Deadline()
	d.mu.Lock()
	d.total++
	if ok {
		d.bounded++
	}
	d.mu.Unlock()
	return d.inner.Exchange(ctx, server, q)
}

func (d *deadlineCapture) counts() (total, bounded int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total, d.bounded
}

// TestFlightContextBounded verifies that the detached singleflight
// context carries a deadline: a caller with an unbounded context must
// not spawn an unbounded flight.
func TestFlightContextBounded(t *testing.T) {
	capture := &deadlineCapture{inner: flatRootPipe()}
	cs := newPipeHierarchy(t, Config{Transport: capture}, 3600, 0)

	if _, err := cs.Resolve(context.Background(), dnswire.MustName("www.example."), dnswire.TypeA); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	total, bounded := capture.counts()
	if total == 0 {
		t.Fatal("no upstream exchanges recorded")
	}
	if bounded != total {
		t.Errorf("%d/%d upstream exchanges carried a deadline, want all", bounded, total)
	}
}

// TestRenewalLoopBoundsRefetches verifies that RunRenewalLoop hands
// each sweep a bounded context even when its own context has no
// deadline: a black-holed authoritative must not hang the loop.
func TestRenewalLoopBoundsRefetches(t *testing.T) {
	// IRR TTL 2s with renewLead 1s: the renewal scheduled when the
	// example. referral is ingested comes due about a second after the
	// first resolution.
	const irrTTL = 2
	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrNS("example.", irrTTL, "ns1.example."))
	root.MustAdd(rrA("ns1.example.", irrTTL, "10.0.5.1"))
	ex := zone.New(dnswire.MustName("example."))
	ex.MustAdd(rrNS("example.", irrTTL, "ns1.example."))
	ex.MustAdd(rrA("ns1.example.", irrTTL, "10.0.5.1"))
	ex.MustAdd(rrA("www.example.", 300, "10.9.9.9"))
	capture := &deadlineCapture{inner: &transport.Pipe{Handlers: map[transport.Addr]transport.Handler{
		"10.0.0.1": authserver.New(root),
		"10.0.5.1": authserver.New(ex),
	}}}
	cs := newPipeHierarchy(t, Config{
		Transport:  capture,
		RefreshTTL: true,
		Renewal:    LRU{C: 2},
	}, irrTTL, 0)

	if _, err := cs.Resolve(context.Background(), dnswire.MustName("www.example."), dnswire.TypeA); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if _, ok := cs.NextRenewalDue(); !ok {
		t.Fatal("no renewal scheduled after resolution")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go cs.RunRenewalLoop(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for cs.Stats().Renewals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("renewal loop never issued a refetch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()

	total, bounded := capture.counts()
	if bounded != total {
		t.Errorf("%d/%d upstream exchanges carried a deadline, want all", bounded, total)
	}
}
