// Package goroleak_ok is a passing fixture: every goroutine observes a
// stop signal or terminates. Any diagnostic here is a false positive.
package goroleak_ok

import (
	"context"
	"time"
)

// RunLoop is the canonical stoppable ticker loop.
func RunLoop(ctx context.Context) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Forever is pinned for the process lifetime; its one spawn site says
// so through the escape hatch.
func Forever() {
	for {
		time.Sleep(time.Hour)
	}
}

// Start spawns only stoppable (or explicitly justified) work.
func Start(ctx context.Context, work chan int, stop chan struct{}) {
	go RunLoop(ctx)

	// Ranging over a work channel ends when the owner closes it.
	go func() {
		for range work {
		}
	}()

	// A dedicated stop channel counts too.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Finite work needs no stop signal.
	go func() {
		time.Sleep(time.Second)
	}()

	go Forever() //dnslint:ignore goroleak process-lifetime worker, reaped by exit on purpose
}

// serve models a read loop that exits on error: a conditional return
// still makes the loop stoppable (closing the conn unblocks it).
func serve(read func() error) {
	for {
		if err := read(); err != nil {
			return
		}
	}
}

// StartServe spawns the error-exiting read loop.
func StartServe(read func() error) {
	go serve(read)
}
